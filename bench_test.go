package hwatch

// One benchmark per data figure in the paper's evaluation. Each iteration
// regenerates the figure's scenario at a reduced scale (so -bench runs in
// minutes, not hours) and reports the figure's headline quantity as a
// custom metric next to the usual ns/op. Full-scale regeneration is
// `go run ./cmd/figgen`.

import (
	"testing"

	"hwatch/internal/sim"
)

const benchScale = 0.2

// BenchmarkFig1 regenerates the DCTCP initial-window study (Fig. 1a-d) and
// reports the mean short-flow FCT at the default ICW of 10.
func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := Fig1(benchScale)
		b.ReportMetric(res.Runs[10].ShortFCTms.Mean(), "fct-ms@icw10")
		b.ReportMetric(float64(res.Runs[10].Drops), "drops@icw10")
	}
}

// BenchmarkFig2 regenerates the coexistence study (Fig. 2a-d) and reports
// the MIX/DCTCP variance inflation.
func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := Fig2(benchScale)
		if v := res.DCTCP.ShortFCTms.Var(); v > 0 {
			b.ReportMetric(res.Mix.ShortFCTms.Var()/v, "var-inflation")
		}
		b.ReportMetric(res.Mix.QueuePkts.Mean(), "mix-queue-pkts")
	}
}

// BenchmarkFig8 regenerates the 50-source comparison (Fig. 8a-d) and
// reports HWatch's mean FCT and its improvement over DropTail.
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := Fig8(benchScale)
		hw := res.Runs[HWatch]
		dt := res.Runs[DropTail]
		b.ReportMetric(hw.ShortFCTms.Mean(), "hwatch-fct-ms")
		if m := hw.ShortFCTms.Mean(); m > 0 {
			b.ReportMetric(dt.ShortFCTms.Mean()/m, "speedup-vs-droptail")
		}
		b.ReportMetric(float64(hw.Timeouts), "hwatch-rtos")
	}
}

// BenchmarkFig9 regenerates the 100-source scalability rerun (Fig. 9a-d).
func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := Fig9(benchScale)
		hw := res.Runs[HWatch]
		b.ReportMetric(hw.ShortFCTms.Quantile(0.99), "hwatch-fct-p99-ms")
		b.ReportMetric(float64(hw.Timeouts), "hwatch-rtos")
	}
}

// BenchmarkFig11 regenerates the testbed experiment (Fig. 11a-b) and
// reports the TCP->HWatch response-time improvement factor.
func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := Fig11(0.5)
		if m := res.HWatch.ShortFCTms.Mean(); m > 0 {
			b.ReportMetric(res.TCP.ShortFCTms.Mean()/m, "speedup")
		}
		b.ReportMetric(res.HWatch.LongGoodputBps.Mean()/1e6, "elephant-Mbps")
	}
}

// benchRung runs one registered scale-ladder rung at full scale per
// iteration. The rungs are the standing scalability gate for the flat
// flow-state work: each reports its completion count and mean short FCT so
// BENCH_LADDER records track the whole trajectory, not just wall time.
func benchRung(b *testing.B, name string, scale float64) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		run, err := RunRung(name, scale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(run.ShortDone), "flows-done")
		if run.ShortFCTms.N() > 0 {
			b.ReportMetric(run.ShortFCTms.Mean(), "fct-ms")
		}
	}
}

func BenchmarkLadder1x(b *testing.B)   { benchRung(b, "ladder/1x", 1) }
func BenchmarkLadder10x(b *testing.B)  { benchRung(b, "ladder/10x", 1) }
func BenchmarkLadder100x(b *testing.B) { benchRung(b, "ladder/100x", 1) }

func BenchmarkStormWebSearch(b *testing.B)  { benchRung(b, "storm/websearch", 1) }
func BenchmarkStormDataMining(b *testing.B) { benchRung(b, "storm/datamining", 1) }

// benchRungShards reruns a rung with the fabric partitioned across n
// engine shards. The digest is identical to the single-loop variant (the
// parity matrix enforces that), so the ns/op delta against the unsharded
// benchmark above is pure execution cost: the multi-core speedup on
// parallel hardware, or the window-barrier overhead when cores are scarce.
func benchRungShards(b *testing.B, name string, shards int) {
	b.Helper()
	SetShards(shards)
	defer SetShards(0)
	benchRung(b, name, 1)
}

// BenchmarkLadder10xShards4 is the rung cheap enough for CI's wall-clock
// budget, so the bench-ladder job tracks the shard dimension on every push.
func BenchmarkLadder10xShards4(b *testing.B) { benchRungShards(b, "ladder/10x", 4) }

func BenchmarkLadder100xShards2(b *testing.B) { benchRungShards(b, "ladder/100x", 2) }
func BenchmarkLadder100xShards4(b *testing.B) { benchRungShards(b, "ladder/100x", 4) }

func BenchmarkStormWebSearchShards4(b *testing.B)  { benchRungShards(b, "storm/websearch", 4) }
func BenchmarkStormDataMiningShards4(b *testing.B) { benchRungShards(b, "storm/datamining", 4) }

// BenchmarkSchemeHWatch times a single HWatch dumbbell run: the end-to-end
// cost of the simulator + shim datapath (events/sec throughput proxy).
func BenchmarkSchemeHWatch(b *testing.B) {
	p := PaperDumbbell(5, 5)
	p.Duration = 100 * sim.Millisecond
	p.Epochs = 1
	p.FirstEpoch = 20 * sim.Millisecond
	p.ByteBuffers = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunDumbbell(HWatch, p)
	}
}

// BenchmarkSchemeDCTCP is the no-shim baseline of the same scenario, so the
// shim's datapath overhead is the difference between the two benchmarks.
func BenchmarkSchemeDCTCP(b *testing.B) {
	p := PaperDumbbell(5, 5)
	p.Duration = 100 * sim.Millisecond
	p.Epochs = 1
	p.FirstEpoch = 20 * sim.Millisecond
	p.ByteBuffers = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunDumbbell(DCTCP, p)
	}
}
