// Package faults stages deterministic, engine-scheduled fault timelines
// against an assembled scenario: link failures, ECN-stripping legacy hops,
// hypervisor-shim crashes, probe blackouts and Gilbert–Elliott burst-loss
// windows — the deployment hazards the HWatch papers assume away. Every
// event fires at a fixed simulation time from the run's own engine, and
// every random draw comes from the run's seeded RNG, so a fault schedule
// is part of the determinism contract: same seed + spec + schedule ⇒ the
// same digest, run after run.
//
// A Schedule is pure data; Arm binds it to a Fabric (the named ports,
// switches and shims of a built topology) and queues the events. The
// scenario layer assembles the Fabric and exposes schedules through
// scenario.Spec.Faults and JSON spec files.
package faults

import (
	"fmt"
	"sort"
	"strings"

	"hwatch/internal/core"
	"hwatch/internal/netem"
	"hwatch/internal/sim"
)

// Kind names a fault type. The string values are what JSON spec files use.
type Kind string

const (
	// LinkDown fails a link at At: packets offered to it are lost, queued
	// packets hold until a LinkUp restores it.
	LinkDown Kind = "link-down"
	// LinkUp restores a failed link at At.
	LinkUp Kind = "link-up"
	// ECNBlackhole turns a switch into a legacy non-ECN hop for [At,Until):
	// every port strips CE/ECT before its AQM, so marking degrades to
	// dropping and upstream marks never arrive.
	ECNBlackhole Kind = "ecn-blackhole"
	// ProbeBlackout makes a link eat probe packets only for [At,Until) —
	// an ACL or middlebox discarding the shim's raw-IP probes.
	ProbeBlackout Kind = "probe-blackout"
	// ShimCrash kills hypervisor shims at At: flow tables wiped, clamps
	// released, traffic passes through unwatched.
	ShimCrash Kind = "shim-crash"
	// ShimRestart brings crashed shims back (cold tables) at At.
	ShimRestart Kind = "shim-restart"
	// BurstLoss runs a link through a Gilbert–Elliott burst-loss channel
	// for [At,Until); GE parameterizes the channel.
	BurstLoss Kind = "burst-loss"
)

// Kinds lists every fault kind, for error messages and docs.
func Kinds() []Kind {
	return []Kind{LinkDown, LinkUp, ECNBlackhole, ProbeBlackout, ShimCrash, ShimRestart, BurstLoss}
}

// Event is one entry of a fault timeline. Times are simulation
// nanoseconds; Until bounds the windowed kinds (ECNBlackhole,
// ProbeBlackout, BurstLoss) and is ignored by the point kinds. Target
// names a Fabric link, switch or shim ("" selects the Fabric's default —
// the bottleneck, the core switch, every shim).
type Event struct {
	Kind   Kind
	At     int64
	Until  int64
	Target string
	GE     netem.GEParams
}

// Windowed reports whether the kind covers an [At,Until) interval.
func (e Event) Windowed() bool {
	switch e.Kind {
	case ECNBlackhole, ProbeBlackout, BurstLoss:
		return true
	}
	return false
}

func (e Event) String() string {
	tgt := e.Target
	if tgt == "" {
		tgt = "default"
	}
	if e.Windowed() {
		return fmt.Sprintf("%s %s [%s, %s)", e.Kind, tgt, fmtNs(e.At), fmtNs(e.Until))
	}
	return fmt.Sprintf("%s %s at %s", e.Kind, tgt, fmtNs(e.At))
}

func fmtNs(ns int64) string {
	return fmt.Sprintf("%.3fms", float64(ns)/float64(sim.Millisecond))
}

// Schedule is an ordered fault timeline (events may share instants; they
// fire in slice order, matching the engine's FIFO-within-instant rule).
type Schedule []Event

// Validate rejects schedules the injector could not arm deterministically.
func (s Schedule) Validate() error {
	known := map[Kind]bool{}
	for _, k := range Kinds() {
		known[k] = true
	}
	for i, e := range s {
		if !known[e.Kind] {
			return fmt.Errorf("faults[%d]: unknown kind %q (kinds: %s)", i, e.Kind, kindList())
		}
		if e.At < 0 {
			return fmt.Errorf("faults[%d] %s: negative time %d", i, e.Kind, e.At)
		}
		if e.Windowed() && e.Until <= e.At {
			return fmt.Errorf("faults[%d] %s: window end %d not after start %d", i, e.Kind, e.Until, e.At)
		}
		if e.Kind == BurstLoss {
			if err := checkGE(e.GE); err != nil {
				return fmt.Errorf("faults[%d] burst-loss: %v", i, err)
			}
		}
	}
	return nil
}

func checkGE(g netem.GEParams) error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"p_good_bad", g.GoodToBad}, {"p_bad_good", g.BadToGood},
		{"loss_good", g.LossGood}, {"loss_bad", g.LossBad},
	} {
		if !(p.v >= 0 && p.v <= 1) { // also rejects NaN
			return fmt.Errorf("%s = %v outside [0, 1]", p.name, p.v)
		}
	}
	if !g.Enabled() {
		return fmt.Errorf("channel can never drop (loss_good and loss_bad both zero)")
	}
	return nil
}

func kindList() string {
	names := make([]string, 0, len(Kinds()))
	for _, k := range Kinds() {
		names = append(names, string(k))
	}
	return strings.Join(names, ", ")
}

// LastClear returns the instant the final fault effect ends — the point
// after which recovery invariants must hold. Zero for an empty schedule.
func (s Schedule) LastClear() int64 {
	var last int64
	for _, e := range s {
		t := e.At
		if e.Windowed() && e.Until > t {
			t = e.Until
		}
		if t > last {
			last = t
		}
	}
	return last
}

// Fabric binds schedule targets to the concrete pieces of a built
// topology. The scenario layer fills it in; tests can assemble one by
// hand around any netem network.
type Fabric struct {
	// Links maps names to transmitting ports ("bottleneck", "sender0.up",
	// ...). Link-scoped events (LinkDown/Up, ProbeBlackout, BurstLoss)
	// resolve here; ECNBlackhole falls back here when no switch matches.
	Links map[string]*netem.Port
	// DefaultLink is the link a link-scoped event with no Target hits.
	DefaultLink string
	// Switches maps names for ECNBlackhole targets; DefaultSwitch is used
	// when the event names none.
	Switches      map[string]*netem.Switch
	DefaultSwitch string
	// Shims are the deployed hypervisor shims. Shim events hit all of them
	// by default, or one selected as "shim0", "shim1", ... A scheme with
	// no shims ignores shim events, so one schedule chaos-tests every
	// registered scheme.
	Shims []*core.Shim
}

func (f Fabric) link(target string) (*netem.Port, error) {
	name := target
	if name == "" {
		name = f.DefaultLink
	}
	if p, ok := f.Links[name]; ok && p != nil {
		return p, nil
	}
	return nil, fmt.Errorf("no link %q in fabric (links: %s)", name, joinKeys(f.Links))
}

// strip resolves an ECNBlackhole target to its toggle — a whole switch by
// name, or a single link as a fallback — and the engine that owns the
// target, so a sharded run toggles it from the owning shard. A switch with
// no ports yet reports a nil engine; the caller falls back to its own.
func (f Fabric) strip(target string) (func(bool), *sim.Engine, error) {
	name := target
	if name == "" {
		name = f.DefaultSwitch
		if name == "" {
			name = f.DefaultLink
		}
	}
	if sw, ok := f.Switches[name]; ok && sw != nil {
		var owner *sim.Engine
		if sw.NumPorts() > 0 {
			owner = sw.Port(0).Eng
		}
		return sw.SetStripECN, owner, nil
	}
	if p, ok := f.Links[name]; ok && p != nil {
		return p.SetStripECN, p.Eng, nil
	}
	return nil, nil, fmt.Errorf("no switch or link %q in fabric (switches: %s; links: %s)",
		name, joinKeysSw(f.Switches), joinKeys(f.Links))
}

func (f Fabric) shims(target string) ([]*core.Shim, error) {
	if target == "" {
		return f.Shims, nil // all of them; none deployed = event is a no-op
	}
	var idx int
	if _, err := fmt.Sscanf(target, "shim%d", &idx); err != nil || idx < 0 || idx >= len(f.Shims) {
		return nil, fmt.Errorf("no shim %q in fabric (%d shims deployed; use \"shim0\"..\"shim%d\" or \"\")",
			target, len(f.Shims), len(f.Shims)-1)
	}
	return []*core.Shim{f.Shims[idx]}, nil
}

// shimIndex reports a shim's position in the fabric's deployment order,
// so per-shim fault log lines name the shim the way targets do ("shim0"…).
func shimIndex(all []*core.Shim, sh *core.Shim) int {
	for i, s := range all {
		if s == sh {
			return i
		}
	}
	return -1
}

func joinKeys(m map[string]*netem.Port) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}

func joinKeysSw(m map[string]*netem.Switch) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}

// Injector is an armed schedule. Arm resolves every target eagerly (a
// typo fails the run before it starts, not at t=fault) and queues every
// event on the engine that owns its target — the shard a sharded fabric
// assigned the port, switch or shim to — so fault actions never mutate
// state across shard boundaries. The injector then just records what
// fired.
type Injector struct {
	Schedule Schedule

	lastClear int64
	channels  []*netem.GilbertElliott
	slots     []logSlot
}

// logSlot is one pre-allocated log line. Slots are claimed at Arm time in
// schedule order with the event's fire instant; the fault action fills the
// message in when it fires, possibly from different shards concurrently —
// each action writes only its own slot, so no lock is needed.
type logSlot struct {
	at  int64
	msg string
}

// LastClear returns the instant the final fault effect ends.
func (inj *Injector) LastClear() int64 { return inj.lastClear }

// Log lists every fault action that fired, stamped with simulation time,
// ordered by fire instant with schedule order breaking ties — the firing
// order a single-loop engine produces. Deterministic at any shard count,
// so tests can assert on it.
func (inj *Injector) Log() []string {
	fired := make([]logSlot, 0, len(inj.slots))
	for _, sl := range inj.slots {
		if sl.msg != "" {
			fired = append(fired, sl)
		}
	}
	sort.SliceStable(fired, func(i, j int) bool { return fired[i].at < fired[j].at })
	out := make([]string, len(fired))
	for i, sl := range fired {
		out[i] = sl.msg
	}
	return out
}

// BurstDrops totals the packets the armed burst-loss channels removed.
func (inj *Injector) BurstDrops() int64 {
	var n int64
	for _, g := range inj.channels {
		n += g.Drops
	}
	return n
}

// slot reserves a log line for an action scheduled at `at`. Must be called
// during Arm, before any engine runs.
func (inj *Injector) slot(at int64) int {
	inj.slots = append(inj.slots, logSlot{at: at})
	return len(inj.slots) - 1
}

// logf fills a reserved slot when its action fires on the owning engine.
func (inj *Injector) logf(slot int, eng *sim.Engine, format string, args ...any) {
	inj.slots[slot].msg = fmtNs(eng.Now()) + " " + fmt.Sprintf(format, args...)
}

// Arm validates the schedule, resolves every target against the fabric
// and queues the fault events — each on the engine that owns its target,
// so on a sharded fabric every action mutates only shard-local state.
// Call after the topology and shims are built but before the engine runs.
// Burst-loss channels fork the run RNG once per event, in schedule order,
// so the loss pattern is a pure function of seed + schedule.
//
// eng is the fallback for targets with no resolvable owner (a port-less
// switch); on a single-loop fabric every owner is eng anyway.
func Arm(eng *sim.Engine, rng *sim.RNG, sched Schedule, fab Fabric) (*Injector, error) {
	if err := sched.Validate(); err != nil {
		return nil, err
	}
	inj := &Injector{Schedule: sched, lastClear: sched.LastClear()}
	for i, ev := range sched {
		ev := ev
		switch ev.Kind {
		case LinkDown, LinkUp:
			port, err := fab.link(ev.Target)
			if err != nil {
				return nil, fmt.Errorf("faults[%d] %s: %v", i, ev.Kind, err)
			}
			down := ev.Kind == LinkDown
			slot := inj.slot(ev.At)
			port.Eng.At(ev.At, func() {
				port.SetDown(down)
				inj.logf(slot, port.Eng, "%s %s", ev.Kind, port.Label)
			})
		case ProbeBlackout:
			port, err := fab.link(ev.Target)
			if err != nil {
				return nil, fmt.Errorf("faults[%d] %s: %v", i, ev.Kind, err)
			}
			on, off := inj.slot(ev.At), inj.slot(ev.Until)
			port.Eng.At(ev.At, func() {
				port.SetDropProbes(true)
				inj.logf(on, port.Eng, "probe-blackout on %s", port.Label)
			})
			port.Eng.At(ev.Until, func() {
				port.SetDropProbes(false)
				inj.logf(off, port.Eng, "probe-blackout off %s", port.Label)
			})
		case ECNBlackhole:
			strip, owner, err := fab.strip(ev.Target)
			if err != nil {
				return nil, fmt.Errorf("faults[%d] %s: %v", i, ev.Kind, err)
			}
			if owner == nil {
				owner = eng
			}
			on, off := inj.slot(ev.At), inj.slot(ev.Until)
			owner.At(ev.At, func() {
				strip(true)
				inj.logf(on, owner, "ecn-blackhole on")
			})
			owner.At(ev.Until, func() {
				strip(false)
				inj.logf(off, owner, "ecn-blackhole off")
			})
		case ShimCrash, ShimRestart:
			shims, err := fab.shims(ev.Target)
			if err != nil {
				return nil, fmt.Errorf("faults[%d] %s: %v", i, ev.Kind, err)
			}
			crash := ev.Kind == ShimCrash
			// One event per shim, in fabric order, each on the shim's owning
			// engine. The event count — and therefore every shared setup
			// sequence number drawn after Arm — must be a function of the
			// fabric alone, never of the partition: grouping shims per owning
			// engine here would arm a shard-count-dependent number of events
			// and silently re-rank everything the workload arms afterwards.
			for _, sh := range shims {
				sh := sh
				se := sh.Eng()
				idx := shimIndex(fab.Shims, sh)
				slot := inj.slot(ev.At)
				se.At(ev.At, func() {
					if crash {
						sh.Crash()
					} else {
						sh.Restart()
					}
					inj.logf(slot, se, "%s shim%d", ev.Kind, idx)
				})
			}
		case BurstLoss:
			port, err := fab.link(ev.Target)
			if err != nil {
				return nil, fmt.Errorf("faults[%d] %s: %v", i, ev.Kind, err)
			}
			ge := &netem.GilbertElliott{P: ev.GE, Rng: rng.Fork()}
			inj.channels = append(inj.channels, ge)
			on, off := inj.slot(ev.At), inj.slot(ev.Until)
			port.Eng.At(ev.At, func() {
				port.SetLoss(func(*netem.Packet) bool { return ge.Drop() })
				inj.logf(on, port.Eng, "burst-loss on %s", port.Label)
			})
			port.Eng.At(ev.Until, func() {
				port.SetLoss(nil)
				inj.logf(off, port.Eng, "burst-loss off %s (%d/%d dropped)", port.Label, ge.Drops, ge.Seen)
			})
		}
	}
	return inj, nil
}
