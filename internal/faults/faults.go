// Package faults stages deterministic, engine-scheduled fault timelines
// against an assembled scenario: link failures, ECN-stripping legacy hops,
// hypervisor-shim crashes, probe blackouts, Gilbert–Elliott burst-loss
// windows, and the full netem impairment matrix — corruption, duplication,
// reordering, jitter and rate limiting — the deployment hazards the HWatch
// papers assume away. Every event fires at a fixed simulation time from
// the run's own engine, and every random draw comes from the run's seeded
// RNG, so a fault schedule is part of the determinism contract: same seed
// + spec + schedule ⇒ the same digest, run after run.
//
// A Schedule is pure data; Arm binds it to a Fabric (the named ports,
// switches, shims and hosts of a built topology) and queues the events.
// Events can recur (Recurrence wraps any kind into interval + duration
// windows with jittered starts) and can draw random targets per
// occurrence (Pick selects k of the fabric's links or shims) — the chaos
// shapes a production tool like Pumba runs. All recurrence expansion and
// target selection happens at Arm time, during sequential setup, so the
// armed event set is a pure function of seed + schedule + fabric and
// never of the shard partition. The scenario layer assembles the Fabric
// and exposes schedules through scenario.Spec.Faults and JSON spec files.
package faults

import (
	"fmt"
	"sort"
	"strings"

	"hwatch/internal/core"
	"hwatch/internal/netem"
	"hwatch/internal/sim"
)

// Kind names a fault type. The string values are what JSON spec files use.
type Kind string

const (
	// LinkDown fails a link at At: packets offered to it are lost, queued
	// packets hold until a LinkUp restores it.
	LinkDown Kind = "link-down"
	// LinkUp restores a failed link at At.
	LinkUp Kind = "link-up"
	// ECNBlackhole turns a switch into a legacy non-ECN hop for [At,Until):
	// every port strips CE/ECT before its AQM, so marking degrades to
	// dropping and upstream marks never arrive.
	ECNBlackhole Kind = "ecn-blackhole"
	// ProbeBlackout makes a link eat probe packets only for [At,Until) —
	// an ACL or middlebox discarding the shim's raw-IP probes.
	ProbeBlackout Kind = "probe-blackout"
	// ShimCrash kills hypervisor shims at At: flow tables wiped, clamps
	// released, traffic passes through unwatched.
	ShimCrash Kind = "shim-crash"
	// ShimRestart brings crashed shims back (cold tables) at At.
	ShimRestart Kind = "shim-restart"
	// BurstLoss runs a link through a Gilbert–Elliott burst-loss channel
	// for [At,Until); GE parameterizes the channel.
	BurstLoss Kind = "burst-loss"
	// Corrupt bit-flips packets on a link for [At,Until) with per-packet
	// probability Impair.Prob, leaving the checksum stale; Impair.DropFrac
	// of flipped packets are dropped at the port like FCS-failing frames.
	// Arming any corrupt event turns on checksum verification at every
	// fabric host, so surviving flips are discarded at the receiver.
	Corrupt Kind = "corrupt"
	// Duplicate clones packets on a link for [At,Until) with probability
	// Impair.Prob, injecting Impair.Copies bounded copies behind the
	// original.
	Duplicate Kind = "duplicate"
	// Reorder parks packets on a link for [At,Until) with probability
	// Impair.Prob, releasing each after a uniformly drawn hold in
	// (0, Impair.Hold], so later packets overtake.
	Reorder Kind = "reorder"
	// Jitter delays every packet on a link for [At,Until) by a draw from
	// a pluggable distribution (Impair.Dist: uniform, normal, pareto).
	Jitter Kind = "jitter"
	// RateLimit shapes a link to Impair.RateBps through a token bucket of
	// Impair.Burst bytes for [At,Until); always egress.
	RateLimit Kind = "rate-limit"
)

// Kinds lists every fault kind, for error messages and docs.
func Kinds() []Kind {
	return []Kind{LinkDown, LinkUp, ECNBlackhole, ProbeBlackout, ShimCrash, ShimRestart,
		BurstLoss, Corrupt, Duplicate, Reorder, Jitter, RateLimit}
}

// KindInfo describes one fault kind for operator-facing listings
// (hwatchsim -list-faults).
type KindInfo struct {
	Kind     Kind
	Windowed bool
	Doc      string
}

// Infos returns every fault kind with a one-line doc, in Kinds() order.
func Infos() []KindInfo {
	return []KindInfo{
		{LinkDown, false, "fail a link: offered packets lost, queue holds until link-up"},
		{LinkUp, false, "restore a failed link"},
		{ECNBlackhole, true, "switch strips CE/ECT before its AQMs (legacy non-ECN hop)"},
		{ProbeBlackout, true, "link eats shim probe packets only (ACL/middlebox)"},
		{ShimCrash, false, "kill hypervisor shims: tables wiped, clamps released"},
		{ShimRestart, false, "restart crashed shims with cold tables"},
		{BurstLoss, true, "Gilbert-Elliott burst-loss channel on a link (ge params)"},
		{Corrupt, true, "bit-flip packets (prob), checksum left stale; drop_frac dropped at port"},
		{Duplicate, true, "clone packets (prob) into `copies` bounded duplicates"},
		{Reorder, true, "hold packets (prob) up to hold_us so later ones overtake"},
		{Jitter, true, "per-packet delay from dist=uniform|normal|pareto (delay_us/jitter_us)"},
		{RateLimit, true, "token-bucket shape a link to rate_mbps with burst_kb"},
	}
}

// ImpairParams carries the knobs of the impairment kinds (Corrupt,
// Duplicate, Reorder, Jitter, RateLimit). Unused fields are ignored by
// the other kinds.
type ImpairParams struct {
	Prob     float64 // per-packet probability (corrupt, duplicate, reorder)
	DropFrac float64 // corrupt: fraction of flipped packets dropped at the port
	Copies   int     // duplicate: copies per selected packet (0 = 1, max 4)
	Hold     int64   // reorder: max hold, ns (0 = 100µs)
	Dist     string  // jitter: "uniform" (default), "normal", "pareto"
	Delay    int64   // jitter: distribution center / pareto scale, ns
	Jitter   int64   // jitter: spread (uniform half-width, normal sigma), ns
	Shape    float64 // jitter: pareto shape (0 = 1.5)
	RateBps  int64   // rate-limit: token-bucket rate, bits/s
	Burst    int     // rate-limit: bucket size, bytes (0 = two MTUs)
	Egress   bool    // attach on the wire side instead of ahead of the queue
}

// dist builds the jitter delay distribution the params describe.
// Validate has already vetted the fields.
func (p ImpairParams) dist() netem.DelayDist {
	switch p.Dist {
	case "", "uniform":
		lo := p.Delay - p.Jitter
		if lo < 0 {
			lo = 0
		}
		return netem.UniformDelay{Lo: lo, Hi: p.Delay + p.Jitter}
	case "normal":
		return netem.NormalDelay{Mean: p.Delay, Sigma: p.Jitter}
	case "pareto":
		shape := p.Shape
		if shape == 0 {
			shape = 1.5
		}
		max := p.Delay + 8*p.Jitter
		if p.Jitter == 0 {
			max = 4 * p.Delay
		}
		return netem.ParetoDelay{Shape: shape, Scale: p.Delay, Max: max}
	}
	panic("faults: unvalidated jitter dist " + p.Dist)
}

func (p ImpairParams) validate(kind Kind) error {
	switch kind {
	case Corrupt:
		if !(p.Prob > 0 && p.Prob <= 1) {
			return fmt.Errorf("prob = %v outside (0, 1]", p.Prob)
		}
		if !(p.DropFrac >= 0 && p.DropFrac <= 1) {
			return fmt.Errorf("drop_frac = %v outside [0, 1]", p.DropFrac)
		}
	case Duplicate:
		if !(p.Prob > 0 && p.Prob <= 1) {
			return fmt.Errorf("prob = %v outside (0, 1]", p.Prob)
		}
		if p.Copies < 0 || p.Copies > 4 {
			return fmt.Errorf("copies = %d outside [0, 4]", p.Copies)
		}
	case Reorder:
		if !(p.Prob > 0 && p.Prob <= 1) {
			return fmt.Errorf("prob = %v outside (0, 1]", p.Prob)
		}
		if p.Hold < 0 {
			return fmt.Errorf("hold = %d negative", p.Hold)
		}
	case Jitter:
		switch p.Dist {
		case "", "uniform", "normal", "pareto":
		default:
			return fmt.Errorf("unknown dist %q (dists: uniform, normal, pareto)", p.Dist)
		}
		if p.Delay < 0 || p.Jitter < 0 {
			return fmt.Errorf("delay/jitter must be non-negative (delay=%d jitter=%d)", p.Delay, p.Jitter)
		}
		if p.Delay+p.Jitter == 0 {
			return fmt.Errorf("delay and jitter both zero")
		}
		if p.Dist == "pareto" && p.Delay <= 0 {
			return fmt.Errorf("pareto needs delay > 0 (the scale / minimum)")
		}
		if p.Shape < 0 {
			return fmt.Errorf("shape = %v negative", p.Shape)
		}
	case RateLimit:
		if p.RateBps <= 0 {
			return fmt.Errorf("rate = %d bps not positive", p.RateBps)
		}
		if p.Burst < 0 {
			return fmt.Errorf("burst = %d negative", p.Burst)
		}
	}
	return nil
}

// Recurrence repeats an event Count times: occurrence i becomes active at
// At + i*Interval (+ a uniform [0, Jitter] draw per occurrence) and stays
// active for Duration. Point kinds pair up — LinkDown restores the link
// and ShimCrash restarts the shims after Duration — so a recurring flap
// needs no matching restore events. Until must be left zero; Duration
// replaces it.
type Recurrence struct {
	Interval int64 // start-to-start spacing, ns
	Duration int64 // each occurrence's active window, ns
	Jitter   int64 // uniform extra start offset, [0, Jitter] ns
	Count    int   // number of occurrences
}

func (r Recurrence) validate() error {
	if r.Count < 1 {
		return fmt.Errorf("count = %d, need >= 1", r.Count)
	}
	if r.Duration <= 0 {
		return fmt.Errorf("duration = %d, need > 0", r.Duration)
	}
	if r.Jitter < 0 {
		return fmt.Errorf("jitter = %d negative", r.Jitter)
	}
	if r.Count > 1 {
		if r.Interval <= 0 {
			return fmt.Errorf("interval = %d, need > 0 when count > 1", r.Interval)
		}
		if r.Duration+r.Jitter > r.Interval {
			return fmt.Errorf("duration %d + jitter %d exceed interval %d: occurrences would overlap",
				r.Duration, r.Jitter, r.Interval)
		}
	}
	return nil
}

// Event is one entry of a fault timeline. Times are simulation
// nanoseconds; Until bounds the windowed kinds and is ignored by the
// point kinds. Target names a Fabric link, switch or shim ("" selects the
// Fabric's default — the bottleneck, the core switch, every shim). Recur,
// if set, repeats the event; Pick > 0 draws that many random targets
// (links for link kinds, shims for shim kinds) per occurrence instead of
// using Target.
type Event struct {
	Kind   Kind
	At     int64
	Until  int64
	Target string
	GE     netem.GEParams
	Impair ImpairParams
	Recur  *Recurrence
	Pick   int
}

// Windowed reports whether the kind covers an [At,Until) interval.
func (e Event) Windowed() bool {
	switch e.Kind {
	case ECNBlackhole, ProbeBlackout, BurstLoss, Corrupt, Duplicate, Reorder, Jitter, RateLimit:
		return true
	}
	return false
}

// restoreKind reports kinds that undo a fault; they cannot recur or pick
// random targets (the matching fault already names its victims).
func restoreKind(k Kind) bool { return k == LinkUp || k == ShimRestart }

func (e Event) String() string {
	tgt := e.Target
	if tgt == "" {
		tgt = "default"
	}
	if e.Pick > 0 {
		tgt = fmt.Sprintf("pick:%d", e.Pick)
	}
	var s string
	switch {
	case e.Recur != nil:
		s = fmt.Sprintf("%s %s at %s x%d every %s for %s", e.Kind, tgt, fmtNs(e.At),
			e.Recur.Count, fmtNs(e.Recur.Interval), fmtNs(e.Recur.Duration))
	case e.Windowed():
		s = fmt.Sprintf("%s %s [%s, %s)", e.Kind, tgt, fmtNs(e.At), fmtNs(e.Until))
	default:
		s = fmt.Sprintf("%s %s at %s", e.Kind, tgt, fmtNs(e.At))
	}
	return s
}

func fmtNs(ns int64) string {
	return fmt.Sprintf("%.3fms", float64(ns)/float64(sim.Millisecond))
}

// Schedule is an ordered fault timeline (events may share instants; they
// fire in slice order, matching the engine's FIFO-within-instant rule).
type Schedule []Event

// Validate rejects schedules the injector could not arm deterministically.
func (s Schedule) Validate() error {
	known := map[Kind]bool{}
	for _, k := range Kinds() {
		known[k] = true
	}
	for i, e := range s {
		if !known[e.Kind] {
			return fmt.Errorf("faults[%d]: unknown kind %q (kinds: %s)", i, e.Kind, kindList())
		}
		if e.At < 0 {
			return fmt.Errorf("faults[%d] %s: negative time %d", i, e.Kind, e.At)
		}
		if e.Recur != nil {
			if restoreKind(e.Kind) {
				return fmt.Errorf("faults[%d] %s: restore kinds cannot recur (the fault occurrence restores itself)", i, e.Kind)
			}
			if e.Until != 0 {
				return fmt.Errorf("faults[%d] %s: until must be zero with a recurrence (duration bounds each occurrence)", i, e.Kind)
			}
			if err := e.Recur.validate(); err != nil {
				return fmt.Errorf("faults[%d] %s: recurrence: %v", i, e.Kind, err)
			}
		} else if e.Windowed() && e.Until <= e.At {
			return fmt.Errorf("faults[%d] %s: window end %d not after start %d", i, e.Kind, e.Until, e.At)
		}
		if e.Pick < 0 {
			return fmt.Errorf("faults[%d] %s: pick = %d negative", i, e.Kind, e.Pick)
		}
		if e.Pick > 0 {
			if restoreKind(e.Kind) {
				return fmt.Errorf("faults[%d] %s: restore kinds cannot pick random targets", i, e.Kind)
			}
			if e.Target != "" {
				return fmt.Errorf("faults[%d] %s: target %q and pick %d are mutually exclusive", i, e.Kind, e.Target, e.Pick)
			}
		}
		if e.Kind == BurstLoss {
			if err := checkGE(e.GE); err != nil {
				return fmt.Errorf("faults[%d] burst-loss: %v", i, err)
			}
		}
		if err := e.Impair.validate(e.Kind); err != nil {
			return fmt.Errorf("faults[%d] %s: %v", i, e.Kind, err)
		}
	}
	return nil
}

func checkGE(g netem.GEParams) error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"p_good_bad", g.GoodToBad}, {"p_bad_good", g.BadToGood},
		{"loss_good", g.LossGood}, {"loss_bad", g.LossBad},
	} {
		if !(p.v >= 0 && p.v <= 1) { // also rejects NaN
			return fmt.Errorf("%s = %v outside [0, 1]", p.name, p.v)
		}
	}
	if !g.Enabled() {
		return fmt.Errorf("channel can never drop (loss_good and loss_bad both zero)")
	}
	return nil
}

func kindList() string {
	names := make([]string, 0, len(Kinds()))
	for _, k := range Kinds() {
		names = append(names, string(k))
	}
	return strings.Join(names, ", ")
}

// LastClear returns an upper bound on the instant the final fault effect
// ends — the point after which recovery invariants must hold. Recurring
// events count their last occurrence at maximal start jitter; an armed
// Injector reports the tighter bound from the actual draws. Zero for an
// empty schedule.
func (s Schedule) LastClear() int64 {
	var last int64
	for _, e := range s {
		t := e.At
		switch {
		case e.Recur != nil:
			t += int64(e.Recur.Count-1)*e.Recur.Interval + e.Recur.Jitter + e.Recur.Duration
		case e.Windowed() && e.Until > t:
			t = e.Until
		}
		if t > last {
			last = t
		}
	}
	return last
}

// Fabric binds schedule targets to the concrete pieces of a built
// topology. The scenario layer fills it in; tests can assemble one by
// hand around any netem network.
type Fabric struct {
	// Links maps names to transmitting ports ("bottleneck", "sender0.up",
	// ...). Link-scoped events (LinkDown/Up, ProbeBlackout, BurstLoss and
	// the impairment kinds) resolve here; ECNBlackhole falls back here
	// when no switch matches.
	Links map[string]*netem.Port
	// DefaultLink is the link a link-scoped event with no Target hits.
	DefaultLink string
	// Switches maps names for ECNBlackhole targets; DefaultSwitch is used
	// when the event names none.
	Switches      map[string]*netem.Switch
	DefaultSwitch string
	// Shims are the deployed hypervisor shims. Shim events hit all of them
	// by default, or one selected as "shim0", "shim1", ... A scheme with
	// no shims ignores shim events, so one schedule chaos-tests every
	// registered scheme.
	Shims []*core.Shim
	// Hosts are the end hosts behind the fabric. Arming a corrupt event
	// turns checksum verification on for all of them, so bit flips that
	// survive the port are discarded at the receiver, not absorbed.
	Hosts []*netem.Host
}

func (f Fabric) link(target string) (*netem.Port, error) {
	name := target
	if name == "" {
		name = f.DefaultLink
	}
	if p, ok := f.Links[name]; ok && p != nil {
		return p, nil
	}
	return nil, fmt.Errorf("no link %q in fabric (links: %s)", name, joinKeys(f.Links))
}

// strip resolves an ECNBlackhole target to its toggle — a whole switch by
// name, or a single link as a fallback — and the engine that owns the
// target, so a sharded run toggles it from the owning shard. A switch with
// no ports yet reports a nil engine; the caller falls back to its own.
func (f Fabric) strip(target string) (func(bool), *sim.Engine, error) {
	name := target
	if name == "" {
		name = f.DefaultSwitch
		if name == "" {
			name = f.DefaultLink
		}
	}
	if sw, ok := f.Switches[name]; ok && sw != nil {
		var owner *sim.Engine
		if sw.NumPorts() > 0 {
			owner = sw.Port(0).Eng
		}
		return sw.SetStripECN, owner, nil
	}
	if p, ok := f.Links[name]; ok && p != nil {
		return p.SetStripECN, p.Eng, nil
	}
	return nil, nil, fmt.Errorf("no switch or link %q in fabric (switches: %s; links: %s)",
		name, joinKeysSw(f.Switches), joinKeys(f.Links))
}

func (f Fabric) shims(target string) ([]*core.Shim, error) {
	if target == "" {
		return f.Shims, nil // all of them; none deployed = event is a no-op
	}
	var idx int
	if _, err := fmt.Sscanf(target, "shim%d", &idx); err != nil || idx < 0 || idx >= len(f.Shims) {
		return nil, fmt.Errorf("no shim %q in fabric (%d shims deployed; use \"shim0\"..\"shim%d\" or \"\")",
			target, len(f.Shims), len(f.Shims)-1)
	}
	return []*core.Shim{f.Shims[idx]}, nil
}

// pickPool returns the sorted name pool a Pick event draws targets from:
// link names for link-scoped kinds, shim names for shim kinds. Sorting
// makes the pool — and therefore every draw — independent of map order.
func (f Fabric) pickPool(kind Kind) ([]string, error) {
	switch kind {
	case ShimCrash:
		if len(f.Shims) == 0 {
			return nil, fmt.Errorf("pick from a fabric with no shims")
		}
		pool := make([]string, len(f.Shims))
		for i := range f.Shims {
			pool[i] = fmt.Sprintf("shim%d", i)
		}
		return pool, nil
	case ECNBlackhole:
		if len(f.Switches) > 0 {
			return sortedKeysSw(f.Switches), nil
		}
		fallthrough
	default:
		if len(f.Links) == 0 {
			return nil, fmt.Errorf("pick from a fabric with no links")
		}
		return sortedKeys(f.Links), nil
	}
}

// pickTargets draws k distinct pool entries with rng, returned in pool
// order so arming order matches the fabric, not the draw sequence.
func pickTargets(pool []string, k int, rng *sim.RNG) []string {
	idx := rng.Perm(len(pool))[:k]
	sort.Ints(idx)
	out := make([]string, k)
	for i, j := range idx {
		out[i] = pool[j]
	}
	return out
}

// shimIndex reports a shim's position in the fabric's deployment order,
// so per-shim fault log lines name the shim the way targets do ("shim0"…).
func shimIndex(all []*core.Shim, sh *core.Shim) int {
	for i, s := range all {
		if s == sh {
			return i
		}
	}
	return -1
}

func sortedKeys(m map[string]*netem.Port) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedKeysSw(m map[string]*netem.Switch) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func joinKeys(m map[string]*netem.Port) string {
	return strings.Join(sortedKeys(m), ", ")
}

func joinKeysSw(m map[string]*netem.Switch) string {
	return strings.Join(sortedKeysSw(m), ", ")
}

// Injector is an armed schedule. Arm resolves every target eagerly (a
// typo fails the run before it starts, not at t=fault) and queues every
// event on the engine that owns its target — the shard a sharded fabric
// assigned the port, switch or shim to — so fault actions never mutate
// state across shard boundaries. The injector then just records what
// fired.
type Injector struct {
	Schedule Schedule

	lastClear int64
	channels  []*netem.GilbertElliott
	imps      []*netem.PortImpair
	slots     []logSlot
}

// logSlot is one pre-allocated log line. Slots are claimed at Arm time in
// schedule order with the event's fire instant; the fault action fills the
// message in when it fires, possibly from different shards concurrently —
// each action writes only its own slot, so no lock is needed.
type logSlot struct {
	at  int64
	msg string
}

// LastClear returns the instant the final fault effect ends, using the
// start jitters actually drawn for recurring events.
func (inj *Injector) LastClear() int64 { return inj.lastClear }

// Log lists every fault action that fired, stamped with simulation time,
// ordered by fire instant with schedule order breaking ties — the firing
// order a single-loop engine produces. Deterministic at any shard count,
// so tests can assert on it.
func (inj *Injector) Log() []string {
	fired := make([]logSlot, 0, len(inj.slots))
	for _, sl := range inj.slots {
		if sl.msg != "" {
			fired = append(fired, sl)
		}
	}
	sort.SliceStable(fired, func(i, j int) bool { return fired[i].at < fired[j].at })
	out := make([]string, len(fired))
	for i, sl := range fired {
		out[i] = sl.msg
	}
	return out
}

// BurstDrops totals the packets the armed burst-loss channels removed.
func (inj *Injector) BurstDrops() int64 {
	var n int64
	for _, g := range inj.channels {
		n += g.Drops
	}
	return n
}

// ImpairStats aggregates the per-kind counters of every port impairment
// the schedule armed. After a drained run, Held must be zero — the
// recovery observer asserts it.
func (inj *Injector) ImpairStats() netem.ImpairStats {
	var st netem.ImpairStats
	for _, im := range inj.imps {
		st.Add(im.Stats())
	}
	return st
}

// HasImpairments reports whether the schedule armed any impairment kinds.
func (inj *Injector) HasImpairments() bool { return len(inj.imps) > 0 }

// addImp records an armed pipeline once, keeping Arm order.
func (inj *Injector) addImp(im *netem.PortImpair) {
	for _, have := range inj.imps {
		if have == im {
			return
		}
	}
	inj.imps = append(inj.imps, im)
}

// slot reserves a log line for an action scheduled at `at`. Must be called
// during Arm, before any engine runs.
func (inj *Injector) slot(at int64) int {
	inj.slots = append(inj.slots, logSlot{at: at})
	return len(inj.slots) - 1
}

// logf fills a reserved slot when its action fires on the owning engine.
func (inj *Injector) logf(slot int, eng *sim.Engine, format string, args ...any) {
	inj.slots[slot].msg = fmtNs(eng.Now()) + " " + fmt.Sprintf(format, args...)
}

// kindNeedsRNG reports kinds whose armed effect consumes random draws at
// run time (a loss channel, a per-packet probability, a delay dist).
func kindNeedsRNG(k Kind) bool {
	switch k {
	case BurstLoss, Corrupt, Duplicate, Reorder, Jitter:
		return true
	}
	return false
}

// eventNeedsRNG reports whether arming ev consumes any randomness — the
// rule that fixes the RNG fork order: Arm forks the run RNG exactly once
// per event for which this is true, in schedule order, so RNG-free events
// never shift another event's stream and pre-existing schedules keep
// their digests.
func eventNeedsRNG(ev Event) bool {
	return kindNeedsRNG(ev.Kind) || ev.Pick > 0 || (ev.Recur != nil && ev.Recur.Jitter > 0)
}

// Arm validates the schedule, resolves every target against the fabric
// and queues the fault events — each on the engine that owns its target,
// so on a sharded fabric every action mutates only shard-local state.
// Call after the topology and shims are built but before the engine runs.
//
// Determinism: the run RNG is forked once per event that needs
// randomness, in schedule order. Within an event, each occurrence draws
// its start jitter, then its random targets, then forks one child per
// armed target whose kind consumes run-time draws (a one-shot event with
// a fixed target hands the event fork itself to the effect, matching the
// pre-recurrence fork order). Everything random is drawn here, during
// sequential setup — an occurrence's window, victims and loss streams
// are a pure function of seed + schedule + fabric, never of the shard
// partition or of run-time interleaving.
//
// eng is the fallback for targets with no resolvable owner (a port-less
// switch); on a single-loop fabric every owner is eng anyway.
func Arm(eng *sim.Engine, rng *sim.RNG, sched Schedule, fab Fabric) (*Injector, error) {
	if err := sched.Validate(); err != nil {
		return nil, err
	}
	inj := &Injector{Schedule: sched}
	for _, ev := range sched {
		if ev.Kind == Corrupt {
			for _, h := range fab.Hosts {
				h.VerifyChecksums = true
			}
			break
		}
	}
	var lastClear int64
	for i, ev := range sched {
		ev := ev
		var evRng *sim.RNG
		if eventNeedsRNG(ev) {
			evRng = rng.Fork()
		}
		var pool []string
		if ev.Pick > 0 {
			var err error
			pool, err = fab.pickPool(ev.Kind)
			if err != nil {
				return nil, fmt.Errorf("faults[%d] %s: %v", i, ev.Kind, err)
			}
			if ev.Pick > len(pool) {
				return nil, fmt.Errorf("faults[%d] %s: pick %d exceeds %d available targets (%s)",
					i, ev.Kind, ev.Pick, len(pool), strings.Join(pool, ", "))
			}
		}
		count := 1
		if ev.Recur != nil {
			count = ev.Recur.Count
		}
		for oi := 0; oi < count; oi++ {
			start, end := ev.At, ev.Until
			if r := ev.Recur; r != nil {
				start = ev.At + int64(oi)*r.Interval
				if r.Jitter > 0 {
					start += evRng.Int63n(r.Jitter + 1)
				}
				end = start + r.Duration
			}
			targets := []string{ev.Target}
			if ev.Pick > 0 {
				targets = pickTargets(pool, ev.Pick, evRng)
			}
			for _, tgt := range targets {
				// Effects running on different shards must not share a
				// generator: one child per armed target unless this is the
				// single pre-recurrence shape (one shot, fixed target).
				kindRng := evRng
				if kindNeedsRNG(ev.Kind) && (ev.Recur != nil || ev.Pick > 0) {
					kindRng = evRng.Fork()
				}
				if err := inj.armOne(eng, fab, ev, tgt, start, end, kindRng); err != nil {
					return nil, fmt.Errorf("faults[%d] %s: %v", i, ev.Kind, err)
				}
			}
			clear := end
			if !ev.Windowed() && ev.Recur == nil {
				clear = start
			}
			if clear > lastClear {
				lastClear = clear
			}
		}
	}
	inj.lastClear = lastClear
	return inj, nil
}

// armOne queues the actions of one occurrence of ev against one resolved
// target. Point kinds under a recurrence pair up: the fault fires at
// start and its restore at end.
func (inj *Injector) armOne(eng *sim.Engine, fab Fabric, ev Event, target string, start, end int64, kindRng *sim.RNG) error {
	switch ev.Kind {
	case LinkDown, LinkUp:
		port, err := fab.link(target)
		if err != nil {
			return err
		}
		if ev.Recur == nil {
			down := ev.Kind == LinkDown
			slot := inj.slot(start)
			port.Eng.At(start, func() {
				port.SetDown(down)
				inj.logf(slot, port.Eng, "%s %s", ev.Kind, port.Label)
			})
			return nil
		}
		dn, up := inj.slot(start), inj.slot(end)
		port.Eng.At(start, func() {
			port.SetDown(true)
			inj.logf(dn, port.Eng, "link-down %s", port.Label)
		})
		port.Eng.At(end, func() {
			port.SetDown(false)
			inj.logf(up, port.Eng, "link-up %s", port.Label)
		})
	case ProbeBlackout:
		port, err := fab.link(target)
		if err != nil {
			return err
		}
		on, off := inj.slot(start), inj.slot(end)
		port.Eng.At(start, func() {
			port.SetDropProbes(true)
			inj.logf(on, port.Eng, "probe-blackout on %s", port.Label)
		})
		port.Eng.At(end, func() {
			port.SetDropProbes(false)
			inj.logf(off, port.Eng, "probe-blackout off %s", port.Label)
		})
	case ECNBlackhole:
		strip, owner, err := fab.strip(target)
		if err != nil {
			return err
		}
		if owner == nil {
			owner = eng
		}
		on, off := inj.slot(start), inj.slot(end)
		owner.At(start, func() {
			strip(true)
			inj.logf(on, owner, "ecn-blackhole on")
		})
		owner.At(end, func() {
			strip(false)
			inj.logf(off, owner, "ecn-blackhole off")
		})
	case ShimCrash, ShimRestart:
		shims, err := fab.shims(target)
		if err != nil {
			return err
		}
		crash := ev.Kind == ShimCrash
		// One event per shim, in fabric order, each on the shim's owning
		// engine. The event count — and therefore every shared setup
		// sequence number drawn after Arm — must be a function of the
		// fabric alone, never of the partition: grouping shims per owning
		// engine here would arm a shard-count-dependent number of events
		// and silently re-rank everything the workload arms afterwards.
		for _, sh := range shims {
			sh := sh
			se := sh.Eng()
			idx := shimIndex(fab.Shims, sh)
			slot := inj.slot(start)
			se.At(start, func() {
				if crash {
					sh.Crash()
				} else {
					sh.Restart()
				}
				inj.logf(slot, se, "%s shim%d", ev.Kind, idx)
			})
			if ev.Recur != nil {
				restart := inj.slot(end)
				se.At(end, func() {
					sh.Restart()
					inj.logf(restart, se, "shim-restart shim%d", idx)
				})
			}
		}
	case BurstLoss:
		port, err := fab.link(target)
		if err != nil {
			return err
		}
		ge := &netem.GilbertElliott{P: ev.GE, Rng: kindRng}
		inj.channels = append(inj.channels, ge)
		on, off := inj.slot(start), inj.slot(end)
		port.Eng.At(start, func() {
			port.SetLoss(func(*netem.Packet) bool { return ge.Drop() })
			inj.logf(on, port.Eng, "burst-loss on %s", port.Label)
		})
		port.Eng.At(end, func() {
			port.SetLoss(nil)
			inj.logf(off, port.Eng, "burst-loss off %s (%d/%d dropped)", port.Label, ge.Drops, ge.Seen)
		})
	case Corrupt, Duplicate, Reorder, Jitter, RateLimit:
		port, err := fab.link(target)
		if err != nil {
			return err
		}
		inj.armImpair(port, ev, start, end, kindRng)
	}
	return nil
}

// armImpair queues the on/off pair of one impairment occurrence on the
// port's own engine. Rate limiting always attaches egress (it paces the
// transmitter); the other kinds follow Impair.Egress.
func (inj *Injector) armImpair(port *netem.Port, ev Event, start, end int64, kindRng *sim.RNG) {
	pr := ev.Impair
	imp := port.Impair(pr.Egress || ev.Kind == RateLimit)
	inj.addImp(imp)
	on, off := inj.slot(start), inj.slot(end)
	switch ev.Kind {
	case Corrupt:
		port.Eng.At(start, func() {
			imp.SetCorrupt(pr.Prob, pr.DropFrac, kindRng)
			inj.logf(on, port.Eng, "corrupt on %s (p=%v)", port.Label, pr.Prob)
		})
		port.Eng.At(end, func() {
			imp.SetCorrupt(0, 0, nil)
			st := imp.Stats()
			inj.logf(off, port.Eng, "corrupt off %s (%d flipped, %d dropped)", port.Label, st.Corrupted, st.CorruptDrops)
		})
	case Duplicate:
		port.Eng.At(start, func() {
			imp.SetDuplicate(pr.Prob, pr.Copies, kindRng)
			inj.logf(on, port.Eng, "duplicate on %s (p=%v)", port.Label, pr.Prob)
		})
		port.Eng.At(end, func() {
			imp.SetDuplicate(0, 0, nil)
			inj.logf(off, port.Eng, "duplicate off %s (%d copies)", port.Label, imp.Stats().Duplicated)
		})
	case Reorder:
		port.Eng.At(start, func() {
			imp.SetReorder(pr.Prob, pr.Hold, kindRng)
			inj.logf(on, port.Eng, "reorder on %s (p=%v)", port.Label, pr.Prob)
		})
		port.Eng.At(end, func() {
			imp.SetReorder(0, 0, nil)
			inj.logf(off, port.Eng, "reorder off %s (%d held)", port.Label, imp.Stats().Reordered)
		})
	case Jitter:
		dist := pr.dist()
		port.Eng.At(start, func() {
			imp.SetJitter(dist, kindRng)
			inj.logf(on, port.Eng, "jitter on %s (%s)", port.Label, dist.Name())
		})
		port.Eng.At(end, func() {
			imp.SetJitter(nil, nil)
			inj.logf(off, port.Eng, "jitter off %s (%d delayed)", port.Label, imp.Stats().Jittered)
		})
	case RateLimit:
		port.Eng.At(start, func() {
			imp.SetRate(pr.RateBps, pr.Burst)
			inj.logf(on, port.Eng, "rate-limit on %s (%d bps)", port.Label, pr.RateBps)
		})
		port.Eng.At(end, func() {
			imp.SetRate(0, 0)
			inj.logf(off, port.Eng, "rate-limit off %s (%d paced)", port.Label, imp.Stats().RateLimited)
		})
	}
}
