package faults

import (
	"strings"
	"testing"

	"hwatch/internal/aqm"
	"hwatch/internal/netem"
	"hwatch/internal/sim"
)

func TestScheduleValidate(t *testing.T) {
	ge := netem.GEParams{GoodToBad: 0.1, BadToGood: 0.5, LossBad: 1}
	cases := []struct {
		name    string
		sched   Schedule
		wantErr string
	}{
		{"empty ok", Schedule{}, ""},
		{"point ok", Schedule{{Kind: LinkDown, At: 5}}, ""},
		{"window ok", Schedule{{Kind: BurstLoss, At: 5, Until: 10, GE: ge}}, ""},
		{"unknown kind", Schedule{{Kind: "meteor-strike", At: 1}}, "unknown kind"},
		{"negative time", Schedule{{Kind: ShimCrash, At: -1}}, "negative time"},
		{"empty window", Schedule{{Kind: ECNBlackhole, At: 10, Until: 10}}, "not after start"},
		{"inverted window", Schedule{{Kind: ProbeBlackout, At: 10, Until: 3}}, "not after start"},
		{"ge out of range", Schedule{{Kind: BurstLoss, At: 1, Until: 2,
			GE: netem.GEParams{GoodToBad: 1.5, BadToGood: 0.5, LossBad: 1}}}, "outside [0, 1]"},
		{"ge never drops", Schedule{{Kind: BurstLoss, At: 1, Until: 2,
			GE: netem.GEParams{GoodToBad: 0.1, BadToGood: 0.5}}}, "never drop"},
	}
	for _, tc := range cases {
		err := tc.sched.Validate()
		switch {
		case tc.wantErr == "" && err != nil:
			t.Errorf("%s: unexpected error %v", tc.name, err)
		case tc.wantErr != "" && (err == nil || !strings.Contains(err.Error(), tc.wantErr)):
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestScheduleLastClear(t *testing.T) {
	ge := netem.GEParams{GoodToBad: 0.1, BadToGood: 0.5, LossBad: 1}
	s := Schedule{
		{Kind: LinkDown, At: 100},
		{Kind: LinkUp, At: 200},
		{Kind: BurstLoss, At: 50, Until: 400, GE: ge}, // window outlasts the point events
	}
	if got := s.LastClear(); got != 400 {
		t.Fatalf("LastClear = %d, want 400", got)
	}
	if got := (Schedule{}).LastClear(); got != 0 {
		t.Fatalf("empty LastClear = %d, want 0", got)
	}
}

// testFabric is one transmitting port ("up") into a sink.
type sink struct {
	pkts []*netem.Packet
}

func (s *sink) Deliver(p *netem.Packet) { s.pkts = append(s.pkts, p) }

func newTestFabric(eng *sim.Engine) (Fabric, *netem.Port, *sink) {
	s := &sink{}
	p := netem.NewPort(eng, aqm.NewDropTail(1000), 1e9, 0)
	p.Label = "up"
	p.Connect(s)
	return Fabric{Links: map[string]*netem.Port{"up": p}, DefaultLink: "up"}, p, s
}

func TestArmRejectsUnknownTargets(t *testing.T) {
	eng := sim.New()
	fab, _, _ := newTestFabric(eng)
	cases := []Schedule{
		{{Kind: LinkDown, At: 1, Target: "nosuch"}},
		{{Kind: ECNBlackhole, At: 1, Until: 2, Target: "nosuch"}},
		{{Kind: ShimCrash, At: 1, Target: "shim5"}}, // fabric has no shims
		{{Kind: ShimCrash, At: 1, Target: "bogus"}},
	}
	for i, sched := range cases {
		if _, err := Arm(eng, sim.NewRNG(1), sched, fab); err == nil {
			t.Errorf("case %d: Arm accepted an unresolvable target", i)
		}
	}
	// But shim events with the default "" target are a no-op on shimless
	// fabrics, so one schedule works across every scheme.
	if _, err := Arm(eng, sim.NewRNG(1), Schedule{{Kind: ShimCrash, At: 1}}, fab); err != nil {
		t.Fatalf("default-target shim event on shimless fabric: %v", err)
	}
}

// TestInjectorTimeline arms a link-flap plus probe blackout and checks the
// port state toggles exactly at the scheduled instants.
func TestInjectorTimeline(t *testing.T) {
	eng := sim.New()
	fab, port, _ := newTestFabric(eng)
	sched := Schedule{
		{Kind: LinkDown, At: 10 * sim.Microsecond},
		{Kind: LinkUp, At: 30 * sim.Microsecond},
		{Kind: ProbeBlackout, At: 40 * sim.Microsecond, Until: 60 * sim.Microsecond},
	}
	inj, err := Arm(eng, sim.NewRNG(1), sched, fab)
	if err != nil {
		t.Fatal(err)
	}
	type sample struct {
		at         int64
		down, drop bool
	}
	var got []sample
	for _, at := range []int64{5, 15, 35, 45, 65} {
		at := at * sim.Microsecond
		eng.At(at, func() { got = append(got, sample{at, port.Down(), false}) })
	}
	eng.Run()

	want := []bool{false, true, false, false, false}
	for i, s := range got {
		if s.down != want[i] {
			t.Errorf("t=%d: down = %v, want %v", s.at, s.down, want[i])
		}
	}
	if inj.LastClear() != 60*sim.Microsecond {
		t.Fatalf("LastClear = %d", inj.LastClear())
	}
	if log := inj.Log(); len(log) != 4 {
		t.Fatalf("Log has %d entries, want 4: %v", len(log), log)
	}
}

// TestBurstLossWindowDeterminism: the same seed and schedule produce the
// same drop pattern, and the channel is detached outside its window.
func TestBurstLossWindowDeterminism(t *testing.T) {
	run := func(seed int64) (delivered int, drops int64) {
		eng := sim.New()
		fab, port, snk := newTestFabric(eng)
		sched := Schedule{{
			Kind: BurstLoss, At: 10 * sim.Microsecond, Until: 510 * sim.Microsecond,
			GE: netem.GEParams{GoodToBad: 0.2, BadToGood: 0.3, LossBad: 1},
		}}
		inj, err := Arm(eng, sim.NewRNG(seed), sched, fab)
		if err != nil {
			t.Fatal(err)
		}
		// One 125-byte packet per microsecond: 1 us serialization each, so
		// the port keeps up and every loss is the channel's doing.
		for i := 0; i < 1000; i++ {
			i := i
			eng.At(int64(i)*sim.Microsecond, func() {
				port.Send(&netem.Packet{ID: uint64(i), Wire: 125})
			})
		}
		eng.Run()
		return len(snk.pkts), inj.BurstDrops()
	}

	d1, l1 := run(42)
	d2, l2 := run(42)
	if d1 != d2 || l1 != l2 {
		t.Fatalf("same seed diverged: %d/%d vs %d/%d", d1, l1, d2, l2)
	}
	if l1 == 0 {
		t.Fatal("burst channel never dropped despite GoodToBad=0.2 over 500 packets")
	}
	if d1+int(l1) != 1000 {
		t.Fatalf("delivered %d + dropped %d != 1000 offered", d1, l1)
	}
	d3, _ := run(43)
	if d3 == d1 {
		t.Log("seeds 42 and 43 delivered equal counts (possible but unlikely); pattern check follows")
	}
}
