package faults

import (
	"strings"
	"testing"

	"hwatch/internal/aqm"
	"hwatch/internal/netem"
	"hwatch/internal/sim"
)

func TestScheduleValidate(t *testing.T) {
	ge := netem.GEParams{GoodToBad: 0.1, BadToGood: 0.5, LossBad: 1}
	cases := []struct {
		name    string
		sched   Schedule
		wantErr string
	}{
		{"empty ok", Schedule{}, ""},
		{"point ok", Schedule{{Kind: LinkDown, At: 5}}, ""},
		{"window ok", Schedule{{Kind: BurstLoss, At: 5, Until: 10, GE: ge}}, ""},
		{"unknown kind", Schedule{{Kind: "meteor-strike", At: 1}}, "unknown kind"},
		{"negative time", Schedule{{Kind: ShimCrash, At: -1}}, "negative time"},
		{"empty window", Schedule{{Kind: ECNBlackhole, At: 10, Until: 10}}, "not after start"},
		{"inverted window", Schedule{{Kind: ProbeBlackout, At: 10, Until: 3}}, "not after start"},
		{"ge out of range", Schedule{{Kind: BurstLoss, At: 1, Until: 2,
			GE: netem.GEParams{GoodToBad: 1.5, BadToGood: 0.5, LossBad: 1}}}, "outside [0, 1]"},
		{"ge never drops", Schedule{{Kind: BurstLoss, At: 1, Until: 2,
			GE: netem.GEParams{GoodToBad: 0.1, BadToGood: 0.5}}}, "never drop"},
	}
	for _, tc := range cases {
		err := tc.sched.Validate()
		switch {
		case tc.wantErr == "" && err != nil:
			t.Errorf("%s: unexpected error %v", tc.name, err)
		case tc.wantErr != "" && (err == nil || !strings.Contains(err.Error(), tc.wantErr)):
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestScheduleLastClear(t *testing.T) {
	ge := netem.GEParams{GoodToBad: 0.1, BadToGood: 0.5, LossBad: 1}
	s := Schedule{
		{Kind: LinkDown, At: 100},
		{Kind: LinkUp, At: 200},
		{Kind: BurstLoss, At: 50, Until: 400, GE: ge}, // window outlasts the point events
	}
	if got := s.LastClear(); got != 400 {
		t.Fatalf("LastClear = %d, want 400", got)
	}
	if got := (Schedule{}).LastClear(); got != 0 {
		t.Fatalf("empty LastClear = %d, want 0", got)
	}
}

// testFabric is one transmitting port ("up") into a sink.
type sink struct {
	pkts []*netem.Packet
}

func (s *sink) Deliver(p *netem.Packet) { s.pkts = append(s.pkts, p) }

func newTestFabric(eng *sim.Engine) (Fabric, *netem.Port, *sink) {
	s := &sink{}
	p := netem.NewPort(eng, aqm.NewDropTail(1000), 1e9, 0)
	p.Label = "up"
	p.Connect(s)
	return Fabric{Links: map[string]*netem.Port{"up": p}, DefaultLink: "up"}, p, s
}

func TestArmRejectsUnknownTargets(t *testing.T) {
	eng := sim.New()
	fab, _, _ := newTestFabric(eng)
	cases := []Schedule{
		{{Kind: LinkDown, At: 1, Target: "nosuch"}},
		{{Kind: ECNBlackhole, At: 1, Until: 2, Target: "nosuch"}},
		{{Kind: ShimCrash, At: 1, Target: "shim5"}}, // fabric has no shims
		{{Kind: ShimCrash, At: 1, Target: "bogus"}},
	}
	for i, sched := range cases {
		if _, err := Arm(eng, sim.NewRNG(1), sched, fab); err == nil {
			t.Errorf("case %d: Arm accepted an unresolvable target", i)
		}
	}
	// But shim events with the default "" target are a no-op on shimless
	// fabrics, so one schedule works across every scheme.
	if _, err := Arm(eng, sim.NewRNG(1), Schedule{{Kind: ShimCrash, At: 1}}, fab); err != nil {
		t.Fatalf("default-target shim event on shimless fabric: %v", err)
	}
}

// TestInjectorTimeline arms a link-flap plus probe blackout and checks the
// port state toggles exactly at the scheduled instants.
func TestInjectorTimeline(t *testing.T) {
	eng := sim.New()
	fab, port, _ := newTestFabric(eng)
	sched := Schedule{
		{Kind: LinkDown, At: 10 * sim.Microsecond},
		{Kind: LinkUp, At: 30 * sim.Microsecond},
		{Kind: ProbeBlackout, At: 40 * sim.Microsecond, Until: 60 * sim.Microsecond},
	}
	inj, err := Arm(eng, sim.NewRNG(1), sched, fab)
	if err != nil {
		t.Fatal(err)
	}
	type sample struct {
		at         int64
		down, drop bool
	}
	var got []sample
	for _, at := range []int64{5, 15, 35, 45, 65} {
		at := at * sim.Microsecond
		eng.At(at, func() { got = append(got, sample{at, port.Down(), false}) })
	}
	eng.Run()

	want := []bool{false, true, false, false, false}
	for i, s := range got {
		if s.down != want[i] {
			t.Errorf("t=%d: down = %v, want %v", s.at, s.down, want[i])
		}
	}
	if inj.LastClear() != 60*sim.Microsecond {
		t.Fatalf("LastClear = %d", inj.LastClear())
	}
	if log := inj.Log(); len(log) != 4 {
		t.Fatalf("Log has %d entries, want 4: %v", len(log), log)
	}
}

// TestBurstLossWindowDeterminism: the same seed and schedule produce the
// same drop pattern, and the channel is detached outside its window.
func TestBurstLossWindowDeterminism(t *testing.T) {
	run := func(seed int64) (delivered int, drops int64) {
		eng := sim.New()
		fab, port, snk := newTestFabric(eng)
		sched := Schedule{{
			Kind: BurstLoss, At: 10 * sim.Microsecond, Until: 510 * sim.Microsecond,
			GE: netem.GEParams{GoodToBad: 0.2, BadToGood: 0.3, LossBad: 1},
		}}
		inj, err := Arm(eng, sim.NewRNG(seed), sched, fab)
		if err != nil {
			t.Fatal(err)
		}
		// One 125-byte packet per microsecond: 1 us serialization each, so
		// the port keeps up and every loss is the channel's doing.
		for i := 0; i < 1000; i++ {
			i := i
			eng.At(int64(i)*sim.Microsecond, func() {
				port.Send(&netem.Packet{ID: uint64(i), Wire: 125})
			})
		}
		eng.Run()
		return len(snk.pkts), inj.BurstDrops()
	}

	d1, l1 := run(42)
	d2, l2 := run(42)
	if d1 != d2 || l1 != l2 {
		t.Fatalf("same seed diverged: %d/%d vs %d/%d", d1, l1, d2, l2)
	}
	if l1 == 0 {
		t.Fatal("burst channel never dropped despite GoodToBad=0.2 over 500 packets")
	}
	if d1+int(l1) != 1000 {
		t.Fatalf("delivered %d + dropped %d != 1000 offered", d1, l1)
	}
	d3, _ := run(43)
	if d3 == d1 {
		t.Log("seeds 42 and 43 delivered equal counts (possible but unlikely); pattern check follows")
	}
}

// newMultiFabric is four named links into private sinks, for pick-based
// and recurring schedules that need a target pool.
func newMultiFabric(eng *sim.Engine) (Fabric, map[string]*netem.Port) {
	links := map[string]*netem.Port{}
	for _, name := range []string{"l0", "l1", "l2", "l3"} {
		p := netem.NewPort(eng, aqm.NewDropTail(1000), 1e9, 0)
		p.Label = name
		p.Connect(&sink{})
		links[name] = p
	}
	return Fabric{Links: links, DefaultLink: "l0"}, links
}

func TestScheduleValidateChaos(t *testing.T) {
	rec := func(interval, dur, jit int64, count int) *Recurrence {
		return &Recurrence{Interval: interval, Duration: dur, Jitter: jit, Count: count}
	}
	cases := []struct {
		name    string
		sched   Schedule
		wantErr string
	}{
		{"recurring flap ok", Schedule{{Kind: LinkDown, At: 1, Recur: rec(100, 10, 5, 3)}}, ""},
		{"recurring pick ok", Schedule{{Kind: ShimCrash, At: 1, Pick: 2, Recur: rec(100, 10, 0, 2)}}, ""},
		{"single occurrence needs no interval", Schedule{{Kind: LinkDown, At: 1, Recur: rec(0, 10, 0, 1)}}, ""},
		{"restore cannot recur", Schedule{{Kind: LinkUp, At: 1, Recur: rec(100, 10, 0, 2)}}, "restore kinds cannot recur"},
		{"restore cannot pick", Schedule{{Kind: ShimRestart, At: 1, Pick: 1}}, "restore kinds cannot pick"},
		{"until with recur", Schedule{{Kind: ECNBlackhole, At: 1, Until: 50, Recur: rec(100, 10, 0, 2)}}, "until must be zero"},
		{"zero count", Schedule{{Kind: LinkDown, At: 1, Recur: rec(100, 10, 0, 0)}}, "count = 0"},
		{"zero duration", Schedule{{Kind: LinkDown, At: 1, Recur: rec(100, 0, 0, 2)}}, "duration = 0"},
		{"negative jitter", Schedule{{Kind: LinkDown, At: 1, Recur: rec(100, 10, -1, 2)}}, "jitter = -1"},
		{"overlapping occurrences", Schedule{{Kind: LinkDown, At: 1, Recur: rec(100, 60, 50, 2)}}, "exceed interval"},
		{"negative pick", Schedule{{Kind: LinkDown, At: 1, Pick: -1}}, "pick = -1"},
		{"target and pick", Schedule{{Kind: LinkDown, At: 1, Target: "up", Pick: 1}}, "mutually exclusive"},
		{"corrupt ok", Schedule{{Kind: Corrupt, At: 1, Until: 2, Impair: ImpairParams{Prob: 0.1, DropFrac: 0.5}}}, ""},
		{"corrupt prob zero", Schedule{{Kind: Corrupt, At: 1, Until: 2}}, "prob = 0"},
		{"corrupt drop frac", Schedule{{Kind: Corrupt, At: 1, Until: 2, Impair: ImpairParams{Prob: 0.1, DropFrac: 2}}}, "drop_frac"},
		{"duplicate copies", Schedule{{Kind: Duplicate, At: 1, Until: 2, Impair: ImpairParams{Prob: 0.1, Copies: 5}}}, "copies = 5"},
		{"reorder hold", Schedule{{Kind: Reorder, At: 1, Until: 2, Impair: ImpairParams{Prob: 0.1, Hold: -1}}}, "hold = -1"},
		{"jitter unknown dist", Schedule{{Kind: Jitter, At: 1, Until: 2, Impair: ImpairParams{Dist: "bimodal", Delay: 10}}}, "unknown dist"},
		{"jitter all zero", Schedule{{Kind: Jitter, At: 1, Until: 2}}, "both zero"},
		{"pareto needs delay", Schedule{{Kind: Jitter, At: 1, Until: 2, Impair: ImpairParams{Dist: "pareto", Jitter: 10}}}, "pareto needs delay"},
		{"rate not positive", Schedule{{Kind: RateLimit, At: 1, Until: 2}}, "not positive"},
		{"rate burst negative", Schedule{{Kind: RateLimit, At: 1, Until: 2, Impair: ImpairParams{RateBps: 1e6, Burst: -1}}}, "burst = -1"},
	}
	for _, tc := range cases {
		err := tc.sched.Validate()
		switch {
		case tc.wantErr == "" && err != nil:
			t.Errorf("%s: unexpected error %v", tc.name, err)
		case tc.wantErr != "" && (err == nil || !strings.Contains(err.Error(), tc.wantErr)):
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestUnknownKindListsRegistry: the error for a bad kind must name every
// registered kind, so a typo in a -faults file is self-diagnosing.
func TestUnknownKindListsRegistry(t *testing.T) {
	err := Schedule{{Kind: "meteor-strike", At: 1}}.Validate()
	if err == nil {
		t.Fatal("unknown kind accepted")
	}
	for _, k := range Kinds() {
		if !strings.Contains(err.Error(), string(k)) {
			t.Errorf("unknown-kind error omits %q: %v", k, err)
		}
	}
}

// TestInfosCoverKinds: every registered kind carries a one-line doc (the
// -list-faults output), in registry order.
func TestInfosCoverKinds(t *testing.T) {
	infos := Infos()
	kinds := Kinds()
	if len(infos) != len(kinds) {
		t.Fatalf("Infos has %d entries, Kinds %d", len(infos), len(kinds))
	}
	for i, ki := range infos {
		if ki.Kind != kinds[i] {
			t.Errorf("Infos[%d] = %s, Kinds[%d] = %s", i, ki.Kind, i, kinds[i])
		}
		if ki.Doc == "" {
			t.Errorf("%s: empty doc line", ki.Kind)
		}
		if ki.Windowed != (Event{Kind: ki.Kind, At: 1, Until: 2}).Windowed() {
			t.Errorf("%s: Windowed flag disagrees with Event.Windowed", ki.Kind)
		}
	}
}

func TestScheduleLastClearRecurrence(t *testing.T) {
	s := Schedule{{Kind: LinkDown, At: 100,
		Recur: &Recurrence{Interval: 50, Duration: 10, Jitter: 5, Count: 4}}}
	// Last occurrence starts at 100 + 3*50 (+ up to 5 jitter), active 10.
	if got, want := s.LastClear(), int64(100+3*50+5+10); got != want {
		t.Fatalf("LastClear = %d, want %d", got, want)
	}
}

// TestRecurringFlapTimeline: a jitter-free recurrence downs the link at
// exactly At + i*Interval and restores it Duration later, every time.
func TestRecurringFlapTimeline(t *testing.T) {
	eng := sim.New()
	fab, port, _ := newTestFabric(eng)
	sched := Schedule{{Kind: LinkDown, At: 10 * sim.Microsecond,
		Recur: &Recurrence{Interval: 40 * sim.Microsecond, Duration: 10 * sim.Microsecond, Count: 3}}}
	inj, err := Arm(eng, sim.NewRNG(1), sched, fab)
	if err != nil {
		t.Fatal(err)
	}
	var got []bool
	for _, at := range []int64{5, 15, 25, 55, 65, 95, 105} {
		eng.At(at*sim.Microsecond, func() { got = append(got, port.Down()) })
	}
	eng.Run()
	want := []bool{false, true, false, true, false, true, false}
	for i, down := range got {
		if down != want[i] {
			t.Errorf("sample %d: down = %v, want %v", i, down, want[i])
		}
	}
	// 3 downs + 3 ups in the log; the injector clears with the last up.
	if log := inj.Log(); len(log) != 6 {
		t.Fatalf("Log has %d entries, want 6: %v", len(log), log)
	}
	if want := (90 + 10) * sim.Microsecond; inj.LastClear() != want {
		t.Fatalf("LastClear = %d, want %d", inj.LastClear(), want)
	}
}

// TestPickDeterminism: random target selection is a pure function of the
// seed — the same seed picks the same links in the same order, twice.
func TestPickDeterminism(t *testing.T) {
	run := func(seed int64) []string {
		eng := sim.New()
		fab, _ := newMultiFabric(eng)
		sched := Schedule{{Kind: LinkDown, At: 10 * sim.Microsecond, Pick: 2,
			Recur: &Recurrence{Interval: 50 * sim.Microsecond, Duration: 10 * sim.Microsecond,
				Jitter: 20 * sim.Microsecond, Count: 4}}}
		inj, err := Arm(eng, sim.NewRNG(seed), sched, fab)
		if err != nil {
			t.Fatal(err)
		}
		eng.Run()
		return inj.Log()
	}
	one, two := run(42), run(42)
	if len(one) != 4*2*2 { // 4 occurrences x 2 picked links x down+up
		t.Fatalf("Log has %d entries, want 16: %v", len(one), one)
	}
	for i := range one {
		if one[i] != two[i] {
			t.Fatalf("same seed diverged at log[%d]: %q vs %q", i, one[i], two[i])
		}
	}
	other := run(43)
	same := len(other) == len(one)
	if same {
		for i := range one {
			if one[i] != other[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("seeds 42 and 43 produced identical picks and jitter across 4 occurrences")
	}
}

func TestPickExceedsPool(t *testing.T) {
	eng := sim.New()
	fab, _, _ := newTestFabric(eng) // one link
	_, err := Arm(eng, sim.NewRNG(1), Schedule{{Kind: LinkDown, At: 1, Pick: 5}}, fab)
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("pick 5 of 1 link: err = %v, want 'exceeds'", err)
	}
}

// TestArmImpairWindow: an armed corrupt window flips packets only inside
// [At, Until) and the injector surfaces the counters.
func TestArmImpairWindow(t *testing.T) {
	eng := sim.New()
	fab, port, snk := newTestFabric(eng)
	sched := Schedule{{Kind: Corrupt, At: 100 * sim.Microsecond, Until: 600 * sim.Microsecond,
		Impair: ImpairParams{Prob: 1, DropFrac: 1}}}
	inj, err := Arm(eng, sim.NewRNG(5), sched, fab)
	if err != nil {
		t.Fatal(err)
	}
	if !inj.HasImpairments() {
		t.Fatal("HasImpairments = false with a corrupt window armed")
	}
	for i := 0; i < 1000; i++ {
		i := i
		eng.At(int64(i)*sim.Microsecond, func() {
			port.Send(&netem.Packet{ID: uint64(i), Wire: 125})
		})
	}
	eng.Run()
	st := inj.ImpairStats()
	// Prob 1 + drop 1: exactly the in-window packets flip and die.
	if st.Corrupted != 500 || st.CorruptDrops != 500 {
		t.Fatalf("corrupted %d / dropped %d, want 500 / 500", st.Corrupted, st.CorruptDrops)
	}
	if len(snk.pkts) != 500 {
		t.Fatalf("delivered %d, want the 500 out-of-window packets", len(snk.pkts))
	}
}
