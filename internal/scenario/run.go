package scenario

import (
	"fmt"

	"hwatch/internal/core"
	"hwatch/internal/harness"
	"hwatch/internal/netem"
	"hwatch/internal/stats"
)

// Run is the measured outcome of one scenario run, holding exactly the
// series the paper's figures plot.
type Run struct {
	Label string

	// Short-lived flows (Fig. 1a/2a/8a/9a/11a).
	ShortFCTms stats.Sample // per-flow completion time, milliseconds
	// Per-source average and variance of FCT across the incast epochs —
	// the AVG and VAR CDFs of Fig. 2a.
	PerSourceAvgMs stats.Sample
	PerSourceVarMs stats.Sample
	// Per-short-flow retransmitted segments (proxy for Fig. 1b's per-flow
	// drop counts, observed at the sender like ns-2 traces do).
	ShortRetrans stats.Sample

	// Long-lived flows (Fig. 1c/2c/8b/9b/11b): per-flow goodput in bit/s
	// averaged over the run.
	LongGoodputBps stats.Sample
	// LongFairness is Jain's index over the long flows' goodputs
	// (quantifies the Fig. 2 unfairness).
	LongFairness float64

	// Bottleneck telemetry (Fig. 1d/2b/8c/9c and 2d/8d/9d).
	QueuePkts   stats.TimeSeries
	QueueBytes  stats.TimeSeries
	Utilization stats.TimeSeries // fraction of line rate per sample window

	// Totals.
	Drops     int64 // queue drops at the bottleneck (tail + early)
	Marks     int64 // CE marks applied at the bottleneck
	Timeouts  int64 // RTO expiries across short flows
	ShortDone int
	ShortAll  int

	ShimStats *core.Stats // aggregate over all hosts (shim-deploying schemes)

	// ChaosStats aggregates the per-kind impairment counters of an armed
	// chaos schedule (nil when none armed). Like ShimStats it describes
	// the injected chaos, not the schemes' observable outcome, so Digest
	// excludes it.
	ChaosStats *netem.ImpairStats

	// Execution metadata. WallNs and Events describe the machine that ran
	// the scenario, not the scenario itself, so Digest excludes them.
	WallNs int64  // wall-clock time spent inside the event loop
	Events uint64 // simulator events executed

	// InvariantViolations holds the checker's findings when checking was
	// enabled (DumbbellParams.Check / TestbedParams.Check or
	// SetInvariantChecks); empty on a sound run.
	InvariantViolations []string
}

// Digest folds the run's complete observable outcome — every queue and
// utilization sample, every FCT, retransmit and per-source statistic, the
// drop/mark/timeout totals — into one FNV-64 value. Two runs of the same
// spec and seed digest identically at any parallelism; timing metadata is
// deliberately excluded.
func (r *Run) Digest() uint64 {
	d := harness.NewDigest()
	d.String(r.Label)
	d.Floats(r.ShortFCTms.Values())
	d.Floats(r.PerSourceAvgMs.Values())
	d.Floats(r.PerSourceVarMs.Values())
	d.Floats(r.ShortRetrans.Values())
	d.Floats(r.LongGoodputBps.Values())
	d.Float64(r.LongFairness)
	d.Series(r.QueuePkts.T, r.QueuePkts.V)
	d.Series(r.QueueBytes.T, r.QueueBytes.V)
	d.Series(r.Utilization.T, r.Utilization.V)
	d.Int64(r.Drops)
	d.Int64(r.Marks)
	d.Int64(r.Timeouts)
	d.Int(r.ShortDone)
	d.Int(r.ShortAll)
	return d.Sum()
}

// DigestHex renders Digest the way golden files and -digest output print it.
func (r *Run) DigestHex() string { return fmt.Sprintf("%016x", r.Digest()) }

// Summary renders the run's headline numbers in one line.
func (r *Run) Summary() string {
	return fmt.Sprintf("%-12s shortFCT(ms): p50=%.2f p99=%.2f mean=%.2f | longGoodput(Gb/s): mean=%.2f | q(pkts): mean=%.0f | drops=%d marks=%d rto=%d | done=%d/%d",
		r.Label,
		r.ShortFCTms.Quantile(0.5), r.ShortFCTms.Quantile(0.99), r.ShortFCTms.Mean(),
		r.LongGoodputBps.Mean()/1e9,
		r.QueuePkts.Mean(),
		r.Drops, r.Marks, r.Timeouts, r.ShortDone, r.ShortAll)
}
