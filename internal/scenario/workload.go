package scenario

import (
	"hwatch/internal/netem"
	"hwatch/internal/sim"
	"hwatch/internal/stats"
	"hwatch/internal/tcp"
	"hwatch/internal/topo"
	"hwatch/internal/workload"
)

// dumbbellTraffic is the dumbbell kind's default workload: long-lived
// background flows from the first LongSources hosts plus epochs of
// correlated short flows from the rest, all terminating at the
// aggregation host (the paper's Sections II and V scenarios).
type dumbbellTraffic struct {
	longRecv []*tcp.Receiver
	longTx   []*tcp.Sender
	incast   *workload.Incast
}

func (h *dumbbellTraffic) Wire(rc *RunContext, run *Run) {
	d := rc.Dumbbell
	p := rc.DumbbellP
	rng := rc.Rng

	// Receivers: every connection terminates at the aggregation host.
	// Long flows come from ephemeral ports of the first LongSources hosts.
	// The receiver side of each connection mirrors the originating host's
	// configuration, as a real handshake would negotiate.
	longHosts := map[netem.NodeID]bool{}
	cfgByID := map[netem.NodeID]tcp.Config{}
	for _, s := range d.Senders {
		cfgByID[s.ID] = rc.ConfigFor(s)
	}
	for i := 0; i < p.LongSources; i++ {
		longHosts[d.Senders[i].ID] = true
	}
	d.Receiver.Listen(DefaultPort, func(syn *netem.Packet) netem.Handler {
		cfg, ok := cfgByID[syn.Src]
		if !ok {
			cfg = tcp.DefaultConfig()
		}
		r := tcp.NewReceiver(d.Receiver, syn.Src, syn.DstPort, syn.SrcPort, cfg)
		if longHosts[r.Peer()] {
			h.longRecv = append(h.longRecv, r)
		}
		return r
	})

	// Long-lived background flows start immediately.
	for i := 0; i < p.LongSources; i++ {
		host := d.Senders[i]
		ll := workload.StartLongLived([]*netem.Host{host}, d.Receiver.ID, cfgByID[host.ID],
			workload.LongLivedConfig{Port: DefaultPort, StartAt: 0, Jitter: p.LinkDelay, Rng: rng.Fork()})
		h.longTx = append(h.longTx, ll.Senders...)
	}

	// Short-lived incast epochs from the remaining hosts. Incast flows of a
	// MIX run inherit each host's flavour via the per-host configuration.
	if p.ShortSources > 0 && p.Epochs > 0 {
		segTime := int64(netem.DefaultMTU) * 8 * sim.Second / p.BottleneckBps
		cfgForHost := func(hh *netem.Host) tcp.Config { return cfgByID[hh.ID] }
		h.incast = workload.RunIncastConfigs(d.Senders[p.LongSources:], d.Receiver.ID, cfgForHost,
			workload.IncastConfig{
				Port:          DefaultPort,
				FlowSize:      p.ShortSize,
				Epochs:        p.Epochs,
				FirstEpoch:    p.FirstEpoch,
				EpochInterval: p.EpochInterval,
				JitterMean:    segTime,
				Rng:           rng.Fork(),
			},
			func(fct, _ int64) {
				run.ShortFCTms.Add(float64(fct) / float64(sim.Millisecond))
			})
	}

	rc.WatchSenders(func() []*tcp.Sender {
		out := append([]*tcp.Sender(nil), h.longTx...)
		if h.incast != nil {
			out = append(out, h.incast.LiveSenders()...)
		}
		return out
	})
}

func (h *dumbbellTraffic) Finish(rc *RunContext, run *Run) {
	p := rc.DumbbellP
	for _, r := range h.longRecv {
		run.LongGoodputBps.Add(float64(r.Delivered()) * 8 / (float64(p.Duration) / float64(sim.Second)))
	}
	run.LongFairness = stats.JainIndex(run.LongGoodputBps.Values())
	if h.incast != nil {
		h.incast.Finalize()
		run.ShortAll = h.incast.Started
		run.ShortDone = h.incast.Completed
		for _, s := range h.incast.Senders {
			st := s.Stats()
			run.Timeouts += st.Timeouts
			run.ShortRetrans.Add(float64(st.Retransmits))
		}
		for _, fcts := range h.incast.FCTsByHost {
			var perSrc stats.Sample
			for _, f := range fcts {
				perSrc.Add(float64(f) / float64(sim.Millisecond))
			}
			run.PerSourceAvgMs.Add(perSrc.Mean())
			run.PerSourceVarMs.Add(perSrc.Var())
		}
	}
}

// testbedTraffic is the testbed kind's default workload: iperf-style long
// flows from every server rack into the client rack plus epochs of
// parallel web fetches (the paper's Section VI experiment).
type testbedTraffic struct {
	longRecv    []*tcp.Receiver
	longSenders []*tcp.Sender
	web         *workload.Web
}

func (h *testbedTraffic) Wire(rc *RunContext, run *Run) {
	ls := rc.LeafSpine
	p := rc.TestbedP
	rng := rc.Rng
	tcfg := rc.ConfigFor(nil)
	baseRTT := ls.BaseRTT(topo.LeafSpineConfig{EdgeDelay: p.LinkDelay, CoreDelay: p.LinkDelay})

	clientRack := p.Racks - 1
	clients := ls.Racks[clientRack][:p.WebClients]

	// Clients listen; long-flow sinks are spread across all client-rack
	// hosts so edge links don't bottleneck before the core.
	for _, hh := range ls.Racks[clientRack] {
		host := hh
		host.Listen(DefaultPort, tcp.NewListener(host, tcfg, nil))
		host.Listen(DefaultPort+1, tcp.NewListener(host, tcfg, func(r *tcp.Receiver) {
			h.longRecv = append(h.longRecv, r)
		}))
	}

	// Long iperf flows: LongPerRack from each server rack, destinations
	// round-robin over the client rack.
	li := 0
	for r := 0; r < p.Racks-1; r++ {
		for i := 0; i < p.LongPerRack; i++ {
			src := ls.Racks[r][i%p.HostsPerRack]
			dst := ls.Racks[clientRack][li%p.HostsPerRack]
			li++
			s := tcp.NewSender(src, dst.ID, DefaultPort+1, tcp.Infinite, tcfg)
			h.longSenders = append(h.longSenders, s)
			at := rng.UniformRange(0, 2*baseRTT)
			// Start on the source host's engine: sharded fabrics fire the
			// event on the owning shard.
			src.Eng.At(at, s.Start)
		}
	}

	// Web servers: the first WebServers hosts of each server rack.
	var servers []*netem.Host
	for r := 0; r < p.Racks-1; r++ {
		servers = append(servers, ls.Racks[r][:p.WebServers]...)
	}
	segTime := int64(netem.DefaultMTU) * 8 * sim.Second / p.RateBps
	h.web = workload.RunWeb(servers, clients, tcfg, workload.WebConfig{
		Port:          DefaultPort,
		ObjectSize:    p.ObjectSize,
		Parallel:      p.Parallel,
		Epochs:        p.Epochs,
		FirstEpoch:    p.FirstEpoch,
		EpochInterval: p.EpochInterval,
		JitterMean:    segTime,
		Rng:           rng.Fork(),
	}, func(fct, _ int64) {
		run.ShortFCTms.Add(float64(fct) / float64(sim.Millisecond))
	})

	rc.WatchSenders(func() []*tcp.Sender {
		out := append([]*tcp.Sender(nil), h.longSenders...)
		return append(out, h.web.LiveSenders()...)
	})
}

func (h *testbedTraffic) Finish(rc *RunContext, run *Run) {
	p := rc.TestbedP
	h.web.Finalize()
	for _, r := range h.longRecv {
		run.LongGoodputBps.Add(float64(r.Delivered()) * 8 / (float64(p.Duration) / float64(sim.Second)))
	}
	run.LongFairness = stats.JainIndex(run.LongGoodputBps.Values())
	run.ShortAll = h.web.Started
	run.ShortDone = h.web.Completed
	for _, s := range h.web.Senders {
		st := s.Stats()
		run.Timeouts += st.Timeouts
		run.ShortRetrans.Add(float64(st.Retransmits))
	}
}
