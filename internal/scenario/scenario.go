package scenario

import (
	"context"
	"fmt"
	"strings"
	"time"

	"hwatch/internal/aqm"
	"hwatch/internal/core"
	"hwatch/internal/faults"
	"hwatch/internal/netem"
	"hwatch/internal/sim"
	"hwatch/internal/tcp"
	"hwatch/internal/topo"
)

// Kind selects a scenario topology.
type Kind string

const (
	// KindDumbbell is the ns-2 dumbbell (Figs. 1, 2, 8, 9).
	KindDumbbell Kind = "dumbbell"
	// KindTestbed is the 4-rack leaf-spine testbed (Fig. 11).
	KindTestbed Kind = "testbed"
)

// Share assigns a scheme a relative weight in a mixed-tenancy scenario:
// sender hosts cycle through the expanded scheme pattern (a Share of 2
// puts the scheme on twice as many hosts as a Share of 1; <= 0 counts
// as 1). Fig. 2's MIX is three schemes with equal shares.
type Share struct {
	Scheme Scheme
	Share  int
}

// Spec declaratively describes one runnable scenario: a topology kind,
// one or more schemes (more than one = mixed tenancy), the workload and
// any extra observers. It is the single Run path behind every experiment,
// figure, CLI and JSON file.
type Spec struct {
	Kind Kind
	// Schemes lists the scheme(s) sharing the fabric. Exactly one for the
	// testbed; one or more for the dumbbell.
	Schemes []Share
	// Label overrides the run's display label ("" = the scheme's label,
	// or "MIX" when several schemes share the fabric; the testbed uses
	// Label verbatim).
	Label string
	// Guest, when non-nil, replaces every scheme's guest stack with an
	// explicit configuration (the R3 agnosticism studies). Shim
	// deployments still see the scheme's default guest, as a hypervisor
	// module would: it cannot know what stack the tenant boots.
	Guest *tcp.Config
	// ShimOverlay additionally installs HWatch shims on every host over
	// whatever schemes run (the MIX+HWatch extension). Configured from
	// the dumbbell's BaseRTT and ShimTweak.
	ShimOverlay bool

	Dumbbell DumbbellParams
	Testbed  TestbedParams

	// Shards partitions the fabric across that many engine shards running
	// under the conservative-lookahead group (0 = the package default set
	// by SetDefaultShards, itself defaulting to the single-loop engine).
	// Sharding is an execution detail: the digest is byte-identical at any
	// shard count.
	Shards int

	// Faults is a deterministic fault timeline armed on the assembled
	// fabric before traffic starts (empty = fault-free run). A non-empty
	// schedule also switches the deployed shims' degradation fallbacks on
	// (probe-loss pass-through, ECN-dark clamp release) and appends a
	// RecoveryObserver asserting the run heals after the last fault
	// clears. Part of the determinism contract: same seed + spec +
	// schedule ⇒ identical digest.
	Faults faults.Schedule

	// Progress, when non-nil, is invoked periodically during the run (every
	// few thousand fired events) with the simulated clock and the events
	// processed so far. It is an out-of-band observation hook: it cannot
	// schedule work, consumes no event-order state, and therefore never
	// perturbs a digest. Sharded runs call it concurrently from every
	// shard's worker goroutine, so it must be safe for concurrent use.
	Progress func(simNow int64, processed uint64)

	// Workload overrides the kind's default traffic (nil = dumbbell
	// long-lived + incast, testbed iperf + web).
	Workload Workload
	// Observers are appended after the built-in telemetry, invariant and
	// shim-stats observers. Instances are per-run: do not share stateful
	// observers across concurrent Run calls.
	Observers []Observer
}

// shards resolves the spec's effective shard count: an explicit
// Spec.Shards wins, then the params' own count, then the package default.
func (s *Spec) shards(paramShards int) int {
	n := s.Shards
	if n == 0 {
		n = paramShards
	}
	if n == 0 {
		n = DefaultShards()
	}
	if n < 1 {
		n = 1
	}
	return n
}

// singleShardOnly rejects scheme deployments that cannot span shards (a
// shared OvS-style shim serves hosts of every shard from one engine).
func singleShardOnly(shards int, names ...string) error {
	if shards <= 1 {
		return nil
	}
	for _, name := range names {
		if def, ok := Lookup(name); ok && def.SingleShard {
			return fmt.Errorf("scheme %q deploys shared per-fabric state and only runs single-loop; drop -shards or pick a per-host scheme", name)
		}
	}
	return nil
}

// Run executes the spec and returns the measured outcome.
func (s *Spec) Run() (*Run, error) {
	return s.RunContext(context.Background())
}

// RunContext executes the spec under ctx: cancellation interrupts the
// event loop within a few thousand events and returns ctx.Err() with a nil
// Run. An uninterrupted run is byte-identical to Run — the cancellation
// check rides the engine's out-of-band poll hook, never the event queue.
func (s *Spec) RunContext(ctx context.Context) (*Run, error) {
	if ctx == nil {
		ctx = context.Background() //hwatchvet:allow ctxflow nil-ctx compat default: a nil context means the documented never-cancelled run
	}
	switch s.Kind {
	case KindDumbbell:
		return s.runDumbbell(ctx)
	case KindTestbed:
		return s.runTestbed(ctx)
	}
	return nil, fmt.Errorf("unrunnable scenario kind %q", string(s.Kind))
}

// RunDumbbell executes one scheme under the given parameters (the
// classic entry point; panics on an unregistered scheme).
func RunDumbbell(scheme Scheme, p DumbbellParams) *Run {
	run, err := RunDumbbellContext(context.Background(), scheme, p)
	if err != nil {
		panic("scenario: " + err.Error())
	}
	return run
}

// RunDumbbellContext is RunDumbbell under a context: cancellation
// interrupts the run and returns ctx.Err() instead of panicking.
func RunDumbbellContext(ctx context.Context, scheme Scheme, p DumbbellParams) (*Run, error) {
	return (&Spec{
		Kind:     KindDumbbell,
		Schemes:  []Share{{Scheme: scheme}},
		Dumbbell: p,
	}).RunContext(ctx)
}

// RunTestbed executes the leaf-spine scenario with or without HWatch
// (the classic boolean entry point; any registered scheme can run on the
// testbed through a Spec).
func RunTestbed(hwatch bool, p TestbedParams) *Run {
	run, err := RunTestbedContext(context.Background(), hwatch, p)
	if err != nil {
		panic("scenario: " + err.Error())
	}
	return run
}

// RunTestbedContext is RunTestbed under a context: cancellation
// interrupts the run and returns ctx.Err() instead of panicking.
func RunTestbedContext(ctx context.Context, hwatch bool, p TestbedParams) (*Run, error) {
	scheme := DropTail
	if hwatch {
		scheme = HWatch
	}
	return (&Spec{
		Kind:    KindTestbed,
		Schemes: []Share{{Scheme: scheme}},
		Testbed: p,
	}).RunContext(ctx)
}

// DumbbellFabric builds the dumbbell topology for a materialized
// bottleneck queue (edge ports stay deep, as in ns-2). p.Shards > 1
// partitions it for conservative-lookahead parallel execution.
func DumbbellFabric(bottleneckQ func() netem.Queue, p DumbbellParams) *topo.Dumbbell {
	return topo.NewDumbbell(topo.DumbbellConfig{
		Senders:       p.LongSources + p.ShortSources,
		EdgeRateBps:   p.EdgeBps,
		BottleneckBps: p.BottleneckBps,
		LinkDelay:     p.LinkDelay,
		BottleneckQ:   bottleneckQ,
		EdgeQ:         func() netem.Queue { return aqm.NewDropTail(100000) },
		Shards:        p.Shards,
	})
}

// materialize binds every scheme in the spec to env and expands the
// share-weighted host pattern (host i runs pattern[i % len(pattern)]).
func (s *Spec) materialize(env Env) ([]Materialized, []int, error) {
	if len(s.Schemes) == 0 {
		return nil, nil, fmt.Errorf("scenario spec names no schemes")
	}
	mats := make([]Materialized, 0, len(s.Schemes))
	var pattern []int
	for i, sh := range s.Schemes {
		m, err := Materialize(sh.Scheme, env)
		if err != nil {
			return nil, nil, err
		}
		mats = append(mats, m)
		n := sh.Share
		if n <= 0 {
			n = 1
		}
		for k := 0; k < n; k++ {
			pattern = append(pattern, i)
		}
	}
	return mats, pattern, nil
}

func (s *Spec) displayLabel(mats []Materialized) string {
	if s.Label != "" {
		return s.Label
	}
	if len(mats) > 1 {
		return "MIX"
	}
	return mats[0].Label
}

// overlayDeployment is the MIX+HWatch extension's hypervisor overlay: one
// shim per host, configured from the fabric's base RTT independently of
// any tenant's stack.
func overlayDeployment(env Env) Deployment {
	cfg := core.DefaultConfig(env.BaseRTT)
	cfg.MSS = netem.DefaultMSS
	if env.ShimTweak != nil {
		env.ShimTweak(&cfg)
	}
	return func(hosts []*netem.Host) []*core.Shim {
		out := make([]*core.Shim, 0, len(hosts))
		for _, h := range hosts {
			out = append(out, core.Attach(h, cfg))
		}
		return out
	}
}

func (s *Spec) runDumbbell(ctx context.Context) (*Run, error) {
	p := s.Dumbbell
	p.Shards = s.shards(p.Shards)
	rng := sim.NewRNG(p.Seed)
	meanPkt := int64(netem.DefaultMTU) * 8 * sim.Second / p.BottleneckBps
	baseRTT := 4 * p.LinkDelay

	var eng *sim.Engine
	clock := func() int64 {
		if eng == nil {
			return 0
		}
		return eng.Now()
	}
	env := Env{
		BufferPkts:  p.BufferPkts,
		MarkPkts:    int(float64(p.BufferPkts) * p.MarkFrac),
		MeanPktTime: meanPkt,
		BaseRTT:     baseRTT,
		ICW:         p.ICW,
		MinRTO:      p.MinRTO,
		ByteBuffers: p.ByteBuffers,
		Rng:         rng,
		Clock:       clock,
		ShimTweak:   s.hardenShims(p.ShimTweak),
	}
	mats, pattern, err := s.materialize(env)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(mats))
	for i := range mats {
		names[i] = mats[i].Name
	}
	if err := singleShardOnly(p.Shards, names...); err != nil {
		return nil, err
	}
	if s.Guest != nil {
		for i := range mats {
			mats[i].TCPConfig = *s.Guest
		}
	}

	d := DumbbellFabric(mats[0].BottleneckQ, p)
	// The hub engine owns the bottleneck port: telemetry samples and fault
	// arming stay shard-local there (shard 0 == the hub single-loop).
	eng = d.BottleneckPort.Eng

	hosts := make([]*netem.Host, 0, len(d.Senders)+1)
	hosts = append(hosts, d.Senders...)
	hosts = append(hosts, d.Receiver)

	var shims []*core.Shim
	// A single scheme's shim deployment covers every hypervisor. In a mix,
	// per-scheme deployments are skipped — the hypervisor shim is
	// infrastructure, not per-tenant; use ShimOverlay to watch a mix.
	if len(mats) == 1 && mats[0].Attach != nil {
		shims = mats[0].Attach(hosts)
	}
	if s.ShimOverlay {
		shims = append(shims, overlayDeployment(env)(hosts)...)
	}

	run := &Run{Label: s.displayLabel(mats)}
	idx := map[netem.NodeID]int{}
	for i, h := range d.Senders {
		idx[h.ID] = i
	}
	links := map[string]*netem.Port{
		"bottleneck":  d.BottleneckPort,
		"receiver.up": d.Receiver.Uplink(),
	}
	for i, h := range d.Senders {
		links[fmt.Sprintf("sender%d.up", i)] = h.Uplink()
	}
	rc := &RunContext{
		Eng:       eng,
		Group:     d.Net.Group(),
		Rng:       rng,
		Dumbbell:  d,
		DumbbellP: p,
		ConfigFor: func(h *netem.Host) tcp.Config {
			return mats[pattern[idx[h.ID]%len(pattern)]].TCPConfig
		},
		Bottleneck:     d.Bottleneck,
		BottleneckPort: d.BottleneckPort,
		PortLabel:      "bottleneck",
		LineRateBps:    p.BottleneckBps,
		SampleEvery:    p.SampleEvery,
		Duration:       p.Duration,
		Check:          p.Check,
		Shims:          shims,
		Fabric: faults.Fabric{
			Links:         links,
			DefaultLink:   "bottleneck",
			Switches:      map[string]*netem.Switch{"tor": d.Switch},
			DefaultSwitch: "tor",
			Shims:         shims,
			Hosts:         hosts,
		},
	}
	return s.execute(ctx, rc, run, p.Duration+p.DrainAfter)
}

// hardenShims arms the shim degradation fallbacks whenever a fault
// timeline is staged: a chaos-tested deployment must not clamp on a
// signal path that faults can sever. The spec's own tweak runs last, so
// explicit settings win.
func (s *Spec) hardenShims(base func(*core.Config)) func(*core.Config) {
	if len(s.Faults) == 0 {
		return base
	}
	return func(c *core.Config) {
		c.ProbeLossFallback = true
		if c.EcnDarkEpochs == 0 {
			c.EcnDarkEpochs = 8
		}
		if base != nil {
			base(c)
		}
	}
}

func (s *Spec) runTestbed(ctx context.Context) (*Run, error) {
	if len(s.Schemes) != 1 {
		return nil, fmt.Errorf("testbed scenarios take exactly one scheme, got %d", len(s.Schemes))
	}
	scheme := s.Schemes[0].Scheme
	def, ok := Lookup(string(scheme))
	if !ok {
		return nil, fmt.Errorf("unknown scheme %q: registered schemes are %s",
			string(scheme), strings.Join(Names(), ", "))
	}
	p := s.Testbed
	p.Shards = s.shards(p.Shards)
	if err := singleShardOnly(p.Shards, def.Name); err != nil {
		return nil, err
	}
	rng := sim.NewRNG(p.Seed)
	bufBytes := p.BufferPkts * netem.DefaultMTU
	markPkts := int(float64(p.BufferPkts) * p.MarkFrac)
	kBytes := markPkts * netem.DefaultMTU
	baseRTT := (&topo.LeafSpine{}).BaseRTT(topo.LeafSpineConfig{EdgeDelay: p.LinkDelay, CoreDelay: p.LinkDelay})

	// The paper's testbed ran its shimmed configuration with an aggressive
	// guest RTO; shimless schemes keep the plain-TCP setting.
	minRTO := p.MinRTO
	if def.Shims != nil && p.HWatchMinRTO > 0 {
		minRTO = p.HWatchMinRTO
	}

	var eng *sim.Engine
	clock := func() int64 {
		if eng == nil {
			return 0
		}
		return eng.Now()
	}
	env := Env{
		BufferPkts:  p.BufferPkts,
		MarkPkts:    markPkts,
		MeanPktTime: int64(netem.DefaultMTU) * 8 * sim.Second / p.RateBps,
		BaseRTT:     baseRTT,
		MinRTO:      minRTO,
		ByteBuffers: true, // the testbed's switches account in bytes
		Rng:         rng,
		Clock:       clock,
		// Pace connection admission at the drain rate of the marking
		// threshold: one SYN-ACK per K-bytes drain time, small burst. With
		// ~200 concurrent requests per client this is what spreads the
		// incast over time instead of over the (tiny) buffer.
		ShimTweak: s.hardenShims(func(c *core.Config) {
			c.SynAckBurst = 2
			c.RefillEvery = int64(kBytes) * 8 * sim.Second / p.RateBps
			if p.ShimTweak != nil {
				p.ShimTweak(c)
			}
		}),
	}
	mat, err := Materialize(scheme, env)
	if err != nil {
		return nil, err
	}
	if s.Guest != nil {
		mat.TCPConfig = *s.Guest
	}

	ls := topo.NewLeafSpine(topo.LeafSpineConfig{
		Racks:        p.Racks,
		HostsPerRack: p.HostsPerRack,
		EdgeRateBps:  p.RateBps,
		CoreRateBps:  p.RateBps,
		EdgeDelay:    p.LinkDelay,
		CoreDelay:    p.LinkDelay,
		EdgeQ:        func() netem.Queue { return aqm.NewDropTailBytes(4 * bufBytes) },
		CoreQ:        mat.BottleneckQ,
		Shards:       p.Shards,
	})
	clientRack := p.Racks - 1
	// The hub engine owns the spine's instrumented down port toward the
	// client rack (the spine shard; shard 0 single-loop).
	eng = ls.SpineDown[clientRack].Eng

	var shims []*core.Shim
	if mat.Attach != nil {
		shims = mat.Attach(ls.AllHosts())
	}
	if s.ShimOverlay {
		shims = append(shims, overlayDeployment(env)(ls.AllHosts())...)
	}

	run := &Run{Label: s.Label}
	links := map[string]*netem.Port{"bottleneck": ls.SpineDown[clientRack]}
	for i, sp := range ls.SpineDown {
		links[fmt.Sprintf("spine.down%d", i)] = sp
	}
	rc := &RunContext{
		Eng:            eng,
		Group:          ls.Net.Group(),
		Rng:            rng,
		LeafSpine:      ls,
		TestbedP:       p,
		ConfigFor:      func(*netem.Host) tcp.Config { return mat.TCPConfig },
		Bottleneck:     ls.SpineQ[clientRack],
		BottleneckPort: ls.SpineDown[clientRack],
		PortLabel:      "spine-down",
		LineRateBps:    p.RateBps,
		SampleEvery:    p.SampleEvery,
		Duration:       p.Duration,
		Check:          p.Check,
		Shims:          shims,
		Fabric: faults.Fabric{
			Links:         links,
			DefaultLink:   "bottleneck",
			Switches:      map[string]*netem.Switch{"spine": ls.Spine},
			DefaultSwitch: "spine",
			Shims:         shims,
			Hosts:         ls.AllHosts(),
		},
	}
	return s.execute(ctx, rc, run, p.Duration)
}

// execute wires the workload, starts the observers, runs the engine and
// harvests everything — the one run path every scenario shares. ctx
// cancellation and Progress reporting both ride the engines' out-of-band
// poll hook, so an uninterrupted run is byte-identical to one executed
// with neither.
func (s *Spec) execute(ctx context.Context, rc *RunContext, run *Run, runUntil int64) (*Run, error) {
	w := s.Workload
	if w == nil {
		if rc.Dumbbell != nil {
			w = &dumbbellTraffic{}
		} else {
			w = &testbedTraffic{}
		}
	}
	obs := []Observer{&telemetryObserver{}, &invariantObserver{}, shimStatsObserver{}}
	if len(s.Faults) > 0 {
		// Arm the fault timeline before the workload wires (a fixed point
		// in the RNG fork order, so schedules stay deterministic), and hold
		// the run to the recovery invariants afterwards.
		inj, err := faults.Arm(rc.Eng, rc.Rng, s.Faults, rc.Fabric)
		if err != nil {
			return nil, fmt.Errorf("arming fault schedule: %w", err)
		}
		rc.Injector = inj
		obs = append(obs, RecoveryObserver{}, chaosStatsObserver{})
	}
	obs = append(obs, s.Observers...)

	w.Wire(rc, run)
	for _, o := range obs {
		o.Start(rc, run)
	}

	cancellable := ctx.Done() != nil
	if cancellable || s.Progress != nil {
		progress := s.Progress
		poll := func(now int64, processed uint64) bool {
			if progress != nil {
				progress(now, processed)
			}
			return cancellable && ctx.Err() != nil
		}
		if rc.Group != nil {
			rc.Group.SetPoll(poll)
		} else {
			rc.Eng.SetPoll(poll)
		}
	}

	start := time.Now() //hwatchvet:allow detrand WallNs is an operator-facing speed metric, excluded from digests
	if rc.Group != nil {
		rc.Group.RunUntil(runUntil)
		run.Events = rc.Group.Processed()
	} else {
		rc.Eng.RunUntil(runUntil)
		run.Events = rc.Eng.Processed
	}
	run.WallNs = time.Since(start).Nanoseconds() //hwatchvet:allow detrand WallNs is an operator-facing speed metric, excluded from digests

	if cancellable {
		if err := ctx.Err(); err != nil {
			// The run was interrupted mid-flight: its partial measurements
			// are meaningless and the workload/observer Finish paths assume
			// a drained fabric, so drop the run entirely.
			return nil, err
		}
	}

	w.Finish(rc, run)
	for _, o := range obs {
		o.Finish(rc, run)
	}
	return run, nil
}
