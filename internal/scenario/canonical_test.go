package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

func mustDigest(t *testing.T, raw string) string {
	t.Helper()
	s, err := ParseSpec([]byte(raw))
	if err != nil {
		t.Fatalf("ParseSpec(%s): %v", raw, err)
	}
	d, err := s.CanonicalDigest()
	if err != nil {
		t.Fatalf("CanonicalDigest(%s): %v", raw, err)
	}
	return d
}

// TestCanonicalDigestFormattingInvariant: key order, whitespace and the
// excluded execution details (check, shards) never move the digest.
func TestCanonicalDigestFormattingInvariant(t *testing.T) {
	base := mustDigest(t, `{"kind":"dumbbell","scheme":"hwatch","duration_ms":100,"seed":7}`)
	for _, variant := range []string{
		`{"seed":7,"duration_ms":100,"scheme":"hwatch","kind":"dumbbell"}`,
		"{\n  \"kind\": \"dumbbell\",\n  \"scheme\": \"hwatch\",\n  \"duration_ms\": 100,\n  \"seed\": 7\n}",
		`{"kind":"dumbbell","scheme":"hwatch","duration_ms":100,"seed":7,"check":true}`,
		`{"kind":"dumbbell","scheme":"hwatch","duration_ms":100,"seed":7,"shards":4}`,
	} {
		if got := mustDigest(t, variant); got != base {
			t.Errorf("digest moved on a cosmetic/execution-detail variant:\n%s\n%s vs %s", variant, got, base)
		}
	}
}

// TestCanonicalDigestSeedScope: with an explicit seed, spelling out a
// default parameter is canonical-equal to omitting it (the runs are
// identical); without one, the spelled-out spec derives a different seed,
// so the canonical forms — like the runs — must differ.
func TestCanonicalDigestSeedScope(t *testing.T) {
	explicit := mustDigest(t, `{"kind":"dumbbell","scheme":"hwatch","seed":42}`)
	explicitSpelled := mustDigest(t, `{"kind":"dumbbell","scheme":"hwatch","seed":42,"long_sources":25}`)
	if explicit != explicitSpelled {
		t.Errorf("explicit-seed specs with identical materialization digest differently: %s vs %s",
			explicit, explicitSpelled)
	}

	derived := mustDigest(t, `{"kind":"dumbbell","scheme":"hwatch"}`)
	derivedSpelled := mustDigest(t, `{"kind":"dumbbell","scheme":"hwatch","long_sources":25}`)
	if derived == derivedSpelled {
		t.Error("derived-seed specs with different identities digest identically — the cache would alias different runs")
	}
}

// TestCanonicalDigestDistinguishes: changes that change the simulation
// change the digest.
func TestCanonicalDigestDistinguishes(t *testing.T) {
	base := mustDigest(t, `{"kind":"dumbbell","scheme":"hwatch","seed":7}`)
	for _, variant := range []string{
		`{"kind":"dumbbell","scheme":"dctcp","seed":7}`,
		`{"kind":"dumbbell","scheme":"hwatch","seed":8}`,
		`{"kind":"dumbbell","scheme":"hwatch","seed":7,"long_sources":10}`,
		`{"kind":"testbed","scheme":"hwatch","seed":7}`,
		`{"kind":"dumbbell","scheme":"hwatch","seed":7,"with_shims":true}`,
		`{"kind":"dumbbell","scheme":"hwatch","seed":7,"faults":[{"kind":"link-down","at_ms":50},{"kind":"link-up","at_ms":60}]}`,
	} {
		if got := mustDigest(t, variant); got == base {
			t.Errorf("variant digests identically to base:\n%s", variant)
		}
	}
}

// TestCanonicalDigestFaults: the fault timeline is canonicalized from its
// rendered form — cosmetic reordering of JSON keys inside an event is
// invisible, moving an event is not.
func TestCanonicalDigestFaults(t *testing.T) {
	a := mustDigest(t, `{"kind":"dumbbell","scheme":"hwatch","seed":7,"faults":[{"kind":"burst-loss","at_ms":50,"until_ms":70,"loss_bad":1,"p_good_bad":0.05,"p_bad_good":0.5}]}`)
	b := mustDigest(t, `{"kind":"dumbbell","scheme":"hwatch","seed":7,"faults":[{"p_good_bad":0.05,"p_bad_good":0.5,"loss_bad":1,"until_ms":70,"at_ms":50,"kind":"burst-loss"}]}`)
	if a != b {
		t.Errorf("fault key order moved the digest: %s vs %s", a, b)
	}
	c := mustDigest(t, `{"kind":"dumbbell","scheme":"hwatch","seed":7,"faults":[{"kind":"burst-loss","at_ms":51,"until_ms":70,"loss_bad":1,"p_good_bad":0.05,"p_bad_good":0.5}]}`)
	if a == c {
		t.Error("moving a fault event did not move the digest")
	}
}

// TestCanonicalDigestRejectsInvalid: validation runs before digesting, for
// hand-built specs too.
func TestCanonicalDigestRejectsInvalid(t *testing.T) {
	for _, s := range []*FileSpec{
		{Kind: "ring"},
		{Kind: "dumbbell", Scheme: "no-such-scheme"},
		{Kind: "dumbbell", MarkPercent: 200},
	} {
		if _, err := s.CanonicalDigest(); err == nil {
			t.Errorf("invalid spec %+v digested without error", s)
		}
	}
}

// seenDigests records, across the whole fuzz run, the materialized
// signature first seen for each digest; a second signature under the same
// digest is a collision between specs that run different simulations.
var seenDigests sync.Map

// materializedSig captures everything that determines a spec's simulation:
// kind, scheme pattern, shim overlay, effective parameters (execution
// details zeroed, matching the canonical scope) and the rendered faults.
func materializedSig(s *FileSpec) string {
	var params any
	switch s.Kind {
	case "dumbbell":
		p := s.dumbbellParams()
		p.Check, p.Shards = false, 0
		params = p
	case "testbed":
		p := s.testbedParams()
		p.Check, p.Shards = false, 0
		params = p
	}
	sched, _ := RenderFaults(s.Faults)
	return fmt.Sprintf("%s|%v|%v|%s|%+v|%+v", s.Kind, s.WithShims, s.Mix, s.Scheme, params, sched)
}

// FuzzSpecCanonicalDigest: decode → canonicalize → digest never panics;
// the digest is invariant under JSON key reordering and whitespace; and
// distinct materialized specs never collide on anything the fuzzer finds.
func FuzzSpecCanonicalDigest(f *testing.F) {
	f.Add([]byte(`{"kind":"dumbbell","scheme":"hwatch"}`))
	f.Add([]byte(`{"kind":"dumbbell","scheme":"dctcp","seed":42,"long_sources":25}`))
	f.Add([]byte(`{"kind":"dumbbell","mix":[{"scheme":"dctcp"},{"scheme":"reno-deaf","share":2}],"with_shims":true}`))
	f.Add([]byte(`{"kind":"testbed","scheme":"hwatch","racks":2,"hosts_per_rack":4,"parallel":2,"epochs":1}`))
	f.Add([]byte(`{"kind":"dumbbell","scheme":"hwatch","seed":7,"faults":[{"kind":"link-down","at_ms":50},{"kind":"link-up","at_ms":60}]}`))
	f.Add([]byte(`{"kind":"dumbbell","scheme":"hwatch","check":true,"shards":4}`))
	f.Add([]byte(`{"seed":9,"duration_ms":80,  "scheme":"hwatch","kind":"dumbbell"}`))
	f.Add([]byte(`{"kind":"dumbbell","scheme":"hwatch","bottleneck_gbps":1.5,"mark_percent":12.5,"short_kb":7.25}`))
	f.Fuzz(func(t *testing.T, raw []byte) {
		s, err := ParseSpec(raw)
		if err != nil {
			return
		}
		digest, err := s.CanonicalDigest()
		if err != nil {
			t.Fatalf("accepted spec failed to digest: %v\nraw: %s", err, raw)
		}
		if len(digest) != 64 {
			t.Fatalf("digest %q is not 64 hex chars", digest)
		}

		// Reformat the raw JSON generically (sorted keys, no whitespace,
		// numbers preserved via json.Number) — the digest must not move.
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.UseNumber()
		var v any
		if err := dec.Decode(&v); err == nil {
			if re, err := json.Marshal(v); err == nil {
				s2, err := ParseSpec(re)
				if err != nil {
					t.Fatalf("reformatted spec no longer parses: %v\nraw: %s\nre: %s", err, raw, re)
				}
				d2, err := s2.CanonicalDigest()
				if err != nil {
					t.Fatalf("reformatted spec failed to digest: %v", err)
				}
				if d2 != digest {
					t.Fatalf("digest moved on reformat:\nraw: %s → %s\nre:  %s → %s", raw, digest, re, d2)
				}
			}
		}

		// Distinct materialized specs must never share a digest.
		sig := materializedSig(s)
		if prev, loaded := seenDigests.LoadOrStore(digest, sig); loaded && prev.(string) != sig {
			t.Fatalf("digest collision %s:\nfirst: %s\n  now: %s", digest, prev, sig)
		}
	})
}
