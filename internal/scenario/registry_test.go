package scenario

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestRegisterValidation(t *testing.T) {
	cases := map[string]Definition{
		"empty name":    {Bottleneck: dropTailQueue},
		"no bottleneck": {Name: "incomplete"},
		"duplicate":     {Name: string(DCTCP), Bottleneck: dropTailQueue},
	}
	for name, def := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Register did not panic", name)
				}
			}()
			Register(def)
		}()
	}
}

func TestMaterializeUnknownScheme(t *testing.T) {
	_, err := Materialize("bbr", Env{BufferPkts: 10, MarkPkts: 2})
	if err == nil {
		t.Fatal("unknown scheme materialized")
	}
	if !strings.Contains(err.Error(), "registered schemes are") ||
		!strings.Contains(err.Error(), string(DCTCP)) {
		t.Fatalf("error does not list the registry: %v", err)
	}
}

func TestSchemeLabels(t *testing.T) {
	if DCTCP.String() != "DCTCP" || HWatch.String() != "TCP-HWATCH" {
		t.Fatalf("paper labels wrong: %q %q", DCTCP.String(), HWatch.String())
	}
	if got := Scheme("bbr").String(); got != "bbr" {
		t.Fatalf("unregistered scheme label = %q, want the raw name", got)
	}
}

func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	if len(names) < 6 {
		t.Fatalf("registry too small: %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
	for _, s := range AllSchemes() {
		if _, ok := Lookup(string(s)); !ok {
			t.Fatalf("paper scheme %q missing from registry", s)
		}
	}
}

// Every registered scheme must survive the full round trip: JSON spec ->
// ParseSpec -> Run at tiny scale, producing events under its own label.
func TestRegistryRoundTrip(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			fs := &FileSpec{
				Kind:         "dumbbell",
				Scheme:       name,
				LongSources:  2,
				ShortSources: 2,
				DurationMs:   120,
				Epochs:       1,
				ShortKB:      5,
			}
			raw, err := json.Marshal(fs)
			if err != nil {
				t.Fatal(err)
			}
			parsed, err := ParseSpec(raw)
			if err != nil {
				t.Fatalf("round-trip parse: %v", err)
			}
			run, err := parsed.Run()
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if run.Events == 0 {
				t.Fatal("scheme ran no events")
			}
			if want := Scheme(name).String(); run.Label != want {
				t.Fatalf("label = %q, want %q", run.Label, want)
			}
			if run.ShortAll == 0 {
				t.Fatal("no short flows launched")
			}
		})
	}
}
