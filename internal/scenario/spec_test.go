package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hwatch/internal/sim"
)

func TestParseSpecDefaults(t *testing.T) {
	s, err := ParseSpec([]byte(`{"kind":"dumbbell","scheme":"hwatch"}`))
	if err != nil {
		t.Fatal(err)
	}
	p := s.dumbbellParams()
	if p.LongSources != 25 || p.ShortSources != 25 {
		t.Fatalf("defaults not applied: %+v", p)
	}
	if !p.ByteBuffers {
		t.Fatal("byte buffers should default on")
	}
}

func TestParseSpecOverrides(t *testing.T) {
	raw := []byte(`{
		"kind": "dumbbell", "scheme": "dctcp",
		"long_sources": 4, "short_sources": 6,
		"bottleneck_gbps": 1, "buffer_pkts": 100, "mark_percent": 10,
		"rtt_us": 200, "icw": 5, "duration_ms": 250, "epochs": 2,
		"short_kb": 20, "seed": 99
	}`)
	s, err := ParseSpec(raw)
	if err != nil {
		t.Fatal(err)
	}
	p := s.dumbbellParams()
	if p.LongSources != 4 || p.ShortSources != 6 || p.BufferPkts != 100 {
		t.Fatalf("overrides lost: %+v", p)
	}
	if p.BottleneckBps != 1e9 || p.MarkFrac != 0.10 || p.ICW != 5 {
		t.Fatalf("conversions wrong: %+v", p)
	}
	if p.LinkDelay != 50*sim.Microsecond || p.Duration != 250*sim.Millisecond {
		t.Fatalf("time conversions wrong: %+v", p)
	}
	if p.ShortSize != 20_000 || p.Seed != 99 {
		t.Fatalf("size/seed wrong: %+v", p)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for name, raw := range map[string]string{
		"bad json":       `{kind}`,
		"bad kind":       `{"kind":"ring"}`,
		"bad scheme":     `{"kind":"dumbbell","scheme":"bbr"}`,
		"bad testbed":    `{"kind":"testbed","scheme":"bbr"}`,
		"bad mix scheme": `{"kind":"dumbbell","mix":[{"scheme":"dctcp"},{"scheme":"bbr"}]}`,
		"mix on testbed": `{"kind":"testbed","mix":[{"scheme":"dctcp"}]}`,
		"bad mark":       `{"kind":"dumbbell","scheme":"dctcp","mark_percent":150}`,
	} {
		if _, err := ParseSpec([]byte(raw)); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

// An unknown scheme must be rejected with an error that lists every
// registered name — no silent fallback to a default.
func TestParseSpecUnknownSchemeListsRegistry(t *testing.T) {
	for _, raw := range []string{
		`{"kind":"dumbbell","scheme":"bbr"}`,
		`{"kind":"testbed","scheme":"bbr"}`,
		`{"kind":"dumbbell","mix":[{"scheme":"bbr"}]}`,
	} {
		_, err := ParseSpec([]byte(raw))
		if err == nil {
			t.Fatalf("%s: unknown scheme accepted", raw)
		}
		msg := err.Error()
		if !strings.Contains(msg, `"bbr"`) || !strings.Contains(msg, "registered schemes are") {
			t.Fatalf("error does not name the offender and registry: %v", err)
		}
		for _, name := range Names() {
			if !strings.Contains(msg, name) {
				t.Fatalf("error misses registered scheme %q: %v", name, err)
			}
		}
	}
}

func TestLoadSpecFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.json")
	if err := os.WriteFile(path, []byte(`{"kind":"testbed","scheme":"hwatch","racks":2,"hosts_per_rack":4,"parallel":2,"epochs":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := LoadSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	p := s.testbedParams()
	if p.Racks != 2 || p.HostsPerRack != 4 || p.Parallel != 2 || p.Epochs != 1 {
		t.Fatalf("testbed params: %+v", p)
	}
	if _, err := LoadSpec(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// A mixed-tenancy spec runs the schemes side by side through the same
// declarative path Fig. 2 uses.
func TestSpecMixRun(t *testing.T) {
	raw := []byte(`{
		"kind": "dumbbell",
		"mix": [{"scheme":"dctcp"},{"scheme":"reno-ecn"},{"scheme":"reno-deaf"}],
		"long_sources": 3, "short_sources": 3,
		"duration_ms": 200, "epochs": 1
	}`)
	s, err := ParseSpec(raw)
	if err != nil {
		t.Fatal(err)
	}
	run, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if run.Label != "MIX" {
		t.Fatalf("label = %q, want MIX", run.Label)
	}
	if run.ShortDone != run.ShortAll || run.ShortAll != 3 {
		t.Fatalf("mix run incomplete: %d/%d", run.ShortDone, run.ShortAll)
	}
}
