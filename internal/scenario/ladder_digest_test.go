package scenario

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateLadder = flag.Bool("update", false, "rewrite testdata/ladder_digests.json from this run")

const ladderGoldenPath = "testdata/ladder_digests.json"

// ladderRuns executes every registered rung at its digest scale and
// returns the outcome digests keyed by rung name.
func ladderRuns(t *testing.T) map[string]string {
	t.Helper()
	got := map[string]string{}
	for _, r := range Rungs() {
		run, err := r.Spec(r.DigestScale).Run()
		if err != nil {
			t.Fatalf("rung %s: %v", r.Name, err)
		}
		got[r.Name] = run.DigestHex()
	}
	return got
}

// TestLadderGoldenDigests pins a golden digest for every ladder rung and
// storm spec, at the rung's digest scale: the scale ladder is the standing
// regression gate for the flat-flow-state work, so each rung's outcome
// must be bit-reproducible the same way the figure scenarios are.
// Regenerate with:
//
//	go test ./internal/scenario -run TestLadderGoldenDigests -args -update
func TestLadderGoldenDigests(t *testing.T) {
	got := ladderRuns(t)

	if *updateLadder {
		if err := os.MkdirAll(filepath.Dir(ladderGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(ladderGoldenPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d ladder digests to %s", len(got), ladderGoldenPath)
		return
	}

	buf, err := os.ReadFile(ladderGoldenPath)
	if err != nil {
		t.Fatalf("missing %s (run with -args -update to create): %v", ladderGoldenPath, err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	for name, w := range want {
		if g, ok := got[name]; !ok {
			t.Errorf("rung %s: in golden file but not registered", name)
		} else if g != w {
			t.Errorf("rung %s: digest %s, want %s", name, g, w)
		}
	}
	for name := range got {
		if _, ok := want[name]; !ok {
			t.Errorf("rung %s: registered but missing from golden file (run -args -update)", name)
		}
	}
}

// TestLadderRegistry sanity-checks the rung registry shape the tools rely
// on: the three ladder factors plus both storm CDFs, stable ordering, and
// digest scales inside (0, 1].
func TestLadderRegistry(t *testing.T) {
	rungs := Rungs()
	if len(rungs) < 5 {
		t.Fatalf("want >= 5 rungs, got %d", len(rungs))
	}
	wantOrder := []string{"ladder/1x", "ladder/10x", "ladder/100x", "storm/websearch", "storm/datamining"}
	for i, w := range wantOrder {
		if rungs[i].Name != w {
			t.Fatalf("rung %d = %s, want %s", i, rungs[i].Name, w)
		}
	}
	factors := map[string]int{"ladder/1x": 1, "ladder/10x": 10, "ladder/100x": 100}
	for _, r := range rungs {
		if r.DigestScale <= 0 || r.DigestScale > 1 {
			t.Errorf("rung %s: digest scale %v out of (0,1]", r.Name, r.DigestScale)
		}
		if f, ok := factors[r.Name]; ok && r.Factor != f {
			t.Errorf("rung %s: factor %d, want %d", r.Name, r.Factor, f)
		}
		if _, ok := LookupRung(r.Name); !ok {
			t.Errorf("rung %s: not resolvable via LookupRung", r.Name)
		}
	}
	if _, err := RunRung("ladder/nope", 1); err == nil {
		t.Fatal("unknown rung must error")
	}
}

// TestStormRungCompletes smoke-runs the websearch storm at a small scale
// and checks the open-loop accounting: flows start per the plan, some
// complete with FCT samples, and the digest is reproducible run to run.
func TestStormRungCompletes(t *testing.T) {
	r, ok := LookupRung("storm/websearch")
	if !ok {
		t.Fatal("storm/websearch not registered")
	}
	runA, err := r.Spec(0.02).Run()
	if err != nil {
		t.Fatal(err)
	}
	if runA.ShortAll < 8 {
		t.Fatalf("storm started %d flows, want >= 8", runA.ShortAll)
	}
	if runA.ShortDone == 0 || runA.ShortFCTms.N() == 0 {
		t.Fatalf("no storm flows completed (started %d)", runA.ShortAll)
	}
	if runA.ShortDone > runA.ShortAll {
		t.Fatalf("completed %d > started %d", runA.ShortDone, runA.ShortAll)
	}
	runB, err := r.Spec(0.02).Run()
	if err != nil {
		t.Fatal(err)
	}
	if runA.DigestHex() != runB.DigestHex() {
		t.Fatalf("storm digest not reproducible: %s vs %s", runA.DigestHex(), runB.DigestHex())
	}
}
