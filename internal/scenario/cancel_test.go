package scenario

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"hwatch/internal/harness"
	"hwatch/internal/sim"
)

// cancelTestSpec is a modest chaos-golden-sized dumbbell: big enough to
// fire hundreds of thousands of events (so mid-run interruption is a real
// state), small enough to finish in seconds when a regression lets it run
// to completion.
func cancelTestSpec(shards int) *Spec {
	p := PaperDumbbell(5, 5)
	p.Seed = 42
	p.ByteBuffers = true
	p.Duration = 400 * sim.Millisecond
	p.DrainAfter = 200 * sim.Millisecond
	p.Epochs = 2
	return &Spec{
		Kind:     KindDumbbell,
		Schemes:  []Share{{Scheme: HWatch}},
		Dumbbell: p,
		Shards:   shards,
	}
}

func testCancelMidRun(t *testing.T, shards int) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := cancelTestSpec(shards)
	var calls atomic.Int64
	s.Progress = func(simNow int64, processed uint64) {
		if calls.Add(1) == 2 {
			cancel()
		}
	}
	run, err := s.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned err %v, want context.Canceled", err)
	}
	if run != nil {
		t.Errorf("cancelled run returned a non-nil Run (label %q)", run.Label)
	}
	if calls.Load() < 2 {
		t.Errorf("progress hook called %d times before the run ended, want >= 2", calls.Load())
	}
}

// TestRunContextCancelMidRun proves cancellation interrupts an in-flight
// single-loop run: RunContext returns context.Canceled and no Run.
func TestRunContextCancelMidRun(t *testing.T) { testCancelMidRun(t, 1) }

// TestRunContextCancelSharded proves the same through the windowed
// conservative-lookahead group: a poll-hook stop on any shard ends the
// whole run at the next barrier.
func TestRunContextCancelSharded(t *testing.T) { testCancelMidRun(t, 2) }

// TestRunContextDigestNeutral proves the ctx/Progress plumbing is invisible
// to the model: an uninterrupted run under a cancellable context with a
// progress hook armed digests byte-identically to a plain Run.
func TestRunContextDigestNeutral(t *testing.T) {
	base, err := cancelTestSpec(0).Run()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := cancelTestSpec(0)
	var progressed atomic.Int64
	s.Progress = func(int64, uint64) { progressed.Add(1) }
	got, err := s.RunContext(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if progressed.Load() == 0 {
		t.Error("progress hook never fired during the run")
	}
	if got.DigestHex() != base.DigestHex() {
		t.Errorf("digest %s with progress+ctx armed, %s without — the hook leaked into the model",
			got.DigestHex(), base.DigestHex())
	}
}

// TestPoolCancelStopsInFlightRun is the harness.Pool cancellation
// regression test: cancelling the pool's context must interrupt a run
// already executing inside a task — not merely stop dequeuing — now that
// scenario runs observe the ctx the pool hands them.
func TestPoolCancelStopsInFlightRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pool := harness.NewPool(ctx, 1)

	started := make(chan struct{})
	var once sync.Once
	s := cancelTestSpec(0)
	s.Progress = func(int64, uint64) { once.Do(func() { close(started) }) }

	var run *Run
	var runErr error
	pool.Go("cancelled-run", func(ctx context.Context) error {
		run, runErr = s.RunContext(ctx)
		return runErr
	})
	<-started // the run is provably in flight
	cancel()

	if err := pool.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("pool.Wait returned %v, want context.Canceled", err)
	}
	if !errors.Is(runErr, context.Canceled) {
		t.Errorf("in-flight run returned %v, want context.Canceled — pool ctx did not propagate", runErr)
	}
	if run != nil {
		t.Errorf("in-flight run returned a completed Run despite cancellation")
	}
}
