package scenario

import (
	"context"
	"fmt"
	"sort"

	"hwatch/internal/harness"
	"hwatch/internal/netem"
	"hwatch/internal/sim"
	"hwatch/internal/stats"
	"hwatch/internal/tcp"
	"hwatch/internal/workload"
)

// Rung is one registered step of the benchmark scale ladder: a named,
// reproducible scenario at a fixed multiple of the paper's testbed, or an
// open-loop incast storm drawn from an empirical flow-size CDF. Rungs are
// the units the bench-ladder regression gate and the ladder golden digests
// operate on: `hwatchsim -exp ladder -rung <name>` runs one, BENCH_LADDER
// records track all of them release over release.
type Rung struct {
	// Name identifies the rung ("ladder/10x", "storm/websearch").
	Name        string
	Description string
	// Factor is the rung's source-count multiple of the paper dumbbell
	// (ladder rungs; 0 for storms).
	Factor int
	// Flows is the planned flow count at full scale (storm rungs; 0 for
	// ladder rungs).
	Flows int
	// DigestScale is the shrunken scale the golden-digest suite runs the
	// rung at, so determinism is pinned on every rung without the digest
	// job paying full-rung wall time.
	DigestScale float64
	// Spec builds the rung's scenario at the given scale: 1 is the full
	// rung; (0,1) shrinks sources/flows for digests and smoke tests.
	Spec func(scale float64) *Spec
}

var (
	rungOrder []string
	rungByKey = map[string]Rung{}
)

// RegisterRung adds a rung to the ladder. Like the scheme registry it
// panics on duplicates: rung names appear in committed BENCH_LADDER
// records and golden-digest files, so silent redefinition would corrupt
// the trajectory they track.
func RegisterRung(r Rung) {
	if r.Name == "" || r.Spec == nil {
		panic("scenario: rung needs a name and a spec builder")
	}
	if _, dup := rungByKey[r.Name]; dup {
		panic(fmt.Sprintf("scenario: duplicate rung %q", r.Name))
	}
	rungByKey[r.Name] = r
	rungOrder = append(rungOrder, r.Name)
}

// Rungs returns every registered rung in registration order (the ladder's
// canonical bottom-to-top reading).
func Rungs() []Rung {
	out := make([]Rung, 0, len(rungOrder))
	for _, name := range rungOrder {
		out = append(out, rungByKey[name])
	}
	return out
}

// RungNames returns the registered rung names, sorted, for CLI listings
// and error messages.
func RungNames() []string {
	names := make([]string, 0, len(rungByKey))
	for name := range rungByKey {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// LookupRung finds a rung by name.
func LookupRung(name string) (Rung, bool) {
	r, ok := rungByKey[name]
	return r, ok
}

// RunRung executes a registered rung at the given scale.
func RunRung(name string, scale float64) (*Run, error) {
	return RunRungContext(context.Background(), name, scale)
}

// RunRungContext is RunRung under a context; see Spec.RunContext.
func RunRungContext(ctx context.Context, name string, scale float64) (*Run, error) {
	r, ok := LookupRung(name)
	if !ok {
		return nil, fmt.Errorf("unknown rung %q: registered rungs are %v", name, RungNames())
	}
	return r.Spec(scale).RunContext(ctx)
}

// ladderParams is the paper dumbbell multiplied by factor: factor times
// the sources contending for the same 10 Gb/s bottleneck. Event volume is
// bottleneck-bound, so the cost of a higher rung is dominated by per-flow
// state and timer pressure — exactly what the slab flow tables exist for —
// and the top rung trades duration for sources to stay affordable.
func ladderParams(factor int, scale float64) DumbbellParams {
	p := PaperDumbbell(25*factor, 25*factor)
	p.ByteBuffers = true // match the Fig. 8 comparison configuration
	if factor >= 100 {
		// 5000 sources: shrink the run, keeping the incast epochs inside.
		p.Duration = 400 * sim.Millisecond
		p.Epochs = 2
	}
	return scaledLadder(p, scale)
}

// scaledLadder shrinks a ladder rung for digest and smoke runs: sources
// scale linearly, duration and epochs by a clamped factor (they bound
// wall-clock far less than event volume does).
func scaledLadder(p DumbbellParams, scale float64) DumbbellParams {
	if scale >= 1 || scale <= 0 {
		return p
	}
	shrink := func(n int) int {
		v := int(float64(n) * scale)
		if v < 2 {
			v = 2
		}
		return v
	}
	p.LongSources = shrink(p.LongSources)
	p.ShortSources = shrink(p.ShortSources)
	t := scale * 2
	if t > 1 {
		t = 1
	}
	p.Duration = int64(float64(p.Duration) * t)
	if p.Epochs > 0 {
		p.Epochs = int(float64(p.Epochs)*t) + 1
	}
	// Epoch times shrink with the duration so every scale still runs its
	// incast phase inside the window (unscaled, a deep shrink would end
	// the run before the first epoch fires).
	p.FirstEpoch = int64(float64(p.FirstEpoch) * t)
	p.EpochInterval = int64(float64(p.EpochInterval) * t)
	return p
}

// stormParams is the storm rungs' fabric: the Fig. 8 dumbbell with a
// wider source fan and no long-lived background flows — the contention is
// the storm itself.
func stormParams(hosts int, scale float64) DumbbellParams {
	p := PaperDumbbell(0, hosts)
	p.ByteBuffers = true
	p.Epochs = 0 // no default incast; the storm workload drives arrivals
	p.Duration = 300 * sim.Millisecond
	p.DrainAfter = 200 * sim.Millisecond
	p.SampleEvery = sim.Millisecond
	if scale > 0 && scale < 1 {
		p.ShortSources = int(float64(hosts) * scale)
		if p.ShortSources < 4 {
			p.ShortSources = 4
		}
	}
	return p
}

// stormSpec builds an incast-storm scenario: flows short flows with sizes
// from dist arrive open-loop over the arrival window, from every host,
// into the aggregation host, under HWatch shims.
func stormSpec(name string, flows, hosts int, dist workload.SizeDist, scale float64) *Spec {
	p := stormParams(hosts, scale)
	n := flows
	if scale > 0 && scale < 1 {
		n = int(float64(flows) * scale)
		if n < 8 {
			n = 8
		}
	}
	p.Seed = harness.SeedFor(name, 42)
	return &Spec{
		Kind:     KindDumbbell,
		Schemes:  []Share{{Scheme: HWatch}},
		Label:    name,
		Dumbbell: p,
		Workload: &stormTraffic{
			flows:  n,
			sizes:  dist,
			start:  10 * sim.Millisecond,
			window: 100 * sim.Millisecond,
		},
	}
}

func init() {
	for _, factor := range []int{1, 10, 100} {
		factor := factor
		// Digest scale floors at 0.02 so the upper rungs' digests still
		// cover tens of sources rather than the 2-source minimum.
		digestScale := 0.1 / float64(factor)
		if digestScale < 0.02 {
			digestScale = 0.02
		}
		RegisterRung(Rung{
			Name:        fmt.Sprintf("ladder/%dx", factor),
			Description: fmt.Sprintf("paper dumbbell at %dx sources (%d long + %d short) under hwatch", factor, 25*factor, 25*factor),
			Factor:      factor,
			DigestScale: digestScale,
			Spec: func(scale float64) *Spec {
				return &Spec{
					Kind:     KindDumbbell,
					Schemes:  []Share{{Scheme: HWatch}},
					Label:    fmt.Sprintf("ladder/%dx", factor),
					Dumbbell: ladderParams(factor, scale),
				}
			},
		})
	}
	RegisterRung(Rung{
		Name:        "storm/websearch",
		Description: "open-loop incast storm: 10k flows from the DCTCP websearch CDF into one aggregator",
		Flows:       10_000,
		DigestScale: 0.02,
		Spec: func(scale float64) *Spec {
			return stormSpec("storm/websearch", 10_000, 400, workload.WebSearch(), scale)
		},
	})
	RegisterRung(Rung{
		Name:        "storm/datamining",
		Description: "open-loop incast storm: 10k flows from the VL2 datamining CDF into one aggregator",
		Flows:       10_000,
		DigestScale: 0.02,
		Spec: func(scale float64) *Spec {
			return stormSpec("storm/datamining", 10_000, 400, workload.DataMining(), scale)
		},
	})
}

// stormTraffic wires an open-loop incast storm over the dumbbell: every
// sender host is a storm source, the aggregation host terminates all
// flows. Unlike dumbbellTraffic there is no closed epoch structure —
// arrivals are a pre-planned Poisson process that keeps landing regardless
// of completions, so concurrency builds to whatever the fabric admits.
type stormTraffic struct {
	flows  int
	sizes  workload.SizeDist
	start  int64
	window int64

	storm *workload.Storm
}

func (st *stormTraffic) Wire(rc *RunContext, run *Run) {
	d := rc.Dumbbell
	cfgByID := make(map[netem.NodeID]tcp.Config, len(d.Senders))
	for _, h := range d.Senders {
		cfgByID[h.ID] = rc.ConfigFor(h)
	}
	d.Receiver.Listen(DefaultPort, func(syn *netem.Packet) netem.Handler {
		cfg, ok := cfgByID[syn.Src]
		if !ok {
			cfg = tcp.DefaultConfig()
		}
		return tcp.NewReceiver(d.Receiver, syn.Src, syn.DstPort, syn.SrcPort, cfg)
	})
	st.storm = workload.RunStorm(d.Senders, d.Receiver.ID,
		func(h *netem.Host) tcp.Config { return cfgByID[h.ID] },
		workload.StormConfig{
			Port:   DefaultPort,
			Flows:  st.flows,
			Sizes:  st.sizes,
			Start:  st.start,
			Window: st.window,
			Rng:    rc.Rng.Fork(),
		},
		func(fct, _ int64) {
			run.ShortFCTms.Add(float64(fct) / float64(sim.Millisecond))
		})
	rc.WatchSenders(func() []*tcp.Sender {
		return st.storm.LiveSenders()
	})
}

func (st *stormTraffic) Finish(rc *RunContext, run *Run) {
	st.storm.Finalize()
	run.ShortAll = st.storm.Started
	run.ShortDone = st.storm.Completed
	var retrans stats.Sample
	for _, s := range st.storm.Senders {
		sst := s.Stats()
		run.Timeouts += sst.Timeouts
		retrans.Add(float64(sst.Retransmits))
	}
	run.ShortRetrans = retrans
}
