// Package scenario is the unified execution layer every experiment, CLI
// and example routes through: a string-keyed registry of congestion
// schemes (guest transport + bottleneck AQM + optional hypervisor shim
// deployment), a declarative Spec binding a topology kind, one or more
// schemes, a workload and observers into a single Run path, and a JSON
// loader for file-driven scenarios. New schemes register once and become
// available to cmd/hwatchsim -scheme, JSON specs and mixed-scheme
// tenancy without touching any figure code.
package scenario

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"hwatch/internal/core"
	"hwatch/internal/netem"
	"hwatch/internal/sim"
	"hwatch/internal/tcp"
)

// Scheme names a registered end-to-end system. The value is the
// registry key ("dctcp", "hwatch", ...); String renders the display
// label the figures print.
type Scheme string

// The paper's four schemes (Figs. 8-9).
const (
	DropTail Scheme = "droptail"
	RED      Scheme = "red"
	DCTCP    Scheme = "dctcp"
	HWatch   Scheme = "hwatch"
)

// Extension schemes registered out of the box.
const (
	CubicRED  Scheme = "cubic-red"
	DCTCPSack Scheme = "dctcp+sack"
	HWatchOvS Scheme = "hwatch-ovs"
	RenoECN   Scheme = "reno-ecn"
	RenoDeaf  Scheme = "reno-deaf"
)

func (s Scheme) String() string {
	if def, ok := Lookup(string(s)); ok {
		return def.Label
	}
	return string(s)
}

// AllSchemes lists the Fig. 8/9 comparison set in the paper's order.
func AllSchemes() []Scheme { return []Scheme{DropTail, RED, HWatch, DCTCP} }

// Env carries the fabric-level quantities a scheme definition may need:
// buffer and marking-threshold sizes, the bottleneck's mean packet
// service time, the topology's base RTT, guest overrides, and the run's
// RNG and clock for randomized AQMs.
type Env struct {
	BufferPkts  int
	MarkPkts    int
	MeanPktTime int64 // bottleneck service time of one MTU packet, ns
	BaseRTT     int64 // propagation-only round trip, ns
	ICW         int   // guest initial-window override (0 = stack default)
	MinRTO      int64 // guest minimum-RTO override (0 = stack default)
	ByteBuffers bool  // byte-accounted bottleneck buffers

	Rng   *sim.RNG     // randomized AQMs fork from here at queue build time
	Clock func() int64 // simulation clock (usable before the engine exists)

	// ShimTweak, when non-nil, adjusts a shim-deploying scheme's HWatch
	// configuration after the defaults are applied (ablation studies,
	// testbed pacing).
	ShimTweak func(*core.Config)
}

// BufferBytes is the byte-accounted buffer capacity.
func (e Env) BufferBytes() int { return e.BufferPkts * netem.DefaultMTU }

// MarkBytes is the byte-accounted marking threshold.
func (e Env) MarkBytes() int { return e.MarkPkts * netem.DefaultMTU }

// Deployment installs a scheme's hypervisor shims on the scenario's
// hosts and returns them for stats aggregation. Hosts arrive in the
// topology's canonical order (dumbbell: senders then receiver;
// leaf-spine: rack by rack).
type Deployment func(hosts []*netem.Host) []*core.Shim

// Definition is one registered scheme: a display label plus factories
// for the guest stack, the bottleneck queue discipline and an optional
// shim deployment.
type Definition struct {
	// Name is the registry key ("dctcp"); lower-case, stable.
	Name string
	// Label is the display name figures print ("DCTCP").
	Label string
	// Description is the one-line summary -list-schemes prints.
	Description string
	// Guest returns the guest stack configuration (nil = stock NewReno).
	Guest func(Env) tcp.Config
	// Bottleneck returns the factory building the shared queue. Required.
	Bottleneck func(Env) func() netem.Queue
	// Shims, when non-nil, returns the hypervisor deployment for the
	// materialized guest configuration.
	Shims func(Env, tcp.Config) Deployment
	// SingleShard marks a scheme whose deployment shares mutable state
	// across every host from one engine (the OvS-style shared shim); such
	// schemes refuse to run on a sharded fabric.
	SingleShard bool
}

var (
	regMu    sync.RWMutex
	registry = map[string]Definition{}
)

// Register adds a scheme definition. It panics on an empty or duplicate
// name and on a missing bottleneck factory — registration mistakes are
// programming errors, caught at init time.
func Register(def Definition) {
	if def.Name == "" {
		panic("scenario: Register needs a name")
	}
	if def.Bottleneck == nil {
		panic("scenario: scheme " + def.Name + " needs a bottleneck factory")
	}
	if def.Label == "" {
		def.Label = def.Name
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[def.Name]; dup {
		panic("scenario: scheme " + def.Name + " registered twice")
	}
	registry[def.Name] = def
}

// Lookup returns the definition registered under name.
func Lookup(name string) (Definition, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	def, ok := registry[name]
	return def, ok
}

// Names lists every registered scheme name, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Definitions lists every registered scheme, sorted by name.
func Definitions() []Definition {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Definition, 0, len(registry))
	for _, d := range registry {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Materialized is a scheme bound to one scenario's Env: the concrete
// guest configuration (ICW/MinRTO overrides applied), the bottleneck
// factory, and the shim deployment (nil for shimless schemes).
type Materialized struct {
	Name        string
	Label       string
	TCPConfig   tcp.Config
	BottleneckQ func() netem.Queue
	Attach      Deployment
}

// Materialize binds a scheme name to an Env. Unknown names error,
// listing the registry's valid names.
func Materialize(s Scheme, env Env) (Materialized, error) {
	def, ok := Lookup(string(s))
	if !ok {
		return Materialized{}, fmt.Errorf("unknown scheme %q: registered schemes are %s",
			string(s), strings.Join(Names(), ", "))
	}
	tcfg := tcp.DefaultConfig()
	if def.Guest != nil {
		tcfg = def.Guest(env)
	}
	if env.ICW > 0 {
		tcfg.InitCwnd = env.ICW
	}
	if env.MinRTO > 0 {
		tcfg.MinRTO = env.MinRTO
		tcfg.InitRTO = env.MinRTO
	}
	m := Materialized{
		Name:        def.Name,
		Label:       def.Label,
		TCPConfig:   tcfg,
		BottleneckQ: def.Bottleneck(env),
	}
	if def.Shims != nil {
		m.Attach = def.Shims(env, tcfg)
	}
	return m, nil
}
