package scenario

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"hwatch/internal/faults"
	"hwatch/internal/harness"
	"hwatch/internal/sim"
)

// FileSpec is the JSON description of a runnable scenario, so operators
// can keep experiment configurations in files (cmd/hwatchsim -spec
// run.json). Durations are in microseconds, rates in Gb/s — the units
// operators think in — and converted on Load. Scheme names resolve
// against the registry, so registered extension schemes work from files
// with no loader changes.
type FileSpec struct {
	// Kind selects the topology: "dumbbell" or "testbed".
	Kind string `json:"kind"`
	// Scheme is a registered scheme name ("" = droptail). Run
	// `hwatchsim -list-schemes` for the full set.
	Scheme string `json:"scheme"`
	// Mix, when non-empty, runs several schemes side by side on the
	// dumbbell (Fig. 2 tenancy): sender hosts cycle through the
	// share-weighted scheme pattern. Scheme is ignored when Mix is set.
	Mix []MixEntry `json:"mix,omitempty"`
	// WithShims overlays an HWatch shim on every host over whatever
	// scheme(s) run (the MIX+HWatch extension).
	WithShims bool `json:"with_shims,omitempty"`

	// Dumbbell knobs.
	LongSources    int     `json:"long_sources,omitempty"`
	ShortSources   int     `json:"short_sources,omitempty"`
	BottleneckGbps float64 `json:"bottleneck_gbps,omitempty"`
	BufferPkts     int     `json:"buffer_pkts,omitempty"`
	MarkPercent    float64 `json:"mark_percent,omitempty"`
	RTTMicros      int64   `json:"rtt_us,omitempty"`
	ICW            int     `json:"icw,omitempty"`
	DurationMs     int64   `json:"duration_ms,omitempty"`
	DrainAfterMs   int64   `json:"drain_after_ms,omitempty"`
	Epochs         int     `json:"epochs,omitempty"`
	ShortKB        float64 `json:"short_kb,omitempty"`
	ByteBuffers    *bool   `json:"byte_buffers,omitempty"`
	Seed           int64   `json:"seed,omitempty"`

	// Testbed knobs (defaults from PaperTestbed when zero).
	Racks        int `json:"racks,omitempty"`
	HostsPerRack int `json:"hosts_per_rack,omitempty"`
	Parallel     int `json:"parallel,omitempty"`

	// Faults is a deterministic fault timeline (times in ms) armed on the
	// run's fabric; see FaultSpec. Non-empty schedules also arm the shim
	// degradation fallbacks and the recovery invariants.
	Faults []FaultSpec `json:"faults,omitempty"`

	// Check enables the physical-invariant checker for the run.
	Check bool `json:"check,omitempty"`

	// Shards partitions the fabric across engine shards (0/1 = the
	// single-loop engine, or whatever -shards set). Like Check it is an
	// execution detail: it never moves the run's derived seed or digest.
	Shards int `json:"shards,omitempty"`
}

// MixEntry is one tenant population in a mixed-scheme dumbbell spec.
type MixEntry struct {
	Scheme string `json:"scheme"`
	Share  int    `json:"share,omitempty"`
}

// identity is the canonical string hashed into derived seeds when the spec
// names none. Check is observability and Shards is execution parallelism,
// not scenario, so both are excluded — checking or sharding a run must not
// move its seed.
func (s *FileSpec) identity() string {
	c := *s
	c.Check = false
	c.Shards = 0
	b, err := json.Marshal(&c)
	if err != nil {
		return s.Kind + "/" + s.Scheme
	}
	return string(b)
}

// LoadSpec reads and validates a FileSpec from a JSON file.
func LoadSpec(path string) (*FileSpec, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading spec: %w", err)
	}
	return ParseSpec(raw)
}

// ParseSpec validates a FileSpec from JSON bytes. Unknown scheme names —
// in Scheme or any Mix entry — are rejected with an error listing the
// registered names; there is no silent fallback.
func ParseSpec(raw []byte) (*FileSpec, error) {
	var s FileSpec
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, fmt.Errorf("parsing spec: %w", err)
	}
	switch s.Kind {
	case "dumbbell", "testbed":
	default:
		return nil, fmt.Errorf("spec kind %q: want dumbbell or testbed", s.Kind)
	}
	if len(s.Mix) > 0 {
		if s.Kind != "dumbbell" {
			return nil, fmt.Errorf("spec mix: only dumbbell specs take a scheme mix")
		}
		for _, m := range s.Mix {
			if err := checkSchemeName(m.Scheme); err != nil {
				return nil, err
			}
		}
	} else if err := checkSchemeName(s.Scheme); err != nil {
		return nil, err
	}
	if s.BottleneckGbps < 0 || s.BufferPkts < 0 || s.MarkPercent < 0 || s.MarkPercent > 100 {
		return nil, fmt.Errorf("spec has out-of-range fabric parameters")
	}
	if s.DrainAfterMs < 0 {
		return nil, fmt.Errorf("spec drain_after_ms %d: must be >= 0", s.DrainAfterMs)
	}
	// Render the fault timeline once so bad kinds, windows and channel
	// parameters fail at load time with a line-item error, not mid-run.
	if _, err := RenderFaults(s.Faults); err != nil {
		return nil, fmt.Errorf("spec faults: %w", err)
	}
	return &s, nil
}

func checkSchemeName(name string) error {
	if name == "" {
		return nil // defaults to droptail
	}
	if _, ok := Lookup(name); !ok {
		return fmt.Errorf("unknown scheme %q: registered schemes are %s",
			name, strings.Join(Names(), ", "))
	}
	return nil
}

func schemeOrDefault(name string) Scheme {
	if name == "" {
		return DropTail
	}
	return Scheme(name)
}

// Scenario converts the file form into the runnable Spec.
func (s *FileSpec) Scenario() *Spec {
	sc := &Spec{Shards: s.Shards}
	switch s.Kind {
	case "dumbbell":
		sc.Kind = KindDumbbell
		if len(s.Mix) > 0 {
			for _, m := range s.Mix {
				sc.Schemes = append(sc.Schemes, Share{Scheme: Scheme(m.Scheme), Share: m.Share})
			}
			if s.WithShims {
				sc.Label = "MIX+HWatch"
			}
		} else {
			sc.Schemes = []Share{{Scheme: schemeOrDefault(s.Scheme)}}
		}
		sc.ShimOverlay = s.WithShims
		sc.Dumbbell = s.dumbbellParams()
	case "testbed":
		sc.Kind = KindTestbed
		sc.Schemes = []Share{{Scheme: schemeOrDefault(s.Scheme)}}
		// Keep the labels the testbed figures always printed; extension
		// schemes print their registered label.
		switch s.Scheme {
		case "hwatch":
			sc.Label = "TCP-HWatch"
		case "", "droptail":
			sc.Label = "TCP"
		default:
			sc.Label = Scheme(s.Scheme).String()
		}
		sc.Testbed = s.testbedParams()
	}
	if len(s.Faults) > 0 {
		// ParseSpec already validated the schedule; a hand-built FileSpec
		// with a broken one still fails cleanly when the run arms it.
		sc.Faults, _ = RenderFaults(s.Faults)
		if sc.Faults == nil {
			sc.Faults = faults.Schedule{{Kind: "invalid"}} // force the arm-time error
		}
	}
	return sc
}

// Run executes the spec and returns the resulting run.
func (s *FileSpec) Run() (*Run, error) {
	return s.RunContext(context.Background())
}

// RunContext executes the spec under ctx; see Spec.RunContext.
func (s *FileSpec) RunContext(ctx context.Context) (*Run, error) {
	switch s.Kind {
	case "dumbbell", "testbed":
		return s.Scenario().RunContext(ctx)
	}
	return nil, fmt.Errorf("unrunnable spec kind %q", s.Kind)
}

func (s *FileSpec) dumbbellParams() DumbbellParams {
	p := PaperDumbbell(orInt(s.LongSources, 25), orInt(s.ShortSources, 25))
	if s.BottleneckGbps > 0 {
		p.BottleneckBps = int64(s.BottleneckGbps * 1e9)
		p.EdgeBps = p.BottleneckBps
	}
	if s.BufferPkts > 0 {
		p.BufferPkts = s.BufferPkts
	}
	if s.MarkPercent > 0 {
		p.MarkFrac = s.MarkPercent / 100
	}
	if s.RTTMicros > 0 {
		p.LinkDelay = s.RTTMicros * sim.Microsecond / 4
	}
	if s.ICW > 0 {
		p.ICW = s.ICW
	}
	if s.DurationMs > 0 {
		p.Duration = s.DurationMs * sim.Millisecond
	}
	if s.DrainAfterMs > 0 {
		p.DrainAfter = s.DrainAfterMs * sim.Millisecond
	}
	if s.Epochs > 0 {
		p.Epochs = s.Epochs
	}
	if s.ShortKB > 0 {
		p.ShortSize = int64(s.ShortKB * 1000)
	}
	if s.ByteBuffers != nil {
		p.ByteBuffers = *s.ByteBuffers
	} else {
		p.ByteBuffers = true
	}
	if s.Seed != 0 {
		p.Seed = s.Seed
	} else {
		// No explicit seed: derive one from the spec itself, so distinct
		// scenarios draw independent randomness while the same file always
		// reruns identically.
		p.Seed = harness.SeedFor(s.identity(), p.Seed)
	}
	p.Check = s.Check
	return p
}

func (s *FileSpec) testbedParams() TestbedParams {
	p := PaperTestbed()
	if s.Racks > 0 {
		p.Racks = s.Racks
	}
	if s.HostsPerRack > 0 {
		p.HostsPerRack = s.HostsPerRack
		// The paper's per-rack role counts cannot exceed the rack size.
		if p.WebServers > p.HostsPerRack {
			p.WebServers = p.HostsPerRack
		}
		if p.WebClients > p.HostsPerRack {
			p.WebClients = p.HostsPerRack
		}
	}
	if s.Parallel > 0 {
		p.Parallel = s.Parallel
	}
	if s.Epochs > 0 {
		p.Epochs = s.Epochs
		p.Duration = p.FirstEpoch + int64(p.Epochs)*p.EpochInterval
	}
	if s.DurationMs > 0 {
		p.Duration = s.DurationMs * sim.Millisecond
	}
	if s.Seed != 0 {
		p.Seed = s.Seed
	} else {
		p.Seed = harness.SeedFor(s.identity(), p.Seed)
	}
	p.Check = s.Check
	return p
}

func orInt(v, def int) int {
	if v > 0 {
		return v
	}
	return def
}
