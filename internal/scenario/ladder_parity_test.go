package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
)

// TestLadderShardParityMatrix extends the PDES parity gate to the scale
// ladder and incast storms: every rung's digest must match its checked-in
// single-loop golden at shards ∈ {1, 2, 4} × GOMAXPROCS ∈ {1, 8}. The
// storm rungs are the interesting half — thousands of open-loop flows give
// cross-shard same-instant ties every window.
func TestLadderShardParityMatrix(t *testing.T) {
	type combo struct{ shards, procs int }
	matrix := []combo{{1, 1}, {1, 8}, {2, 1}, {2, 8}, {4, 1}, {4, 8}}
	if testing.Short() {
		matrix = []combo{{2, 8}, {4, 1}}
	}
	raw, err := os.ReadFile(ladderGoldenPath)
	if err != nil {
		t.Fatalf("missing %s (run with -args -update to create): %v", ladderGoldenPath, err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}

	defer SetDefaultShards(0)
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, c := range matrix {
		t.Run(fmt.Sprintf("shards=%d,procs=%d", c.shards, c.procs), func(t *testing.T) {
			SetDefaultShards(c.shards)
			runtime.GOMAXPROCS(c.procs)
			for name, w := range want {
				r, ok := LookupRung(name)
				if !ok {
					t.Errorf("rung %s: in golden file but not registered", name)
					continue
				}
				run, err := r.Spec(r.DigestScale).Run()
				if err != nil {
					t.Fatalf("rung %s: %v", name, err)
				}
				if g := run.DigestHex(); g != w {
					t.Errorf("rung %s: digest %s, golden %s", name, g, w)
				}
			}
		})
	}
}
