package scenario

import (
	"hwatch/internal/aqm"
	"hwatch/internal/core"
	"hwatch/internal/netem"
	"hwatch/internal/tcp"
)

// The built-in registry: the paper's four systems plus the extension
// schemes the transport-agnosticism studies use.

func init() {
	Register(Definition{
		Name:        string(DropTail),
		Label:       "TCP-DropTail",
		Description: "stock NewReno guests over plain DropTail buffers",
		Bottleneck:  dropTailQueue,
	})
	Register(Definition{
		Name:        string(RED),
		Label:       "TCP-RED",
		Description: "ECN-responsive NewReno over RED (Floyd parameters)",
		Guest:       ecnRenoGuest,
		Bottleneck:  redQueue,
	})
	Register(Definition{
		Name:        string(DCTCP),
		Label:       "DCTCP",
		Description: "DCTCP guests over instantaneous-threshold marking",
		Guest:       func(Env) tcp.Config { return tcp.DCTCPConfig() },
		Bottleneck:  markThresholdQueue,
	})
	Register(Definition{
		Name:        string(HWatch),
		Label:       "TCP-HWATCH",
		Description: "stock (non-ECN) NewReno guests + one HWatch shim per host over threshold marking",
		Bottleneck:  markThresholdQueue,
		Shims:       perHostShims,
	})
	Register(Definition{
		Name:        string(HWatchOvS),
		Label:       "TCP-HWATCH/OVS",
		Description: "HWatch as one shared OvS-style flow table and pacer for every host",
		Bottleneck:  markThresholdQueue,
		Shims:       sharedShim,
		SingleShard: true,
	})
	Register(Definition{
		Name:        string(CubicRED),
		Label:       "Cubic-RED",
		Description: "ECN-responsive Cubic guests over RED",
		Guest: func(Env) tcp.Config {
			c := tcp.CubicConfig()
			c.ECN = true
			c.ECNResponsive = true
			return c
		},
		Bottleneck: redQueue,
	})
	Register(Definition{
		Name:        string(DCTCPSack),
		Label:       "DCTCP-SACK",
		Description: "DCTCP guests with SACK recovery over threshold marking",
		Guest: func(Env) tcp.Config {
			c := tcp.DCTCPConfig()
			c.SACK = true
			return c
		},
		Bottleneck: markThresholdQueue,
	})
	Register(Definition{
		Name:        string(RenoECN),
		Label:       "TCP-ECN",
		Description: "ECN-responsive NewReno over threshold marking (the MIX's cooperative tenant)",
		Guest:       ecnRenoGuest,
		Bottleneck:  markThresholdQueue,
	})
	Register(Definition{
		Name:        string(RenoDeaf),
		Label:       "TCP-Deaf",
		Description: "ECN-capable but non-responsive NewReno over threshold marking (the MIX's rogue tenant)",
		Guest: func(Env) tcp.Config {
			c := tcp.DefaultConfig()
			c.ECN = true
			c.ECNResponsive = false
			return c
		},
		Bottleneck: markThresholdQueue,
	})
}

func ecnRenoGuest(Env) tcp.Config {
	c := tcp.DefaultConfig()
	c.ECN = true
	c.ECNResponsive = true
	return c
}

func dropTailQueue(e Env) func() netem.Queue {
	return func() netem.Queue {
		if e.ByteBuffers {
			return aqm.NewDropTailBytes(e.BufferBytes())
		}
		return aqm.NewDropTail(e.BufferPkts)
	}
}

func redQueue(e Env) func() netem.Queue {
	return func() netem.Queue {
		var cfg aqm.REDConfig
		if e.ByteBuffers {
			cfg = aqm.DefaultREDBytes(e.BufferBytes(), true, e.MeanPktTime, e.Clock)
		} else {
			cfg = aqm.DefaultRED(e.BufferPkts, true, e.MeanPktTime, e.Clock)
		}
		return aqm.NewRED(cfg, e.Rng.Fork().Float64)
	}
}

func markThresholdQueue(e Env) func() netem.Queue {
	return func() netem.Queue {
		if e.ByteBuffers {
			return aqm.NewMarkThresholdBytes(e.BufferBytes(), e.MarkBytes())
		}
		return aqm.NewMarkThreshold(e.BufferPkts, e.MarkPkts)
	}
}

// shimConfig builds the HWatch configuration a deployment installs: the
// paper's defaults for the fabric's base RTT, the guest's MSS and
// initial window, then the scenario's tweak hook.
func shimConfig(e Env, guest tcp.Config) core.Config {
	cfg := core.DefaultConfig(e.BaseRTT)
	cfg.MSS = guest.MSS
	cfg.DefaultICW = guest.InitCwnd
	if e.ShimTweak != nil {
		e.ShimTweak(&cfg)
	}
	return cfg
}

// perHostShims is the paper's deployment: one shim per hypervisor.
func perHostShims(e Env, guest tcp.Config) Deployment {
	cfg := shimConfig(e, guest)
	return func(hosts []*netem.Host) []*core.Shim {
		out := make([]*core.Shim, 0, len(hosts))
		for _, h := range hosts {
			out = append(out, core.Attach(h, cfg))
		}
		return out
	}
}

// sharedShim is the OvS-style deployment: one flow table and SYN-ACK
// pacer shared by every host (the NewShim/AttachHost path; both ends of
// an intra-deployment flow coexist in the shared table).
func sharedShim(e Env, guest tcp.Config) Deployment {
	cfg := shimConfig(e, guest)
	return func(hosts []*netem.Host) []*core.Shim {
		if len(hosts) == 0 {
			return nil
		}
		sh := core.NewShim(hosts[0].Eng, cfg, 0)
		for _, h := range hosts {
			sh.AttachHost(h)
		}
		return []*core.Shim{sh}
	}
}
