package scenario

import (
	"hwatch/internal/core"
	"hwatch/internal/sim"
)

// DumbbellParams is the shared shape of the paper's ns-2 scenarios
// (Sections II and V): long-lived background flows plus epochs of
// correlated short flows into one shared bottleneck.
type DumbbellParams struct {
	LongSources  int
	ShortSources int

	BottleneckBps int64
	EdgeBps       int64
	LinkDelay     int64 // per hop; base RTT = 4*LinkDelay
	BufferPkts    int
	MarkFrac      float64 // marking threshold as a fraction of the buffer

	ICW      int   // guests' initial window (0 = stack default 10)
	MinRTO   int64 // 0 = 200 ms
	Duration int64
	// DrainAfter extends the engine past Duration so in-flight flows can
	// finish after arrivals stop (open-loop workloads); metrics stay
	// normalized to Duration.
	DrainAfter int64
	// ByteBuffers switches the bottleneck to byte accounting (used by the
	// Fig. 8/9/11 scheme comparisons; Fig. 1/2 keep ns-2 packet counting).
	ByteBuffers bool

	ShortSize     int64 // bytes per short flow
	Epochs        int
	FirstEpoch    int64
	EpochInterval int64

	SampleEvery int64 // queue/utilization sampling period (0 = no telemetry)
	Seed        int64

	// Check enables the physical-invariant checker for this run (packet
	// conservation at the bottleneck, sequence monotonicity, window
	// floors); violations land in Run.InvariantViolations.
	Check bool

	// Shards partitions the fabric across engine shards (0/1 single-loop).
	// Execution detail only: digests are identical at any count.
	Shards int

	// ShimTweak, when non-nil, adjusts the HWatch configuration after the
	// defaults are applied (ablation studies).
	ShimTweak func(*core.Config)
}

// PaperDumbbell returns the paper's Fig. 8 parameters: 10 Gb/s links,
// 100 us RTT, 250-packet buffer, marking at 20%, minRTO 200 ms, 6 epochs
// of 10 KB short flows over a 1 s run.
func PaperDumbbell(longN, shortN int) DumbbellParams {
	return DumbbellParams{
		LongSources:   longN,
		ShortSources:  shortN,
		BottleneckBps: 10e9,
		EdgeBps:       10e9,
		LinkDelay:     25 * sim.Microsecond, // 4 hops -> 100 us RTT
		BufferPkts:    250,
		MarkFrac:      0.20,
		Duration:      1 * sim.Second,
		ShortSize:     10_000,
		Epochs:        6,
		FirstEpoch:    100 * sim.Millisecond,
		EpochInterval: 150 * sim.Millisecond,
		SampleEvery:   100 * sim.Microsecond,
		Seed:          42,
	}
}

// TestbedParams reproduces the Section VI testbed: 4 racks of servers on
// 1 Gb/s links behind one spine, base RTT ~200 us. Rack 3 hosts the
// requesting clients; racks 0-2 host web servers and iperf sources. The
// shared bottleneck is the spine port toward rack 3.
type TestbedParams struct {
	Racks        int
	HostsPerRack int
	RateBps      int64
	LinkDelay    int64 // per hop (x4 hops cross-rack)
	BufferPkts   int   // per switch port
	MarkFrac     float64

	LongPerRack   int   // iperf flows per server rack (paper: 7, x2 dirs = 14)
	WebServers    int   // web servers per server rack (paper: 7)
	WebClients    int   // requesting clients on the client rack
	Parallel      int   // parallel connections per client-server pair
	ObjectSize    int64 // paper: 11.5 KB
	Epochs        int   // paper: 5
	FirstEpoch    int64
	EpochInterval int64

	Duration int64
	MinRTO   int64 // plain-TCP run (0 = 200 ms)
	// HWatchMinRTO is the guest minRTO under a shim-deploying scheme. The
	// paper's testbed section states HWatch ran with a 4 ms RTO; keep the
	// default 200 ms by setting this to MinRTO for an isolated comparison.
	HWatchMinRTO int64
	SampleEvery  int64
	Seed         int64

	// Check enables the physical-invariant checker for this run; findings
	// land in Run.InvariantViolations.
	Check bool

	// Shards partitions the fabric across engine shards (0/1 single-loop).
	// Execution detail only: digests are identical at any count.
	Shards int

	// ShimTweak, when non-nil, adjusts the HWatch configuration after the
	// testbed's SYN-ACK pacing defaults are applied.
	ShimTweak func(*core.Config)
}

// PaperTestbed returns the paper's counts at a time-compressed scale: the
// same 42 long flows and 1260 web fetches per epoch x 5 epochs, with epoch
// spacing shrunk so the run fits in seconds of simulated time.
func PaperTestbed() TestbedParams {
	return TestbedParams{
		Racks:         4,
		HostsPerRack:  21,
		RateBps:       1e9,
		LinkDelay:     25 * sim.Microsecond, // 8 hops round trip -> 200 us
		BufferPkts:    100,
		MarkFrac:      0.20,
		LongPerRack:   14, // 42 total, as in 2 x 7 x 3
		WebServers:    7,
		WebClients:    6,
		Parallel:      10, // 7 x 6 x 3 x 10 = 1260 flows per epoch
		ObjectSize:    11_500,
		Epochs:        5,
		FirstEpoch:    200 * sim.Millisecond,
		EpochInterval: 400 * sim.Millisecond,
		Duration:      2400 * sim.Millisecond,
		HWatchMinRTO:  4 * sim.Millisecond, // paper Sec. VI: "RTO of 4ms"
		SampleEvery:   500 * sim.Microsecond,
		Seed:          7,
	}
}
