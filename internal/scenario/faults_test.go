package scenario

import (
	"strings"
	"testing"

	"hwatch/internal/faults"
	"hwatch/internal/netem"
	"hwatch/internal/sim"
)

// chaosParams is the small dumbbell every fault test here runs: large
// enough to congest, small enough to finish in well under a second of
// simulated time.
func chaosParams(seed int64) DumbbellParams {
	p := PaperDumbbell(5, 5)
	p.Seed = seed
	p.ByteBuffers = true
	p.Duration = 400 * sim.Millisecond
	p.DrainAfter = 600 * sim.Millisecond
	p.Epochs = 2
	return p
}

// blackoutSchedule is the issue's acceptance scenario: ECN goes dark
// mid-run, the shims crash and restart inside the dark window, and probes
// black out around the restart.
func blackoutSchedule() faults.Schedule {
	return faults.Schedule{
		{Kind: faults.ECNBlackhole, At: 100 * sim.Millisecond, Until: 260 * sim.Millisecond},
		{Kind: faults.ShimCrash, At: 140 * sim.Millisecond},
		{Kind: faults.ShimRestart, At: 180 * sim.Millisecond},
		{Kind: faults.ProbeBlackout, At: 180 * sim.Millisecond, Until: 240 * sim.Millisecond},
	}
}

// TestChaosRunRecoversAndRepeats is the acceptance test: a dumbbell run
// with a mid-run ECN blackhole plus shim crash completes every flow after
// the faults clear, and repeating the run reproduces the digest bit for
// bit.
func TestChaosRunRecoversAndRepeats(t *testing.T) {
	spec := func() *Spec {
		return &Spec{
			Kind:     KindDumbbell,
			Schemes:  []Share{{Scheme: HWatch}},
			Dumbbell: chaosParams(11),
			Faults:   blackoutSchedule(),
		}
	}
	r1, err := spec().Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.InvariantViolations) != 0 {
		t.Fatalf("recovery violations: %v", r1.InvariantViolations)
	}
	if r1.ShortDone != r1.ShortAll {
		t.Fatalf("short flows: %d/%d completed after faults cleared", r1.ShortDone, r1.ShortAll)
	}
	if r1.ShimStats == nil {
		t.Fatal("no shim stats on an hwatch run")
	}
	if r1.ShimStats.Crashes == 0 || r1.ShimStats.Restarts == 0 {
		t.Fatalf("faults did not reach the shims: %+v", r1.ShimStats)
	}

	r2, err := spec().Run()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Digest() != r2.Digest() {
		t.Fatalf("chaos run is non-deterministic: %s vs %s", r1.DigestHex(), r2.DigestHex())
	}
}

// TestFaultsPerturbTheDigest: the canary direction — a fault schedule must
// change the measured outcome, or the injector is wired to nothing.
func TestFaultsPerturbTheDigest(t *testing.T) {
	base := &Spec{Kind: KindDumbbell, Schemes: []Share{{Scheme: HWatch}}, Dumbbell: chaosParams(11)}
	clean, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	faulty := &Spec{Kind: KindDumbbell, Schemes: []Share{{Scheme: HWatch}},
		Dumbbell: chaosParams(11), Faults: blackoutSchedule()}
	chaos, err := faulty.Run()
	if err != nil {
		t.Fatal(err)
	}
	if clean.Digest() == chaos.Digest() {
		t.Fatal("fault schedule left the digest untouched — injector not reaching the fabric")
	}
}

// TestChaosAcrossSchemes: the same schedule must arm on shimless schemes
// too (shim events become no-ops), so one timeline chaos-tests everything.
func TestChaosAcrossSchemes(t *testing.T) {
	for _, scheme := range []Scheme{DropTail, DCTCP} {
		s := &Spec{Kind: KindDumbbell, Schemes: []Share{{Scheme: scheme}},
			Dumbbell: chaosParams(11), Faults: blackoutSchedule()}
		run, err := s.Run()
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if len(run.InvariantViolations) != 0 {
			t.Fatalf("%s: %v", scheme, run.InvariantViolations)
		}
	}
}

// TestPermanentLinkDownIsCaught: a LinkDown that never lifts strands the
// finite flows, and the RecoveryObserver must say so.
func TestPermanentLinkDownIsCaught(t *testing.T) {
	s := &Spec{
		Kind:     KindDumbbell,
		Schemes:  []Share{{Scheme: DropTail}},
		Dumbbell: chaosParams(11),
		Faults:   faults.Schedule{{Kind: faults.LinkDown, At: 50 * sim.Millisecond}},
	}
	run, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(run.InvariantViolations) == 0 {
		t.Fatal("permanent bottleneck failure produced no recovery violations")
	}
	joined := strings.Join(run.InvariantViolations, "\n")
	if !strings.Contains(joined, "recovery:") {
		t.Fatalf("violations are not recovery findings: %v", run.InvariantViolations)
	}
	// Violations are observability, not outcome: they must not shift the
	// digest relative to a second identical broken run.
	run2, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if run.Digest() != run2.Digest() {
		t.Fatal("violating run is non-deterministic")
	}
}

// TestArmErrorSurfacesFromRun: a schedule naming a missing target fails
// the run with a descriptive error instead of running fault-free.
func TestArmErrorSurfacesFromRun(t *testing.T) {
	s := &Spec{
		Kind:     KindDumbbell,
		Schemes:  []Share{{Scheme: HWatch}},
		Dumbbell: chaosParams(11),
		Faults:   faults.Schedule{{Kind: faults.LinkDown, At: 1, Target: "nosuch"}},
	}
	_, err := s.Run()
	if err == nil || !strings.Contains(err.Error(), "nosuch") {
		t.Fatalf("bad fault target not surfaced: %v", err)
	}
}

func TestRenderFaultsConvertsAndValidates(t *testing.T) {
	sched, err := RenderFaults([]FaultSpec{
		{Kind: "link-down", AtMs: 120},
		{Kind: "link-up", AtMs: 124},
		{Kind: "burst-loss", AtMs: 250, UntilMs: 270, PGoodBad: 0.05, PBadGood: 0.5, LossBad: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sched) != 3 {
		t.Fatalf("rendered %d events", len(sched))
	}
	if sched[0].At != 120*sim.Millisecond || sched[2].Until != 270*sim.Millisecond {
		t.Fatalf("ms not converted to engine ns: %+v", sched)
	}
	if sched[2].GE != (netem.GEParams{GoodToBad: 0.05, BadToGood: 0.5, LossBad: 1}) {
		t.Fatalf("GE params lost: %+v", sched[2].GE)
	}

	for name, bad := range map[string][]FaultSpec{
		"unknown kind": {{Kind: "meteor", AtMs: 1}},
		"nan time":     {{Kind: "link-down", AtMs: nan()}},
		"huge time":    {{Kind: "link-down", AtMs: 1e12}},
		"neg time":     {{Kind: "link-down", AtMs: -5}},
		"bad window":   {{Kind: "ecn-blackhole", AtMs: 10, UntilMs: 5}},
		"bad ge":       {{Kind: "burst-loss", AtMs: 1, UntilMs: 2, PGoodBad: 2, LossBad: 1}},
	} {
		if _, err := RenderFaults(bad); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func nan() float64 {
	z := 0.0
	return z / z
}

// TestSpecFileWithFaults: the JSON path end to end — parse, render, run a
// tiny faulted scenario, and reject bad fault blocks at load time.
func TestSpecFileWithFaults(t *testing.T) {
	raw := []byte(`{
		"kind": "dumbbell", "scheme": "hwatch",
		"long_sources": 2, "short_sources": 2,
		"duration_ms": 200, "drain_after_ms": 400, "epochs": 1,
		"faults": [
			{"kind": "link-down", "at_ms": 50},
			{"kind": "link-up", "at_ms": 54},
			{"kind": "probe-blackout", "at_ms": 60, "until_ms": 90}
		]
	}`)
	fs, err := ParseSpec(raw)
	if err != nil {
		t.Fatal(err)
	}
	sc := fs.Scenario()
	if len(sc.Faults) != 3 {
		t.Fatalf("spec rendered %d fault events, want 3", len(sc.Faults))
	}
	if sc.Dumbbell.DrainAfter != 400*sim.Millisecond {
		t.Fatalf("drain_after_ms lost: %d", sc.Dumbbell.DrainAfter)
	}
	run, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(run.InvariantViolations) != 0 {
		t.Fatalf("violations: %v", run.InvariantViolations)
	}

	if _, err := ParseSpec([]byte(`{"kind":"dumbbell","scheme":"hwatch",
		"faults":[{"kind":"warp-core-breach","at_ms":1}]}`)); err == nil {
		t.Fatal("bad fault kind accepted at parse time")
	}
	if _, err := ParseSpec([]byte(`{"kind":"dumbbell","scheme":"hwatch",
		"faults":[{"kind":"burst-loss","at_ms":1,"until_ms":2}]}`)); err == nil {
		t.Fatal("dropless burst-loss accepted at parse time")
	}
}

// recurringChaosSchedule exercises the full impairment matrix plus a
// recurring random-target flap in one timeline — the schedule the
// recovery invariants must hold under.
func recurringChaosSchedule() faults.Schedule {
	return faults.Schedule{
		{Kind: faults.LinkDown, At: 80 * sim.Millisecond, Pick: 2,
			Recur: &faults.Recurrence{Interval: 60 * sim.Millisecond, Duration: 3 * sim.Millisecond,
				Jitter: 8 * sim.Millisecond, Count: 4}},
		// The windows are staggered, not stacked: corruption collapses
		// throughput while it lasts, so an impairment window buried inside
		// the collapse would see no traffic to impair.
		{Kind: faults.Corrupt, At: 100 * sim.Millisecond, Until: 180 * sim.Millisecond,
			Impair: faults.ImpairParams{Prob: 0.02, DropFrac: 0.5}},
		{Kind: faults.Duplicate, At: 180 * sim.Millisecond, Until: 260 * sim.Millisecond,
			Impair: faults.ImpairParams{Prob: 0.05, Copies: 2, Egress: true}},
		{Kind: faults.Reorder, At: 260 * sim.Millisecond, Until: 340 * sim.Millisecond,
			Impair: faults.ImpairParams{Prob: 0.05, Hold: 2 * sim.Millisecond}},
		{Kind: faults.Jitter, At: 340 * sim.Millisecond, Until: 390 * sim.Millisecond,
			Impair: faults.ImpairParams{Dist: "pareto", Delay: 100 * sim.Microsecond, Jitter: 50 * sim.Microsecond}},
	}
}

// TestRecurringChaosShardParity is the PR's acceptance test: the full
// chaos matrix under a recurring flap must (a) leave every recovery
// invariant intact, (b) digest identically at 1, 2 and 4 shards, and
// (c) report identical impairment counters everywhere — arming and
// random target selection are partition-independent by construction.
func TestRecurringChaosShardParity(t *testing.T) {
	type outcome struct {
		digest string
		stats  netem.ImpairStats
	}
	run := func(shards int) outcome {
		s := &Spec{
			Kind:     KindDumbbell,
			Schemes:  []Share{{Scheme: HWatch}},
			Dumbbell: chaosParams(19),
			Faults:   recurringChaosSchedule(),
			Shards:   shards,
		}
		r, err := s.Run()
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if len(r.InvariantViolations) != 0 {
			t.Fatalf("shards=%d: recovery violations: %v", shards, r.InvariantViolations)
		}
		if r.ShortDone != r.ShortAll {
			t.Fatalf("shards=%d: %d/%d short flows after chaos cleared", shards, r.ShortDone, r.ShortAll)
		}
		if r.ChaosStats == nil {
			t.Fatalf("shards=%d: no chaos stats on an impaired run", shards)
		}
		return outcome{r.DigestHex(), *r.ChaosStats}
	}
	base := run(1)
	if base.stats.Corrupted == 0 || base.stats.Duplicated == 0 || base.stats.Reordered == 0 || base.stats.Jittered == 0 {
		t.Fatalf("chaos matrix left counters untouched: %+v", base.stats)
	}
	if base.stats.Held != 0 {
		t.Fatalf("hold buffer retains %d packets after drain", base.stats.Held)
	}
	for _, shards := range []int{2, 4} {
		got := run(shards)
		if got.digest != base.digest {
			t.Errorf("digest %s at %d shards, %s at 1", got.digest, shards, base.digest)
		}
		if got.stats != base.stats {
			t.Errorf("impair stats diverge at %d shards: %+v vs %+v", shards, got.stats, base.stats)
		}
	}
}

// TestRenderFaultsImpairAndRecurrence: the operator-unit JSON fields
// reach the engine-ready schedule converted, not truncated.
func TestRenderFaultsImpairAndRecurrence(t *testing.T) {
	sched, err := RenderFaults([]FaultSpec{
		{Kind: "reorder", AtMs: 10, UntilMs: 20, Prob: 0.1, HoldUs: 500},
		{Kind: "jitter", AtMs: 30, UntilMs: 40, Dist: "pareto", DelayUs: 100, JitterUs: 50, Shape: 2},
		{Kind: "rate-limit", AtMs: 50, UntilMs: 60, RateMbps: 500, BurstKB: 16, Egress: true},
		{Kind: "link-down", AtMs: 80, Count: 4, EveryMs: 60, ForMs: 3, JitterMs: 8, Pick: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := sched[0].Impair.Hold; got != 500*sim.Microsecond {
		t.Fatalf("hold_us: %d", got)
	}
	if got := sched[1].Impair; got.Delay != 100*sim.Microsecond || got.Jitter != 50*sim.Microsecond ||
		got.Dist != "pareto" || got.Shape != 2 {
		t.Fatalf("jitter knobs lost: %+v", got)
	}
	if got := sched[2].Impair; got.RateBps != 500e6 || got.Burst != 16*1024 || !got.Egress {
		t.Fatalf("rate knobs lost: %+v", got)
	}
	r := sched[3].Recur
	if r == nil || r.Count != 4 || r.Interval != 60*sim.Millisecond ||
		r.Duration != 3*sim.Millisecond || r.Jitter != 8*sim.Millisecond {
		t.Fatalf("recurrence lost: %+v", r)
	}
	if sched[3].Pick != 2 {
		t.Fatalf("pick lost: %d", sched[3].Pick)
	}

	for name, bad := range map[string][]FaultSpec{
		"prob out of range": {{Kind: "corrupt", AtMs: 1, UntilMs: 2, Prob: 1.5}},
		"neg hold":          {{Kind: "reorder", AtMs: 1, UntilMs: 2, Prob: 0.1, HoldUs: -1}},
		"bad dist":          {{Kind: "jitter", AtMs: 1, UntilMs: 2, Dist: "bimodal", DelayUs: 10}},
		"until with recur":  {{Kind: "link-down", AtMs: 1, UntilMs: 2, Count: 2, EveryMs: 10, ForMs: 1}},
		"target and pick":   {{Kind: "link-down", AtMs: 1, Target: "x", Pick: 1}},
	} {
		if _, err := RenderFaults(bad); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
