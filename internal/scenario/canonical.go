package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// CanonicalJSON renders the spec in its canonical form: the fully
// materialized scenario — defaults applied, operator units converted to
// engine units, the effective seed resolved (explicit or derived), the
// fault timeline rendered — marshaled with sorted keys. Two specs share a
// canonical form exactly when they run the same simulation, which is what
// makes the form a safe content address for cached results:
//
//   - cosmetic JSON differences (key order, whitespace, field spelling of
//     the same values) vanish;
//   - execution details that never move a run's digest (check, shards)
//     are excluded, so a sharded or checked resubmission of a cached
//     spec still hits;
//   - fields that feed seed derivation stay significant: a spec spelling
//     out a default ("long_sources": 25) derives a different seed than
//     one omitting it, and the canonical forms differ in the seed they
//     carry — the cache can never alias two runs with different outcomes.
func (s *FileSpec) CanonicalJSON() ([]byte, error) {
	// Round-trip through ParseSpec so hand-built FileSpecs face exactly
	// the file-loader's validation (kind, scheme names, parameter ranges,
	// fault timeline) before anything is digested.
	raw, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("canonicalizing spec: %w", err)
	}
	c, err := ParseSpec(raw)
	if err != nil {
		return nil, err
	}

	m := map[string]any{
		"kind":       c.Kind,
		"with_shims": c.WithShims,
	}

	var schemes []map[string]any
	if len(c.Mix) > 0 {
		for _, e := range c.Mix {
			n := e.Share
			if n <= 0 {
				n = 1
			}
			schemes = append(schemes, map[string]any{"scheme": e.Scheme, "share": n})
		}
	} else {
		schemes = append(schemes, map[string]any{
			"scheme": string(schemeOrDefault(c.Scheme)), "share": 1,
		})
	}
	m["schemes"] = schemes

	switch c.Kind {
	case "dumbbell":
		p := c.dumbbellParams()
		m["params"] = map[string]any{
			"long_sources":      p.LongSources,
			"short_sources":     p.ShortSources,
			"bottleneck_bps":    p.BottleneckBps,
			"edge_bps":          p.EdgeBps,
			"link_delay_ns":     p.LinkDelay,
			"buffer_pkts":       p.BufferPkts,
			"mark_frac":         p.MarkFrac,
			"icw":               p.ICW,
			"min_rto_ns":        p.MinRTO,
			"duration_ns":       p.Duration,
			"drain_after_ns":    p.DrainAfter,
			"byte_buffers":      p.ByteBuffers,
			"short_size":        p.ShortSize,
			"epochs":            p.Epochs,
			"first_epoch_ns":    p.FirstEpoch,
			"epoch_interval_ns": p.EpochInterval,
			"sample_every_ns":   p.SampleEvery,
			"seed":              p.Seed,
		}
	case "testbed":
		p := c.testbedParams()
		m["params"] = map[string]any{
			"racks":             p.Racks,
			"hosts_per_rack":    p.HostsPerRack,
			"rate_bps":          p.RateBps,
			"link_delay_ns":     p.LinkDelay,
			"buffer_pkts":       p.BufferPkts,
			"mark_frac":         p.MarkFrac,
			"long_per_rack":     p.LongPerRack,
			"web_servers":       p.WebServers,
			"web_clients":       p.WebClients,
			"parallel":          p.Parallel,
			"object_size":       p.ObjectSize,
			"epochs":            p.Epochs,
			"first_epoch_ns":    p.FirstEpoch,
			"epoch_interval_ns": p.EpochInterval,
			"duration_ns":       p.Duration,
			"min_rto_ns":        p.MinRTO,
			"hwatch_min_rto_ns": p.HWatchMinRTO,
			"sample_every_ns":   p.SampleEvery,
			"seed":              p.Seed,
		}
	}

	if len(c.Faults) > 0 {
		sched, err := RenderFaults(c.Faults)
		if err != nil {
			return nil, fmt.Errorf("canonicalizing faults: %w", err)
		}
		// Re-marshal the rendered timeline through a generic value so the
		// canonical form gets sorted keys, not struct declaration order.
		// Every number in a schedule (ns times, probabilities, byte counts)
		// survives the float64 round trip exactly.
		blob, err := json.Marshal(sched)
		if err != nil {
			return nil, fmt.Errorf("canonicalizing faults: %w", err)
		}
		var generic any
		if err := json.Unmarshal(blob, &generic); err != nil {
			return nil, fmt.Errorf("canonicalizing faults: %w", err)
		}
		m["faults"] = generic
	}

	return json.Marshal(m)
}

// CanonicalDigest returns the spec's content address: the SHA-256 of its
// canonical JSON, as 64 hex characters. The CLI exposes it as
// `hwatchsim -spec-digest`; the hwatchd result cache and single-flight
// deduplication key on it.
func (s *FileSpec) CanonicalDigest() (string, error) {
	b, err := s.CanonicalJSON()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}
