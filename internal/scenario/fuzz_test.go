package scenario

import "testing"

// FuzzParseSpec: arbitrary bytes must never panic the spec parser, and an
// accepted spec must produce runnable parameters.
func FuzzParseSpec(f *testing.F) {
	f.Add([]byte(`{"kind":"dumbbell","scheme":"hwatch"}`))
	f.Add([]byte(`{"kind":"testbed","scheme":"hwatch","racks":2}`))
	f.Add([]byte(`{"kind":"dumbbell","mix":[{"scheme":"dctcp"},{"scheme":"reno-deaf","share":2}]}`))
	f.Add([]byte(`{"kind":"ring"}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`{"kind":"dumbbell","scheme":"dctcp","mark_percent":1e300}`))
	f.Fuzz(func(t *testing.T, raw []byte) {
		s, err := ParseSpec(raw)
		if err != nil {
			return
		}
		// Accepted specs must yield internally consistent parameters
		// without panicking.
		switch s.Kind {
		case "dumbbell":
			p := s.dumbbellParams()
			if p.LongSources <= 0 || p.BufferPkts <= 0 || p.Duration <= 0 {
				t.Fatalf("accepted spec produced bad params: %+v", p)
			}
		case "testbed":
			p := s.testbedParams()
			if p.Racks <= 0 || p.HostsPerRack <= 0 {
				t.Fatalf("accepted spec produced bad params: %+v", p)
			}
			if p.WebServers > p.HostsPerRack || p.WebClients > p.HostsPerRack {
				t.Fatalf("rack roles exceed rack size: %+v", p)
			}
		}
	})
}
