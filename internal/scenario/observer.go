package scenario

import (
	"fmt"
	"sync/atomic"

	"hwatch/internal/aqm"
	"hwatch/internal/core"
	"hwatch/internal/faults"
	"hwatch/internal/harness"
	"hwatch/internal/netem"
	"hwatch/internal/sim"
	"hwatch/internal/stats"
	"hwatch/internal/tcp"
	"hwatch/internal/topo"
)

// DefaultPort is the well-known service port every built-in workload
// listens on (long-flow sinks use DefaultPort+1 on the testbed).
const DefaultPort = 80

var invariantsOn atomic.Bool

// SetInvariantChecks enables the physical-invariant checker (packet
// conservation, sequence monotonicity, window floors) on every subsequent
// run, regardless of the per-run Check flag.
func SetInvariantChecks(on bool) { invariantsOn.Store(on) }

// InvariantChecksOn reports the package-wide checker default.
func InvariantChecksOn() bool { return invariantsOn.Load() }

var defaultShards atomic.Int32

// SetDefaultShards sets the shard count every subsequent run uses when its
// Spec names none (the CLIs' -shards flag; <= 1 restores the single-loop
// engine). Sharding never moves a digest — it only buys wall-clock.
func SetDefaultShards(n int) {
	if n < 1 {
		n = 1
	}
	defaultShards.Store(int32(n))
}

// DefaultShards reports the package-wide shard default (minimum 1).
func DefaultShards() int {
	if n := defaultShards.Load(); n > 1 {
		return int(n)
	}
	return 1
}

// queueStats is satisfied by every aqm discipline.
type queueStats interface{ Stats() aqm.Stats }

// RunContext is the assembled scenario a Workload wires traffic onto and
// an Observer instruments: the engine and run RNG, the topology (exactly
// one of Dumbbell/LeafSpine is set, matching the Spec's Kind), the
// per-host guest configuration, and the bottleneck the telemetry and
// invariant observers watch.
type RunContext struct {
	// Eng is the hub engine: the shard owning the bottleneck port (the
	// only engine of a single-loop run). Telemetry and fault arming
	// schedule here; workloads must schedule per-host work on the owning
	// host's engine.
	Eng *sim.Engine
	// Group is the conservative-lookahead shard group (nil single-loop).
	// Observers needing a cross-shard view register barrier callbacks on
	// it instead of engine events.
	Group *sim.Group
	Rng   *sim.RNG

	Dumbbell  *topo.Dumbbell
	DumbbellP DumbbellParams

	LeafSpine *topo.LeafSpine
	TestbedP  TestbedParams

	// ConfigFor assigns a guest stack configuration per sender host
	// (mixed-scheme tenancy gives different hosts different controllers).
	ConfigFor func(*netem.Host) tcp.Config

	// Bottleneck telemetry: the shared queue, its transmitting port, the
	// label the invariant checker reports it under, and the line rate the
	// utilization series normalizes to.
	Bottleneck     netem.Queue
	BottleneckPort *netem.Port
	PortLabel      string
	LineRateBps    int64

	SampleEvery int64
	Duration    int64
	Check       bool

	// Shims holds the scheme's deployed hypervisor shims (empty for
	// shimless schemes); the shim-stats observer aggregates them.
	Shims []*core.Shim

	// Fabric names the assembled topology's fault-injection targets
	// (links, switches, shims); Spec.Faults events resolve against it.
	Fabric faults.Fabric
	// Injector is the armed fault timeline (nil in a fault-free run).
	Injector *faults.Injector

	senderFns []func() []*tcp.Sender
}

// WatchSenders registers a dynamic TCP-sender source (workloads create
// senders over time) for the invariant checker.
func (rc *RunContext) WatchSenders(f func() []*tcp.Sender) {
	rc.senderFns = append(rc.senderFns, f)
}

// Senders snapshots every registered sender source.
func (rc *RunContext) Senders() []*tcp.Sender {
	var out []*tcp.Sender
	for _, f := range rc.senderFns {
		out = append(out, f()...)
	}
	return out
}

// Workload wires traffic onto an assembled scenario and harvests its
// flow-level metrics after the run. Spec.Workload overrides the kind's
// default (dumbbell: long-lived + incast epochs; testbed: iperf + web).
type Workload interface {
	Wire(rc *RunContext, run *Run)
	Finish(rc *RunContext, run *Run)
}

// Observer instruments one run: Start is called after the workload is
// wired but before the engine runs, Finish after the engine stops. The
// built-in observers (bottleneck telemetry, invariant checker, shim
// stats) are wired once here instead of per-runner; Spec.Observers
// appends custom ones.
type Observer interface {
	Start(rc *RunContext, run *Run)
	Finish(rc *RunContext, run *Run)
}

// telemetryObserver samples the bottleneck queue and utilization on the
// run's sampling period and harvests the queue's drop/mark totals.
type telemetryObserver struct {
	util stats.RateMeter
}

func (o *telemetryObserver) Start(rc *RunContext, run *Run) {
	if rc.SampleEvery <= 0 || rc.Bottleneck == nil {
		return
	}
	eng := rc.Eng
	var sample func()
	sample = func() {
		now := eng.Now()
		run.QueuePkts.Add(now, float64(rc.Bottleneck.Len()))
		run.QueueBytes.Add(now, float64(rc.Bottleneck.Bytes()))
		o.util.Observe(now, rc.BottleneckPort.Stats().TxBytes)
		eng.Schedule(rc.SampleEvery, sample)
	}
	eng.Schedule(0, sample)
}

func (o *telemetryObserver) Finish(rc *RunContext, run *Run) {
	// Utilization as a fraction of line rate.
	for i := range o.util.Series.T {
		run.Utilization.Add(o.util.Series.T[i], o.util.Series.V[i]/float64(rc.LineRateBps))
	}
	if qs, ok := rc.Bottleneck.(queueStats); ok {
		st := qs.Stats()
		run.Drops = st.Dropped + st.EarlyDrop
		run.Marks = st.Marked
	}
}

// invariantObserver arms the opt-in physical-invariant checker on the
// bottleneck port and every TCP sender the workload registered.
type invariantObserver struct {
	chk *harness.Checker
}

func (o *invariantObserver) Start(rc *RunContext, run *Run) {
	if !rc.Check && !InvariantChecksOn() {
		return
	}
	o.chk = harness.NewChecker(rc.Eng, rc.SampleEvery)
	o.chk.WatchPort(rc.PortLabel, rc.BottleneckPort, rc.Bottleneck)
	o.chk.WatchSenders(rc.Senders)
	if rc.Group != nil {
		// A sharded run sweeps at window barriers, when every shard is
		// quiescent — the checker reads sender state that lives on other
		// shards, so an engine-scheduled sweep would race. Cadence stays
		// the checker's own period; barriers are at least as frequent.
		every := o.chk.Every()
		var next int64
		rc.Group.OnBarrier(func(now int64) {
			for now >= next {
				o.chk.Sweep()
				next += every
			}
		})
		return
	}
	o.chk.Start()
}

func (o *invariantObserver) Finish(rc *RunContext, run *Run) {
	if o.chk == nil {
		return
	}
	for _, v := range o.chk.Finish() {
		run.InvariantViolations = append(run.InvariantViolations, v.String())
	}
}

// shimStatsObserver aggregates the deployed shims' counters into the run.
type shimStatsObserver struct{}

func (shimStatsObserver) Start(*RunContext, *Run) {}

func (shimStatsObserver) Finish(rc *RunContext, run *Run) {
	if len(rc.Shims) == 0 {
		return
	}
	agg := core.Stats{}
	for _, s := range rc.Shims {
		st := s.Stats()
		agg.ProbesSent += st.ProbesSent
		agg.ProbesSeen += st.ProbesSeen
		agg.ProbesMarked += st.ProbesMarked
		agg.SynsHeld += st.SynsHeld
		agg.SynAcksStamped += st.SynAcksStamped
		agg.SynAcksPaced += st.SynAcksPaced
		agg.RwndRewrites += st.RwndRewrites
		agg.EpochsClosed += st.EpochsClosed
		agg.Dyed += st.Dyed
		agg.CECleared += st.CECleared
		agg.FlowsTracked += st.FlowsTracked
		agg.FlowsExpired += st.FlowsExpired
		agg.Crashes += st.Crashes
		agg.Restarts += st.Restarts
		agg.ProbeFallbacks += st.ProbeFallbacks
		agg.DarkReleases += st.DarkReleases
		agg.StaleRemints += st.StaleRemints
	}
	run.ShimStats = &agg
}

// chaosStatsObserver surfaces the per-kind impairment counters of an
// armed schedule into the run (excluded from the digest, like ShimStats).
type chaosStatsObserver struct{}

func (chaosStatsObserver) Start(*RunContext, *Run) {}

func (chaosStatsObserver) Finish(rc *RunContext, run *Run) {
	if rc.Injector == nil || !rc.Injector.HasImpairments() {
		return
	}
	st := rc.Injector.ImpairStats()
	run.ChaosStats = &st
}

// RecoveryObserver asserts the run heals after its fault timeline clears:
// every finite flow completes (or was deliberately aborted), the
// bottleneck queue drains, no shim stays crashed, and no flow-table entry
// outlives its completed flow — i.e. faults may hurt, but nothing sticks.
// For recurring schedules the clear point is the last occurrence's actual
// (jitter-drawn) end. Impairment schedules add three more invariants: the
// hold buffers of reorder/jitter windows retain nothing after drain,
// duplication leaves no duplicated-flow ghosts in any shim's flow slab,
// and checksum drops at the hosts stay bounded by the corruptions
// injected. Findings land in Run.InvariantViolations (reported by -check,
// excluded from the digest). Appended automatically when Spec.Faults is
// non-empty.
type RecoveryObserver struct{}

// Start implements Observer.
func (RecoveryObserver) Start(*RunContext, *Run) {}

// Finish implements Observer.
func (RecoveryObserver) Finish(rc *RunContext, run *Run) {
	viol := func(format string, args ...any) {
		run.InvariantViolations = append(run.InvariantViolations,
			"recovery: "+fmt.Sprintf(format, args...))
	}
	horizon := rc.Duration
	if rc.Dumbbell != nil {
		horizon += rc.DumbbellP.DrainAfter
	}
	if rc.Injector != nil && rc.Injector.LastClear() >= horizon {
		viol("fault schedule clears at %d ns, at or after the run horizon %d ns — nothing left to recover in",
			rc.Injector.LastClear(), horizon)
	}
	done := map[netem.FlowKey]bool{}
	background := false // long-lived (infinite) sources run past the horizon
	for _, s := range rc.Senders() {
		if s.Done() {
			done[s.FlowKey()] = true
			continue
		}
		if !s.Finite() {
			background = true
			continue
		}
		if !s.Aborted() {
			viol("flow %v stuck in state %s after faults cleared", s.FlowKey(), s.State())
		}
	}
	// A standing queue is only a recovery failure when nothing legitimate
	// is feeding it: live long-lived sources keep the bottleneck occupied
	// by design.
	if !background && rc.Bottleneck != nil && rc.Bottleneck.Len() > 0 {
		viol("bottleneck queue still holds %d packets after drain", rc.Bottleneck.Len())
	}
	for i, sh := range rc.Shims {
		if sh.Crashed() {
			viol("shim %d still crashed at run end", i)
		}
		// Snapshot is sorted by key, so duplicated-flow ghosts — two slab
		// rows for one flow, as naive handling of duplicated SYNs would
		// mint — sit adjacent.
		var prev netem.FlowKey
		for j, fi := range sh.Snapshot() {
			if done[fi.Key] && !fi.Closed {
				viol("shim %d leaks a live flow-table entry for completed flow %v", i, fi.Key)
			}
			if j > 0 && fi.Key == prev {
				viol("shim %d holds duplicated-flow ghost rows for %v", i, fi.Key)
			}
			prev = fi.Key
		}
	}
	if rc.Injector != nil && rc.Injector.HasImpairments() {
		st := rc.Injector.ImpairStats()
		if st.Held != 0 {
			viol("reorder/jitter hold buffer retains %d packets after drain", st.Held)
		}
		if st.CorruptDrops > st.Corrupted {
			viol("port corrupt-drops %d exceed corruptions injected %d", st.CorruptDrops, st.Corrupted)
		}
		var chkDrops int64
		for _, h := range rc.Fabric.Hosts {
			chkDrops += h.Stats().ChecksumDrops
		}
		// Every checksum discard must trace to an injected flip that was
		// not already dropped at the port: more means corruption leaked
		// somewhere it was never injected.
		if chkDrops > st.Corrupted-st.CorruptDrops {
			viol("host checksum drops %d exceed surviving corruptions %d", chkDrops, st.Corrupted-st.CorruptDrops)
		}
	}
}
