package scenario

import (
	"encoding/json"
	"fmt"
	"os"

	"hwatch/internal/faults"
	"hwatch/internal/netem"
	"hwatch/internal/sim"
)

// FaultSpec is the JSON form of one fault-timeline event, in operator
// units (milliseconds). It appears in a spec file's "faults" array or in
// a standalone schedule file for hwatchsim -faults:
//
//	[
//	  {"kind": "link-down", "at_ms": 150},
//	  {"kind": "link-up",   "at_ms": 155},
//	  {"kind": "burst-loss", "at_ms": 250, "until_ms": 270,
//	   "p_good_bad": 0.05, "p_bad_good": 0.5, "loss_bad": 1}
//	]
//
// Target selects a fabric element ("" = the scenario default: the
// bottleneck link, the core switch, every shim). The Gilbert–Elliott
// knobs only apply to "burst-loss".
type FaultSpec struct {
	Kind    string  `json:"kind"`
	AtMs    float64 `json:"at_ms"`
	UntilMs float64 `json:"until_ms,omitempty"`
	Target  string  `json:"target,omitempty"`

	PGoodBad float64 `json:"p_good_bad,omitempty"`
	PBadGood float64 `json:"p_bad_good,omitempty"`
	LossGood float64 `json:"loss_good,omitempty"`
	LossBad  float64 `json:"loss_bad,omitempty"`
}

// maxFaultMs bounds schedule times to something a simulation could ever
// reach (~11.5 days); it mainly rejects NaN/Inf and absurd inputs early.
const maxFaultMs = 1e9

// checkFaultSpecs validates the operator-unit fields; kind and window
// semantics are checked by faults.Schedule.Validate on the rendered form.
func checkFaultSpecs(specs []FaultSpec) error {
	for i, f := range specs {
		if !(f.AtMs >= 0 && f.AtMs <= maxFaultMs) {
			return fmt.Errorf("faults[%d] %s: at_ms %v outside [0, %g]", i, f.Kind, f.AtMs, float64(maxFaultMs))
		}
		if f.UntilMs != 0 && !(f.UntilMs > 0 && f.UntilMs <= maxFaultMs) {
			return fmt.Errorf("faults[%d] %s: until_ms %v outside (0, %g]", i, f.Kind, f.UntilMs, float64(maxFaultMs))
		}
	}
	return nil
}

// RenderFaults converts JSON fault specs to an engine-ready schedule
// (ms → ns) and validates it.
func RenderFaults(specs []FaultSpec) (faults.Schedule, error) {
	if err := checkFaultSpecs(specs); err != nil {
		return nil, err
	}
	sched := make(faults.Schedule, 0, len(specs))
	for _, f := range specs {
		sched = append(sched, faults.Event{
			Kind:   faults.Kind(f.Kind),
			At:     int64(f.AtMs * float64(sim.Millisecond)),
			Until:  int64(f.UntilMs * float64(sim.Millisecond)),
			Target: f.Target,
			GE: netem.GEParams{
				GoodToBad: f.PGoodBad,
				BadToGood: f.PBadGood,
				LossGood:  f.LossGood,
				LossBad:   f.LossBad,
			},
		})
	}
	if err := sched.Validate(); err != nil {
		return nil, err
	}
	return sched, nil
}

// LoadFaults reads a standalone JSON fault-schedule file (an array of
// FaultSpec) and renders it.
func LoadFaults(path string) (faults.Schedule, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading fault schedule: %w", err)
	}
	var specs []FaultSpec
	if err := json.Unmarshal(raw, &specs); err != nil {
		return nil, fmt.Errorf("parsing fault schedule: %w", err)
	}
	return RenderFaults(specs)
}
