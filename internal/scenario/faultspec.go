package scenario

import (
	"encoding/json"
	"fmt"
	"os"

	"hwatch/internal/faults"
	"hwatch/internal/netem"
	"hwatch/internal/sim"
)

// FaultSpec is the JSON form of one fault-timeline event, in operator
// units (milliseconds). It appears in a spec file's "faults" array or in
// a standalone schedule file for hwatchsim -faults:
//
//	[
//	  {"kind": "link-down", "at_ms": 150},
//	  {"kind": "link-up",   "at_ms": 155},
//	  {"kind": "burst-loss", "at_ms": 250, "until_ms": 270,
//	   "p_good_bad": 0.05, "p_bad_good": 0.5, "loss_bad": 1}
//	]
//
// Target selects a fabric element ("" = the scenario default: the
// bottleneck link, the core switch, every shim). The Gilbert–Elliott
// knobs only apply to "burst-loss"; the impairment knobs to the netem
// matrix kinds (corrupt, duplicate, reorder, jitter, rate-limit).
//
// Recurrence: "count" (with "every_ms"/"for_ms"/"jitter_ms") repeats the
// event — occurrence i opens at at_ms + i*every_ms plus a uniform
// [0, jitter_ms] draw and stays active for for_ms; point kinds restore
// themselves when the window closes. "pick" draws that many random
// fabric targets per occurrence instead of naming one:
//
//	{"kind": "link-down", "at_ms": 80, "count": 4, "every_ms": 60,
//	 "for_ms": 4, "jitter_ms": 10, "pick": 2}
//
// Every new field is omitempty so pre-existing spec files keep their
// identity digest (and therefore their derived seeds).
type FaultSpec struct {
	Kind    string  `json:"kind"`
	AtMs    float64 `json:"at_ms"`
	UntilMs float64 `json:"until_ms,omitempty"`
	Target  string  `json:"target,omitempty"`

	PGoodBad float64 `json:"p_good_bad,omitempty"`
	PBadGood float64 `json:"p_bad_good,omitempty"`
	LossGood float64 `json:"loss_good,omitempty"`
	LossBad  float64 `json:"loss_bad,omitempty"`

	// Impairment-matrix knobs (sub-millisecond timings are in µs).
	Prob     float64 `json:"prob,omitempty"`      // per-packet probability
	DropFrac float64 `json:"drop_frac,omitempty"` // corrupt: dropped-at-port fraction
	Copies   int     `json:"copies,omitempty"`    // duplicate: copies per hit
	HoldUs   float64 `json:"hold_us,omitempty"`   // reorder: max hold
	Dist     string  `json:"dist,omitempty"`      // jitter: uniform|normal|pareto
	DelayUs  float64 `json:"delay_us,omitempty"`  // jitter: center / pareto scale
	JitterUs float64 `json:"jitter_us,omitempty"` // jitter: spread / sigma
	Shape    float64 `json:"shape,omitempty"`     // jitter: pareto shape
	RateMbps float64 `json:"rate_mbps,omitempty"` // rate-limit: bucket rate
	BurstKB  float64 `json:"burst_kb,omitempty"`  // rate-limit: bucket size
	Egress   bool    `json:"egress,omitempty"`    // attach on the wire side

	// Recurrence and random target selection.
	EveryMs  float64 `json:"every_ms,omitempty"`
	ForMs    float64 `json:"for_ms,omitempty"`
	JitterMs float64 `json:"jitter_ms,omitempty"`
	Count    int     `json:"count,omitempty"`
	Pick     int     `json:"pick,omitempty"`
}

// recurring reports whether the spec asks for a recurrence wrapper.
func (f FaultSpec) recurring() bool {
	return f.Count > 0 || f.EveryMs > 0 || f.ForMs > 0 || f.JitterMs > 0
}

// maxFaultMs bounds schedule times to something a simulation could ever
// reach (~11.5 days); it mainly rejects NaN/Inf and absurd inputs early.
const maxFaultMs = 1e9

// checkFaultSpecs validates the operator-unit fields; kind and window
// semantics are checked by faults.Schedule.Validate on the rendered form.
func checkFaultSpecs(specs []FaultSpec) error {
	for i, f := range specs {
		if !(f.AtMs >= 0 && f.AtMs <= maxFaultMs) {
			return fmt.Errorf("faults[%d] %s: at_ms %v outside [0, %g]", i, f.Kind, f.AtMs, float64(maxFaultMs))
		}
		for _, ms := range []struct {
			name string
			v    float64
		}{
			{"until_ms", f.UntilMs}, {"every_ms", f.EveryMs}, {"for_ms", f.ForMs},
			{"jitter_ms", f.JitterMs}, {"hold_us", f.HoldUs}, {"delay_us", f.DelayUs},
			{"jitter_us", f.JitterUs}, {"rate_mbps", f.RateMbps}, {"burst_kb", f.BurstKB},
		} {
			if ms.v != 0 && !(ms.v > 0 && ms.v <= maxFaultMs) {
				return fmt.Errorf("faults[%d] %s: %s %v outside (0, %g]", i, f.Kind, ms.name, ms.v, float64(maxFaultMs))
			}
		}
	}
	return nil
}

// RenderFaults converts JSON fault specs to an engine-ready schedule
// (ms → ns) and validates it.
func RenderFaults(specs []FaultSpec) (faults.Schedule, error) {
	if err := checkFaultSpecs(specs); err != nil {
		return nil, err
	}
	sched := make(faults.Schedule, 0, len(specs))
	for _, f := range specs {
		ev := faults.Event{
			Kind:   faults.Kind(f.Kind),
			At:     int64(f.AtMs * float64(sim.Millisecond)),
			Until:  int64(f.UntilMs * float64(sim.Millisecond)),
			Target: f.Target,
			Pick:   f.Pick,
			GE: netem.GEParams{
				GoodToBad: f.PGoodBad,
				BadToGood: f.PBadGood,
				LossGood:  f.LossGood,
				LossBad:   f.LossBad,
			},
			Impair: faults.ImpairParams{
				Prob:     f.Prob,
				DropFrac: f.DropFrac,
				Copies:   f.Copies,
				Hold:     int64(f.HoldUs * float64(sim.Microsecond)),
				Dist:     f.Dist,
				Delay:    int64(f.DelayUs * float64(sim.Microsecond)),
				Jitter:   int64(f.JitterUs * float64(sim.Microsecond)),
				Shape:    f.Shape,
				RateBps:  int64(f.RateMbps * 1e6),
				Burst:    int(f.BurstKB * 1024),
				Egress:   f.Egress,
			},
		}
		if f.recurring() {
			count := f.Count
			if count == 0 {
				count = 1
			}
			ev.Recur = &faults.Recurrence{
				Interval: int64(f.EveryMs * float64(sim.Millisecond)),
				Duration: int64(f.ForMs * float64(sim.Millisecond)),
				Jitter:   int64(f.JitterMs * float64(sim.Millisecond)),
				Count:    count,
			}
		}
		sched = append(sched, ev)
	}
	if err := sched.Validate(); err != nil {
		return nil, err
	}
	return sched, nil
}

// LoadFaults reads a standalone JSON fault-schedule file (an array of
// FaultSpec) and renders it.
func LoadFaults(path string) (faults.Schedule, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading fault schedule: %w", err)
	}
	var specs []FaultSpec
	if err := json.Unmarshal(raw, &specs); err != nil {
		return nil, fmt.Errorf("parsing fault schedule: %w", err)
	}
	return RenderFaults(specs)
}
