package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// syntheticRun builds a Run with known values so rendering can be checked
// without simulating.
func syntheticRun(label string) *Run {
	r := &Run{Label: label}
	for _, v := range []float64{1, 2, 3, 4} {
		r.ShortFCTms.Add(v)
		r.PerSourceAvgMs.Add(v * 2)
		r.PerSourceVarMs.Add(v / 2)
	}
	r.LongGoodputBps.Add(4e9)
	r.LongGoodputBps.Add(6e9)
	r.LongFairness = 0.96
	for i := int64(0); i < 5; i++ {
		r.QueuePkts.Add(i*1000, float64(10*i))
		r.QueueBytes.Add(i*1000, float64(15000*i))
		r.Utilization.Add(i*1000, 0.5)
	}
	r.Drops, r.Marks, r.Timeouts = 7, 11, 2
	r.ShortDone, r.ShortAll = 4, 4
	return r
}

func TestSummarize(t *testing.T) {
	s := Summarize(syntheticRun("X"))
	if s.Label != "X" || s.Drops != 7 || s.Marks != 11 || s.Timeouts != 2 {
		t.Fatalf("summary totals wrong: %+v", s)
	}
	if s.FCTMeanMs != 2.5 || s.GoodputGbps != 5 {
		t.Fatalf("summary stats wrong: %+v", s)
	}
	if s.ShortDone != 4 || s.ShortAll != 4 {
		t.Fatalf("summary counts wrong: %+v", s)
	}
}

func TestTableRendering(t *testing.T) {
	out := Table([]*Run{syntheticRun("A"), syntheticRun("B")})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("table has %d lines, want header + 2 rows:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "fct-p50ms") || !strings.Contains(lines[0], "goodput-Gbps") {
		t.Fatalf("header wrong: %s", lines[0])
	}
	if !strings.HasPrefix(lines[1], "A") || !strings.HasPrefix(lines[2], "B") {
		t.Fatalf("rows out of order:\n%s", out)
	}
	if !strings.Contains(lines[1], "4/4") {
		t.Fatalf("done column missing: %s", lines[1])
	}
}

func TestJSONRendering(t *testing.T) {
	out, err := JSON([]*Run{syntheticRun("A")})
	if err != nil {
		t.Fatal(err)
	}
	var got []Summary
	if err := json.Unmarshal([]byte(out), &got); err != nil {
		t.Fatalf("JSON output does not round-trip: %v\n%s", err, out)
	}
	if len(got) != 1 || got[0].Label != "A" || got[0].Drops != 7 {
		t.Fatalf("JSON content wrong: %+v", got)
	}
}

func TestSaveRunWritesSeries(t *testing.T) {
	dir := t.TempDir()
	if err := SaveRun(dir, "p", syntheticRun("A")); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{
		"p_fct_cdf.csv", "p_fct_avg_cdf.csv", "p_fct_var_cdf.csv",
		"p_goodput_cdf.csv", "p_queue_bytes.csv", "p_util.csv",
	} {
		raw, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil {
			t.Fatalf("missing %s: %v", f, err)
		}
		if len(raw) == 0 {
			t.Fatalf("%s is empty", f)
		}
		for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
			if strings.Count(line, ",") != 1 {
				t.Fatalf("%s: not 2-column CSV: %q", f, line)
			}
		}
	}
	// Without per-source samples the AVG/VAR CDFs are skipped.
	empty := &Run{Label: "E"}
	dir2 := t.TempDir()
	if err := SaveRun(dir2, "q", empty); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir2, "q_fct_avg_cdf.csv")); !os.IsNotExist(err) {
		t.Fatal("empty run still wrote per-source CDFs")
	}
}

func TestWriteCDFMonotone(t *testing.T) {
	r := syntheticRun("A")
	var b strings.Builder
	if err := WriteCDF(&b, &r.ShortFCTms, 100); err != nil {
		t.Fatal(err)
	}
	lastP := -1.0
	for _, line := range strings.Split(strings.TrimSpace(b.String()), "\n") {
		var x, p float64
		if _, err := fmtSscan(line, &x, &p); err != nil {
			t.Fatalf("bad CDF line %q: %v", line, err)
		}
		if p < lastP {
			t.Fatalf("CDF not monotone at %q", line)
		}
		lastP = p
	}
	if lastP != 1 {
		t.Fatalf("CDF does not reach 1: %f", lastP)
	}

	var s strings.Builder
	if err := WriteSeries(&s, &r.QueuePkts); err != nil {
		t.Fatal(err)
	}
	if got := len(strings.Split(strings.TrimSpace(s.String()), "\n")); got != 5 {
		t.Fatalf("series rows = %d, want 5", got)
	}
}

// fmtSscan parses "x,p" CSV into two floats.
func fmtSscan(line string, x, p *float64) (int, error) {
	parts := strings.SplitN(line, ",", 2)
	if len(parts) != 2 {
		return 0, os.ErrInvalid
	}
	if err := json.Unmarshal([]byte(parts[0]), x); err != nil {
		return 0, err
	}
	if err := json.Unmarshal([]byte(parts[1]), p); err != nil {
		return 1, err
	}
	return 2, nil
}
