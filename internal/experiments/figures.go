package experiments

import (
	"context"
	"strconv"

	"hwatch/internal/harness"
	"hwatch/internal/scenario"
)

// Fig1Result holds one run per initial congestion window value.
type Fig1Result struct {
	ICWs []int
	Runs map[int]*Run
}

// Fig1 reproduces the DCTCP initial-window study (Fig. 1a-d): DCTCP
// background flows plus incast surges, sweeping ICW over the paper's
// values. scale in (0,1] shrinks source counts and duration for quick runs.
func Fig1(scale float64) *Fig1Result {
	res, err := Fig1Context(context.Background(), scale)
	if err != nil {
		panic("experiments: " + err.Error())
	}
	return res
}

// Fig1Context is Fig1 under a context: cancellation interrupts in-flight
// runs and returns ctx.Err() instead of panicking.
func Fig1Context(ctx context.Context, scale float64) (*Fig1Result, error) {
	icws := []int{1, 5, 10, 15, 20}
	out := &Fig1Result{ICWs: icws, Runs: make(map[int]*Run)}
	runs, err := harness.Map(ctx, ParallelN(), icws,
		func(ctx context.Context, icw int) (*Run, error) {
			p := scaled(PaperDumbbell(25, 25), scale)
			p.ICW = icw
			p.Seed = 42 // identical traffic across ICW values
			r, err := scenario.RunDumbbellContext(ctx, SchemeDCTCP, p)
			if err != nil {
				return nil, err
			}
			r.Label = schemeICWLabel(icw)
			return r, nil
		})
	if err != nil {
		return nil, err
	}
	for i, icw := range icws {
		out.Runs[icw] = runs[i]
	}
	return out, nil
}

func schemeICWLabel(icw int) string {
	return "ICWND=" + strconv.Itoa(icw)
}

// Fig2Result holds the coexistence study: DCTCP alone vs. the MIX of
// controllers sharing the fabric, plus the extension run where HWatch
// shims govern the same MIX (not in the paper; it demonstrates the
// transport-agnostic claim — the hypervisor watch disciplines even the
// ECN-deaf tenant via its receive window).
type Fig2Result struct {
	DCTCP     *Run
	Mix       *Run
	MixHWatch *Run
}

// Fig2 reproduces the controller-coexistence study (Fig. 2a-d): the same
// scenario run with all-DCTCP tenants and with tenants split evenly across
// DCTCP, ECN-responsive NewReno, and ECN-non-responsive NewReno — and,
// as an extension, the MIX again with HWatch shims on every host.
func Fig2(scale float64) *Fig2Result {
	res, err := Fig2Context(context.Background(), scale)
	if err != nil {
		panic("experiments: " + err.Error())
	}
	return res
}

// Fig2Context is Fig2 under a context; see Fig1Context.
func Fig2Context(ctx context.Context, scale float64) (*Fig2Result, error) {
	p := scaled(PaperDumbbell(25, 25), scale)
	res := &Fig2Result{}
	pool := harness.NewPool(ctx, ParallelN())
	pool.Go("fig2/dctcp", func(ctx context.Context) error {
		r, err := scenario.RunDumbbellContext(ctx, SchemeDCTCP, p)
		if err != nil {
			return err
		}
		r.Label = "DCTCP"
		res.DCTCP = r
		return nil
	})
	pool.Go("fig2/mix", func(ctx context.Context) error {
		r, err := runMix(ctx, p, false)
		if err != nil {
			return err
		}
		r.Label = "MIX"
		res.Mix = r
		return nil
	})
	pool.Go("fig2/mix+hwatch", func(ctx context.Context) error {
		r, err := runMix(ctx, p, true)
		if err != nil {
			return err
		}
		r.Label = "MIX+HWatch"
		res.MixHWatch = r
		return nil
	})
	if err := pool.Wait(); err != nil {
		return nil, err
	}
	return res, nil
}

// runMix executes the dumbbell with per-host controller flavours over the
// DCTCP marking discipline (threshold marking, as in the paper's rerun of
// the same experiment): sender hosts cycle through DCTCP, ECN-responsive
// NewReno and ECN-deaf NewReno. withShims additionally installs HWatch on
// every host (the extension run).
func runMix(ctx context.Context, p DumbbellParams, withShims bool) (*Run, error) {
	spec := &scenario.Spec{
		Kind: scenario.KindDumbbell,
		Schemes: []scenario.Share{
			{Scheme: scenario.DCTCP},
			{Scheme: scenario.RenoECN},
			{Scheme: scenario.RenoDeaf},
		},
		Label:       "MIX",
		ShimOverlay: withShims,
		Dumbbell:    p,
	}
	return spec.RunContext(ctx)
}

// Fig8Result maps each compared scheme to its run.
type Fig8Result struct {
	Order []Scheme
	Runs  map[Scheme]*Run
}

// Fig8 reproduces the 50-source comparison (Fig. 8a-d): 25 long-lived and
// 25 short-lived sources, schemes TCP-DropTail / TCP-RED / TCP-HWatch /
// DCTCP.
func Fig8(scale float64) *Fig8Result {
	res, err := Fig8Context(context.Background(), scale)
	if err != nil {
		panic("experiments: " + err.Error())
	}
	return res
}

// Fig9 reproduces the 100-source scalability rerun (Fig. 9a-d).
func Fig9(scale float64) *Fig8Result {
	res, err := Fig9Context(context.Background(), scale)
	if err != nil {
		panic("experiments: " + err.Error())
	}
	return res
}

// Fig8Context is Fig8 under a context; see Fig1Context.
func Fig8Context(ctx context.Context, scale float64) (*Fig8Result, error) {
	return figScheme(ctx, 25, 25, scale)
}

// Fig9Context is Fig9 under a context; see Fig1Context.
func Fig9Context(ctx context.Context, scale float64) (*Fig8Result, error) {
	return figScheme(ctx, 50, 50, scale)
}

// figScheme runs the four schemes through the harness pool; every run owns
// its engine and seeded RNG, so parallelism does not affect determinism.
func figScheme(ctx context.Context, longN, shortN int, scale float64) (*Fig8Result, error) {
	out := &Fig8Result{Order: AllSchemes(), Runs: make(map[Scheme]*Run)}
	runs, err := harness.Map(ctx, ParallelN(), out.Order,
		func(ctx context.Context, s Scheme) (*Run, error) {
			p := scaled(PaperDumbbell(longN, shortN), scale)
			p.ByteBuffers = true // Fig. 8c/9c report queue occupancy in bytes
			return scenario.RunDumbbellContext(ctx, s, p)
		})
	if err != nil {
		return nil, err
	}
	for i, s := range out.Order {
		out.Runs[s] = runs[i]
	}
	return out, nil
}

// scaled shrinks a scenario for fast runs: source counts scale linearly,
// epochs and duration stay (they bound wall-clock less than event volume).
func scaled(p DumbbellParams, scale float64) DumbbellParams {
	if scale >= 1 || scale <= 0 {
		return p
	}
	shrink := func(n int) int {
		v := int(float64(n) * scale)
		if v < 2 {
			v = 2
		}
		return v
	}
	p.LongSources = shrink(p.LongSources)
	p.ShortSources = shrink(p.ShortSources)
	p.Duration = int64(float64(p.Duration) * scaleClamp(scale*2))
	p.Epochs = int(float64(p.Epochs)*scaleClamp(scale*2)) + 1
	return p
}

func scaleClamp(v float64) float64 {
	if v > 1 {
		return 1
	}
	return v
}
