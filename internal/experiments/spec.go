package experiments

import (
	"encoding/json"
	"fmt"
	"os"

	"hwatch/internal/harness"
	"hwatch/internal/sim"
)

// Spec is the JSON description of a runnable scenario, so operators can
// keep experiment configurations in files (cmd/hwatchsim -spec run.json).
// Durations are in microseconds, rates in Gb/s — the units operators think
// in — and converted on Load.
type Spec struct {
	// Kind selects the topology: "dumbbell" or "testbed".
	Kind string `json:"kind"`
	// Scheme: "droptail" | "red" | "dctcp" | "hwatch". Testbed specs use
	// "hwatch" for the shimmed run and anything else for plain TCP.
	Scheme string `json:"scheme"`

	// Dumbbell knobs.
	LongSources    int     `json:"long_sources,omitempty"`
	ShortSources   int     `json:"short_sources,omitempty"`
	BottleneckGbps float64 `json:"bottleneck_gbps,omitempty"`
	BufferPkts     int     `json:"buffer_pkts,omitempty"`
	MarkPercent    float64 `json:"mark_percent,omitempty"`
	RTTMicros      int64   `json:"rtt_us,omitempty"`
	ICW            int     `json:"icw,omitempty"`
	DurationMs     int64   `json:"duration_ms,omitempty"`
	Epochs         int     `json:"epochs,omitempty"`
	ShortKB        float64 `json:"short_kb,omitempty"`
	ByteBuffers    *bool   `json:"byte_buffers,omitempty"`
	Seed           int64   `json:"seed,omitempty"`

	// Testbed knobs (defaults from PaperTestbed when zero).
	Racks        int `json:"racks,omitempty"`
	HostsPerRack int `json:"hosts_per_rack,omitempty"`
	Parallel     int `json:"parallel,omitempty"`

	// Check enables the physical-invariant checker for the run.
	Check bool `json:"check,omitempty"`
}

// identity is the canonical string hashed into derived seeds when the spec
// names none. Check is observability, not scenario, so it is excluded —
// checking a run must not move its seed.
func (s *Spec) identity() string {
	c := *s
	c.Check = false
	b, err := json.Marshal(&c)
	if err != nil {
		return s.Kind + "/" + s.Scheme
	}
	return string(b)
}

// LoadSpec reads and validates a Spec from a JSON file.
func LoadSpec(path string) (*Spec, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading spec: %w", err)
	}
	return ParseSpec(raw)
}

// ParseSpec validates a Spec from JSON bytes.
func ParseSpec(raw []byte) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, fmt.Errorf("parsing spec: %w", err)
	}
	switch s.Kind {
	case "dumbbell", "testbed":
	default:
		return nil, fmt.Errorf("spec kind %q: want dumbbell or testbed", s.Kind)
	}
	if s.Kind == "dumbbell" {
		if _, err := s.scheme(); err != nil {
			return nil, err
		}
	}
	if s.BottleneckGbps < 0 || s.BufferPkts < 0 || s.MarkPercent < 0 || s.MarkPercent > 100 {
		return nil, fmt.Errorf("spec has out-of-range fabric parameters")
	}
	return &s, nil
}

func (s *Spec) scheme() (Scheme, error) {
	switch s.Scheme {
	case "droptail", "":
		return SchemeDropTail, nil
	case "red":
		return SchemeRED, nil
	case "dctcp":
		return SchemeDCTCP, nil
	case "hwatch":
		return SchemeHWatch, nil
	}
	return 0, fmt.Errorf("unknown scheme %q", s.Scheme)
}

// Run executes the spec and returns the resulting run.
func (s *Spec) Run() (*Run, error) {
	switch s.Kind {
	case "dumbbell":
		sc, err := s.scheme()
		if err != nil {
			return nil, err
		}
		p := s.dumbbellParams()
		return RunDumbbell(sc, p), nil
	case "testbed":
		p := s.testbedParams()
		run := RunTestbed(s.Scheme == "hwatch", p)
		if s.Scheme == "hwatch" {
			run.Label = "TCP-HWatch"
		} else {
			run.Label = "TCP"
		}
		return run, nil
	}
	return nil, fmt.Errorf("unrunnable spec kind %q", s.Kind)
}

func (s *Spec) dumbbellParams() DumbbellParams {
	p := PaperDumbbell(orInt(s.LongSources, 25), orInt(s.ShortSources, 25))
	if s.BottleneckGbps > 0 {
		p.BottleneckBps = int64(s.BottleneckGbps * 1e9)
		p.EdgeBps = p.BottleneckBps
	}
	if s.BufferPkts > 0 {
		p.BufferPkts = s.BufferPkts
	}
	if s.MarkPercent > 0 {
		p.MarkFrac = s.MarkPercent / 100
	}
	if s.RTTMicros > 0 {
		p.LinkDelay = s.RTTMicros * sim.Microsecond / 4
	}
	if s.ICW > 0 {
		p.ICW = s.ICW
	}
	if s.DurationMs > 0 {
		p.Duration = s.DurationMs * sim.Millisecond
	}
	if s.Epochs > 0 {
		p.Epochs = s.Epochs
	}
	if s.ShortKB > 0 {
		p.ShortSize = int64(s.ShortKB * 1000)
	}
	if s.ByteBuffers != nil {
		p.ByteBuffers = *s.ByteBuffers
	} else {
		p.ByteBuffers = true
	}
	if s.Seed != 0 {
		p.Seed = s.Seed
	} else {
		// No explicit seed: derive one from the spec itself, so distinct
		// scenarios draw independent randomness while the same file always
		// reruns identically.
		p.Seed = harness.SeedFor(s.identity(), p.Seed)
	}
	p.Check = s.Check
	return p
}

func (s *Spec) testbedParams() TestbedParams {
	p := PaperTestbed()
	if s.Racks > 0 {
		p.Racks = s.Racks
	}
	if s.HostsPerRack > 0 {
		p.HostsPerRack = s.HostsPerRack
		// The paper's per-rack role counts cannot exceed the rack size.
		if p.WebServers > p.HostsPerRack {
			p.WebServers = p.HostsPerRack
		}
		if p.WebClients > p.HostsPerRack {
			p.WebClients = p.HostsPerRack
		}
	}
	if s.Parallel > 0 {
		p.Parallel = s.Parallel
	}
	if s.Epochs > 0 {
		p.Epochs = s.Epochs
		p.Duration = p.FirstEpoch + int64(p.Epochs)*p.EpochInterval
	}
	if s.DurationMs > 0 {
		p.Duration = s.DurationMs * sim.Millisecond
	}
	if s.Seed != 0 {
		p.Seed = s.Seed
	} else {
		p.Seed = harness.SeedFor(s.identity(), p.Seed)
	}
	p.Check = s.Check
	return p
}

func orInt(v, def int) int {
	if v > 0 {
		return v
	}
	return def
}
