package experiments

import (
	"hwatch/internal/scenario"
)

// Spec is the JSON description of a runnable scenario (see
// scenario.FileSpec); cmd/hwatchsim -spec run.json loads one.
type Spec = scenario.FileSpec

// LoadSpec reads and validates a Spec from a JSON file.
func LoadSpec(path string) (*Spec, error) { return scenario.LoadSpec(path) }

// ParseSpec validates a Spec from JSON bytes.
func ParseSpec(raw []byte) (*Spec, error) { return scenario.ParseSpec(raw) }
