package experiments

import (
	"context"

	"hwatch/internal/harness"
)

// Fig11Result compares plain TCP with TCP+HWatch on the testbed.
type Fig11Result struct {
	TCP    *Run
	HWatch *Run
}

// Fig11 reproduces the testbed experiment (Fig. 11a-b). scale in (0,1]
// shrinks the web workload for quick runs.
func Fig11(scale float64) *Fig11Result {
	p := PaperTestbed()
	if scale > 0 && scale < 1 {
		shrink := func(n int) int {
			v := int(float64(n) * scale)
			if v < 1 {
				v = 1
			}
			return v
		}
		p.LongPerRack = shrink(p.LongPerRack)
		p.WebServers = shrink(p.WebServers)
		p.WebClients = shrink(p.WebClients)
		p.Parallel = shrink(p.Parallel)
		p.Epochs = shrink(p.Epochs)
		p.Duration = p.FirstEpoch + int64(p.Epochs)*p.EpochInterval
	}
	res := &Fig11Result{}
	pool := harness.NewPool(context.Background(), ParallelN())
	pool.Go("fig11/tcp", func(context.Context) error {
		res.TCP = RunTestbed(false, p)
		res.TCP.Label = "TCP"
		return nil
	})
	pool.Go("fig11/hwatch", func(context.Context) error {
		res.HWatch = RunTestbed(true, p)
		res.HWatch.Label = "TCP-HWatch"
		return nil
	})
	pool.Wait()
	return res
}
