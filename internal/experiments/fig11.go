package experiments

import (
	"context"

	"hwatch/internal/harness"
	"hwatch/internal/scenario"
)

// Fig11Result compares plain TCP with TCP+HWatch on the testbed.
type Fig11Result struct {
	TCP    *Run
	HWatch *Run
}

// Fig11 reproduces the testbed experiment (Fig. 11a-b). scale in (0,1]
// shrinks the web workload for quick runs.
func Fig11(scale float64) *Fig11Result {
	res, err := Fig11Context(context.Background(), scale)
	if err != nil {
		panic("experiments: " + err.Error())
	}
	return res
}

// Fig11Context is Fig11 under a context; see Fig1Context.
func Fig11Context(ctx context.Context, scale float64) (*Fig11Result, error) {
	p := PaperTestbed()
	if scale > 0 && scale < 1 {
		shrink := func(n int) int {
			v := int(float64(n) * scale)
			if v < 1 {
				v = 1
			}
			return v
		}
		p.LongPerRack = shrink(p.LongPerRack)
		p.WebServers = shrink(p.WebServers)
		p.WebClients = shrink(p.WebClients)
		p.Parallel = shrink(p.Parallel)
		p.Epochs = shrink(p.Epochs)
		p.Duration = p.FirstEpoch + int64(p.Epochs)*p.EpochInterval
	}
	res := &Fig11Result{}
	pool := harness.NewPool(ctx, ParallelN())
	pool.Go("fig11/tcp", func(ctx context.Context) error {
		r, err := scenario.RunTestbedContext(ctx, false, p)
		if err != nil {
			return err
		}
		r.Label = "TCP"
		res.TCP = r
		return nil
	})
	pool.Go("fig11/hwatch", func(ctx context.Context) error {
		r, err := scenario.RunTestbedContext(ctx, true, p)
		if err != nil {
			return err
		}
		r.Label = "TCP-HWatch"
		res.HWatch = r
		return nil
	})
	if err := pool.Wait(); err != nil {
		return nil, err
	}
	return res, nil
}
