package experiments

import (
	"context"
	"time"

	"hwatch/internal/aqm"
	"hwatch/internal/core"
	"hwatch/internal/harness"
	"hwatch/internal/netem"
	"hwatch/internal/sim"
	"hwatch/internal/stats"
	"hwatch/internal/tcp"
	"hwatch/internal/topo"
	"hwatch/internal/workload"
)

// TestbedParams reproduces the Section VI testbed: 4 racks of servers on
// 1 Gb/s links behind one spine, base RTT ~200 us. Rack 3 hosts the
// requesting clients; racks 0-2 host web servers and iperf sources. The
// shared bottleneck is the spine port toward rack 3.
type TestbedParams struct {
	Racks        int
	HostsPerRack int
	RateBps      int64
	LinkDelay    int64 // per hop (x4 hops cross-rack)
	BufferPkts   int   // per switch port
	MarkFrac     float64

	LongPerRack   int   // iperf flows per server rack (paper: 7, x2 dirs = 14)
	WebServers    int   // web servers per server rack (paper: 7)
	WebClients    int   // requesting clients on the client rack
	Parallel      int   // parallel connections per client-server pair
	ObjectSize    int64 // paper: 11.5 KB
	Epochs        int   // paper: 5
	FirstEpoch    int64
	EpochInterval int64

	Duration int64
	MinRTO   int64 // plain-TCP run (0 = 200 ms)
	// HWatchMinRTO is the guest minRTO in the HWatch configuration. The
	// paper's testbed section states HWatch ran with a 4 ms RTO; keep the
	// default 200 ms by setting this to MinRTO for an isolated comparison.
	HWatchMinRTO int64
	SampleEvery  int64
	Seed         int64

	// Check enables the physical-invariant checker for this run; findings
	// land in Run.InvariantViolations.
	Check bool
}

// PaperTestbed returns the paper's counts at a time-compressed scale: the
// same 42 long flows and 1260 web fetches per epoch x 5 epochs, with epoch
// spacing shrunk so the run fits in seconds of simulated time.
func PaperTestbed() TestbedParams {
	return TestbedParams{
		Racks:         4,
		HostsPerRack:  21,
		RateBps:       1e9,
		LinkDelay:     25 * sim.Microsecond, // 8 hops round trip -> 200 us
		BufferPkts:    100,
		MarkFrac:      0.20,
		LongPerRack:   14, // 42 total, as in 2 x 7 x 3
		WebServers:    7,
		WebClients:    6,
		Parallel:      10, // 7 x 6 x 3 x 10 = 1260 flows per epoch
		ObjectSize:    11_500,
		Epochs:        5,
		FirstEpoch:    200 * sim.Millisecond,
		EpochInterval: 400 * sim.Millisecond,
		Duration:      2400 * sim.Millisecond,
		HWatchMinRTO:  4 * sim.Millisecond, // paper Sec. VI: "RTO of 4ms"
		SampleEvery:   500 * sim.Microsecond,
		Seed:          7,
	}
}

// Fig11Result compares plain TCP with TCP+HWatch on the testbed.
type Fig11Result struct {
	TCP    *Run
	HWatch *Run
}

// Fig11 reproduces the testbed experiment (Fig. 11a-b). scale in (0,1]
// shrinks the web workload for quick runs.
func Fig11(scale float64) *Fig11Result {
	p := PaperTestbed()
	if scale > 0 && scale < 1 {
		shrink := func(n int) int {
			v := int(float64(n) * scale)
			if v < 1 {
				v = 1
			}
			return v
		}
		p.LongPerRack = shrink(p.LongPerRack)
		p.WebServers = shrink(p.WebServers)
		p.WebClients = shrink(p.WebClients)
		p.Parallel = shrink(p.Parallel)
		p.Epochs = shrink(p.Epochs)
		p.Duration = p.FirstEpoch + int64(p.Epochs)*p.EpochInterval
	}
	res := &Fig11Result{}
	pool := harness.NewPool(context.Background(), ParallelN())
	pool.Go("fig11/tcp", func(context.Context) error {
		res.TCP = RunTestbed(false, p)
		res.TCP.Label = "TCP"
		return nil
	})
	pool.Go("fig11/hwatch", func(context.Context) error {
		res.HWatch = RunTestbed(true, p)
		res.HWatch.Label = "TCP-HWatch"
		return nil
	})
	pool.Wait()
	return res
}

// RunTestbed executes the leaf-spine scenario with or without HWatch. The
// fabric uses byte-accounted threshold-marking buffers when HWatch is on
// (ECN must be armed for the shim) and plain DropTail otherwise, matching
// the testbed's two configurations.
func RunTestbed(hwatch bool, p TestbedParams) *Run {
	rng := sim.NewRNG(p.Seed)
	bufBytes := p.BufferPkts * netem.DefaultMTU
	kBytes := int(float64(bufBytes) * p.MarkFrac)

	coreQ := func() netem.Queue { return aqm.NewDropTailBytes(bufBytes) }
	if hwatch {
		coreQ = func() netem.Queue { return aqm.NewMarkThresholdBytes(bufBytes, kBytes) }
	}
	ls := topo.NewLeafSpine(topo.LeafSpineConfig{
		Racks:        p.Racks,
		HostsPerRack: p.HostsPerRack,
		EdgeRateBps:  p.RateBps,
		CoreRateBps:  p.RateBps,
		EdgeDelay:    p.LinkDelay,
		CoreDelay:    p.LinkDelay,
		EdgeQ:        func() netem.Queue { return aqm.NewDropTailBytes(4 * bufBytes) },
		CoreQ:        coreQ,
	})

	baseRTT := ls.BaseRTT(topo.LeafSpineConfig{EdgeDelay: p.LinkDelay, CoreDelay: p.LinkDelay})
	if hwatch {
		shimCfg := core.DefaultConfig(baseRTT)
		// Pace connection admission at the drain rate of the marking
		// threshold: one SYN-ACK per K-bytes drain time, small burst. With
		// ~200 concurrent requests per client this is what spreads the
		// incast over time instead of over the (tiny) buffer.
		shimCfg.SynAckBurst = 2
		shimCfg.RefillEvery = int64(kBytes) * 8 * sim.Second / p.RateBps
		for _, h := range ls.AllHosts() {
			core.Attach(h, shimCfg)
		}
	}

	tcfg := tcp.DefaultConfig()
	minRTO := p.MinRTO
	if hwatch && p.HWatchMinRTO > 0 {
		minRTO = p.HWatchMinRTO
	}
	if minRTO > 0 {
		tcfg.MinRTO = minRTO
		tcfg.InitRTO = minRTO
	}

	run := &Run{}
	clientRack := p.Racks - 1
	clients := ls.Racks[clientRack][:p.WebClients]
	var longRecv []*tcp.Receiver

	// Clients listen; long-flow sinks are spread across all client-rack
	// hosts so edge links don't bottleneck before the core.
	for _, h := range ls.Racks[clientRack] {
		host := h
		host.Listen(svcPort, tcp.NewListener(host, tcfg, nil))
		host.Listen(svcPort+1, tcp.NewListener(host, tcfg, func(r *tcp.Receiver) {
			longRecv = append(longRecv, r)
		}))
	}

	// 42 iperf flows: LongPerRack from each server rack, destinations
	// round-robin over the client rack.
	var longSenders []*tcp.Sender
	li := 0
	for r := 0; r < p.Racks-1; r++ {
		for i := 0; i < p.LongPerRack; i++ {
			src := ls.Racks[r][i%p.HostsPerRack]
			dst := ls.Racks[clientRack][li%p.HostsPerRack]
			li++
			s := tcp.NewSender(src, dst.ID, svcPort+1, tcp.Infinite, tcfg)
			longSenders = append(longSenders, s)
			at := rng.UniformRange(0, 2*baseRTT)
			ls.Net.Eng.At(at, s.Start)
		}
	}

	// Web servers: the first WebServers hosts of each server rack.
	var servers []*netem.Host
	for r := 0; r < p.Racks-1; r++ {
		servers = append(servers, ls.Racks[r][:p.WebServers]...)
	}
	segTime := int64(netem.DefaultMTU) * 8 * sim.Second / p.RateBps
	web := workload.RunWeb(servers, clients, tcfg, workload.WebConfig{
		Port:          svcPort,
		ObjectSize:    p.ObjectSize,
		Parallel:      p.Parallel,
		Epochs:        p.Epochs,
		FirstEpoch:    p.FirstEpoch,
		EpochInterval: p.EpochInterval,
		JitterMean:    segTime,
		Rng:           rng.Fork(),
	}, func(fct, _ int64) {
		run.ShortFCTms.Add(float64(fct) / float64(sim.Millisecond))
	})

	// Telemetry: the spine port toward the client rack is the bottleneck.
	bq := ls.SpineQ[clientRack]
	bport := ls.SpineDown[clientRack]
	var util stats.RateMeter
	eng := ls.Net.Eng
	var sample func()
	sample = func() {
		now := eng.Now()
		run.QueuePkts.Add(now, float64(bq.Len()))
		run.QueueBytes.Add(now, float64(bq.Bytes()))
		util.Observe(now, bport.Stats().TxBytes)
		eng.Schedule(p.SampleEvery, sample)
	}
	eng.Schedule(0, sample)

	var chk *harness.Checker
	if p.Check || InvariantChecksOn() {
		chk = harness.NewChecker(eng, p.SampleEvery)
		chk.WatchPort("spine-down", bport, bq)
		chk.WatchSenders(func() []*tcp.Sender {
			out := append([]*tcp.Sender(nil), longSenders...)
			return append(out, web.Senders...)
		})
		chk.Start()
	}

	start := time.Now()
	eng.RunUntil(p.Duration)
	run.WallNs = time.Since(start).Nanoseconds()
	run.Events = eng.Processed

	for _, r := range longRecv {
		run.LongGoodputBps.Add(float64(r.Delivered()) * 8 / (float64(p.Duration) / float64(sim.Second)))
	}
	run.LongFairness = stats.JainIndex(run.LongGoodputBps.Values())
	run.ShortAll = web.Started
	run.ShortDone = web.Completed
	for _, s := range web.Senders {
		st := s.Stats()
		run.Timeouts += st.Timeouts
		run.ShortRetrans.Add(float64(st.Retransmits))
	}
	for i := range util.Series.T {
		run.Utilization.Add(util.Series.T[i], util.Series.V[i]/float64(p.RateBps))
	}
	if qs, ok := bq.(queueStats); ok {
		st := qs.Stats()
		run.Drops = st.Dropped + st.EarlyDrop
		run.Marks = st.Marked
	}
	harvestChecker(chk, run)
	return run
}
