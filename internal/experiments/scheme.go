// Package experiments reproduces every data figure of the HWatch paper:
// the DCTCP initial-window study (Fig. 1), the congestion-controller
// coexistence study (Fig. 2), the 50- and 100-source scheme comparisons
// (Figs. 8-9), the leaf-spine testbed experiment (Fig. 11), and the
// ablations DESIGN.md calls out. Each experiment declares a
// scenario.Spec — topology kind, registered scheme name(s), workload —
// and the scenario layer builds, runs and instruments it.
package experiments

import (
	"hwatch/internal/scenario"
)

// Scheme names one of the registered end-to-end systems; see
// internal/scenario for the registry.
type Scheme = scenario.Scheme

// The paper's four schemes (Figs. 8-9).
const (
	SchemeDropTail = scenario.DropTail
	SchemeRED      = scenario.RED
	SchemeDCTCP    = scenario.DCTCP
	SchemeHWatch   = scenario.HWatch
)

// AllSchemes lists the Fig. 8/9 comparison set in the paper's order.
func AllSchemes() []Scheme { return scenario.AllSchemes() }
