// Package experiments reproduces every data figure of the HWatch paper:
// the DCTCP initial-window study (Fig. 1), the congestion-controller
// coexistence study (Fig. 2), the 50- and 100-source scheme comparisons
// (Figs. 8-9), the leaf-spine testbed experiment (Fig. 11), and the
// ablations DESIGN.md calls out. Each experiment builds a topology from
// internal/topo, drives it with internal/workload, and reports the same
// rows/series the paper plots.
package experiments

import (
	"fmt"

	"hwatch/internal/aqm"
	"hwatch/internal/core"
	"hwatch/internal/netem"
	"hwatch/internal/sim"
	"hwatch/internal/tcp"
)

// Scheme is one of the end-to-end systems the paper compares.
type Scheme int

const (
	// SchemeDropTail: TCP NewReno over plain DropTail buffers.
	SchemeDropTail Scheme = iota
	// SchemeRED: ECN-capable NewReno over RED marking (Floyd parameters).
	SchemeRED
	// SchemeDCTCP: DCTCP guests over instantaneous-threshold marking.
	SchemeDCTCP
	// SchemeHWatch: unmodified (non-ECN) NewReno guests + HWatch shims on
	// every host, over threshold marking at 20% of the buffer.
	SchemeHWatch
)

var schemeNames = map[Scheme]string{
	SchemeDropTail: "TCP-DropTail",
	SchemeRED:      "TCP-RED",
	SchemeDCTCP:    "DCTCP",
	SchemeHWatch:   "TCP-HWATCH",
}

func (s Scheme) String() string {
	if n, ok := schemeNames[s]; ok {
		return n
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// AllSchemes lists the Fig. 8/9 comparison set in the paper's order.
func AllSchemes() []Scheme {
	return []Scheme{SchemeDropTail, SchemeRED, SchemeHWatch, SchemeDCTCP}
}

// queueStats is satisfied by every aqm discipline.
type queueStats interface{ Stats() aqm.Stats }

// schemeSetup bundles what a Scheme needs injected into a scenario.
type schemeSetup struct {
	// bottleneckQ builds the instrumented shared queue.
	bottleneckQ func() netem.Queue
	// tcpConfig is the guest stack configuration.
	tcpConfig tcp.Config
	// attachShim, when non-nil, installs HWatch on a host.
	attachShim func(h *netem.Host) *core.Shim
}

// buildScheme materializes a Scheme for a fabric with the given buffer,
// marking threshold, mean packet service time and base RTT. rng drives any
// randomized AQM; icw overrides the guests' initial window (0 = default).
// byteMode switches the bottleneck buffers to byte accounting (the paper's
// Fig. 8c/9c plot queue occupancy in bytes; byte accounting also reflects
// shared-buffer switches, where HWatch's 38-byte probes consume almost no
// space).
func buildScheme(s Scheme, bufferPkts, markK int, meanPktTime, baseRTT int64,
	icw int, minRTO int64, byteMode bool, rng *sim.RNG, clock func() int64) schemeSetup {
	return buildSchemeTweaked(s, bufferPkts, markK, meanPktTime, baseRTT, icw, minRTO, byteMode, rng, clock, nil)
}

// buildSchemeTweaked is buildScheme with an optional HWatch-config hook.
func buildSchemeTweaked(s Scheme, bufferPkts, markK int, meanPktTime, baseRTT int64,
	icw int, minRTO int64, byteMode bool, rng *sim.RNG, clock func() int64,
	shimTweak func(*core.Config)) schemeSetup {

	tcfg := tcp.DefaultConfig()
	if icw > 0 {
		tcfg.InitCwnd = icw
	}
	if minRTO > 0 {
		tcfg.MinRTO = minRTO
		tcfg.InitRTO = minRTO
	}
	bufBytes := bufferPkts * netem.DefaultMTU
	kBytes := markK * netem.DefaultMTU

	var setup schemeSetup
	switch s {
	case SchemeDropTail:
		setup.bottleneckQ = func() netem.Queue {
			if byteMode {
				return aqm.NewDropTailBytes(bufBytes)
			}
			return aqm.NewDropTail(bufferPkts)
		}
	case SchemeRED:
		tcfg.ECN = true
		tcfg.ECNResponsive = true
		setup.bottleneckQ = func() netem.Queue {
			var cfg aqm.REDConfig
			if byteMode {
				cfg = aqm.DefaultREDBytes(bufBytes, true, meanPktTime, clock)
			} else {
				cfg = aqm.DefaultRED(bufferPkts, true, meanPktTime, clock)
			}
			return aqm.NewRED(cfg, rng.Fork().Float64)
		}
	case SchemeDCTCP:
		tcfg = tcp.DCTCPConfig()
		if icw > 0 {
			tcfg.InitCwnd = icw
		}
		if minRTO > 0 {
			tcfg.MinRTO = minRTO
			tcfg.InitRTO = minRTO
		}
		setup.bottleneckQ = func() netem.Queue {
			if byteMode {
				return aqm.NewMarkThresholdBytes(bufBytes, kBytes)
			}
			return aqm.NewMarkThreshold(bufferPkts, markK)
		}
	case SchemeHWatch:
		// Guests stay stock (non-ECN) NewReno; the shim does the watching.
		setup.bottleneckQ = func() netem.Queue {
			if byteMode {
				return aqm.NewMarkThresholdBytes(bufBytes, kBytes)
			}
			return aqm.NewMarkThreshold(bufferPkts, markK)
		}
		shimCfg := core.DefaultConfig(baseRTT)
		shimCfg.MSS = tcfg.MSS
		shimCfg.DefaultICW = tcfg.InitCwnd
		if shimTweak != nil {
			shimTweak(&shimCfg)
		}
		setup.attachShim = func(h *netem.Host) *core.Shim { return core.Attach(h, shimCfg) }
	default:
		panic("experiments: unknown scheme")
	}
	setup.tcpConfig = tcfg
	return setup
}
