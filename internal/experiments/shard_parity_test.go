package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"hwatch/internal/scenario"
)

// readGolden loads the checked-in digest map the parity matrix compares
// against: the goldens are recorded single-loop, so matching them at every
// (shards, GOMAXPROCS) combination proves sharding is execution-invisible.
func readGolden(t *testing.T) map[string]string {
	t.Helper()
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden digests (regenerate with -args -update): %v", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("parsing %s: %v", goldenPath, err)
	}
	return want
}

// TestShardDigestParityMatrix is the PDES determinism gate: every golden
// scenario (the 13 figure digests plus the two chaos schedules) must be
// byte-identical to its checked-in digest at shards ∈ {1, 2, 4} ×
// GOMAXPROCS ∈ {1, 8}. Any cross-shard ordering leak — a merge that
// depends on which worker finished first, a rank chain that differs by
// partition — lands here as a digest mismatch naming the run and combo.
func TestShardDigestParityMatrix(t *testing.T) {
	type combo struct{ shards, procs int }
	matrix := []combo{{1, 1}, {1, 8}, {2, 1}, {2, 8}, {4, 1}, {4, 8}}
	if testing.Short() {
		matrix = []combo{{2, 8}, {4, 1}}
	}
	want := readGolden(t)

	defer scenario.SetDefaultShards(0)
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, c := range matrix {
		t.Run(fmt.Sprintf("shards=%d,procs=%d", c.shards, c.procs), func(t *testing.T) {
			scenario.SetDefaultShards(c.shards)
			runtime.GOMAXPROCS(c.procs)
			got := goldenRuns()
			for k, w := range want {
				if g, ok := got[k]; !ok {
					t.Errorf("%s: missing from run", k)
				} else if g != w {
					t.Errorf("%s: digest %s, golden %s", k, g, w)
				}
			}
		})
	}
}
