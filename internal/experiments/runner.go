package experiments

import (
	"context"

	"hwatch/internal/scenario"
)

// The parameter and result types live in internal/scenario; the aliases
// keep the experiments API (and the root facade) stable.

// DumbbellParams is the shared shape of the paper's ns-2 scenarios.
type DumbbellParams = scenario.DumbbellParams

// TestbedParams reproduces the Section VI leaf-spine testbed.
type TestbedParams = scenario.TestbedParams

// Run is the measured outcome of one scenario run.
type Run = scenario.Run

// svcPort is the well-known service port every workload listens on.
const svcPort = scenario.DefaultPort

// PaperDumbbell returns the paper's Fig. 8 parameters.
func PaperDumbbell(longN, shortN int) DumbbellParams { return scenario.PaperDumbbell(longN, shortN) }

// PaperTestbed returns the paper's Section VI parameters, time-compressed.
func PaperTestbed() TestbedParams { return scenario.PaperTestbed() }

// RunDumbbell executes one scheme under the given parameters.
func RunDumbbell(scheme Scheme, p DumbbellParams) *Run { return scenario.RunDumbbell(scheme, p) }

// RunDumbbellContext is RunDumbbell under a context: cancellation
// interrupts the run and returns ctx.Err() instead of panicking.
func RunDumbbellContext(ctx context.Context, scheme Scheme, p DumbbellParams) (*Run, error) {
	return scenario.RunDumbbellContext(ctx, scheme, p)
}

// RunTestbed executes the leaf-spine scenario with or without HWatch.
func RunTestbed(hwatch bool, p TestbedParams) *Run { return scenario.RunTestbed(hwatch, p) }
