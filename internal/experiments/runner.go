package experiments

import (
	"fmt"
	"time"

	"hwatch/internal/aqm"
	"hwatch/internal/core"
	"hwatch/internal/harness"
	"hwatch/internal/netem"
	"hwatch/internal/sim"
	"hwatch/internal/stats"
	"hwatch/internal/tcp"
	"hwatch/internal/topo"
	"hwatch/internal/workload"
)

// DumbbellParams is the shared shape of the paper's ns-2 scenarios
// (Sections II and V): long-lived background flows plus epochs of
// correlated short flows into one shared bottleneck.
type DumbbellParams struct {
	LongSources  int
	ShortSources int

	BottleneckBps int64
	EdgeBps       int64
	LinkDelay     int64 // per hop; base RTT = 4*LinkDelay
	BufferPkts    int
	MarkFrac      float64 // marking threshold as a fraction of the buffer

	ICW      int   // guests' initial window (0 = stack default 10)
	MinRTO   int64 // 0 = 200 ms
	Duration int64
	// ByteBuffers switches the bottleneck to byte accounting (used by the
	// Fig. 8/9/11 scheme comparisons; Fig. 1/2 keep ns-2 packet counting).
	ByteBuffers bool

	ShortSize     int64 // bytes per short flow
	Epochs        int
	FirstEpoch    int64
	EpochInterval int64

	SampleEvery int64 // queue/utilization sampling period
	Seed        int64

	// Check enables the physical-invariant checker for this run (packet
	// conservation at the bottleneck, sequence monotonicity, window
	// floors); violations land in Run.InvariantViolations.
	Check bool

	// ShimTweak, when non-nil, adjusts the HWatch configuration after the
	// defaults are applied (ablation studies).
	ShimTweak func(*core.Config)
}

// PaperDumbbell returns the paper's Fig. 8 parameters: 10 Gb/s links,
// 100 us RTT, 250-packet buffer, marking at 20%, minRTO 200 ms, 6 epochs
// of 10 KB short flows over a 1 s run.
func PaperDumbbell(longN, shortN int) DumbbellParams {
	return DumbbellParams{
		LongSources:   longN,
		ShortSources:  shortN,
		BottleneckBps: 10e9,
		EdgeBps:       10e9,
		LinkDelay:     25 * sim.Microsecond, // 4 hops -> 100 us RTT
		BufferPkts:    250,
		MarkFrac:      0.20,
		Duration:      1 * sim.Second,
		ShortSize:     10_000,
		Epochs:        6,
		FirstEpoch:    100 * sim.Millisecond,
		EpochInterval: 150 * sim.Millisecond,
		SampleEvery:   100 * sim.Microsecond,
		Seed:          42,
	}
}

// Run is the measured outcome of one scenario run, holding exactly the
// series the paper's figures plot.
type Run struct {
	Label string

	// Short-lived flows (Fig. 1a/2a/8a/9a/11a).
	ShortFCTms stats.Sample // per-flow completion time, milliseconds
	// Per-source average and variance of FCT across the incast epochs —
	// the AVG and VAR CDFs of Fig. 2a.
	PerSourceAvgMs stats.Sample
	PerSourceVarMs stats.Sample
	// Per-short-flow retransmitted segments (proxy for Fig. 1b's per-flow
	// drop counts, observed at the sender like ns-2 traces do).
	ShortRetrans stats.Sample

	// Long-lived flows (Fig. 1c/2c/8b/9b/11b): per-flow goodput in bit/s
	// averaged over the run.
	LongGoodputBps stats.Sample
	// LongFairness is Jain's index over the long flows' goodputs
	// (quantifies the Fig. 2 unfairness).
	LongFairness float64

	// Bottleneck telemetry (Fig. 1d/2b/8c/9c and 2d/8d/9d).
	QueuePkts   stats.TimeSeries
	QueueBytes  stats.TimeSeries
	Utilization stats.TimeSeries // fraction of line rate per sample window

	// Totals.
	Drops     int64 // queue drops at the bottleneck (tail + early)
	Marks     int64 // CE marks applied at the bottleneck
	Timeouts  int64 // RTO expiries across short flows
	ShortDone int
	ShortAll  int

	ShimStats *core.Stats // aggregate over all hosts (HWatch runs only)

	// Execution metadata. WallNs and Events describe the machine that ran
	// the scenario, not the scenario itself, so Digest excludes them.
	WallNs int64  // wall-clock time spent inside the event loop
	Events uint64 // simulator events executed

	// InvariantViolations holds the checker's findings when checking was
	// enabled (DumbbellParams.Check / TestbedParams.Check or
	// SetInvariantChecks); empty on a sound run.
	InvariantViolations []string
}

// Digest folds the run's complete observable outcome — every queue and
// utilization sample, every FCT, retransmit and per-source statistic, the
// drop/mark/timeout totals — into one FNV-64 value. Two runs of the same
// spec and seed digest identically at any parallelism; timing metadata is
// deliberately excluded.
func (r *Run) Digest() uint64 {
	d := harness.NewDigest()
	d.String(r.Label)
	d.Floats(r.ShortFCTms.Values())
	d.Floats(r.PerSourceAvgMs.Values())
	d.Floats(r.PerSourceVarMs.Values())
	d.Floats(r.ShortRetrans.Values())
	d.Floats(r.LongGoodputBps.Values())
	d.Float64(r.LongFairness)
	d.Series(r.QueuePkts.T, r.QueuePkts.V)
	d.Series(r.QueueBytes.T, r.QueueBytes.V)
	d.Series(r.Utilization.T, r.Utilization.V)
	d.Int64(r.Drops)
	d.Int64(r.Marks)
	d.Int64(r.Timeouts)
	d.Int(r.ShortDone)
	d.Int(r.ShortAll)
	return d.Sum()
}

// DigestHex renders Digest the way golden files and -digest output print it.
func (r *Run) DigestHex() string { return fmt.Sprintf("%016x", r.Digest()) }

// Summary renders the run's headline numbers in one line.
func (r *Run) Summary() string {
	return fmt.Sprintf("%-12s shortFCT(ms): p50=%.2f p99=%.2f mean=%.2f | longGoodput(Gb/s): mean=%.2f | q(pkts): mean=%.0f | drops=%d marks=%d rto=%d | done=%d/%d",
		r.Label,
		r.ShortFCTms.Quantile(0.5), r.ShortFCTms.Quantile(0.99), r.ShortFCTms.Mean(),
		r.LongGoodputBps.Mean()/1e9,
		r.QueuePkts.Mean(),
		r.Drops, r.Marks, r.Timeouts, r.ShortDone, r.ShortAll)
}

// RunDumbbell executes one scheme under the given parameters.
func RunDumbbell(scheme Scheme, p DumbbellParams) *Run {
	rng := sim.NewRNG(p.Seed)
	meanPkt := int64(netem.DefaultMTU) * 8 * sim.Second / p.BottleneckBps
	baseRTT := 4 * p.LinkDelay

	var eng *sim.Engine
	clock := func() int64 {
		if eng == nil {
			return 0
		}
		return eng.Now()
	}
	markK := int(float64(p.BufferPkts) * p.MarkFrac)
	setup := buildSchemeTweaked(scheme, p.BufferPkts, markK, meanPkt, baseRTT,
		p.ICW, p.MinRTO, p.ByteBuffers, rng, clock, p.ShimTweak)

	d := newDumbbellFabric(setup, p)
	eng = d.Net.Eng

	var shims []*core.Shim
	if setup.attachShim != nil {
		for _, h := range d.Senders {
			shims = append(shims, setup.attachShim(h))
		}
		shims = append(shims, setup.attachShim(d.Receiver))
	}

	run := &Run{Label: scheme.String()}
	cfgFor := func(*netem.Host) tcp.Config { return setup.tcpConfig }
	res := newDumbbellHarness(d, cfgFor, p, rng, run)
	chk := newDumbbellChecker(p, d, res)
	start := time.Now()
	eng.RunUntil(p.Duration)
	run.WallNs = time.Since(start).Nanoseconds()
	run.Events = eng.Processed
	res.finish(p, run)
	harvestChecker(chk, run)

	if len(shims) > 0 {
		agg := core.Stats{}
		for _, s := range shims {
			st := s.Stats()
			agg.ProbesSent += st.ProbesSent
			agg.ProbesSeen += st.ProbesSeen
			agg.ProbesMarked += st.ProbesMarked
			agg.SynsHeld += st.SynsHeld
			agg.SynAcksStamped += st.SynAcksStamped
			agg.SynAcksPaced += st.SynAcksPaced
			agg.RwndRewrites += st.RwndRewrites
			agg.EpochsClosed += st.EpochsClosed
			agg.Dyed += st.Dyed
			agg.CECleared += st.CECleared
			agg.FlowsTracked += st.FlowsTracked
			agg.FlowsExpired += st.FlowsExpired
		}
		run.ShimStats = &agg
	}
	return run
}

// newDumbbellFabric builds the dumbbell topology for a scheme setup.
func newDumbbellFabric(setup schemeSetup, p DumbbellParams) *topo.Dumbbell {
	return topo.NewDumbbell(topo.DumbbellConfig{
		Senders:       p.LongSources + p.ShortSources,
		EdgeRateBps:   p.EdgeBps,
		BottleneckBps: p.BottleneckBps,
		LinkDelay:     p.LinkDelay,
		BottleneckQ:   setup.bottleneckQ,
		EdgeQ:         func() netem.Queue { return aqm.NewDropTail(100000) },
	})
}

// dumbbellHarness wires workloads and instrumentation onto a dumbbell.
type dumbbellHarness struct {
	d        *topo.Dumbbell
	longRecv []*tcp.Receiver
	longTx   []*tcp.Sender
	incast   *workload.Incast
	util     stats.RateMeter
	longAt   int64
}

const svcPort = 80

// newDumbbellHarness wires workloads and instrumentation. cfgFor assigns a
// guest stack configuration per sender host (Fig. 2's MIX scenario gives
// different hosts different congestion controllers); the receiver side of
// each connection mirrors the originating host's configuration, as a real
// handshake would negotiate.
func newDumbbellHarness(d *topo.Dumbbell, cfgFor func(*netem.Host) tcp.Config, p DumbbellParams, rng *sim.RNG, run *Run) *dumbbellHarness {
	h := &dumbbellHarness{d: d}

	// Receivers: every connection terminates at the aggregation host.
	// Long flows come from ephemeral ports of the first LongSources hosts.
	longHosts := map[netem.NodeID]bool{}
	cfgByID := map[netem.NodeID]tcp.Config{}
	for _, s := range d.Senders {
		cfgByID[s.ID] = cfgFor(s)
	}
	for i := 0; i < p.LongSources; i++ {
		longHosts[d.Senders[i].ID] = true
	}
	d.Receiver.Listen(svcPort, func(syn *netem.Packet) netem.Handler {
		cfg, ok := cfgByID[syn.Src]
		if !ok {
			cfg = tcp.DefaultConfig()
		}
		r := tcp.NewReceiver(d.Receiver, syn.Src, syn.DstPort, syn.SrcPort, cfg)
		if longHosts[r.Peer()] {
			h.longRecv = append(h.longRecv, r)
		}
		return r
	})

	// Long-lived background flows start immediately.
	for i := 0; i < p.LongSources; i++ {
		host := d.Senders[i]
		ll := workload.StartLongLived([]*netem.Host{host}, d.Receiver.ID, cfgByID[host.ID],
			workload.LongLivedConfig{Port: svcPort, StartAt: 0, Jitter: p.LinkDelay, Rng: rng.Fork()})
		h.longTx = append(h.longTx, ll.Senders...)
	}

	// Short-lived incast epochs from the remaining hosts. Incast flows of a
	// MIX run inherit each host's flavour via per-host launch below.
	if p.ShortSources > 0 && p.Epochs > 0 {
		segTime := int64(netem.DefaultMTU) * 8 * sim.Second / p.BottleneckBps
		cfgForHost := func(hh *netem.Host) tcp.Config { return cfgByID[hh.ID] }
		h.incast = workload.RunIncastConfigs(d.Senders[p.LongSources:], d.Receiver.ID, cfgForHost,
			workload.IncastConfig{
				Port:          svcPort,
				FlowSize:      p.ShortSize,
				Epochs:        p.Epochs,
				FirstEpoch:    p.FirstEpoch,
				EpochInterval: p.EpochInterval,
				JitterMean:    segTime,
				Rng:           rng.Fork(),
			},
			func(fct, _ int64) {
				run.ShortFCTms.Add(float64(fct) / float64(sim.Millisecond))
			})
	}

	// Telemetry sampling loop.
	eng := d.Net.Eng
	var sample func()
	sample = func() {
		now := eng.Now()
		run.QueuePkts.Add(now, float64(d.Bottleneck.Len()))
		run.QueueBytes.Add(now, float64(d.Bottleneck.Bytes()))
		h.util.Observe(now, d.BottleneckPort.Stats().TxBytes)
		eng.Schedule(p.SampleEvery, sample)
	}
	eng.Schedule(0, sample)
	return h
}

// finish harvests the end-of-run metrics into run.
func (h *dumbbellHarness) finish(p DumbbellParams, run *Run) {
	for _, r := range h.longRecv {
		run.LongGoodputBps.Add(float64(r.Delivered()) * 8 / (float64(p.Duration) / float64(sim.Second)))
	}
	run.LongFairness = stats.JainIndex(run.LongGoodputBps.Values())
	if h.incast != nil {
		run.ShortAll = h.incast.Started
		run.ShortDone = h.incast.Completed
		for _, s := range h.incast.Senders {
			st := s.Stats()
			run.Timeouts += st.Timeouts
			run.ShortRetrans.Add(float64(st.Retransmits))
		}
		for _, fcts := range h.incast.FCTsByHost {
			var perSrc stats.Sample
			for _, f := range fcts {
				perSrc.Add(float64(f) / float64(sim.Millisecond))
			}
			run.PerSourceAvgMs.Add(perSrc.Mean())
			run.PerSourceVarMs.Add(perSrc.Var())
		}
	}
	// Utilization as a fraction of line rate.
	for i := range h.util.Series.T {
		run.Utilization.Add(h.util.Series.T[i], h.util.Series.V[i]/float64(p.BottleneckBps))
	}
	if qs, ok := h.d.Bottleneck.(queueStats); ok {
		st := qs.Stats()
		run.Drops = st.Dropped + st.EarlyDrop
		run.Marks = st.Marked
	}
}

// newDumbbellChecker wires the opt-in invariant checker onto a dumbbell
// run: packet conservation at the bottleneck port and sequence/window
// sanity on every TCP sender the workloads create (the incast's senders
// appear over time, hence the dynamic callback). Returns nil when checking
// is off.
func newDumbbellChecker(p DumbbellParams, d *topo.Dumbbell, h *dumbbellHarness) *harness.Checker {
	if !p.Check && !InvariantChecksOn() {
		return nil
	}
	c := harness.NewChecker(d.Net.Eng, p.SampleEvery)
	c.WatchPort("bottleneck", d.BottleneckPort, d.Bottleneck)
	c.WatchSenders(func() []*tcp.Sender {
		out := append([]*tcp.Sender(nil), h.longTx...)
		if h.incast != nil {
			out = append(out, h.incast.Senders...)
		}
		return out
	})
	c.Start()
	return c
}

// harvestChecker moves the checker's findings into the run.
func harvestChecker(c *harness.Checker, run *Run) {
	if c == nil {
		return
	}
	for _, v := range c.Finish() {
		run.InvariantViolations = append(run.InvariantViolations, v.String())
	}
}
