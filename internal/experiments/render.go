package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"hwatch/internal/stats"
)

// Rendering helpers: every figure's data is emitted the way the paper
// plots it — CDFs as "x,P" series, telemetry as "t,value" series — so the
// curves can be regenerated with any plotting tool.

// WriteCDF writes a sample's empirical CDF as CSV ("value,probability").
func WriteCDF(w io.Writer, s *stats.Sample, maxPoints int) error {
	for _, pt := range s.CDF(maxPoints) {
		if _, err := fmt.Fprintf(w, "%g,%g\n", pt.X, pt.P); err != nil {
			return err
		}
	}
	return nil
}

// WriteSeries writes a time series as CSV ("t_ns,value").
func WriteSeries(w io.Writer, ts *stats.TimeSeries) error {
	_, err := io.WriteString(w, ts.CSV())
	return err
}

// SaveRun writes one run's four figure series into dir, named
// <prefix>_fct_cdf.csv, <prefix>_goodput_cdf.csv, <prefix>_queue.csv,
// <prefix>_util.csv.
func SaveRun(dir, prefix string, r *Run) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	save := func(name string, f func(io.Writer) error) error {
		fh, err := os.Create(filepath.Join(dir, prefix+"_"+name+".csv"))
		if err != nil {
			return err
		}
		defer fh.Close()
		return f(fh)
	}
	if err := save("fct_cdf", func(w io.Writer) error { return WriteCDF(w, &r.ShortFCTms, 2000) }); err != nil {
		return err
	}
	if r.PerSourceAvgMs.N() > 0 {
		if err := save("fct_avg_cdf", func(w io.Writer) error { return WriteCDF(w, &r.PerSourceAvgMs, 2000) }); err != nil {
			return err
		}
		if err := save("fct_var_cdf", func(w io.Writer) error { return WriteCDF(w, &r.PerSourceVarMs, 2000) }); err != nil {
			return err
		}
	}
	if err := save("goodput_cdf", func(w io.Writer) error { return WriteCDF(w, &r.LongGoodputBps, 2000) }); err != nil {
		return err
	}
	if err := save("queue_bytes", func(w io.Writer) error { return WriteSeries(w, &r.QueueBytes) }); err != nil {
		return err
	}
	return save("util", func(w io.Writer) error { return WriteSeries(w, &r.Utilization) })
}

// Summary is the machine-readable digest of one run.
type Summary struct {
	Label        string  `json:"label"`
	FCTP50Ms     float64 `json:"fct_p50_ms"`
	FCTP99Ms     float64 `json:"fct_p99_ms"`
	FCTMeanMs    float64 `json:"fct_mean_ms"`
	GoodputGbps  float64 `json:"goodput_gbps"`
	Fairness     float64 `json:"fairness"`
	QueueMeanPkt float64 `json:"queue_mean_pkts"`
	Drops        int64   `json:"drops"`
	Marks        int64   `json:"marks"`
	Timeouts     int64   `json:"timeouts"`
	ShortDone    int     `json:"short_done"`
	ShortAll     int     `json:"short_all"`
}

// Summarize extracts the digest of a run.
func Summarize(r *Run) Summary {
	return Summary{
		Label:        r.Label,
		FCTP50Ms:     r.ShortFCTms.Quantile(0.5),
		FCTP99Ms:     r.ShortFCTms.Quantile(0.99),
		FCTMeanMs:    r.ShortFCTms.Mean(),
		GoodputGbps:  r.LongGoodputBps.Mean() / 1e9,
		Fairness:     r.LongFairness,
		QueueMeanPkt: r.QueuePkts.Mean(),
		Drops:        r.Drops,
		Marks:        r.Marks,
		Timeouts:     r.Timeouts,
		ShortDone:    r.ShortDone,
		ShortAll:     r.ShortAll,
	}
}

// JSON renders runs as an indented JSON array of summaries.
func JSON(runs []*Run) (string, error) {
	out := make([]Summary, 0, len(runs))
	for _, r := range runs {
		out = append(out, Summarize(r))
	}
	b, err := json.MarshalIndent(out, "", "  ")
	return string(b), err
}

// Table renders a set of runs as an aligned comparison table (the textual
// equivalent of one figure's panel set).
func Table(runs []*Run) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %10s %10s %10s %12s %9s %10s %8s %8s %6s %9s\n",
		"scheme", "fct-p50ms", "fct-p99ms", "fct-mean", "goodput-Gbps", "fairness",
		"queue-mean", "drops", "marks", "rto", "done")
	for _, r := range runs {
		fmt.Fprintf(&b, "%-14s %10.2f %10.2f %10.2f %12.3f %9.3f %10.0f %8d %8d %6d %4d/%d\n",
			r.Label,
			r.ShortFCTms.Quantile(0.5), r.ShortFCTms.Quantile(0.99), r.ShortFCTms.Mean(),
			r.LongGoodputBps.Mean()/1e9, r.LongFairness,
			r.QueuePkts.Mean(),
			r.Drops, r.Marks, r.Timeouts, r.ShortDone, r.ShortAll)
	}
	return b.String()
}
