package experiments

import (
	"context"
	"fmt"

	"hwatch/internal/harness"
	"hwatch/internal/sim"
	"hwatch/internal/stats"
)

// IncastPoint is one (scheme, degree) cell of the incast-cliff sweep: where
// does each system fall off the latency cliff as the number of
// synchronized senders grows? This generalizes the paper's fixed-degree
// scenarios into the full curve.
type IncastPoint struct {
	Scheme   Scheme
	Degree   int
	FCTms    stats.Sample
	Drops    int64
	Timeouts int64
	Done     int
	All      int
}

// String renders the point as a table row.
func (p IncastPoint) String() string {
	return fmt.Sprintf("%-12s degree=%3d fct p50/p99=%8.2f/%9.2fms drops=%5d rto=%4d done=%d/%d",
		p.Scheme, p.Degree, p.FCTms.Quantile(0.5), p.FCTms.Quantile(0.99),
		p.Drops, p.Timeouts, p.Done, p.All)
}

// IncastSweepParams configures the cliff sweep.
type IncastSweepParams struct {
	Degrees     []int
	LongSources int
	FlowSize    int64
	Epochs      int
	Duration    int64
	Seed        int64
}

// DefaultIncastSweep sweeps the degrees the incast example explores.
func DefaultIncastSweep() IncastSweepParams {
	return IncastSweepParams{
		Degrees:     []int{8, 16, 32, 64},
		LongSources: 8,
		FlowSize:    10_000,
		Epochs:      3,
		Duration:    700 * sim.Millisecond,
		Seed:        42,
	}
}

// RunIncastSweep executes the sweep for the given schemes through the
// harness pool (the classic entry point; see RunIncastSweepContext for
// the cancellable form).
func RunIncastSweep(schemes []Scheme, p IncastSweepParams) []IncastPoint {
	out, _ := RunIncastSweepContext(context.Background(), schemes, p)
	return out
}

// RunIncastSweepContext executes the sweep under ctx: cancellation skips
// queued cells, interrupts running ones through the engine poll hook,
// and returns ctx.Err with the rows completed so far. Every (scheme,
// degree) cell derives its seed from the degree alone, so the schemes at
// one degree see identical traffic while distinct degrees draw
// independent randomness.
func RunIncastSweepContext(ctx context.Context, schemes []Scheme, p IncastSweepParams) ([]IncastPoint, error) {
	type cell struct {
		sc  Scheme
		deg int
	}
	var cells []cell
	for _, sc := range schemes {
		for _, deg := range p.Degrees {
			cells = append(cells, cell{sc, deg})
		}
	}
	return harness.Map(ctx, ParallelN(), cells,
		func(cctx context.Context, c cell) (IncastPoint, error) {
			dp := PaperDumbbell(p.LongSources, c.deg)
			dp.ByteBuffers = true
			dp.ShortSize = p.FlowSize
			dp.Epochs = p.Epochs
			dp.Duration = p.Duration
			dp.Seed = harness.SeedFor(fmt.Sprintf("incast/deg=%d", c.deg), p.Seed)
			r, err := RunDumbbellContext(cctx, c.sc, dp)
			if err != nil {
				return IncastPoint{}, err
			}
			return IncastPoint{
				Scheme:   c.sc,
				Degree:   c.deg,
				FCTms:    r.ShortFCTms,
				Drops:    r.Drops,
				Timeouts: r.Timeouts,
				Done:     r.ShortDone,
				All:      r.ShortAll,
			}, nil
		})
}
