package experiments

import (
	"context"
	"fmt"

	"hwatch/internal/core"
	"hwatch/internal/harness"
	"hwatch/internal/scenario"
	"hwatch/internal/sim"
	"hwatch/internal/tcp"
)

// The ablations quantify the design choices DESIGN.md calls out, on the
// Fig. 9 scenario (100 sources, HWatch scheme, byte-accounted buffers) —
// the scale at which the protective mechanisms actually bind; at 50
// sources every variant below survives without drops.

// AblationPoint is one configuration's outcome.
type AblationPoint struct {
	Label      string
	MeanFCTms  float64
	P99FCTms   float64
	Timeouts   int64
	Drops      int64
	Goodput    float64 // mean long-flow goodput, bit/s
	Done, All  int
	SetupDelay int64 // probe span (connection-setup cost), ns
}

func point(label string, r *Run, setupDelay int64) AblationPoint {
	return AblationPoint{
		Label:      label,
		MeanFCTms:  r.ShortFCTms.Mean(),
		P99FCTms:   r.ShortFCTms.Quantile(0.99),
		Timeouts:   r.Timeouts,
		Drops:      r.Drops,
		Goodput:    r.LongGoodputBps.Mean(),
		Done:       r.ShortDone,
		All:        r.ShortAll,
		SetupDelay: setupDelay,
	}
}

// String renders the point as a table row.
func (p AblationPoint) String() string {
	return fmt.Sprintf("%-22s meanFCT=%8.2fms p99=%8.2fms rto=%4d drops=%5d goodput=%5.2fGb/s done=%d/%d",
		p.Label, p.MeanFCTms, p.P99FCTms, p.Timeouts, p.Drops, p.Goodput/1e9, p.Done, p.All)
}

func ablationBase(scale float64) DumbbellParams {
	p := scaled(PaperDumbbell(50, 50), scale)
	p.ByteBuffers = true
	return p
}

// ablationCase is one row of an ablation sweep: a label, an optional
// scenario adjustment, and an optional explicit guest stack (used by the
// R3 agnosticism study instead of the scheme's default).
type ablationCase struct {
	label string
	prep  func(*DumbbellParams)
	guest *tcp.Config
}

// runAblation executes the cases through the harness pool, preserving
// case order in the output (the classic entry point).
func runAblation(scale float64, cases []ablationCase) []AblationPoint {
	out, _ := runAblationContext(context.Background(), scale, cases)
	return out
}

// runAblationContext executes the cases under ctx: cancellation skips
// queued cases, interrupts running ones through the engine poll hook,
// and returns ctx.Err with the rows completed so far.
func runAblationContext(ctx context.Context, scale float64, cases []ablationCase) ([]AblationPoint, error) {
	return harness.Map(ctx, ParallelN(), cases,
		func(cctx context.Context, c ablationCase) (AblationPoint, error) {
			p := ablationBase(scale)
			if c.prep != nil {
				c.prep(&p)
			}
			var r *Run
			var err error
			if c.guest != nil {
				r, err = runHWatchWithGuest(cctx, p, *c.guest)
			} else {
				r, err = RunDumbbellContext(cctx, SchemeHWatch, p)
			}
			if err != nil {
				return AblationPoint{}, err
			}
			return point(c.label, r, 0), nil
		})
}

// AblationProbes sweeps the probe count and compares uniform vs.
// non-uniform spacing (the paper argues for 10 probes, jittered).
func AblationProbes(scale float64) []AblationPoint {
	return runAblation(scale, probesCases())
}

// AblationProbesContext is AblationProbes under a context.
func AblationProbesContext(ctx context.Context, scale float64) ([]AblationPoint, error) {
	return runAblationContext(ctx, scale, probesCases())
}

func probesCases() []ablationCase {
	var cases []ablationCase
	for _, n := range []int{0, 2, 5, 10, 20} {
		n := n
		cases = append(cases, ablationCase{
			label: fmt.Sprintf("probes=%d", n),
			prep: func(p *DumbbellParams) {
				p.ShimTweak = func(c *core.Config) { c.ProbeCount = n }
			},
		})
	}
	// Spacing comparison at the paper's probe count.
	cases = append(cases, ablationCase{
		label: "probes=10 uniform",
		prep: func(p *DumbbellParams) {
			p.ShimTweak = func(c *core.Config) { c.UniformProbeSpacing = true }
		},
	})
	return cases
}

// AblationThreshold sweeps the ECN marking threshold as a fraction of the
// buffer (the paper fixes 20%).
func AblationThreshold(scale float64) []AblationPoint {
	return runAblation(scale, thresholdCases())
}

// AblationThresholdContext is AblationThreshold under a context.
func AblationThresholdContext(ctx context.Context, scale float64) ([]AblationPoint, error) {
	return runAblationContext(ctx, scale, thresholdCases())
}

func thresholdCases() []ablationCase {
	var cases []ablationCase
	for _, frac := range []float64{0.05, 0.10, 0.20, 0.35, 0.50} {
		frac := frac
		cases = append(cases, ablationCase{
			label: fmt.Sprintf("K=%.0f%%", frac*100),
			prep:  func(p *DumbbellParams) { p.MarkFrac = frac },
		})
	}
	return cases
}

// AblationStartWindow compares initial-window policies: the cautious
// default (marked probes earn nothing), the Corollary IV.2.2 credit
// (marked probes earn half), full credit (probing only confirms
// reachability), and probing disabled (stock ICW always).
func AblationStartWindow(scale float64) []AblationPoint {
	return runAblation(scale, startWindowCases())
}

// AblationStartWindowContext is AblationStartWindow under a context.
func AblationStartWindowContext(ctx context.Context, scale float64) ([]AblationPoint, error) {
	return runAblationContext(ctx, scale, startWindowCases())
}

func startWindowCases() []ablationCase {
	cases := []struct {
		label  string
		credit float64
		probes int
	}{
		{"credit=0 (cautious)", 0, 10},
		{"credit=0.5 (merged)", 0.5, 10},
		{"credit=1.0", 1.0, 10},
		{"no probing (ICW)", 0, 0},
	}
	var rows []ablationCase
	for _, c := range cases {
		c := c
		rows = append(rows, ablationCase{
			label: c.label,
			prep: func(p *DumbbellParams) {
				p.ShimTweak = func(cc *core.Config) {
					cc.StartMarkedCredit = c.credit
					cc.ProbeCount = c.probes
				}
			},
		})
	}
	return rows
}

// AblationBatches compares Rule 1 batch policies: merged first+second
// batches (Cor IV.2.2) vs. the strict three-batch split, and the growth
// cadence.
func AblationBatches(scale float64) []AblationPoint {
	return runAblation(scale, batchesCases())
}

// AblationBatchesContext is AblationBatches under a context.
func AblationBatchesContext(ctx context.Context, scale float64) ([]AblationPoint, error) {
	return runAblationContext(ctx, scale, batchesCases())
}

func batchesCases() []ablationCase {
	cases := []struct {
		label string
		merge bool
		every int
	}{
		{"merge batches, grow/4", true, 4},
		{"merge batches, grow/1", true, 1},
		{"3 batches, grow/4", false, 4},
		{"3 batches, grow/1", false, 1},
	}
	var rows []ablationCase
	for _, c := range cases {
		c := c
		rows = append(rows, ablationCase{
			label: c.label,
			prep: func(p *DumbbellParams) {
				p.ShimTweak = func(cc *core.Config) {
					cc.MergeBatch1 = c.merge
					cc.GrowthEvery = c.every
				}
			},
		})
	}
	return rows
}

// AblationPacing toggles the SYN-ACK token bucket.
func AblationPacing(scale float64) []AblationPoint {
	return runAblation(scale, pacingCases())
}

// AblationPacingContext is AblationPacing under a context.
func AblationPacingContext(ctx context.Context, scale float64) ([]AblationPoint, error) {
	return runAblationContext(ctx, scale, pacingCases())
}

func pacingCases() []ablationCase {
	cases := []struct {
		label string
		burst int
		every int64
	}{
		{"pacing on (default)", 4, 0}, // 0 = keep default refill
		{"pacing off", 0, 0},
		{"pacing slow", 2, 200 * sim.Microsecond},
	}
	var rows []ablationCase
	for _, c := range cases {
		c := c
		rows = append(rows, ablationCase{
			label: c.label,
			prep: func(p *DumbbellParams) {
				p.ShimTweak = func(cc *core.Config) {
					cc.SynAckBurst = c.burst
					if c.every > 0 {
						cc.RefillEvery = c.every
					}
				}
			},
		})
	}
	return rows
}

// AblationGuestStacks quantifies requirement R3 (VM autonomy): HWatch must
// deliver its guarantee regardless of what the unmodified guest stack
// happens to be. Each variant runs the 100-source scenario with a
// different guest flavour under the same shims.
func AblationGuestStacks(scale float64) []AblationPoint {
	return runAblation(scale, guestStackCases())
}

// AblationGuestStacksContext is AblationGuestStacks under a context.
func AblationGuestStacksContext(ctx context.Context, scale float64) ([]AblationPoint, error) {
	return runAblationContext(ctx, scale, guestStackCases())
}

func guestStackCases() []ablationCase {
	newReno := tcp.DefaultConfig()
	sack := tcp.DefaultConfig()
	sack.SACK = true
	delack := tcp.DefaultConfig()
	delack.DelayedAck = true
	cubic := tcp.CubicConfig()
	cases := []struct {
		label string
		cfg   tcp.Config
	}{
		{"guest=newreno", newReno},
		{"guest=newreno+sack", sack},
		{"guest=newreno+delack", delack},
		{"guest=cubic", cubic},
	}
	var rows []ablationCase
	for _, c := range cases {
		cfg := c.cfg
		rows = append(rows, ablationCase{label: c.label, guest: &cfg})
	}
	return rows
}

// runHWatchWithGuest is RunDumbbellContext(SchemeHWatch, ...) with an
// explicit guest stack configuration instead of the scheme's default.
// The shims keep the scheme's default guest view, as a hypervisor module
// would: it cannot know what stack the tenant boots.
func runHWatchWithGuest(ctx context.Context, p DumbbellParams, guest tcp.Config) (*Run, error) {
	p.ByteBuffers = true
	spec := &scenario.Spec{
		Kind:     scenario.KindDumbbell,
		Schemes:  []scenario.Share{{Scheme: scenario.HWatch}},
		Label:    "TCP-HWATCH/" + guest.Variant.String(),
		Guest:    &guest,
		Dumbbell: p,
	}
	return spec.RunContext(ctx)
}
