package experiments

import (
	"context"
	"fmt"
)

// FigNames lists the figures FigRuns can execute, in paper order.
func FigNames() []string { return []string{"fig1", "fig2", "fig8", "fig9", "fig11"} }

// FigRuns executes one named figure under ctx and returns its runs in the
// figure's canonical order, each carrying its display label ("DCTCP",
// "MIX+HWatch", "ICWND=5", ...). It is the service-facing entry point:
// the parameters, seeds — and therefore digests — are exactly those of
// the Fig* functions the CLI calls, so a server-path result is
// byte-comparable against the committed goldens.
func FigRuns(ctx context.Context, name string, scale float64) ([]*Run, error) {
	switch name {
	case "fig1":
		res, err := Fig1Context(ctx, scale)
		if err != nil {
			return nil, err
		}
		runs := make([]*Run, 0, len(res.ICWs))
		for _, icw := range res.ICWs {
			runs = append(runs, res.Runs[icw])
		}
		return runs, nil
	case "fig2":
		res, err := Fig2Context(ctx, scale)
		if err != nil {
			return nil, err
		}
		return []*Run{res.DCTCP, res.Mix, res.MixHWatch}, nil
	case "fig8", "fig9":
		var res *Fig8Result
		var err error
		if name == "fig8" {
			res, err = Fig8Context(ctx, scale)
		} else {
			res, err = Fig9Context(ctx, scale)
		}
		if err != nil {
			return nil, err
		}
		runs := make([]*Run, 0, len(res.Order))
		for _, s := range res.Order {
			runs = append(runs, res.Runs[s])
		}
		return runs, nil
	case "fig11":
		res, err := Fig11Context(ctx, scale)
		if err != nil {
			return nil, err
		}
		return []*Run{res.TCP, res.HWatch}, nil
	}
	return nil, fmt.Errorf("unknown figure %q: known figures are %v", name, FigNames())
}
