package experiments

import (
	"context"
	"errors"
	"testing"
)

// TestContextVariantsPropagateCancellation is the regression test for the
// ctxflow sweep: every extension-study and ablation entry point now has a
// *Context variant, and a cancelled context must surface as ctx.Err()
// instead of silently running to completion the way the pre-context entry
// points did.
func TestContextVariantsPropagateCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	schemes := []Scheme{SchemeHWatch}
	checks := map[string]func() error{
		"RunIncastSweepContext": func() error {
			_, err := RunIncastSweepContext(ctx, schemes, DefaultIncastSweep())
			return err
		},
		"RunEmpiricalContext": func() error {
			_, err := RunEmpiricalContext(ctx, schemes, DefaultEmpirical())
			return err
		},
		"RunCoflowContext": func() error {
			_, err := RunCoflowContext(ctx, schemes, DefaultCoflow())
			return err
		},
		"AblationProbesContext": func() error {
			_, err := AblationProbesContext(ctx, 0.1)
			return err
		},
		"AblationThresholdContext": func() error {
			_, err := AblationThresholdContext(ctx, 0.1)
			return err
		},
		"AblationStartWindowContext": func() error {
			_, err := AblationStartWindowContext(ctx, 0.1)
			return err
		},
		"AblationBatchesContext": func() error {
			_, err := AblationBatchesContext(ctx, 0.1)
			return err
		},
		"AblationPacingContext": func() error {
			_, err := AblationPacingContext(ctx, 0.1)
			return err
		},
		"AblationGuestStacksContext": func() error {
			_, err := AblationGuestStacksContext(ctx, 0.1)
			return err
		},
		"Fig8Context": func() error {
			_, err := Fig8Context(ctx, 0.1)
			return err
		},
	}
	for name, run := range checks {
		if err := run(); !errors.Is(err, context.Canceled) {
			t.Errorf("%s under a cancelled context: got err=%v, want context.Canceled", name, err)
		}
	}
}
