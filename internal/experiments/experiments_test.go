package experiments

import (
	"context"
	"strings"
	"testing"

	"hwatch/internal/core"
	"hwatch/internal/sim"
	"hwatch/internal/tcp"
)

// Small-scale shape checks: these assert the *qualitative* results the
// paper reports (who wins, what fails, what stays flat), not absolute
// numbers. Full-scale regeneration lives in cmd/figgen and the root
// benchmarks.

func TestFig8ShapeSmall(t *testing.T) {
	r, err := figScheme(context.Background(), 6, 6, 1) // small source count, full duration
	if err != nil {
		t.Fatal(err)
	}
	hw := r.Runs[SchemeHWatch]
	dt := r.Runs[SchemeDropTail]

	// HWatch: every short flow completes, no RTO, no drops (the headline).
	if hw.Timeouts != 0 {
		t.Errorf("HWatch short flows hit %d RTOs", hw.Timeouts)
	}
	if hw.ShortDone != hw.ShortAll {
		t.Errorf("HWatch completed %d/%d", hw.ShortDone, hw.ShortAll)
	}
	if hw.Drops != 0 {
		t.Errorf("HWatch bottleneck dropped %d packets", hw.Drops)
	}
	// DropTail: bloated queue and strictly worse mean FCT.
	if dt.QueuePkts.Mean() <= hw.QueuePkts.Mean() {
		t.Errorf("DropTail queue (%.0f) not above HWatch (%.0f)",
			dt.QueuePkts.Mean(), hw.QueuePkts.Mean())
	}
	if dt.ShortFCTms.Mean() <= hw.ShortFCTms.Mean() {
		t.Errorf("DropTail FCT mean %.2f not worse than HWatch %.2f",
			dt.ShortFCTms.Mean(), hw.ShortFCTms.Mean())
	}
	// Long-flow goodput comparable across schemes (R2): no scheme may
	// collapse the elephants.
	base := r.Runs[SchemeDCTCP].LongGoodputBps.Mean()
	for _, s := range r.Order {
		g := r.Runs[s].LongGoodputBps.Mean()
		if g < 0.3*base {
			t.Errorf("%v long goodput collapsed: %.2g vs %.2g", s, g, base)
		}
	}
	// The bottleneck stays busy for every scheme.
	for _, s := range r.Order {
		if u := r.Runs[s].Utilization.Mean(); u < 0.5 {
			t.Errorf("%v bottleneck utilization %.2f too low", s, u)
		}
	}
}

func TestFig1ShapeSmall(t *testing.T) {
	// Sweep only the endpoints at reduced scale: small ICW clean, large
	// ICW in the drop/RTO regime.
	// The incast only overflows at the paper's full source count, so keep
	// 25/25 and shorten the run instead.
	mk := func(icw int) *Run {
		p := PaperDumbbell(25, 25)
		p.Duration = 500 * sim.Millisecond
		p.Epochs = 3
		p.ICW = icw
		return RunDumbbell(SchemeDCTCP, p)
	}
	small, large := mk(1), mk(20)
	if small.Timeouts != 0 || small.Drops != 0 {
		t.Errorf("ICW=1 not clean: rto=%d drops=%d", small.Timeouts, small.Drops)
	}
	if large.Drops == 0 {
		t.Error("ICW=20 caused no drops; incast surge missing")
	}
	if large.ShortFCTms.Quantile(0.99) < 10*small.ShortFCTms.Quantile(0.99) {
		t.Errorf("ICW=20 p99 %.2fms not an order above ICW=1 %.2fms",
			large.ShortFCTms.Quantile(0.99), small.ShortFCTms.Quantile(0.99))
	}
	// Long-flow goodput unaffected by ICW (Fig. 1c).
	g1, g20 := small.LongGoodputBps.Mean(), large.LongGoodputBps.Mean()
	if g20 < 0.8*g1 || g20 > 1.2*g1 {
		t.Errorf("long goodput moved with ICW: %.3g vs %.3g", g1, g20)
	}
}

func TestFig2ShapeSmall(t *testing.T) {
	p := PaperDumbbell(12, 12)
	p.Duration = 600 * sim.Millisecond
	p.Epochs = 4
	dctcp := RunDumbbell(SchemeDCTCP, p)
	mix, err := runMix(context.Background(), p, false)
	if err != nil {
		t.Fatal(err)
	}

	// Coexistence destroys queue regulation (Fig. 2b)...
	if mix.QueuePkts.Mean() <= 1.5*dctcp.QueuePkts.Mean() {
		t.Errorf("MIX queue %.0f not far above DCTCP %.0f",
			mix.QueuePkts.Mean(), dctcp.QueuePkts.Mean())
	}
	// ...and blows up FCT variance (Fig. 2a)...
	if mix.ShortFCTms.Var() <= dctcp.ShortFCTms.Var() {
		t.Errorf("MIX FCT variance %.1f not above DCTCP %.1f",
			mix.ShortFCTms.Var(), dctcp.ShortFCTms.Var())
	}
	// Per-source AVG/VAR samples (the actual Fig. 2a curves) exist, one
	// per short source.
	if mix.PerSourceAvgMs.N() != 12 || mix.PerSourceVarMs.N() != 12 {
		t.Errorf("per-source samples: avg=%d var=%d, want 12",
			mix.PerSourceAvgMs.N(), mix.PerSourceVarMs.N())
	}
	if mix.PerSourceVarMs.Mean() <= dctcp.PerSourceVarMs.Mean() {
		t.Errorf("MIX per-source variance %.1f not above DCTCP %.1f",
			mix.PerSourceVarMs.Mean(), dctcp.PerSourceVarMs.Mean())
	}
	// Extension: HWatch shims over the same MIX restore queue regulation
	// (the transport-agnostic claim): the deaf tenant is disciplined via
	// its receive window.
	mixHW, err := runMix(context.Background(), p, true)
	if err != nil {
		t.Fatal(err)
	}
	if mixHW.QueuePkts.Mean() >= mix.QueuePkts.Mean()/2 {
		t.Errorf("HWatch over MIX left queue at %.0f (MIX alone %.0f)",
			mixHW.QueuePkts.Mean(), mix.QueuePkts.Mean())
	}
	if mixHW.Timeouts >= mix.Timeouts {
		t.Errorf("HWatch over MIX: %d RTOs vs MIX %d", mixHW.Timeouts, mix.Timeouts)
	}
	// ...while the link stays fully utilized either way (Fig. 2d).
	if u := mix.Utilization.Mean(); u < 0.7 {
		t.Errorf("MIX utilization %.2f too low", u)
	}
}

func TestFig11ShapeTiny(t *testing.T) {
	p := PaperTestbed()
	p.HostsPerRack = 6
	p.LongPerRack = 2
	p.WebServers = 2
	p.WebClients = 2
	p.Parallel = 4
	p.Epochs = 2
	p.Duration = p.FirstEpoch + int64(p.Epochs)*p.EpochInterval
	tcpRun := RunTestbed(false, p)
	hwRun := RunTestbed(true, p)

	if hwRun.ShortDone != hwRun.ShortAll {
		t.Errorf("HWatch testbed completed %d/%d", hwRun.ShortDone, hwRun.ShortAll)
	}
	if hwRun.ShortFCTms.Mean() >= tcpRun.ShortFCTms.Mean() {
		t.Errorf("HWatch mean FCT %.1fms not better than TCP %.1fms",
			hwRun.ShortFCTms.Mean(), tcpRun.ShortFCTms.Mean())
	}
	if hwRun.LongGoodputBps.Mean() < 0.5*tcpRun.LongGoodputBps.Mean() {
		t.Error("HWatch crushed the long flows (violates R2)")
	}
}

func TestRunDeterminism(t *testing.T) {
	p := PaperDumbbell(4, 4)
	p.Duration = 300 * sim.Millisecond
	p.Epochs = 2
	p.ByteBuffers = true
	a := RunDumbbell(SchemeHWatch, p)
	b := RunDumbbell(SchemeHWatch, p)
	if a.ShortFCTms.N() != b.ShortFCTms.N() {
		t.Fatalf("flow counts differ: %d vs %d", a.ShortFCTms.N(), b.ShortFCTms.N())
	}
	av, bv := a.ShortFCTms.Values(), b.ShortFCTms.Values()
	for i := range av {
		if av[i] != bv[i] {
			t.Fatalf("same seed diverged at %d: %f vs %f", i, av[i], bv[i])
		}
	}
	if a.Drops != b.Drops || a.Marks != b.Marks {
		t.Fatalf("telemetry diverged: %d/%d vs %d/%d", a.Drops, a.Marks, b.Drops, b.Marks)
	}
}

func TestSchemeStrings(t *testing.T) {
	want := map[Scheme]string{
		SchemeDropTail: "TCP-DropTail",
		SchemeRED:      "TCP-RED",
		SchemeDCTCP:    "DCTCP",
		SchemeHWatch:   "TCP-HWATCH",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%v -> %q, want %q", string(s), s.String(), w)
		}
	}
	if len(AllSchemes()) != 4 {
		t.Error("AllSchemes must list the paper's four systems")
	}
}

func TestScaled(t *testing.T) {
	p := PaperDumbbell(25, 25)
	s := scaled(p, 0.2)
	if s.LongSources != 5 || s.ShortSources != 5 {
		t.Fatalf("scaled sources = %d/%d", s.LongSources, s.ShortSources)
	}
	if s.Duration >= p.Duration {
		t.Fatal("scaled duration not reduced")
	}
	if s.Epochs < 1 {
		t.Fatal("scaled epochs vanished")
	}
	// Degenerate scales are identity.
	for _, sc := range []float64{0, 1, 2} {
		got := scaled(p, sc)
		if got.LongSources != p.LongSources || got.Duration != p.Duration || got.Epochs != p.Epochs {
			t.Fatalf("degenerate scale %v not identity", sc)
		}
	}
	// Floors.
	tiny := scaled(p, 0.01)
	if tiny.LongSources < 2 || tiny.ShortSources < 2 {
		t.Fatal("scaled below source floor")
	}
}

func TestRunSummaryFormat(t *testing.T) {
	p := PaperDumbbell(2, 2)
	p.Duration = 50 * sim.Millisecond
	p.Epochs = 1
	p.FirstEpoch = 5 * sim.Millisecond
	r := RunDumbbell(SchemeDropTail, p)
	s := r.Summary()
	for _, want := range []string{"TCP-DropTail", "shortFCT", "longGoodput", "drops="} {
		if !strings.Contains(s, want) {
			t.Errorf("summary %q missing %q", s, want)
		}
	}
}

func TestEmpiricalShapeSmall(t *testing.T) {
	p := DefaultEmpirical()
	p.Sources = 10
	p.Loads = []float64{0.4}
	p.Duration = 150 * sim.Millisecond
	res := RunEmpirical([]Scheme{SchemeHWatch, SchemeDCTCP}, p)
	if len(res) != 2 {
		t.Fatalf("cells = %d", len(res))
	}
	for _, r := range res {
		if r.Started == 0 {
			t.Fatalf("%v: no arrivals", r.Scheme)
		}
		if r.Completed < r.Started*9/10 {
			t.Fatalf("%v: completed %d/%d", r.Scheme, r.Completed, r.Started)
		}
		if r.SmallFCT.N() == 0 {
			t.Fatalf("%v: no small-flow samples", r.Scheme)
		}
		// At 40%% load neither scheme should be in the RTO regime for the
		// median small flow.
		if r.SmallFCT.Quantile(0.5) > 50 {
			t.Fatalf("%v: small p50 %.1fms at 40%% load", r.Scheme, r.SmallFCT.Quantile(0.5))
		}
	}
}

func TestIncastSweepShape(t *testing.T) {
	p := DefaultIncastSweep()
	p.Degrees = []int{8, 48}
	p.Epochs = 2
	p.Duration = 500 * sim.Millisecond
	pts := RunIncastSweep([]Scheme{SchemeHWatch}, p)
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, pt := range pts {
		if pt.Timeouts != 0 || pt.Done != pt.All {
			t.Fatalf("HWatch cliff at degree %d: %+v", pt.Degree, pt)
		}
	}
}

func TestCoflowShapeSmall(t *testing.T) {
	p := DefaultCoflow()
	p.LongSources = 12
	p.ShortSources = 16
	p.Jobs = 3
	p.Duration = 700 * sim.Millisecond
	res := RunCoflow([]Scheme{SchemeDropTail, SchemeHWatch}, p)
	dt, hw := res[0], res[1]
	if hw.JobsDone != hw.JobsAll {
		t.Fatalf("HWatch jobs %d/%d", hw.JobsDone, hw.JobsAll)
	}
	if hw.JCTms.N() == 0 || dt.JCTms.N() == 0 {
		t.Fatal("no JCT samples")
	}
	if hw.JCTms.Quantile(0.99) >= dt.JCTms.Quantile(0.99) {
		t.Fatalf("HWatch JCT p99 %.1fms not below DropTail %.1fms",
			hw.JCTms.Quantile(0.99), dt.JCTms.Quantile(0.99))
	}
	// Straggler ratios are >= 1 by construction.
	if hw.Straggler.Min() < 1 {
		t.Fatalf("straggler ratio below 1: %f", hw.Straggler.Min())
	}
}

func TestPacingIsLoadBearingAt100Sources(t *testing.T) {
	// The headline ablation finding: at 100 sources HWatch without SYN-ACK
	// pacing re-admits the correlated-start overflow.
	base := PaperDumbbell(50, 50)
	base.ByteBuffers = true
	base.Duration = 600 * sim.Millisecond
	base.Epochs = 3

	withPacing := base
	r1 := RunDumbbell(SchemeHWatch, withPacing)

	noPacing := base
	noPacing.ShimTweak = func(c *core.Config) { c.SynAckBurst = 0 }
	r2 := RunDumbbell(SchemeHWatch, noPacing)

	if r1.Drops != 0 || r1.Timeouts != 0 {
		t.Fatalf("paced run not clean: %+v", Summarize(r1))
	}
	if r2.Drops == 0 && r2.Timeouts == 0 {
		t.Fatalf("unpaced run survived; the ablation's premise broke: %+v", Summarize(r2))
	}
}

func TestGuestAgnosticismSmall(t *testing.T) {
	// R3: HWatch's guarantee must not depend on the guest stack flavour.
	base := PaperDumbbell(25, 25)
	base.ByteBuffers = true
	base.Duration = 500 * sim.Millisecond
	base.Epochs = 3
	cubic := tcp.CubicConfig()
	sack := tcp.DefaultConfig()
	sack.SACK = true
	for _, guest := range []tcp.Config{cubic, sack} {
		r, err := runHWatchWithGuest(context.Background(), base, guest)
		if err != nil {
			t.Fatalf("guest %v run failed: %v", guest.Variant, err)
		}
		if r.Drops != 0 || r.Timeouts != 0 || r.ShortDone != r.ShortAll {
			t.Fatalf("guest %v broke the guarantee: %+v", guest.Variant, Summarize(r))
		}
	}
}
