package experiments

import (
	"context"
	"fmt"

	"hwatch/internal/harness"
	"hwatch/internal/netem"
	"hwatch/internal/scenario"
	"hwatch/internal/sim"
	"hwatch/internal/stats"
	"hwatch/internal/tcp"
	"hwatch/internal/workload"
)

// CoflowResult is one scheme's job-completion outcome: the application-
// level metric the paper's introduction motivates (a job of parallel flows
// finishes with its slowest flow; one RTO victim delays the whole job).
type CoflowResult struct {
	Scheme    Scheme
	JCTms     stats.Sample // job completion times
	Straggler stats.Sample // JCT / median constituent FCT, per job
	JobsDone  int
	JobsAll   int
}

// String renders the result as a table row.
func (r CoflowResult) String() string {
	return fmt.Sprintf("%-12s JCT p50/p99=%8.2f/%9.2fms straggler p50=%5.1fx done=%d/%d",
		r.Scheme, r.JCTms.Quantile(0.5), r.JCTms.Quantile(0.99),
		r.Straggler.Quantile(0.5), r.JobsDone, r.JobsAll)
}

// CoflowParams configures the job-completion study.
type CoflowParams struct {
	LongSources  int
	ShortSources int
	Width        int // parallel flows per job
	FlowSize     int64
	Jobs         int
	JobEvery     int64
	Duration     int64
	Seed         int64
}

// DefaultCoflow returns partition-aggregate style jobs on the paper's
// dumbbell: 16-wide jobs of 10 KB flows against 25 background elephants.
func DefaultCoflow() CoflowParams {
	return CoflowParams{
		LongSources:  25,
		ShortSources: 25,
		Width:        16,
		FlowSize:     10_000,
		Jobs:         8,
		JobEvery:     150 * sim.Millisecond,
		Duration:     1500 * sim.Millisecond,
		Seed:         17,
	}
}

// RunCoflow executes the study for the given schemes through the harness
// pool (the classic entry point; see RunCoflowContext for the
// cancellable form).
func RunCoflow(schemes []Scheme, p CoflowParams) []CoflowResult {
	out, _ := RunCoflowContext(context.Background(), schemes, p)
	return out
}

// RunCoflowContext executes the study under ctx: cancellation skips
// queued cells and returns ctx.Err with the rows completed so far; every
// scheme sees the same seed and hence the same job arrivals.
func RunCoflowContext(ctx context.Context, schemes []Scheme, p CoflowParams) ([]CoflowResult, error) {
	return harness.Map(ctx, ParallelN(), schemes,
		func(_ context.Context, sc Scheme) (CoflowResult, error) {
			return runCoflowCell(sc, p), nil
		})
}

func runCoflowCell(sc Scheme, p CoflowParams) CoflowResult {
	rng := sim.NewRNG(p.Seed)
	dp := PaperDumbbell(p.LongSources, p.ShortSources)
	dp.ByteBuffers = true
	dp.Duration = p.Duration
	meanPkt := int64(netem.DefaultMTU) * 8 * sim.Second / dp.BottleneckBps
	baseRTT := 4 * dp.LinkDelay
	markK := int(float64(dp.BufferPkts) * dp.MarkFrac)

	var eng func() int64
	clock := func() int64 {
		if eng == nil {
			return 0
		}
		return eng()
	}
	mat, err := scenario.Materialize(sc, scenario.Env{
		BufferPkts:  dp.BufferPkts,
		MarkPkts:    markK,
		MeanPktTime: meanPkt,
		BaseRTT:     baseRTT,
		ByteBuffers: true,
		Rng:         rng,
		Clock:       clock,
	})
	if err != nil {
		panic("experiments: " + err.Error())
	}
	d := scenario.DumbbellFabric(mat.BottleneckQ, dp)
	eng = d.Net.Eng.Now
	if mat.Attach != nil {
		hosts := make([]*netem.Host, 0, len(d.Senders)+1)
		hosts = append(hosts, d.Senders...)
		mat.Attach(append(hosts, d.Receiver))
	}

	tcfg := mat.TCPConfig
	d.Receiver.Listen(svcPort, tcp.NewListener(d.Receiver, tcfg, nil))

	// Background elephants from the first LongSources hosts.
	workload.StartLongLived(d.Senders[:p.LongSources], d.Receiver.ID, tcfg,
		workload.LongLivedConfig{Port: svcPort, Jitter: dp.LinkDelay, Rng: rng.Fork()})

	res := CoflowResult{Scheme: sc}
	segTime := int64(netem.DefaultMTU) * 8 * sim.Second / dp.BottleneckBps
	co := workload.RunCoflows(d.Senders[p.LongSources:], d.Receiver.ID, tcfg,
		workload.CoflowConfig{
			Port:     svcPort,
			Width:    p.Width,
			FlowSize: p.FlowSize,
			Jobs:     p.Jobs,
			FirstJob: 100 * sim.Millisecond,
			JobEvery: p.JobEvery,
			Jitter:   segTime,
			Rng:      rng.Fork(),
		}, nil)

	d.Net.Eng.RunUntil(p.Duration)
	res.JobsAll = p.Jobs
	res.JobsDone = co.JobsCompleted
	for _, j := range co.JCTs {
		res.JCTms.Add(float64(j) / float64(sim.Millisecond))
	}
	for _, r := range co.StragglerRatio {
		res.Straggler.Add(r)
	}
	return res
}
