package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hwatch/internal/sim"
)

func TestSpecRunEndToEnd(t *testing.T) {
	raw := []byte(`{
		"kind": "dumbbell", "scheme": "hwatch",
		"long_sources": 3, "short_sources": 3,
		"duration_ms": 200, "epochs": 1
	}`)
	s, err := ParseSpec(raw)
	if err != nil {
		t.Fatal(err)
	}
	run, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if run.ShortDone != run.ShortAll || run.ShortAll != 3 {
		t.Fatalf("spec run incomplete: %d/%d", run.ShortDone, run.ShortAll)
	}
}

func TestSpecTestbedRun(t *testing.T) {
	s := &Spec{Kind: "testbed", Scheme: "hwatch", Racks: 2, HostsPerRack: 4, Parallel: 2, Epochs: 1}
	run, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if run.Label != "TCP-HWatch" {
		t.Fatalf("label = %q", run.Label)
	}
	if run.ShortAll == 0 || run.ShortDone != run.ShortAll {
		t.Fatalf("testbed spec run: %d/%d", run.ShortDone, run.ShortAll)
	}
}

func TestWritePlotScripts(t *testing.T) {
	dir := t.TempDir()
	err := WriteFigurePlots(dir, "figX", []string{"A", "B"}, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"figX_fct.plt", "figX_goodput.plt", "figX_queue.plt", "figX_util.plt"} {
		raw, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil {
			t.Fatalf("missing %s: %v", f, err)
		}
		s := string(raw)
		if !strings.Contains(s, "a_") || !strings.Contains(s, `title "B"`) {
			t.Fatalf("%s content wrong: %s", f, s)
		}
		if !strings.Contains(s, "pngcairo") {
			t.Fatalf("%s missing terminal", f)
		}
	}
	// The FCT panel is log-x (the paper plots FCT on a log axis).
	raw, _ := os.ReadFile(filepath.Join(dir, "figX_fct.plt"))
	if !strings.Contains(string(raw), "logscale x") {
		t.Fatal("FCT panel not log-x")
	}
}

func TestJSONSummaries(t *testing.T) {
	p := PaperDumbbell(2, 2)
	p.Duration = 150 * sim.Millisecond
	p.Epochs = 1
	p.FirstEpoch = 10 * sim.Millisecond
	p.ByteBuffers = true
	r := RunDumbbell(SchemeHWatch, p)
	out, err := JSON([]*Run{r})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"label": "TCP-HWATCH"`, `"fct_p50_ms"`, `"short_all": 2`} {
		if !strings.Contains(out, want) {
			t.Fatalf("JSON missing %q:\n%s", want, out)
		}
	}
}
