package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hwatch/internal/sim"
)

func TestParseSpecDefaults(t *testing.T) {
	s, err := ParseSpec([]byte(`{"kind":"dumbbell","scheme":"hwatch"}`))
	if err != nil {
		t.Fatal(err)
	}
	p := s.dumbbellParams()
	if p.LongSources != 25 || p.ShortSources != 25 {
		t.Fatalf("defaults not applied: %+v", p)
	}
	if !p.ByteBuffers {
		t.Fatal("byte buffers should default on")
	}
}

func TestParseSpecOverrides(t *testing.T) {
	raw := []byte(`{
		"kind": "dumbbell", "scheme": "dctcp",
		"long_sources": 4, "short_sources": 6,
		"bottleneck_gbps": 1, "buffer_pkts": 100, "mark_percent": 10,
		"rtt_us": 200, "icw": 5, "duration_ms": 250, "epochs": 2,
		"short_kb": 20, "seed": 99
	}`)
	s, err := ParseSpec(raw)
	if err != nil {
		t.Fatal(err)
	}
	p := s.dumbbellParams()
	if p.LongSources != 4 || p.ShortSources != 6 || p.BufferPkts != 100 {
		t.Fatalf("overrides lost: %+v", p)
	}
	if p.BottleneckBps != 1e9 || p.MarkFrac != 0.10 || p.ICW != 5 {
		t.Fatalf("conversions wrong: %+v", p)
	}
	if p.LinkDelay != 50*sim.Microsecond || p.Duration != 250*sim.Millisecond {
		t.Fatalf("time conversions wrong: %+v", p)
	}
	if p.ShortSize != 20_000 || p.Seed != 99 {
		t.Fatalf("size/seed wrong: %+v", p)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for name, raw := range map[string]string{
		"bad json":   `{kind}`,
		"bad kind":   `{"kind":"ring"}`,
		"bad scheme": `{"kind":"dumbbell","scheme":"bbr"}`,
		"bad mark":   `{"kind":"dumbbell","scheme":"dctcp","mark_percent":150}`,
	} {
		if _, err := ParseSpec([]byte(raw)); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestSpecRunEndToEnd(t *testing.T) {
	raw := []byte(`{
		"kind": "dumbbell", "scheme": "hwatch",
		"long_sources": 3, "short_sources": 3,
		"duration_ms": 200, "epochs": 1
	}`)
	s, err := ParseSpec(raw)
	if err != nil {
		t.Fatal(err)
	}
	run, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if run.ShortDone != run.ShortAll || run.ShortAll != 3 {
		t.Fatalf("spec run incomplete: %d/%d", run.ShortDone, run.ShortAll)
	}
}

func TestLoadSpecFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.json")
	if err := os.WriteFile(path, []byte(`{"kind":"testbed","scheme":"hwatch","racks":2,"hosts_per_rack":4,"parallel":2,"epochs":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := LoadSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	p := s.testbedParams()
	if p.Racks != 2 || p.HostsPerRack != 4 || p.Parallel != 2 || p.Epochs != 1 {
		t.Fatalf("testbed params: %+v", p)
	}
	if _, err := LoadSpec(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestSpecTestbedRun(t *testing.T) {
	s := &Spec{Kind: "testbed", Scheme: "hwatch", Racks: 2, HostsPerRack: 4, Parallel: 2, Epochs: 1}
	run, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if run.Label != "TCP-HWatch" {
		t.Fatalf("label = %q", run.Label)
	}
	if run.ShortAll == 0 || run.ShortDone != run.ShortAll {
		t.Fatalf("testbed spec run: %d/%d", run.ShortDone, run.ShortAll)
	}
}

func TestWritePlotScripts(t *testing.T) {
	dir := t.TempDir()
	err := WriteFigurePlots(dir, "figX", []string{"A", "B"}, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"figX_fct.plt", "figX_goodput.plt", "figX_queue.plt", "figX_util.plt"} {
		raw, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil {
			t.Fatalf("missing %s: %v", f, err)
		}
		s := string(raw)
		if !strings.Contains(s, "a_") || !strings.Contains(s, `title "B"`) {
			t.Fatalf("%s content wrong: %s", f, s)
		}
		if !strings.Contains(s, "pngcairo") {
			t.Fatalf("%s missing terminal", f)
		}
	}
	// The FCT panel is log-x (the paper plots FCT on a log axis).
	raw, _ := os.ReadFile(filepath.Join(dir, "figX_fct.plt"))
	if !strings.Contains(string(raw), "logscale x") {
		t.Fatal("FCT panel not log-x")
	}
}

func TestJSONSummaries(t *testing.T) {
	p := PaperDumbbell(2, 2)
	p.Duration = 150 * sim.Millisecond
	p.Epochs = 1
	p.FirstEpoch = 10 * sim.Millisecond
	p.ByteBuffers = true
	r := RunDumbbell(SchemeHWatch, p)
	out, err := JSON([]*Run{r})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"label": "TCP-HWATCH"`, `"fct_p50_ms"`, `"short_all": 2`} {
		if !strings.Contains(out, want) {
			t.Fatalf("JSON missing %q:\n%s", want, out)
		}
	}
}
