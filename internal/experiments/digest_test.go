package experiments

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hwatch/internal/faults"
	"hwatch/internal/netem"
	"hwatch/internal/scenario"
	"hwatch/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden_digests.json from this run")

const goldenPath = "testdata/golden_digests.json"

// goldenRuns executes the small-scale Fig. 2, Fig. 8 and Fig. 11
// scenarios and returns their digests keyed by figure/label.
func goldenRuns() map[string]string {
	got := map[string]string{}
	f2 := Fig2(0.1)
	got["fig2/dctcp"] = f2.DCTCP.DigestHex()
	got["fig2/mix"] = f2.Mix.DigestHex()
	got["fig2/mix+hwatch"] = f2.MixHWatch.DigestHex()
	f8 := Fig8(0.1)
	for _, s := range f8.Order {
		got["fig8/"+strings.ToLower(s.String())] = f8.Runs[s].DigestHex()
	}
	f11 := Fig11(0.2)
	got["fig11/tcp"] = f11.TCP.DigestHex()
	got["fig11/hwatch"] = f11.HWatch.DigestHex()
	for k, v := range faultGoldenRuns() {
		got[k] = v
	}
	return got
}

// faultGoldenRuns locks two chaos scenarios into the golden set: the
// fault injector is part of the determinism contract, so a schedule's
// effect on the run must be as reproducible as the run itself.
func faultGoldenRuns() map[string]string {
	params := func(seed int64) scenario.DumbbellParams {
		p := PaperDumbbell(5, 5)
		p.Seed = seed
		p.ByteBuffers = true
		p.Duration = 400 * sim.Millisecond
		p.DrainAfter = 600 * sim.Millisecond
		p.Epochs = 2
		return p
	}
	linkflap := faults.Schedule{
		{Kind: faults.LinkDown, At: 120 * sim.Millisecond},
		{Kind: faults.LinkUp, At: 124 * sim.Millisecond},
		{Kind: faults.BurstLoss, At: 250 * sim.Millisecond, Until: 270 * sim.Millisecond,
			GE: netem.GEParams{GoodToBad: 0.05, BadToGood: 0.5, LossBad: 1}},
	}
	blackhole := faults.Schedule{
		{Kind: faults.ECNBlackhole, At: 100 * sim.Millisecond, Until: 260 * sim.Millisecond},
		{Kind: faults.ShimCrash, At: 140 * sim.Millisecond},
		{Kind: faults.ShimRestart, At: 180 * sim.Millisecond},
		{Kind: faults.ProbeBlackout, At: 180 * sim.Millisecond, Until: 240 * sim.Millisecond},
	}
	// The impairment-matrix goldens: one per new chaos class, each armed
	// on the shared bottleneck so every flow crosses the impairment.
	reorder := faults.Schedule{
		{Kind: faults.Reorder, At: 100 * sim.Millisecond, Until: 300 * sim.Millisecond,
			Impair: faults.ImpairParams{Prob: 0.05, Hold: 2 * sim.Millisecond}},
		{Kind: faults.Jitter, At: 320 * sim.Millisecond, Until: 380 * sim.Millisecond,
			Impair: faults.ImpairParams{Dist: "pareto", Delay: 100 * sim.Microsecond, Jitter: 50 * sim.Microsecond}},
	}
	corrupt := faults.Schedule{
		{Kind: faults.Corrupt, At: 100 * sim.Millisecond, Until: 300 * sim.Millisecond,
			Impair: faults.ImpairParams{Prob: 0.02, DropFrac: 0.5}},
	}
	dupjitter := faults.Schedule{
		{Kind: faults.Duplicate, At: 100 * sim.Millisecond, Until: 300 * sim.Millisecond,
			Impair: faults.ImpairParams{Prob: 0.05, Copies: 2, Egress: true}},
		{Kind: faults.Jitter, At: 150 * sim.Millisecond, Until: 250 * sim.Millisecond,
			Impair: faults.ImpairParams{Dist: "uniform", Delay: 200 * sim.Microsecond, Jitter: 200 * sim.Microsecond}},
	}
	// Recurring random-target flap: every occurrence downs two links drawn
	// from the whole fabric for ~3 ms, with jittered starts.
	flap := faults.Schedule{
		{Kind: faults.LinkDown, At: 80 * sim.Millisecond, Pick: 2,
			Recur: &faults.Recurrence{Interval: 60 * sim.Millisecond, Duration: 3 * sim.Millisecond,
				Jitter: 8 * sim.Millisecond, Count: 4}},
	}
	ratelimit := faults.Schedule{
		{Kind: faults.RateLimit, At: 120 * sim.Millisecond, Until: 160 * sim.Millisecond,
			Impair: faults.ImpairParams{RateBps: 2e9, Burst: 32 * 1024}},
		{Kind: faults.Jitter, At: 200 * sim.Millisecond, Until: 280 * sim.Millisecond,
			Impair: faults.ImpairParams{Dist: "normal", Delay: 150 * sim.Microsecond, Jitter: 50 * sim.Microsecond, Egress: true}},
	}
	run := func(sched faults.Schedule, seed int64) string {
		r, err := (&scenario.Spec{
			Kind:     scenario.KindDumbbell,
			Schemes:  []scenario.Share{{Scheme: SchemeHWatch}},
			Dumbbell: params(seed),
			Faults:   sched,
		}).Run()
		if err != nil {
			panic("fault golden: " + err.Error())
		}
		return r.DigestHex()
	}
	return map[string]string{
		"faults/linkflap":  run(linkflap, 7),
		"faults/blackhole": run(blackhole, 9),
		"faults/reorder":   run(reorder, 11),
		"faults/corrupt":   run(corrupt, 13),
		"faults/dupjitter": run(dupjitter, 17),
		"faults/flap":      run(flap, 19),
		"faults/ratelimit": run(ratelimit, 23),
	}
}

// TestGoldenDigests locks the small-scale Fig. 2, Fig. 8 and Fig. 11
// outcomes to checked-in digests: any change to packet timing, AQM
// accounting, TCP dynamics or the shim shows up here first. Regenerate
// deliberately with
//
//	go test ./internal/experiments -run TestGoldenDigests -args -update
func TestGoldenDigests(t *testing.T) {
	got := goldenRuns()

	if *updateGolden {
		blob, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d digests", goldenPath, len(got))
		return
	}

	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden digests (regenerate with -args -update): %v", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("parsing %s: %v", goldenPath, err)
	}
	if len(want) != len(got) {
		t.Errorf("golden file has %d entries, run produced %d", len(want), len(got))
	}
	for k, w := range want {
		if g, ok := got[k]; !ok {
			t.Errorf("%s: missing from run", k)
		} else if g != w {
			t.Errorf("%s: digest %s, golden %s", k, g, w)
		}
	}

	// Same seed twice => identical digests, independent of golden state.
	again := goldenRuns()
	for k, g := range got {
		if again[k] != g {
			t.Errorf("%s: rerun digest %s != first run %s — nondeterminism", k, again[k], g)
		}
	}
}

// TestDigestParallelInvariance proves the determinism contract the harness
// documents: the worker count must never leak into results.
func TestDigestParallelInvariance(t *testing.T) {
	SetParallel(1)
	one := Fig8(0.1)
	SetParallel(8)
	eight := Fig8(0.1)
	SetParallel(0)
	for _, s := range one.Order {
		a, b := one.Runs[s].DigestHex(), eight.Runs[s].DigestHex()
		if a != b {
			t.Errorf("%v: digest %s at -parallel 1, %s at -parallel 8", s, a, b)
		}
	}
}

// TestRunWithInvariantChecks runs every scheme with the checker armed: a
// sound simulator reports nothing, and the runs carry execution metadata.
func TestRunWithInvariantChecks(t *testing.T) {
	for _, sc := range AllSchemes() {
		p := scaled(PaperDumbbell(25, 25), 0.1)
		p.ByteBuffers = true
		p.Check = true
		r := RunDumbbell(sc, p)
		for _, v := range r.InvariantViolations {
			t.Errorf("%v: %s", sc, v)
		}
		if r.Events == 0 {
			t.Errorf("%v: run executed zero events", sc)
		}
	}

	tp := PaperTestbed()
	tp.LongPerRack = 2
	tp.WebServers = 1
	tp.WebClients = 1
	tp.Parallel = 2
	tp.Epochs = 1
	tp.Duration = tp.FirstEpoch + tp.EpochInterval
	tp.Check = true
	for _, hwatch := range []bool{false, true} {
		r := RunTestbed(hwatch, tp)
		for _, v := range r.InvariantViolations {
			t.Errorf("testbed hwatch=%v: %s", hwatch, v)
		}
		if r.Events == 0 {
			t.Errorf("testbed hwatch=%v: zero events", hwatch)
		}
	}
}
