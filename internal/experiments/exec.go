package experiments

import (
	"sync/atomic"

	"hwatch/internal/harness"
	"hwatch/internal/scenario"
)

// Package-level execution knobs for the figure/sweep entry points, which
// keep their historical signatures (Fig8(scale) etc.) and therefore cannot
// take a parallelism argument per call. CLIs set these from -parallel and
// -check before running.
var parallelN atomic.Int64

// SetParallel bounds how many scenario runs execute concurrently across
// every figure, ablation and sweep (n <= 0 restores the default,
// GOMAXPROCS). Parallelism never affects results: each run owns its engine
// and seeded RNG.
func SetParallel(n int) {
	if n < 0 {
		n = 0
	}
	parallelN.Store(int64(n))
}

// ParallelN returns the configured run parallelism.
func ParallelN() int {
	if n := int(parallelN.Load()); n > 0 {
		return n
	}
	return harness.DefaultParallel()
}

// SetInvariantChecks enables the physical-invariant checker (packet
// conservation, sequence monotonicity, window floors) on every subsequent
// run, regardless of the per-run Check flag.
func SetInvariantChecks(on bool) { scenario.SetInvariantChecks(on) }

// InvariantChecksOn reports the package-wide checker default.
func InvariantChecksOn() bool { return scenario.InvariantChecksOn() }
