package experiments

import (
	"context"
	"fmt"

	"hwatch/internal/harness"
	"hwatch/internal/netem"
	"hwatch/internal/scenario"
	"hwatch/internal/sim"
	"hwatch/internal/stats"
	"hwatch/internal/tcp"
	"hwatch/internal/workload"
)

// EmpiricalResult is one (scheme, load) cell of the trace-driven extension
// study: FCT statistics split by flow size, the standard data-center
// evaluation the paper's related work uses.
type EmpiricalResult struct {
	Scheme    Scheme
	Load      float64
	SmallFCT  stats.Sample // flows < 100 KB, ms
	LargeFCT  stats.Sample // flows >= 1 MB, ms
	AllFCT    stats.Sample
	Started   int
	Completed int
	Timeouts  int64
}

// String renders the cell as a table row.
func (r EmpiricalResult) String() string {
	return fmt.Sprintf("%-12s load=%.0f%%  small p50/p99=%7.2f/%8.2fms  large p50=%8.1fms  done=%d/%d rto=%d",
		r.Scheme, r.Load*100,
		r.SmallFCT.Quantile(0.5), r.SmallFCT.Quantile(0.99),
		r.LargeFCT.Quantile(0.5),
		r.Completed, r.Started, r.Timeouts)
}

// EmpiricalParams configures the trace-driven study.
type EmpiricalParams struct {
	Sources       int
	Dist          workload.SizeDist
	Loads         []float64
	Duration      int64
	BottleneckBps int64
	BufferPkts    int
	MarkFrac      float64
	LinkDelay     int64
	Seed          int64
}

// DefaultEmpirical returns a web-search workload on the paper's dumbbell.
func DefaultEmpirical() EmpiricalParams {
	return EmpiricalParams{
		Sources:       20,
		Dist:          workload.WebSearch(),
		Loads:         []float64{0.3, 0.6},
		Duration:      500 * sim.Millisecond,
		BottleneckBps: 10e9,
		BufferPkts:    250,
		MarkFrac:      0.20,
		LinkDelay:     25 * sim.Microsecond,
		Seed:          13,
	}
}

// RunEmpirical executes the study for the given schemes through the
// harness pool (the classic entry point; see RunEmpiricalContext for the
// cancellable form).
func RunEmpirical(schemes []Scheme, p EmpiricalParams) []EmpiricalResult {
	out, _ := RunEmpiricalContext(context.Background(), schemes, p)
	return out
}

// RunEmpiricalContext executes the study under ctx: cancellation skips
// queued cells and returns ctx.Err with the rows completed so far. Cells
// at one load level share a load-derived seed, so the schemes compare
// against identical arrival processes.
func RunEmpiricalContext(ctx context.Context, schemes []Scheme, p EmpiricalParams) ([]EmpiricalResult, error) {
	type cell struct {
		sc   Scheme
		load float64
	}
	var cells []cell
	for _, load := range p.Loads {
		for _, sc := range schemes {
			cells = append(cells, cell{sc, load})
		}
	}
	return harness.Map(ctx, ParallelN(), cells,
		func(_ context.Context, c cell) (EmpiricalResult, error) {
			seed := harness.SeedFor(fmt.Sprintf("empirical/load=%g", c.load), p.Seed)
			return runEmpiricalCell(c.sc, c.load, p, seed), nil
		})
}

func runEmpiricalCell(sc Scheme, load float64, p EmpiricalParams, seed int64) EmpiricalResult {
	rng := sim.NewRNG(seed)
	meanPkt := int64(netem.DefaultMTU) * 8 * sim.Second / p.BottleneckBps
	baseRTT := 4 * p.LinkDelay
	markK := int(float64(p.BufferPkts) * p.MarkFrac)

	var eng func() int64
	clock := func() int64 {
		if eng == nil {
			return 0
		}
		return eng()
	}
	mat, err := scenario.Materialize(sc, scenario.Env{
		BufferPkts:  p.BufferPkts,
		MarkPkts:    markK,
		MeanPktTime: meanPkt,
		BaseRTT:     baseRTT,
		ByteBuffers: true,
		Rng:         rng,
		Clock:       clock,
	})
	if err != nil {
		panic("experiments: " + err.Error())
	}
	dp := DumbbellParams{
		LongSources: p.Sources, ShortSources: 0,
		BottleneckBps: p.BottleneckBps, EdgeBps: p.BottleneckBps,
		LinkDelay: p.LinkDelay, BufferPkts: p.BufferPkts,
	}
	d := scenario.DumbbellFabric(mat.BottleneckQ, dp)
	eng = d.Net.Eng.Now
	if mat.Attach != nil {
		hosts := make([]*netem.Host, 0, len(d.Senders)+1)
		hosts = append(hosts, d.Senders...)
		mat.Attach(append(hosts, d.Receiver))
	}

	res := EmpiricalResult{Scheme: sc, Load: load}
	tcfg := mat.TCPConfig
	d.Receiver.Listen(svcPort, tcp.NewListener(d.Receiver, tcfg, nil))

	po := workload.RunPoisson(d.Senders, d.Receiver.ID, tcfg, workload.PoissonConfig{
		Port:        svcPort,
		ArrivalRate: workload.LoadFor(load, p.BottleneckBps, p.Dist),
		Dist:        p.Dist,
		StartAt:     0,
		StopAt:      p.Duration,
		Rng:         rng.Fork(),
	}, func(fct, size int64) {
		ms := float64(fct) / float64(sim.Millisecond)
		res.AllFCT.Add(ms)
		if size < 100_000 {
			res.SmallFCT.Add(ms)
		}
		if size >= 1_000_000 {
			res.LargeFCT.Add(ms)
		}
	})

	// Run past the arrival window so in-flight flows can finish.
	d.Net.Eng.RunUntil(p.Duration + 2*sim.Second)
	res.Started = po.Started
	res.Completed = po.Completed
	return res
}
