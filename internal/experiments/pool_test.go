package experiments

import (
	"testing"

	"hwatch/internal/netem"
	"hwatch/internal/sim"
)

// TestPoolingDigestParity proves packet pooling is semantically invisible:
// a fig-scale scenario must produce byte-identical run digests with the
// pool on and off. Any use-after-release or incomplete reset shows up as a
// digest mismatch here (and louder still under -tags poolpoison, where CI
// repeats this test with released packets filled with sentinel garbage).
func TestPoolingDigestParity(t *testing.T) {
	if !netem.PacketPooling() {
		t.Fatal("pooling must be the default")
	}
	defer netem.SetPacketPooling(true)

	pooled := Fig8(0.1)
	netem.SetPacketPooling(false)
	plain := Fig8(0.1)
	netem.SetPacketPooling(true)

	for _, s := range pooled.Order {
		a, b := pooled.Runs[s].DigestHex(), plain.Runs[s].DigestHex()
		if a != b {
			t.Errorf("%v: digest %s with pooling, %s without", s, a, b)
		}
	}
}

// TestWheelDigestParity does the same for the scheduler: the calendar-queue
// engine and the plain-heap oracle must drive a full scenario to identical
// digests, end to end — the coarse-grained complement of the sim package's
// per-operation property test.
func TestWheelDigestParity(t *testing.T) {
	if sim.DefaultOptions().NoWheel {
		t.Fatal("timer wheel must be the default")
	}
	defer sim.SetDefaultOptions(sim.Options{})

	wheel := Fig2(0.1)
	sim.SetDefaultOptions(sim.Options{NoWheel: true, NoSlab: true})
	heap := Fig2(0.1)
	sim.SetDefaultOptions(sim.Options{})

	pairs := []struct {
		name string
		a, b string
	}{
		{"dctcp", wheel.DCTCP.DigestHex(), heap.DCTCP.DigestHex()},
		{"mix", wheel.Mix.DigestHex(), heap.Mix.DigestHex()},
		{"mix+hwatch", wheel.MixHWatch.DigestHex(), heap.MixHWatch.DigestHex()},
	}
	for _, p := range pairs {
		if p.a != p.b {
			t.Errorf("fig2/%s: digest %s with wheel, %s with heap oracle", p.name, p.a, p.b)
		}
	}
}

// TestPooledParallelRuns exists for `go test -race ./...`: eight pooled
// runs share one sync.Pool across worker goroutines, so a packet touched
// after release — or released into two runs at once — trips the race
// detector here even when digests happen to collide.
func TestPooledParallelRuns(t *testing.T) {
	if !netem.PacketPooling() {
		t.Fatal("pooling must be the default")
	}
	SetParallel(8)
	defer SetParallel(0)
	r := Fig8(0.1)
	for _, s := range r.Order {
		if r.Runs[s].Events == 0 {
			t.Errorf("%v: zero events", s)
		}
	}
}
