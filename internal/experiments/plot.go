package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// WritePlotScript emits a gnuplot script rendering one figure panel from
// the CSV curves SaveRun wrote: `gnuplot out/<name>.plt` produces
// out/<name>.png. Curves maps legend labels to CSV file names (relative to
// dir).
func WritePlotScript(dir, name, title, xlabel, ylabel string, logX bool, curves []PlotCurve) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# Auto-generated: gnuplot %s.plt\n", name)
	fmt.Fprintf(&b, "set terminal pngcairo size 800,600\n")
	fmt.Fprintf(&b, "set output %q\n", name+".png")
	fmt.Fprintf(&b, "set datafile separator ','\n")
	fmt.Fprintf(&b, "set title %q\n", title)
	fmt.Fprintf(&b, "set xlabel %q\nset ylabel %q\n", xlabel, ylabel)
	fmt.Fprintf(&b, "set key bottom right\nset grid\n")
	if logX {
		fmt.Fprintf(&b, "set logscale x\n")
	}
	b.WriteString("plot ")
	for i, c := range curves {
		if i > 0 {
			b.WriteString(", \\\n     ")
		}
		fmt.Fprintf(&b, "%q using 1:2 with lines lw 2 title %q", c.File, c.Label)
	}
	b.WriteString("\n")
	return os.WriteFile(filepath.Join(dir, name+".plt"), []byte(b.String()), 0o644)
}

// PlotCurve is one line of a plot: a legend label and its CSV file.
type PlotCurve struct {
	Label string
	File  string
}

// WriteFigurePlots emits the standard four-panel scripts for a set of runs
// whose curves were saved with the given prefixes.
func WriteFigurePlots(dir, figName string, labels, prefixes []string) error {
	mk := func(suffix string) []PlotCurve {
		var cs []PlotCurve
		for i := range prefixes {
			cs = append(cs, PlotCurve{Label: labels[i], File: prefixes[i] + "_" + suffix + ".csv"})
		}
		return cs
	}
	if err := WritePlotScript(dir, figName+"_fct", figName+": short-flow FCT CDF",
		"FCT (ms)", "CDF", true, mk("fct_cdf")); err != nil {
		return err
	}
	if err := WritePlotScript(dir, figName+"_goodput", figName+": long-flow goodput CDF",
		"goodput (bit/s)", "CDF", false, mk("goodput_cdf")); err != nil {
		return err
	}
	if err := WritePlotScript(dir, figName+"_queue", figName+": bottleneck queue",
		"time (ns)", "queue (bytes)", false, mk("queue_bytes")); err != nil {
		return err
	}
	return WritePlotScript(dir, figName+"_util", figName+": bottleneck utilization",
		"time (ns)", "fraction of line rate", false, mk("util"))
}
