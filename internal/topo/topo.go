// Package topo assembles the network fabrics the paper evaluates on: the
// ns-2 dumbbell (Sections II and V) and the 4-rack leaf-spine testbed
// (Section VI), plus a k-ary fat tree as an extension. Builders take a
// QueueFactory per port class so experiments control where marking/drops
// happen.
package topo

import (
	"fmt"

	"hwatch/internal/netem"
)

// Dumbbell is N sender hosts and one aggregation host behind a single
// bottleneck link: senders -> ToR switch -> (bottleneck) -> receiver.
// This matches the paper's simulation setup where incast and buffer
// pressure concentrate at one shared output port.
type Dumbbell struct {
	Net      *netem.Network
	Senders  []*netem.Host
	Receiver *netem.Host
	Switch   *netem.Switch

	// Bottleneck is the instrumented queue on the switch port toward the
	// receiver.
	Bottleneck netem.Queue
	// BottleneckPort is the transmitting port, for utilization accounting.
	BottleneckPort *netem.Port
}

// DumbbellConfig parameterizes the dumbbell build.
type DumbbellConfig struct {
	Senders       int
	EdgeRateBps   int64 // sender/receiver NIC speed
	BottleneckBps int64 // shared output port speed
	LinkDelay     int64 // per-hop one-way propagation, ns
	BottleneckQ   func() netem.Queue
	EdgeQ         func() netem.Queue // per edge port (deep by default)
	// Shards partitions the fabric for conservative-lookahead parallel
	// execution: sender blocks on the low shards, then the switch, then
	// the receiver (2 shards: senders | switch+receiver). 0 or 1 keeps
	// the single-loop engine.
	Shards int
}

// NewDumbbell builds the fabric. The base RTT sender->receiver->sender is
// 4*LinkDelay plus serialization.
func NewDumbbell(cfg DumbbellConfig) *Dumbbell {
	if cfg.Senders <= 0 {
		panic("topo: dumbbell needs senders")
	}
	if cfg.BottleneckQ == nil || cfg.EdgeQ == nil {
		panic("topo: dumbbell needs queue factories")
	}
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	// Shard map: sender blocks first (ascending, matching host creation
	// order so same-instant setup ties keep single-loop order), then the
	// switch, then the receiver — the two hub nodes get their own shards
	// as soon as there are at least 3, which is where the pipeline overlap
	// between fan-in, switching and termination comes from.
	senderShards, swShard, rcvShard := 1, 0, 0
	switch {
	case shards == 2:
		swShard, rcvShard = 1, 1
	case shards >= 3:
		senderShards = shards - 2
		swShard = shards - 2
		rcvShard = shards - 1
	}
	n := netem.NewShardedNetwork(shards)
	sw := n.NewSwitchIn(swShard, "tor")
	recv := n.NewHostIn(rcvShard, "agg")

	bq := cfg.BottleneckQ()
	down := netem.NewPort(n.SwitchEngine(sw), bq, cfg.BottleneckBps, cfg.LinkDelay)
	down.Label = "tor.bottleneck"
	down.Connect(recv)
	n.CrossBind(down, recv.Eng)
	sw.Route(recv.ID, sw.AddPort(down))
	up := netem.NewPort(recv.Eng, cfg.EdgeQ(), cfg.EdgeRateBps, cfg.LinkDelay)
	up.Connect(sw)
	n.CrossBind(up, n.SwitchEngine(sw))
	recv.AttachUplink(up)

	d := &Dumbbell{
		Net: n, Receiver: recv, Switch: sw,
		Bottleneck: bq, BottleneckPort: down,
	}
	for i := 0; i < cfg.Senders; i++ {
		h := n.NewHostIn(i*senderShards/cfg.Senders, fmt.Sprintf("s%d", i))
		n.LinkHostSwitch(h, sw, cfg.EdgeQ(), cfg.EdgeQ(), cfg.EdgeRateBps, cfg.LinkDelay)
		d.Senders = append(d.Senders, h)
	}
	n.SealLookahead()
	return d
}

// BaseRTT returns the no-queueing round-trip (propagation only).
func (d *Dumbbell) BaseRTT(cfg DumbbellConfig) int64 { return 4 * cfg.LinkDelay }
