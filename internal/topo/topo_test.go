package topo

import (
	"testing"

	"hwatch/internal/aqm"
	"hwatch/internal/netem"
	"hwatch/internal/sim"
	"hwatch/internal/tcp"
)

const port = 80

func q() netem.Queue { return aqm.NewDropTail(1000) }

func TestDumbbellStructure(t *testing.T) {
	d := NewDumbbell(DumbbellConfig{
		Senders:       5,
		EdgeRateBps:   10e9,
		BottleneckBps: 1e9,
		LinkDelay:     10 * sim.Microsecond,
		BottleneckQ:   q,
		EdgeQ:         q,
	})
	if len(d.Senders) != 5 {
		t.Fatalf("senders = %d", len(d.Senders))
	}
	if d.BottleneckPort.RateBps != 1e9 {
		t.Fatal("bottleneck port rate wrong")
	}
	// One port per sender, plus the bottleneck toward the receiver.
	if d.Switch.NumPorts() != 6 {
		t.Fatalf("switch ports = %d, want 6", d.Switch.NumPorts())
	}
	if rtt := d.BaseRTT(DumbbellConfig{LinkDelay: 10 * sim.Microsecond}); rtt != 40*sim.Microsecond {
		t.Fatalf("BaseRTT = %d", rtt)
	}
}

func TestDumbbellEverySenderReaches(t *testing.T) {
	d := NewDumbbell(DumbbellConfig{
		Senders:       8,
		EdgeRateBps:   1e9,
		BottleneckBps: 1e9,
		LinkDelay:     10 * sim.Microsecond,
		BottleneckQ:   q,
		EdgeQ:         q,
	})
	cfg := tcp.DefaultConfig()
	d.Receiver.Listen(port, tcp.NewListener(d.Receiver, cfg, nil))
	done := 0
	for _, h := range d.Senders {
		s := tcp.NewSender(h, d.Receiver.ID, port, 2000, cfg)
		s.OnComplete = func(int64) { done++ }
		s.Start()
	}
	d.Net.Eng.RunUntil(sim.Second)
	if done != 8 {
		t.Fatalf("flows completed %d/8", done)
	}
}

func TestDumbbellValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"no senders": func() {
			NewDumbbell(DumbbellConfig{Senders: 0, EdgeRateBps: 1, BottleneckBps: 1, BottleneckQ: q, EdgeQ: q})
		},
		"no queues": func() {
			NewDumbbell(DumbbellConfig{Senders: 1, EdgeRateBps: 1, BottleneckBps: 1})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestLeafSpineStructure(t *testing.T) {
	ls := NewLeafSpine(LeafSpineConfig{
		Racks: 4, HostsPerRack: 21,
		EdgeRateBps: 1e9, CoreRateBps: 1e9,
		EdgeDelay: 25 * sim.Microsecond, CoreDelay: 25 * sim.Microsecond,
		EdgeQ: q, CoreQ: q,
	})
	if len(ls.AllHosts()) != 84 {
		t.Fatalf("hosts = %d, want the testbed's 84", len(ls.AllHosts()))
	}
	if len(ls.Leaves) != 4 || len(ls.SpineDown) != 4 || len(ls.LeafUp) != 4 {
		t.Fatal("trunk bookkeeping incomplete")
	}
	// Paper: base RTT ~200 us cross rack.
	if rtt := ls.BaseRTT(LeafSpineConfig{EdgeDelay: 25 * sim.Microsecond, CoreDelay: 25 * sim.Microsecond}); rtt != 200*sim.Microsecond {
		t.Fatalf("BaseRTT = %dus", rtt/sim.Microsecond)
	}
}

func TestFatTreeConnectivity(t *testing.T) {
	ft := NewFatTree(FatTreeConfig{K: 4, RateBps: 1e9, Delay: 5 * sim.Microsecond, Q: q})
	hosts := ft.AllHosts()
	if len(hosts) != 16 { // k^3/4
		t.Fatalf("hosts = %d, want 16", len(hosts))
	}
	if len(ft.Core) != 4 {
		t.Fatalf("cores = %d, want 4", len(ft.Core))
	}
	cfg := tcp.DefaultConfig()
	for _, h := range hosts {
		h.Listen(port, tcp.NewListener(h, cfg, nil))
	}
	// Every ordered pair must be able to complete a small flow: exercises
	// intra-edge, intra-pod and cross-pod routing.
	done := 0
	want := 0
	for i, src := range hosts {
		for j, dst := range hosts {
			if i == j {
				continue
			}
			want++
			s := tcp.NewSender(src, dst.ID, port, 1000, cfg)
			s.OnComplete = func(int64) { done++ }
			s.Start()
		}
	}
	ft.Net.Eng.RunUntil(10 * sim.Second)
	if done != want {
		t.Fatalf("pairs completed %d/%d", done, want)
	}
}

func TestFatTreeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd k accepted")
		}
	}()
	NewFatTree(FatTreeConfig{K: 3, RateBps: 1e9, Q: q})
}

func TestFatTreePathStability(t *testing.T) {
	// Destination-spread routing must not reorder packets of one flow:
	// send a window and check arrival order at the receiver.
	ft := NewFatTree(FatTreeConfig{K: 4, RateBps: 1e9, Delay: 5 * sim.Microsecond, Q: q})
	src := ft.Pods[0][0]
	dst := ft.Pods[3][3]
	var seqs []int64
	rec := &orderRecorder{seqs: &seqs}
	dst.Bind(netem.ConnID{LocalPort: 99, Remote: src.ID, RemotePort: 1234}, rec)
	for i := 0; i < 50; i++ {
		src.Send(&netem.Packet{
			Src: src.ID, Dst: dst.ID, SrcPort: 1234, DstPort: 99,
			Seq: int64(i), Payload: 1000, Wire: 1058, Flags: netem.FlagACK,
		})
	}
	ft.Net.Eng.RunUntil(sim.Second)
	if len(seqs) != 50 {
		t.Fatalf("delivered %d/50", len(seqs))
	}
	for i, s := range seqs {
		if s != int64(i) {
			t.Fatalf("reordered at %d: %v", i, seqs[:i+1])
		}
	}
}

type orderRecorder struct{ seqs *[]int64 }

func (r *orderRecorder) HandlePacket(p *netem.Packet) { *r.seqs = append(*r.seqs, p.Seq) }
