package topo

import (
	"fmt"

	"hwatch/internal/netem"
)

// FatTree builds a k-ary fat tree (Al-Fares et al., cited by the paper as
// the canonical DCN topology): k pods, each with k/2 edge and k/2
// aggregation switches, (k/2)^2 core switches, and (k/2)^2 hosts per pod.
// Uplink routing uses per-flow ECMP across the equal-cost aggregation and
// core layers (netem.Switch.RouteECMP): flows hash onto one path and stick
// to it, so there is spreading without intra-flow reordering, as in real
// fabrics.
type FatTree struct {
	Net  *netem.Network
	K    int
	Pods [][]*netem.Host // [pod][host]
	Edge [][]*netem.Switch
	Aggr [][]*netem.Switch
	Core []*netem.Switch
}

// FatTreeConfig parameterizes the build. All links share one rate/delay
// (the classic rearrangeably non-blocking configuration).
type FatTreeConfig struct {
	K       int // even, >= 2
	RateBps int64
	Delay   int64
	Q       func() netem.Queue
	// Shards partitions the tree: contiguous pod blocks (edge + aggr +
	// hosts share the pod's shard) on the low shards, the core layer on
	// the last. Only aggr<->core links cross shards, so the lookahead is
	// Delay. 0 or 1 keeps the single-loop engine.
	Shards int
}

// NewFatTree constructs the fabric with routing installed.
func NewFatTree(cfg FatTreeConfig) *FatTree {
	if cfg.K < 2 || cfg.K%2 != 0 {
		panic("topo: fat tree needs an even k >= 2")
	}
	if cfg.Q == nil {
		panic("topo: fat tree needs a queue factory")
	}
	k := cfg.K
	half := k / 2
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	podShards, coreShard := 1, 0
	if shards >= 2 {
		podShards = shards - 1
		coreShard = shards - 1
	}
	n := netem.NewShardedNetwork(shards)
	ft := &FatTree{Net: n, K: k}

	// Core switches.
	for i := 0; i < half*half; i++ {
		ft.Core = append(ft.Core, n.NewSwitchIn(coreShard, fmt.Sprintf("core%d", i)))
	}

	type hostLoc struct {
		pod, edge, idx int
	}
	locs := map[netem.NodeID]hostLoc{}

	for p := 0; p < k; p++ {
		podShard := p * podShards / k
		var edges, aggrs []*netem.Switch
		var hosts []*netem.Host
		for e := 0; e < half; e++ {
			edges = append(edges, n.NewSwitchIn(podShard, fmt.Sprintf("e%d.%d", p, e)))
			aggrs = append(aggrs, n.NewSwitchIn(podShard, fmt.Sprintf("a%d.%d", p, e)))
		}
		// Hosts under each edge switch.
		for e := 0; e < half; e++ {
			for h := 0; h < half; h++ {
				host := n.NewHostIn(podShard, fmt.Sprintf("p%de%dh%d", p, e, h))
				n.LinkHostSwitch(host, edges[e], cfg.Q(), cfg.Q(), cfg.RateBps, cfg.Delay)
				hosts = append(hosts, host)
				locs[host.ID] = hostLoc{pod: p, edge: e, idx: h}
			}
		}
		// Edge <-> aggregation full mesh within the pod.
		for e := 0; e < half; e++ {
			for a := 0; a < half; a++ {
				n.LinkSwitches(edges[e], aggrs[a], cfg.Q(), cfg.Q(), cfg.RateBps, cfg.Delay)
			}
		}
		// Aggregation <-> core: aggr a of each pod connects to cores
		// [a*half, (a+1)*half).
		for a := 0; a < half; a++ {
			for c := 0; c < half; c++ {
				n.LinkSwitches(aggrs[a], ft.Core[a*half+c], cfg.Q(), cfg.Q(), cfg.RateBps, cfg.Delay)
			}
		}
		ft.Pods = append(ft.Pods, hosts)
		ft.Edge = append(ft.Edge, edges)
		ft.Aggr = append(ft.Aggr, aggrs)
	}

	// Routing. Port layouts established above:
	//   edge e: ports [0,half) hosts, [half,2*half) aggrs
	//   aggr a: ports [0,half) edges, [half,2*half) cores
	//   core c: port p toward pod p's aggregation layer
	upEdge := make([]int, half) // edge ports toward the aggregation layer
	upAggr := make([]int, half) // aggr ports toward the core layer
	for i := 0; i < half; i++ {
		upEdge[i] = half + i
		upAggr[i] = half + i
	}
	for dst, loc := range locs {
		// Edge switches.
		for p := 0; p < k; p++ {
			for e := 0; e < half; e++ {
				sw := ft.Edge[p][e]
				if p == loc.pod && e == loc.edge {
					sw.Route(dst, loc.idx) // local host port
				} else {
					sw.RouteECMP(dst, upEdge) // any aggr, per-flow hash
				}
			}
		}
		// Aggregation switches.
		for p := 0; p < k; p++ {
			for a := 0; a < half; a++ {
				sw := ft.Aggr[p][a]
				if p == loc.pod {
					sw.Route(dst, loc.edge) // down to the right edge
				} else {
					sw.RouteECMP(dst, upAggr) // any core, per-flow hash
				}
			}
		}
		// Core switches: down to the destination pod.
		for _, sw := range ft.Core {
			sw.Route(dst, loc.pod)
		}
	}
	n.SealLookahead()
	return ft
}

// AllHosts returns every host, pod by pod.
func (ft *FatTree) AllHosts() []*netem.Host {
	var out []*netem.Host
	for _, pod := range ft.Pods {
		out = append(out, pod...)
	}
	return out
}
