package topo

import (
	"fmt"

	"hwatch/internal/netem"
)

// LeafSpine is the paper's testbed fabric: racks of hosts behind leaf (ToR)
// switches, all leaves connected through one spine (the NetFPGA "reference
// switch" in the paper). Cross-rack traffic shares the spine links — the
// experiment's core bottleneck.
type LeafSpine struct {
	Net    *netem.Network
	Racks  [][]*netem.Host
	Leaves []*netem.Switch
	Spine  *netem.Switch

	// SpineDown[i] is the spine port toward leaf i (where cross-rack incast
	// queues); LeafUp[i] is leaf i's port toward the spine.
	SpineDown []*netem.Port
	LeafUp    []*netem.Port
	SpineQ    []netem.Queue // queue of SpineDown[i]
	LeafUpQ   []netem.Queue
}

// LeafSpineConfig parameterizes the build. The paper's testbed: 4 racks,
// 21 servers each (84 total), 1 Gb/s links everywhere, base RTT ~200 us.
type LeafSpineConfig struct {
	Racks        int
	HostsPerRack int
	EdgeRateBps  int64 // host <-> leaf
	CoreRateBps  int64 // leaf <-> spine
	EdgeDelay    int64 // per-hop, ns
	CoreDelay    int64
	EdgeQ        func() netem.Queue
	CoreQ        func() netem.Queue // spine/leaf trunk ports (instrumented)
	// Shards partitions the fabric: contiguous rack blocks (leaf + hosts
	// share the rack's shard) on the low shards, the spine on the last.
	// The lookahead bound is CoreDelay — only trunks cross shards. 0 or 1
	// keeps the single-loop engine.
	Shards int
}

// NewLeafSpine builds the fabric with shortest-path routing installed:
// intra-rack traffic switches at the leaf, cross-rack traffic goes
// leaf -> spine -> leaf.
func NewLeafSpine(cfg LeafSpineConfig) *LeafSpine {
	if cfg.Racks <= 0 || cfg.HostsPerRack <= 0 {
		panic("topo: leafspine needs racks and hosts")
	}
	if cfg.EdgeQ == nil || cfg.CoreQ == nil {
		panic("topo: leafspine needs queue factories")
	}
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	// Rack blocks on shards [0, shards-1), the spine alone on the last —
	// every cross-shard hop is a trunk with CoreDelay of lookahead.
	rackShards, spineShard := 1, 0
	if shards >= 2 {
		rackShards = shards - 1
		spineShard = shards - 1
	}
	n := netem.NewShardedNetwork(shards)
	ls := &LeafSpine{Net: n, Spine: n.NewSwitchIn(spineShard, "spine")}
	spineEng := n.SwitchEngine(ls.Spine)

	for r := 0; r < cfg.Racks; r++ {
		rackShard := r * rackShards / cfg.Racks
		leaf := n.NewSwitchIn(rackShard, fmt.Sprintf("leaf%d", r))
		ls.Leaves = append(ls.Leaves, leaf)

		// Trunk: leaf -> spine and spine -> leaf.
		upQ, downQ := cfg.CoreQ(), cfg.CoreQ()
		// The trunk is always the leaf's port 0; cross-rack leaf routes
		// below rely on this.
		up := netem.NewPort(n.SwitchEngine(leaf), upQ, cfg.CoreRateBps, cfg.CoreDelay)
		up.Label = leaf.Name + ".up"
		up.Connect(ls.Spine)
		n.CrossBind(up, spineEng)
		leaf.AddPort(up)

		down := netem.NewPort(spineEng, downQ, cfg.CoreRateBps, cfg.CoreDelay)
		down.Label = fmt.Sprintf("spine.d%d", r)
		down.Connect(leaf)
		n.CrossBind(down, n.SwitchEngine(leaf))
		ls.Spine.AddPort(down)
		downIdx := ls.Spine.NumPorts() - 1

		ls.LeafUp = append(ls.LeafUp, up)
		ls.SpineDown = append(ls.SpineDown, down)
		ls.LeafUpQ = append(ls.LeafUpQ, upQ)
		ls.SpineQ = append(ls.SpineQ, downQ)

		var rack []*netem.Host
		for h := 0; h < cfg.HostsPerRack; h++ {
			host := n.NewHostIn(rackShard, fmt.Sprintf("r%dh%d", r, h))
			n.LinkHostSwitch(host, leaf, cfg.EdgeQ(), cfg.EdgeQ(), cfg.EdgeRateBps, cfg.EdgeDelay)
			rack = append(rack, host)
			// Spine routes every host of rack r through its down port.
			ls.Spine.Route(host.ID, downIdx)
		}
		ls.Racks = append(ls.Racks, rack)
	}

	// Leaf default routes: hosts in other racks go via the spine.
	for r, leaf := range ls.Leaves {
		for r2, rack := range ls.Racks {
			if r2 == r {
				continue
			}
			for _, host := range rack {
				// The leaf's up port index: find it. It was the first port
				// added to the leaf.
				leaf.Route(host.ID, 0)
			}
		}
	}
	n.SealLookahead()
	return ls
}

// AllHosts returns every host in rack order.
func (ls *LeafSpine) AllHosts() []*netem.Host {
	var out []*netem.Host
	for _, rack := range ls.Racks {
		out = append(out, rack...)
	}
	return out
}

// BaseRTT returns the propagation-only cross-rack round trip.
func (ls *LeafSpine) BaseRTT(cfg LeafSpineConfig) int64 {
	return 2 * (2*cfg.EdgeDelay + 2*cfg.CoreDelay)
}
