package topo

import (
	"fmt"

	"hwatch/internal/netem"
)

// VirtualizedServer models one physical machine running several guest VMs
// behind a local virtual switch (the paper's OvS): each VM is a netem.Host
// on a fast, short virtual link to the vSwitch, which uplinks to the
// physical fabric. Inter-VM traffic turns around inside the vSwitch;
// a single HWatch shim can attach to all VMs (core.Shim.AttachHost),
// mirroring the patched OvS kernel datapath.
type VirtualizedServer struct {
	VMs     []*netem.Host
	VSwitch *netem.Switch
}

// VirtualizedServerConfig parameterizes one server build.
type VirtualizedServerConfig struct {
	VMs         int
	VNICRate    int64 // VM <-> vSwitch rate (memory-speed; default 40 Gb/s)
	VNICDelay   int64 // ~ vhost queue hop (default 5 us)
	UplinkRate  int64 // vSwitch <-> fabric
	UplinkDelay int64
	VQ          func() netem.Queue // virtual port queues
	UplinkQ     func() netem.Queue
}

// AddVirtualizedServer builds the server inside net and cables its uplink
// into fabric (a physical switch), installing routes for every VM.
// Returns the server; the caller attaches shims and workloads.
func AddVirtualizedServer(net *netem.Network, fabric *netem.Switch, name string, cfg VirtualizedServerConfig) *VirtualizedServer {
	if cfg.VMs <= 0 {
		panic("topo: server needs VMs")
	}
	if cfg.VQ == nil || cfg.UplinkQ == nil {
		panic("topo: server needs queue factories")
	}
	if cfg.VNICRate <= 0 {
		cfg.VNICRate = 40e9
	}
	if cfg.VNICDelay <= 0 {
		cfg.VNICDelay = 5_000 // 5 us
	}
	srv := &VirtualizedServer{VSwitch: net.NewSwitch(name + ".ovs")}

	// Uplink pair: vSwitch port 0 toward the fabric (cross-server default
	// route), and a fabric port back toward the vSwitch.
	up := netem.NewPort(net.Eng, cfg.UplinkQ(), cfg.UplinkRate, cfg.UplinkDelay)
	up.Label = name + ".up"
	up.Connect(fabric)
	srv.VSwitch.AddPort(up)

	down := netem.NewPort(net.Eng, cfg.UplinkQ(), cfg.UplinkRate, cfg.UplinkDelay)
	down.Label = name + ".down"
	down.Connect(srv.VSwitch)
	downIdx := fabric.AddPort(down)

	for i := 0; i < cfg.VMs; i++ {
		vm := net.NewHost(fmt.Sprintf("%s.vm%d", name, i))
		net.LinkHostSwitch(vm, srv.VSwitch, cfg.VQ(), cfg.VQ(), cfg.VNICRate, cfg.VNICDelay)
		srv.VMs = append(srv.VMs, vm)
		fabric.Route(vm.ID, downIdx)
	}
	return srv
}

// RouteRemote installs the vSwitch default route for a remote host: out
// the uplink (port 0).
func (srv *VirtualizedServer) RouteRemote(remote netem.NodeID) {
	srv.VSwitch.Route(remote, 0)
}
