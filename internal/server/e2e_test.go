package server_test

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"hwatch/internal/scenario"
	"hwatch/internal/server"
	"hwatch/internal/server/client"
)

// goldenPath is the digest file the experiments suite locks figure
// outcomes to. The e2e suite reuses it so the server path is proven
// byte-identical to the CLI path against the same committed truth.
const goldenPath = "../experiments/testdata/golden_digests.json"

func loadGoldens(t *testing.T) map[string]string {
	t.Helper()
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden digests: %v", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("parsing %s: %v", goldenPath, err)
	}
	return want
}

func newTestServer(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server, *client.Client) {
	t.Helper()
	if cfg.Version == "" {
		cfg.Version = "e2e-test"
	}
	if cfg.EventInterval == 0 {
		cfg.EventInterval = 5 * time.Millisecond
	}
	srv := server.New(context.Background(), cfg)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	return srv, hs, client.New(hs.URL, hs.Client())
}

// quickSpec is a dumbbell small enough for tests yet real enough to
// exercise the full scenario pipeline.
const quickSpec = `{
	"kind": "dumbbell", "scheme": "hwatch",
	"long_sources": 5, "short_sources": 5,
	"seed": 42, "duration_ms": 300, "drain_after_ms": 200, "epochs": 2
}`

// endlessSpec runs ten simulated minutes — far longer than any test
// waits — so cancellation paths have a live job to kill.
const endlessSpec = `{
	"kind": "dumbbell", "scheme": "hwatch",
	"long_sources": 5, "short_sources": 5,
	"seed": 43, "duration_ms": 600000, "epochs": 2
}`

// TestE2EFig2GoldenParityAndCacheHit is the tentpole proof: a fig2 job
// submitted over HTTP produces exactly the committed golden digests (the
// CLI path's truth), and resubmitting it is a cache hit that runs zero
// simulations.
func TestE2EFig2GoldenParityAndCacheHit(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full fig2 at scale 0.1")
	}
	srv, _, cl := newTestServer(t, server.Config{Parallel: 2})
	ctx := context.Background()

	res, err := cl.Submit(ctx, &server.JobRequest{Kind: "fig", Name: "fig2", Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Error("first submission claims to be cached")
	}
	if res.Version != "e2e-test" {
		t.Errorf("result version %q, want e2e-test", res.Version)
	}

	want := loadGoldens(t)
	wantByLabel := map[string]string{
		"DCTCP":      want["fig2/dctcp"],
		"MIX":        want["fig2/mix"],
		"MIX+HWatch": want["fig2/mix+hwatch"],
	}
	if len(res.Runs) != len(wantByLabel) {
		t.Fatalf("fig2 returned %d runs, want %d", len(res.Runs), len(wantByLabel))
	}
	for _, r := range res.Runs {
		golden, ok := wantByLabel[r.Label]
		if !ok {
			t.Errorf("unexpected run label %q", r.Label)
			continue
		}
		if r.Digest != golden {
			t.Errorf("%s: server-path digest %s, golden %s", r.Label, r.Digest, golden)
		}
	}
	// Reconstructing the runs re-verifies every digest from the raw
	// series, so the wire format provably carried the full result.
	if _, err := client.Runs(res); err != nil {
		t.Fatalf("reconstructing runs: %v", err)
	}

	executed := srv.Stats().Executed
	again, err := cl.Submit(ctx, &server.JobRequest{Kind: "fig", Name: "fig2", Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Error("second identical submission was not served from cache")
	}
	if again.Digest != res.Digest {
		t.Errorf("cache returned digest %s, first run had %s", again.Digest, res.Digest)
	}
	if got := srv.Stats().Executed; got != executed {
		t.Errorf("cache hit executed %d new jobs, want 0", got-executed)
	}
	if hits := srv.Stats().CacheHits; hits == 0 {
		t.Error("cache hit counter not incremented")
	}
}

// TestE2ESpecJobMatchesCLIPath submits a raw spec and checks both halves
// of the content address: the job id is the spec's canonical digest (the
// value hwatchsim -spec-digest prints) and the run digest equals a local
// CLI-style execution of the same bytes.
func TestE2ESpecJobMatchesCLIPath(t *testing.T) {
	_, hs, cl := newTestServer(t, server.Config{Parallel: 2})
	ctx := context.Background()

	fs, err := scenario.ParseSpec([]byte(quickSpec))
	if err != nil {
		t.Fatal(err)
	}
	wantID, err := fs.CanonicalDigest()
	if err != nil {
		t.Fatal(err)
	}
	gotID, err := cl.Digest(ctx, &server.JobRequest{Kind: "spec", Spec: []byte(quickSpec)})
	if err != nil {
		t.Fatal(err)
	}
	if gotID != wantID {
		t.Errorf("server digest %s, local canonical digest %s", gotID, wantID)
	}

	res, err := cl.SubmitSpec(ctx, []byte(quickSpec))
	if err != nil {
		t.Fatal(err)
	}
	if res.Digest != wantID {
		t.Errorf("job id %s, want canonical digest %s", res.Digest, wantID)
	}
	if len(res.Runs) != 1 {
		t.Fatalf("spec job returned %d runs, want 1", len(res.Runs))
	}

	local, err := fs.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs[0].Digest != local.DigestHex() {
		t.Errorf("server-path run digest %s, CLI-path %s", res.Runs[0].Digest, local.DigestHex())
	}

	// The bare-FileSpec shorthand (the spec body posted with no envelope)
	// must land on the same content address.
	shorthandID := postDigest(t, hs, quickSpec)
	if shorthandID != wantID {
		t.Errorf("bare-spec shorthand digest %s, want %s", shorthandID, wantID)
	}

	// And the result stays addressable by digest.
	cached, ok, err := cl.Result(ctx, wantID)
	if err != nil || !ok {
		t.Fatalf("result lookup by digest: ok=%v err=%v", ok, err)
	}
	if !cached.Cached {
		t.Error("result endpoint did not mark the response cached")
	}
}

// postDigest posts a raw body to the digest endpoint and returns the
// content address the server assigns it.
func postDigest(t *testing.T, hs *httptest.Server, body string) string {
	t.Helper()
	resp, err := hs.Client().Post(hs.URL+"/api/v1/digest", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("digest endpoint status %d", resp.StatusCode)
	}
	var out struct {
		Digest string `json:"digest"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Digest
}

// TestE2EEventStream watches a job's NDJSON progress feed: every line
// must parse, states must be coherent, and the final line must be
// terminal.
func TestE2EEventStream(t *testing.T) {
	_, hs, cl := newTestServer(t, server.Config{Parallel: 1})
	ctx := context.Background()

	id, err := cl.Digest(ctx, &server.JobRequest{Kind: "spec", Spec: []byte(quickSpec)})
	if err != nil {
		t.Fatal(err)
	}
	// Fire-and-forget submit, then stream.
	resp, err := hs.Client().Post(hs.URL+"/api/v1/jobs", "application/json", strings.NewReader(quickSpec))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", resp.StatusCode)
	}

	stream, err := hs.Client().Get(hs.URL + "/api/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("event stream content type %q", ct)
	}
	var last server.JobStatus
	lines := 0
	sc := bufio.NewScanner(stream.Body)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		if last.ID != id {
			t.Errorf("event for job %q, want %q", last.ID, id)
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Fatal("event stream produced no lines")
	}
	if last.State != "done" {
		t.Errorf("final event state %q, want done (error %q)", last.State, last.Error)
	}
	if last.Events == 0 {
		t.Error("final event reports zero processed events; progress gauge never fired")
	}
}

// TestE2ECancelViaDelete kills a long job with DELETE and confirms the
// stream reports the cancellation.
func TestE2ECancelViaDelete(t *testing.T) {
	_, hs, cl := newTestServer(t, server.Config{Parallel: 1})
	ctx := context.Background()

	id, err := cl.Digest(ctx, &server.JobRequest{Kind: "spec", Spec: []byte(endlessSpec)})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := hs.Client().Post(hs.URL+"/api/v1/jobs", "application/json", strings.NewReader(endlessSpec))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", resp.StatusCode)
	}

	// Open the event stream while the job is still alive, then cancel;
	// the stream must close itself with a terminal "cancelled" line.
	stream, err := hs.Client().Get(hs.URL + "/api/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if stream.StatusCode != http.StatusOK {
		t.Fatalf("event stream status %d, want 200", stream.StatusCode)
	}

	del, err := http.NewRequest(http.MethodDelete, hs.URL+"/api/v1/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := hs.Client().Do(del)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d, want 200", dresp.StatusCode)
	}

	var last server.JobStatus
	sc := bufio.NewScanner(stream.Body)
	saw := false
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatal(err)
		}
		saw = true
	}
	if !saw {
		t.Fatal("no events after cancel")
	}
	if last.State != "cancelled" {
		t.Errorf("final state %q, want cancelled", last.State)
	}

	// A cancelled job leaves no cache entry: the digest must 404.
	if _, ok, err := cl.Result(ctx, id); err != nil {
		t.Fatal(err)
	} else if ok {
		t.Error("cancelled job left a cached result")
	}
}

// TestE2EErrorPaths covers the non-happy status codes.
func TestE2EErrorPaths(t *testing.T) {
	_, hs, _ := newTestServer(t, server.Config{Parallel: 1})
	post := func(body string) *http.Response {
		t.Helper()
		resp, err := hs.Client().Post(hs.URL+"/api/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	if resp := post("{not json"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, want 400", resp.StatusCode)
	}
	if resp := post(`{"kind":"fig","name":"fig99"}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown figure: status %d, want 400", resp.StatusCode)
	}
	if resp := post(`{"kind":"dumbbell","scheme":"warp-drive"}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown scheme: status %d, want 400", resp.StatusCode)
	}
	if resp := post(`{"kind":"study","name":"empirical","schemes":["warp-drive"]}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad study scheme: status %d, want 400", resp.StatusCode)
	}
	for _, path := range []string{
		"/api/v1/jobs/deadbeef", "/api/v1/results/deadbeef", "/api/v1/jobs/deadbeef/events",
	} {
		resp, err := hs.Client().Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
	}
	for _, path := range []string{"/api/v1/healthz", "/api/v1/version", "/api/v1/stats"} {
		resp, err := hs.Client().Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d, want 200", path, resp.StatusCode)
		}
	}
}

// TestE2ERungJob runs a ladder rung through the service, pinning the
// rung job kind end to end.
func TestE2ERungJob(t *testing.T) {
	_, _, cl := newTestServer(t, server.Config{Parallel: 1})
	res, err := cl.Submit(context.Background(), &server.JobRequest{Kind: "rung", Name: "ladder/1x", Scale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 1 || res.Runs[0].Digest == "" {
		t.Fatalf("rung job returned %d runs", len(res.Runs))
	}
	if _, err := client.Runs(res); err != nil {
		t.Fatal(err)
	}
}
