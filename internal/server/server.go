package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hwatch/internal/harness"
	"hwatch/internal/scenario"
)

// Config sizes a Server. Zero values pick sane defaults.
type Config struct {
	// Parallel bounds concurrently running simulations (<= 0 means
	// harness.DefaultParallel, i.e. GOMAXPROCS).
	Parallel int
	// QueueDepth bounds jobs admitted beyond the running set. A submission
	// arriving with Parallel+QueueDepth jobs unfinished is rejected with
	// 429 and a Retry-After estimate (<= 0 means 2*Parallel).
	QueueDepth int
	// CacheSize bounds the result cache entry count (<= 0 means 64).
	CacheSize int
	// Version overrides the code-version half of the cache key. Empty
	// means the VCS revision baked into the binary, or "dev".
	Version string
	// EventInterval is the progress-stream cadence (<= 0 means 250ms).
	EventInterval time.Duration
}

// Server queues scenario jobs through a harness pool and serves results
// from a content-addressed cache. Create with New, mount Handler, Close
// when done.
type Server struct {
	cfg     Config
	version string

	ctx    context.Context
	cancel context.CancelFunc
	pool   *harness.Pool
	cache  *resultCache

	mu         sync.Mutex
	jobs       map[string]*job // queued or running, keyed by digest
	unfinished int

	executed atomic.Int64
	hits     atomic.Int64
	deduped  atomic.Int64
	rejected atomic.Int64
}

// JobStatus is the wire form of a job's current position; it is also the
// NDJSON event the progress stream emits. SimNowNs and Events are gauges
// fed out-of-band by the engine poll hook — under sharded execution they
// report the furthest shard, not a global total.
type JobStatus struct {
	ID       string `json:"id"`
	Kind     string `json:"kind"`
	Name     string `json:"name,omitempty"`
	State    string `json:"state"`
	Error    string `json:"error,omitempty"`
	SimNowNs int64  `json:"sim_now_ns"`
	Events   uint64 `json:"events"`
}

// Stats is the wire form of GET /api/v1/stats.
type Stats struct {
	Version      string `json:"version"`
	Active       int    `json:"active"`
	Executed     int64  `json:"executed"`
	CacheHits    int64  `json:"cache_hits"`
	Deduped      int64  `json:"deduped"`
	Rejected     int64  `json:"rejected"`
	CacheEntries int    `json:"cache_entries"`
	Parallel     int    `json:"parallel"`
	QueueDepth   int    `json:"queue_depth"`
}

// New builds a Server whose jobs run under parent: cancelling parent (or
// calling Close) cancels every outstanding job. Close releases it.
func New(parent context.Context, cfg Config) *Server {
	if cfg.Parallel <= 0 {
		cfg.Parallel = harness.DefaultParallel()
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 2 * cfg.Parallel
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 64
	}
	if cfg.EventInterval <= 0 {
		cfg.EventInterval = 250 * time.Millisecond
	}
	version := cfg.Version
	if version == "" {
		version = buildVersion()
	}
	ctx, cancel := context.WithCancel(parent)
	return &Server{
		cfg:     cfg,
		version: version,
		ctx:     ctx,
		cancel:  cancel,
		pool:    harness.NewPool(ctx, cfg.Parallel),
		cache:   newResultCache(cfg.CacheSize),
		jobs:    make(map[string]*job),
	}
}

// Version reports the code-version half of the cache key.
func (s *Server) Version() string { return s.version }

// Close cancels every outstanding job and waits for the pool to drain.
func (s *Server) Close() {
	s.cancel()
	s.pool.Wait()
}

// buildVersion derives the code version from the binary's embedded VCS
// metadata; test binaries and plain `go run` fall back to "dev".
func buildVersion() string {
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, kv := range info.Settings {
			if kv.Key == "vcs.revision" && kv.Value != "" {
				return kv.Value
			}
		}
	}
	return "dev"
}

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleJobStatus)
	mux.HandleFunc("DELETE /api/v1/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET /api/v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("GET /api/v1/results/{digest}", s.handleResult)
	mux.HandleFunc("POST /api/v1/digest", s.handleDigest)
	mux.HandleFunc("GET /api/v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /api/v1/version", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"version": s.version})
	})
	mux.HandleFunc("GET /api/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	return mux
}

// Stats snapshots the server's counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	active := len(s.jobs)
	s.mu.Unlock()
	return Stats{
		Version:      s.version,
		Active:       active,
		Executed:     s.executed.Load(),
		CacheHits:    s.hits.Load(),
		Deduped:      s.deduped.Load(),
		Rejected:     s.rejected.Load(),
		CacheEntries: s.cache.len(),
		Parallel:     s.cfg.Parallel,
		QueueDepth:   s.cfg.QueueDepth,
	}
}

func (s *Server) cacheKey(digest string) string { return digest + "@" + s.version }

// decodeRequest reads a submission body. A bare scenario.FileSpec (its
// "kind" is a topology, not a job kind) is accepted as shorthand for
// {"kind":"spec","spec":<body>}.
func decodeRequest(r io.Reader) (*JobRequest, error) {
	raw, err := io.ReadAll(io.LimitReader(r, 1<<20))
	if err != nil {
		return nil, fmt.Errorf("reading request body: %w", err)
	}
	var req JobRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		return nil, fmt.Errorf("parsing request body: %w", err)
	}
	if req.Kind == "dumbbell" || req.Kind == "testbed" {
		return &JobRequest{Kind: "spec", Spec: raw}, nil
	}
	return &req, nil
}

func (s *Server) handleDigest(w http.ResponseWriter, r *http.Request) {
	req, err := decodeRequest(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	p, digest, err := parseJob(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{
		"digest":  digest,
		"kind":    p.kind,
		"name":    p.name,
		"version": s.version,
	})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	req, err := decodeRequest(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	p, digest, err := parseJob(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	wait := false
	if v := r.URL.Query().Get("wait"); v != "" {
		wait, _ = strconv.ParseBool(v)
	}

	j, created, cached, err := s.admit(p, digest)
	if cached != nil {
		s.hits.Add(1)
		writeJSON(w, http.StatusOK, cachedCopy(cached))
		return
	}
	if err != nil {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter()))
		writeError(w, http.StatusTooManyRequests, err)
		return
	}
	release := j.pin(!wait)
	defer release()
	if created {
		s.start(j)
	} else {
		s.deduped.Add(1)
	}

	if !wait {
		writeJSON(w, http.StatusAccepted, s.statusOf(j))
		return
	}
	select {
	case <-j.done:
		s.writeOutcome(w, j)
	case <-r.Context().Done():
		// The waiter is gone; release (deferred) drops its pin, and the
		// job dies with it unless another party still needs the result.
	}
}

// admit resolves a submission to a cached result, the active job for its
// digest, or a freshly registered job. The single-flight guarantee lives
// here: under s.mu a digest maps to at most one live job, and a finished
// job enters the cache before it leaves the map, so concurrent identical
// submissions can never execute twice.
func (s *Server) admit(p *parsedJob, digest string) (j *job, created bool, cached *Result, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if existing, ok := s.jobs[digest]; ok {
		return existing, false, nil, nil
	}
	if res, ok := s.cache.get(s.cacheKey(digest)); ok {
		return nil, false, res, nil
	}
	if s.unfinished >= s.cfg.Parallel+s.cfg.QueueDepth {
		s.rejected.Add(1)
		return nil, false, nil, fmt.Errorf("queue full: %d jobs unfinished (capacity %d)",
			s.unfinished, s.cfg.Parallel+s.cfg.QueueDepth)
	}
	ctx, cancel := context.WithCancel(s.ctx)
	j = &job{
		id:     digest,
		req:    p,
		ctx:    ctx,
		cancel: cancel,
		done:   make(chan struct{}),
		state:  stateQueued,
	}
	s.jobs[digest] = j
	s.unfinished++
	return j, true, nil, nil
}

// retryAfter estimates seconds until a queue slot frees: one pool drain
// of the backlog, clamped to [1, 60].
func (s *Server) retryAfter() int {
	s.mu.Lock()
	backlog := s.unfinished
	s.mu.Unlock()
	est := (backlog + s.cfg.Parallel - 1) / s.cfg.Parallel
	if est < 1 {
		est = 1
	}
	if est > 60 {
		est = 60
	}
	return est
}

// start hands the job to the pool. The task runs under the job's own
// context (a child of the server's), so DELETE and abandoned waiters can
// cancel one job without touching its queue neighbours.
func (s *Server) start(j *job) {
	s.pool.Go("job/"+j.id[:12], func(context.Context) error {
		defer s.finalize(j)
		if err := j.ctx.Err(); err != nil {
			j.finish(stateCancelled, err.Error(), nil)
			return nil
		}
		j.setState(stateRunning)
		s.executed.Add(1)
		runs, rows, err := runParsed(j)
		switch {
		case err == nil:
			res := &Result{
				Kind:    j.req.kind,
				Name:    j.req.name,
				Digest:  j.id,
				Version: s.version,
			}
			for _, r := range runs {
				res.Runs = append(res.Runs, WireRun(r))
			}
			res.Rows = rows
			s.cache.put(s.cacheKey(j.id), res)
			j.finish(stateDone, "", res)
		case j.ctx.Err() != nil:
			j.finish(stateCancelled, err.Error(), nil)
		default:
			j.finish(stateFailed, err.Error(), nil)
		}
		return nil
	})
}

// runParsed executes the job body. The recover fence exists because the
// legacy ablation/study entry points panic on internal errors; a tenant's
// bad job must become a failed job, not a dead server.
func runParsed(j *job) (runs []*scenario.Run, rows []string, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("job panicked: %v", r)
		}
	}()
	progress := func(simNow int64, processed uint64) {
		storeMaxInt64(&j.simNow, simNow)
		storeMaxUint64(&j.events, processed)
	}
	return j.req.run(j.ctx, progress)
}

// finalize retires the job: drops it from the active map (later identical
// submissions hit the cache, or re-run if it failed) and frees its slot.
func (s *Server) finalize(j *job) {
	j.cancel()
	s.mu.Lock()
	delete(s.jobs, j.id)
	s.unfinished--
	s.mu.Unlock()
}

func (s *Server) statusOf(j *job) JobStatus {
	state, errMsg, _ := j.snapshot()
	return JobStatus{
		ID:       j.id,
		Kind:     j.req.kind,
		Name:     j.req.name,
		State:    string(state),
		Error:    errMsg,
		SimNowNs: j.simNow.Load(),
		Events:   j.events.Load(),
	}
}

// writeOutcome renders a finished job: the result on success, the error
// mapped to 409 (cancelled) or 500 (failed) otherwise.
func (s *Server) writeOutcome(w http.ResponseWriter, j *job) {
	state, errMsg, res := j.snapshot()
	switch state {
	case stateDone:
		writeJSON(w, http.StatusOK, res)
	case stateCancelled:
		writeJSON(w, http.StatusConflict, map[string]string{"error": "job cancelled: " + errMsg})
	default:
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": errMsg})
	}
}

// lookupJob resolves a job id to its live job, or — once retired — to a
// synthesized done status from the result cache.
func (s *Server) lookupJob(id string) (*job, *Result, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if ok {
		return j, nil, true
	}
	if res, ok := s.cache.get(s.cacheKey(id)); ok {
		return nil, res, true
	}
	return nil, nil, false
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, res, ok := s.lookupJob(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	if j != nil {
		writeJSON(w, http.StatusOK, s.statusOf(j))
		return
	}
	writeJSON(w, http.StatusOK, JobStatus{ID: id, Kind: res.Kind, Name: res.Name, State: string(stateDone)})
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no active job %q", id))
		return
	}
	j.cancel()
	writeJSON(w, http.StatusOK, s.statusOf(j))
}

// handleJobEvents streams the job's status as NDJSON until it reaches a
// terminal state (the final line carries it) or the client disconnects.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, res, ok := s.lookupJob(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	emit := func(st JobStatus) {
		enc.Encode(st)
		if flusher != nil {
			flusher.Flush()
		}
	}
	if j == nil {
		emit(JobStatus{ID: id, Kind: res.Kind, Name: res.Name, State: string(stateDone)})
		return
	}
	ticker := time.NewTicker(s.cfg.EventInterval)
	defer ticker.Stop()
	for {
		emit(s.statusOf(j))
		select {
		case <-j.done:
			emit(s.statusOf(j))
			return
		case <-r.Context().Done():
			return
		case <-ticker.C:
		}
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	res, ok := s.cache.get(s.cacheKey(digest))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no cached result for digest %q at version %s", digest, s.version))
		return
	}
	s.hits.Add(1)
	writeJSON(w, http.StatusOK, cachedCopy(res))
}

// cachedCopy marks a response as cache-served without mutating the
// stored (shared) Result.
func cachedCopy(res *Result) *Result {
	cp := *res
	cp.Cached = true
	return &cp
}

func storeMaxInt64(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

func storeMaxUint64(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
