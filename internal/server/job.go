package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"hwatch/internal/experiments"
	"hwatch/internal/scenario"
)

// jobState is a job's lifecycle position. Transitions are monotone:
// queued → running → one of the terminal states.
type jobState string

const (
	stateQueued    jobState = "queued"
	stateRunning   jobState = "running"
	stateDone      jobState = "done"
	stateFailed    jobState = "failed"
	stateCancelled jobState = "cancelled"
)

func (s jobState) terminal() bool {
	return s == stateDone || s == stateFailed || s == stateCancelled
}

// job is one admitted submission, identified by its content address.
// Identical submissions share the job — the content-addressed id is the
// single-flight deduplication: a digest already active attaches instead of
// spawning a second simulation.
type job struct {
	id  string // canonical digest; also the cache address
	req *parsedJob

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{} // closed on reaching a terminal state

	// pins counts parties that need the job to keep running: one per
	// attached waiting request, plus one permanent pin for fire-and-forget
	// submissions (their result must exist for a later GET). When the last
	// pin drops before completion the job is cancelled — an abandoned HTTP
	// job must stop burning CPU.
	pins      atomic.Int64
	permanent atomic.Bool

	// Progress gauges, fed by the scenario Progress hook (concurrently
	// from every shard's worker under sharded execution).
	simNow atomic.Int64
	events atomic.Uint64

	mu     sync.Mutex
	state  jobState
	errMsg string
	result *Result
}

func (j *job) snapshot() (jobState, string, *Result) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.errMsg, j.result
}

func (j *job) setState(s jobState) {
	j.mu.Lock()
	j.state = s
	j.mu.Unlock()
}

// finish moves the job to a terminal state exactly once.
func (j *job) finish(s jobState, errMsg string, res *Result) {
	j.mu.Lock()
	if j.state.terminal() {
		j.mu.Unlock()
		return
	}
	j.state = s
	j.errMsg = errMsg
	j.result = res
	j.mu.Unlock()
	close(j.done)
}

// pin registers a party that needs the job running; the returned release
// drops it (idempotent). permanent pins are never released.
func (j *job) pin(permanent bool) (release func()) {
	j.pins.Add(1)
	if permanent {
		j.permanent.Store(true)
		return func() {}
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			if j.pins.Add(-1) == 0 && !j.permanent.Load() {
				j.cancel()
			}
		})
	}
}

// parsedJob is a validated JobRequest: its canonical identity plus the
// closure that executes it. run's Progress hook must be safe for
// concurrent use.
type parsedJob struct {
	kind  string
	name  string // rung/fig/ablation/study name ("" for spec)
	scale float64
	run   func(ctx context.Context, progress func(simNow int64, processed uint64)) (runs []*scenario.Run, rows []string, err error)
}

// normScale mirrors the CLIs: anything outside (0,1] means full scale.
func normScale(v float64) float64 {
	if v <= 0 || v > 1 {
		return 1
	}
	return v
}

// parseJob validates a request and computes its canonical digest. For
// "spec" jobs the digest is the spec's own canonical digest (identical to
// hwatchsim -spec-digest); the other kinds digest their canonical
// parameter tuple. The digest doubles as the job id and the cache address.
func parseJob(req *JobRequest) (*parsedJob, string, error) {
	kind := req.Kind
	if kind == "" && len(req.Spec) > 0 {
		kind = "spec"
	}
	switch kind {
	case "spec":
		if len(req.Spec) == 0 {
			return nil, "", fmt.Errorf("spec job carries no spec")
		}
		fs, err := scenario.ParseSpec(req.Spec)
		if err != nil {
			return nil, "", err
		}
		digest, err := fs.CanonicalDigest()
		if err != nil {
			return nil, "", err
		}
		p := &parsedJob{kind: "spec"}
		p.run = func(ctx context.Context, progress func(int64, uint64)) ([]*scenario.Run, []string, error) {
			sc := fs.Scenario()
			sc.Progress = progress
			r, err := sc.RunContext(ctx)
			if err != nil {
				return nil, nil, err
			}
			return []*scenario.Run{r}, nil, nil
		}
		return p, digest, nil

	case "rung":
		rung, ok := scenario.LookupRung(req.Name)
		if !ok {
			return nil, "", fmt.Errorf("unknown rung %q: registered rungs are %v", req.Name, scenario.RungNames())
		}
		scale := normScale(req.Scale)
		p := &parsedJob{kind: "rung", name: rung.Name, scale: scale}
		p.run = func(ctx context.Context, progress func(int64, uint64)) ([]*scenario.Run, []string, error) {
			sc := rung.Spec(scale)
			sc.Progress = progress
			r, err := sc.RunContext(ctx)
			if err != nil {
				return nil, nil, err
			}
			return []*scenario.Run{r}, nil, nil
		}
		return p, tupleDigest("rung", rung.Name, scale, nil), nil

	case "fig":
		name := strings.ToLower(req.Name)
		known := false
		for _, f := range experiments.FigNames() {
			if f == name {
				known = true
			}
		}
		if !known {
			return nil, "", fmt.Errorf("unknown figure %q: known figures are %v", req.Name, experiments.FigNames())
		}
		scale := normScale(req.Scale)
		p := &parsedJob{kind: "fig", name: name, scale: scale}
		p.run = func(ctx context.Context, _ func(int64, uint64)) ([]*scenario.Run, []string, error) {
			runs, err := experiments.FigRuns(ctx, name, scale)
			return runs, nil, err
		}
		return p, tupleDigest("fig", name, scale, nil), nil

	case "ablation":
		fn, ok := ablations[req.Name]
		if !ok {
			return nil, "", fmt.Errorf("unknown ablation %q: known ablations are %v", req.Name, ablationNames())
		}
		scale := normScale(req.Scale)
		p := &parsedJob{kind: "ablation", name: req.Name, scale: scale}
		p.run = func(ctx context.Context, _ func(int64, uint64)) ([]*scenario.Run, []string, error) {
			pts, err := fn(ctx, scale)
			if err != nil {
				return nil, nil, err
			}
			rows := make([]string, 0, len(pts))
			for _, pt := range pts {
				rows = append(rows, fmt.Sprint(pt))
			}
			return nil, rows, nil
		}
		return p, tupleDigest("ablation", req.Name, scale, nil), nil

	case "study":
		set, err := schemeSet(req.Schemes)
		if err != nil {
			return nil, "", err
		}
		runStudy, ok := studies[req.Name]
		if !ok {
			return nil, "", fmt.Errorf("unknown study %q: known studies are %v", req.Name, studyNames())
		}
		p := &parsedJob{kind: "study", name: req.Name, scale: 1}
		p.run = func(ctx context.Context, _ func(int64, uint64)) ([]*scenario.Run, []string, error) {
			rows, err := runStudy(ctx, set)
			if err != nil {
				return nil, nil, err
			}
			return nil, rows, nil
		}
		return p, tupleDigest("study", req.Name, 1, req.Schemes), nil
	}
	return nil, "", fmt.Errorf("unknown job kind %q: want spec, rung, fig, ablation or study", kind)
}

// tupleDigest content-addresses a non-spec job by its canonical parameter
// tuple (sorted-key JSON, normalized scale, the scheme list in request
// order — output rows depend on it).
func tupleDigest(kind, name string, scale float64, schemes []string) string {
	b, _ := json.Marshal(map[string]any{
		"job":     kind,
		"name":    name,
		"scale":   scale,
		"schemes": schemes,
	})
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

var ablations = map[string]func(context.Context, float64) ([]experiments.AblationPoint, error){
	"probes": experiments.AblationProbesContext,
	"k":      experiments.AblationThresholdContext,
	"icw":    experiments.AblationStartWindowContext,
	"batch":  experiments.AblationBatchesContext,
	"pacing": experiments.AblationPacingContext,
	"guests": experiments.AblationGuestStacksContext,
}

func ablationNames() []string {
	names := make([]string, 0, len(ablations))
	for n := range ablations {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// The extension studies run under the job context: cancellation skips
// queued cells, interrupts running ones through the engine poll hook,
// and the job discards its partial rows.
var studies = map[string]func(ctx context.Context, set []experiments.Scheme) ([]string, error){
	"empirical": func(ctx context.Context, set []experiments.Scheme) ([]string, error) {
		res, err := experiments.RunEmpiricalContext(ctx, set, experiments.DefaultEmpirical())
		return sprintRows(res), err
	},
	"coflow": func(ctx context.Context, set []experiments.Scheme) ([]string, error) {
		res, err := experiments.RunCoflowContext(ctx, set, experiments.DefaultCoflow())
		return sprintRows(res), err
	},
	"incast": func(ctx context.Context, set []experiments.Scheme) ([]string, error) {
		res, err := experiments.RunIncastSweepContext(ctx, set, experiments.DefaultIncastSweep())
		return sprintRows(res), err
	},
}

func studyNames() []string {
	names := make([]string, 0, len(studies))
	for n := range studies {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func sprintRows[T any](items []T) []string {
	rows := make([]string, 0, len(items))
	for _, it := range items {
		rows = append(rows, fmt.Sprint(it))
	}
	return rows
}

func schemeSet(names []string) ([]experiments.Scheme, error) {
	if len(names) == 0 {
		return experiments.AllSchemes(), nil
	}
	set := make([]experiments.Scheme, 0, len(names))
	for _, raw := range names {
		name := strings.ToLower(strings.TrimSpace(raw))
		if _, ok := scenario.Lookup(name); !ok {
			return nil, fmt.Errorf("unknown scheme %q: registered schemes are %s",
				name, strings.Join(scenario.Names(), ", "))
		}
		set = append(set, experiments.Scheme(name))
	}
	return set, nil
}
