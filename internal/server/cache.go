package server

import (
	"container/list"
	"sync"
)

// resultCache is a bounded LRU over completed results. Keys are
// digest+"@"+version: a binary carrying different simulation code must not
// serve results computed by its predecessor, even for the same spec.
type resultCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recent; values are *cacheEntry
	entries map[string]*list.Element
}

type cacheEntry struct {
	key string
	res *Result
}

func newResultCache(capacity int) *resultCache {
	if capacity < 1 {
		capacity = 1
	}
	return &resultCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

func (c *resultCache) get(key string) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

func (c *resultCache) put(key string, res *Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
