// Package server implements hwatchd: a multi-tenant HTTP/JSON service
// that runs scenario jobs through the harness pool with bounded
// concurrency and backpressure, streams per-job progress, and serves
// results from a content-addressed cache keyed by (canonical spec digest,
// code version) with single-flight deduplication.
//
// The package sits outside the determinism scope on purpose: it may read
// wall clocks and run tickers, but every simulation it launches goes
// through the scenario layer's context-aware entry points, whose results
// are byte-identical to the same specs run via the CLI (the e2e suite
// checks server-path digests against the committed goldens).
package server

import (
	"encoding/json"
	"fmt"

	"hwatch/internal/scenario"
)

// JobRequest describes one job submission. Exactly one of the kinds:
//
//   - "spec": Spec carries a scenario.FileSpec (the hwatchsim -spec JSON
//     form). A bare FileSpec object (kind "dumbbell"/"testbed") posted to
//     the jobs endpoint is accepted as shorthand for this envelope.
//   - "rung": Name is a registered ladder rung ("ladder/10x",
//     "storm/websearch"); Scale as in hwatchsim -scale.
//   - "fig": Name is a figure ("fig1", "fig2", "fig8", "fig9", "fig11").
//   - "ablation": Name is a sweep ablation (probes|k|icw|batch|pacing|guests).
//   - "study": Name is an extension study (empirical|coflow|incast);
//     Schemes optionally overrides the compared scheme set.
//
// Scale outside (0,1] normalizes to 1 (full scale), mirroring the CLIs.
type JobRequest struct {
	Kind    string          `json:"kind,omitempty"`
	Spec    json.RawMessage `json:"spec,omitempty"`
	Name    string          `json:"name,omitempty"`
	Scale   float64         `json:"scale,omitempty"`
	Schemes []string        `json:"schemes,omitempty"`
}

// Result is a completed job's payload. Digest is the job's content
// address (for "spec" jobs, exactly the spec's canonical digest, the same
// value hwatchsim -spec-digest prints); Version is the code version that
// produced it; Cached reports whether this response was served from the
// result cache instead of running simulations.
type Result struct {
	Kind    string     `json:"kind"`
	Name    string     `json:"name,omitempty"`
	Digest  string     `json:"digest"`
	Version string     `json:"version"`
	Cached  bool       `json:"cached"`
	Runs    []*RunWire `json:"runs,omitempty"`
	Rows    []string   `json:"rows,omitempty"`
}

// RunWire is a scenario.Run in wire form: every digest-relevant series and
// total, plus the execution metadata the CLIs print. Run() reconstructs
// the scenario.Run and recomputes its digest, so a wire round trip that
// lost a single sample is detected mechanically — byte-identical parity
// between the server path and the CLI path is enforced, not assumed.
type RunWire struct {
	Label  string `json:"label"`
	Digest string `json:"digest"`

	ShortFCTms     []float64 `json:"short_fct_ms,omitempty"`
	PerSourceAvgMs []float64 `json:"per_source_avg_ms,omitempty"`
	PerSourceVarMs []float64 `json:"per_source_var_ms,omitempty"`
	ShortRetrans   []float64 `json:"short_retrans,omitempty"`
	LongGoodputBps []float64 `json:"long_goodput_bps,omitempty"`
	LongFairness   float64   `json:"long_fairness,omitempty"`

	QueuePktsT   []int64   `json:"queue_pkts_t,omitempty"`
	QueuePktsV   []float64 `json:"queue_pkts_v,omitempty"`
	QueueBytesT  []int64   `json:"queue_bytes_t,omitempty"`
	QueueBytesV  []float64 `json:"queue_bytes_v,omitempty"`
	UtilizationT []int64   `json:"utilization_t,omitempty"`
	UtilizationV []float64 `json:"utilization_v,omitempty"`

	Drops     int64 `json:"drops"`
	Marks     int64 `json:"marks"`
	Timeouts  int64 `json:"timeouts"`
	ShortDone int   `json:"short_done"`
	ShortAll  int   `json:"short_all"`

	WallNs              int64    `json:"wall_ns,omitempty"`
	Events              uint64   `json:"events,omitempty"`
	InvariantViolations []string `json:"invariant_violations,omitempty"`
}

// WireRun converts a completed run to wire form.
func WireRun(r *scenario.Run) *RunWire {
	return &RunWire{
		Label:          r.Label,
		Digest:         r.DigestHex(),
		ShortFCTms:     r.ShortFCTms.Values(),
		PerSourceAvgMs: r.PerSourceAvgMs.Values(),
		PerSourceVarMs: r.PerSourceVarMs.Values(),
		ShortRetrans:   r.ShortRetrans.Values(),
		LongGoodputBps: r.LongGoodputBps.Values(),
		LongFairness:   r.LongFairness,
		QueuePktsT:     r.QueuePkts.T,
		QueuePktsV:     r.QueuePkts.V,
		QueueBytesT:    r.QueueBytes.T,
		QueueBytesV:    r.QueueBytes.V,
		UtilizationT:   r.Utilization.T,
		UtilizationV:   r.Utilization.V,
		Drops:          r.Drops,
		Marks:          r.Marks,
		Timeouts:       r.Timeouts,
		ShortDone:      r.ShortDone,
		ShortAll:       r.ShortAll,

		WallNs:              r.WallNs,
		Events:              r.Events,
		InvariantViolations: r.InvariantViolations,
	}
}

// Run reconstructs the scenario.Run and verifies that its recomputed
// digest matches the recorded one — the wire format cannot silently drop
// or reorder a sample without failing here.
func (w *RunWire) Run() (*scenario.Run, error) {
	r := &scenario.Run{
		Label:        w.Label,
		LongFairness: w.LongFairness,
		Drops:        w.Drops,
		Marks:        w.Marks,
		Timeouts:     w.Timeouts,
		ShortDone:    w.ShortDone,
		ShortAll:     w.ShortAll,

		WallNs:              w.WallNs,
		Events:              w.Events,
		InvariantViolations: w.InvariantViolations,
	}
	for _, v := range w.ShortFCTms {
		r.ShortFCTms.Add(v)
	}
	for _, v := range w.PerSourceAvgMs {
		r.PerSourceAvgMs.Add(v)
	}
	for _, v := range w.PerSourceVarMs {
		r.PerSourceVarMs.Add(v)
	}
	for _, v := range w.ShortRetrans {
		r.ShortRetrans.Add(v)
	}
	for _, v := range w.LongGoodputBps {
		r.LongGoodputBps.Add(v)
	}
	if len(w.QueuePktsT) != len(w.QueuePktsV) ||
		len(w.QueueBytesT) != len(w.QueueBytesV) ||
		len(w.UtilizationT) != len(w.UtilizationV) {
		return nil, fmt.Errorf("run %q: mismatched series lengths", w.Label)
	}
	r.QueuePkts.T, r.QueuePkts.V = w.QueuePktsT, w.QueuePktsV
	r.QueueBytes.T, r.QueueBytes.V = w.QueueBytesT, w.QueueBytesV
	r.Utilization.T, r.Utilization.V = w.UtilizationT, w.UtilizationV

	if got := r.DigestHex(); got != w.Digest {
		return nil, fmt.Errorf("run %q: reconstructed digest %s does not match recorded %s", w.Label, got, w.Digest)
	}
	return r, nil
}
