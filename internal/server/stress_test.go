package server_test

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"hwatch/internal/server"
	"hwatch/internal/server/client"
)

func stressSpec(seed int) string {
	return fmt.Sprintf(`{
		"kind": "dumbbell", "scheme": "hwatch",
		"long_sources": 3, "short_sources": 3,
		"seed": %d, "duration_ms": 150, "drain_after_ms": 100, "epochs": 1
	}`, 1000+seed)
}

// TestStressSingleFlightDedup hammers the server from many goroutines
// with a small set of distinct specs. Single-flight plus the cache must
// collapse the load: the number of jobs actually executed equals the
// number of distinct specs, and every response for a spec carries the
// same digest.
func TestStressSingleFlightDedup(t *testing.T) {
	const (
		distinct   = 4
		submitters = 32
	)
	srv, _, cl := newTestServer(t, server.Config{Parallel: 2, QueueDepth: distinct + 2})
	ctx := context.Background()

	var wg sync.WaitGroup
	digests := make([]string, submitters)
	errs := make([]error, submitters)
	for i := 0; i < submitters; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := cl.SubmitSpec(ctx, []byte(stressSpec(i%distinct)))
			if err != nil {
				errs[i] = err
				return
			}
			digests[i] = res.Digest
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submitter %d: %v", i, err)
		}
	}
	bySpec := map[int]string{}
	for i, d := range digests {
		spec := i % distinct
		if prev, ok := bySpec[spec]; ok && prev != d {
			t.Errorf("spec %d: digest %s and %s from identical submissions", spec, prev, d)
		}
		bySpec[spec] = d
	}
	if len(bySpec) != distinct {
		t.Errorf("%d distinct digests, want %d", len(bySpec), distinct)
	}
	st := srv.Stats()
	if st.Executed != distinct {
		t.Errorf("executed %d jobs for %d submissions of %d distinct specs, want %d",
			st.Executed, submitters, distinct, distinct)
	}
	if st.Deduped+st.CacheHits != submitters-distinct {
		t.Errorf("deduped %d + cache hits %d, want %d collapsed submissions",
			st.Deduped, st.CacheHits, submitters-distinct)
	}
}

// TestStressBackpressure fills a parallel=1, queue=1 server and checks
// the third distinct job is rejected with 429 and a positive Retry-After,
// while already-admitted jobs are unaffected.
func TestStressBackpressure(t *testing.T) {
	srv, hs, _ := newTestServer(t, server.Config{Parallel: 1, QueueDepth: 1})

	submit := func(body string) *http.Response {
		t.Helper()
		resp, err := hs.Client().Post(hs.URL+"/api/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	// Two long jobs fill the slot and the queue.
	long1, long2 := endlessSpec, strings.Replace(endlessSpec, `"seed": 43`, `"seed": 44`, 1)
	if resp := submit(long1); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first job: status %d, want 202", resp.StatusCode)
	}
	if resp := submit(long2); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second job: status %d, want 202", resp.StatusCode)
	}

	resp := submit(stressSpec(99))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third job: status %d, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Errorf("Retry-After %q, want a positive integer", resp.Header.Get("Retry-After"))
	}
	if srv.Stats().Rejected == 0 {
		t.Error("rejection counter not incremented")
	}

	// Resubmitting an admitted digest is dedup, never a 429: identical
	// tenants share the in-flight job instead of burning queue slots.
	if resp := submit(long1); resp.StatusCode != http.StatusAccepted {
		t.Errorf("duplicate of admitted job: status %d, want 202 (single-flight)", resp.StatusCode)
	}
}

// TestStressWaiterAbandonmentCancelsJob proves request-context
// propagation: when the only waiter for a job disconnects, the job's
// context is cancelled, the in-flight simulation stops, and the server
// drains without leaking goroutines.
func TestStressWaiterAbandonmentCancelsJob(t *testing.T) {
	srv, hs, _ := newTestServer(t, server.Config{Parallel: 1, QueueDepth: 2})

	before := runtime.NumGoroutine()

	reqCtx, abandon := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(reqCtx, http.MethodPost,
		hs.URL+"/api/v1/jobs?wait=1", strings.NewReader(endlessSpec))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		resp, err := hs.Client().Do(req)
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()

	// Wait until the job is actually running, then walk away.
	waitFor(t, "job running", func() bool {
		st := srv.Stats()
		return st.Active == 1 && st.Executed == 1
	})
	abandon()
	if err := <-done; err == nil {
		t.Error("abandoned request returned without error")
	}

	// The simulation must stop: the active set drains even though the
	// spec had ten simulated minutes left.
	waitFor(t, "job cancelled and retired", func() bool {
		return srv.Stats().Active == 0
	})

	// Goroutine accounting settles back to the baseline (modulo the
	// handful net/http parks between keep-alive requests).
	waitFor(t, "goroutines drained", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before+5
	})
}

// TestStressSubmitCancelStatsUnderEviction hammers the three mutating
// paths at once — waited submissions, mid-flight cancellations via
// abandoned requests, and stats reads — against a result cache small
// enough that almost every completion evicts an entry. The invariants:
// no submission errors besides the deliberate cancellations, the active
// set drains, and the cache never exceeds its configured capacity. Under
// `make server-e2e` (-race) this is the concurrency gate for the
// job-map/cache/stats lock interplay.
func TestStressSubmitCancelStatsUnderEviction(t *testing.T) {
	const (
		submitters = 4
		iters      = 3
		cacheSize  = 2
	)
	// Shorter than stressSpec: this test measures lock interplay, not the
	// simulation, and the race detector makes every simulated millisecond
	// expensive.
	shortSpec := func(seed int) string {
		return fmt.Sprintf(`{
			"kind": "dumbbell", "scheme": "hwatch",
			"long_sources": 2, "short_sources": 2,
			"seed": %d, "duration_ms": 40, "drain_after_ms": 20, "epochs": 1
		}`, 2000+seed)
	}
	srv, hs, cl := newTestServer(t, server.Config{Parallel: 2, QueueDepth: submitters * iters, CacheSize: cacheSize})
	ctx := context.Background()

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 2; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = srv.Stats()
					// Throttle: a hot spin would starve the simulation
					// workers of scheduler time, not find more races.
					time.Sleep(200 * time.Microsecond)
				}
			}
		}()
	}

	var wg sync.WaitGroup
	errs := make([]error, submitters)
	for i := 0; i < submitters; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				// Distinct seeds: every iteration is a fresh digest, so
				// completions churn the 2-entry cache continuously.
				spec := shortSpec(i*iters + j)
				if (i+j)%3 == 0 {
					// Deliberate mid-flight abandonment: wait briefly, then
					// walk away. The server must cancel the orphaned job.
					reqCtx, cancel := context.WithTimeout(ctx, 2*time.Millisecond)
					req, err := http.NewRequestWithContext(reqCtx, http.MethodPost,
						hs.URL+"/api/v1/jobs?wait=1", strings.NewReader(spec))
					if err != nil {
						errs[i] = err
						cancel()
						return
					}
					if resp, err := hs.Client().Do(req); err == nil {
						resp.Body.Close()
					}
					cancel()
					continue
				}
				if _, err := cl.SubmitSpec(ctx, []byte(spec)); err != nil {
					errs[i] = err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("submitter %d: %v", i, err)
		}
	}
	waitFor(t, "active set drained", func() bool { return srv.Stats().Active == 0 })
	st := srv.Stats()
	if st.CacheEntries > cacheSize {
		t.Errorf("cache holds %d entries, configured capacity is %d", st.CacheEntries, cacheSize)
	}
	if st.Executed == 0 {
		t.Error("stress run executed no jobs")
	}
}

// waitFor polls cond for up to 30s; the generous ceiling only matters on
// failure — success paths clear in milliseconds.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestStressCancelledJobIsNotCached resubmits a spec whose first job was
// cancelled mid-run and checks it executes again from scratch — a
// cancelled run must never poison the content-addressed cache.
func TestStressCancelledJobIsNotCached(t *testing.T) {
	srv, hs, cl := newTestServer(t, server.Config{Parallel: 1, QueueDepth: 2})
	ctx := context.Background()

	// Use a spec short enough to finish quickly once re-run honestly.
	spec := stressSpec(7)
	id, err := cl.Digest(ctx, &server.JobRequest{Kind: "spec", Spec: []byte(spec)})
	if err != nil {
		t.Fatal(err)
	}

	reqCtx, abandon := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(reqCtx, http.MethodPost,
		hs.URL+"/api/v1/jobs?wait=1", strings.NewReader(spec))
	go hs.Client().Do(req)
	waitFor(t, "first attempt admitted", func() bool { return srv.Stats().Executed >= 1 })
	abandon()
	waitFor(t, "first attempt retired", func() bool { return srv.Stats().Active == 0 })

	res, err := cl.SubmitSpec(ctx, []byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	if res.Digest != id {
		t.Errorf("digest %s, want %s", res.Digest, id)
	}
	// Whether the first attempt completed before the cancel landed or was
	// killed mid-run, the second submission must return a full result.
	if len(res.Runs) != 1 {
		t.Fatalf("resubmission returned %d runs, want 1", len(res.Runs))
	}
	if _, err := client.Runs(res); err != nil {
		t.Fatal(err)
	}
}
