// Package client is the embeddable Go client for hwatchd. It submits
// jobs, honours the server's 429/Retry-After backpressure under the
// caller's context, and reconstructs scenario.Run values from the wire —
// re-verifying each run's digest so a corrupted transfer cannot
// masquerade as a result.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"hwatch/internal/scenario"
	"hwatch/internal/server"
)

// Client talks to one hwatchd instance.
type Client struct {
	base string
	hc   *http.Client
}

// New builds a client for the server at base (e.g. "http://127.0.0.1:8080").
// hc may be nil for http.DefaultClient.
func New(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: base, hc: hc}
}

// apiError is a non-2xx response decoded from the server's error JSON.
type apiError struct {
	Status int
	Msg    string
}

func (e *apiError) Error() string {
	return fmt.Sprintf("server returned %d: %s", e.Status, e.Msg)
}

func (c *Client) post(ctx context.Context, path string, body any, out any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(raw))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, out)
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	return c.do(req, out)
}

func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		msg := string(bytes.TrimSpace(body))
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			msg = e.Error
		}
		apiErr := &apiError{Status: resp.StatusCode, Msg: msg}
		if resp.StatusCode == http.StatusTooManyRequests {
			delay := 1
			if v, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && v > 0 {
				delay = v
			}
			return &retryError{after: time.Duration(delay) * time.Second, cause: apiErr}
		}
		return apiErr
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(body, out)
}

// retryError signals a 429: retry after the server's suggested delay.
type retryError struct {
	after time.Duration
	cause *apiError
}

func (e *retryError) Error() string { return e.cause.Error() }

// Submit posts one job with wait=1 and blocks until the server returns
// its result. On 429 it sleeps the server's Retry-After and retries, for
// as long as ctx allows — the client is the polite tenant the admission
// control assumes.
func (c *Client) Submit(ctx context.Context, req *server.JobRequest) (*server.Result, error) {
	for {
		var res server.Result
		err := c.post(ctx, "/api/v1/jobs?wait=1", req, &res)
		if err == nil {
			return &res, nil
		}
		re, ok := err.(*retryError)
		if !ok {
			return nil, err
		}
		select {
		case <-time.After(re.after):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// SubmitSpec is Submit for a raw scenario spec (the hwatchsim -spec JSON).
func (c *Client) SubmitSpec(ctx context.Context, spec []byte) (*server.Result, error) {
	return c.Submit(ctx, &server.JobRequest{Kind: "spec", Spec: spec})
}

// Digest asks the server for a job's content address without running it.
func (c *Client) Digest(ctx context.Context, req *server.JobRequest) (string, error) {
	var out struct {
		Digest string `json:"digest"`
	}
	if err := c.post(ctx, "/api/v1/digest", req, &out); err != nil {
		return "", err
	}
	return out.Digest, nil
}

// Result fetches a cached result by digest; ok is false when the server
// has no entry for it at its code version.
func (c *Client) Result(ctx context.Context, digest string) (*server.Result, bool, error) {
	var res server.Result
	err := c.get(ctx, "/api/v1/results/"+digest, &res)
	if err == nil {
		return &res, true, nil
	}
	if ae, isAPI := err.(*apiError); isAPI && ae.Status == http.StatusNotFound {
		return nil, false, nil
	}
	return nil, false, err
}

// Stats fetches the server's counters.
func (c *Client) Stats(ctx context.Context) (*server.Stats, error) {
	var st server.Stats
	if err := c.get(ctx, "/api/v1/stats", &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Runs reconstructs the result's scenario runs, re-verifying each wire
// digest against the recomputed one.
func Runs(res *server.Result) ([]*scenario.Run, error) {
	runs := make([]*scenario.Run, 0, len(res.Runs))
	for _, w := range res.Runs {
		r, err := w.Run()
		if err != nil {
			return nil, err
		}
		runs = append(runs, r)
	}
	return runs, nil
}
