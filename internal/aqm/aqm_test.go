package aqm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hwatch/internal/netem"
)

func pkt(wire int, ecn netem.ECN) *netem.Packet {
	return &netem.Packet{Wire: wire, ECN: ecn}
}

func TestDropTailCapacityPackets(t *testing.T) {
	q := NewDropTail(3)
	for i := 0; i < 5; i++ {
		q.Enqueue(pkt(100, netem.NotECT))
	}
	if q.Len() != 3 {
		t.Fatalf("Len = %d, want 3", q.Len())
	}
	st := q.Stats()
	if st.Dropped != 2 || st.Enqueued != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MaxLen != 3 {
		t.Fatalf("MaxLen = %d", st.MaxLen)
	}
}

func TestDropTailCapacityBytes(t *testing.T) {
	q := NewDropTailBytes(250)
	if !q.Enqueue(pkt(100, netem.NotECT)) || !q.Enqueue(pkt(100, netem.NotECT)) {
		t.Fatal("enqueue under byte cap failed")
	}
	if q.Enqueue(pkt(100, netem.NotECT)) {
		t.Fatal("enqueue over byte cap succeeded")
	}
	if q.Bytes() != 200 {
		t.Fatalf("Bytes = %d", q.Bytes())
	}
}

func TestDropTailFIFOOrder(t *testing.T) {
	q := NewDropTail(100)
	for i := 0; i < 100; i++ {
		p := pkt(10, netem.NotECT)
		p.ID = uint64(i)
		q.Enqueue(p)
	}
	for i := 0; i < 100; i++ {
		if got := q.Dequeue(); got.ID != uint64(i) {
			t.Fatalf("dequeue %d got ID %d", i, got.ID)
		}
	}
	if q.Dequeue() != nil {
		t.Fatal("empty dequeue not nil")
	}
}

func TestDropTailNeverMarks(t *testing.T) {
	q := NewDropTail(10)
	for i := 0; i < 10; i++ {
		q.Enqueue(pkt(100, netem.ECT0))
	}
	for p := q.Dequeue(); p != nil; p = q.Dequeue() {
		if p.ECN == netem.CE {
			t.Fatal("DropTail marked a packet")
		}
	}
}

func TestMarkThresholdMarksAboveK(t *testing.T) {
	q := NewMarkThreshold(250, 50)
	// Fill to K: none of the first 50 should be marked.
	for i := 0; i < 50; i++ {
		q.Enqueue(pkt(1500, netem.ECT0))
	}
	if q.Stats().Marked != 0 {
		t.Fatalf("marked %d below threshold", q.Stats().Marked)
	}
	// Every further ECT arrival sees len >= K and must be marked.
	for i := 0; i < 20; i++ {
		q.Enqueue(pkt(1500, netem.ECT0))
	}
	if got := q.Stats().Marked; got != 20 {
		t.Fatalf("marked = %d, want 20", got)
	}
}

func TestMarkThresholdNonECTNotMarkedNotDropped(t *testing.T) {
	q := NewMarkThreshold(250, 10)
	for i := 0; i < 50; i++ {
		if !q.Enqueue(pkt(1500, netem.NotECT)) {
			t.Fatal("non-ECT dropped below capacity")
		}
	}
	if q.Stats().Marked != 0 {
		t.Fatal("non-ECT packet was marked")
	}
}

func TestMarkThresholdOverflowDrops(t *testing.T) {
	q := NewMarkThreshold(10, 5)
	for i := 0; i < 15; i++ {
		q.Enqueue(pkt(1500, netem.ECT0))
	}
	if st := q.Stats(); st.Dropped != 5 {
		t.Fatalf("Dropped = %d, want 5", st.Dropped)
	}
}

func TestWREDRegions(t *testing.T) {
	rng := rand.New(rand.NewSource(1)).Float64
	q := NewWRED(250, 10, 20, rng)
	// Below Low: never marked.
	for i := 0; i < 10; i++ {
		q.Enqueue(pkt(1500, netem.ECT0))
	}
	if q.Stats().Marked != 0 {
		t.Fatal("marked below Low")
	}
	// Fill past High: arrivals at len >= High always marked.
	for i := 0; i < 15; i++ {
		q.Enqueue(pkt(1500, netem.ECT0))
	}
	before := q.Stats().Marked
	for i := 0; i < 10; i++ {
		q.Enqueue(pkt(1500, netem.ECT0))
	}
	if got := q.Stats().Marked - before; got != 10 {
		t.Fatalf("above-High marks = %d, want 10", got)
	}
}

func TestWREDRampProbabilistic(t *testing.T) {
	rng := rand.New(rand.NewSource(2)).Float64
	marked := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		q := NewWRED(250, 10, 30, rng)
		for j := 0; j < 20; j++ { // leave queue at 20: inside the ramp
			q.Enqueue(pkt(1500, netem.ECT0))
		}
		p := pkt(1500, netem.ECT0)
		q.Enqueue(p)
		if p.ECN == netem.CE {
			marked++
		}
	}
	// At len 20 with [10,30] the ramp gives ~(20-10+1)/(30-10+1) ≈ 0.52.
	frac := float64(marked) / trials
	if frac < 0.40 || frac < 0.0 || frac > 0.65 {
		t.Fatalf("ramp mark fraction = %.3f, want ≈0.52", frac)
	}
}

func redCfg(capPkts int, ecn bool) REDConfig {
	now := int64(0)
	cfg := DefaultRED(capPkts, ecn, 1200, func() int64 { return now })
	return cfg
}

func TestREDBelowMinThNoAction(t *testing.T) {
	rng := rand.New(rand.NewSource(3)).Float64
	q := NewRED(redCfg(240, true), rng)
	for i := 0; i < 10; i++ {
		if !q.Enqueue(pkt(1500, netem.ECT0)) {
			t.Fatal("drop below MinTh")
		}
	}
	if st := q.Stats(); st.Marked != 0 || st.EarlyDrop != 0 {
		t.Fatalf("action below MinTh: %+v", st)
	}
}

func TestREDSustainedLoadMarks(t *testing.T) {
	rng := rand.New(rand.NewSource(4)).Float64
	q := NewRED(redCfg(240, true), rng)
	// Keep the standing queue near 60 (MinTh=20, MaxTh=60): enqueue many,
	// dequeue few, so the EWMA climbs into the marking band.
	for i := 0; i < 5000; i++ {
		q.Enqueue(pkt(1500, netem.ECT0))
		if q.Len() > 60 {
			q.Dequeue()
		}
	}
	st := q.Stats()
	if st.Marked == 0 {
		t.Fatalf("no ECN marks under sustained load; avg=%.1f stats=%+v", q.Avg(), st)
	}
	if st.EarlyDrop > st.Marked {
		t.Fatalf("ECN mode should prefer marking: %+v", st)
	}
}

func TestREDDropModeDrops(t *testing.T) {
	rng := rand.New(rand.NewSource(5)).Float64
	q := NewRED(redCfg(240, false), rng)
	for i := 0; i < 5000; i++ {
		q.Enqueue(pkt(1500, netem.ECT0))
		if q.Len() > 60 {
			q.Dequeue()
		}
	}
	st := q.Stats()
	if st.EarlyDrop == 0 {
		t.Fatal("drop-mode RED never early-dropped under sustained load")
	}
	if st.Marked != 0 {
		t.Fatal("drop-mode RED marked packets")
	}
}

func TestREDHardOverflow(t *testing.T) {
	rng := rand.New(rand.NewSource(6)).Float64
	q := NewRED(redCfg(50, true), rng)
	for i := 0; i < 100; i++ {
		q.Enqueue(pkt(1500, netem.ECT0))
	}
	if q.Len() > 50 {
		t.Fatalf("queue %d exceeds physical capacity 50", q.Len())
	}
	if q.Stats().Dropped == 0 {
		t.Fatal("no overflow drops recorded")
	}
}

func TestREDIdleDecay(t *testing.T) {
	now := int64(0)
	cfg := DefaultRED(240, true, 1200, func() int64 { return now })
	rng := rand.New(rand.NewSource(7)).Float64
	q := NewRED(cfg, rng)
	for i := 0; i < 2000; i++ {
		q.Enqueue(pkt(1500, netem.ECT0))
		if q.Len() > 40 {
			q.Dequeue()
		}
	}
	high := q.Avg()
	if high < 10 {
		t.Fatalf("setup failed to raise avg (%.2f)", high)
	}
	for q.Dequeue() != nil {
	}
	now += 100 * 1200 * 1000 // long idle period
	q.Enqueue(pkt(1500, netem.ECT0))
	if q.Avg() >= high/2 {
		t.Fatalf("avg did not decay across idle: %.2f -> %.2f", high, q.Avg())
	}
}

// Property: under any arrival/departure interleaving, every discipline keeps
// Len() within capacity, Bytes() consistent with the queued packets, and
// conserves packets (enqueued-accepted = dequeued + still queued).
func TestPropertyQueueConservation(t *testing.T) {
	run := func(mk func() netem.Queue) func(seed int64, steps uint16) bool {
		return func(seed int64, steps uint16) bool {
			rng := rand.New(rand.NewSource(seed))
			q := mk()
			accepted, dequeued, queuedBytes := 0, 0, 0
			for i := 0; i < int(steps); i++ {
				if rng.Intn(3) > 0 {
					p := pkt(64+rng.Intn(1436), netem.ECN(rng.Intn(4)))
					if q.Enqueue(p) {
						accepted++
						queuedBytes += p.Wire
					}
				} else if p := q.Dequeue(); p != nil {
					dequeued++
					queuedBytes -= p.Wire
				}
				if q.Bytes() != queuedBytes {
					return false
				}
				if accepted-dequeued != q.Len() {
					return false
				}
			}
			return true
		}
	}
	now := int64(0)
	clock := func() int64 { now += 1200; return now }
	cases := map[string]func() netem.Queue{
		"droptail": func() netem.Queue { return NewDropTail(64) },
		"bytes":    func() netem.Queue { return NewDropTailBytes(64 * 1500) },
		"markth":   func() netem.Queue { return NewMarkThreshold(64, 16) },
		"wred": func() netem.Queue {
			return NewWRED(64, 16, 48, rand.New(rand.NewSource(9)).Float64)
		},
		"red": func() netem.Queue {
			cfg := DefaultRED(64, true, 1200, clock)
			return NewRED(cfg, rand.New(rand.NewSource(10)).Float64)
		},
	}
	for name, mk := range cases {
		if err := quick.Check(run(mk), &quick.Config{MaxCount: 60}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestFIFOCompaction(t *testing.T) {
	// Heavy churn must not leak; exercise the compaction path.
	q := NewDropTail(1 << 20)
	for round := 0; round < 100; round++ {
		for i := 0; i < 1000; i++ {
			q.Enqueue(pkt(100, netem.NotECT))
		}
		for i := 0; i < 1000; i++ {
			if q.Dequeue() == nil {
				t.Fatal("lost a packet during churn")
			}
		}
	}
	if q.Len() != 0 || q.Bytes() != 0 {
		t.Fatalf("residual len=%d bytes=%d", q.Len(), q.Bytes())
	}
}

func TestWREDByteMode(t *testing.T) {
	rng := rand.New(rand.NewSource(8)).Float64
	q := NewWREDBytes(30_000, 7_500, 7_500, rng)
	// Fill to the byte threshold with unmarkable packets.
	for q.Bytes() < 7_500 {
		if !q.Enqueue(pkt(1500, netem.NotECT)) {
			t.Fatal("dropped below byte capacity")
		}
	}
	if q.Stats().Marked != 0 {
		t.Fatal("non-ECT marked")
	}
	// ECT arrivals at/above the byte threshold are always marked.
	for i := 0; i < 5; i++ {
		q.Enqueue(pkt(1500, netem.ECT0))
	}
	if got := q.Stats().Marked; got != 5 {
		t.Fatalf("marked = %d, want 5", got)
	}
	// Byte overflow drops.
	for q.Enqueue(pkt(1500, netem.ECT0)) {
	}
	if q.Bytes() > 30_000 {
		t.Fatalf("bytes %d exceed capacity", q.Bytes())
	}
	if q.Stats().Dropped == 0 {
		t.Fatal("no overflow drop recorded")
	}
	// Tiny probe-sized packets still fit when a full MTU would not.
	for q.Bytes()+1500 > 30_000 && q.Bytes()+38 <= 30_000 {
		if !q.Enqueue(pkt(38, netem.ECT0)) {
			t.Fatal("probe-sized packet rejected despite byte headroom")
		}
	}
}
