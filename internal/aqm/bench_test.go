package aqm

import (
	"math/rand"
	"testing"

	"hwatch/internal/netem"
)

func benchCycle(b *testing.B, q netem.Queue) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := &netem.Packet{Wire: 1500, ECN: netem.ECT0}
		if q.Enqueue(p) && q.Len() > 32 {
			q.Dequeue()
		}
	}
}

func BenchmarkDropTail(b *testing.B) {
	benchCycle(b, NewDropTail(64))
}

func BenchmarkMarkThreshold(b *testing.B) {
	benchCycle(b, NewMarkThreshold(64, 16))
}

func BenchmarkMarkThresholdBytes(b *testing.B) {
	benchCycle(b, NewMarkThresholdBytes(64*1500, 16*1500))
}

func BenchmarkRED(b *testing.B) {
	now := int64(0)
	cfg := DefaultRED(64, true, 1200, func() int64 { now += 1200; return now })
	benchCycle(b, NewRED(cfg, rand.New(rand.NewSource(1)).Float64))
}

func BenchmarkWRED(b *testing.B) {
	benchCycle(b, NewWRED(64, 16, 48, rand.New(rand.NewSource(1)).Float64))
}

func BenchmarkCoDel(b *testing.B) {
	now := int64(0)
	q := NewCoDel(64, 0, 10_000_000, true, func() int64 { now += 1200; return now })
	benchCycle(b, q)
}
