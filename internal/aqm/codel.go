package aqm

import (
	"math"

	"hwatch/internal/netem"
)

// CoDel implements Controlled Delay AQM (Nichols & Jacobson) as an
// extension beyond the paper's switch set: it drops (or CE-marks) based on
// per-packet *sojourn time* rather than queue length, using the standard
// target/interval control law with the inverse-sqrt drop schedule.
//
// Sojourn time is measured from Packet.EnqueuedAt, which netem.Port stamps
// on every enqueue.
type CoDel struct {
	fifo
	CapPkts  int
	Target   int64 // acceptable standing delay (default 5% of Interval)
	Interval int64 // sliding window (default 100 ms in WANs; use ~RTT here)
	ECN      bool  // mark ECN-capable packets instead of dropping
	Clock    func() int64

	dropping  bool
	firstMark int64 // time the sojourn first exceeded Target
	dropNext  int64
	count     int
	lastCount int
}

// NewCoDel returns a CoDel queue. target/interval in ns; clock supplies
// simulation time.
func NewCoDel(capPkts int, target, interval int64, ecn bool, clock func() int64) *CoDel {
	if clock == nil {
		panic("aqm: CoDel needs a clock")
	}
	if interval <= 0 {
		panic("aqm: CoDel needs a positive interval")
	}
	if target <= 0 {
		target = interval / 20
	}
	return &CoDel{CapPkts: capPkts, Target: target, Interval: interval, ECN: ecn, Clock: clock}
}

// SetClock rebinds the queue's time source; see RED.SetClock.
func (q *CoDel) SetClock(fn func() int64) {
	if fn != nil {
		q.Clock = fn
	}
}

// Enqueue implements netem.Queue (tail drop only at physical capacity;
// CoDel acts at dequeue).
func (q *CoDel) Enqueue(p *netem.Packet) bool {
	if q.len() >= q.CapPkts {
		q.stats.Dropped++
		return false
	}
	q.push(p)
	return true
}

// Dequeue implements netem.Queue, applying the CoDel control law.
func (q *CoDel) Dequeue() *netem.Packet {
	now := q.Clock()
	for {
		p := q.pop()
		if p == nil {
			q.dropping = false
			return nil
		}
		sojourn := now - p.EnqueuedAt
		if sojourn < q.Target || q.len() == 0 {
			// Below target (or queue empty): leave the dropping state.
			q.firstMark = 0
			q.dropping = false
			return p
		}
		// Above target: arm the interval clock.
		if q.firstMark == 0 {
			q.firstMark = now + q.Interval
			return p
		}
		if now < q.firstMark && !q.dropping {
			return p // still within the grace interval
		}
		if !q.dropping {
			// Enter dropping state; resume the schedule if we left it
			// recently (standard CoDel count inheritance).
			q.dropping = true
			if q.count > 2 && now-q.dropNext < 8*q.Interval {
				q.count = q.count - 2
			} else {
				q.count = 1
			}
			q.dropNext = now + q.controlInterval()
			return q.notify(p)
		}
		if now >= q.dropNext {
			q.count++
			q.dropNext += q.controlInterval()
			p = q.notify(p)
			if p != nil {
				return p
			}
			continue // dropped: dequeue the next packet this round
		}
		return p
	}
}

// controlInterval returns Interval/sqrt(count).
func (q *CoDel) controlInterval() int64 {
	return int64(float64(q.Interval) / math.Sqrt(float64(q.count)))
}

// notify marks (ECN mode, capable packet) or drops. Returns the packet if
// it survives, nil if dropped.
func (q *CoDel) notify(p *netem.Packet) *netem.Packet {
	if q.ECN && p.ECN.Capable() {
		q.mark(p)
		return p
	}
	q.stats.EarlyDrop++
	netem.ReleasePacket(p) // dropped at dequeue: the queue owns it here
	return nil
}

// Len implements netem.Queue.
func (q *CoDel) Len() int { return q.len() }

// Bytes implements netem.Queue.
func (q *CoDel) Bytes() int { return q.bytes }

// Stats returns a copy of the discipline counters.
func (q *CoDel) Stats() Stats { return q.stats }
