// Package aqm implements the queue disciplines the paper's switches run:
// plain DropTail, RED (Floyd/Jacobson with optional gentle mode), the
// two-threshold WRED marking HWatch relies on, and the single instantaneous
// threshold marking DCTCP recommends.
//
// All disciplines implement netem.Queue. Marking sets the IP ECN codepoint
// to CE when the packet is ECN-capable; non-capable packets are dropped
// instead when the discipline would otherwise have marked-by-necessity
// (RED drop mode) or simply enqueued (pure marking disciplines).
package aqm

import (
	"hwatch/internal/netem"
)

// Stats counts discipline-level outcomes for one queue.
type Stats struct {
	Enqueued  int64
	Dropped   int64 // tail/overflow drops
	EarlyDrop int64 // RED probabilistic drops
	Marked    int64 // CE marks applied
	MaxLen    int   // high-water mark, packets
	MaxBytes  int
}

// fifo is the common packet buffer under every discipline.
type fifo struct {
	pkts  []*netem.Packet
	head  int
	bytes int
	stats Stats
}

func (f *fifo) push(p *netem.Packet) {
	f.pkts = append(f.pkts, p)
	f.bytes += p.Wire
	f.stats.Enqueued++
	if n := f.len(); n > f.stats.MaxLen {
		f.stats.MaxLen = n
	}
	if f.bytes > f.stats.MaxBytes {
		f.stats.MaxBytes = f.bytes
	}
}

func (f *fifo) pop() *netem.Packet {
	if f.head >= len(f.pkts) {
		return nil
	}
	p := f.pkts[f.head]
	f.pkts[f.head] = nil
	f.head++
	f.bytes -= p.Wire
	// Compact once the dead prefix dominates, to keep memory bounded.
	if f.head > 64 && f.head*2 >= len(f.pkts) {
		n := copy(f.pkts, f.pkts[f.head:])
		f.pkts = f.pkts[:n]
		f.head = 0
	}
	return p
}

func (f *fifo) len() int { return len(f.pkts) - f.head }

// mark sets CE on an ECN-capable packet and counts it.
func (f *fifo) mark(p *netem.Packet) {
	if p.ECN != netem.CE {
		p.ECN = netem.CE
		f.stats.Marked++
	}
}
