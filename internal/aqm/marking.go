package aqm

import "hwatch/internal/netem"

// MarkThreshold is the DCTCP-recommended discipline: a DropTail buffer that
// CE-marks every ECN-capable packet arriving when the *instantaneous* queue
// occupancy is at or above K. Non-capable packets are enqueued unmarked
// (and dropped only on overflow). Capacity and threshold are counted in
// packets (ns-2 style) or in bytes (shared-buffer switch style) depending
// on the constructor.
type MarkThreshold struct {
	fifo
	CapPkts int
	K       int // marking threshold, packets

	CapBytes int
	KBytes   int // marking threshold, bytes (byte mode when > 0)
}

// NewMarkThreshold returns the packet-counted discipline with buffer
// capPkts and threshold k.
func NewMarkThreshold(capPkts, k int) *MarkThreshold {
	return &MarkThreshold{CapPkts: capPkts, K: k}
}

// NewMarkThresholdBytes returns the byte-counted discipline, matching
// switches whose shared buffer is cell/byte accounted (tiny probe packets
// consume proportionally tiny space).
func NewMarkThresholdBytes(capBytes, kBytes int) *MarkThreshold {
	return &MarkThreshold{CapBytes: capBytes, KBytes: kBytes}
}

// Enqueue implements netem.Queue.
func (q *MarkThreshold) Enqueue(p *netem.Packet) bool {
	if q.CapBytes > 0 {
		if q.bytes+p.Wire > q.CapBytes {
			q.stats.Dropped++
			return false
		}
		if q.bytes >= q.KBytes && p.ECN.Capable() {
			q.mark(p)
		}
		q.push(p)
		return true
	}
	if q.len() >= q.CapPkts {
		q.stats.Dropped++
		return false
	}
	if q.len() >= q.K && p.ECN.Capable() {
		q.mark(p)
	}
	q.push(p)
	return true
}

// Dequeue implements netem.Queue.
func (q *MarkThreshold) Dequeue() *netem.Packet { return q.pop() }

// Len implements netem.Queue.
func (q *MarkThreshold) Len() int { return q.len() }

// Bytes implements netem.Queue.
func (q *MarkThreshold) Bytes() int { return q.bytes }

// Stats returns a copy of the discipline counters.
func (q *MarkThreshold) Stats() Stats { return q.stats }

// WRED is the two-threshold weighted-RED marking profile entry-level data
// center switches expose and the paper configures for HWatch: packets are
// marked with a probability ramping 0..1 between Low and High
// (instantaneous occupancy) and always at or above High. Occupancy is in
// packets by default or in bytes via NewWREDBytes.
type WRED struct {
	fifo
	CapPkts   int
	Low, High int
	byteMode  bool
	rng       func() float64
}

// NewWRED returns a packet-counted WRED queue; rng supplies uniform [0,1)
// variates.
func NewWRED(capPkts, low, high int, rng func() float64) *WRED {
	if high < low {
		high = low
	}
	return &WRED{CapPkts: capPkts, Low: low, High: high, rng: rng}
}

// NewWREDBytes returns the byte-accounted variant (cap and thresholds in
// bytes).
func NewWREDBytes(capBytes, lowBytes, highBytes int, rng func() float64) *WRED {
	q := NewWRED(capBytes, lowBytes, highBytes, rng)
	q.byteMode = true
	return q
}

// Enqueue implements netem.Queue.
func (q *WRED) Enqueue(p *netem.Packet) bool {
	occ := q.len()
	if q.byteMode {
		occ = q.bytes
		if q.bytes+p.Wire > q.CapPkts {
			q.stats.Dropped++
			return false
		}
	} else if q.len() >= q.CapPkts {
		q.stats.Dropped++
		return false
	}
	if p.ECN.Capable() {
		switch {
		case occ >= q.High:
			q.mark(p)
		case occ >= q.Low:
			frac := float64(occ-q.Low+1) / float64(q.High-q.Low+1)
			if q.rng() < frac {
				q.mark(p)
			}
		}
	}
	q.push(p)
	return true
}

// Dequeue implements netem.Queue.
func (q *WRED) Dequeue() *netem.Packet { return q.pop() }

// Len implements netem.Queue.
func (q *WRED) Len() int { return q.len() }

// Bytes implements netem.Queue.
func (q *WRED) Bytes() int { return q.bytes }

// Stats returns a copy of the discipline counters.
func (q *WRED) Stats() Stats { return q.stats }
