package aqm

import (
	"math"

	"hwatch/internal/netem"
)

// REDConfig carries the Floyd/Jacobson RED parameters. Thresholds and the
// capacity are in packets by default (ns-2 style); with ByteMode they are
// all interpreted in bytes (shared-buffer switch style).
type REDConfig struct {
	CapPkts  int     // physical buffer (packets, or bytes with ByteMode)
	ByteMode bool    // average and thresholds over bytes instead of packets
	MinTh    float64 // lower average-queue threshold
	MaxTh    float64 // upper average-queue threshold
	MaxP     float64 // marking probability at MaxTh
	Wq       float64 // EWMA weight
	Gentle   bool    // ramp MaxP..1 between MaxTh and 2*MaxTh
	ECN      bool    // mark ECN-capable packets instead of dropping

	// MeanPktTime is the transmission time of a typical packet (ns), used
	// to age the average across idle periods; Clock supplies current time.
	MeanPktTime int64
	Clock       func() int64
}

// DefaultRED returns a Floyd-style parameterization adapted to shallow
// data-center buffers: MinTh = buffer/6 (>=5), MaxTh = 3*MinTh = buffer/2,
// Wq = 0.002, MaxP = 0.1, gentle on. With ECN enabled the discipline marks
// through the whole gentle band and only drops on physical overflow or an
// average beyond 2*MaxTh.
func DefaultRED(capPkts int, ecn bool, meanPktTime int64, clock func() int64) REDConfig {
	minTh := float64(capPkts) / 6
	if minTh < 5 {
		minTh = 5
	}
	return REDConfig{
		CapPkts:     capPkts,
		MinTh:       minTh,
		MaxTh:       3 * minTh,
		MaxP:        0.1,
		Wq:          0.002,
		Gentle:      true,
		ECN:         ecn,
		MeanPktTime: meanPktTime,
		Clock:       clock,
	}
}

// DefaultREDBytes is DefaultRED with byte-mode accounting over a capBytes
// buffer.
func DefaultREDBytes(capBytes int, ecn bool, meanPktTime int64, clock func() int64) REDConfig {
	cfg := DefaultRED(capBytes, ecn, meanPktTime, clock)
	cfg.ByteMode = true
	minTh := float64(capBytes) / 6
	cfg.MinTh = minTh
	cfg.MaxTh = 3 * minTh
	return cfg
}

// RED implements Random Early Detection with optional ECN marking and
// gentle mode.
type RED struct {
	fifo
	cfg REDConfig

	avg       float64
	count     int // packets since last mark/drop
	idleSince int64
	idle      bool
	rng       func() float64
}

// NewRED returns a RED queue. rng supplies uniform [0,1) variates and must
// come from the scenario's seeded generator for reproducibility.
func NewRED(cfg REDConfig, rng func() float64) *RED {
	if cfg.Clock == nil {
		panic("aqm: RED requires a clock")
	}
	if cfg.MeanPktTime <= 0 {
		cfg.MeanPktTime = 1
	}
	return &RED{cfg: cfg, count: -1, rng: rng, idle: true}
}

// Avg returns the current average queue estimate (packets).
func (q *RED) Avg() float64 { return q.avg }

// SetClock rebinds the queue's time source. netem.NewPort calls this so a
// clocked queue always reads the engine that owns its port — required in
// sharded runs, where the Env-supplied clock may belong to another shard.
func (q *RED) SetClock(fn func() int64) {
	if fn != nil {
		q.cfg.Clock = fn
	}
}

// Enqueue implements netem.Queue.
func (q *RED) Enqueue(p *netem.Packet) bool {
	if q.idle {
		// Age the average across the idle period as if m small packets
		// had departed.
		m := float64(q.cfg.Clock()-q.idleSince) / float64(q.cfg.MeanPktTime)
		if m > 0 {
			q.avg *= math.Pow(1-q.cfg.Wq, m)
		}
		q.idle = false
	}
	occ := float64(q.len())
	full := q.len() >= q.cfg.CapPkts
	if q.cfg.ByteMode {
		occ = float64(q.bytes)
		full = q.bytes+p.Wire > q.cfg.CapPkts
	}
	q.avg = (1-q.cfg.Wq)*q.avg + q.cfg.Wq*occ

	if full {
		q.stats.Dropped++
		q.count = 0
		return false
	}

	if notify, force := q.decide(); notify {
		if q.cfg.ECN && p.ECN.Capable() && !force {
			q.mark(p)
			q.push(p)
			return true
		}
		q.stats.EarlyDrop++
		return false
	}
	q.push(p)
	return true
}

// decide returns (congestion-notify?, forced?). forced means the average is
// beyond the hard region where RED drops even ECN-capable packets.
func (q *RED) decide() (bool, bool) {
	c := &q.cfg
	switch {
	case q.avg < c.MinTh:
		q.count = -1
		return false, false
	case q.avg >= 2*c.MaxTh && c.Gentle:
		q.count = 0
		return true, true
	case q.avg >= c.MaxTh:
		if !c.Gentle {
			q.count = 0
			return true, true
		}
		// Gentle ramp: MaxP .. 1 over [MaxTh, 2*MaxTh).
		pb := c.MaxP + (1-c.MaxP)*(q.avg-c.MaxTh)/c.MaxTh
		return q.bernoulli(pb), false
	default:
		pb := c.MaxP * (q.avg - c.MinTh) / (c.MaxTh - c.MinTh)
		return q.bernoulli(pb), false
	}
}

// bernoulli applies Floyd's uniform-spacing correction to pb.
func (q *RED) bernoulli(pb float64) bool {
	q.count++
	pa := pb
	if d := 1 - float64(q.count)*pb; d > 0 {
		pa = pb / d
	} else {
		pa = 1
	}
	if q.rng() < pa {
		q.count = 0
		return true
	}
	return false
}

// Dequeue implements netem.Queue.
func (q *RED) Dequeue() *netem.Packet {
	p := q.pop()
	if q.len() == 0 && !q.idle {
		q.idle = true
		q.idleSince = q.cfg.Clock()
	}
	return p
}

// Len implements netem.Queue.
func (q *RED) Len() int { return q.len() }

// Bytes implements netem.Queue.
func (q *RED) Bytes() int { return q.bytes }

// Stats returns a copy of the discipline counters.
func (q *RED) Stats() Stats { return q.stats }
