package aqm

import (
	"testing"

	"hwatch/internal/netem"
	"hwatch/internal/sim"
	"hwatch/internal/tcp"
	"hwatch/internal/topo"
)

func TestCoDelNoActionBelowTarget(t *testing.T) {
	now := int64(0)
	q := NewCoDel(100, sim.Millisecond, 10*sim.Millisecond, false, func() int64 { return now })
	// Packets dequeued immediately (zero sojourn): never dropped.
	for i := 0; i < 100; i++ {
		p := pkt(1500, netem.NotECT)
		p.EnqueuedAt = now
		q.Enqueue(p)
		if q.Dequeue() == nil {
			t.Fatal("packet lost below target")
		}
	}
	if st := q.Stats(); st.EarlyDrop != 0 || st.Marked != 0 {
		t.Fatalf("action below target: %+v", st)
	}
}

func TestCoDelDropsUnderPersistentDelay(t *testing.T) {
	now := int64(0)
	target := sim.Millisecond
	interval := 10 * sim.Millisecond
	q := NewCoDel(10000, target, interval, false, func() int64 { return now })

	// Persistent standing queue: keep ~50 packets queued, each having
	// waited 5 ms (far above target), across many intervals.
	for i := 0; i < 50; i++ {
		p := pkt(1500, netem.NotECT)
		p.EnqueuedAt = now - 5*sim.Millisecond
		q.Enqueue(p)
	}
	firstHalf, secondHalf := int64(0), int64(0)
	for step := 0; step < 2000; step++ {
		p := pkt(1500, netem.NotECT)
		p.EnqueuedAt = now - 5*sim.Millisecond
		q.Enqueue(p)
		before := q.Stats().EarlyDrop
		q.Dequeue()
		d := q.Stats().EarlyDrop - before
		if step < 1000 {
			firstHalf += d
		} else {
			secondHalf += d
		}
		now += sim.Millisecond
	}
	if firstHalf+secondHalf == 0 {
		t.Fatal("CoDel never dropped under persistent excess delay")
	}
	// The whole point of the control law: the standing backlog is drained
	// away (the 50-packet prefill is gone, the queue runs shallow).
	if q.Len() > 5 {
		t.Fatalf("standing queue %d not drained by the drop schedule", q.Len())
	}
}

func TestCoDelMarksECN(t *testing.T) {
	now := int64(0)
	q := NewCoDel(10000, sim.Millisecond, 10*sim.Millisecond, true, func() int64 { return now })
	for i := 0; i < 50; i++ {
		p := pkt(1500, netem.ECT0)
		p.EnqueuedAt = now - 5*sim.Millisecond
		q.Enqueue(p)
	}
	for step := 0; step < 2000; step++ {
		p := pkt(1500, netem.ECT0)
		p.EnqueuedAt = now - 5*sim.Millisecond
		q.Enqueue(p)
		q.Dequeue()
		now += sim.Millisecond
	}
	st := q.Stats()
	if st.Marked == 0 {
		t.Fatal("ECN CoDel never marked")
	}
	if st.EarlyDrop != 0 {
		t.Fatalf("ECN CoDel dropped capable packets: %+v", st)
	}
}

func TestCoDelPhysicalOverflow(t *testing.T) {
	now := int64(0)
	q := NewCoDel(10, sim.Millisecond, 10*sim.Millisecond, false, func() int64 { return now })
	for i := 0; i < 20; i++ {
		q.Enqueue(pkt(1500, netem.NotECT))
	}
	if q.Len() != 10 || q.Stats().Dropped != 10 {
		t.Fatalf("len=%d dropped=%d", q.Len(), q.Stats().Dropped)
	}
}

func TestCoDelValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"nil clock":     func() { NewCoDel(10, 1, 1, false, nil) },
		"zero interval": func() { NewCoDel(10, 1, 0, false, func() int64 { return 0 }) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
	// Zero target defaults to interval/20.
	q := NewCoDel(10, 0, 20*sim.Millisecond, false, func() int64 { return 0 })
	if q.Target != sim.Millisecond {
		t.Fatalf("default target = %d", q.Target)
	}
}

func TestCoDelEndToEndKeepsDelayLow(t *testing.T) {
	// A long NewReno flow over CoDel must see far less standing queue than
	// over DropTail with the same buffer (bufferbloat control).
	run := func(codel bool) float64 {
		var bq netem.Queue
		var d *topo.Dumbbell
		mk := func() netem.Queue {
			if codel {
				bq = NewCoDel(1000, 0, 400*sim.Microsecond, false, func() int64 { return d.Net.Eng.Now() })
			} else {
				bq = NewDropTail(1000)
			}
			return bq
		}
		d = topo.NewDumbbell(topo.DumbbellConfig{
			Senders:       1,
			EdgeRateBps:   10e9,
			BottleneckBps: 1e9,
			LinkDelay:     25 * sim.Microsecond,
			BottleneckQ:   mk,
			EdgeQ:         func() netem.Queue { return NewDropTail(100000) },
		})
		cfg := tcp.DefaultConfig()
		d.Receiver.Listen(80, tcp.NewListener(d.Receiver, cfg, nil))
		tcp.NewSender(d.Senders[0], d.Receiver.ID, 80, tcp.Infinite, cfg).Start()
		sum, n := 0, 0
		var sample func()
		sample = func() {
			if d.Net.Eng.Now() > 50*sim.Millisecond {
				sum += bq.Len()
				n++
			}
			d.Net.Eng.Schedule(100*sim.Microsecond, sample)
		}
		d.Net.Eng.Schedule(0, sample)
		d.Net.Eng.RunUntil(300 * sim.Millisecond)
		return float64(sum) / float64(n)
	}
	bloated := run(false)
	controlled := run(true)
	if controlled >= bloated/3 {
		t.Fatalf("CoDel queue %.0f not well below DropTail %.0f", controlled, bloated)
	}
}
