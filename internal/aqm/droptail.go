package aqm

import "hwatch/internal/netem"

// DropTail is a plain FIFO with a capacity in packets and/or bytes
// (non-positive limit = unlimited in that dimension). It never marks.
type DropTail struct {
	fifo
	CapPkts  int
	CapBytes int
}

// NewDropTail returns a DropTail queue holding at most capPkts packets.
func NewDropTail(capPkts int) *DropTail {
	return &DropTail{CapPkts: capPkts}
}

// NewDropTailBytes returns a DropTail queue holding at most capBytes bytes.
func NewDropTailBytes(capBytes int) *DropTail {
	return &DropTail{CapBytes: capBytes}
}

// Enqueue implements netem.Queue.
func (q *DropTail) Enqueue(p *netem.Packet) bool {
	if q.CapPkts > 0 && q.len() >= q.CapPkts {
		q.stats.Dropped++
		return false
	}
	if q.CapBytes > 0 && q.bytes+p.Wire > q.CapBytes {
		q.stats.Dropped++
		return false
	}
	q.push(p)
	return true
}

// Dequeue implements netem.Queue.
func (q *DropTail) Dequeue() *netem.Packet { return q.pop() }

// Len implements netem.Queue.
func (q *DropTail) Len() int { return q.len() }

// Bytes implements netem.Queue.
func (q *DropTail) Bytes() int { return q.bytes }

// Stats returns a copy of the discipline counters.
func (q *DropTail) Stats() Stats { return q.stats }
