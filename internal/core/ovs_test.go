package core

import (
	"testing"

	"hwatch/internal/aqm"
	"hwatch/internal/netem"
	"hwatch/internal/sim"
	"hwatch/internal/tcp"
	"hwatch/internal/topo"
)

// The OvS-style deployment: one shim per physical server, shared by all of
// the server's VMs (Section IV-D of the paper).

func buildTwoServers(t *testing.T, cfg Config) (*netem.Network, *topo.VirtualizedServer, *topo.VirtualizedServer, *Shim, *Shim) {
	t.Helper()
	n := netem.NewNetwork()
	fabric := n.NewSwitch("tor")
	q := func() netem.Queue { return aqm.NewDropTailBytes(250 * 1500) }
	markq := func() netem.Queue { return aqm.NewMarkThresholdBytes(250*1500, 50*1500) }
	scfg := topo.VirtualizedServerConfig{
		VMs: 3, UplinkRate: 1e9, UplinkDelay: 25 * sim.Microsecond,
		VQ: q, UplinkQ: markq,
	}
	s1 := topo.AddVirtualizedServer(n, fabric, "srv1", scfg)
	s2 := topo.AddVirtualizedServer(n, fabric, "srv2", scfg)
	// Cross-server routes at each vSwitch.
	for _, vm := range s2.VMs {
		s1.RouteRemote(vm.ID)
	}
	for _, vm := range s1.VMs {
		s2.RouteRemote(vm.ID)
	}

	// One shim per server, attached to every VM (the OvS datapath).
	sh1 := NewShim(n.Eng, cfg, 1)
	for _, vm := range s1.VMs {
		sh1.AttachHost(vm)
	}
	sh2 := NewShim(n.Eng, cfg, 2)
	for _, vm := range s2.VMs {
		sh2.AttachHost(vm)
	}
	return n, s1, s2, sh1, sh2
}

func TestOvSShimCrossServerFlows(t *testing.T) {
	cfg := DefaultConfig(120 * sim.Microsecond)
	n, s1, s2, sh1, sh2 := buildTwoServers(t, cfg)
	tcfg := tcp.DefaultConfig()
	for _, vm := range s2.VMs {
		vm.Listen(port, tcp.NewListener(vm, tcfg, nil))
	}
	done := 0
	for i, vm := range s1.VMs {
		s := tcp.NewSender(vm, s2.VMs[i].ID, port, 50_000, tcfg)
		s.OnComplete = func(int64) { done++ }
		s.Start()
	}
	n.Eng.RunUntil(5 * sim.Second)
	if done != 3 {
		t.Fatalf("cross-server flows done %d/3", done)
	}
	// The *server* shims saw all three flows each, with shared tables.
	if sh1.TrackedFlows() != 0 && sh1.Stats().FlowsTracked != 3 {
		t.Fatalf("srv1 shim tracked %d flows", sh1.Stats().FlowsTracked)
	}
	if sh2.Stats().ProbesSeen != 3*int64(cfg.ProbeCount) {
		t.Fatalf("srv2 shim saw %d probes, want %d", sh2.Stats().ProbesSeen, 3*cfg.ProbeCount)
	}
	if sh1.Hosts() != 3 || sh2.Hosts() != 3 {
		t.Fatal("attachment counts wrong")
	}
}

func TestOvSShimIntraServerFlow(t *testing.T) {
	// VM0 -> VM1 on the same server: traffic turns around at the vSwitch;
	// the shared shim sees both the sender and receiver sides of the SAME
	// flow in one table (roles must not collide).
	cfg := DefaultConfig(120 * sim.Microsecond)
	n, s1, _, sh1, _ := buildTwoServers(t, cfg)
	tcfg := tcp.DefaultConfig()
	s1.VMs[1].Listen(port, tcp.NewListener(s1.VMs[1], tcfg, nil))
	done := false
	s := tcp.NewSender(s1.VMs[0], s1.VMs[1].ID, port, 100_000, tcfg)
	s.OnComplete = func(int64) { done = true }
	s.Start()
	n.Eng.RunUntil(5 * sim.Second)
	if !done {
		t.Fatalf("intra-server flow incomplete: %v", s)
	}
	st := sh1.Stats()
	// One flow, one probe train, consumed by the same shim's receiver side.
	if st.ProbesSent != int64(cfg.ProbeCount) || st.ProbesSeen != int64(cfg.ProbeCount) {
		t.Fatalf("intra-server probing broken: %+v", st)
	}
	if st.SynAcksStamped != 1 {
		t.Fatalf("SYN-ACK not stamped intra-server: %+v", st)
	}
}

func TestOvSSharedPacerAcrossVMs(t *testing.T) {
	// Connections to different VMs of one server share the server's
	// SYN-ACK token bucket: a burst across VMs must be paced.
	cfg := DefaultConfig(120 * sim.Microsecond)
	cfg.SynAckBurst = 1
	cfg.RefillEvery = 500 * sim.Microsecond
	n, s1, s2, _, sh2 := buildTwoServers(t, cfg)
	tcfg := tcp.DefaultConfig()
	for _, vm := range s2.VMs {
		vm.Listen(port, tcp.NewListener(vm, tcfg, nil))
	}
	done := 0
	for i := 0; i < 3; i++ {
		s := tcp.NewSender(s1.VMs[i], s2.VMs[i].ID, port, 10_000, tcfg)
		s.OnComplete = func(int64) { done++ }
		s.Start()
	}
	n.Eng.RunUntil(5 * sim.Second)
	if done != 3 {
		t.Fatalf("done %d/3", done)
	}
	if sh2.Stats().SynAcksPaced == 0 {
		t.Fatal("per-server pacer not shared across VMs")
	}
}
