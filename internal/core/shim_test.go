package core

import (
	"testing"

	"hwatch/internal/aqm"
	"hwatch/internal/netem"
	"hwatch/internal/sim"
	"hwatch/internal/tcp"
)

const port = 80

// rig is a dumbbell-lite with HWatch shims on both hosts and an
// instrumented bottleneck toward the receiver host b.
type rig struct {
	net        *netem.Network
	a, b       *netem.Host
	shimA      *Shim
	shimB      *Shim
	bottleneck netem.Queue
}

func newRig(t testing.TB, bottleneck netem.Queue, rateBps, delay int64, cfg Config) *rig {
	if t != nil {
		t.Helper()
	}
	n := netem.NewNetwork()
	a := n.NewHost("a")
	b := n.NewHost("b")
	sw := n.NewSwitch("sw")
	big := func() netem.Queue { return aqm.NewDropTail(100000) }
	n.LinkHostSwitch(a, sw, big(), big(), 10*rateBps, delay)
	down := netem.NewPort(n.Eng, bottleneck, rateBps, delay)
	down.Connect(b)
	sw.Route(b.ID, sw.AddPort(down))
	upB := netem.NewPort(n.Eng, big(), 10*rateBps, delay)
	upB.Connect(sw)
	b.AttachUplink(upB)
	return &rig{
		net: n, a: a, b: b,
		shimA:      Attach(a, cfg),
		shimB:      Attach(b, cfg),
		bottleneck: bottleneck,
	}
}

func testRTT(delay int64) int64 { return 4 * delay }

func TestTransferThroughShimsCompletes(t *testing.T) {
	delay := 25 * sim.Microsecond
	cfg := DefaultConfig(testRTT(delay))
	r := newRig(t, aqm.NewWRED(250, 50, 50, sim.NewRNG(3).Float64), 1e9, delay, cfg)
	tcfg := tcp.DefaultConfig()
	var recvs []*tcp.Receiver
	r.b.Listen(port, tcp.NewListener(r.b, tcfg, func(rc *tcp.Receiver) { recvs = append(recvs, rc) }))
	var fct int64 = -1
	s := tcp.NewSender(r.a, r.b.ID, port, 100_000, tcfg)
	s.OnComplete = func(d int64) { fct = d }
	s.Start()
	r.net.Eng.RunUntil(10 * sim.Second)

	if fct < 0 {
		t.Fatalf("flow did not complete through shims: %v", s)
	}
	if recvs[0].Delivered() != 100_000 {
		t.Fatalf("delivered %d", recvs[0].Delivered())
	}
	stA, stB := r.shimA.Stats(), r.shimB.Stats()
	if stA.SynsHeld != 1 || stA.ProbesSent != int64(cfg.ProbeCount) {
		t.Fatalf("sender shim did not probe: %+v", stA)
	}
	if stB.ProbesSeen != int64(cfg.ProbeCount) {
		t.Fatalf("receiver shim saw %d probes, want %d", stB.ProbesSeen, cfg.ProbeCount)
	}
	if stB.SynAcksStamped != 1 {
		t.Fatalf("SYN-ACK not stamped: %+v", stB)
	}
	// Probes never reach the guests.
	if r.b.Stats().Orphans != 0 {
		t.Fatalf("probes leaked to guest demux: %+v", r.b.Stats())
	}
}

func TestCleanPathKeepsDefaultICW(t *testing.T) {
	delay := 25 * sim.Microsecond
	cfg := DefaultConfig(testRTT(delay))
	r := newRig(t, aqm.NewWRED(250, 50, 50, sim.NewRNG(3).Float64), 10e9, delay, cfg)
	tcfg := tcp.DefaultConfig()
	r.b.Listen(port, tcp.NewListener(r.b, tcfg, nil))
	s := tcp.NewSender(r.a, r.b.ID, port, 1_000_000, tcfg)
	s.Start()
	// Let the handshake finish: probe span + 1 RTT + margin.
	r.net.Eng.RunUntil(cfg.ProbeSpan + testRTT(delay) + 50*sim.Microsecond)
	// On an idle path no probe is marked, so the start window must be the
	// stock ICW (10 segments), modulo ceil rounding to a window-scale unit.
	want := int64(cfg.DefaultICW * cfg.MSS)
	if got := s.PeerRwnd(); got < want || got >= want+64 {
		t.Fatalf("clean-path start window = %d bytes, want ~%d", got, want)
	}
	if r.shimB.Stats().ProbesMarked != 0 {
		t.Fatal("idle path marked probes")
	}
}

func TestCongestedPathShrinksStartWindow(t *testing.T) {
	delay := 25 * sim.Microsecond
	cfg := DefaultConfig(testRTT(delay))
	// Mark everything: WRED low=high=0 marks every capable packet.
	q := aqm.NewWRED(250, 0, 0, sim.NewRNG(3).Float64)
	r := newRig(t, q, 1e9, delay, cfg)
	tcfg := tcp.DefaultConfig()
	r.b.Listen(port, tcp.NewListener(r.b, tcfg, nil))
	s := tcp.NewSender(r.a, r.b.ID, port, 1_000_000, tcfg)
	s.Start()
	r.net.Eng.RunUntil(cfg.ProbeSpan + testRTT(delay) + 50*sim.Microsecond)
	// All probes marked: the cautious default grants the minimum window
	// of one segment, modulo ceil rounding to a window-scale unit.
	want := int64(cfg.MinWndSegs) * int64(cfg.MSS)
	if got := s.PeerRwnd(); got < want || got >= want+64 {
		t.Fatalf("congested start window = %d, want ~%d", got, want)
	}
	if st := r.shimB.Stats(); st.ProbesMarked != int64(cfg.ProbeCount) {
		t.Fatalf("probes marked = %d, want all %d", st.ProbesMarked, cfg.ProbeCount)
	}
}

func TestCongestedStartWithMergedCredit(t *testing.T) {
	// With the Corollary IV.2.2 credit, a fully marked probe train still
	// grants half the default window (ICW * (M/2)/P = 5 segments).
	delay := 25 * sim.Microsecond
	cfg := DefaultConfig(testRTT(delay))
	cfg.StartMarkedCredit = 0.5
	q := aqm.NewWRED(250, 0, 0, sim.NewRNG(3).Float64)
	r := newRig(t, q, 1e9, delay, cfg)
	tcfg := tcp.DefaultConfig()
	r.b.Listen(port, tcp.NewListener(r.b, tcfg, nil))
	s := tcp.NewSender(r.a, r.b.ID, port, 1_000_000, tcfg)
	s.Start()
	r.net.Eng.RunUntil(cfg.ProbeSpan + testRTT(delay) + 50*sim.Microsecond)
	want := int64(cfg.DefaultICW/2) * int64(cfg.MSS)
	if got := s.PeerRwnd(); got < want || got >= want+64 {
		t.Fatalf("merged-credit start window = %d, want ~%d", got, want)
	}
}

func TestDyeAndClear(t *testing.T) {
	delay := 25 * sim.Microsecond
	cfg := DefaultConfig(testRTT(delay))
	// Low threshold so data is marked; plain (non-ECN) guests.
	r := newRig(t, aqm.NewWRED(250, 5, 5, sim.NewRNG(3).Float64), 1e9, delay, cfg)
	tcfg := tcp.DefaultConfig() // ECN off in guests
	var recvs []*tcp.Receiver
	r.b.Listen(port, tcp.NewListener(r.b, tcfg, func(rc *tcp.Receiver) { recvs = append(recvs, rc) }))
	s := tcp.NewSender(r.a, r.b.ID, port, tcp.Infinite, tcfg)
	s.Start()
	r.net.Eng.RunUntil(200 * sim.Millisecond)

	stA, stB := r.shimA.Stats(), r.shimB.Stats()
	if stA.Dyed == 0 {
		t.Fatal("sender shim never dyed non-ECN data ECT")
	}
	if stB.CECleared == 0 {
		t.Fatal("receiver shim never cleared CE (so marks never happened?)")
	}
	// The guest receiver must never observe a CE mark.
	if recvs[0].MarksSeen() != 0 {
		t.Fatalf("guest saw %d CE marks despite dyeing", recvs[0].MarksSeen())
	}
	if stB.RwndRewrites == 0 {
		t.Fatal("Rule 1 never clamped an ACK window")
	}
	if stB.EpochsClosed == 0 {
		t.Fatal("no Rule 1 epochs closed")
	}
}

func TestGuestECNNotRepainted(t *testing.T) {
	delay := 25 * sim.Microsecond
	cfg := DefaultConfig(testRTT(delay))
	r := newRig(t, aqm.NewMarkThreshold(250, 20), 1e9, delay, cfg)
	tcfg := tcp.DCTCPConfig() // guest handles ECN itself
	var recvs []*tcp.Receiver
	r.b.Listen(port, tcp.NewListener(r.b, tcfg, func(rc *tcp.Receiver) { recvs = append(recvs, rc) }))
	s := tcp.NewSender(r.a, r.b.ID, port, tcp.Infinite, tcfg)
	s.Start()
	r.net.Eng.RunUntil(100 * sim.Millisecond)
	stA, stB := r.shimA.Stats(), r.shimB.Stats()
	if stA.Dyed != 0 {
		t.Fatalf("shim dyed %d packets of an ECN guest", stA.Dyed)
	}
	if stB.CECleared != 0 {
		t.Fatalf("shim cleared %d CE marks a DCTCP guest needed", stB.CECleared)
	}
	if recvs[0].MarksSeen() == 0 {
		t.Fatal("DCTCP guest should be seeing marks through the shim")
	}
}

func TestRule1ThrottlesLongFlow(t *testing.T) {
	delay := 25 * sim.Microsecond
	cfg := DefaultConfig(testRTT(delay))
	q := aqm.NewWRED(250, 50, 50, sim.NewRNG(3).Float64)
	r := newRig(t, q, 1e9, delay, cfg)
	tcfg := tcp.DefaultConfig()
	r.b.Listen(port, tcp.NewListener(r.b, tcfg, nil))
	s := tcp.NewSender(r.a, r.b.ID, port, tcp.Infinite, tcfg)
	s.Start()

	// Sample the standing queue after convergence.
	var sum, n, peak int
	var sample func()
	sample = func() {
		if r.net.Eng.Now() > 100*sim.Millisecond {
			v := q.Len()
			sum += v
			n++
			if v > peak {
				peak = v
			}
		}
		r.net.Eng.Schedule(100*sim.Microsecond, sample)
	}
	r.net.Eng.Schedule(0, sample)
	r.net.Eng.RunUntil(400 * sim.Millisecond)

	if st := s.Stats(); st.Timeouts != 0 {
		t.Fatalf("HWatch long flow hit RTO: %+v", st)
	}
	avg := float64(sum) / float64(n)
	// Queue must be regulated near the marking threshold (50), never near
	// the 250 buffer; plain NewReno would bloat to ~250 here.
	if avg > 120 {
		t.Fatalf("standing queue %.0f pkts: Rule 1 not regulating", avg)
	}
	if peak >= 250 {
		t.Fatal("buffer filled despite Rule 1")
	}
	if q.Stats().Dropped != 0 {
		t.Fatalf("drops under Rule 1 regulation: %+v", q.Stats())
	}
}

func TestSynAckPacingStaggersIncast(t *testing.T) {
	// Many simultaneous connections to one host: the receiver shim's token
	// bucket must pace some SYN-ACKs.
	delay := 20 * sim.Microsecond
	n := netem.NewNetwork()
	sw := n.NewSwitch("tor")
	dst := n.NewHost("agg")
	big := func() netem.Queue { return aqm.NewDropTail(100000) }
	down := netem.NewPort(n.Eng, aqm.NewWRED(100, 20, 20, sim.NewRNG(4).Float64), 1e9, delay)
	down.Connect(dst)
	sw.Route(dst.ID, sw.AddPort(down))
	up := netem.NewPort(n.Eng, big(), 1e9, delay)
	up.Connect(sw)
	dst.AttachUplink(up)

	cfg := DefaultConfig(testRTT(delay))
	cfg.SynAckBurst = 2
	cfg.RefillEvery = 200 * sim.Microsecond
	shimDst := Attach(dst, cfg)

	tcfg := tcp.DefaultConfig()
	dst.Listen(port, tcp.NewListener(dst, tcfg, nil))
	completed := 0
	const flows = 12
	for i := 0; i < flows; i++ {
		h := n.NewHost("")
		n.LinkHostSwitch(h, sw, big(), big(), 1e9, delay)
		Attach(h, cfg)
		s := tcp.NewSender(h, dst.ID, port, 10_000, tcfg)
		s.OnComplete = func(int64) { completed++ }
		s.Start()
	}
	n.Eng.RunUntil(5 * sim.Second)
	if completed != flows {
		t.Fatalf("completed %d/%d", completed, flows)
	}
	if st := shimDst.Stats(); st.SynAcksPaced == 0 {
		t.Fatalf("no SYN-ACKs paced in a %d-flow burst: %+v", flows, st)
	}
}

func TestFlowTableLifecycle(t *testing.T) {
	delay := 25 * sim.Microsecond
	cfg := DefaultConfig(testRTT(delay))
	r := newRig(t, aqm.NewDropTail(250), 1e9, delay, cfg)
	tcfg := tcp.DefaultConfig()
	r.b.Listen(port, tcp.NewListener(r.b, tcfg, nil))
	done := 0
	for i := 0; i < 5; i++ {
		s := tcp.NewSender(r.a, r.b.ID, port, 20_000, tcfg)
		s.OnComplete = func(int64) { done++ }
		s.Start()
	}
	r.net.Eng.RunUntil(5 * sim.Second)
	if done != 5 {
		t.Fatalf("done = %d", done)
	}
	// FINs must have expired every entry on both shims.
	if n := r.shimA.TrackedFlows(); n != 0 {
		t.Fatalf("sender shim still tracks %d flows after close", n)
	}
	if n := r.shimB.TrackedFlows(); n != 0 {
		t.Fatalf("receiver shim still tracks %d flows after close", n)
	}
	if st := r.shimB.Stats(); st.FlowsExpired == 0 {
		t.Fatal("no expiries recorded")
	}
}

func TestChecksumsSurviveRewrites(t *testing.T) {
	// Every packet arriving at either guest must checksum-verify even
	// after the shim's rwnd/ECN rewrites.
	delay := 25 * sim.Microsecond
	cfg := DefaultConfig(testRTT(delay))
	r := newRig(t, aqm.NewWRED(250, 10, 10, sim.NewRNG(5).Float64), 1e9, delay, cfg)
	bad := 0
	check := &checksumChecker{onBad: func() { bad++ }}
	// Install *after* the shims so inbound runs post-shim... filter order
	// is chain order; AddFilter appends, so checker sees post-shim packets
	// on ingress and pre-shim on egress; add a pre-shim checker too.
	r.a.AddFilter(check)
	r.b.AddFilter(check)
	tcfg := tcp.DefaultConfig()
	r.b.Listen(port, tcp.NewListener(r.b, tcfg, nil))
	s := tcp.NewSender(r.a, r.b.ID, port, 300_000, tcfg)
	s.Start()
	r.net.Eng.RunUntil(5 * sim.Second)
	if !s.Done() {
		t.Fatal("flow incomplete")
	}
	if bad != 0 {
		t.Fatalf("%d packets failed checksum after shim rewrites", bad)
	}
	if r.shimB.Stats().RwndRewrites == 0 {
		t.Fatal("test exercised no rewrites")
	}
}

type checksumChecker struct{ onBad func() }

func (c *checksumChecker) Name() string { return "cksum" }
func (c *checksumChecker) Inbound(p *netem.Packet) netem.Verdict {
	if !netem.VerifyChecksum(p) {
		c.onBad()
	}
	return netem.VerdictPass
}
func (c *checksumChecker) Outbound(p *netem.Packet) netem.Verdict {
	if !netem.VerifyChecksum(p) {
		c.onBad()
	}
	return netem.VerdictPass
}

func TestProbesDisabled(t *testing.T) {
	delay := 25 * sim.Microsecond
	cfg := DefaultConfig(testRTT(delay))
	cfg.ProbeCount = 0
	r := newRig(t, aqm.NewDropTail(250), 1e9, delay, cfg)
	tcfg := tcp.DefaultConfig()
	r.b.Listen(port, tcp.NewListener(r.b, tcfg, nil))
	done := false
	s := tcp.NewSender(r.a, r.b.ID, port, 10_000, tcfg)
	s.OnComplete = func(int64) { done = true }
	s.Start()
	r.net.Eng.RunUntil(sim.Second)
	if !done {
		t.Fatal("flow incomplete with probing off")
	}
	if st := r.shimA.Stats(); st.ProbesSent != 0 || st.SynsHeld != 0 {
		t.Fatalf("probing artifacts with ProbeCount=0: %+v", st)
	}
}

func TestTokenBucket(t *testing.T) {
	b := newTokenBucket(2, 100)
	if d := b.take(0); d != 0 {
		t.Fatalf("first take delayed %d", d)
	}
	if d := b.take(0); d != 0 {
		t.Fatalf("second take delayed %d", d)
	}
	d3 := b.take(0)
	if d3 <= 0 || d3 > 100 {
		t.Fatalf("third take delay = %d, want (0,100]", d3)
	}
	d4 := b.take(0)
	if d4 <= d3 {
		t.Fatalf("fourth reservation %d not after third %d (must queue FIFO)", d4, d3)
	}
	// After a long idle period the bucket refills to burst, not beyond.
	b2 := newTokenBucket(2, 100)
	b2.take(0)
	b2.take(0)
	if d := b2.take(10_000); d != 0 {
		t.Fatalf("bucket did not refill across idle: %d", d)
	}
	// Disabled bucket never delays.
	b3 := newTokenBucket(0, 100)
	for i := 0; i < 10; i++ {
		if b3.take(int64(i)) != 0 {
			t.Fatal("disabled bucket delayed")
		}
	}
}

func TestUpdateHelpersPreserveChecksum(t *testing.T) {
	p := &netem.Packet{
		Src: 1, Dst: 2, SrcPort: 3, DstPort: 4, Seq: 5, Ack: 6,
		Flags: netem.FlagACK, ECN: netem.ECT0, Rwnd: 1000, WScaleOpt: -1,
	}
	netem.SetChecksum(p)
	updateECN(p, netem.CE)
	if !netem.VerifyChecksum(p) {
		t.Fatal("updateECN broke the checksum")
	}
	updateRwnd(p, 7)
	if !netem.VerifyChecksum(p) {
		t.Fatal("updateRwnd broke the checksum")
	}
	updateECN(p, netem.ECT0)
	updateRwnd(p, 65535)
	if !netem.VerifyChecksum(p) {
		t.Fatal("chained updates broke the checksum")
	}
}

func TestEncodeCeil(t *testing.T) {
	if encodeCeil(1442, 5) != 46 { // ceil(1442/32) = 46 -> 1472 bytes
		t.Fatalf("encodeCeil(1442,5) = %d", encodeCeil(1442, 5))
	}
	if got := int64(encodeCeil(1442, 5)) << 5; got < 1442 {
		t.Fatalf("ceil encoding decoded below input: %d", got)
	}
	if encodeCeil(1<<30, 5) != 0xffff {
		t.Fatal("saturation")
	}
	if encodeCeil(0, 3) != 0 {
		t.Fatal("zero")
	}
}

func TestFlowTableIdleGC(t *testing.T) {
	delay := 25 * sim.Microsecond
	cfg := DefaultConfig(testRTT(delay))
	cfg.IdleTimeout = 50 * sim.Millisecond
	cfg.GCInterval = 10 * sim.Millisecond
	r := newRig(t, aqm.NewDropTail(250), 1e9, delay, cfg)
	tcfg := tcp.DefaultConfig()
	r.b.Listen(port, tcp.NewListener(r.b, tcfg, nil))
	// A flow whose sender dies mid-transfer (no FIN ever).
	s := tcp.NewSender(r.a, r.b.ID, port, tcp.Infinite, tcfg)
	s.Start()
	r.net.Eng.RunUntil(20 * sim.Millisecond)
	if r.shimA.TrackedFlows() == 0 || r.shimB.TrackedFlows() == 0 {
		t.Fatal("setup: flow not tracked")
	}
	s.Abort() // RST also expires entries; kill the ACK stream either way
	r.net.Eng.RunUntil(500 * sim.Millisecond)
	if n := r.shimA.TrackedFlows(); n != 0 {
		t.Fatalf("sender shim leaked %d idle entries", n)
	}
	if n := r.shimB.TrackedFlows(); n != 0 {
		t.Fatalf("receiver shim leaked %d idle entries", n)
	}
}

func TestSnapshot(t *testing.T) {
	delay := 25 * sim.Microsecond
	cfg := DefaultConfig(testRTT(delay))
	r := newRig(t, aqm.NewDropTail(250), 1e9, delay, cfg)
	tcfg := tcp.DefaultConfig()
	r.b.Listen(port, tcp.NewListener(r.b, tcfg, nil))
	s1 := tcp.NewSender(r.a, r.b.ID, port, tcp.Infinite, tcfg)
	s2 := tcp.NewSender(r.a, r.b.ID, port, tcp.Infinite, tcfg)
	s1.Start()
	s2.Start()
	r.net.Eng.RunUntil(20 * sim.Millisecond)

	snapA := r.shimA.Snapshot()
	snapB := r.shimB.Snapshot()
	if len(snapA) != 2 || len(snapB) != 2 {
		t.Fatalf("snapshots: A=%d B=%d, want 2 each", len(snapA), len(snapB))
	}
	if snapA[0].Receiver || !snapB[0].Receiver {
		t.Fatal("roles wrong in snapshots")
	}
	// Sorted by 4-tuple: the two flows differ in source port.
	if snapA[0].Key.SrcPort >= snapA[1].Key.SrcPort {
		t.Fatal("snapshot not sorted")
	}
	for _, fi := range snapB {
		if fi.ProbesSeen != cfg.ProbeCount {
			t.Fatalf("receiver snapshot missing probes: %+v", fi)
		}
		if fi.WndSegs < 1 {
			t.Fatalf("window verdict missing: %+v", fi)
		}
	}
}

func TestProbeLossTolerated(t *testing.T) {
	// Probes crossing a congested fabric can be lost outright; the
	// receiver shim must stamp the SYN-ACK from the probes it did see and
	// the flow must proceed. The dropper sits on b's ingress chain ahead
	// of the shim (probes bypass sender-side egress filters by design).
	delay := 25 * sim.Microsecond
	cfg := DefaultConfig(testRTT(delay))
	n := netem.NewNetwork()
	a := n.NewHost("a")
	b := n.NewHost("b")
	sw := n.NewSwitch("sw")
	big := func() netem.Queue { return aqm.NewDropTail(100000) }
	n.LinkHostSwitch(a, sw, big(), big(), 1e9, delay)
	n.LinkHostSwitch(b, sw, big(), big(), 1e9, delay)
	b.AddFilter(&probeDropper{every: 2}) // BEFORE the shim
	Attach(a, cfg)
	shimB := Attach(b, cfg)

	tcfg := tcp.DefaultConfig()
	b.Listen(port, tcp.NewListener(b, tcfg, nil))
	done := false
	s := tcp.NewSender(a, b.ID, port, 20_000, tcfg)
	s.OnComplete = func(int64) { done = true }
	s.Start()
	n.Eng.RunUntil(2 * sim.Second)
	if !done {
		t.Fatal("flow incomplete under probe loss")
	}
	st := shimB.Stats()
	if st.SynAcksStamped != 1 {
		t.Fatalf("SYN-ACK not stamped under probe loss: %+v", st)
	}
	if st.ProbesSeen == 0 || st.ProbesSeen >= int64(cfg.ProbeCount) {
		t.Fatalf("probe dropper ineffective: saw %d", st.ProbesSeen)
	}
}

type probeDropper struct {
	every int
	n     int
}

func (f *probeDropper) Name() string { return "probedrop" }
func (f *probeDropper) Outbound(p *netem.Packet) netem.Verdict {
	return netem.VerdictPass
}
func (f *probeDropper) Inbound(p *netem.Packet) netem.Verdict {
	if p.Probe {
		f.n++
		if f.n%f.every == 0 {
			return netem.VerdictDrop
		}
	}
	return netem.VerdictPass
}

func TestTombstoneBlocksStaleRemint(t *testing.T) {
	// A probe or duplicated SYN delayed past a removed row's linger window
	// (reorder/jitter chaos holds packets for milliseconds) must not
	// re-mint a receiver row: probe trains only exist at flow start, so
	// nothing would ever close it again.
	delay := 25 * sim.Microsecond
	cfg := DefaultConfig(testRTT(delay))
	r := newRig(t, aqm.NewDropTail(1000), 1e9, delay, cfg)
	tcfg := tcp.DefaultConfig()
	r.b.Listen(port, tcp.NewListener(r.b, tcfg, nil))
	s := tcp.NewSender(r.a, r.b.ID, port, 50_000, tcfg)
	s.Start()
	r.net.Eng.RunUntil(10 * sim.Millisecond)
	if !s.Done() {
		t.Fatal("flow did not complete")
	}
	if n := r.shimB.TrackedFlows(); n != 0 {
		t.Fatalf("receiver table still holds %d rows after linger", n)
	}

	key := s.FlowKey()
	straggler := func(probe bool) *netem.Packet {
		p := netem.AllocPacket()
		p.ID = r.a.NextPacketID()
		p.Src, p.Dst = key.Src, key.Dst
		p.SrcPort, p.DstPort = key.SrcPort, key.DstPort
		p.ECN = netem.ECT0
		p.WScaleOpt = -1
		if probe {
			p.Probe = true
		} else {
			p.Flags = netem.FlagSYN
		}
		netem.SetChecksum(p)
		return p
	}

	if v := r.shimB.inbound(straggler(true)); v != netem.VerdictStolen {
		t.Fatalf("stale probe verdict = %v, want stolen", v)
	}
	synDup := straggler(false)
	if v := r.shimB.inbound(synDup); v != netem.VerdictPass {
		t.Fatalf("stale SYN verdict = %v, want pass", v)
	}
	netem.ReleasePacket(synDup)
	if n := r.shimB.TrackedFlows(); n != 0 {
		t.Fatalf("straggler re-minted a flow row (%d tracked)", n)
	}
	if got := r.shimB.Stats().StaleRemints; got != 2 {
		t.Fatalf("StaleRemints = %d, want 2", got)
	}

	// The tombstone has a bounded lifetime: past the TTL the guard steps
	// aside (a straggler that late is the idle sweep's problem).
	r.net.Eng.RunUntil(10*sim.Millisecond + tombstoneTTL + sim.Millisecond)
	if v := r.shimB.inbound(straggler(true)); v != netem.VerdictStolen {
		t.Fatalf("late probe verdict = %v, want stolen", v)
	}
	if n := r.shimB.TrackedFlows(); n != 1 {
		t.Fatalf("post-TTL probe tracked %d rows, want 1 (guard must expire)", n)
	}
}

func TestTombstonePruneAndCrashWipe(t *testing.T) {
	eng := sim.New()
	s := NewShim(eng, DefaultConfig(100*sim.Microsecond), 0)
	k1 := netem.FlowKey{Src: 1, Dst: 2, SrcPort: 33000, DstPort: 80}
	k2 := netem.FlowKey{Src: 1, Dst: 2, SrcPort: 33001, DstPort: 80}
	s.entomb(k1)
	if !s.tombstoned(k1) {
		t.Fatal("fresh tombstone not visible")
	}
	eng.RunUntil(tombstoneTTL + sim.Millisecond)
	if s.tombstoned(k1) {
		t.Fatal("tombstone survived past the TTL")
	}
	s.entomb(k2) // prunes k1 from both map and queue
	if len(s.tombs) != 1 || len(s.tombQ) != 1 {
		t.Fatalf("prune left %d map entries, %d queued", len(s.tombs), len(s.tombQ))
	}
	s.Crash()
	if s.tombs != nil || s.tombQ != nil {
		t.Fatal("crash did not wipe tombstones")
	}
}
