package core

import (
	"testing"

	"hwatch/internal/aqm"
	"hwatch/internal/netem"
	"hwatch/internal/sim"
	"hwatch/internal/tcp"
)

// TestShimCrashAndRestart models the hypervisor module dying mid-connection
// (the implementation paper's reload hazard): the flow table is wiped,
// in-flight transfers complete untouched, and a restarted shim processes
// new connections from a cold table.
func TestShimCrashAndRestart(t *testing.T) {
	delay := 25 * sim.Microsecond
	cfg := DefaultConfig(testRTT(delay))
	r := newRig(t, aqm.NewDropTail(1000), 1e9, delay, cfg)
	tcfg := tcp.DefaultConfig()
	r.b.Listen(port, tcp.NewListener(r.b, tcfg, nil))

	done := make([]bool, 2)
	s1 := tcp.NewSender(r.a, r.b.ID, port, 500_000, tcfg)
	s1.OnComplete = func(int64) { done[0] = true }
	s1.Start()

	eng := r.net.Eng
	// Crash both shims while the first transfer is in flight.
	eng.At(1*sim.Millisecond, func() {
		r.shimA.Crash()
		r.shimB.Crash()
		if r.shimA.TrackedFlows() != 0 || r.shimB.TrackedFlows() != 0 {
			t.Errorf("crash left tracked flows: A=%d B=%d",
				r.shimA.TrackedFlows(), r.shimB.TrackedFlows())
		}
	})
	// Restart, then open a second connection that must be probed normally.
	eng.At(50*sim.Millisecond, func() {
		r.shimA.Restart()
		r.shimB.Restart()
	})
	eng.At(60*sim.Millisecond, func() {
		s2 := tcp.NewSender(r.a, r.b.ID, port, 20_000, tcfg)
		s2.OnComplete = func(int64) { done[1] = true }
		s2.Start()
	})
	eng.RunUntil(5 * sim.Second)

	if !done[0] {
		t.Fatal("in-flight transfer did not survive the shim crash")
	}
	if !done[1] {
		t.Fatal("post-restart transfer did not complete")
	}
	stA, stB := r.shimA.Stats(), r.shimB.Stats()
	if stA.Crashes != 1 || stA.Restarts != 1 || stB.Crashes != 1 || stB.Restarts != 1 {
		t.Fatalf("crash/restart counters wrong: A=%+v B=%+v", stA, stB)
	}
	// The second connection was probed and stamped by the reborn shims.
	if stA.SynsHeld != 2 {
		t.Fatalf("restarted sender shim held %d SYNs, want 2", stA.SynsHeld)
	}
	if stB.SynAcksStamped != 2 {
		t.Fatalf("restarted receiver shim stamped %d SYN-ACKs, want 2", stB.SynAcksStamped)
	}
	if r.shimA.Crashed() || r.shimB.Crashed() {
		t.Fatal("shims still report crashed after Restart")
	}
}

// TestProbeLossFallbackPassesThrough: with the whole probe train lost and
// the fallback armed, the SYN-ACK goes out unstamped (no DefaultICW clamp
// on zero evidence) and the flow runs unclamped.
func TestProbeLossFallbackPassesThrough(t *testing.T) {
	delay := 25 * sim.Microsecond
	cfg := DefaultConfig(testRTT(delay))
	cfg.ProbeLossFallback = true
	n := netem.NewNetwork()
	a := n.NewHost("a")
	b := n.NewHost("b")
	sw := n.NewSwitch("sw")
	big := func() netem.Queue { return aqm.NewDropTail(100000) }
	n.LinkHostSwitch(a, sw, big(), big(), 1e9, delay)
	n.LinkHostSwitch(b, sw, big(), big(), 1e9, delay)
	b.AddFilter(&probeDropper{every: 1}) // BEFORE the shim: eats every probe
	Attach(a, cfg)
	shimB := Attach(b, cfg)

	tcfg := tcp.DefaultConfig()
	b.Listen(port, tcp.NewListener(b, tcfg, nil))
	done := false
	s := tcp.NewSender(a, b.ID, port, 50_000, tcfg)
	s.OnComplete = func(int64) { done = true }
	s.Start()
	n.Eng.RunUntil(2 * sim.Second)

	if !done {
		t.Fatal("flow incomplete under total probe loss")
	}
	st := shimB.Stats()
	if st.ProbesSeen != 0 {
		t.Fatalf("dropper leaked %d probes; test premise broken", st.ProbesSeen)
	}
	if st.ProbeFallbacks != 1 {
		t.Fatalf("ProbeFallbacks = %d, want 1", st.ProbeFallbacks)
	}
	if st.SynAcksStamped != 0 {
		t.Fatalf("SYN-ACK stamped despite fallback: %+v", st)
	}
	if st.RwndRewrites != 0 {
		t.Fatalf("fallback flow was still clamped %d times", st.RwndRewrites)
	}
}

// TestEcnDarkReleasesClamp drives closeEpoch directly: after EcnDarkEpochs
// consecutive mark-free data epochs the clamp doubles per epoch toward
// MaxWndSegs, and a single marked epoch snaps it back to the Next Fit
// verdict.
func TestEcnDarkReleasesClamp(t *testing.T) {
	eng := sim.New()
	cfg := DefaultConfig(100 * sim.Microsecond)
	cfg.EcnDarkEpochs = 3
	s := NewShim(eng, cfg, 0)
	key := netem.FlowKey{Src: 1, Dst: 2, SrcPort: 1000, DstPort: 80}
	e, _ := s.table.ensure(key, roleReceiver)
	e.wndSegs = 2

	// Epochs 1-2 are below the dark threshold (and off the GrowthEvery=4
	// cadence); from epoch 3 on the clamp doubles.
	wantW := []int{2, 2, 2, 4, 8, 16}
	for i, want := range wantW {
		if i > 0 {
			e.unmarked = 5 // data flowed, no marks
			s.closeEpoch(e)
		}
		if e.wndSegs != want {
			t.Fatalf("after %d clean epochs: wndSegs = %d, want %d", i, e.wndSegs, want)
		}
	}
	if st := s.Stats(); st.DarkReleases != 3 {
		t.Fatalf("DarkReleases = %d, want 3", st.DarkReleases)
	}

	// ECN comes back: one marked epoch re-tightens to the Next Fit verdict.
	e.marked, e.unmarked = 6, 4
	s.closeEpoch(e)
	if e.wndSegs >= 16 {
		t.Fatalf("marked epoch did not re-tighten: wndSegs = %d", e.wndSegs)
	}
	if e.cleanEpochs != 0 {
		t.Fatalf("marked epoch left cleanEpochs = %d", e.cleanEpochs)
	}

	// The release saturates at MaxWndSegs and stops counting.
	cfg2 := DefaultConfig(100 * sim.Microsecond)
	cfg2.EcnDarkEpochs = 1
	cfg2.MaxWndSegs = 8
	s2 := NewShim(eng, cfg2, 0)
	e2, _ := s2.table.ensure(key, roleReceiver)
	e2.wndSegs = 3
	for i := 0; i < 5; i++ {
		e2.unmarked = 1
		s2.closeEpoch(e2)
	}
	if e2.wndSegs != 8 {
		t.Fatalf("release overshot MaxWndSegs: %d", e2.wndSegs)
	}
	if st := s2.Stats(); st.DarkReleases != 2 { // 3 -> 6 -> 8(cap), then idle
		t.Fatalf("saturated release kept counting: DarkReleases = %d", st.DarkReleases)
	}
}

// TestInboundRSTExpiresSenderEntry: a RST from the remote end must drop
// the sender-side table row immediately — the local guest will never send
// the FIN the outbound cleanup path relies on.
func TestInboundRSTExpiresSenderEntry(t *testing.T) {
	eng := sim.New()
	cfg := DefaultConfig(100 * sim.Microsecond)
	s := NewShim(eng, cfg, 0)
	key := netem.FlowKey{Src: 1, Dst: 2, SrcPort: 1000, DstPort: 80}
	e, _ := s.table.ensure(key, roleSender)
	s.stats.FlowsTracked++

	// The RST travels receiver -> sender, i.e. on the reversed 4-tuple.
	rst := &netem.Packet{
		Src: key.Dst, Dst: key.Src,
		SrcPort: key.DstPort, DstPort: key.SrcPort,
		Flags: netem.FlagRST | netem.FlagACK,
	}
	if v := s.inbound(rst); v != netem.VerdictPass {
		t.Fatalf("inbound RST verdict %v", v)
	}
	if !e.closed {
		t.Fatal("sender entry not closed by inbound RST")
	}
	eng.RunUntil(sim.Second) // linger elapses
	if s.table.len() != 0 {
		t.Fatalf("RST'd flow leaked %d entries", s.table.len())
	}
	if st := s.Stats(); st.FlowsExpired != 1 {
		t.Fatalf("FlowsExpired = %d, want 1", st.FlowsExpired)
	}
}

// TestCrashedFlowEntryExpires: a guest that dies silently (no FIN, no RST)
// must not leak its row past the idle GC; a shim crash wipes rows at once.
func TestCrashedFlowEntryExpires(t *testing.T) {
	eng := sim.New()
	cfg := DefaultConfig(100 * sim.Microsecond)
	cfg.IdleTimeout = 10 * sim.Millisecond
	cfg.GCInterval = 2 * sim.Millisecond
	s := NewShim(eng, cfg, 0)
	key := netem.FlowKey{Src: 3, Dst: 4, SrcPort: 2000, DstPort: 80}
	e, _ := s.table.ensure(key, roleSender)
	e.lastActive = eng.Now()

	eng.RunUntil(50 * sim.Millisecond)
	if s.table.len() != 0 {
		t.Fatalf("silent flow survived idle GC: %d entries", s.table.len())
	}

	// And a crash drops everything instantly, idle or not.
	s2 := NewShim(eng, cfg, 1)
	s2.table.ensure(key, roleReceiver)
	s2.Crash()
	if s2.table.len() != 0 {
		t.Fatalf("crash left %d entries", s2.table.len())
	}
}
