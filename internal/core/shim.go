package core

import (
	"sort"

	"hwatch/internal/binpack"
	"hwatch/internal/netem"
	"hwatch/internal/sim"
)

// Shim is the HWatch hypervisor module for one physical server. It plays
// the sender-side role (probing, SYN holding) for flows the local guests
// originate and the receiver-side role (mark accounting, rwnd stamping,
// SYN-ACK pacing) for flows the local guests terminate — exactly as in
// the paper, where the module is deployed at both ends.
//
// A Shim attaches to one or more netem.Hosts. One-host attachment models
// the NetFilter deployment; attaching several hosts (guest VMs on one
// server) models the patched-OvS datapath, where a single kernel module —
// one flow table, one SYN-ACK pacer, one statistics block — processes
// inter-VM, intra-host and inter-host traffic for the whole server
// (Section IV-D).
type Shim struct {
	cfg     Config
	eng     *sim.Engine
	rng     *sim.RNG
	table   *flowTable
	bucket  *tokenBucket
	stats   Stats
	hosts   int
	crashed bool

	// Tombstones of recently removed rows. Network impairments (reorder
	// holds, jitter, duplication) can delay a packet past the row's linger
	// window; a straggler probe or SYN arriving after removal would
	// otherwise re-mint a receiver row that no FIN will ever close (probe
	// trains only exist at flow start), leaking it until the idle sweep.
	// Ephemeral ports are allocated monotonically per host, so within the
	// TTL a tombstoned key can only refer to the removed flow, never to a
	// legitimate new one. Lookup-only on packet paths: no events, no RNG.
	tombs map[netem.FlowKey]int64
	tombQ []tombstone

	// Bound callbacks cached at construction so the per-flow timers
	// (epoch close, post-expiry linger) and the periodic GC sweep schedule
	// without allocating a closure per event (DESIGN.md §6e).
	closeEpochFn func(any)
	removeFn     func(any)
	gcSweepFn    func()
}

// Attach builds a Shim and installs it on the host's filter chains (the
// NetFilter-style single-host deployment).
func Attach(host *netem.Host, cfg Config) *Shim {
	s := NewShim(host.Eng, cfg, int64(host.ID))
	s.AttachHost(host)
	return s
}

// NewShim builds an unattached shim (the OvS-style deployment: call
// AttachHost for every guest VM on the server). seedSalt differentiates
// the jitter streams of shims sharing one Config.
func NewShim(eng *sim.Engine, cfg Config, seedSalt int64) *Shim {
	if cfg.MSS <= 0 {
		panic("core: config needs a positive MSS")
	}
	if cfg.MinWndSegs < 1 {
		cfg.MinWndSegs = 1
	}
	s := &Shim{
		cfg:    cfg,
		eng:    eng,
		rng:    sim.NewRNG(cfg.Seed + seedSalt),
		table:  newFlowTable(),
		bucket: newTokenBucket(cfg.SynAckBurst, cfg.RefillEvery),
	}
	s.closeEpochFn = s.closeEpochArg
	s.removeFn = s.removeExpired
	s.gcSweepFn = s.gcSweep
	if cfg.GCInterval > 0 && cfg.IdleTimeout > 0 {
		s.eng.Schedule(cfg.GCInterval, s.gcSweepFn)
	}
	return s
}

// Eng returns the engine the shim's timers run on — the shard that owns
// the shim's host(s). Fault injection schedules shim events there.
func (s *Shim) Eng() *sim.Engine { return s.eng }

// AttachHost installs the shim on a (further) host's filter chains. All
// attached hosts share the flow table, statistics and SYN-ACK pacer, as VM
// ports on one OvS do.
func (s *Shim) AttachHost(host *netem.Host) {
	t := &hostTap{shim: s, host: host}
	t.injectOutFn = t.injectOutbound
	host.AddFilter(t)
	s.hosts++
}

// Hosts returns how many hosts the shim is attached to.
func (s *Shim) Hosts() int { return s.hosts }

// hostTap binds the shared shim to one host's filter chains, carrying the
// host identity the injection paths need.
type hostTap struct {
	shim *Shim
	host *netem.Host

	// injectOutFn is the bound injection callback, cached at attach time
	// so deferred injections (held SYNs, probes, paced SYN-ACKs) schedule
	// without a per-event closure.
	injectOutFn func(any)
}

// Name implements netem.Filter.
func (t *hostTap) Name() string { return "hwatch" }

// Outbound implements netem.Filter.
func (t *hostTap) Outbound(p *netem.Packet) netem.Verdict {
	return t.shim.outbound(t, p)
}

// Inbound implements netem.Filter.
func (t *hostTap) Inbound(p *netem.Packet) netem.Verdict {
	return t.shim.inbound(p)
}

// injectOutbound is the ScheduleArg form of host.InjectOutbound.
func (t *hostTap) injectOutbound(a any) { t.host.InjectOutbound(a.(*netem.Packet)) }

// gcSweep expires entries whose flows went silent without a FIN (crashed
// guests, migrated VMs): the paper's flow table must not grow unboundedly.
func (s *Shim) gcSweep() {
	now := s.eng.Now()
	// Stable slot-order iteration: expire schedules the linger event, so
	// the sweep order feeds event seq assignment and must be
	// deterministic. Slot order is insertion/reuse order — reproducible
	// across runs, and unlike the old sorted-key snapshot it allocates
	// nothing (BenchmarkGCSweep holds this at zero).
	for slot, n := uint32(0), s.table.next; slot < n; slot++ {
		e := s.table.at(slot)
		if e.live && !e.closed && now-e.lastActive > s.cfg.IdleTimeout {
			s.expire(e)
		}
	}
	s.eng.Schedule(s.cfg.GCInterval, s.gcSweepFn)
}

// Crash models the hypervisor module dying while the host keeps
// forwarding (the deployment hazard the implementation papers hit: a
// module reload or OvS restart mid-connection). The flow table is wiped —
// epoch timers cancelled, rwnd clamps implicitly released, SYN holds and
// probe accounting forgotten — and until Restart the shim passes all
// traffic through untouched, exactly like a host it was never installed
// on.
func (s *Shim) Crash() {
	if s.crashed {
		return
	}
	s.crashed = true
	s.stats.Crashes++
	for slot, n := uint32(0), s.table.next; slot < n; slot++ {
		e := s.table.at(slot)
		if !e.live {
			continue
		}
		e.closed = true
		if e.epoch != nil {
			e.epoch.Cancel()
		}
	}
	// The replacement table continues the generation counter, so linger
	// handles already in flight against the wiped table can never resolve
	// to rows the fresh table mints after Restart. Tombstones die with the
	// module too: a crashed shim remembers nothing.
	s.table = newFlowTableGen(s.table.genc)
	s.tombs = nil
	s.tombQ = nil
}

// Restart brings a crashed shim back with a cold flow table: connections
// established during the outage run unwatched to completion (their SYNs
// were never seen), while new connections are processed normally again.
func (s *Shim) Restart() {
	if !s.crashed {
		return
	}
	s.crashed = false
	s.stats.Restarts++
}

// Crashed reports whether the shim is currently down.
func (s *Shim) Crashed() bool { return s.crashed }

// Stats returns a copy of the shim counters.
func (s *Shim) Stats() Stats { return s.stats }

// TrackedFlows returns the current flow-table size.
func (s *Shim) TrackedFlows() int { return s.table.len() }

// FlowInfo is an operator-visible view of one tracked flow (the rows the
// paper's flow table holds).
type FlowInfo struct {
	Key          netem.FlowKey
	Receiver     bool // this host terminates the data
	WndSegs      int  // current window verdict (-1 before establishment)
	ProbesSeen   int
	ProbesMarked int
	Marked       int // current epoch's CE count
	Unmarked     int
	Closed       bool
}

// Snapshot returns the flow table's rows, ordered by 4-tuple, for
// debugging and operations tooling.
func (s *Shim) Snapshot() []FlowInfo {
	out := make([]FlowInfo, 0, s.table.len())
	for slot, n := uint32(0), s.table.next; slot < n; slot++ {
		e := s.table.at(slot)
		if !e.live {
			continue
		}
		out = append(out, FlowInfo{
			Key:          e.key,
			Receiver:     e.role == roleReceiver,
			WndSegs:      e.wndSegs,
			ProbesSeen:   e.probesSeen,
			ProbesMarked: e.probesMarked,
			Marked:       e.marked,
			Unmarked:     e.unmarked,
			Closed:       e.closed,
		})
	}
	sort.Slice(out, func(i, j int) bool { return keyLess(out[i].Key, out[j].Key) })
	return out
}

// batcher builds the Next Fit batcher with this shim's policy.
func (s *Shim) batcher() binpack.Batcher {
	return binpack.Batcher{
		MergeFirstTwo:     s.cfg.MergeBatch1,
		MinBatch:          s.cfg.MinWndSegs,
		StartMarkedCredit: s.cfg.StartMarkedCredit,
		Rand:              s.rng.Float64,
	}
}

// outbound handles guest -> network packets for one attached host.
func (s *Shim) outbound(t *hostTap, p *netem.Packet) netem.Verdict {
	if s.crashed {
		return netem.VerdictPass
	}
	switch {
	case p.Flags.Has(netem.FlagSYN) && !p.Flags.Has(netem.FlagACK):
		return s.outSYN(t, p)
	case p.Flags.Has(netem.FlagSYN) && p.Flags.Has(netem.FlagACK):
		return s.outSynAck(t, p)
	default:
		return s.outEstablished(p)
	}
}

// outSYN is the Rule 2 sender side: hold the guest's SYN behind a probe
// train so the receiver shim can measure path congestion first.
func (s *Shim) outSYN(t *hostTap, p *netem.Packet) netem.Verdict {
	e, created := s.table.ensure(p.FlowKey(), roleSender)
	e.lastActive = s.eng.Now()
	if created {
		s.stats.FlowsTracked++
		e.guestECN = p.Flags.Has(netem.FlagECE) && p.Flags.Has(netem.FlagCWR)
	}
	if !created || s.cfg.ProbeCount <= 0 {
		// Retransmitted SYN, or probing disabled: pass straight through.
		return netem.VerdictPass
	}
	s.stats.SynsHeld++
	s.sendProbeTrain(t, p.FlowKey())
	s.eng.ScheduleArg(s.cfg.ProbeSpan, t.injectOutFn, p)
	return netem.VerdictStolen
}

// sendProbeTrain emits the probe packets with non-uniform inter-departure
// times within ProbeSpan (Section IV-C: spacing must be neither zero nor
// uniform for an unbiased queue sample).
func (s *Shim) sendProbeTrain(t *hostTap, k netem.FlowKey) {
	n := s.cfg.ProbeCount
	base := s.cfg.ProbeSpan / int64(n+1)
	for i := 0; i < n; i++ {
		at := base * int64(i+1)
		if !s.cfg.UniformProbeSpacing {
			at = base*int64(i) + s.rng.UniformRange(base/4, base)
		}
		if at >= s.cfg.ProbeSpan {
			at = s.cfg.ProbeSpan - 1
		}
		probe := netem.AllocPacket()
		probe.ID = t.host.NextPacketID()
		probe.Src = k.Src
		probe.Dst = k.Dst
		probe.SrcPort = k.SrcPort
		probe.DstPort = k.DstPort
		probe.ECN = netem.ECT0 // probes are always markable
		probe.Probe = true
		probe.Wire = s.cfg.ProbeWire
		probe.WScaleOpt = -1
		probe.SentAt = s.eng.Now()
		netem.SetChecksum(probe)
		s.stats.ProbesSent++
		s.eng.ScheduleArg(at, t.injectOutFn, probe)
	}
}

// outSynAck is the Rule 2 receiver side: stamp the guest's SYN-ACK with the
// probe-derived initial window and pace correlated SYN-ACK bursts.
func (s *Shim) outSynAck(t *hostTap, p *netem.Packet) netem.Verdict {
	key := p.FlowKey().Reverse() // table is keyed by data direction
	e, created := s.table.ensure(key, roleReceiver)
	e.lastActive = s.eng.Now()
	if created {
		s.stats.FlowsTracked++
	}
	if p.WScaleOpt >= 0 {
		e.wscale = p.WScaleOpt
	}
	if !e.stamped {
		e.stamped = true
		if s.cfg.ProbeLossFallback && e.probesSeen == 0 {
			// The whole train vanished (probe blackout, crashed sender
			// shim, probe-eating middlebox): zero evidence is not a verdict,
			// so degrade to pass-through rather than clamp blind. wndSegs
			// stays -1; the epoch loop still runs so Rule 1 re-tightens the
			// moment marks appear.
			s.stats.ProbeFallbacks++
		} else {
			e.wndSegs = s.batcher().StartWindow(e.probesSeen, e.probesMarked, s.cfg.DefaultICW)
			s.stats.SynAcksStamped++
		}
		s.startEpoch(e)
	}
	s.clampRwnd(p, e)

	if d := s.bucket.take(s.eng.Now()); d > 0 {
		s.stats.SynAcksPaced++
		s.eng.ScheduleArg(d, t.injectOutFn, p)
		return netem.VerdictStolen
	}
	return netem.VerdictPass
}

// outEstablished handles post-handshake egress: rwnd clamping on the
// receiver side, ECT dyeing on the sender side, FIN cleanup on both.
func (s *Shim) outEstablished(p *netem.Packet) netem.Verdict {
	// Receiver side: ACKs leaving toward the data sender.
	if e := s.table.get(p.FlowKey().Reverse()); e != nil && e.role == roleReceiver {
		e.lastActive = s.eng.Now()
		if p.Flags.Has(netem.FlagACK) {
			s.clampRwnd(p, e)
		}
		if p.Flags.Has(netem.FlagFIN) || p.Flags.Has(netem.FlagRST) {
			s.expire(e)
		}
		return netem.VerdictPass
	}
	// Sender side: data leaving toward the receiver.
	if e := s.table.get(p.FlowKey()); e != nil && e.role == roleSender {
		e.lastActive = s.eng.Now()
		if s.cfg.DyeECT && !e.guestECN && p.ECN == netem.NotECT && (p.IsData() || p.Flags.Has(netem.FlagFIN)) {
			updateECN(p, netem.ECT0)
			s.stats.Dyed++
		}
		if p.Flags.Has(netem.FlagFIN) || p.Flags.Has(netem.FlagRST) {
			s.expire(e)
		}
	}
	return netem.VerdictPass
}

// inbound handles network -> guest packets for one attached host.
func (s *Shim) inbound(p *netem.Packet) netem.Verdict {
	if s.crashed {
		// Pass-through, probes included: with the shim dead nothing steals
		// them, so they fall off the host's demux like any unclaimed raw IP.
		return netem.VerdictPass
	}
	if p.Probe {
		return s.inProbe(p)
	}
	switch {
	case p.Flags.Has(netem.FlagSYN) && !p.Flags.Has(netem.FlagACK):
		s.inSYN(p)
	default:
		s.inEstablished(p)
	}
	return netem.VerdictPass
}

// inProbe is the receiver-side probe counter: consume the probe, record
// whether the fabric marked it.
func (s *Shim) inProbe(p *netem.Packet) netem.Verdict {
	key := p.FlowKey()
	if s.table.get(key) == nil && s.tombstoned(key) {
		// Straggler outliving its flow: an impairment held this probe past
		// the removed row's linger window. Consume it rowlessly — probe
		// trains only exist at flow start, so minting here would leave a
		// row no FIN will ever close.
		s.stats.StaleRemints++
		netem.ReleasePacket(p)
		return netem.VerdictStolen
	}
	e, created := s.table.ensure(key, roleReceiver)
	e.lastActive = s.eng.Now()
	if created {
		s.stats.FlowsTracked++
	}
	e.probesSeen++
	s.stats.ProbesSeen++
	if p.ECN == netem.CE {
		e.probesMarked++
		s.stats.ProbesMarked++
	}
	netem.ReleasePacket(p) // stolen and consumed: probes never reach a guest
	return netem.VerdictStolen
}

func (s *Shim) inSYN(p *netem.Packet) {
	key := p.FlowKey()
	if s.table.get(key) == nil && s.tombstoned(key) {
		// A duplicated or delayed SYN for a flow that already completed:
		// the guest still sees it (the verdict stays pass), but the shim
		// must not resurrect the row.
		s.stats.StaleRemints++
		return
	}
	e, created := s.table.ensure(key, roleReceiver)
	e.lastActive = s.eng.Now()
	if created {
		s.stats.FlowsTracked++
	}
	// If the guests negotiate ECN themselves, the shim must not repaint
	// codepoints they rely on.
	e.guestECN = p.Flags.Has(netem.FlagECE) && p.Flags.Has(netem.FlagCWR)
}

func (s *Shim) inEstablished(p *netem.Packet) {
	// Receiver side: account data marks for Rule 1, clear CE for non-ECN
	// guests.
	if e := s.table.get(p.FlowKey()); e != nil && e.role == roleReceiver {
		e.lastActive = s.eng.Now()
		if p.IsData() || p.Flags.Has(netem.FlagFIN) {
			if p.ECN == netem.CE {
				e.marked++
				if s.cfg.DyeECT && !e.guestECN {
					updateECN(p, netem.ECT0)
					s.stats.CECleared++
				}
			} else {
				e.unmarked++
			}
		}
		if p.Flags.Has(netem.FlagFIN) || p.Flags.Has(netem.FlagRST) {
			s.expire(e)
		}
		return
	}
	// Sender side: a RST arriving from the remote end kills the local
	// guest's connection, which will never emit the FIN the outbound path
	// expires on — drop the entry now instead of leaking it until the idle
	// sweep. (The table is keyed by data direction, so the sender-side row
	// sits under the reversed key of an inbound packet.)
	if p.Flags.Has(netem.FlagRST) {
		if e := s.table.get(p.FlowKey().Reverse()); e != nil && e.role == roleSender {
			s.expire(e)
		}
	}
}

// clampRwnd applies the current window verdict to an outgoing ACK/SYN-ACK.
func (s *Shim) clampRwnd(p *netem.Packet, e *flowEntry) {
	if e.wndSegs < 0 {
		return
	}
	wndBytes := int64(e.wndSegs) * int64(s.cfg.MSS)
	if cur := int64(p.Rwnd) << uint(e.wscale); cur > wndBytes {
		field := encodeCeil(wndBytes, e.wscale)
		if field != p.Rwnd {
			updateRwnd(p, field)
			s.stats.RwndRewrites++
		}
	}
}

// encodeCeil converts bytes to the raw window field rounding up, so a clamp
// of exactly MinWndSegs segments never quantizes to less under scaling.
func encodeCeil(bytes int64, scale int8) uint16 {
	unit := int64(1) << uint(scale)
	v := (bytes + unit - 1) >> uint(scale)
	if v > 0xffff {
		v = 0xffff
	}
	return uint16(v)
}

// startEpoch begins the Rule 1 per-RTT accounting loop for a flow.
func (s *Shim) startEpoch(e *flowEntry) {
	if s.cfg.BaseRTT <= 0 {
		return
	}
	e.epoch = s.eng.ScheduleArg(s.cfg.BaseRTT, s.closeEpochFn, e.self)
}

// closeEpochArg adapts closeEpoch to the cached ScheduleArg callback
// shape. The event carries the entry's handle, not the pointer: if the row
// was removed or its slot recycled since the epoch was armed, resolve
// returns nil and the stale timer is inert (the same contract the event
// slab gives stale *sim.Event handles).
func (s *Shim) closeEpochArg(a any) {
	if e := s.table.resolve(a.(flowHandle)); e != nil {
		s.closeEpoch(e)
	}
}

// closeEpoch re-derives the flow's window from this epoch's mark counts via
// the Next Fit batch rule, then opens the next epoch.
func (s *Shim) closeEpoch(e *flowEntry) {
	if e.closed {
		return
	}
	s.stats.EpochsClosed++
	switch {
	case e.marked == 0 && e.unmarked == 0:
		// Idle epoch: no evidence either way; hold the window.
	case e.marked == 0:
		// Clean epoch: grow additively, one step per GrowthEvery clean
		// epochs (slower than per-RTT AIMD so the aggregate of many
		// regulated flows does not outrun the marking threshold). The
		// counter only resets on a marked epoch, so the modulo fires at the
		// same instants a reset-and-compare would.
		e.cleanEpochs++
		every := s.cfg.GrowthEvery
		if every < 1 {
			every = 1
		}
		switch {
		case e.wndSegs < 0:
			// Already pass-through (probe-loss fallback): nothing to grow.
		case s.cfg.EcnDarkEpochs > 0 && e.cleanEpochs >= s.cfg.EcnDarkEpochs:
			// ECN has gone dark: data flowed for EcnDarkEpochs epochs with
			// not one mark. Trusting the clamp now means trusting a signal
			// that may no longer exist, so release it exponentially.
			if e.wndSegs < s.cfg.MaxWndSegs {
				e.wndSegs *= 2
				if e.wndSegs > s.cfg.MaxWndSegs {
					e.wndSegs = s.cfg.MaxWndSegs
				}
				s.stats.DarkReleases++
			}
		case e.cleanEpochs%every == 0:
			e.wndSegs += s.cfg.GrowthSegs
			if e.wndSegs > s.cfg.MaxWndSegs {
				e.wndSegs = s.cfg.MaxWndSegs
			}
		}
	default:
		e.cleanEpochs = 0
		// Congested epoch: W' = X_UM (+ X_M/2 if batches merged). After a
		// dark-release this is the exponential re-tightening: one mark and
		// the window snaps back to the Next Fit verdict.
		plan := s.batcher().Split(e.unmarked, e.marked)
		w := plan.Sizes[0]
		if w > s.cfg.MaxWndSegs {
			w = s.cfg.MaxWndSegs
		}
		e.wndSegs = w
	}
	e.marked, e.unmarked = 0, 0
	e.epoch = s.eng.ScheduleArg(s.cfg.BaseRTT, s.closeEpochFn, e.self)
}

// expire schedules flow-table cleanup after a linger period (so
// retransmitted FINs and the final ACK are still handled consistently).
func (s *Shim) expire(e *flowEntry) {
	if e.closed {
		return
	}
	e.closed = true
	if e.epoch != nil {
		e.epoch.Cancel()
	}
	linger := 4 * s.cfg.BaseRTT
	if linger <= 0 {
		linger = sim.Millisecond
	}
	s.eng.ScheduleArg(linger, s.removeFn, e.self)
}

// tombstoneTTL bounds how long a removed row's key stays tombstoned. It
// must outlast any plausible straggler delay (chaos reorder holds run to
// a few milliseconds); packets held even longer re-mint as before and the
// recovery observer reports the leak.
const tombstoneTTL = 50 * sim.Millisecond

// tombstone records one removed row for the straggler guard.
type tombstone struct {
	key netem.FlowKey
	at  int64
}

// entomb marks key as recently removed and prunes tombstones past the
// TTL. The queue preserves removal order, so pruning is deterministic.
func (s *Shim) entomb(key netem.FlowKey) {
	now := s.eng.Now()
	for len(s.tombQ) > 0 && now-s.tombQ[0].at > tombstoneTTL {
		head := s.tombQ[0]
		if s.tombs[head.key] == head.at {
			delete(s.tombs, head.key)
		}
		s.tombQ = s.tombQ[1:]
	}
	if s.tombs == nil {
		s.tombs = make(map[netem.FlowKey]int64)
	}
	s.tombs[key] = now
	s.tombQ = append(s.tombQ, tombstone{key: key, at: now})
}

// tombstoned reports whether key belongs to a row removed within the TTL.
func (s *Shim) tombstoned(key netem.FlowKey) bool {
	at, ok := s.tombs[key]
	return ok && s.eng.Now()-at <= tombstoneTTL
}

// removeExpired drops an expired entry once its linger period ends. The
// linger event holds the entry's handle; if the row is already gone (a
// Crash wiped the table, or the slot was recycled) the handle no longer
// resolves and the event is a no-op — the handle-generation check replaces
// the old map implementation's `get(key) == entry` identity test.
func (s *Shim) removeExpired(a any) {
	if e := s.table.resolve(a.(flowHandle)); e != nil {
		key := e.key
		s.table.remove(key)
		s.stats.FlowsExpired++
		s.entomb(key)
	}
}
