// Package core implements HWatch, the paper's contribution: a
// hypervisor-resident "cautious congestion watch" that improves flow
// completion times without touching the guest TCP stack, the switches or
// the NICs (requirements R1-R4).
//
// A Shim attaches to a host's ingress/egress filter chains (the analogue of
// the paper's NetFilter hook or patched OvS kernel datapath) and applies
// the two control rules of Section IV-C:
//
//	Rule 1 (steady state): the receiver-side shim counts CE-marked vs.
//	unmarked data packets per flow and, once per RTT epoch, re-derives the
//	flow's window from the Next Fit batch rule W' = X_UM + X_M/2
//	(internal/binpack.Batcher). Every ACK leaving the receiver host has
//	its TCP receive-window field clamped to that window, with the checksum
//	patched incrementally (RFC 1624), honouring the guest's advertised
//	window scale.
//
//	Rule 2 (connection start): the sender-side shim intercepts the guest's
//	SYN, first transmitting a train of small raw-IP probe packets (38 B,
//	ECT-capable, non-uniformly spaced within ~RTT/2). The receiver-side
//	shim counts how many probes arrived CE-marked and stamps the guest's
//	SYN-ACK with the safe initial window derived from the probe verdict,
//	so a flow entering a congested fabric never starts with the full
//	default initial window. SYN-ACKs are additionally paced through a
//	token bucket to stagger correlated incast starts.
//
// The shim can also "dye" traffic of non-ECN guests: outbound data is made
// ECT(0) so switches mark instead of drop, and the CE codepoint is cleared
// again before delivery so the guest stack never observes ECN — preserving
// VM autonomy (R3).
package core

import (
	"hwatch/internal/netem"
	"hwatch/internal/sim"
)

// Config parameterizes a Shim. Zero value is not useful; start from
// DefaultConfig.
type Config struct {
	MSS int // segment payload size used to convert windows to bytes

	// Rule 2: probing.
	ProbeCount int   // probes per connection setup (paper: 10)
	ProbeWire  int   // bytes on the wire per probe (paper: <= 38)
	ProbeSpan  int64 // total train duration; SYN is held this long (<= RTT/2)
	// UniformProbeSpacing removes the per-probe jitter (the paper argues
	// inter-departures should be "not zero nor uniform"; this switch
	// exists for the ablation that tests that claim).
	UniformProbeSpacing bool

	// Window policy.
	DefaultICW  int  // guest stack's default initial window, segments
	MinWndSegs  int  // floor for any clamp (>= 1 so flows always progress)
	MaxWndSegs  int  // cap for additive growth
	GrowthSegs  int  // additive growth granted after GrowthEvery clean epochs
	GrowthEvery int  // consecutive mark-free epochs required per growth step
	MergeBatch1 bool // Corollary IV.2.2: send batches 1+2 together
	// StartMarkedCredit: fraction of marked probes still credited to the
	// initial window (0 = cautious, 0.5 = merged-batch theory). See
	// binpack.Batcher.StartMarkedCredit.
	StartMarkedCredit float64

	// Rule 1: epoch length for mark accounting; the operator's RTT
	// estimate for the fabric (paper testbed: ~200 us).
	BaseRTT int64

	// SYN-ACK pacing token bucket: Burst tokens, one token regenerated
	// every RefillEvery ns. Zero Burst disables pacing.
	SynAckBurst int
	RefillEvery int64

	// DyeECT makes non-ECN guest traffic ECT(0) on egress and clears CE on
	// ingress so switches can mark while guests stay ECN-oblivious.
	DyeECT bool

	// Flow-table hygiene: entries idle longer than IdleTimeout are garbage
	// collected by a sweep every GCInterval (guests that die without a FIN
	// must not leak table rows). Zero disables the sweep.
	IdleTimeout int64
	GCInterval  int64

	// Graceful degradation when the signal path misbehaves. Both default
	// off so the paper's behaviour is bit-identical unless a deployment
	// (e.g. a fault-injected scenario) opts in.
	//
	// ProbeLossFallback: when the guest's SYN-ACK goes out and *no* probe
	// of the train was seen — a probe blackout, a crashed sender shim, a
	// middlebox eating raw IP — the shim passes the SYN-ACK through
	// unstamped instead of clamping to DefaultICW on zero evidence. Rule 1
	// re-tightens the window as soon as data marks are observed.
	ProbeLossFallback bool
	// EcnDarkEpochs: after this many consecutive mark-free data epochs the
	// shim assumes ECN has gone dark (a blackhole, a legacy hop) and
	// releases the rwnd clamp exponentially — doubling per further clean
	// epoch up to MaxWndSegs — so it never strangles flows on a signal
	// that no longer exists. The first mark observed snaps the window back
	// to the Next Fit verdict (exponential re-tightening in reverse).
	// Zero disables the fallback.
	EcnDarkEpochs int

	// Seed drives probe spacing jitter and the odd-marked-packet coin.
	Seed int64
}

// DefaultConfig returns the paper's deployment parameters for a fabric with
// the given base RTT.
func DefaultConfig(baseRTT int64) Config {
	return Config{
		MSS:         netem.DefaultMSS,
		ProbeCount:  10,
		ProbeWire:   netem.MinProbeSize,
		ProbeSpan:   baseRTT / 2,
		DefaultICW:  10,
		MinWndSegs:  1,
		MaxWndSegs:  1024,
		GrowthSegs:  1,
		GrowthEvery: 4,
		MergeBatch1: true,
		BaseRTT:     baseRTT,
		SynAckBurst: 4,
		RefillEvery: baseRTT / 2,
		DyeECT:      true,
		IdleTimeout: 30 * sim.Second,
		GCInterval:  5 * sim.Second,
		Seed:        1,
	}
}

// Stats counts shim activity on one host.
type Stats struct {
	ProbesSent     int64
	ProbesSeen     int64 // probes consumed at the receiver side
	ProbesMarked   int64
	SynsHeld       int64 // SYNs delayed behind a probe train
	SynAcksStamped int64 // SYN-ACKs rewritten with a probe-derived window
	SynAcksPaced   int64 // SYN-ACKs delayed by the token bucket
	RwndRewrites   int64 // ACK receive-window clamps applied
	EpochsClosed   int64
	Dyed           int64 // packets dyed ECT(0)
	CECleared      int64 // CE codepoints cleared before guest delivery
	FlowsTracked   int64
	FlowsExpired   int64

	// Degradation and fault counters.
	Crashes        int64 // Crash() calls: flow table wiped, clamps released
	Restarts       int64 // Restart() calls after a crash
	ProbeFallbacks int64 // SYN-ACKs passed unstamped (whole train lost)
	DarkReleases   int64 // clamp doublings taken because ECN went dark
	StaleRemints   int64 // probes/SYNs for tombstoned flows, not re-minted
}

// role distinguishes which end of a flow this host's shim is on.
type role int

const (
	roleSender   role = iota // local guest transmits the data
	roleReceiver             // local guest receives the data
)

// updateECN rewrites the packet's ECN codepoint. The codepoint lives in
// the IP header, outside the TCP checksum, so no transport-sum patch is
// needed (the datapath recomputes the cheap IP header sum in hardware).
func updateECN(p *netem.Packet, e netem.ECN) {
	p.ECN = e
}

// updateRwnd rewrites the receive-window field with incremental checksum
// maintenance (RFC 1624) — the exact datapath operation HWatch performs.
func updateRwnd(p *netem.Packet, field uint16) {
	old := p.Rwnd
	p.Rwnd = field
	p.Checksum = netem.UpdateChecksum16(p.Checksum, old, field)
}
