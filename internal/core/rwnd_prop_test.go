package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hwatch/internal/netem"
	"hwatch/internal/sim"
)

// TestClampRwndProperties drives the datapath rwnd rewrite with random
// window fields, scale factors and clamp verdicts and checks the three
// properties the deployment depends on: the incrementally-maintained
// checksum still verifies, the effective window never widens past what the
// guest advertised, and (while the encoding fits the 16-bit field) the
// round-up quantization never grants less than the verdict — the clamp of
// exactly MinWndSegs segments must survive window scaling.
func TestClampRwndProperties(t *testing.T) {
	cfg := DefaultConfig(100 * sim.Microsecond)
	s := NewShim(sim.New(), cfg, 0)
	mss := int64(cfg.MSS)

	prop := func(rwnd uint16, scaleRaw uint8, segsRaw uint16, seq int64) bool {
		scale := int8(scaleRaw % 15)  // RFC 7323 caps the shift at 14
		segs := int(segsRaw%2048) - 1 // -1 (no verdict yet) .. 2046 segments
		e := &flowEntry{wndSegs: segs, wscale: scale}
		p := &netem.Packet{
			Src: 1, Dst: 2, SrcPort: 3, DstPort: 4,
			Seq: seq, Flags: netem.FlagACK, Rwnd: rwnd, WScaleOpt: -1,
		}
		netem.SetChecksum(p)
		before := int64(rwnd) << uint(scale)

		s.clampRwnd(p, e)

		if !netem.VerifyChecksum(p) {
			t.Logf("checksum broken: rwnd=%d scale=%d segs=%d", rwnd, scale, segs)
			return false
		}
		after := int64(p.Rwnd) << uint(scale)
		if after > before {
			t.Logf("window widened %d -> %d: rwnd=%d scale=%d segs=%d", before, after, rwnd, scale, segs)
			return false
		}
		if segs < 0 {
			return p.Rwnd == rwnd // no verdict: the packet must pass untouched
		}
		wnd := int64(segs) * mss
		if before <= wnd {
			return p.Rwnd == rwnd // under the clamp already: untouched
		}
		// Rewritten. Round-up encoding must not under-grant unless the raw
		// field saturated at 0xffff.
		if after < wnd && p.Rwnd != 0xffff {
			t.Logf("under-granted %d < verdict %d: rwnd=%d scale=%d segs=%d", after, wnd, rwnd, scale, segs)
			return false
		}
		return true
	}
	qc := &quick.Config{
		MaxCount: 10000,
		Rand:     rand.New(rand.NewSource(1)),
	}
	if err := quick.Check(prop, qc); err != nil {
		t.Fatal(err)
	}
}
