package core

import (
	"testing"

	"hwatch/internal/netem"
)

// FuzzFlowSlab interprets the input as an op stream over the slab table —
// ensure, remove, get, and probes of both live and retired handles — and
// checks the two properties the generation scheme exists for:
//
//  1. no resurrection: a handle retired by remove (or orphaned by slot
//     reuse) must never resolve again, to any row;
//  2. no slot leaks: live rows plus freelist slots always account for
//     every slot ever minted, and the key index agrees with a model map
//     at every step.
func FuzzFlowSlab(f *testing.F) {
	f.Add([]byte("ensure-remove-ensure"))
	f.Add([]byte("\x00\x01\x02\x03\x04\x05\x06\x07\x08\x09"))
	f.Add([]byte("\x00\x05\x01\x05\x00\x05\x02\x05\x03\x05\x01\x05"))
	f.Add([]byte{0, 1, 0, 2, 1, 1, 0, 3, 1, 2, 0, 1, 3, 0, 4, 0, 2, 1, 1, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		tab := newFlowTable()
		model := make(map[netem.FlowKey]flowHandle) // live keys -> handle
		var retired []flowHandle                    // handles that must stay dead

		key := func(b byte) netem.FlowKey {
			// 32-key universe: small enough that remove/reuse interleavings
			// recycle slots constantly.
			return netem.FlowKey{
				Src:     netem.NodeID(b % 4),
				Dst:     netem.NodeID(4 + b%2),
				SrcPort: uint16(b % 32),
				DstPort: 80,
			}
		}

		for i := 0; i+1 < len(data); i += 2 {
			op, sel := data[i]%5, data[i+1]
			k := key(sel)
			switch op {
			case 0: // ensure
				e, created := tab.ensure(k, roleSender)
				_, inModel := model[k]
				if created == inModel {
					t.Fatalf("op %d: ensure(%v) created=%v but model has=%v", i, k, created, inModel)
				}
				if e.key != k || !e.live {
					t.Fatalf("op %d: ensure returned wrong row %+v", i, e)
				}
				model[k] = e.self.(flowHandle)
			case 1: // remove
				e := tab.remove(k)
				h, inModel := model[k]
				if (e != nil) != inModel {
					t.Fatalf("op %d: remove(%v) presence=%v but model has=%v", i, k, e != nil, inModel)
				}
				if e != nil {
					delete(model, k)
					retired = append(retired, h)
				}
			case 2: // get
				e := tab.get(k)
				if _, inModel := model[k]; (e != nil) != inModel {
					t.Fatalf("op %d: get(%v) presence mismatch", i, k)
				}
				if e != nil && e.key != k {
					t.Fatalf("op %d: get(%v) returned row for %v", i, k, e.key)
				}
			case 3: // probe a retired handle: must never resurrect
				if len(retired) > 0 {
					h := retired[int(sel)%len(retired)]
					if e := tab.resolve(h); e != nil {
						t.Fatalf("op %d: retired handle %x resurrected as %v", i, uint64(h), e.key)
					}
				}
			case 4: // probe a live handle: must resolve to its own key
				if h, ok := model[k]; ok {
					e := tab.resolve(h)
					if e == nil || e.key != k {
						t.Fatalf("op %d: live handle %x for %v resolved to %+v", i, uint64(h), k, e)
					}
				}
			}

			// Slot accounting: every slot ever minted is exactly one of
			// live or free.
			if tab.len() != len(model) {
				t.Fatalf("op %d: len %d != model %d", i, tab.len(), len(model))
			}
			if int(tab.next) != tab.len()+len(tab.free) {
				t.Fatalf("op %d: slot leak: next=%d live=%d free=%d",
					i, tab.next, tab.len(), len(tab.free))
			}
		}

		// Final cross-check: model and table agree row for row, and no
		// freelist slot is double-booked.
		for k, h := range model {
			e := tab.get(k)
			if e == nil || tab.resolve(h) != e {
				t.Fatalf("final: model key %v missing or handle mismatched", k)
			}
		}
		seen := make(map[uint32]bool, len(tab.free))
		for _, s := range tab.free {
			if seen[s] {
				t.Fatalf("final: slot %d on freelist twice", s)
			}
			if s >= tab.next {
				t.Fatalf("final: freelist holds unminted slot %d", s)
			}
			seen[s] = true
			if tab.at(s).live {
				t.Fatalf("final: freelist slot %d still live", s)
			}
		}
	})
}
