package core

// tokenBucket is the SYN-ACK pacer: Burst tokens, one regenerated every
// refill ns. take returns 0 if a token is available now, otherwise the
// delay until the caller's turn (callers queue FIFO by reserving future
// tokens).
type tokenBucket struct {
	burst  int
	refill int64

	tokens    float64
	lastUpd   int64
	reservedT int64 // time at which the furthest reservation matures
}

func newTokenBucket(burst int, refill int64) *tokenBucket {
	return &tokenBucket{burst: burst, refill: refill, tokens: float64(burst)}
}

// take requests one token at time now; returns the delay (0 = immediate).
func (b *tokenBucket) take(now int64) int64 {
	if b.burst <= 0 {
		return 0 // pacing disabled
	}
	// Accrue tokens since the last update.
	if b.refill > 0 {
		b.tokens += float64(now-b.lastUpd) / float64(b.refill)
		if b.tokens > float64(b.burst) {
			b.tokens = float64(b.burst)
		}
	}
	b.lastUpd = now
	if b.tokens >= 1 {
		b.tokens--
		if b.reservedT < now {
			b.reservedT = now
		}
		return 0
	}
	// Reserve the next future token after all earlier reservations.
	need := (1 - b.tokens) * float64(b.refill)
	at := now + int64(need)
	if at <= b.reservedT {
		at = b.reservedT + b.refill
	}
	b.reservedT = at
	b.tokens-- // the reservation consumes the token being generated
	return at - now
}
