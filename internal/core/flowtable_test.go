package core

import (
	"testing"
	"testing/quick"

	"hwatch/internal/netem"
	"hwatch/internal/sim"
)

// mapFlowTable is the pre-slab map implementation, kept here as the
// reference model for the equivalence property test below. The scenario-
// level proof of parity is in internal/experiments: the committed golden
// digests were generated while this implementation was the production
// table, and TestGoldenDigests asserts the slab table reproduces them
// byte-identically.
type mapFlowTable struct {
	entries map[netem.FlowKey]*flowEntry
}

func newMapFlowTable() *mapFlowTable {
	return &mapFlowTable{entries: make(map[netem.FlowKey]*flowEntry)}
}

func (t *mapFlowTable) get(k netem.FlowKey) *flowEntry { return t.entries[k] }

func (t *mapFlowTable) ensure(k netem.FlowKey, r role) (*flowEntry, bool) {
	if e, ok := t.entries[k]; ok {
		return e, false
	}
	e := &flowEntry{key: k, role: r, wndSegs: -1}
	t.entries[k] = e
	return e, true
}

func (t *mapFlowTable) remove(k netem.FlowKey) *flowEntry {
	e := t.entries[k]
	delete(t.entries, k)
	return e
}

func (t *mapFlowTable) len() int { return len(t.entries) }

// testKey maps a small integer to a flow key; the 16-key universe forces
// plenty of slot reuse and index collisions in the property test.
func testKey(i uint8) netem.FlowKey {
	return netem.FlowKey{
		Src:     netem.NodeID(i % 4),
		Dst:     netem.NodeID(4 + i/8),
		SrcPort: 1000 + uint16(i%8),
		DstPort: 80,
	}
}

// TestFlowTableMatchesMap drives random get/ensure/remove/len sequences
// through the slab table and the map reference in lockstep and requires
// identical observable behavior, including per-entry state mutated through
// the returned pointers.
func TestFlowTableMatchesMap(t *testing.T) {
	check := func(ops []uint16) bool {
		slab := newFlowTable()
		ref := newMapFlowTable()
		for step, op := range ops {
			k := testKey(uint8(op >> 2 % 16))
			switch op % 4 {
			case 0: // ensure
				r := roleSender
				if op&0x8000 != 0 {
					r = roleReceiver
				}
				se, screated := slab.ensure(k, r)
				me, mcreated := ref.ensure(k, r)
				if screated != mcreated || se.key != me.key || se.role != me.role {
					t.Logf("step %d: ensure(%v) diverged: created %v/%v", step, k, screated, mcreated)
					return false
				}
				// Mutate through the pointer; later gets must see it.
				se.wndSegs = step
				me.wndSegs = step
			case 1: // get
				se, me := slab.get(k), ref.get(k)
				if (se == nil) != (me == nil) {
					t.Logf("step %d: get(%v) presence diverged", step, k)
					return false
				}
				if se != nil && (se.key != me.key || se.role != me.role || se.wndSegs != me.wndSegs) {
					t.Logf("step %d: get(%v) state diverged: %+v vs %+v", step, k, se, me)
					return false
				}
			case 2: // remove
				se, me := slab.remove(k), ref.remove(k)
				if (se == nil) != (me == nil) {
					t.Logf("step %d: remove(%v) presence diverged", step, k)
					return false
				}
			case 3: // len
				if slab.len() != ref.len() {
					t.Logf("step %d: len diverged: %d vs %d", step, slab.len(), ref.len())
					return false
				}
			}
		}
		// Final sweep: every key in the reference must be in the slab with
		// identical state, and vice versa.
		if slab.len() != ref.len() {
			return false
		}
		for k, me := range ref.entries {
			se := slab.get(k)
			if se == nil || se.role != me.role || se.wndSegs != me.wndSegs {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestFlowTableGrowthBoundaryNoGhosts pins the ensure/idxGrow ordering: a
// row must not be marked live until after it is indexed, or the grow
// triggered at the 3/4-load boundary reinserts it and idxInsert then adds
// the same key a second time. The duplicate bucket survives remove() and a
// later get() resolves it to a dead or recycled row. 200 keys cross the
// 128->256 and 256->512 boundaries; after removing every key the table and
// its index must both be empty.
func TestFlowTableGrowthBoundaryNoGhosts(t *testing.T) {
	tab := newFlowTable()
	keys := make([]netem.FlowKey, 200)
	for i := range keys {
		keys[i] = netem.FlowKey{Src: 1, Dst: 2, SrcPort: uint16(i), DstPort: 80}
		if _, created := tab.ensure(keys[i], roleSender); !created {
			t.Fatalf("ensure(%v) found a pre-existing row", keys[i])
		}
	}
	for _, k := range keys {
		if tab.remove(k) == nil {
			t.Fatalf("remove(%v) lost the row", k)
		}
	}
	if tab.len() != 0 {
		t.Fatalf("len = %d after removing every key, want 0", tab.len())
	}
	for _, k := range keys {
		if e := tab.get(k); e != nil {
			t.Fatalf("get(%v) returned a ghost row %+v after removal", k, e)
		}
	}
	for i, b := range tab.idx {
		if b.h != 0 {
			t.Fatalf("index bucket %d still occupied by %v after removing every key", i, b.key)
		}
	}
}

// TestFlowHandleStaleAfterRemove pins the handle contract: a handle stops
// resolving the moment its row is removed, and keeps not resolving after
// the slot is recycled by a different flow.
func TestFlowHandleStaleAfterRemove(t *testing.T) {
	tab := newFlowTable()
	k1, k2 := testKey(1), testKey(2)
	e1, _ := tab.ensure(k1, roleSender)
	h1 := e1.self.(flowHandle)
	if tab.resolve(h1) != e1 {
		t.Fatal("live handle must resolve to its entry")
	}
	tab.remove(k1)
	if tab.resolve(h1) != nil {
		t.Fatal("handle must not resolve after remove")
	}
	// Recycle the slot with a different flow.
	e2, created := tab.ensure(k2, roleReceiver)
	if !created || e2.slot != e1.slot {
		t.Fatalf("expected slot reuse: created=%v slot=%d want %d", created, e2.slot, e1.slot)
	}
	if tab.resolve(h1) != nil {
		t.Fatal("stale handle must not resurrect on the recycled slot")
	}
	if tab.resolve(e2.self.(flowHandle)) != e2 {
		t.Fatal("recycled slot's new handle must resolve")
	}
}

// TestFlowHandleSurvivesCrashWipe pins the Crash contract: handles minted
// by a wiped table never alias rows of its replacement, because the
// replacement continues the generation counter.
func TestFlowHandleSurvivesCrashWipe(t *testing.T) {
	eng := sim.New()
	s := NewShim(eng, DefaultConfig(100*sim.Microsecond), 0)
	e, _ := s.table.ensure(testKey(3), roleReceiver)
	h := e.self.(flowHandle)
	s.Crash()
	s.Restart()
	// Same key re-tracked after restart lands in slot 0 of the new table,
	// just like the old entry did in the old table.
	e2, _ := s.table.ensure(testKey(3), roleReceiver)
	if e2.slot != e.slot {
		t.Fatalf("expected the fresh table to reuse slot %d, got %d", e.slot, e2.slot)
	}
	if s.table.resolve(h) != nil {
		t.Fatal("pre-crash handle must not resolve against the replacement table")
	}
}

// TestGCSweepAllocationFree holds the satellite guarantee: the idle sweep
// iterates slots in place, with no per-sweep key snapshot. The only
// allocations on the sweep path are the event slab's amortized chunk
// growths (1 per 256 events), hence the fractional tolerance.
func TestGCSweepAllocationFree(t *testing.T) {
	eng := sim.New()
	cfg := DefaultConfig(100 * sim.Microsecond)
	cfg.GCInterval = sim.Second
	cfg.IdleTimeout = 30 * sim.Second
	s := NewShim(eng, cfg, 0)
	for i := 0; i < 200; i++ {
		s.table.ensure(testKey(uint8(i)), roleSender)
	}
	avg := testing.AllocsPerRun(500, s.gcSweep)
	if avg > 0.05 {
		t.Fatalf("gcSweep allocates %.3f per call over 200 entries; want ~0", avg)
	}
}

// BenchmarkGCSweep measures the idle sweep over a populated table. Before
// the slab refactor this allocated and sorted a fresh key slice per call.
func BenchmarkGCSweep(b *testing.B) {
	eng := sim.New()
	cfg := DefaultConfig(100 * sim.Microsecond)
	cfg.GCInterval = sim.Second
	cfg.IdleTimeout = 30 * sim.Second
	s := NewShim(eng, cfg, 0)
	for i := 0; i < 1024; i++ {
		k := testKey(uint8(i))
		k.SrcPort = uint16(i) // widen past the 16-key universe: 1024 rows
		s.table.ensure(k, roleSender)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.gcSweep()
	}
}

// BenchmarkFlowTableChurn measures steady-state ensure/remove cycling, the
// storm-rung pattern: after warmup every flow recycles a freelist slot, so
// the only allocation per flow is the one 8-byte handle box.
func BenchmarkFlowTableChurn(b *testing.B) {
	tab := newFlowTable()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := netem.FlowKey{Src: 1, Dst: 2, SrcPort: uint16(i), DstPort: 80}
		tab.ensure(k, roleSender)
		if i >= 64 {
			old := netem.FlowKey{Src: 1, Dst: 2, SrcPort: uint16(i - 64), DstPort: 80}
			tab.remove(old)
		}
	}
}
