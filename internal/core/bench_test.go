package core

import (
	"testing"

	"hwatch/internal/aqm"
	"hwatch/internal/netem"
	"hwatch/internal/sim"
	"hwatch/internal/tcp"
)

// BenchmarkShimTransfer measures a full transfer through HWatch shims on
// both ends (probing, stamping, per-ACK rwnd clamping).
func BenchmarkShimTransfer(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		delay := 25 * sim.Microsecond
		cfg := DefaultConfig(testRTT(delay))
		r := newRig(nil, aqm.NewMarkThresholdBytes(250*1500, 50*1500), 10e9, delay, cfg)
		tcfg := tcp.DefaultConfig()
		r.b.Listen(port, tcp.NewListener(r.b, tcfg, nil))
		s := tcp.NewSender(r.a, r.b.ID, port, 1_000_000, tcfg)
		s.Start()
		r.net.Eng.RunUntil(10 * sim.Second)
		if !s.Done() {
			b.Fatal("transfer incomplete")
		}
	}
}

// BenchmarkShimRewrite isolates the per-ACK hot path: the rwnd clamp with
// its incremental checksum patch, no network around it.
func BenchmarkShimRewrite(b *testing.B) {
	eng := sim.New()
	s := NewShim(eng, DefaultConfig(testRTT(25*sim.Microsecond)), 0)
	e := &flowEntry{wndSegs: 2, wscale: 7}
	p := &netem.Packet{Flags: netem.FlagACK, Rwnd: 0xffff, WScaleOpt: -1}
	netem.SetChecksum(p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Rwnd = 0xffff
		s.clampRwnd(p, e)
	}
}

// BenchmarkTokenBucket isolates the SYN-ACK pacer.
func BenchmarkTokenBucket(b *testing.B) {
	tb := newTokenBucket(4, 1000)
	for i := 0; i < b.N; i++ {
		tb.take(int64(i) * 300)
	}
}
