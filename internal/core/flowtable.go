package core

import (
	"hwatch/internal/netem"
	"hwatch/internal/sim"
)

// flowEntry is one row of the shim's flow table, keyed by the 4-tuple of
// the *data direction* (sender -> receiver), exactly like the paper's
// hash-table indexed by source/destination IPs and ports. It stores the
// window-scale factor exchanged at setup, the ECN mark accounting, and the
// current window verdict.
//
// Entries live in generation-indexed slabs (see flowTable below), not
// behind individual heap pointers: the row is owned by the table, handed
// out as a *flowEntry that stays valid only until remove. Anything that
// outlives a packet callback — the epoch timer, the post-expiry linger —
// must hold the entry's flowHandle and re-resolve it, never the pointer.
type flowEntry struct {
	key  netem.FlowKey
	role role

	// Slab bookkeeping. gen is the occupancy generation drawn from the
	// table's counter at ensure time; live distinguishes an occupied slot
	// from a freed one awaiting reuse.
	slot uint32
	gen  uint32
	live bool

	// self is the entry's handle pre-boxed as an `any`, so the per-flow
	// timers (epoch close, post-expiry linger) schedule through
	// ScheduleArg without boxing per event: one 8-byte box per flow
	// lifetime instead of one per RTT.
	self any

	// Receiver side: the guest's advertised window scale, captured from
	// the SYN-ACK so clamps re-encode correctly (Section IV-E).
	wscale   int8
	guestECN bool // guest negotiated ECN itself; don't dye its packets

	// Rule 2 state.
	probesSeen   int
	probesMarked int
	stamped      bool // SYN-ACK already rewritten

	// Rule 1 state: per-epoch data-packet mark accounting.
	unmarked    int
	marked      int
	cleanEpochs int // consecutive epochs without a mark
	wndSegs     int // current clamp; <0 until established
	epoch       *sim.Event

	lastActive int64 // last packet seen, for idle GC
	closed     bool
}

// flowHandle names a table row as {slot, generation}: 32 bits of slot index
// in the low word, 32 bits of generation in the high word. The zero handle
// is never valid (generations start at 1). A handle resolves to an entry
// only while that exact occupancy is live — after remove, or after the slot
// is reused by a later flow, resolve returns nil. Generations are drawn
// from a per-table counter that survives Crash (the replacement table
// continues it), so a handle minted before a wipe can never alias a row
// created after it.
type flowHandle uint64

func makeHandle(slot, gen uint32) flowHandle {
	return flowHandle(uint64(gen)<<32 | uint64(slot))
}

func (h flowHandle) slot() uint32 { return uint32(h) }
func (h flowHandle) gen() uint32  { return uint32(h >> 32) }

// flowChunkShift sizes the slab chunks: 1<<flowChunkShift entries each.
// Chunks are never reallocated once grown, so *flowEntry pointers handed
// out by get/ensure remain stable for the entry's lifetime even as the
// table grows — growth appends a chunk, it never moves existing rows.
const (
	flowChunkShift = 8
	flowChunkSize  = 1 << flowChunkShift
	flowChunkMask  = flowChunkSize - 1
)

// flowBucket is one slot of the open-addressing key index. h == 0 marks an
// empty bucket (valid handles are never zero).
type flowBucket struct {
	h   flowHandle
	key netem.FlowKey
}

// flowTable is the slab-backed flow state store: a dense chunked array of
// rows addressed by slot, a freelist of vacated slots, and a compact
// linear-probing index from FlowKey to handle. Compared to the previous
// map[FlowKey]*flowEntry it allocates nothing per flow on the steady path
// (rows are recycled through the freelist), keeps rows cache-dense, and
// gives the GC two flat slices to scan instead of a pointer per flow.
//
// Determinism: FlowKey.Hash is seedless, so the probe order — and with it
// every observable iteration the table performs (index rebuilds) — is
// identical across processes. Sweeps iterate slot order, which is
// insertion/reuse order and equally deterministic; nothing here depends on
// the runtime's seeded map hash.
type flowTable struct {
	slabs [][]flowEntry // chunked rows; slabs[s>>shift][s&mask]
	free  []uint32      // vacated slots, reused LIFO
	next  uint32        // lowest never-occupied slot
	used  int           // live rows

	idx  []flowBucket // open-addressing key index, power-of-two sized
	mask uint64

	genc uint32 // next generation to assign; starts at 1, never reused (ensure panics on wrap)
}

const flowIdxInitial = 128

func newFlowTable() *flowTable { return newFlowTableGen(1) }

// newFlowTableGen builds a table whose generation counter starts at gen;
// Crash uses it so the replacement table cannot re-mint handles the wiped
// table already handed out.
func newFlowTableGen(gen uint32) *flowTable {
	if gen == 0 {
		gen = 1
	}
	return &flowTable{
		idx:  make([]flowBucket, flowIdxInitial),
		mask: flowIdxInitial - 1,
		genc: gen,
	}
}

// at returns the row at slot. The slot must be < t.next.
func (t *flowTable) at(slot uint32) *flowEntry {
	return &t.slabs[slot>>flowChunkShift][slot&flowChunkMask]
}

func (t *flowTable) get(k netem.FlowKey) *flowEntry {
	i := k.Hash() & t.mask
	for {
		b := &t.idx[i]
		if b.h == 0 {
			return nil
		}
		if b.key == k {
			return t.rowOf(b)
		}
		i = (i + 1) & t.mask
	}
}

// rowOf resolves an index bucket to its slab row, checking that the row is
// still the occupancy the bucket was minted for. The index and slab are
// updated in lockstep, so a dead or recycled row here means the index is
// corrupt — panic rather than silently alias one flow's state to another.
func (t *flowTable) rowOf(b *flowBucket) *flowEntry {
	e := t.at(b.h.slot())
	if !e.live || e.gen != b.h.gen() {
		panic("core: flowTable index bucket names a dead or recycled row")
	}
	return e
}

func (t *flowTable) ensure(k netem.FlowKey, r role) (*flowEntry, bool) {
	if e := t.get(k); e != nil {
		return e, false
	}
	var slot uint32
	if n := len(t.free); n > 0 {
		slot = t.free[n-1]
		t.free = t.free[:n-1]
	} else {
		slot = t.next
		t.next++
		if int(slot>>flowChunkShift) == len(t.slabs) {
			t.slabs = append(t.slabs, make([]flowEntry, flowChunkSize))
		}
	}
	gen := t.genc
	t.genc++
	if t.genc == 0 {
		// A wrapped counter would mint handle {0,0} — the empty-bucket
		// sentinel — and start reusing generations, breaking the
		// never-resurrect contract resolve() depends on. 2^32 ensures per
		// table lineage is unreachable in any run we model; fail loudly
		// rather than alias silently.
		panic("core: flowTable generation counter wrapped")
	}
	h := makeHandle(slot, gen)
	// Index the key before the row goes live: idxInsert may grow the index,
	// and idxGrow reinserts every live row — a row already marked live here
	// would be inserted by the grow and then again by idxInsert, leaving a
	// duplicate bucket that outlives remove().
	t.idxInsert(k, h)
	e := t.at(slot)
	*e = flowEntry{
		key:     k,
		role:    r,
		slot:    slot,
		gen:     gen,
		live:    true,
		self:    h,
		wndSegs: -1,
	}
	t.used++
	return e, true
}

// resolve returns the entry a handle names, or nil if that occupancy has
// ended (row removed, slot reused, or table replaced since the handle was
// minted). This is the only safe way to reach a row from a deferred event.
func (t *flowTable) resolve(h flowHandle) *flowEntry {
	slot := h.slot()
	if slot >= t.next {
		return nil
	}
	e := t.at(slot)
	if !e.live || e.gen != h.gen() {
		return nil
	}
	return e
}

// remove vacates the row under k and returns it (nil if absent). The
// returned pointer is only good for a last look at the fields: the slot is
// already on the freelist and its generation retired, so held handles no
// longer resolve and the row may be recycled by the next ensure.
func (t *flowTable) remove(k netem.FlowKey) *flowEntry {
	i := k.Hash() & t.mask
	for {
		b := &t.idx[i]
		if b.h == 0 {
			return nil
		}
		if b.key == k {
			e := t.rowOf(b)
			t.idxDelete(i)
			e.live = false
			e.self = nil
			t.free = append(t.free, e.slot)
			t.used--
			return e
		}
		i = (i + 1) & t.mask
	}
}

func (t *flowTable) len() int { return t.used }

// idxInsert adds a key under linear probing, growing the index at 3/4
// load.
func (t *flowTable) idxInsert(k netem.FlowKey, h flowHandle) {
	if uint64(t.used+1)*4 > uint64(len(t.idx))*3 {
		t.idxGrow()
	}
	i := k.Hash() & t.mask
	for t.idx[i].h != 0 {
		i = (i + 1) & t.mask
	}
	t.idx[i] = flowBucket{h: h, key: k}
}

// idxDelete empties bucket i and backward-shifts the probe chain behind it
// (Knuth 6.4 algorithm R), so lookups need no tombstones.
func (t *flowTable) idxDelete(i uint64) {
	for {
		t.idx[i] = flowBucket{}
		j := i
		for {
			j = (j + 1) & t.mask
			b := t.idx[j]
			if b.h == 0 {
				return
			}
			// b may fill the hole at i iff i lies on b's probe path, i.e.
			// probing from b's home bucket reaches i no later than j.
			home := b.key.Hash() & t.mask
			if ((j - home) & t.mask) >= ((j - i) & t.mask) {
				t.idx[i] = b
				i = j
				break
			}
		}
	}
}

// idxGrow doubles the index and reinserts all live keys in slot order
// (deterministic: slot order is insertion/reuse order).
func (t *flowTable) idxGrow() {
	t.idx = make([]flowBucket, 2*len(t.idx))
	t.mask = uint64(len(t.idx)) - 1
	for slot := uint32(0); slot < t.next; slot++ {
		e := t.at(slot)
		if !e.live {
			continue
		}
		i := e.key.Hash() & t.mask
		for t.idx[i].h != 0 {
			i = (i + 1) & t.mask
		}
		t.idx[i] = flowBucket{h: makeHandle(e.slot, e.gen), key: e.key}
	}
}

// keyLess orders flow keys by 4-tuple; the one total order operator-facing
// listings (Snapshot) present rows in.
func keyLess(a, b netem.FlowKey) bool {
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	if a.SrcPort != b.SrcPort {
		return a.SrcPort < b.SrcPort
	}
	if a.Dst != b.Dst {
		return a.Dst < b.Dst
	}
	return a.DstPort < b.DstPort
}
