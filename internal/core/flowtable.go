package core

import (
	"sort"

	"hwatch/internal/netem"
	"hwatch/internal/sim"
)

// flowEntry is one row of the shim's flow table, keyed by the 4-tuple of
// the *data direction* (sender -> receiver), exactly like the paper's
// hash-table indexed by source/destination IPs and ports. It stores the
// window-scale factor exchanged at setup, the ECN mark accounting, and the
// current window verdict.
type flowEntry struct {
	key  netem.FlowKey
	role role

	// Receiver side: the guest's advertised window scale, captured from
	// the SYN-ACK so clamps re-encode correctly (Section IV-E).
	wscale   int8
	guestECN bool // guest negotiated ECN itself; don't dye its packets

	// Rule 2 state.
	probesSeen   int
	probesMarked int
	stamped      bool // SYN-ACK already rewritten

	// Rule 1 state: per-epoch data-packet mark accounting.
	unmarked    int
	marked      int
	cleanEpochs int // consecutive epochs without a mark
	wndSegs     int // current clamp; <0 until established
	epoch       *sim.Event

	lastActive int64 // last packet seen, for idle GC
	closed     bool
}

// flowTable maps data-direction keys to entries.
type flowTable struct {
	entries map[netem.FlowKey]*flowEntry
}

func newFlowTable() *flowTable {
	return &flowTable{entries: make(map[netem.FlowKey]*flowEntry)}
}

func (t *flowTable) get(k netem.FlowKey) *flowEntry { return t.entries[k] }

func (t *flowTable) ensure(k netem.FlowKey, r role) (*flowEntry, bool) {
	if e, ok := t.entries[k]; ok {
		return e, false
	}
	e := &flowEntry{key: k, role: r, wndSegs: -1}
	t.entries[k] = e
	return e, true
}

func (t *flowTable) remove(k netem.FlowKey) *flowEntry {
	e := t.entries[k]
	delete(t.entries, k)
	return e
}

func (t *flowTable) len() int { return len(t.entries) }

// keyLess orders flow keys by 4-tuple; the one total order every
// iteration with schedule-visible side effects must use.
func keyLess(a, b netem.FlowKey) bool {
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	if a.SrcPort != b.SrcPort {
		return a.SrcPort < b.SrcPort
	}
	if a.Dst != b.Dst {
		return a.Dst < b.Dst
	}
	return a.DstPort < b.DstPort
}

// keysSorted returns the table's keys in 4-tuple order. Sweeps that
// schedule events per entry must iterate this, not the map: map order
// would make event seq assignment depend on the runtime's hash seed.
func (t *flowTable) keysSorted() []netem.FlowKey {
	keys := make([]netem.FlowKey, 0, len(t.entries))
	for k := range t.entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keyLess(keys[i], keys[j]) })
	return keys
}
