package workload

import (
	"math"
	"testing"

	"hwatch/internal/harness"
	"hwatch/internal/sim"
)

func stormPlanFor(seed int64, flows int) []StormFlow {
	return PlanStorm(StormConfig{
		Port:   9000,
		Flows:  flows,
		Sizes:  WebSearch(),
		Start:  10 * sim.Millisecond,
		Window: 50 * sim.Millisecond,
		Rng:    sim.NewRNG(seed),
	}, 40)
}

// TestStormPlanDeterministic pins the generator's reproducibility
// contract: the same splitmix64-derived seed yields the identical
// arrival/size/source sequence, element for element, and a different seed
// yields a different one.
func TestStormPlanDeterministic(t *testing.T) {
	seed := harness.SeedFor("storm/websearch", 42)
	a := stormPlanFor(seed, 2000)
	b := stormPlanFor(seed, 2000)
	if len(a) != len(b) {
		t.Fatalf("plan lengths diverged: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("flow %d diverged under one seed: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := stormPlanFor(harness.SeedFor("storm/websearch", 43), 2000)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced an identical plan")
	}
}

// TestStormPlanShape checks the plan's structural invariants: arrivals
// start at Start and never go backwards, sizes are positive draws from the
// distribution, and sources stay in range.
func TestStormPlanShape(t *testing.T) {
	plan := stormPlanFor(7, 5000)
	if len(plan) != 5000 {
		t.Fatalf("want 5000 flows, got %d", len(plan))
	}
	prev := int64(0)
	for i, f := range plan {
		if f.At < 10*sim.Millisecond {
			t.Fatalf("flow %d arrives at %d, before Start", i, f.At)
		}
		if f.At < prev {
			t.Fatalf("flow %d arrival %d precedes flow %d", i, f.At, i-1)
		}
		prev = f.At
		if f.Size <= 0 {
			t.Fatalf("flow %d has size %d", i, f.Size)
		}
		if f.Src < 0 || f.Src >= 40 {
			t.Fatalf("flow %d source %d out of range", i, f.Src)
		}
	}
}

// cdfAt returns the empirical CDF of samples at x.
func cdfAt(samples []int64, x int64) float64 {
	n := 0
	for _, s := range samples {
		if s <= x {
			n++
		}
	}
	return float64(n) / float64(len(samples))
}

// testCDFConformance draws 10k samples and requires the empirical CDF at
// every knot to sit within binomial noise of the knot's probability: the
// inverse-CDF sampler maps u <= P[i] exactly to sizes <= Size[i].
func testCDFConformance(t *testing.T, name string, d Empirical) {
	t.Helper()
	const n = 10000
	samples := sampleMany(d, n, harness.SeedFor(name, 1))
	for i, p := range d.P {
		got := cdfAt(samples, d.Size[i])
		// ~4 sigma of Binomial(10000, p), floored for the tiny tails.
		tol := 4 * math.Sqrt(p*(1-p)/n)
		if tol < 0.005 {
			tol = 0.005
		}
		if diff := got - p; diff < -tol || diff > tol {
			t.Errorf("%s knot %d (size %d): empirical CDF %.4f, want %.4f +/- %.4f",
				name, i, d.Size[i], got, p, tol)
		}
	}
	// The largest knot is the distribution's maximum: nothing may exceed it.
	max := d.Size[len(d.Size)-1]
	for _, s := range samples {
		if s > max {
			t.Fatalf("%s sample %d exceeds distribution max %d", name, s, max)
		}
	}
}

func TestWebSearchCDFConformance(t *testing.T) {
	testCDFConformance(t, "cdf/websearch", WebSearch())
}

func TestDataMiningCDFConformance(t *testing.T) {
	testCDFConformance(t, "cdf/datamining", DataMining())
}
