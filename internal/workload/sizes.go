package workload

import (
	"math"
	"sort"

	"hwatch/internal/sim"
)

// SizeDist samples flow sizes in bytes.
type SizeDist interface {
	Sample(rng *sim.RNG) int64
	// Mean returns the distribution's expected size (for load math).
	Mean() float64
}

// Constant always returns the same size.
type Constant int64

// Sample implements SizeDist.
func (c Constant) Sample(*sim.RNG) int64 { return int64(c) }

// Mean implements SizeDist.
func (c Constant) Mean() float64 { return float64(c) }

// UniformSize samples uniformly in [Lo, Hi].
type UniformSize struct{ Lo, Hi int64 }

// Sample implements SizeDist.
func (u UniformSize) Sample(r *sim.RNG) int64 { return r.UniformRange(u.Lo, u.Hi) }

// Mean implements SizeDist.
func (u UniformSize) Mean() float64 { return float64(u.Lo+u.Hi) / 2 }

// ParetoSize is a bounded Pareto (heavy tail), the classic model for flow
// sizes.
type ParetoSize struct {
	Shape    float64
	Min, Max int64
}

// Sample implements SizeDist.
func (p ParetoSize) Sample(r *sim.RNG) int64 { return r.Pareto(p.Shape, p.Min, p.Max) }

// Mean implements SizeDist (approximated numerically for the bounded tail).
func (p ParetoSize) Mean() float64 {
	// E[X] for bounded Pareto with shape a on [L,H]:
	// a*L^a/(a-1) * (L^(1-a) - H^(1-a)) / (1 - (L/H)^a), a != 1.
	a := p.Shape
	l, h := float64(p.Min), float64(p.Max)
	if a == 1 {
		return l * h / (h - l) * math.Log(h/l)
	}
	la := math.Pow(l, a)
	return a * la / (a - 1) * (math.Pow(l, 1-a) - math.Pow(h, 1-a)) / (1 - math.Pow(l/h, a))
}

// Empirical is an inverse-CDF sampler over (probability, size) knots with
// linear interpolation between them, as used for trace-derived workloads.
type Empirical struct {
	// P ascending in (0,1]; Size the flow size at that cumulative
	// probability. The first knot is implicitly extended from P=0.
	P    []float64
	Size []int64
}

// Sample implements SizeDist.
func (e Empirical) Sample(r *sim.RNG) int64 {
	u := r.Float64()
	i := sort.SearchFloat64s(e.P, u)
	if i >= len(e.P) {
		return e.Size[len(e.Size)-1]
	}
	if i == 0 {
		// Interpolate from (0, Size[0]).
		frac := u / e.P[0]
		return int64(float64(e.Size[0]) * maxFloat(frac, 1e-3))
	}
	frac := (u - e.P[i-1]) / (e.P[i] - e.P[i-1])
	lo, hi := float64(e.Size[i-1]), float64(e.Size[i])
	return int64(lo + frac*(hi-lo))
}

// Mean implements SizeDist (trapezoid over the knots).
func (e Empirical) Mean() float64 {
	total := 0.0
	prevP := 0.0
	prevS := float64(e.Size[0])
	for i := range e.P {
		s := float64(e.Size[i])
		total += (e.P[i] - prevP) * (prevS + s) / 2
		prevP, prevS = e.P[i], s
	}
	return total
}

// WebSearch returns the query-traffic flow-size distribution reported in
// the DCTCP paper (Alizadeh et al., Fig. 4 there): mostly small query and
// background flows with a heavy tail of multi-MB updates.
func WebSearch() Empirical {
	return Empirical{
		P:    []float64{0.15, 0.2, 0.3, 0.4, 0.53, 0.6, 0.7, 0.8, 0.9, 0.97, 1.0},
		Size: []int64{6e3, 13e3, 19e3, 33e3, 53e3, 133e3, 667e3, 1333e3, 3333e3, 6667e3, 20e6},
	}
}

// DataMining returns the VL2-style data-mining distribution (Greenberg et
// al.): ~80% of flows under 10 KB with a very heavy elephant tail.
func DataMining() Empirical {
	return Empirical{
		P:    []float64{0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99, 1.0},
		Size: []int64{1e3, 2e3, 5e3, 10e3, 100e3, 1e6, 10e6, 100e6},
	}
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
