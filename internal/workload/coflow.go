package workload

import (
	"hwatch/internal/netem"
	"hwatch/internal/sim"
	"hwatch/internal/tcp"
)

// CoflowConfig models the paper's application-level motivation: a job
// (partition-aggregate round, shuffle stage) issues Width parallel flows
// and completes only when the *last* one finishes, so one straggler —
// typically an RTO victim — delays the whole job (Section II-B,
// Observation 3 and the coflow citations).
type CoflowConfig struct {
	Port     uint16
	Width    int   // parallel flows per job
	FlowSize int64 // bytes per constituent flow
	Jobs     int
	FirstJob int64
	JobEvery int64
	Jitter   int64 // mean start jitter between a job's flows
	Rng      *sim.RNG
}

// Coflows tracks job progress.
type Coflows struct {
	JobsStarted   int
	JobsCompleted int
	// JCTs holds each completed job's completion time (ns): the span from
	// the job's first flow start to its last flow completion.
	JCTs []int64
	// StragglerRatio per job: JCT / median constituent FCT — how much the
	// slowest flow stretched the job.
	StragglerRatio []float64
}

// RunCoflows schedules the jobs: each picks Width distinct sources (round
// robin over srcs) and sends FlowSize bytes to dst. onJob (optional) fires
// per completed job with its JCT.
func RunCoflows(srcs []*netem.Host, dst netem.NodeID, tcfg tcp.Config, cfg CoflowConfig, onJob func(jct int64)) *Coflows {
	if cfg.Rng == nil {
		panic("workload: coflows need an RNG")
	}
	if cfg.Width <= 0 || cfg.Width > len(srcs) {
		panic("workload: coflow width must be in [1, len(srcs)]")
	}
	co := &Coflows{}
	eng := srcs[0].Eng

	for j := 0; j < cfg.Jobs; j++ {
		jobStart := cfg.FirstJob + int64(j)*cfg.JobEvery
		order := cfg.Rng.Perm(len(srcs))[:cfg.Width]
		pending := cfg.Width
		var fcts []int64
		var startedAt int64 = -1
		at := jobStart
		for _, idx := range order {
			h := srcs[idx]
			at += cfg.Rng.Exp(cfg.Jitter)
			start := at
			eng.At(start, func() {
				if startedAt < 0 {
					startedAt = eng.Now()
					co.JobsStarted++
				}
				s := tcp.NewSender(h, dst, cfg.Port, cfg.FlowSize, tcfg)
				s.OnComplete = func(fct int64) {
					fcts = append(fcts, fct)
					pending--
					if pending == 0 {
						jct := eng.Now() - startedAt
						co.JobsCompleted++
						co.JCTs = append(co.JCTs, jct)
						co.StragglerRatio = append(co.StragglerRatio, stragglerRatio(jct, fcts))
						if onJob != nil {
							onJob(jct)
						}
					}
				}
				s.Start()
			})
		}
	}
	return co
}

// stragglerRatio divides the job completion time by the median flow FCT.
func stragglerRatio(jct int64, fcts []int64) float64 {
	if len(fcts) == 0 {
		return 0
	}
	// Median via partial sort (n is small).
	sorted := append([]int64(nil), fcts...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	med := sorted[len(sorted)/2]
	if med <= 0 {
		return 0
	}
	return float64(jct) / float64(med)
}
