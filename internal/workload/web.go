package workload

import (
	"hwatch/internal/netem"
	"hwatch/internal/sim"
	"hwatch/internal/tcp"
)

// WebConfig reproduces the testbed workload of Section VI: web servers
// deliver a fixed-size object (11.5 KB Apache page) to requesting clients
// over Parallel lanes per (client, server) pair; a request epoch fires all
// lanes near-simultaneously and epochs repeat.
//
// Data flows server -> client (the response), so servers are the active
// openers in this model and clients listen; congestion builds at the core
// port toward the client rack, as on the real testbed.
type WebConfig struct {
	Port          uint16
	ObjectSize    int64 // paper: 11.5 KB
	Parallel      int   // parallel connections per (client, server) pair
	Epochs        int
	FirstEpoch    int64
	EpochInterval int64
	JitterMean    int64 // mean start jitter between consecutive lanes
	Rng           *sim.RNG
}

// Web tracks web-workload progress.
type Web struct {
	Started   int
	Completed int
	Senders   []*tcp.Sender
}

// RunWeb schedules Epochs rounds of Parallel fetches from every server to
// every client. Clients must already be listening on cfg.Port.
func RunWeb(servers, clients []*netem.Host, tcfg tcp.Config, cfg WebConfig, onDone FlowDone) *Web {
	if cfg.Rng == nil {
		panic("workload: web needs an RNG")
	}
	if len(servers) == 0 || len(clients) == 0 {
		panic("workload: web needs servers and clients")
	}
	w := &Web{}
	eng := servers[0].Eng
	for e := 0; e < cfg.Epochs; e++ {
		at := cfg.FirstEpoch + int64(e)*cfg.EpochInterval
		for _, srv := range servers {
			for _, cli := range clients {
				for lane := 0; lane < cfg.Parallel; lane++ {
					at += cfg.Rng.Exp(cfg.JitterMean)
					srv, cli := srv, cli
					start := at
					eng.At(start, func() {
						s := tcp.NewSender(srv, cli.ID, cfg.Port, cfg.ObjectSize, tcfg)
						w.Senders = append(w.Senders, s)
						w.Started++
						s.OnComplete = func(fct int64) {
							w.Completed++
							if onDone != nil {
								onDone(fct, cfg.ObjectSize)
							}
						}
						s.Start()
					})
				}
			}
		}
	}
	return w
}
