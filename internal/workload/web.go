package workload

import (
	"hwatch/internal/netem"
	"hwatch/internal/sim"
	"hwatch/internal/tcp"
)

// WebConfig reproduces the testbed workload of Section VI: web servers
// deliver a fixed-size object (11.5 KB Apache page) to requesting clients
// over Parallel lanes per (client, server) pair; a request epoch fires all
// lanes near-simultaneously and epochs repeat.
//
// Data flows server -> client (the response), so servers are the active
// openers in this model and clients listen; congestion builds at the core
// port toward the client rack, as on the real testbed.
type WebConfig struct {
	Port          uint16
	ObjectSize    int64 // paper: 11.5 KB
	Parallel      int   // parallel connections per (client, server) pair
	Epochs        int
	FirstEpoch    int64
	EpochInterval int64
	JitterMean    int64 // mean start jitter between consecutive lanes
	Rng           *sim.RNG
}

// Web tracks web-workload progress. The counters are zero until Finalize
// folds the per-flow slots in; use LiveSenders mid-run.
type Web struct {
	Started   int
	Completed int
	Senders   []*tcp.Sender

	slots     []flowSlot
	size      int64
	onDone    FlowDone
	finalized bool
}

// RunWeb schedules Epochs rounds of Parallel fetches from every server to
// every client, each fetch starting on its server's own engine. Clients
// must already be listening on cfg.Port. onDone (optional) fires once per
// completed fetch, from Finalize, in plan order.
func RunWeb(servers, clients []*netem.Host, tcfg tcp.Config, cfg WebConfig, onDone FlowDone) *Web {
	if cfg.Rng == nil {
		panic("workload: web needs an RNG")
	}
	if len(servers) == 0 || len(clients) == 0 {
		panic("workload: web needs servers and clients")
	}
	w := &Web{size: cfg.ObjectSize, onDone: onDone}
	for e := 0; e < cfg.Epochs; e++ {
		at := cfg.FirstEpoch + int64(e)*cfg.EpochInterval
		for _, srv := range servers {
			for _, cli := range clients {
				for lane := 0; lane < cfg.Parallel; lane++ {
					at += cfg.Rng.Exp(cfg.JitterMean)
					srv, cli := srv, cli
					start := at
					slot := len(w.slots)
					w.slots = append(w.slots, flowSlot{host: srv})
					srv.Eng.At(start, func() {
						sl := &w.slots[slot]
						s := tcp.NewSender(srv, cli.ID, cfg.Port, cfg.ObjectSize, tcfg)
						sl.s = s
						s.OnComplete = func(fct int64) {
							sl.fct = fct
							sl.done = true
						}
						s.Start()
					})
				}
			}
		}
	}
	return w
}

// LiveSenders snapshots the senders created so far, in plan order.
func (w *Web) LiveSenders() []*tcp.Sender { return liveSenders(w.slots) }

// Finalize folds the per-flow slots into the public counters and fires the
// onDone callbacks, all in plan order. Call it once the engines are
// stopped; repeated calls are no-ops.
func (w *Web) Finalize() {
	if w.finalized {
		return
	}
	w.finalized = true
	for i := range w.slots {
		sl := &w.slots[i]
		if sl.s == nil {
			continue
		}
		w.Senders = append(w.Senders, sl.s)
		w.Started++
		if !sl.done {
			continue
		}
		w.Completed++
		if w.onDone != nil {
			w.onDone(sl.fct, w.size)
		}
	}
}
