package workload

import (
	"hwatch/internal/netem"
	"hwatch/internal/sim"
	"hwatch/internal/tcp"
)

// OnOffConfig models the ON-OFF traffic pattern data-center measurement
// studies report (Benson et al., Kandula et al. — Section IV-A of the
// paper): a source alternates between an ON period, during which it
// transfers a burst, and an idle OFF period, with exponentially
// distributed durations.
type OnOffConfig struct {
	Port      uint16
	BurstSize int64 // bytes per ON period
	MeanOff   int64 // mean OFF duration, ns
	StartAt   int64
	StopAt    int64 // no new bursts after this time
	Rng       *sim.RNG
}

// OnOff tracks one ON-OFF source.
type OnOff struct {
	Bursts    int
	Completed int
}

// StartOnOff runs the ON-OFF loop from src to dst. Each ON period is one
// finite flow; the next burst starts an exponential OFF time after the
// previous completes. onDone (optional) fires per burst with its FCT.
func StartOnOff(src *netem.Host, dst netem.NodeID, tcfg tcp.Config, cfg OnOffConfig, onDone FlowDone) *OnOff {
	if cfg.Rng == nil {
		panic("workload: onoff needs an RNG")
	}
	oo := &OnOff{}
	eng := src.Eng
	var burst func()
	burst = func() {
		if eng.Now() >= cfg.StopAt {
			return
		}
		oo.Bursts++
		s := tcp.NewSender(src, dst, cfg.Port, cfg.BurstSize, tcfg)
		s.OnComplete = func(fct int64) {
			oo.Completed++
			if onDone != nil {
				onDone(fct, cfg.BurstSize)
			}
			off := cfg.Rng.Exp(cfg.MeanOff)
			if off < sim.Microsecond {
				off = sim.Microsecond
			}
			eng.Schedule(off, burst)
		}
		s.Start()
	}
	eng.At(cfg.StartAt, burst)
	return oo
}
