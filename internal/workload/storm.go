package workload

import (
	"hwatch/internal/netem"
	"hwatch/internal/sim"
	"hwatch/internal/tcp"
)

// StormConfig describes an open-loop incast storm: Flows short flows
// arrive as a Poisson process starting at Start (exponential
// inter-arrivals with mean Window/Flows), each drawing its size from
// Sizes and its source host uniformly from the source set. Unlike the
// closed-loop epoch incast (IncastConfig), nothing waits for completions:
// arrivals keep landing while earlier flows are still in slow start, which
// is what drives the 10k-concurrent-flow regimes the scale ladder's storm
// rungs measure.
type StormConfig struct {
	Port   uint16
	Flows  int
	Sizes  SizeDist
	Start  int64 // first arrival, ns
	Window int64 // mean arrival spread: inter-arrival mean is Window/Flows
	Rng    *sim.RNG
}

// StormFlow is one planned flow of a storm.
type StormFlow struct {
	At   int64 // absolute start time, ns
	Size int64 // payload bytes
	Src  int   // index into the source-host set
}

// PlanStorm pre-draws the storm's complete arrival/size/source sequence.
// The plan is a pure function of (config, nSrcs, RNG state): one RNG is
// consumed in a fixed field order per flow, so two storms planned from the
// same splitmix64-derived seed are identical element for element — the
// property the determinism tests pin and the golden storm digests rest on.
func PlanStorm(cfg StormConfig, nSrcs int) []StormFlow {
	if cfg.Rng == nil {
		panic("workload: storm needs an RNG")
	}
	if cfg.Flows <= 0 || nSrcs <= 0 {
		panic("workload: storm needs flows and sources")
	}
	if cfg.Sizes == nil {
		panic("workload: storm needs a size distribution")
	}
	gap := cfg.Window / int64(cfg.Flows)
	plan := make([]StormFlow, cfg.Flows)
	at := cfg.Start
	for i := range plan {
		if gap > 0 {
			at += cfg.Rng.Exp(gap)
		}
		plan[i] = StormFlow{
			At:   at,
			Size: cfg.Sizes.Sample(cfg.Rng),
			Src:  int(cfg.Rng.UniformRange(0, int64(nSrcs-1))),
		}
	}
	return plan
}

// Storm tracks generator progress. Because the storm is open-loop against
// a bottleneck it deliberately overloads, Completed < Started at the end
// of a bounded run is expected: the FCT samples cover the flows that made
// it, Started/Completed expose the backlog.
type Storm struct {
	Plan      []StormFlow
	Started   int
	Completed int
	TimedOut  int   // completed flows that saw >= 1 RTO
	Bytes     int64 // payload bytes of completed flows
	Senders   []*tcp.Sender
}

// RunStorm schedules the whole plan. onDone (optional) fires per completed
// flow with its FCT and size.
func RunStorm(srcs []*netem.Host, dst netem.NodeID, cfgFor func(*netem.Host) tcp.Config, cfg StormConfig, onDone FlowDone) *Storm {
	st := &Storm{Plan: PlanStorm(cfg, len(srcs))}
	eng := srcs[0].Eng
	for i := range st.Plan {
		f := st.Plan[i]
		h := srcs[f.Src]
		eng.At(f.At, func() {
			s := tcp.NewSender(h, dst, cfg.Port, f.Size, cfgFor(h))
			st.Senders = append(st.Senders, s)
			st.Started++
			s.OnComplete = func(fct int64) {
				st.Completed++
				st.Bytes += f.Size
				if s.Stats().Timeouts > 0 {
					st.TimedOut++
				}
				if onDone != nil {
					onDone(fct, f.Size)
				}
			}
			s.Start()
		})
	}
	return st
}
