package workload

import (
	"hwatch/internal/netem"
	"hwatch/internal/sim"
	"hwatch/internal/tcp"
)

// StormConfig describes an open-loop incast storm: Flows short flows
// arrive as a Poisson process starting at Start (exponential
// inter-arrivals with mean Window/Flows), each drawing its size from
// Sizes and its source host uniformly from the source set. Unlike the
// closed-loop epoch incast (IncastConfig), nothing waits for completions:
// arrivals keep landing while earlier flows are still in slow start, which
// is what drives the 10k-concurrent-flow regimes the scale ladder's storm
// rungs measure.
type StormConfig struct {
	Port   uint16
	Flows  int
	Sizes  SizeDist
	Start  int64 // first arrival, ns
	Window int64 // mean arrival spread: inter-arrival mean is Window/Flows
	Rng    *sim.RNG
}

// StormFlow is one planned flow of a storm.
type StormFlow struct {
	At   int64 // absolute start time, ns
	Size int64 // payload bytes
	Src  int   // index into the source-host set
}

// PlanStorm pre-draws the storm's complete arrival/size/source sequence.
// The plan is a pure function of (config, nSrcs, RNG state): one RNG is
// consumed in a fixed field order per flow, so two storms planned from the
// same splitmix64-derived seed are identical element for element — the
// property the determinism tests pin and the golden storm digests rest on.
func PlanStorm(cfg StormConfig, nSrcs int) []StormFlow {
	if cfg.Rng == nil {
		panic("workload: storm needs an RNG")
	}
	if cfg.Flows <= 0 || nSrcs <= 0 {
		panic("workload: storm needs flows and sources")
	}
	if cfg.Sizes == nil {
		panic("workload: storm needs a size distribution")
	}
	gap := cfg.Window / int64(cfg.Flows)
	plan := make([]StormFlow, cfg.Flows)
	at := cfg.Start
	for i := range plan {
		if gap > 0 {
			at += cfg.Rng.Exp(gap)
		}
		plan[i] = StormFlow{
			At:   at,
			Size: cfg.Sizes.Sample(cfg.Rng),
			Src:  int(cfg.Rng.UniformRange(0, int64(nSrcs-1))),
		}
	}
	return plan
}

// Storm tracks generator progress. Because the storm is open-loop against
// a bottleneck it deliberately overloads, Completed < Started at the end
// of a bounded run is expected: the FCT samples cover the flows that made
// it, Started/Completed expose the backlog. The counters are zero until
// Finalize folds the per-flow slots in; use LiveSenders mid-run.
type Storm struct {
	Plan      []StormFlow
	Started   int
	Completed int
	TimedOut  int   // completed flows that saw >= 1 RTO
	Bytes     int64 // payload bytes of completed flows
	Senders   []*tcp.Sender

	slots     []flowSlot
	onDone    FlowDone
	finalized bool
}

// RunStorm schedules the whole plan, each flow on its source host's own
// engine. onDone (optional) fires once per completed flow with its FCT and
// size, from Finalize, in plan order.
func RunStorm(srcs []*netem.Host, dst netem.NodeID, cfgFor func(*netem.Host) tcp.Config, cfg StormConfig, onDone FlowDone) *Storm {
	st := &Storm{Plan: PlanStorm(cfg, len(srcs)), onDone: onDone}
	st.slots = make([]flowSlot, len(st.Plan))
	for i := range st.Plan {
		i := i
		f := st.Plan[i]
		h := srcs[f.Src]
		st.slots[i].host = h
		h.Eng.At(f.At, func() {
			sl := &st.slots[i]
			s := tcp.NewSender(h, dst, cfg.Port, f.Size, cfgFor(h))
			sl.s = s
			s.OnComplete = func(fct int64) {
				sl.fct = fct
				sl.done = true
			}
			s.Start()
		})
	}
	return st
}

// LiveSenders snapshots the senders created so far, in plan order.
func (st *Storm) LiveSenders() []*tcp.Sender { return liveSenders(st.slots) }

// Finalize folds the per-flow slots into the public counters and fires the
// onDone callbacks, all in plan order. Call it once the engines are
// stopped; repeated calls are no-ops.
func (st *Storm) Finalize() {
	if st.finalized {
		return
	}
	st.finalized = true
	for i := range st.slots {
		sl := &st.slots[i]
		if sl.s == nil {
			continue
		}
		st.Senders = append(st.Senders, sl.s)
		st.Started++
		if !sl.done {
			continue
		}
		st.Completed++
		st.Bytes += st.Plan[i].Size
		if sl.s.Stats().Timeouts > 0 {
			st.TimedOut++
		}
		if st.onDone != nil {
			st.onDone(sl.fct, st.Plan[i].Size)
		}
	}
}
