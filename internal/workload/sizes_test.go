package workload

import (
	"math"
	"testing"
	"testing/quick"

	"hwatch/internal/sim"
	"hwatch/internal/tcp"
)

func sampleMany(d SizeDist, n int, seed int64) []int64 {
	rng := sim.NewRNG(seed)
	out := make([]int64, n)
	for i := range out {
		out[i] = d.Sample(rng)
	}
	return out
}

func empiricalMean(v []int64) float64 {
	var sum float64
	for _, x := range v {
		sum += float64(x)
	}
	return sum / float64(len(v))
}

func TestConstantDist(t *testing.T) {
	d := Constant(11500)
	for _, v := range sampleMany(d, 100, 1) {
		if v != 11500 {
			t.Fatal("constant varied")
		}
	}
	if d.Mean() != 11500 {
		t.Fatal("mean")
	}
}

func TestUniformDist(t *testing.T) {
	d := UniformSize{Lo: 1000, Hi: 2000}
	vs := sampleMany(d, 50000, 2)
	for _, v := range vs {
		if v < 1000 || v > 2000 {
			t.Fatalf("out of range: %d", v)
		}
	}
	if m := empiricalMean(vs); math.Abs(m-d.Mean()) > 20 {
		t.Fatalf("mean %f vs %f", m, d.Mean())
	}
}

func TestParetoDist(t *testing.T) {
	d := ParetoSize{Shape: 1.2, Min: 1000, Max: 10_000_000}
	vs := sampleMany(d, 200000, 3)
	for _, v := range vs {
		if v < 1000 || v > 10_000_000 {
			t.Fatalf("out of range: %d", v)
		}
	}
	m := empiricalMean(vs)
	want := d.Mean()
	if m < 0.85*want || m > 1.15*want {
		t.Fatalf("empirical mean %.0f vs analytic %.0f", m, want)
	}
}

func TestEmpiricalDistributions(t *testing.T) {
	for name, d := range map[string]Empirical{
		"websearch":  WebSearch(),
		"datamining": DataMining(),
	} {
		vs := sampleMany(d, 100000, 4)
		max := d.Size[len(d.Size)-1]
		small := 0
		for _, v := range vs {
			if v <= 0 || v > max {
				t.Fatalf("%s: sample %d out of range", name, v)
			}
			if v <= 10_000 {
				small++
			}
		}
		// Both traces are dominated by small flows (the paper's premise:
		// 80-95% of flows are small).
		frac := float64(small) / float64(len(vs))
		if name == "datamining" && frac < 0.7 {
			t.Fatalf("%s: small-flow fraction %.2f too low", name, frac)
		}
		m := empiricalMean(vs)
		want := d.Mean()
		if m < 0.8*want || m > 1.2*want {
			t.Fatalf("%s: empirical mean %.0f vs knot mean %.0f", name, m, want)
		}
	}
}

// Property: empirical sampling is monotone in the uniform draw (inverse
// CDF) and respects knot bounds.
func TestPropertyEmpiricalBounds(t *testing.T) {
	d := WebSearch()
	f := func(seed int64) bool {
		rng := sim.NewRNG(seed)
		v := d.Sample(rng)
		return v > 0 && v <= d.Size[len(d.Size)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestLoadFor(t *testing.T) {
	d := Constant(12500) // 100 kbit flows
	// 50% of 1 Gb/s = 5e8 bit/s => 5000 flows/s.
	rate := LoadFor(0.5, 1e9, d)
	if math.Abs(rate-5000) > 1 {
		t.Fatalf("LoadFor = %f", rate)
	}
}

func TestRunPoisson(t *testing.T) {
	d := smallDumbbell(8)
	tcfg := tcp.DefaultConfig()
	d.Receiver.Listen(port, tcp.NewListener(d.Receiver, tcfg, nil))
	dist := WebSearch()
	var fcts int
	po := RunPoisson(d.Senders, d.Receiver.ID, tcfg, PoissonConfig{
		Port:        port,
		ArrivalRate: LoadFor(0.3, 10e9, dist), // 30% load on the 10G bottleneck
		Dist:        dist,
		StartAt:     0,
		StopAt:      100 * sim.Millisecond,
		Rng:         sim.NewRNG(5),
	}, func(fct, size int64) {
		fcts++
		if size <= 0 {
			t.Error("bad size in callback")
		}
	})
	d.Net.Eng.RunUntil(10 * sim.Second)
	if po.Started < 10 {
		t.Fatalf("only %d arrivals in 100ms at 30%% load", po.Started)
	}
	if po.Completed < po.Started*9/10 {
		t.Fatalf("completed %d of %d", po.Completed, po.Started)
	}
	if fcts != po.Completed {
		t.Fatalf("callback count %d != completed %d", fcts, po.Completed)
	}
	// Arrival count sanity: rate*0.1s within a loose factor.
	expect := LoadFor(0.3, 10e9, dist) * 0.1
	if float64(po.Started) < expect/2 || float64(po.Started) > expect*2 {
		t.Fatalf("arrivals %d vs expected ~%.0f", po.Started, expect)
	}
}

func TestPoissonValidation(t *testing.T) {
	d := smallDumbbell(1)
	for name, fn := range map[string]func(){
		"no rng": func() {
			RunPoisson(d.Senders, d.Receiver.ID, tcp.DefaultConfig(), PoissonConfig{ArrivalRate: 1, Dist: Constant(1)}, nil)
		},
		"no rate": func() {
			RunPoisson(d.Senders, d.Receiver.ID, tcp.DefaultConfig(), PoissonConfig{Rng: sim.NewRNG(1), Dist: Constant(1)}, nil)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
