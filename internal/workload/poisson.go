package workload

import (
	"hwatch/internal/netem"
	"hwatch/internal/sim"
	"hwatch/internal/tcp"
)

// PoissonConfig is the standard open-loop data-center load model: flows
// arrive as a Poisson process of ArrivalRate flows/second, each from a
// uniformly chosen source, with sizes drawn from Dist. Offered load on a
// bottleneck of rate C is ArrivalRate * Dist.Mean() * 8 / C.
type PoissonConfig struct {
	Port        uint16
	ArrivalRate float64 // flows per second
	Dist        SizeDist
	StartAt     int64
	StopAt      int64 // no new arrivals after this time
	Rng         *sim.RNG
}

// LoadFor returns the arrival rate achieving the given offered load (0..1)
// on a bottleneck of rateBps with the given size distribution.
func LoadFor(load float64, rateBps int64, dist SizeDist) float64 {
	return load * float64(rateBps) / 8 / dist.Mean()
}

// Poisson tracks open-loop generator progress.
type Poisson struct {
	Started   int
	Completed int
	Bytes     int64 // total bytes offered
}

// RunPoisson schedules the arrival process from srcs to dst. onDone
// (optional) fires per completed flow with (fct, size).
func RunPoisson(srcs []*netem.Host, dst netem.NodeID, tcfg tcp.Config, cfg PoissonConfig, onDone FlowDone) *Poisson {
	if cfg.Rng == nil {
		panic("workload: poisson needs an RNG")
	}
	if cfg.ArrivalRate <= 0 || cfg.Dist == nil {
		panic("workload: poisson needs a rate and a size distribution")
	}
	po := &Poisson{}
	eng := srcs[0].Eng
	meanGap := int64(float64(sim.Second) / cfg.ArrivalRate)

	var arrive func()
	arrive = func() {
		if eng.Now() >= cfg.StopAt {
			return
		}
		src := srcs[cfg.Rng.Intn(len(srcs))]
		size := cfg.Dist.Sample(cfg.Rng)
		po.Started++
		po.Bytes += size
		s := tcp.NewSender(src, dst, cfg.Port, size, tcfg)
		s.OnComplete = func(fct int64) {
			po.Completed++
			if onDone != nil {
				onDone(fct, size)
			}
		}
		s.Start()
		eng.Schedule(cfg.Rng.Exp(meanGap)+1, arrive)
	}
	eng.At(cfg.StartAt, func() { eng.Schedule(cfg.Rng.Exp(meanGap), arrive) })
	return po
}
