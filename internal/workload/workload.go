// Package workload generates the paper's traffic patterns: persistent
// long-lived flows (iperf surrogates), correlated incast epochs of
// short-lived flows (Section V), closed-loop web-object fetches for the
// testbed scenario (Section VI), and ON-OFF background traffic.
//
// All generators schedule guest connections inside the simulation and
// report per-flow completion times through callbacks; they never reach
// around the public TCP API, so any shim/AQM combination applies.
package workload

import (
	"hwatch/internal/netem"
	"hwatch/internal/sim"
	"hwatch/internal/tcp"
)

// FlowDone receives a completed flow's FCT (ns) and byte size.
type FlowDone func(fct int64, size int64)

// LongLivedConfig describes a set of persistent bulk flows.
type LongLivedConfig struct {
	Port    uint16
	StartAt int64 // all flows start here (with per-flow jitter below)
	Jitter  int64 // uniform [0, Jitter) start offset per flow
	Rng     *sim.RNG
}

// LongLived tracks the senders of a persistent-flow set.
type LongLived struct {
	Senders []*tcp.Sender
}

// StartLongLived launches one infinite flow from each src host to dst.
// Receivers must already be listening on cfg.Port at dst.
func StartLongLived(srcs []*netem.Host, dst netem.NodeID, tcfg tcp.Config, cfg LongLivedConfig) *LongLived {
	ll := &LongLived{}
	for _, h := range srcs {
		h := h
		s := tcp.NewSender(h, dst, cfg.Port, tcp.Infinite, tcfg)
		ll.Senders = append(ll.Senders, s)
		at := cfg.StartAt
		if cfg.Jitter > 0 && cfg.Rng != nil {
			at += cfg.Rng.UniformRange(0, cfg.Jitter-1)
		}
		h.Eng.At(at, s.Start)
	}
	return ll
}

// IncastConfig describes the paper's short-flow surge pattern: E epochs; in
// each epoch every source transmits FlowSize bytes to the aggregator, in
// random order, with inter-arrival times averaging one segment
// transmission time — producing correlated starts (the incast problem).
type IncastConfig struct {
	Port          uint16
	FlowSize      int64
	Epochs        int
	FirstEpoch    int64 // start of epoch 0
	EpochInterval int64 // spacing between epoch starts
	JitterMean    int64 // mean inter-arrival between consecutive flow starts
	Rng           *sim.RNG
}

// Incast tracks generator progress.
type Incast struct {
	Started   int
	Completed int
	TimedOut  []*tcp.Sender // senders whose flows saw >= 1 RTO
	Senders   []*tcp.Sender
	// FCTsByHost groups completion times by source host, so per-source
	// averages and variances across epochs can be computed (the paper's
	// Fig. 2a plots exactly those AVG/VAR CDFs).
	FCTsByHost map[netem.NodeID][]int64
}

// RunIncast schedules the epochs. onDone (optional) fires per completed
// flow with its FCT.
func RunIncast(srcs []*netem.Host, dst netem.NodeID, tcfg tcp.Config, cfg IncastConfig, onDone FlowDone) *Incast {
	return RunIncastConfigs(srcs, dst, func(*netem.Host) tcp.Config { return tcfg }, cfg, onDone)
}

// RunIncastConfigs is RunIncast with a per-host guest configuration — the
// coexistence scenarios give different tenants different congestion
// controllers.
func RunIncastConfigs(srcs []*netem.Host, dst netem.NodeID, cfgFor func(*netem.Host) tcp.Config, cfg IncastConfig, onDone FlowDone) *Incast {
	if cfg.Rng == nil {
		panic("workload: incast needs an RNG")
	}
	if len(srcs) == 0 || cfg.Epochs <= 0 {
		panic("workload: incast needs sources and epochs")
	}
	inc := &Incast{FCTsByHost: make(map[netem.NodeID][]int64)}
	eng := srcs[0].Eng
	for e := 0; e < cfg.Epochs; e++ {
		epochStart := cfg.FirstEpoch + int64(e)*cfg.EpochInterval
		// Random sender order per epoch.
		order := cfg.Rng.Perm(len(srcs))
		at := epochStart
		for _, idx := range order {
			h := srcs[idx]
			at += cfg.Rng.Exp(cfg.JitterMean)
			start := at
			eng.At(start, func() {
				s := tcp.NewSender(h, dst, cfg.Port, cfg.FlowSize, cfgFor(h))
				inc.Senders = append(inc.Senders, s)
				inc.Started++
				s.OnComplete = func(fct int64) {
					inc.Completed++
					inc.FCTsByHost[h.ID] = append(inc.FCTsByHost[h.ID], fct)
					if s.Stats().Timeouts > 0 {
						inc.TimedOut = append(inc.TimedOut, s)
					}
					if onDone != nil {
						onDone(fct, cfg.FlowSize)
					}
				}
				s.Start()
			})
		}
	}
	return inc
}
