// Package workload generates the paper's traffic patterns: persistent
// long-lived flows (iperf surrogates), correlated incast epochs of
// short-lived flows (Section V), closed-loop web-object fetches for the
// testbed scenario (Section VI), and ON-OFF background traffic.
//
// All generators schedule guest connections inside the simulation and
// report per-flow completion times through callbacks; they never reach
// around the public TCP API, so any shim/AQM combination applies.
package workload

import (
	"hwatch/internal/netem"
	"hwatch/internal/sim"
	"hwatch/internal/tcp"
)

// FlowDone receives a completed flow's FCT (ns) and byte size.
type FlowDone func(fct int64, size int64)

// LongLivedConfig describes a set of persistent bulk flows.
type LongLivedConfig struct {
	Port    uint16
	StartAt int64 // all flows start here (with per-flow jitter below)
	Jitter  int64 // uniform [0, Jitter) start offset per flow
	Rng     *sim.RNG
}

// LongLived tracks the senders of a persistent-flow set.
type LongLived struct {
	Senders []*tcp.Sender
}

// StartLongLived launches one infinite flow from each src host to dst.
// Receivers must already be listening on cfg.Port at dst.
func StartLongLived(srcs []*netem.Host, dst netem.NodeID, tcfg tcp.Config, cfg LongLivedConfig) *LongLived {
	ll := &LongLived{}
	for _, h := range srcs {
		h := h
		s := tcp.NewSender(h, dst, cfg.Port, tcp.Infinite, tcfg)
		ll.Senders = append(ll.Senders, s)
		at := cfg.StartAt
		if cfg.Jitter > 0 && cfg.Rng != nil {
			at += cfg.Rng.UniformRange(0, cfg.Jitter-1)
		}
		h.Eng.At(at, s.Start)
	}
	return ll
}

// IncastConfig describes the paper's short-flow surge pattern: E epochs; in
// each epoch every source transmits FlowSize bytes to the aggregator, in
// random order, with inter-arrival times averaging one segment
// transmission time — producing correlated starts (the incast problem).
type IncastConfig struct {
	Port          uint16
	FlowSize      int64
	Epochs        int
	FirstEpoch    int64 // start of epoch 0
	EpochInterval int64 // spacing between epoch starts
	JitterMean    int64 // mean inter-arrival between consecutive flow starts
	Rng           *sim.RNG
}

// flowSlot is one planned flow's private cell. The start event — scheduled
// on the source host's own engine, so sharded fabrics fire it on the owning
// shard — and the completion callback write only their slot, never shared
// state; Finalize folds the slots into the public counters once the run is
// quiescent.
type flowSlot struct {
	host *netem.Host
	s    *tcp.Sender
	fct  int64
	done bool
}

// liveSenders snapshots the senders the slots have created so far, in plan
// order. Safe whenever no engine is mid-event: between events on a
// single-loop run, at window barriers on a sharded one.
func liveSenders(slots []flowSlot) []*tcp.Sender {
	out := make([]*tcp.Sender, 0, len(slots))
	for i := range slots {
		if s := slots[i].s; s != nil {
			out = append(out, s)
		}
	}
	return out
}

// Incast tracks generator progress. The counters and slices are zero until
// Finalize folds the per-flow slots in — call it (idempotent) after the
// engine stops; use LiveSenders for a mid-run view.
type Incast struct {
	Started   int
	Completed int
	TimedOut  []*tcp.Sender // senders whose flows saw >= 1 RTO
	Senders   []*tcp.Sender
	// FCTsByHost groups completion times by source host, so per-source
	// averages and variances across epochs can be computed (the paper's
	// Fig. 2a plots exactly those AVG/VAR CDFs).
	FCTsByHost map[netem.NodeID][]int64

	slots     []flowSlot
	size      int64
	onDone    FlowDone
	finalized bool
}

// RunIncast schedules the epochs. onDone (optional) fires once per
// completed flow with its FCT, from Finalize, in plan order.
func RunIncast(srcs []*netem.Host, dst netem.NodeID, tcfg tcp.Config, cfg IncastConfig, onDone FlowDone) *Incast {
	return RunIncastConfigs(srcs, dst, func(*netem.Host) tcp.Config { return tcfg }, cfg, onDone)
}

// RunIncastConfigs is RunIncast with a per-host guest configuration — the
// coexistence scenarios give different tenants different congestion
// controllers.
func RunIncastConfigs(srcs []*netem.Host, dst netem.NodeID, cfgFor func(*netem.Host) tcp.Config, cfg IncastConfig, onDone FlowDone) *Incast {
	if cfg.Rng == nil {
		panic("workload: incast needs an RNG")
	}
	if len(srcs) == 0 || cfg.Epochs <= 0 {
		panic("workload: incast needs sources and epochs")
	}
	inc := &Incast{
		FCTsByHost: make(map[netem.NodeID][]int64),
		size:       cfg.FlowSize,
		onDone:     onDone,
	}
	for e := 0; e < cfg.Epochs; e++ {
		epochStart := cfg.FirstEpoch + int64(e)*cfg.EpochInterval
		// Random sender order per epoch.
		order := cfg.Rng.Perm(len(srcs))
		at := epochStart
		for _, idx := range order {
			h := srcs[idx]
			at += cfg.Rng.Exp(cfg.JitterMean)
			start := at
			slot := len(inc.slots)
			inc.slots = append(inc.slots, flowSlot{host: h})
			// Each flow starts on its own host's engine: a sharded fabric
			// fires it on the owning shard, and the shared setup sequence
			// keeps the plan order on simultaneous starts.
			h.Eng.At(start, func() {
				sl := &inc.slots[slot]
				s := tcp.NewSender(h, dst, cfg.Port, cfg.FlowSize, cfgFor(h))
				sl.s = s
				s.OnComplete = func(fct int64) {
					sl.fct = fct
					sl.done = true
				}
				s.Start()
			})
		}
	}
	return inc
}

// LiveSenders snapshots the senders created so far, in plan order (for
// mid-run instrumentation such as the invariant checker).
func (inc *Incast) LiveSenders() []*tcp.Sender { return liveSenders(inc.slots) }

// Finalize folds the per-flow slots into the public counters and fires the
// onDone callbacks, all in plan order. Call it once the engines are
// stopped; repeated calls are no-ops.
func (inc *Incast) Finalize() {
	if inc.finalized {
		return
	}
	inc.finalized = true
	for i := range inc.slots {
		sl := &inc.slots[i]
		if sl.s == nil {
			continue
		}
		inc.Senders = append(inc.Senders, sl.s)
		inc.Started++
		if !sl.done {
			continue
		}
		inc.Completed++
		inc.FCTsByHost[sl.host.ID] = append(inc.FCTsByHost[sl.host.ID], sl.fct)
		if sl.s.Stats().Timeouts > 0 {
			inc.TimedOut = append(inc.TimedOut, sl.s)
		}
		if inc.onDone != nil {
			inc.onDone(sl.fct, inc.size)
		}
	}
}
