package workload

import (
	"testing"

	"hwatch/internal/aqm"
	"hwatch/internal/netem"
	"hwatch/internal/sim"
	"hwatch/internal/tcp"
	"hwatch/internal/topo"
)

const port = 80

func smallDumbbell(nSenders int) *topo.Dumbbell {
	return topo.NewDumbbell(topo.DumbbellConfig{
		Senders:       nSenders,
		EdgeRateBps:   10e9,
		BottleneckBps: 10e9,
		LinkDelay:     25 * sim.Microsecond,
		BottleneckQ:   func() netem.Queue { return aqm.NewDropTail(250) },
		EdgeQ:         func() netem.Queue { return aqm.NewDropTail(100000) },
	})
}

func TestLongLivedStartsAllFlows(t *testing.T) {
	d := smallDumbbell(4)
	tcfg := tcp.DefaultConfig()
	var recvs []*tcp.Receiver
	d.Receiver.Listen(port, tcp.NewListener(d.Receiver, tcfg, func(r *tcp.Receiver) { recvs = append(recvs, r) }))
	rng := sim.NewRNG(1)
	ll := StartLongLived(d.Senders, d.Receiver.ID, tcfg, LongLivedConfig{
		Port: port, StartAt: 0, Jitter: sim.Millisecond, Rng: rng,
	})
	// 500 ms leaves room for a lost SYN's 200 ms RTO recovery.
	d.Net.Eng.RunUntil(500 * sim.Millisecond)
	if len(ll.Senders) != 4 || len(recvs) != 4 {
		t.Fatalf("senders=%d receivers=%d", len(ll.Senders), len(recvs))
	}
	var total int64
	for _, r := range recvs {
		if r.Delivered() == 0 {
			t.Fatal("a long flow delivered nothing")
		}
		total += r.Delivered()
	}
	// 10 Gb/s for ~500 ms ≈ 625 MB; demand 60% despite loss sawtooth.
	if total < 375_000_000 {
		t.Fatalf("aggregate delivery %d too low", total)
	}
}

func TestIncastEpochsCountsAndFCTs(t *testing.T) {
	d := smallDumbbell(10)
	tcfg := tcp.DefaultConfig()
	d.Receiver.Listen(port, tcp.NewListener(d.Receiver, tcfg, nil))
	rng := sim.NewRNG(2)
	var fcts []int64
	inc := RunIncast(d.Senders, d.Receiver.ID, tcfg, IncastConfig{
		Port: port, FlowSize: 10_000, Epochs: 3,
		FirstEpoch:    10 * sim.Millisecond,
		EpochInterval: 100 * sim.Millisecond,
		JitterMean:    sim.Microsecond,
		Rng:           rng,
	}, func(fct, size int64) {
		fcts = append(fcts, fct)
		if size != 10_000 {
			t.Errorf("size = %d", size)
		}
	})
	d.Net.Eng.RunUntil(5 * sim.Second)
	inc.Finalize()
	if inc.Started != 30 {
		t.Fatalf("started %d flows, want 30", inc.Started)
	}
	if inc.Completed != 30 || len(fcts) != 30 {
		t.Fatalf("completed %d (callbacks %d), want 30", inc.Completed, len(fcts))
	}
	for _, f := range fcts {
		if f <= 0 {
			t.Fatal("nonpositive FCT")
		}
	}
}

func TestIncastDeterministicWithSeed(t *testing.T) {
	runOnce := func() []int64 {
		d := smallDumbbell(8)
		tcfg := tcp.DefaultConfig()
		d.Receiver.Listen(port, tcp.NewListener(d.Receiver, tcfg, nil))
		var fcts []int64
		inc := RunIncast(d.Senders, d.Receiver.ID, tcfg, IncastConfig{
			Port: port, FlowSize: 10_000, Epochs: 2,
			FirstEpoch:    sim.Millisecond,
			EpochInterval: 50 * sim.Millisecond,
			JitterMean:    sim.Microsecond,
			Rng:           sim.NewRNG(7),
		}, func(fct, _ int64) { fcts = append(fcts, fct) })
		d.Net.Eng.RunUntil(2 * sim.Second)
		inc.Finalize()
		return fcts
	}
	a, b := runOnce(), runOnce()
	if len(a) != len(b) || len(a) != 16 {
		t.Fatalf("runs differ in count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at flow %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestWebWorkload(t *testing.T) {
	ls := topo.NewLeafSpine(topo.LeafSpineConfig{
		Racks: 2, HostsPerRack: 3,
		EdgeRateBps: 1e9, CoreRateBps: 1e9,
		EdgeDelay: 25 * sim.Microsecond, CoreDelay: 25 * sim.Microsecond,
		EdgeQ: func() netem.Queue { return aqm.NewDropTail(100) },
		CoreQ: func() netem.Queue { return aqm.NewDropTail(100) },
	})
	tcfg := tcp.DefaultConfig()
	clients := ls.Racks[0]
	servers := ls.Racks[1]
	for _, c := range clients {
		c.Listen(port, tcp.NewListener(c, tcfg, nil))
	}
	rng := sim.NewRNG(3)
	var fcts []int64
	w := RunWeb(servers, clients, tcfg, WebConfig{
		Port: port, ObjectSize: 11_500, Parallel: 2, Epochs: 2,
		FirstEpoch:    sim.Millisecond,
		EpochInterval: 200 * sim.Millisecond,
		JitterMean:    10 * sim.Microsecond,
		Rng:           rng,
	}, func(fct, _ int64) { fcts = append(fcts, fct) })
	ls.Net.Eng.RunUntil(10 * sim.Second)
	w.Finalize()
	want := 3 * 3 * 2 * 2 // servers * clients * parallel * epochs
	if w.Started != want || w.Completed != want {
		t.Fatalf("started=%d completed=%d want %d", w.Started, w.Completed, want)
	}
}

func TestOnOff(t *testing.T) {
	d := smallDumbbell(1)
	tcfg := tcp.DefaultConfig()
	d.Receiver.Listen(port, tcp.NewListener(d.Receiver, tcfg, nil))
	oo := StartOnOff(d.Senders[0], d.Receiver.ID, tcfg, OnOffConfig{
		Port: port, BurstSize: 50_000,
		MeanOff: 2 * sim.Millisecond,
		StartAt: 0, StopAt: 200 * sim.Millisecond,
		Rng: sim.NewRNG(4),
	}, nil)
	d.Net.Eng.RunUntil(sim.Second)
	if oo.Bursts < 10 {
		t.Fatalf("only %d bursts in 200ms with ~2ms off periods", oo.Bursts)
	}
	if oo.Completed != oo.Bursts {
		t.Fatalf("bursts=%d completed=%d", oo.Bursts, oo.Completed)
	}
}

func TestLeafSpineCrossRackConnectivity(t *testing.T) {
	ls := topo.NewLeafSpine(topo.LeafSpineConfig{
		Racks: 4, HostsPerRack: 2,
		EdgeRateBps: 1e9, CoreRateBps: 1e9,
		EdgeDelay: 10 * sim.Microsecond, CoreDelay: 10 * sim.Microsecond,
		EdgeQ: func() netem.Queue { return aqm.NewDropTail(1000) },
		CoreQ: func() netem.Queue { return aqm.NewDropTail(1000) },
	})
	tcfg := tcp.DefaultConfig()
	// Every host listens; send a flow between every cross-rack pair of
	// first hosts.
	for _, h := range ls.AllHosts() {
		h.Listen(port, tcp.NewListener(h, tcfg, nil))
	}
	done := 0
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i == j {
				continue
			}
			s := tcp.NewSender(ls.Racks[i][0], ls.Racks[j][1].ID, port, 5000, tcfg)
			s.OnComplete = func(int64) { done++ }
			s.Start()
		}
	}
	ls.Net.Eng.RunUntil(sim.Second)
	if done != 12 {
		t.Fatalf("cross-rack flows completed %d/12", done)
	}
	// Intra-rack too.
	s := tcp.NewSender(ls.Racks[0][0], ls.Racks[0][1].ID, port, 5000, tcfg)
	ok := false
	s.OnComplete = func(int64) { ok = true }
	s.Start()
	ls.Net.Eng.RunUntil(2 * sim.Second)
	if !ok {
		t.Fatal("intra-rack flow failed")
	}
}

func TestDumbbellBottleneckIsShared(t *testing.T) {
	d := smallDumbbell(5)
	tcfg := tcp.DefaultConfig()
	d.Receiver.Listen(port, tcp.NewListener(d.Receiver, tcfg, nil))
	rng := sim.NewRNG(5)
	StartLongLived(d.Senders, d.Receiver.ID, tcfg, LongLivedConfig{Port: port, Rng: rng})
	d.Net.Eng.RunUntil(50 * sim.Millisecond)
	if d.BottleneckPort.Stats().TxBytes == 0 {
		t.Fatal("no traffic crossed the bottleneck")
	}
	if dt, ok := d.Bottleneck.(*aqm.DropTail); ok {
		if dt.Stats().MaxLen == 0 {
			t.Fatal("bottleneck queue never built up under 5 competing flows")
		}
	}
}

func TestCoflowsJCTIsMaxFlow(t *testing.T) {
	d := smallDumbbell(10)
	tcfg := tcp.DefaultConfig()
	d.Receiver.Listen(port, tcp.NewListener(d.Receiver, tcfg, nil))
	var jcts []int64
	co := RunCoflows(d.Senders, d.Receiver.ID, tcfg, CoflowConfig{
		Port: port, Width: 8, FlowSize: 20_000,
		Jobs: 3, FirstJob: sim.Millisecond, JobEvery: 100 * sim.Millisecond,
		Jitter: sim.Microsecond, Rng: sim.NewRNG(9),
	}, func(jct int64) { jcts = append(jcts, jct) })
	d.Net.Eng.RunUntil(5 * sim.Second)
	if co.JobsStarted != 3 || co.JobsCompleted != 3 {
		t.Fatalf("jobs %d/%d", co.JobsCompleted, co.JobsStarted)
	}
	if len(jcts) != 3 || len(co.StragglerRatio) != 3 {
		t.Fatalf("callbacks %d, ratios %d", len(jcts), len(co.StragglerRatio))
	}
	for i, r := range co.StragglerRatio {
		if r < 1 {
			t.Fatalf("job %d: straggler ratio %.2f < 1 (JCT below median FCT?)", i, r)
		}
	}
	for _, j := range co.JCTs {
		if j <= 0 {
			t.Fatal("nonpositive JCT")
		}
	}
}

func TestCoflowValidation(t *testing.T) {
	d := smallDumbbell(2)
	defer func() {
		if recover() == nil {
			t.Fatal("width > sources accepted")
		}
	}()
	RunCoflows(d.Senders, d.Receiver.ID, tcp.DefaultConfig(), CoflowConfig{
		Width: 5, Jobs: 1, Rng: sim.NewRNG(1),
	}, nil)
}
