package sim

import "sort"

// seqShardSpan partitions the uint64 sequence space between shards: shard
// i's runtime events draw from [(i+1)<<48, (i+2)<<48), while the group's
// shared setup counter owns [0, 1<<48). seq is therefore globally unique
// across the group, which keeps the (Time, rank, seq) order total even if
// two causal rank chains ever hash to the same value.
const seqShardSpan = 1 << 48

// remoteMsg is one cross-shard event in flight: staged in the sender's
// outbox during a window, carried to engines[dst] by the barrier merge.
// sched, rank and seq are fixed by the sender, so the merged event keeps
// its place in the global (Time, sched, rank, seq) order.
type remoteMsg struct {
	dst   int
	time  int64
	sched int64
	rank  uint64
	seq   uint64
	fn    func(any)
	arg   any
}

// Group runs n engines as the shards of one conservative-lookahead
// parallel simulation. The protocol is window-synchronous: every window,
// all shards execute their events in [start, start+lookahead-1]
// concurrently, then meet at a barrier where cross-shard messages are
// merged deterministically. The lookahead must be a lower bound on the
// delay of every cross-shard event (for a network fabric: the minimum
// inter-shard link propagation delay), which guarantees no message can
// land inside the window that produced it.
//
// Determinism: merged messages are ordered by (time, sched, rank, seq) —
// oldest cause first, then causal rank — with seq
// globally unique (per-shard spans, see seqShardSpan). Ranks are pure
// functions of causal ancestry — setup-armed events take the group's
// shared arm counter, runtime events chain a hash of their parent's rank —
// so the total event order is identical at ANY shard count and ANY
// GOMAXPROCS: the same model and seed produce the same digest whether it
// runs on one engine or sixteen. (Two independent chains colliding on one
// 64-bit rank at the same instant would fall back to the shard-dependent
// seq; with a splitmix64-quality hash that is a ~2^-64-per-pair event, and
// the digest-parity matrix exists to catch it ever occurring in practice.)
type Group struct {
	engines   []*Engine
	lookahead int64
	setupSeq  uint64
	sealed    bool // first RunUntil has started; setup phase over
	parallel  bool // inside a window: cross-shard sends must use outboxes
	barriers  []func(now int64)
	scratch   []remoteMsg
}

// NewGroup creates n engines sharing one event-ordering domain. Shard 0 is
// the coordinator's engine (it runs on the calling goroutine). Lookahead
// starts at 1 ns; set the real bound with SetLookahead before RunUntil.
func NewGroup(n int, o Options) *Group {
	if n < 1 {
		panic("sim: group needs at least one shard")
	}
	g := &Group{lookahead: 1}
	for i := 0; i < n; i++ {
		e := NewWith(o)
		e.group = g
		e.shard = i
		e.seq = uint64(i+1) * seqShardSpan
		g.engines = append(g.engines, e)
	}
	return g
}

// Shards returns the number of shards.
func (g *Group) Shards() int { return len(g.engines) }

// Engine returns shard i's engine.
func (g *Group) Engine(i int) *Engine { return g.engines[i] }

// SetLookahead fixes the conservative window width. It must be called
// before RunUntil with a positive lower bound on every cross-shard delay.
func (g *Group) SetLookahead(d int64) {
	if d < 1 {
		panic("sim: lookahead must be positive")
	}
	g.lookahead = d
}

// Lookahead returns the window width.
func (g *Group) Lookahead() int64 { return g.lookahead }

// OnBarrier registers fn to run (on the coordinator goroutine, with all
// shards quiescent) after every window's merge, receiving the window's end
// time. Observers that need a consistent cross-shard view — e.g. the
// invariant checker's sweeps — hook here instead of scheduling events.
func (g *Group) OnBarrier(fn func(now int64)) {
	g.barriers = append(g.barriers, fn)
}

// SetPoll installs fn as the poll hook on every shard (see Engine.SetPoll).
// During a window each shard invokes fn from its own worker goroutine, so
// fn must be safe for concurrent use. When any shard's hook requests a
// stop, RunUntil returns at the next barrier without advancing the clocks.
func (g *Group) SetPoll(fn func(now int64, processed uint64) bool) {
	for _, e := range g.engines {
		e.SetPoll(fn)
	}
}

// Stopped reports whether the last RunUntil returned early because a shard
// was stopped (via Stop or a poll hook).
func (g *Group) Stopped() bool {
	for _, e := range g.engines {
		if e.stopped {
			return true
		}
	}
	return false
}

// Processed sums the events executed across all shards.
func (g *Group) Processed() uint64 {
	var n uint64
	for _, e := range g.engines {
		n += e.Processed
	}
	return n
}

// Pending sums the events still queued across all shards.
func (g *Group) Pending() int {
	var n int
	for _, e := range g.engines {
		n += e.Pending()
	}
	return n
}

// RunUntil executes all shards' events with Time <= horizon, then advances
// every shard clock to the horizon. A single-shard group degenerates to
// the engine's own RunUntil — same goroutine, no channels, no barriers.
func (g *Group) RunUntil(horizon int64) {
	g.sealed = true
	if len(g.engines) == 1 {
		g.engines[0].RunUntil(horizon)
		return
	}

	// Persistent workers for shards 1..n-1; shard 0 runs here. The command
	// channel carries the window end, the reply channel the completion.
	// Channel values never reach model state: every cross-shard event
	// flows through the outbox merge below, which fixes its order.
	n := len(g.engines)
	cmds := make([]chan int64, n)
	done := make(chan int, n)
	for i := 1; i < n; i++ {
		cmds[i] = make(chan int64, 1)
		go func(e *Engine, cmd chan int64) {
			for end := range cmd {
				e.RunUntil(end)
				done <- e.shard
			}
		}(g.engines[i], cmds[i])
	}
	defer func() {
		for i := 1; i < n; i++ {
			close(cmds[i])
		}
	}()

	for {
		start := int64(maxTime)
		for _, e := range g.engines {
			if t := e.PeekTime(); t < start {
				start = t
			}
		}
		if start > horizon {
			break
		}
		end := start + g.lookahead - 1
		if end > horizon || end < start { // overflow-safe clamp
			end = horizon
		}
		g.parallel = true
		for i := 1; i < n; i++ {
			cmds[i] <- end
		}
		g.engines[0].RunUntil(end)
		for i := 1; i < n; i++ {
			<-done
		}
		g.parallel = false
		g.merge()
		for _, fn := range g.barriers {
			fn(end)
		}
		// A stopped shard (poll-hook cancellation mid-window) must end the
		// whole run here: the final advance loop below calls RunUntil, which
		// clears the stop flag and would resume processing.
		if g.Stopped() {
			return
		}
	}
	// No events remain at or before the horizon; let each engine advance
	// its clock (post-run observers read Now on their shard's engine).
	for _, e := range g.engines {
		e.RunUntil(horizon)
	}
}

// merge drains every shard's outbox in shard order, sorts the messages by
// the global (time, rank, seq) key, and inserts them into their
// destination shards. The sort key is totally ordered (seq is globally
// unique), so the merged insertion order — and therefore every digest — is
// independent of which goroutine finished its window first.
func (g *Group) merge() {
	msgs := g.scratch[:0]
	for _, e := range g.engines {
		msgs = append(msgs, e.outbox...)
		for i := range e.outbox {
			e.outbox[i] = remoteMsg{}
		}
		e.outbox = e.outbox[:0]
	}
	sort.Slice(msgs, func(i, j int) bool {
		a, b := &msgs[i], &msgs[j]
		if a.time != b.time {
			return a.time < b.time
		}
		if a.sched != b.sched {
			return a.sched < b.sched
		}
		if a.rank != b.rank {
			return a.rank < b.rank
		}
		return a.seq < b.seq
	})
	for i := range msgs {
		m := &msgs[i]
		g.engines[m.dst].insertRemote(m.time, m.sched, m.rank, m.seq, m.fn, m.arg)
		msgs[i] = remoteMsg{} // drop fn/arg refs; scratch is reused
	}
	g.scratch = msgs[:0]
}
