package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	e := New()
	var got []int
	e.Schedule(30, func() { got = append(got, 3) })
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %d, want 30", e.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-instant events not FIFO at %d: %v", i, got[:i+1])
		}
	}
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	ev := e.Schedule(10, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
	// Double-cancel and cancelling fired events must not panic.
	ev.Cancel()
	e.Cancel(nil)
}

func TestCancelRemovesEagerly(t *testing.T) {
	e := New()
	ev := e.Schedule(1000, func() {})
	keep := e.Schedule(2000, func() {})
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	ev.Cancel()
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d after cancel, want 1 (eager removal)", e.Pending())
	}
	// Double-cancel stays a no-op and must not disturb the survivor.
	ev.Cancel()
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d after double cancel, want 1", e.Pending())
	}
	e.Run()
	if keep.Cancelled() != true { // fired events read as cancelled
		t.Fatal("surviving event did not fire")
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after Run, want 0", e.Pending())
	}
	// Long-lived timers must not leak queue slots: arm/cancel many times.
	for i := 0; i < 10000; i++ {
		e.Schedule(1<<40, func() {}).Cancel()
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after arm/cancel churn, want 0", e.Pending())
	}
}

// Table-driven determinism check: an interleaved mix of Schedule, At and
// Cancel operations — many landing on identical timestamps — must fire in
// the same order every time, for several operation-mix seeds.
func TestDeterministicOrderUnderCancel(t *testing.T) {
	cases := []struct {
		name string
		seed int64
		ops  int
	}{
		{"seed1", 1, 300},
		{"seed7", 7, 500},
		{"seed42", 42, 800},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			trial := func() []int {
				rng := rand.New(rand.NewSource(tc.seed))
				e := New()
				var order []int
				var evs []*Event
				for i := 0; i < tc.ops; i++ {
					id := i
					// Coarse time grid so many events collide on the
					// same instant and FIFO tie-breaking is exercised.
					at := int64(rng.Intn(16)) * 10
					switch rng.Intn(4) {
					case 0, 1:
						evs = append(evs, e.Schedule(at, func() { order = append(order, id) }))
					case 2:
						evs = append(evs, e.At(at, func() { order = append(order, id) }))
					case 3:
						if len(evs) > 0 {
							evs[rng.Intn(len(evs))].Cancel()
						}
					}
				}
				e.Run()
				return order
			}
			a, b := trial(), trial()
			if len(a) != len(b) {
				t.Fatalf("fired %d vs %d events across identical trials", len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("firing order diverged at %d: %d vs %d", i, a[i], b[i])
				}
			}
		})
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	e := New()
	e.Schedule(100, func() {})
	e.RunUntil(50)
	if e.Now() != 50 {
		t.Fatalf("Now = %d, want horizon 50", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
	e.RunUntil(200)
	if e.Now() != 200 {
		t.Fatalf("Now = %d, want 200", e.Now())
	}
}

func TestStop(t *testing.T) {
	e := New()
	n := 0
	for i := 0; i < 10; i++ {
		e.Schedule(int64(i), func() {
			n++
			if n == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if n != 3 {
		t.Fatalf("executed %d events after Stop, want 3", n)
	}
}

func TestNestedScheduling(t *testing.T) {
	e := New()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 1000 {
			e.Schedule(1, recurse)
		}
	}
	e.Schedule(0, recurse)
	e.Run()
	if depth != 1000 {
		t.Fatalf("depth = %d, want 1000", depth)
	}
	if e.Now() != 999 {
		t.Fatalf("Now = %d, want 999", e.Now())
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative delay")
		}
	}()
	New().Schedule(-1, func() {})
}

func TestAtPastPanics(t *testing.T) {
	e := New()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic scheduling in the past")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

// Property: for any multiset of delays, events fire in nondecreasing time
// order and the engine processes exactly len(delays) events.
func TestPropertyFiringOrder(t *testing.T) {
	f := func(raw []uint16) bool {
		e := New()
		var fired []int64
		for _, d := range raw {
			e.Schedule(int64(d), func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(raw) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		return e.Processed == uint64(len(raw))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: random interleaving of schedule/cancel never fires a cancelled
// event and fires every non-cancelled one.
func TestPropertyCancelSoundness(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := New()
		type rec struct {
			ev        *Event
			cancelled bool
			fired     bool
		}
		recs := make([]*rec, 0, n)
		for i := 0; i < int(n); i++ {
			r := &rec{}
			r.ev = e.Schedule(rng.Int63n(1000), func() { r.fired = true })
			recs = append(recs, r)
		}
		for _, r := range recs {
			if rng.Intn(2) == 0 {
				r.cancelled = true
				r.ev.Cancel()
			}
		}
		e.Run()
		for _, r := range recs {
			if r.cancelled == r.fired {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTimerResetStop(t *testing.T) {
	e := New()
	fires := 0
	tm := NewTimer(e, func() { fires++ })
	if tm.Armed() {
		t.Fatal("new timer armed")
	}
	if tm.Deadline() != -1 {
		t.Fatal("disarmed timer has a deadline")
	}
	tm.Reset(100)
	if !tm.Armed() || tm.Deadline() != 100 {
		t.Fatalf("armed=%v deadline=%d", tm.Armed(), tm.Deadline())
	}
	tm.Reset(200) // re-arm replaces the old expiry
	e.Run()
	if fires != 1 {
		t.Fatalf("fires = %d, want 1 (Reset must cancel prior expiry)", fires)
	}
	if e.Now() != 200 {
		t.Fatalf("fired at %d, want 200", e.Now())
	}

	tm.Reset(50)
	if !tm.Stop() {
		t.Fatal("Stop reported no pending expiry")
	}
	if tm.Stop() {
		t.Fatal("second Stop reported a pending expiry")
	}
	e.Run()
	if fires != 1 {
		t.Fatalf("stopped timer fired; fires = %d", fires)
	}
}

func TestTimerRearmFromCallback(t *testing.T) {
	e := New()
	count := 0
	var tm *Timer
	tm = NewTimer(e, func() {
		count++
		if count < 5 {
			tm.Reset(10)
		}
	})
	tm.Reset(10)
	e.Run()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if e.Now() != 50 {
		t.Fatalf("Now = %d, want 50", e.Now())
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRNG(1).Int63() == NewRNG(2).Int63() {
		t.Fatal("different seeds produced identical first draw (suspicious)")
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(7)
	const mean = 1000
	var sum int64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Exp(mean)
	}
	got := float64(sum) / n
	if got < 0.95*mean || got > 1.05*mean {
		t.Fatalf("empirical mean %.1f, want ~%d", got, mean)
	}
	if r.Exp(0) != 0 || r.Exp(-5) != 0 {
		t.Fatal("non-positive mean must yield 0")
	}
}

func TestRNGUniformRange(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		v := r.UniformRange(10, 20)
		if v < 10 || v > 20 {
			t.Fatalf("UniformRange out of bounds: %d", v)
		}
	}
	if r.UniformRange(5, 5) != 5 || r.UniformRange(9, 3) != 9 {
		t.Fatal("degenerate ranges mishandled")
	}
}

func TestRNGPareto(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 10000; i++ {
		v := r.Pareto(1.2, 100, 10000)
		if v < 100 || v > 10000 {
			t.Fatalf("Pareto out of bounds: %d", v)
		}
	}
	if r.Pareto(0, 100, 1000) != 100 {
		t.Fatal("bad shape must return scale")
	}
}

func TestRNGForkIndependence(t *testing.T) {
	parent := NewRNG(5)
	c1 := parent.Fork()
	c2 := parent.Fork()
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Int63() == c2.Int63() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("forked streams correlated: %d/100 identical draws", same)
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := New()
		for j := 0; j < 1000; j++ {
			e.Schedule(int64(j%97), func() {})
		}
		e.Run()
	}
}
