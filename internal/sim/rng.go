package sim

import (
	"math"
	"math/rand"
)

// RNG wraps a seeded math/rand source with distribution helpers used by the
// traffic generators. All model randomness must flow through an RNG created
// from the scenario seed so runs are reproducible.
type RNG struct {
	*rand.Rand
}

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{rand.New(rand.NewSource(seed))}
}

// Fork derives an independent child generator; use one child per traffic
// source so adding a source does not perturb the others' streams.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Int63())
}

// Exp returns an exponentially distributed duration with the given mean (ns).
func (r *RNG) Exp(mean int64) int64 {
	if mean <= 0 {
		return 0
	}
	return int64(r.ExpFloat64() * float64(mean))
}

// UniformRange returns a uniform duration in [lo, hi] (ns).
func (r *RNG) UniformRange(lo, hi int64) int64 {
	if hi <= lo {
		return lo
	}
	return lo + r.Int63n(hi-lo+1)
}

// Pareto returns a bounded Pareto sample with the given shape and scale
// (minimum), truncated at max. Used for heavy-tailed flow sizes.
func (r *RNG) Pareto(shape float64, scale, max int64) int64 {
	if shape <= 0 || scale <= 0 {
		return scale
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	v := float64(scale) / math.Pow(u, 1/shape)
	if int64(v) > max {
		return max
	}
	if int64(v) < scale {
		return scale
	}
	return int64(v)
}
