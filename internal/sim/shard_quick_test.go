package sim

import (
	"reflect"
	"testing"
	"testing/quick"
)

// The quick property: on a random topology of message-passing nodes, the
// per-node fire order (time + payload of every delivery, in the order the
// owning engine ran them) is identical whether the nodes share one engine
// or are partitioned across k shards of a Group. The cascade derives every
// choice — fan-out, destination, delay, payload — from mix64 hashes of the
// payload alone, so any disagreement is an ordering leak in the shard
// protocol, not model nondeterminism.

// qlookahead is the group window width; every cross-node delay is at least
// this, while self-sends may land sub-window and even same-instant to
// exercise the (Time, sched, rank, seq) tie-break.
const qlookahead = 8

type qrec struct {
	T int64
	X uint64
}

type qnode struct {
	eng   *Engine
	net   *qnet
	trace []qrec
}

type qnet struct{ nodes []*qnode }

// recv records the delivery, then spawns 0–2 children. The low nibble of
// the payload is a hop budget; everything else is hash state.
func (n *qnode) recv(a any) {
	x := a.(uint64)
	n.trace = append(n.trace, qrec{n.eng.Now(), x})
	hops := x & 0xf
	if hops == 0 {
		return
	}
	for c := uint64(0); c < mix64(x)%3; c++ {
		h := mix64(x ^ (c+1)*0x9e3779b97f4a7c15)
		child := (h &^ 0xf) | (hops - 1)
		dst := n.net.nodes[h%uint64(len(n.net.nodes))]
		if dst == n {
			n.eng.ScheduleArg(int64(h>>32)%qlookahead, n.recv, child)
		} else {
			delay := qlookahead + int64(h>>32)%(3*qlookahead)
			n.eng.ScheduleRemoteArg(dst.eng, delay, dst.recv, child)
		}
	}
}

// runQuickCascade builds nNodes nodes partitioned round-robin over shards,
// injects one seeded cascade per node at setup, runs to a fixed horizon,
// and returns each node's delivery trace.
func runQuickCascade(seed uint64, nNodes, shards int) [][]qrec {
	g := NewGroup(shards, Options{})
	g.SetLookahead(qlookahead)
	net := &qnet{}
	for i := 0; i < nNodes; i++ {
		net.nodes = append(net.nodes, &qnode{eng: g.Engine(i % shards), net: net})
	}
	for i, nd := range net.nodes {
		h := mix64(seed + uint64(i))
		nd.eng.AtArg(int64(h%64), nd.recv, (h&^0xf)|8)
	}
	g.RunUntil(1 << 20)
	out := make([][]qrec, nNodes)
	for i, nd := range net.nodes {
		out[i] = nd.trace
	}
	return out
}

// TestShardFireOrderQuick is the satellite property test: for random
// (seed, node count, shard count), the sharded group's fire order agrees
// with the single-loop engine's, node for node, delivery for delivery.
func TestShardFireOrderQuick(t *testing.T) {
	prop := func(seed uint64, nRaw, kRaw uint8) bool {
		n := 2 + int(nRaw%6)
		k := 2 + int(kRaw%3)
		return reflect.DeepEqual(runQuickCascade(seed, n, 1), runQuickCascade(seed, n, k))
	}
	cfg := &quick.Config{MaxCount: 40}
	if testing.Short() {
		cfg.MaxCount = 10
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
