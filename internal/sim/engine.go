// Package sim provides a deterministic discrete-event simulation engine.
//
// Time is measured in integer nanoseconds. Events scheduled for the same
// instant fire in scheduling order (FIFO), which makes runs with a fixed
// seed bit-for-bit reproducible. The engine is single-goroutine by design:
// all model code runs inside event callbacks.
package sim

import (
	"container/heap"
	"fmt"
)

// Common durations, in nanoseconds.
const (
	Nanosecond  int64 = 1
	Microsecond int64 = 1000 * Nanosecond
	Millisecond int64 = 1000 * Microsecond
	Second      int64 = 1000 * Millisecond
)

// Event is a scheduled callback. The zero value is invalid; events are
// created by Engine.Schedule and Engine.At and may be cancelled with
// Event.Cancel (or Engine.Cancel) before they fire.
type Event struct {
	Time int64 // absolute firing time, ns
	seq  uint64
	fn   func()
	eng  *Engine
	idx  int // heap index, -1 once removed
}

// Cancelled reports whether the event was cancelled before firing.
func (e *Event) Cancelled() bool { return e.fn == nil }

// Cancel prevents the event from firing and removes it from the queue
// immediately, so a cancelled long-lived timer does not linger until its
// fire time (Pending stays accurate and memory is released eagerly).
// Cancelling an already-fired or already-cancelled event is a no-op.
func (e *Event) Cancel() {
	if e.fn == nil {
		return
	}
	e.fn = nil
	if e.eng != nil && e.idx >= 0 {
		heap.Remove(&e.eng.pq, e.idx)
	}
}

// Engine is a discrete-event scheduler.
//
// The zero value is not usable; call New.
type Engine struct {
	now     int64
	seq     uint64
	pq      eventHeap
	stopped bool

	// Processed counts events executed; useful for progress reporting
	// and as a runaway guard in tests.
	Processed uint64
}

// New returns an engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Now returns the current simulation time in nanoseconds.
func (e *Engine) Now() int64 { return e.now }

// Schedule runs fn after delay nanoseconds. A negative delay is an error in
// the model and panics. It returns a handle usable to cancel the event.
func (e *Engine) Schedule(delay int64, fn func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", delay))
	}
	return e.At(e.now+delay, fn)
}

// At runs fn at absolute time t (ns). Scheduling in the past panics.
func (e *Engine) At(t int64, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event func")
	}
	ev := &Event{Time: t, seq: e.seq, fn: fn, eng: e}
	e.seq++
	heap.Push(&e.pq, ev)
	return ev
}

// Cancel cancels ev. Safe to call with a fired or nil event.
func (e *Engine) Cancel(ev *Event) {
	if ev != nil {
		ev.Cancel()
	}
}

// Pending returns the number of events still queued. Cancelled events are
// removed eagerly, so they never inflate the count.
func (e *Engine) Pending() int { return len(e.pq) }

// Stop makes Run and RunUntil return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.RunUntil(1<<63 - 1)
}

// RunUntil executes events with Time <= horizon, then advances the clock to
// horizon (if the run was not stopped early and the horizon is finite).
func (e *Engine) RunUntil(horizon int64) {
	e.stopped = false
	for len(e.pq) > 0 && !e.stopped {
		ev := e.pq[0]
		if ev.Time > horizon {
			break
		}
		heap.Pop(&e.pq)
		if ev.fn == nil {
			continue // cancelled
		}
		e.now = ev.Time
		fn := ev.fn
		ev.fn = nil
		fn()
		e.Processed++
	}
	if !e.stopped && horizon < 1<<63-1 && e.now < horizon {
		e.now = horizon
	}
}

// eventHeap orders by (Time, seq): earliest first, FIFO within an instant.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].Time != h[j].Time {
		return h[i].Time < h[j].Time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.idx = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1
	*h = old[:n-1]
	return ev
}
