// Package sim provides a deterministic discrete-event simulation engine.
//
// Time is measured in integer nanoseconds. Same-instant events fire
// oldest-cause first (by the clock value at scheduling time), and events
// scheduled at the same instant from causes at the same instant order by a
// causal rank: setup-armed events keep scheduling order (FIFO), events
// scheduled from inside callbacks chain a deterministic hash of their
// ancestry. The total order is a pure function of the model and seed —
// bit-for-bit reproducible, at any shard count (see Group) and GOMAXPROCS.
//
// The scheduler is a calendar queue: a timer wheel of power-of-two tick
// slots covers the near future (~1 ms at 4.096 µs per tick), and a binary
// heap holds the far-future overflow. Events for the tick being drained sit
// in a sorted agenda so the (Time, sched, rank, seq) total order — and
// therefore every golden digest — is identical to the plain-heap scheduler,
// which remains available via Options.NoWheel as the test oracle.
package sim

import (
	"fmt"
	"sort"
	"sync/atomic"

	"container/heap"
)

// Common durations, in nanoseconds.
const (
	Nanosecond  int64 = 1
	Microsecond int64 = 1000 * Nanosecond
	Millisecond int64 = 1000 * Microsecond
	Second      int64 = 1000 * Millisecond
)

const maxTime = 1<<63 - 1

// Wheel geometry. A tick is 2^tickBits ns; the wheel spans numSlots
// consecutive ticks (curTick, curTick+numSlots]. Anything further out
// waits in the overflow heap and is promoted as the wheel turns.
const (
	tickBits = 12 // 4.096 µs per tick
	numSlots = 256
	slotMask = numSlots - 1
	slabSize = 256
)

// pollEvery is the fired-event cadence between poll-hook invocations:
// frequent enough that a cancellation lands within microseconds of wall
// time on any realistic event rate, rare enough that the per-event nil
// check is the hook's only cost in the engine benchmarks.
const pollEvery = 4096

// Event index states. idx >= 0 means the event lives in the overflow heap
// at that position (removal on Cancel is eager, so far-future timers never
// leak queue slots). idxLazy marks wheel/agenda residency, where Cancel is
// lazy: the callback is nilled and the shell is skipped at drain time.
const (
	idxNone = -1
	idxLazy = -2
)

// Event is a scheduled callback. The zero value is invalid; events are
// created by Engine.Schedule and Engine.At and may be cancelled with
// Event.Cancel (or Engine.Cancel) before they fire.
type Event struct {
	Time int64 // absolute firing time, ns
	// sched is the clock value at scheduling time. Same-instant events fire
	// oldest-cause first: an event armed earlier (a port's tx-completion, a
	// long-armed timer) beats one scheduled later for the same instant,
	// which is also what gives saturated queues their
	// departure-before-arrival boundary semantics.
	sched int64
	// rank breaks (Time, sched) ties. It is a pure function of the event's
	// causal ancestry: events scheduled outside event dispatch (setup code,
	// test harnesses) take the monotone scheduling counter, so pre-run
	// arming keeps FIFO order; events scheduled from inside a callback take
	// mix64(parent rank) + child index, so siblings of one cause stay FIFO
	// while unrelated concurrently-scheduled events order by a canonical
	// hash chain that is identical at any shard count and GOMAXPROCS (see
	// Group).
	rank uint64
	seq  uint64
	fn   func(any)
	arg  any
	eng  *Engine
	idx  int
}

// callFunc adapts a plain func() to the internal func(any) representation.
// Func values are pointer-shaped, so storing fn in the arg slot does not
// allocate.
func callFunc(a any) { a.(func())() }

// Cancelled reports whether the event was cancelled before firing (fired
// events also read as cancelled).
func (e *Event) Cancelled() bool { return e.fn == nil }

// Cancel prevents the event from firing. Far-future events are removed from
// the overflow heap immediately; near-future events are dropped lazily when
// their tick drains (at most ~1 ms of simulated time later). Either way
// Pending stays accurate. Cancelling an already-fired or already-cancelled
// event is a no-op: the fire path clears eng and idx, so a late Cancel on a
// recycled handle can never remove a live queue entry.
func (e *Event) Cancel() {
	if e.fn == nil {
		return
	}
	e.fn = nil
	e.arg = nil
	eng := e.eng
	e.eng = nil
	if eng != nil {
		eng.live--
		if e.idx >= 0 {
			heap.Remove(&eng.pq, e.idx)
		}
	}
	e.idx = idxNone
}

// Options tunes engine internals. The zero value is the production
// configuration: timer wheel and slab event allocation enabled.
type Options struct {
	// NoWheel selects the plain binary-heap scheduler (the historical
	// implementation). It is kept as the oracle for equivalence tests and
	// as an escape hatch; event ordering is identical either way.
	NoWheel bool
	// NoSlab allocates every Event individually instead of carving them
	// from slabs. Slabs are never recycled, so this only trades allocation
	// rate for identical semantics.
	NoSlab bool
}

var defaultOpts atomic.Int32

// SetDefaultOptions changes the configuration used by New (e.g. from a
// -nowheel CLI flag). Engines already constructed are unaffected.
func SetDefaultOptions(o Options) {
	var v int32
	if o.NoWheel {
		v |= 1
	}
	if o.NoSlab {
		v |= 2
	}
	defaultOpts.Store(v)
}

// DefaultOptions reports the configuration New will use.
func DefaultOptions() Options {
	v := defaultOpts.Load()
	return Options{NoWheel: v&1 != 0, NoSlab: v&2 != 0}
}

// Engine is a discrete-event scheduler.
//
// The zero value is not usable; call New.
type Engine struct {
	now     int64
	seq     uint64
	stopped bool
	noWheel bool
	noSlab  bool

	// pq is the far-future overflow in wheel mode (ticks beyond
	// curTick+numSlots), or the entire queue in NoWheel mode.
	pq eventHeap

	// curTick is the tick whose events are staged in due; -1 until the
	// first drain. due[dueIdx:] is the sorted agenda for that tick.
	curTick int64
	due     []*Event
	dueIdx  int

	// slots hold events for ticks in (curTick, curTick+numSlots], one
	// tick per slot; occupied is a bitmap over slot indices.
	slots      [numSlots][]*Event
	occupied   [numSlots / 64]uint64
	wheelCount int

	// live counts scheduled-but-not-yet-fired-or-cancelled events, so
	// Pending stays exact even with lazy wheel cancellation.
	live int

	// Dispatch context for rank assignment: while fire runs a callback,
	// children rank as dispatchBase (a hash of the parent's rank) plus a
	// per-dispatch counter. Outside dispatch, ranks fall back to the
	// scheduling sequence counter (setup FIFO).
	inDispatch   bool
	dispatchBase uint64
	dispatchIdx  uint64

	slab    []Event
	slabIdx int

	// Sharding (nil group for a standalone engine; see shard.go). shard is
	// this engine's index in the group, outbox stages cross-shard messages
	// produced during the current window for the barrier merge.
	group  *Group
	shard  int
	outbox []remoteMsg

	// poll, when set, is invoked every pollEvery fired events with the
	// current clock and the fired-event count; returning true stops the run
	// like Stop. pollGap counts events since the last invocation.
	poll    func(now int64, processed uint64) bool
	pollGap int

	// Processed counts events executed; useful for progress reporting
	// and as a runaway guard in tests.
	Processed uint64
}

// New returns an engine with the clock at zero, configured per
// DefaultOptions.
func New() *Engine { return NewWith(DefaultOptions()) }

// NewWith returns an engine with the clock at zero and explicit internals.
func NewWith(o Options) *Engine {
	return &Engine{noWheel: o.NoWheel, noSlab: o.NoSlab, curTick: -1}
}

// Now returns the current simulation time in nanoseconds.
func (e *Engine) Now() int64 { return e.now }

// Schedule runs fn after delay nanoseconds. A negative delay is an error in
// the model and panics. It returns a handle usable to cancel the event.
func (e *Engine) Schedule(delay int64, fn func()) *Event {
	if fn == nil {
		panic("sim: nil event func")
	}
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", delay))
	}
	return e.at(e.now+delay, callFunc, fn)
}

// ScheduleArg runs fn(arg) after delay nanoseconds. It is the
// allocation-free form of Schedule for hot paths: fn is typically a bound
// method value cached at construction time, so no closure is built per
// event.
func (e *Engine) ScheduleArg(delay int64, fn func(any), arg any) *Event {
	if fn == nil {
		panic("sim: nil event func")
	}
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", delay))
	}
	return e.at(e.now+delay, fn, arg)
}

// At runs fn at absolute time t (ns). Scheduling in the past panics.
func (e *Engine) At(t int64, fn func()) *Event {
	if fn == nil {
		panic("sim: nil event func")
	}
	return e.at(t, callFunc, fn)
}

// AtArg runs fn(arg) at absolute time t (ns); see ScheduleArg.
func (e *Engine) AtArg(t int64, fn func(any), arg any) *Event {
	if fn == nil {
		panic("sim: nil event func")
	}
	return e.at(t, fn, arg)
}

func (e *Engine) at(t int64, fn func(any), arg any) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", t, e.now))
	}
	ev := e.newEvent()
	ev.Time = t
	ev.sched = e.now
	ev.seq = e.nextSeq()
	ev.rank = e.nextRank(ev.seq)
	ev.fn = fn
	ev.arg = arg
	ev.eng = e
	e.live++
	e.insert(ev)
	return ev
}

// mix64 is the splitmix64 finalizer: the stateless hash that chains event
// ranks from parent to child.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// nextRank assigns the same-instant tie-break rank. Inside a callback the
// rank chains from the parent event (hash base + sibling index), making it
// a pure function of causal ancestry — identical no matter which shard or
// goroutine runs the chain. Outside dispatch it is the scheduling counter,
// so setup-armed events keep FIFO order.
func (e *Engine) nextRank(seq uint64) uint64 {
	if !e.inDispatch {
		return seq
	}
	r := e.dispatchBase + e.dispatchIdx
	e.dispatchIdx++
	return r
}

// nextSeq hands out the next tie-break sequence number. Standalone engines
// (and sealed group members) use the per-engine counter; group members in
// the sequential setup phase share the group's global counter, so events
// armed before the run starts keep the exact single-loop FIFO order no
// matter which shard they land on.
func (e *Engine) nextSeq() uint64 {
	if g := e.group; g != nil && !g.sealed {
		s := g.setupSeq
		g.setupSeq++
		if s >= seqShardSpan {
			panic("sim: group setup sequence space exhausted")
		}
		return s
	}
	s := e.seq
	e.seq++
	return s
}

// ScheduleRemoteArg runs fn(arg) after delay nanoseconds on dst, which may
// belong to a different shard of the same Group. Outside a parallel window
// (standalone engines, the sequential setup phase, or dst == e) the event
// is inserted directly; inside a window it is staged in the sender's outbox
// and carried across the barrier by the group's deterministic merge. The
// delay must be at least the group's lookahead when shards run
// concurrently — that bound is what makes the conservative window safe.
func (e *Engine) ScheduleRemoteArg(dst *Engine, delay int64, fn func(any), arg any) {
	if fn == nil {
		panic("sim: nil event func")
	}
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", delay))
	}
	g := e.group
	if dst == e || g == nil || !g.parallel {
		if dst.group != g {
			panic("sim: ScheduleRemoteArg across unrelated engines")
		}
		seq := e.nextSeq()
		dst.insertRemote(e.now+delay, e.now, e.nextRank(seq), seq, fn, arg)
		return
	}
	if delay < g.lookahead {
		panic(fmt.Sprintf("sim: cross-shard delay %d below lookahead %d", delay, g.lookahead))
	}
	seq := e.nextSeq()
	e.outbox = append(e.outbox, remoteMsg{
		dst: dst.shard, time: e.now + delay, sched: e.now,
		rank: e.nextRank(seq), seq: seq, fn: fn, arg: arg,
	})
}

// insertRemote inserts an event whose (sched, rank, seq) identity was
// fixed by the sending engine. The firing time must not precede this
// engine's clock; the group's lookahead bound guarantees that for merged
// messages.
func (e *Engine) insertRemote(t, sched int64, rank, seq uint64, fn func(any), arg any) {
	if t < e.now {
		panic(fmt.Sprintf("sim: remote event at %d before now %d (lookahead violation)", t, e.now))
	}
	ev := e.newEvent()
	ev.Time = t
	ev.sched = sched
	ev.rank = rank
	ev.seq = seq
	ev.fn = fn
	ev.arg = arg
	ev.eng = e
	e.live++
	e.insert(ev)
}

// PeekTime returns the firing time of the earliest queued event, or
// maxTime when the queue is empty. Cancelled-but-staged events count (they
// are dropped at drain time), which can only make a window start early,
// never late — harmless for the conservative protocol.
func (e *Engine) PeekTime() int64 {
	t := int64(maxTime)
	if e.noWheel {
		if len(e.pq) > 0 {
			t = e.pq[0].Time
		}
		return t
	}
	if e.dueIdx < len(e.due) {
		t = e.due[e.dueIdx].Time
	}
	if e.wheelCount > 0 {
		s := int(e.nextOccupiedTick() & slotMask)
		for _, ev := range e.slots[s] {
			if ev.Time < t {
				t = ev.Time
			}
		}
	}
	if len(e.pq) > 0 && e.pq[0].Time < t {
		t = e.pq[0].Time
	}
	return t
}

// newEvent hands out events from append-only slabs. Slabs are deliberately
// never recycled: model code holds stale *Event handles across fire time
// (e.g. cancelling an epoch timer that already expired), and reusing the
// memory would let such a late Cancel hit an unrelated live event.
func (e *Engine) newEvent() *Event {
	if e.noSlab {
		return &Event{}
	}
	if e.slabIdx == len(e.slab) {
		e.slab = make([]Event, slabSize)
		e.slabIdx = 0
	}
	ev := &e.slab[e.slabIdx]
	e.slabIdx++
	return ev
}

func (e *Engine) insert(ev *Event) {
	if e.noWheel {
		heap.Push(&e.pq, ev)
		return
	}
	tick := ev.Time >> tickBits
	switch {
	case tick <= e.curTick:
		// The tick being drained, or earlier (legal after RunUntil left
		// now at a horizon before the staged agenda): merge into due in
		// (Time, seq) position.
		ev.idx = idxLazy
		e.dueInsert(ev)
	case tick <= e.curTick+numSlots:
		ev.idx = idxLazy
		s := int(tick & slotMask)
		e.slots[s] = append(e.slots[s], ev)
		e.occupied[s>>6] |= 1 << uint(s&63)
		e.wheelCount++
	default:
		heap.Push(&e.pq, ev)
	}
}

// eventBefore is the engine's total event order: (Time, sched, rank, seq).
// sched and rank are both pure functions of the model (a clock value and a
// causal-chain hash), identical at any shard count — so the order, and
// therefore every digest, is too. seq (globally unique across a group) is
// the fallback for the astronomically rare rank collision, and keeps the
// order total.
func eventBefore(a, b *Event) bool {
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	if a.sched != b.sched {
		return a.sched < b.sched
	}
	if a.rank != b.rank {
		return a.rank < b.rank
	}
	return a.seq < b.seq
}

// dueInsert places ev into the unconsumed agenda suffix, keeping it sorted
// by (Time, sched, rank, seq).
func (e *Engine) dueInsert(ev *Event) {
	lo, hi := e.dueIdx, len(e.due)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if eventBefore(e.due[mid], ev) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	e.due = append(e.due, nil)
	copy(e.due[lo+1:], e.due[lo:])
	e.due[lo] = ev
}

// refillDue advances curTick to the next tick holding events, stages that
// tick's events in due, and promotes overflow events that now fall inside
// the wheel window. Returns false when nothing is queued anywhere, or when
// the next occupied tick lies beyond the horizon's tick. The horizon guard
// matters for windowed (sharded) execution: RunUntil is called once per
// lookahead window, and letting curTick overshoot the window would force
// every event scheduled into the overshot span through the sorted-agenda
// insert path — an O(agenda) memmove per event — instead of an O(1) wheel
// slot append.
func (e *Engine) refillDue(horizon int64) bool {
	hTick := horizon >> tickBits
	e.due = e.due[:0]
	e.dueIdx = 0
	if e.wheelCount == 0 {
		if len(e.pq) == 0 || e.pq[0].Time>>tickBits > hTick {
			return false
		}
		e.curTick = e.pq[0].Time >> tickBits
	} else {
		next := e.nextOccupiedTick()
		if next > hTick {
			return false
		}
		e.curTick = next
		s := int(e.curTick & slotMask)
		slot := e.slots[s]
		e.due = append(e.due, slot...)
		for i := range slot {
			slot[i] = nil
		}
		e.slots[s] = slot[:0]
		e.occupied[s>>6] &^= 1 << uint(s&63)
		e.wheelCount -= len(e.due)
	}
	// Promote: after this loop the heap only holds ticks beyond the new
	// window, which keeps the slot scan above sufficient on later refills.
	for len(e.pq) > 0 && e.pq[0].Time>>tickBits <= e.curTick+numSlots {
		ev := heap.Pop(&e.pq).(*Event)
		ev.idx = idxLazy
		tick := ev.Time >> tickBits
		if tick == e.curTick {
			e.due = append(e.due, ev)
		} else {
			s := int(tick & slotMask)
			e.slots[s] = append(e.slots[s], ev)
			e.occupied[s>>6] |= 1 << uint(s&63)
			e.wheelCount++
		}
	}
	sortEvents(e.due)
	return true
}

// nextOccupiedTick scans the ring for the first tick after curTick with a
// populated slot, skipping whole empty bitmap words.
func (e *Engine) nextOccupiedTick() int64 {
	for off := int64(1); off <= numSlots; off++ {
		s := int((e.curTick + off) & slotMask)
		if e.occupied[s>>6] == 0 {
			off += int64(63 - s&63)
			continue
		}
		if e.occupied[s>>6]&(1<<uint(s&63)) != 0 {
			return e.curTick + off
		}
	}
	panic("sim: wheel events present but no occupied slot")
}

// sortEvents orders the agenda by (Time, sched, rank, seq). Slot contents arrive
// almost sorted (insertion order tracks seq; times within one tick
// cluster), so a binary-insertion pass wins for the common small case.
func sortEvents(evs []*Event) {
	if len(evs) > 48 {
		sort.Slice(evs, func(i, j int) bool { return eventBefore(evs[i], evs[j]) })
		return
	}
	for i := 1; i < len(evs); i++ {
		ev := evs[i]
		j := i - 1
		for j >= 0 && eventBefore(ev, evs[j]) {
			evs[j+1] = evs[j]
			j--
		}
		evs[j+1] = ev
	}
}

// Cancel cancels ev. Safe to call with a fired or nil event.
func (e *Engine) Cancel(ev *Event) {
	if ev != nil {
		ev.Cancel()
	}
}

// Pending returns the number of events still scheduled. Cancelled events
// never inflate the count.
func (e *Engine) Pending() int { return e.live }

// Stop makes Run and RunUntil return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether the last Run or RunUntil returned early — via
// Stop or a poll hook — rather than by draining to its horizon.
func (e *Engine) Stopped() bool { return e.stopped }

// SetPoll installs an out-of-band observation hook: fn is called every
// pollEvery fired events with the engine's clock and lifetime event count,
// and a true return stops the run exactly like Stop. The hook exists for
// progress reporting and cancellation from outside the model — it never
// touches the event queue, consumes no sequence numbers or ranks, and
// therefore cannot perturb the event order or any digest. In a sharded
// Group every engine runs the hook from its own worker goroutine, so fn
// must be safe for concurrent use. A nil fn removes the hook.
func (e *Engine) SetPoll(fn func(now int64, processed uint64) bool) {
	e.poll = fn
	e.pollGap = 0
}

// pollTick invokes the poll hook if it is due. Callers check e.poll != nil
// first so the fast path stays a single predictable branch.
func (e *Engine) pollTick() {
	if e.pollGap++; e.pollGap < pollEvery {
		return
	}
	e.pollGap = 0
	if e.poll(e.now, e.Processed) {
		e.stopped = true
	}
}

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.RunUntil(maxTime)
}

// RunUntil executes events with Time <= horizon, then advances the clock to
// horizon (if the run was not stopped early and the horizon is finite).
func (e *Engine) RunUntil(horizon int64) {
	e.stopped = false
	if e.noWheel {
		e.runHeap(horizon)
	} else {
		e.runWheel(horizon)
	}
	if !e.stopped && horizon < maxTime && e.now < horizon {
		e.now = horizon
	}
}

func (e *Engine) runWheel(horizon int64) {
	for !e.stopped {
		for e.dueIdx >= len(e.due) {
			if !e.refillDue(horizon) {
				return
			}
		}
		ev := e.due[e.dueIdx]
		if ev.Time > horizon {
			return
		}
		e.due[e.dueIdx] = nil
		e.dueIdx++
		if ev.fn == nil {
			continue // cancelled while staged
		}
		e.fire(ev)
		if e.poll != nil {
			e.pollTick()
		}
	}
}

func (e *Engine) runHeap(horizon int64) {
	for len(e.pq) > 0 && !e.stopped {
		ev := e.pq[0]
		if ev.Time > horizon {
			return
		}
		heap.Pop(&e.pq)
		if ev.fn == nil {
			continue // cancelled
		}
		e.fire(ev)
		if e.poll != nil {
			e.pollTick()
		}
	}
}

// fire runs ev's callback, first detaching the event completely so a stale
// handle kept by model code is inert: fn/arg are cleared (fired events read
// as cancelled), and eng/idx are nilled so a late Cancel can never reach
// into the queue and remove a live entry.
func (e *Engine) fire(ev *Event) {
	e.now = ev.Time
	fn, arg := ev.fn, ev.arg
	e.dispatchBase = mix64(ev.rank)
	e.dispatchIdx = 0
	e.inDispatch = true
	ev.fn = nil
	ev.arg = nil
	ev.eng = nil
	ev.idx = idxNone
	e.live--
	fn(arg)
	e.inDispatch = false
	e.Processed++
}

// eventHeap orders by (Time, sched, rank, seq): earliest first,
// oldest-cause then causal rank within an instant.
type eventHeap []*Event

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return eventBefore(h[i], h[j]) }
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.idx = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = idxNone
	*h = old[:n-1]
	return ev
}
