package sim

// Timer is a restartable one-shot timer bound to an engine, in the style of
// a TCP retransmission timer: Reset re-arms it, Stop disarms it, and the
// callback supplied at construction fires when it expires.
type Timer struct {
	eng *Engine
	ev  *Event
	fn  func()
}

// NewTimer returns a disarmed timer that will invoke fn on expiry.
func NewTimer(eng *Engine, fn func()) *Timer {
	if fn == nil {
		panic("sim: nil timer func")
	}
	return &Timer{eng: eng, fn: fn}
}

// timerExpire is the shared func(any) trampoline for all timers, so
// Reset never builds a per-arm closure.
func timerExpire(a any) { a.(*Timer).expire() }

// Reset (re-)arms the timer to fire after d nanoseconds, cancelling any
// previously armed expiry.
func (t *Timer) Reset(d int64) {
	t.Stop()
	t.ev = t.eng.ScheduleArg(d, timerExpire, t)
}

// Stop disarms the timer. Reports whether a pending expiry was cancelled.
func (t *Timer) Stop() bool {
	if t.ev != nil && !t.ev.Cancelled() {
		t.ev.Cancel()
		t.ev = nil
		return true
	}
	t.ev = nil
	return false
}

// Armed reports whether the timer is currently pending.
func (t *Timer) Armed() bool { return t.ev != nil && !t.ev.Cancelled() }

// Deadline returns the absolute expiry time, or -1 if disarmed.
func (t *Timer) Deadline() int64 {
	if !t.Armed() {
		return -1
	}
	return t.ev.Time
}

func (t *Timer) expire() {
	t.ev = nil
	t.fn()
}
