package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// wheelOp is one step of a generated scheduler workload. The same op list
// is replayed against the wheel engine and the plain-heap oracle, so any
// divergence in firing order or observable state is a wheel bug.
type wheelOp struct {
	kind  int   // 0: schedule, 1: cancel, 2: nested schedule-from-callback
	delay int64 // relative to now at execution
	pick  int   // which earlier event a cancel targets
}

// genOps builds a workload that straddles every scheduler regime: same-tick
// inserts, intra-wheel slots, far-future overflow promotion, zero-delay
// storms, and cancels against all of them.
func genOps(rng *rand.Rand, n int) []wheelOp {
	ops := make([]wheelOp, n)
	for i := range ops {
		op := wheelOp{kind: rng.Intn(6), pick: rng.Int()}
		switch rng.Intn(5) {
		case 0: // same instant / same tick
			op.delay = rng.Int63n(1 << tickBits)
		case 1: // inside the wheel window
			op.delay = rng.Int63n(numSlots << tickBits)
		case 2: // straddling the wheel horizon
			op.delay = (numSlots << tickBits) + rng.Int63n(4<<tickBits) - 2<<tickBits
		case 3: // deep overflow
			op.delay = rng.Int63n(1 << 40)
		case 4: // zero delay
			op.delay = 0
		}
		if op.delay < 0 {
			op.delay = 0
		}
		if op.kind >= 3 {
			op.kind = op.kind - 3 // bias: equal thirds schedule/cancel/nested
		}
		ops[i] = op
	}
	return ops
}

// runOps drives one engine through the workload and returns the event IDs
// in firing order.
func runOps(e *Engine, ops []wheelOp) []int {
	var fired []int
	var handles []*Event
	next := 0
	for _, op := range ops {
		switch op.kind {
		case 0:
			id := next
			next++
			handles = append(handles, e.Schedule(op.delay, func() { fired = append(fired, id) }))
		case 1:
			if len(handles) > 0 {
				handles[op.pick%len(handles)].Cancel()
			}
		case 2:
			id := next
			next++
			d := op.delay
			handles = append(handles, e.Schedule(d, func() {
				fired = append(fired, id)
				// Reschedule deterministically from inside the callback,
				// exercising dueInsert and slot inserts mid-drain.
				nid := -id - 1
				e.Schedule(d%(1<<tickBits+3), func() { fired = append(fired, nid) })
			}))
		}
		// Interleave partial runs so events are consumed while later ops
		// still schedule into drained ticks.
		if op.pick%7 == 0 {
			e.RunUntil(e.Now() + op.delay/2)
		}
	}
	e.Run()
	return fired
}

// TestWheelMatchesHeapOracle is the equivalence harness the tentpole rests
// on: for arbitrary schedule/cancel/nested workloads, the calendar-queue
// engine must fire the exact event sequence of the retired plain-heap
// scheduler (kept available via Options.NoWheel as the oracle).
func TestWheelMatchesHeapOracle(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw%600) + 5
		ops := genOps(rand.New(rand.NewSource(seed)), n)
		wheel := runOps(NewWith(Options{}), ops)
		oracle := runOps(NewWith(Options{NoWheel: true, NoSlab: true}), ops)
		if len(wheel) != len(oracle) {
			t.Logf("seed %d: wheel fired %d events, oracle %d", seed, len(wheel), len(oracle))
			return false
		}
		for i := range wheel {
			if wheel[i] != oracle[i] {
				t.Logf("seed %d: order diverges at %d: wheel %d, oracle %d", seed, i, wheel[i], oracle[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestWheelClockMatchesOracle checks the observable clock/pending state of
// both engines across horizon-bounded partial runs.
func TestWheelClockMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		wheel := NewWith(Options{})
		oracle := NewWith(Options{NoWheel: true})
		for i := 0; i < 40; i++ {
			d := rng.Int63n(3 << (tickBits + 4))
			wheel.Schedule(d, func() {})
			oracle.Schedule(d, func() {})
			if i%5 == 0 {
				h := wheel.Now() + rng.Int63n(1<<(tickBits+2))
				wheel.RunUntil(h)
				oracle.RunUntil(h)
				if wheel.Now() != oracle.Now() || wheel.Pending() != oracle.Pending() {
					t.Logf("seed %d: now %d/%d pending %d/%d", seed,
						wheel.Now(), oracle.Now(), wheel.Pending(), oracle.Pending())
					return false
				}
			}
		}
		wheel.Run()
		oracle.Run()
		return wheel.Now() == oracle.Now() && wheel.Processed == oracle.Processed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestLateCancelAfterFireIsInert is the regression test for the fire-path
// fix: firing must clear eng and idx so a stale handle — kept by model
// code and cancelled long after the event ran — can never reach back into
// the queue and remove an unrelated live entry.
func TestLateCancelAfterFireIsInert(t *testing.T) {
	for _, opt := range []Options{{}, {NoWheel: true}} {
		e := NewWith(opt)
		stale := e.Schedule(10, func() {})
		e.Run()
		if !stale.Cancelled() {
			t.Fatal("fired event does not read as cancelled")
		}
		if stale.eng != nil || stale.idx != idxNone {
			t.Fatalf("fire left eng=%v idx=%d populated", stale.eng, stale.idx)
		}

		fired := false
		live := e.Schedule(1<<40, func() { fired = true }) // far future: heap-resident
		stale.Cancel()                                     // late cancel on the fired handle
		if e.Pending() != 1 {
			t.Fatalf("Pending = %d after late cancel, want 1 (live event must survive)", e.Pending())
		}
		e.Run()
		if !fired {
			t.Fatal("late Cancel on a fired handle killed a live event")
		}
		_ = live
	}
}

// BenchmarkEngineSchedule measures the pure schedule+fire cycle at mixed
// horizons (wheel slots and overflow both exercised).
func BenchmarkEngineSchedule(b *testing.B) {
	e := New()
	fn := func(any) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ScheduleArg(int64(i%977)*512, fn, nil)
		if e.Pending() > 4096 {
			e.Run()
		}
	}
	e.Run()
}

// BenchmarkEngineScheduleCancel measures the arm/cancel churn typical of
// retransmission timers (far-future arm, cancel before expiry).
func BenchmarkEngineScheduleCancel(b *testing.B) {
	e := New()
	fn := func(any) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ScheduleArg(200*Millisecond, fn, nil).Cancel()
	}
}

// BenchmarkEngineHeapOracle is the same loop as BenchmarkEngineSchedule on
// the NoWheel engine, so the wheel's win is visible in one benchstat diff.
func BenchmarkEngineHeapOracle(b *testing.B) {
	e := NewWith(Options{NoWheel: true})
	fn := func(any) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ScheduleArg(int64(i%977)*512, fn, nil)
		if e.Pending() > 4096 {
			e.Run()
		}
	}
	e.Run()
}
