package sim

import (
	"sync/atomic"
	"testing"
)

// chain schedules a self-rescheduling event that fires n times, every
// step nanoseconds, recording each firing index into out when non-nil.
func chain(e *Engine, n int, step int64, out *[]int) {
	i := 0
	var tick func()
	tick = func() {
		if out != nil {
			*out = append(*out, i)
		}
		if i++; i < n {
			e.Schedule(step, tick)
		}
	}
	e.Schedule(0, tick)
}

// TestPollHookObservesProgress proves the hook fires on its cadence with a
// monotone clock and event count, without disturbing the run.
func TestPollHookObservesProgress(t *testing.T) {
	e := New()
	const n = 3 * pollEvery
	chain(e, n, 1000, nil)

	var calls int
	lastNow, lastProcessed := int64(-1), uint64(0)
	e.SetPoll(func(now int64, processed uint64) bool {
		calls++
		if now < lastNow {
			t.Errorf("poll clock went backwards: %d after %d", now, lastNow)
		}
		if processed < lastProcessed {
			t.Errorf("poll processed went backwards: %d after %d", processed, lastProcessed)
		}
		lastNow, lastProcessed = now, processed
		return false
	})
	e.Run()

	if want := n / pollEvery; calls != want {
		t.Errorf("poll called %d times over %d events, want %d", calls, n, want)
	}
	if e.Processed != n {
		t.Errorf("run processed %d events, want %d", e.Processed, n)
	}
	if e.Stopped() {
		t.Error("non-stopping poll hook flagged the run as stopped")
	}
}

// TestPollHookStopsRun proves a true return interrupts the run like Stop:
// events remain queued, the clock stays where the last event left it, and
// Stopped reports the early exit.
func TestPollHookStopsRun(t *testing.T) {
	e := New()
	const n = 4 * pollEvery
	chain(e, n, 1000, nil)

	e.SetPoll(func(now int64, processed uint64) bool { return true })
	e.RunUntil(int64(n) * 1000)

	if !e.Stopped() {
		t.Fatal("run not flagged stopped after poll hook returned true")
	}
	if e.Processed != pollEvery {
		t.Errorf("run processed %d events before stopping, want %d", e.Processed, pollEvery)
	}
	if e.Pending() == 0 {
		t.Error("stopped run left no pending events; expected the chain to survive")
	}
	if e.Now() >= int64(n)*1000 {
		t.Errorf("stopped run advanced clock to horizon (%d)", e.Now())
	}
}

// TestPollHookDigestNeutral proves the hook is invisible to the model: the
// fire order with a hook armed is identical to the order without one, for
// both scheduler implementations.
func TestPollHookDigestNeutral(t *testing.T) {
	for _, o := range []Options{{}, {NoWheel: true}} {
		run := func(withPoll bool) []int {
			e := NewWith(o)
			var order []int
			chain(e, 2*pollEvery, 1000, &order)
			if withPoll {
				e.SetPoll(func(int64, uint64) bool { return false })
			}
			e.Run()
			return order
		}
		plain, polled := run(false), run(true)
		if len(plain) != len(polled) {
			t.Fatalf("noWheel=%v: fire counts differ: %d vs %d", o.NoWheel, len(plain), len(polled))
		}
		for i := range plain {
			if plain[i] != polled[i] {
				t.Fatalf("noWheel=%v: fire order diverges at %d", o.NoWheel, i)
			}
		}
	}
}

// TestGroupPollStops proves a poll-hook stop on any shard ends the whole
// windowed run at the next barrier instead of resuming after it.
func TestGroupPollStops(t *testing.T) {
	g := NewGroup(2, Options{})
	g.SetLookahead(1000)
	const n = 2 * pollEvery
	for i := 0; i < g.Shards(); i++ {
		chain(g.Engine(i), n, 1000, nil)
	}

	var calls atomic.Int64
	g.SetPoll(func(now int64, processed uint64) bool {
		return calls.Add(1) >= 2
	})
	horizon := int64(n) * 1000
	g.RunUntil(horizon)

	if !g.Stopped() {
		t.Fatal("group not flagged stopped after poll hook requested a stop")
	}
	if g.Processed() >= 2*uint64(n) {
		t.Errorf("group processed all %d events despite the stop", g.Processed())
	}
	if g.Pending() == 0 {
		t.Error("stopped group left no pending events; expected the chains to survive")
	}
	for i := 0; i < g.Shards(); i++ {
		if now := g.Engine(i).Now(); now >= horizon {
			t.Errorf("shard %d clock advanced to horizon (%d) despite the stop", i, now)
		}
	}
}
