package binpack

// Batcher is the temporal Next Fit of HWatch's theory (Section IV): given
// ECN feedback for a flow's recent window — how many packets passed a
// congestion point unmarked (X_UM) and how many were marked (X_M) — it
// assigns the next window's packets to transmission *batches* (= buffer
// drain rounds = bins in time):
//
//   - Theorem IV.1: the unmarked count fits the current drain round, so
//     batch 1 carries X_UM packets.
//   - Theorem IV.2: the marked count must be split across two later
//     rounds, X_M/2 each (a single marked packet goes to either round
//     with probability 1/2).
//   - Corollary IV.2.1: three batches mitigate incast overflow.
//   - Corollary IV.2.2: batches 1 and 2 may be merged and sent together,
//     shortening completion to ≤ 2 RTT (Lemma IV.3).
type Batcher struct {
	// MergeFirstTwo applies Corollary IV.2.2 (the paper's default).
	MergeFirstTwo bool
	// MinBatch floors the first batch so a flow always makes progress.
	MinBatch int
	// StartMarkedCredit is the fraction of *marked* probes still credited
	// toward the initial window by StartWindow. The theory's merged first
	// batch corresponds to 0.5 (Corollary IV.2.2); the cautious default 0
	// grants only the unmarked share immediately, because start-up probes
	// measure buffer space already occupied by other tenants' traffic
	// rather than this flow's own previous window.
	StartMarkedCredit float64
	// Rand supplies the coin for odd marked counts; uniform [0,1).
	Rand func() float64
}

// Plan is the batch assignment for one window: Sizes[i] packets are sent in
// round i (round 0 = immediately, round i = after i drain periods).
type Plan struct {
	Sizes []int
}

// Total returns the packets across all batches.
func (p Plan) Total() int {
	t := 0
	for _, s := range p.Sizes {
		t += s
	}
	return t
}

// Rounds returns the number of non-empty batches.
func (p Plan) Rounds() int {
	n := 0
	for _, s := range p.Sizes {
		if s > 0 {
			n++
		}
	}
	return n
}

// Split assigns unmarked (X_UM) and marked (X_M) packet counts to batches
// per the theorems above. Total packets are conserved.
func (b Batcher) Split(unmarked, marked int) Plan {
	if unmarked < 0 || marked < 0 {
		panic("binpack: negative packet count")
	}
	half1 := marked / 2
	half2 := marked - half1
	if marked%2 == 1 && b.Rand != nil && b.Rand() < 0.5 {
		// The odd packet lands in either half with probability 1/2
		// (Theorem IV.2, special case X_M = 1).
		half1, half2 = half2, half1
	}
	var p Plan
	if b.MergeFirstTwo {
		p.Sizes = []int{unmarked + half1, half2}
	} else {
		p.Sizes = []int{unmarked, half1, half2}
	}
	if b.MinBatch > 0 && p.Sizes[0] < b.MinBatch {
		p.Sizes[0] = b.MinBatch
	}
	return p
}

// StartWindow maps probe feedback to the safe initial window of Rule 2:
// with p probes of which m were marked, the connection may start with the
// merged first batch of Split(p-m, m), capped at the stack's default
// initial window and floored at MinBatch (≥ 1 segment so the handshake's
// first data can always leave).
func (b Batcher) StartWindow(probes, markedProbes, defaultICW int) int {
	if probes <= 0 {
		return defaultICW // no probe information: behave like stock TCP
	}
	if markedProbes > probes {
		markedProbes = probes
	}
	unmarked := probes - markedProbes
	// Scale the probe verdict onto the ICW range: probes sample the path,
	// the window is granted proportionally.
	w := int((float64(unmarked) + b.StartMarkedCredit*float64(markedProbes)) *
		float64(defaultICW) / float64(probes))
	if w > defaultICW {
		w = defaultICW
	}
	min := b.MinBatch
	if min <= 0 {
		min = 1
	}
	if w < min {
		w = min
	}
	return w
}
