// Package binpack implements the classic online and offline bin-packing
// heuristics the HWatch paper draws on (Section III-A models switch-buffer
// overflow as bin packing over buffer drain rounds), plus the temporal
// "batcher" variant used by the theory: items are packets, bins are the
// buffer states at successive drain times, and Next Fit's
// only-look-at-the-current-bin property is what makes the scheme workable
// as a distributed online algorithm.
package binpack

import "sort"

// Result describes a packing: Bins[i] holds the item sizes assigned to bin
// i, in assignment order.
type Result struct {
	Bins [][]int
}

// NumBins returns the number of bins used.
func (r Result) NumBins() int { return len(r.Bins) }

// Fill returns the occupied volume of bin i.
func (r Result) Fill(i int) int {
	total := 0
	for _, v := range r.Bins[i] {
		total += v
	}
	return total
}

// valid items are positive and no larger than the bin capacity; callers
// must filter or the heuristics panic.
func checkItems(items []int, cap int) {
	if cap <= 0 {
		panic("binpack: non-positive capacity")
	}
	for _, it := range items {
		if it <= 0 || it > cap {
			panic("binpack: item size out of (0, capacity]")
		}
	}
}

// NextFit packs items online, keeping only the current bin open: if the
// item fits it goes there, otherwise the bin is closed and a new one
// opened. Runs in O(n) and uses at most 2·OPT bins.
func NextFit(items []int, cap int) Result {
	checkItems(items, cap)
	var r Result
	fill := cap + 1 // force opening the first bin
	for _, it := range items {
		if fill+it > cap {
			r.Bins = append(r.Bins, nil)
			fill = 0
		}
		i := len(r.Bins) - 1
		r.Bins[i] = append(r.Bins[i], it)
		fill += it
	}
	return r
}

// FirstFit places each item into the lowest-indexed bin with room,
// opening a new bin only when none fits. O(n·bins); ≤ 1.7·OPT + O(1).
func FirstFit(items []int, cap int) Result {
	checkItems(items, cap)
	var r Result
	var fills []int
	for _, it := range items {
		placed := false
		for i := range fills {
			if fills[i]+it <= cap {
				r.Bins[i] = append(r.Bins[i], it)
				fills[i] += it
				placed = true
				break
			}
		}
		if !placed {
			r.Bins = append(r.Bins, []int{it})
			fills = append(fills, it)
		}
	}
	return r
}

// BestFit places each item into the fullest bin that still has room.
func BestFit(items []int, cap int) Result {
	checkItems(items, cap)
	var r Result
	var fills []int
	for _, it := range items {
		best, bestFill := -1, -1
		for i := range fills {
			if fills[i]+it <= cap && fills[i] > bestFill {
				best, bestFill = i, fills[i]
			}
		}
		if best < 0 {
			r.Bins = append(r.Bins, []int{it})
			fills = append(fills, it)
			continue
		}
		r.Bins[best] = append(r.Bins[best], it)
		fills[best] += it
	}
	return r
}

// WorstFit places each item into the emptiest open bin with room (keeps
// bins balanced — the analogue of spreading a burst across the most-idle
// drain rounds).
func WorstFit(items []int, cap int) Result {
	checkItems(items, cap)
	var r Result
	var fills []int
	for _, it := range items {
		best, bestFill := -1, cap+1
		for i := range fills {
			if fills[i]+it <= cap && fills[i] < bestFill {
				best, bestFill = i, fills[i]
			}
		}
		if best < 0 {
			r.Bins = append(r.Bins, []int{it})
			fills = append(fills, it)
			continue
		}
		r.Bins[best] = append(r.Bins[best], it)
		fills[best] += it
	}
	return r
}

// FirstFitDecreasing sorts items descending then applies FirstFit;
// the offline classic with an 11/9·OPT + 6/9 guarantee.
func FirstFitDecreasing(items []int, cap int) Result {
	sorted := append([]int(nil), items...)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	return FirstFit(sorted, cap)
}

// LowerBound returns ceil(sum/cap), the volume lower bound on OPT.
func LowerBound(items []int, cap int) int {
	total := 0
	for _, it := range items {
		total += it
	}
	return (total + cap - 1) / cap
}
