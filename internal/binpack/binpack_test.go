package binpack

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func genItems(rng *rand.Rand, n, cap int) []int {
	items := make([]int, n)
	for i := range items {
		items[i] = 1 + rng.Intn(cap)
	}
	return items
}

// packers under test, with their worst-case bin bounds relative to the
// volume lower bound (NF ≤ 2·OPT; FF/BF ≤ 2·OPT loosely; FFD ≤ 2·OPT).
var packers = map[string]func([]int, int) Result{
	"nextfit":  NextFit,
	"firstfit": FirstFit,
	"bestfit":  BestFit,
	"worstfit": WorstFit,
	"ffd":      FirstFitDecreasing,
}

func TestPackersSimple(t *testing.T) {
	items := []int{5, 5, 5, 5}
	for name, pack := range packers {
		r := pack(items, 10)
		if r.NumBins() != 2 {
			t.Errorf("%s: bins = %d, want 2", name, r.NumBins())
		}
	}
}

func TestNextFitClosesBins(t *testing.T) {
	// 6,5,6,5: NF gets 4 bins (never looks back); FF gets 4 too with cap
	// 10... use 6,4,6,4 cap 10: NF = [6,4],[6,4] = 2 bins.
	r := NextFit([]int{6, 4, 6, 4}, 10)
	if r.NumBins() != 2 {
		t.Fatalf("bins = %d, want 2", r.NumBins())
	}
	// 6,6,4,4: NF = [6],[6,4],[4] = 3 bins; FF = [6,4],[6,4] = 2.
	if n := NextFit([]int{6, 6, 4, 4}, 10).NumBins(); n != 3 {
		t.Fatalf("NextFit bins = %d, want 3", n)
	}
	if n := FirstFit([]int{6, 6, 4, 4}, 10).NumBins(); n != 2 {
		t.Fatalf("FirstFit bins = %d, want 2", n)
	}
}

func TestBestFitPrefersFullest(t *testing.T) {
	// Bins after 7, 5: fills 7 and 5. Item 3 fits both; BF puts it with 7.
	r := BestFit([]int{7, 5, 3}, 10)
	if r.NumBins() != 2 || r.Fill(0) != 10 {
		t.Fatalf("BestFit result %+v", r.Bins)
	}
}

func TestWorstFitPrefersEmptiest(t *testing.T) {
	// Bins after 7, 5: item 3 fits both; WF balances onto the 5-bin.
	r := WorstFit([]int{7, 5, 3}, 10)
	if r.NumBins() != 2 || r.Fill(1) != 8 {
		t.Fatalf("WorstFit result %+v", r.Bins)
	}
}

func TestFFDBeatsOrEqualsFF(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		items := genItems(rng, 50, 100)
		if FirstFitDecreasing(items, 100).NumBins() > FirstFit(items, 100).NumBins()+1 {
			t.Fatalf("FFD much worse than FF on %v", items)
		}
	}
}

func TestFFDDoesNotMutateInput(t *testing.T) {
	items := []int{3, 9, 1, 7}
	FirstFitDecreasing(items, 10)
	if items[0] != 3 || items[1] != 9 || items[2] != 1 || items[3] != 7 {
		t.Fatal("FFD mutated its input")
	}
}

// Property: every packer conserves items, never overfills a bin, never
// leaves an empty bin, and respects its approximation bound vs. the volume
// lower bound.
func TestPropertyPackingInvariants(t *testing.T) {
	f := func(seed int64, n uint8, capRaw uint8) bool {
		cap := 1 + int(capRaw)
		rng := rand.New(rand.NewSource(seed))
		items := genItems(rng, int(n), cap)
		lb := LowerBound(items, cap)
		for name, pack := range packers {
			r := pack(items, cap)
			count := 0
			for i := range r.Bins {
				if len(r.Bins[i]) == 0 {
					t.Logf("%s: empty bin", name)
					return false
				}
				if r.Fill(i) > cap {
					t.Logf("%s: overfilled bin", name)
					return false
				}
				count += len(r.Bins[i])
			}
			if count != len(items) {
				t.Logf("%s: item count %d != %d", name, count, len(items))
				return false
			}
			if len(items) > 0 && r.NumBins() > 2*lb {
				t.Logf("%s: %d bins > 2x lower bound %d", name, r.NumBins(), lb)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: NextFit preserves item order across bin boundaries (it is the
// only packer HWatch can use online: packets cannot be reordered).
func TestPropertyNextFitPreservesOrder(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		items := genItems(rng, int(n), 50)
		r := NextFit(items, 50)
		var flat []int
		for _, b := range r.Bins {
			flat = append(flat, b...)
		}
		if len(flat) != len(items) {
			return false
		}
		for i := range flat {
			if flat[i] != items[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero item":  func() { NextFit([]int{0}, 10) },
		"big item":   func() { FirstFit([]int{11}, 10) },
		"zero cap":   func() { BestFit([]int{1}, 0) },
		"neg counts": func() { Batcher{}.Split(-1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestBatcherThreeBatches(t *testing.T) {
	b := Batcher{}
	p := b.Split(10, 6)
	if len(p.Sizes) != 3 {
		t.Fatalf("unmerged plan has %d batches, want 3 (Cor IV.2.1)", len(p.Sizes))
	}
	if p.Sizes[0] != 10 || p.Sizes[1] != 3 || p.Sizes[2] != 3 {
		t.Fatalf("plan %v, want [10 3 3]", p.Sizes)
	}
	if p.Total() != 16 {
		t.Fatalf("total %d", p.Total())
	}
}

func TestBatcherMerged(t *testing.T) {
	b := Batcher{MergeFirstTwo: true}
	p := b.Split(10, 6)
	if len(p.Sizes) != 2 || p.Sizes[0] != 13 || p.Sizes[1] != 3 {
		t.Fatalf("merged plan %v, want [13 3] (Cor IV.2.2)", p.Sizes)
	}
}

func TestBatcherOddMarkedCoin(t *testing.T) {
	// With X_M odd, the extra packet must land in either half ~50/50.
	rng := rand.New(rand.NewSource(5))
	b := Batcher{Rand: rng.Float64}
	firstBigger := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		p := b.Split(0, 7)
		switch {
		case p.Sizes[1] == 4 && p.Sizes[2] == 3:
			firstBigger++
		case p.Sizes[1] == 3 && p.Sizes[2] == 4:
		default:
			t.Fatalf("bad split %v", p.Sizes)
		}
	}
	frac := float64(firstBigger) / trials
	if frac < 0.42 || frac > 0.58 {
		t.Fatalf("coin bias: %.3f", frac)
	}
}

// Property: Split conserves packets and each marked half is within one of
// X_M/2 (Theorem IV.2).
func TestPropertySplitConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func(um, m uint8, merge bool) bool {
		b := Batcher{MergeFirstTwo: merge, Rand: rng.Float64}
		p := b.Split(int(um), int(m))
		if p.Total() != int(um)+int(m) {
			return false
		}
		last := p.Sizes[len(p.Sizes)-1]
		return last >= int(m)/2 && last <= (int(m)+1)/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestStartWindowMapping(t *testing.T) {
	cautious := Batcher{MinBatch: 1} // default credit 0
	cautiousCases := []struct {
		probes, marked, icw, want int
	}{
		{10, 0, 10, 10}, // clean path: stock initial window
		{10, 10, 10, 1}, // fully marked: floor at one segment
		{10, 4, 10, 6},  // 6 unmarked probes -> 6 segments
		{10, 9, 10, 1},  // 1 unmarked -> 1 segment
		{0, 0, 10, 10},  // no probes: no information, stock behaviour
		{10, 12, 10, 1}, // marked over-count clamps to probes
		{5, 5, 10, 1},   // all marked
	}
	for _, c := range cautiousCases {
		if got := cautious.StartWindow(c.probes, c.marked, c.icw); got != c.want {
			t.Errorf("cautious StartWindow(%d,%d,%d) = %d, want %d",
				c.probes, c.marked, c.icw, got, c.want)
		}
	}

	merged := Batcher{MinBatch: 1, StartMarkedCredit: 0.5} // Cor IV.2.2 credit
	mergedCases := []struct {
		probes, marked, icw, want int
	}{
		{10, 0, 10, 10}, // clean path unchanged
		{10, 10, 10, 5}, // fully marked: X_M/2 of the ICW
		{10, 4, 10, 8},  // 6 unmarked + 2 (half of 4)
		{5, 5, 10, 5},   // (0 + 2.5)/5*10 = 5
	}
	for _, c := range mergedCases {
		if got := merged.StartWindow(c.probes, c.marked, c.icw); got != c.want {
			t.Errorf("merged StartWindow(%d,%d,%d) = %d, want %d",
				c.probes, c.marked, c.icw, got, c.want)
		}
	}
}

// Property: StartWindow is monotone non-increasing in marked probes and
// always within [1, ICW].
func TestPropertyStartWindowMonotone(t *testing.T) {
	b := Batcher{MinBatch: 1}
	f := func(probesRaw, icwRaw uint8) bool {
		probes := 1 + int(probesRaw%20)
		icw := 1 + int(icwRaw%20)
		prev := 1 << 30
		for m := 0; m <= probes; m++ {
			w := b.StartWindow(probes, m, icw)
			if w < 1 || w > icw || w > prev {
				return false
			}
			prev = w
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
