package tcp

import (
	"testing"

	"hwatch/internal/aqm"
	"hwatch/internal/sim"
)

// TestRTOBackoffThroughBlackout pulls the sender's uplink for 1.5 s in the
// middle of a transfer: every packet and ACK is lost, so the sender must
// fall back to RTO with exponential backoff (RFC 6298 §5.5), then recover
// and finish once the link returns.
func TestRTOBackoffThroughBlackout(t *testing.T) {
	delay := 50 * sim.Microsecond
	tn := newTestNet(aqm.NewDropTail(1000), 1e9, delay)
	cfg := DefaultConfig()
	rs := tn.listen(cfg)
	var fct int64 = -1
	s := NewSender(tn.a, tn.b.ID, testPort, 2_000_000, cfg)
	s.OnComplete = func(d int64) { fct = d }
	s.Start()

	eng := tn.net.Eng
	eng.At(2*sim.Millisecond, func() { tn.a.Uplink().SetDown(true) })
	// Sample mid-blackout: at least one timeout has fired and doubled rto.
	var rtoEarly, rtoLate int64
	eng.At(500*sim.Millisecond, func() { rtoEarly = s.rto })
	eng.At(1490*sim.Millisecond, func() { rtoLate = s.rto })
	eng.At(1502*sim.Millisecond, func() { tn.a.Uplink().SetDown(false) })
	run(tn, 20*sim.Second)

	if rtoEarly < 2*cfg.MinRTO {
		t.Fatalf("rto at 500ms = %v, want >= %v (at least one doubling)", rtoEarly, 2*cfg.MinRTO)
	}
	if rtoLate < 2*rtoEarly {
		t.Fatalf("backoff stalled: rto went %v -> %v over a dead second", rtoEarly, rtoLate)
	}
	if rtoLate > cfg.MaxRTO {
		t.Fatalf("rto %v exceeds MaxRTO %v", rtoLate, cfg.MaxRTO)
	}
	st := s.Stats()
	if st.Timeouts < 2 {
		t.Fatalf("Timeouts = %d, want >= 2 across a 1.5s blackout", st.Timeouts)
	}
	if fct < 0 || !s.Done() {
		t.Fatalf("sender did not recover after the blackout: state=%s", s.State())
	}
	if got := (*rs)[0].Delivered(); got != 2_000_000 {
		t.Fatalf("delivered %d bytes, want 2000000", got)
	}
	// Recovery cannot have beaten the blackout itself.
	if fct < 1500*sim.Millisecond {
		t.Fatalf("FCT %v is shorter than the blackout", fct)
	}
}
