// Package tcp implements segment-level TCP endpoints over internal/netem,
// at the fidelity of the ns-2 agents the HWatch paper simulates with:
//
//   - three-way handshake with window-scale and ECN negotiation,
//   - slow start / congestion avoidance / fast retransmit / NewReno fast
//     recovery, retransmission timeout per RFC 6298 with configurable
//     minRTO (the 200 ms floor whose expiry dominates incast FCTs),
//   - receive-window flow control (the knob HWatch turns),
//   - RFC 3168 ECN response, a deliberately *non-responsive* ECN flavour
//     (marks its packets ECT but ignores ECE — the unfair tenant in the
//     paper's coexistence study), and
//   - DCTCP's fraction-based proportional window reduction.
//
// Connections are unidirectional data transfers: the active opener (Sender)
// transmits Size bytes — or runs forever for long-lived flows — to a
// passive Receiver created by a host listener. Sequence space: the SYN
// occupies seq 0, data bytes occupy [1, Size], the FIN occupies Size+1.
package tcp

import (
	"fmt"

	"hwatch/internal/netem"
	"hwatch/internal/sim"
)

// Variant selects the congestion-control algorithm.
type Variant int

const (
	// NewReno is RFC 6582 loss-based control (with RFC 3168 ECN response
	// when Config.ECN and ECNResponsive are set).
	NewReno Variant = iota
	// DCTCP is the proportional ECN controller of Alizadeh et al.
	DCTCP
	// Cubic is RFC 8312's cubic-function controller (beta 0.7, C 0.4),
	// with the TCP-friendly region; loss recovery machinery is shared
	// with NewReno. The paper names Cubic as one of the tenant stacks that
	// respond to ECE "by cutting the window once per RTT".
	Cubic
)

func (v Variant) String() string {
	switch v {
	case NewReno:
		return "newreno"
	case DCTCP:
		return "dctcp"
	case Cubic:
		return "cubic"
	}
	return "tcp?"
}

// Config parameterizes one endpoint. The zero value is not useful; start
// from DefaultConfig.
type Config struct {
	MSS      int // payload bytes per full segment (wire = MSS + headers)
	InitCwnd int // initial congestion window, segments (Linux default 10)
	RcvBuf   int // receiver buffer advertised to the peer, bytes

	MinRTO  int64 // RTO floor, ns (200 ms in most stacks)
	InitRTO int64 // RTO before any RTT sample, ns
	MaxRTO  int64 // RTO ceiling, ns

	Variant       Variant
	ECN           bool    // negotiate ECN and send data as ECT(0)
	ECNResponsive bool    // react to ECE (ignored unless ECN)
	DCTCPGain     float64 // DCTCP g (default 1/16)

	// DelayedAck enables receiver-side ACK coalescing: one ACK per
	// AckEvery in-order segments, or after DelAckTimeout, whichever comes
	// first. Out-of-order arrivals and FINs always ACK immediately (so
	// duplicate-ACK loss detection is unaffected), and a DCTCP receiver
	// additionally flushes on every CE-state change, per the DCTCP paper's
	// two-state ACK machine. Off by default, matching the ns-2 agents the
	// paper simulates with.
	DelayedAck    bool
	AckEvery      int
	DelAckTimeout int64

	// SACK enables RFC 2018 selective acknowledgments (negotiated on the
	// handshake; effective only if both ends enable it). During recovery
	// the sender repairs known holes from the scoreboard instead of
	// NewReno's one-hole-per-partial-ACK crawl. Off by default, matching
	// the ns-2 agents the paper simulates with.
	SACK bool

	SsthreshInit int // initial ssthresh, segments
}

// DefaultConfig mirrors a Linux 3.18-era stack on a data-center host, as in
// the paper's testbed: MSS sized so a full segment is 1500 B on the wire,
// ICW 10, minRTO 200 ms.
func DefaultConfig() Config {
	return Config{
		MSS:           netem.DefaultMSS,
		InitCwnd:      10,
		RcvBuf:        1 << 20,
		MinRTO:        200 * sim.Millisecond,
		InitRTO:       200 * sim.Millisecond,
		MaxRTO:        60 * sim.Second,
		Variant:       NewReno,
		ECN:           false,
		ECNResponsive: true,
		DCTCPGain:     1.0 / 16,
		DelayedAck:    false,
		AckEvery:      2,
		DelAckTimeout: 500 * sim.Microsecond,
		SsthreshInit:  1 << 20, // effectively unbounded, as in ns-2
	}
}

// CubicConfig returns DefaultConfig switched to Cubic.
func CubicConfig() Config {
	c := DefaultConfig()
	c.Variant = Cubic
	return c
}

// DCTCPConfig returns DefaultConfig switched to DCTCP with ECN on.
func DCTCPConfig() Config {
	c := DefaultConfig()
	c.Variant = DCTCP
	c.ECN = true
	c.ECNResponsive = true
	return c
}

// wscaleFor picks the window-scale shift needed to advertise buf bytes in a
// 16-bit field, per RFC 7323.
func wscaleFor(buf int) int8 {
	var s int8
	for buf>>uint(s) > 0xffff && s < 14 {
		s++
	}
	return s
}

// EncodeRwnd converts a byte window to the raw 16-bit field under scale,
// rounding *up* so a clamp of exactly one MSS never quantizes below it.
func EncodeRwnd(bytes int64, scale int8) uint16 {
	if bytes < 0 {
		bytes = 0
	}
	unit := int64(1) << uint(scale)
	v := (bytes + unit - 1) >> uint(scale)
	if v > 0xffff {
		v = 0xffff
	}
	return uint16(v)
}

// DecodeRwnd converts a raw window field to bytes under scale.
func DecodeRwnd(field uint16, scale int8) int64 {
	return int64(field) << uint(scale)
}

// Stats counts per-connection events.
type Stats struct {
	SegsSent      int64 // data/FIN segments put on the wire (incl. rexmits)
	Retransmits   int64
	Timeouts      int64 // RTO expiries
	FastRecovery  int64 // fast-retransmit episodes
	ECNReductions int64 // window cuts triggered by ECE/DCTCP
	EceAcks       int64 // ACKs carrying ECE
	BytesAcked    int64
}

// connState is the lifecycle of a Sender.
type connState int

const (
	stateClosed connState = iota
	stateSynSent
	stateEstablished
	stateFinished
)

func (s connState) String() string {
	switch s {
	case stateClosed:
		return "closed"
	case stateSynSent:
		return "syn-sent"
	case stateEstablished:
		return "established"
	case stateFinished:
		return "finished"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Infinite marks a long-lived flow that never finishes.
const Infinite int64 = -1
