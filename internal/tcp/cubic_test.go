package tcp

import (
	"testing"

	"hwatch/internal/aqm"
	"hwatch/internal/sim"
)

func TestCubicTransferCompletes(t *testing.T) {
	tn := newTestNet(aqm.NewDropTail(200), 1e9, 50*sim.Microsecond)
	cfg := CubicConfig()
	rs := tn.listen(cfg)
	done := false
	s := NewSender(tn.a, tn.b.ID, testPort, 500_000, cfg)
	s.OnComplete = func(int64) { done = true }
	s.Start()
	run(tn, 10*sim.Second)
	if !done || (*rs)[0].Delivered() != 500_000 {
		t.Fatalf("cubic flow failed: done=%v delivered=%d", done, (*rs)[0].Delivered())
	}
}

func TestCubicReducesByBeta(t *testing.T) {
	// ECN-marked cubic must cut to ~0.7x, not 0.5x.
	tn := newTestNet(aqm.NewMarkThreshold(1000, 30), 1e9, 50*sim.Microsecond)
	cfg := CubicConfig()
	cfg.ECN = true
	tn.listen(cfg)
	s := NewSender(tn.a, tn.b.ID, testPort, Infinite, cfg)
	s.Start()

	var before, after float64
	captured := false
	var watch func()
	prevReductions := int64(0)
	watch = func() {
		st := s.Stats()
		if st.ECNReductions > prevReductions && !captured {
			captured = true
			after = s.Cwnd()
		}
		if !captured {
			before = s.Cwnd()
		}
		prevReductions = st.ECNReductions
		tn.net.Eng.Schedule(10*sim.Microsecond, watch)
	}
	tn.net.Eng.Schedule(0, watch)
	run(tn, 100*sim.Millisecond)

	if !captured {
		t.Fatal("no ECN reduction observed")
	}
	ratio := after / before
	if ratio < 0.6 || ratio > 0.8 {
		t.Fatalf("cubic reduction ratio %.2f, want ~0.7", ratio)
	}
}

func TestCubicConvexRecovery(t *testing.T) {
	// After a reduction, cubic growth accelerates toward W_max: the window
	// gain in the last third of the epoch should beat the first third
	// after the plateau... assert at least that cwnd re-approaches wMax
	// within a modest multiple of K.
	tn := newTestNet(aqm.NewMarkThreshold(2000, 200), 1e9, 100*sim.Microsecond)
	cfg := CubicConfig()
	cfg.ECN = true
	tn.listen(cfg)
	s := NewSender(tn.a, tn.b.ID, testPort, Infinite, cfg)
	s.Start()
	run(tn, 500*sim.Millisecond)
	if s.Stats().ECNReductions == 0 {
		t.Skip("no reduction in this configuration")
	}
	if s.wMax == 0 || s.cubicEpoch == 0 {
		t.Fatal("cubic epoch state not maintained")
	}
	// The controller must still be delivering: cwnd within sane bounds.
	if s.Cwnd() < float64(cfg.MSS) {
		t.Fatalf("cwnd collapsed: %f", s.Cwnd())
	}
}

func TestCubicRegrowsFasterThanReno(t *testing.T) {
	// Cubic's raison d'être: after a single loss on a high-BDP path the
	// window regrows along the cubic curve far faster than Reno's one
	// MSS per RTT. Measure the time from the loss to cwnd recovering to
	// 90% of its pre-loss value. (Goodput comparisons are confounded here
	// because recovery without SACK punishes the more aggressive sender.)
	recoverTime := func(cfg Config) int64 {
		cfg.RcvBuf = 32 << 20
		cfg.SsthreshInit = 200                                        // enter congestion avoidance at 200 segments
		tn := newTestNet(aqm.NewDropTail(2000), 1e9, sim.Millisecond) // 4 ms RTT, deep buffer
		tn.listen(cfg)
		// Drop exactly one data segment mid-flow, once cwnd is large.
		tn.a.AddFilter(&lossFilter{n: 3000})
		s := NewSender(tn.a, tn.b.ID, testPort, Infinite, cfg)
		s.Start()

		var preLoss float64
		var lossAt, recoveredAt int64 = -1, -1
		var watch func()
		watch = func() {
			switch {
			case lossAt < 0:
				if s.Stats().FastRecovery > 0 {
					lossAt = tn.net.Eng.Now()
				} else {
					preLoss = s.Cwnd()
				}
			case recoveredAt < 0 && !s.inRecovery && s.Cwnd() >= 0.9*preLoss:
				recoveredAt = tn.net.Eng.Now()
				tn.net.Eng.Stop() // measurement done; no need to simulate on
				return
			}
			tn.net.Eng.Schedule(500*sim.Microsecond, watch)
		}
		tn.net.Eng.Schedule(0, watch)
		run(tn, 20*sim.Second)
		if lossAt < 0 || recoveredAt < 0 {
			t.Fatalf("variant %v: loss=%d recovered=%d", cfg.Variant, lossAt, recoveredAt)
		}
		return recoveredAt - lossAt
	}
	reno := recoverTime(DefaultConfig())
	cubic := recoverTime(CubicConfig())
	if cubic >= reno {
		t.Fatalf("cubic recovery %dms not faster than reno %dms",
			cubic/sim.Millisecond, reno/sim.Millisecond)
	}
}

func TestCubicStringAndConfig(t *testing.T) {
	if Cubic.String() != "cubic" {
		t.Fatal("variant name")
	}
	c := CubicConfig()
	if c.Variant != Cubic || c.ECN {
		t.Fatalf("CubicConfig = %+v", c)
	}
}
