package tcp

import (
	"testing"

	"hwatch/internal/aqm"
	"hwatch/internal/netem"
	"hwatch/internal/sim"
)

func TestAbortSendsRSTAndClosesPeer(t *testing.T) {
	tn := newTestNet(aqm.NewDropTail(1000), 1e9, 20*sim.Microsecond)
	cfg := DefaultConfig()
	var rs []*Receiver
	closed := 0
	tn.b.Listen(testPort, NewListener(tn.b, cfg, func(r *Receiver) {
		rs = append(rs, r)
		r.OnClose = func() { closed++ }
	}))
	s := NewSender(tn.a, tn.b.ID, testPort, Infinite, cfg)
	completed := false
	s.OnComplete = func(int64) { completed = true }
	s.Start()
	tn.net.Eng.RunUntil(10 * sim.Millisecond)
	s.Abort()
	run(tn, 100*sim.Millisecond)

	if !s.Aborted() {
		t.Fatal("sender not marked aborted")
	}
	if completed {
		t.Fatal("aborted flow fired OnComplete")
	}
	if closed != 1 || !rs[0].Closed() {
		t.Fatal("peer did not close on RST")
	}
	// No lingering timers keep the engine busy forever.
	tn.net.Eng.RunUntil(2 * sim.Second)
	if s.State() != "finished" {
		t.Fatalf("state = %s", s.State())
	}
}

func TestAbortIdempotent(t *testing.T) {
	tn := newTestNet(aqm.NewDropTail(1000), 1e9, 20*sim.Microsecond)
	cfg := DefaultConfig()
	tn.listen(cfg)
	s := NewSender(tn.a, tn.b.ID, testPort, 10_000, cfg)
	s.Start()
	run(tn, sim.Second) // completes normally
	if !s.Done() {
		t.Fatal("setup: flow incomplete")
	}
	s.Abort() // must be a no-op after completion
	if s.Aborted() {
		t.Fatal("Abort after completion flagged the connection")
	}
}

func TestPeerRSTStopsSender(t *testing.T) {
	// Simulate a receiver-side application kill: inject a RST at the
	// sender via the ingress path.
	tn := newTestNet(aqm.NewDropTail(1000), 1e9, 20*sim.Microsecond)
	cfg := DefaultConfig()
	tn.listen(cfg)
	s := NewSender(tn.a, tn.b.ID, testPort, Infinite, cfg)
	s.Start()
	tn.net.Eng.RunUntil(5 * sim.Millisecond)
	txBefore := tn.a.Stats().TxPackets

	// Forge the peer's RST.
	k := s.FlowKey()
	p := &netem.Packet{
		Src: k.Dst, Dst: k.Src, SrcPort: k.DstPort, DstPort: k.SrcPort,
		Flags: netem.FlagRST | netem.FlagACK, Wire: netem.HeaderSize, WScaleOpt: -1,
	}
	netem.SetChecksum(p)
	tn.a.InjectInbound(p)
	tn.net.Eng.RunUntil(6 * sim.Millisecond)
	if !s.Aborted() {
		t.Fatal("sender ignored the peer RST")
	}
	// The sender must go quiet (only in-flight events drain).
	tn.net.Eng.RunUntil(10 * sim.Millisecond)
	quiesced := tn.a.Stats().TxPackets
	tn.net.Eng.RunUntil(500 * sim.Millisecond)
	if tn.a.Stats().TxPackets > quiesced {
		t.Fatalf("sender kept transmitting after RST: %d -> %d (pre-RST %d)",
			quiesced, tn.a.Stats().TxPackets, txBefore)
	}
}
