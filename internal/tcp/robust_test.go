package tcp

import (
	"fmt"
	"testing"

	"hwatch/internal/aqm"
	"hwatch/internal/netem"
	"hwatch/internal/sim"
)

// Robustness suite: TCP must deliver exactly the requested bytes and
// terminate under every network fault the impairment filter can inject.

func runImpaired(t *testing.T, imp *netem.Impairment, size int64, horizon int64) (*Sender, *Receiver) {
	t.Helper()
	tn := newTestNet(aqm.NewDropTail(1000), 1e9, 50*sim.Microsecond)
	cfg := DefaultConfig()
	rs := tn.listen(cfg)
	tn.a.VerifyChecksums = true
	tn.b.VerifyChecksums = true
	netem.AttachImpairment(tn.a, imp)
	s := NewSender(tn.a, tn.b.ID, testPort, size, cfg)
	s.Start()
	run(tn, horizon)
	if len(*rs) == 0 {
		t.Fatal("connection never established")
	}
	return s, (*rs)[0]
}

func TestRobustRandomLoss(t *testing.T) {
	for _, p := range []float64{0.01, 0.05} {
		p := p
		t.Run(fmt.Sprintf("loss=%v", p), func(t *testing.T) {
			imp := &netem.Impairment{Rng: sim.NewRNG(21), DropP: p, SkipInbound: true}
			s, r := runImpaired(t, imp, 200_000, 120*sim.Second)
			if !s.Done() {
				t.Fatalf("flow incomplete under %.0f%% loss: %v", p*100, s)
			}
			if r.Delivered() != 200_000 {
				t.Fatalf("delivered %d", r.Delivered())
			}
			if s.Stats().Retransmits == 0 {
				t.Fatal("loss injected but nothing retransmitted?")
			}
		})
	}
}

func TestRobustReordering(t *testing.T) {
	imp := &netem.Impairment{
		Rng: sim.NewRNG(22), ReorderP: 0.05,
		ReorderDelay: 300 * sim.Microsecond, SkipInbound: true,
	}
	s, r := runImpaired(t, imp, 300_000, 120*sim.Second)
	if !s.Done() || r.Delivered() != 300_000 {
		t.Fatalf("reordering broke delivery: done=%v delivered=%d", s.Done(), r.Delivered())
	}
	// Reordering alone may cause spurious fast retransmits but the data
	// must still be exact (cumulative ACK + OOO buffer discard duplicates).
}

func TestRobustDuplication(t *testing.T) {
	imp := &netem.Impairment{Rng: sim.NewRNG(23), DupP: 0.2, SkipInbound: true}
	s, r := runImpaired(t, imp, 200_000, 60*sim.Second)
	if !s.Done() {
		t.Fatal("duplication broke the flow")
	}
	if r.Delivered() != 200_000 {
		t.Fatalf("duplicates double-counted: delivered %d", r.Delivered())
	}
}

func TestRobustCorruption(t *testing.T) {
	imp := &netem.Impairment{Rng: sim.NewRNG(24), CorruptP: 0.03, SkipInbound: true}
	s, r := runImpaired(t, imp, 150_000, 120*sim.Second)
	if !s.Done() || r.Delivered() != 150_000 {
		t.Fatalf("corruption broke delivery: done=%v delivered=%d", s.Done(), r.Delivered())
	}
	if imp.Corrupted == 0 {
		t.Fatal("no corruption exercised")
	}
}

func TestRobustEverythingAtOnce(t *testing.T) {
	imp := &netem.Impairment{
		Rng:   sim.NewRNG(25),
		DropP: 0.02, DupP: 0.05, ReorderP: 0.03, CorruptP: 0.02,
		ReorderDelay: 200 * sim.Microsecond, SkipInbound: true,
	}
	s, r := runImpaired(t, imp, 250_000, 300*sim.Second)
	if !s.Done() || r.Delivered() != 250_000 {
		t.Fatalf("combined faults broke delivery: done=%v delivered=%d stats=%+v",
			s.Done(), r.Delivered(), s.Stats())
	}
}

// flowControlChecker verifies the receive-window contract exactly at send
// time: every outbound data byte must lie below the last advertised
// ack + rwnd (plus one MSS of slack for the sub-MSS progress exception
// when a middlebox clamps the window under one segment).
type flowControlChecker struct {
	t          *testing.T
	mss        int64
	lastAck    int64
	lastRwnd   int64
	peerWscale int8
	sawAck     bool
	violations int
}

func (c *flowControlChecker) Name() string { return "fcck" }

func (c *flowControlChecker) Inbound(p *netem.Packet) netem.Verdict {
	if p.Flags.Has(netem.FlagSYN) && p.Flags.Has(netem.FlagACK) && p.WScaleOpt >= 0 {
		c.peerWscale = p.WScaleOpt
	}
	if p.Flags.Has(netem.FlagACK) && p.Ack >= c.lastAck {
		c.lastAck = p.Ack
		c.lastRwnd = DecodeRwnd(p.Rwnd, c.peerWscale)
		c.sawAck = true
	}
	return netem.VerdictPass
}

func (c *flowControlChecker) Outbound(p *netem.Packet) netem.Verdict {
	if p.IsData() && c.sawAck {
		limit := c.lastAck + maxI64c(c.lastRwnd, c.mss)
		if end := p.Seq + int64(p.Payload); end > limit {
			c.violations++
			c.t.Logf("data to %d beyond ack %d + rwnd %d", end, c.lastAck, c.lastRwnd)
		}
	}
	return netem.VerdictPass
}

func maxI64c(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Invariant: under arbitrary faults the sender never transmits data beyond
// the receiver's advertised window (checked exactly at send time).
func TestRobustWindowInvariant(t *testing.T) {
	tn := newTestNet(aqm.NewDropTail(1000), 1e9, 50*sim.Microsecond)
	cfg := DefaultConfig()
	rcfg := DefaultConfig()
	rcfg.RcvBuf = 64 << 10 // a tight window so the contract binds often
	var rs []*Receiver
	tn.b.Listen(testPort, NewListener(tn.b, rcfg, func(r *Receiver) { rs = append(rs, r) }))
	check := &flowControlChecker{t: t, mss: int64(cfg.MSS)}
	tn.a.AddFilter(check)
	netem.AttachImpairment(tn.a, &netem.Impairment{
		Rng: sim.NewRNG(26), DropP: 0.03, ReorderP: 0.02,
		ReorderDelay: 200 * sim.Microsecond, SkipInbound: true,
	})
	s := NewSender(tn.a, tn.b.ID, testPort, 500_000, cfg)
	s.Start()
	run(tn, 60*sim.Second)
	if check.violations > 0 {
		t.Fatalf("%d flow-control violations", check.violations)
	}
	if !s.Done() {
		t.Fatal("flow incomplete")
	}
}

func TestRobustShimUnderLoss(t *testing.T) {
	// HWatch's stolen-SYN path and rwnd machinery must tolerate loss of
	// probes, SYNs, SYN-ACKs and ACKs alike: exercised by a lossy HWatch
	// transfer at the TCP level (shim attached in internal/core tests;
	// here we emulate a lossy receiver path against the rwnd rewriter).
	tn := newTestNet(aqm.NewDropTail(1000), 1e9, 50*sim.Microsecond)
	cfg := DefaultConfig()
	tn.listen(cfg)
	tn.b.AddFilter(&rwndRewriter{clampBytes: 3 * int64(cfg.MSS)})
	netem.AttachImpairment(tn.b, &netem.Impairment{
		Rng: sim.NewRNG(27), DropP: 0.03, SkipInbound: true, // lose ACKs
	})
	s := NewSender(tn.a, tn.b.ID, testPort, 150_000, cfg)
	s.Start()
	run(tn, 120*sim.Second)
	if !s.Done() {
		t.Fatalf("clamped flow under ACK loss incomplete: %v", s)
	}
}
