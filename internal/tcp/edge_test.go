package tcp

import (
	"testing"

	"hwatch/internal/aqm"
	"hwatch/internal/netem"
	"hwatch/internal/sim"
)

// rwndWatcher records the smallest non-SYN window the receiver advertised.
type rwndWatcher struct {
	scale int8
	min   int64
	seen  bool
}

func (w *rwndWatcher) Name() string { return "rwndwatch" }
func (w *rwndWatcher) Inbound(p *netem.Packet) netem.Verdict {
	return netem.VerdictPass
}
func (w *rwndWatcher) Outbound(p *netem.Packet) netem.Verdict {
	if p.Flags.Has(netem.FlagSYN) {
		if p.WScaleOpt >= 0 {
			w.scale = p.WScaleOpt
		}
		return netem.VerdictPass
	}
	if p.Flags.Has(netem.FlagACK) && !p.IsData() {
		v := DecodeRwnd(p.Rwnd, w.scale)
		if !w.seen || v < w.min {
			w.min, w.seen = v, true
		}
	}
	return netem.VerdictPass
}

func TestReceiverShrinksWindowUnderOOOBuffering(t *testing.T) {
	// Drop one early segment so a window's worth of later data is held in
	// the out-of-order buffer; the advertised window must shrink by the
	// buffered amount while the hole exists.
	tn := newTestNet(aqm.NewDropTail(10000), 1e9, 250*sim.Microsecond)
	cfg := DefaultConfig()
	cfg.RcvBuf = 128 << 10
	w := &rwndWatcher{}
	tn.b.AddFilter(w)
	tn.listen(cfg)
	tn.a.AddFilter(&lossFilter{n: 12})
	s := NewSender(tn.a, tn.b.ID, testPort, 300_000, cfg)
	s.Start()
	run(tn, 10*sim.Second)
	if !s.Done() {
		t.Fatal("flow incomplete")
	}
	if !w.seen {
		t.Fatal("no ACK windows observed")
	}
	if w.min >= int64(cfg.RcvBuf) {
		t.Fatalf("advertised window never shrank below the buffer (%d)", w.min)
	}
}

func TestSubMSSWindowStillProgresses(t *testing.T) {
	// A middlebox clamping the window below one MSS must not deadlock the
	// sender: it sends shrunken segments when nothing is in flight.
	tn := newTestNet(aqm.NewDropTail(1000), 1e9, 20*sim.Microsecond)
	cfg := DefaultConfig()
	tn.listen(cfg)
	tn.b.AddFilter(&rwndRewriter{clampBytes: 800}) // about half an MSS
	done := false
	s := NewSender(tn.a, tn.b.ID, testPort, 20_000, cfg)
	s.OnComplete = func(int64) { done = true }
	s.Start()
	run(tn, 30*sim.Second)
	if !done {
		t.Fatalf("sub-MSS window deadlocked the flow: %v", s)
	}
}

func TestHugeBufferWindowScaling(t *testing.T) {
	// A 32 MB advertised buffer needs wscale 9; the decoded peer window at
	// the sender must reflect the full size.
	tn := newTestNet(aqm.NewDropTail(10000), 10e9, 10*sim.Microsecond)
	cfg := DefaultConfig()
	rcfg := DefaultConfig()
	rcfg.RcvBuf = 32 << 20
	tn.b.Listen(testPort, NewListener(tn.b, rcfg, nil))
	s := NewSender(tn.a, tn.b.ID, testPort, 100_000, cfg)
	s.Start()
	run(tn, sim.Second)
	if !s.Done() {
		t.Fatal("flow incomplete")
	}
	// Last advertised window: the full buffer, exactly representable.
	if got := s.PeerRwnd(); got < 32<<20 || got > (32<<20)+(1<<9) {
		t.Fatalf("peer window %d, want ~32MB", got)
	}
}

func TestManySequentialConnectionsSamePair(t *testing.T) {
	// Thousands of connections between one host pair (the testbed pattern)
	// must not collide on ports or demux state.
	tn := newTestNet(aqm.NewDropTail(10000), 10e9, 10*sim.Microsecond)
	cfg := DefaultConfig()
	tn.listen(cfg)
	const rounds = 300
	done := 0
	var launch func()
	launch = func() {
		s := NewSender(tn.a, tn.b.ID, testPort, 5000, cfg)
		s.OnComplete = func(int64) {
			done++
			if done < rounds {
				launch()
			}
		}
		s.Start()
	}
	tn.net.Eng.Schedule(0, launch)
	run(tn, 60*sim.Second)
	if done != rounds {
		t.Fatalf("sequential connections completed %d/%d", done, rounds)
	}
	if orphans := tn.b.Stats().Orphans; orphans != 0 {
		t.Fatalf("%d orphan segments across clean sequential connections", orphans)
	}
}
