package tcp

import (
	"testing"

	"hwatch/internal/aqm"
	"hwatch/internal/netem"
	"hwatch/internal/sim"
)

func TestMPTCPBasicTransfer(t *testing.T) {
	tn := newTestNet(aqm.NewDropTail(1000), 1e9, 50*sim.Microsecond)
	cfg := DefaultConfig()
	rs := tn.listen(cfg)
	var fct int64 = -1
	m := NewMPSender(tn.a, tn.b.ID, testPort, 100_000, 4, cfg)
	m.OnComplete = func(d int64) { fct = d }
	m.Start()
	run(tn, 10*sim.Second)

	if fct < 0 || !m.Done() {
		t.Fatalf("MPTCP connection incomplete: %v", m)
	}
	if len(m.Subflows()) != 4 {
		t.Fatalf("subflows = %d", len(m.Subflows()))
	}
	if len(*rs) != 4 {
		t.Fatalf("receivers = %d, want one per subflow", len(*rs))
	}
	var total int64
	for _, r := range *rs {
		total += r.Delivered()
		if !r.Closed() {
			t.Fatal("a subflow receiver never saw its FIN")
		}
	}
	if total != 100_000 {
		t.Fatalf("delivered %d bytes across subflows, want 100000", total)
	}
	if m.Stats().BytesAcked != 100_000+4 { // + one FIN seq slot per subflow
		t.Fatalf("BytesAcked = %d", m.Stats().BytesAcked)
	}
}

func TestMPTCPUnevenSplit(t *testing.T) {
	tn := newTestNet(aqm.NewDropTail(1000), 1e9, 10*sim.Microsecond)
	cfg := DefaultConfig()
	rs := tn.listen(cfg)
	m := NewMPSender(tn.a, tn.b.ID, testPort, 10_001, 3, cfg) // 3334+3334+3333
	done := false
	m.OnComplete = func(int64) { done = true }
	m.Start()
	run(tn, 5*sim.Second)
	if !done {
		t.Fatal("uneven split did not complete")
	}
	var total int64
	sizes := map[int64]bool{}
	for _, r := range *rs {
		total += r.Delivered()
		sizes[r.Delivered()] = true
	}
	if total != 10_001 {
		t.Fatalf("total %d", total)
	}
	if !sizes[3334] || !sizes[3333] {
		t.Fatalf("unexpected share sizes: %v", sizes)
	}
}

func TestMPTCPJoinAfterFirstEstablished(t *testing.T) {
	// Only the first subflow's SYN may appear before its SYN-ACK returns.
	tn := newTestNet(aqm.NewDropTail(1000), 1e9, 100*sim.Microsecond)
	cfg := DefaultConfig()
	tn.listen(cfg)
	counter := &synCounter{}
	tn.a.AddFilter(counter)
	m := NewMPSender(tn.a, tn.b.ID, testPort, 50_000, 3, cfg)
	m.Start()
	// Before one RTT (400 us base), only one SYN can have left.
	tn.net.Eng.RunUntil(200 * sim.Microsecond)
	if counter.syns != 1 {
		t.Fatalf("%d SYNs before first establishment, want 1", counter.syns)
	}
	run(tn, 5*sim.Second)
	if counter.syns != 3 {
		t.Fatalf("total SYNs = %d, want 3", counter.syns)
	}
	if !m.Done() {
		t.Fatal("connection incomplete")
	}
}

type synCounter struct{ syns int }

func (c *synCounter) Name() string { return "syncount" }
func (c *synCounter) Inbound(p *netem.Packet) netem.Verdict {
	return netem.VerdictPass
}
func (c *synCounter) Outbound(p *netem.Packet) netem.Verdict {
	if p.Flags.Has(netem.FlagSYN) && !p.Flags.Has(netem.FlagACK) {
		c.syns++
	}
	return netem.VerdictPass
}

func TestMPTCPSingleSubflowEqualsTCP(t *testing.T) {
	tn := newTestNet(aqm.NewDropTail(1000), 1e9, 10*sim.Microsecond)
	cfg := DefaultConfig()
	rs := tn.listen(cfg)
	m := NewMPSender(tn.a, tn.b.ID, testPort, 30_000, 1, cfg)
	m.Start()
	run(tn, sim.Second)
	if !m.Done() || (*rs)[0].Delivered() != 30_000 {
		t.Fatal("single-subflow MPTCP broken")
	}
}

func TestMPTCPInfinite(t *testing.T) {
	tn := newTestNet(aqm.NewDropTail(200), 1e9, 50*sim.Microsecond)
	cfg := DefaultConfig()
	rs := tn.listen(cfg)
	m := NewMPSender(tn.a, tn.b.ID, testPort, Infinite, 2, cfg)
	m.Start()
	run(tn, 50*sim.Millisecond)
	if m.Done() {
		t.Fatal("infinite MPTCP reported done")
	}
	if len(*rs) != 2 {
		t.Fatalf("receivers = %d", len(*rs))
	}
	for _, r := range *rs {
		if r.Delivered() == 0 {
			t.Fatal("an infinite subflow delivered nothing")
		}
	}
}

func TestMPTCPValidation(t *testing.T) {
	tn := newTestNet(aqm.NewDropTail(10), 1e9, 1000)
	for name, fn := range map[string]func(){
		"zero subflows": func() { NewMPSender(tn.a, tn.b.ID, testPort, 100, 0, DefaultConfig()) },
		"negative size": func() { NewMPSender(tn.a, tn.b.ID, testPort, -5, 2, DefaultConfig()) },
		"double start": func() {
			m := NewMPSender(tn.a, tn.b.ID, testPort, 100, 1, DefaultConfig())
			m.Start()
			m.Start()
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
