package tcp

import (
	"testing"
	"testing/quick"

	"hwatch/internal/aqm"
	"hwatch/internal/netem"
	"hwatch/internal/sim"
)

// testNet is a two-host dumbbell-lite: a -> sw -> b, with the switch port
// toward b as the bottleneck (its queue discipline is configurable).
type testNet struct {
	net  *netem.Network
	a, b *netem.Host
	bq   netem.Queue // bottleneck queue (toward b)
}

const testPort = 80

func newTestNet(bottleneck netem.Queue, rateBps, delay int64) *testNet {
	n := netem.NewNetwork()
	a := n.NewHost("a")
	b := n.NewHost("b")
	sw := n.NewSwitch("sw")
	big := func() netem.Queue { return aqm.NewDropTail(100000) }
	// Host links run 10x the bottleneck so queueing happens at the switch
	// port toward b (the instrumented discipline).
	n.LinkHostSwitch(a, sw, big(), big(), 10*rateBps, delay)
	down := netem.NewPort(n.Eng, bottleneck, rateBps, delay)
	down.Connect(b)
	sw.Route(b.ID, sw.AddPort(down))
	upB := netem.NewPort(n.Eng, big(), 10*rateBps, delay)
	upB.Connect(sw)
	b.AttachUplink(upB)
	return &testNet{net: n, a: a, b: b, bq: bottleneck}
}

// listen installs a plain listener on b and returns a pointer slot that
// captures each accepted receiver.
func (tn *testNet) listen(cfg Config) *[]*Receiver {
	var rs []*Receiver
	tn.b.Listen(testPort, NewListener(tn.b, cfg, func(r *Receiver) { rs = append(rs, r) }))
	return &rs
}

func run(tn *testNet, until int64) { tn.net.Eng.RunUntil(until) }

func TestBasicTransferCompletes(t *testing.T) {
	tn := newTestNet(aqm.NewDropTail(1000), 1e9, 50*sim.Microsecond)
	cfg := DefaultConfig()
	rs := tn.listen(cfg)
	var fct int64 = -1
	s := NewSender(tn.a, tn.b.ID, testPort, 100_000, cfg)
	s.OnComplete = func(d int64) { fct = d }
	s.Start()
	run(tn, 10*sim.Second)

	if fct < 0 {
		t.Fatalf("flow did not complete: %v", s)
	}
	if !s.Done() {
		t.Fatal("sender not Done after completion")
	}
	if len(*rs) != 1 {
		t.Fatalf("receivers = %d, want 1", len(*rs))
	}
	r := (*rs)[0]
	if r.Delivered() != 100_000 {
		t.Fatalf("delivered %d bytes, want 100000", r.Delivered())
	}
	if !r.Closed() {
		t.Fatal("receiver not closed after FIN")
	}
	// Sanity on FCT: >= 2 RTT (handshake + data), << 1 s on a clean path.
	rtt := 4 * 50 * sim.Microsecond
	if fct < rtt/2 || fct > 100*sim.Millisecond {
		t.Fatalf("suspicious FCT %d ns", fct)
	}
	if st := s.Stats(); st.Timeouts != 0 || st.Retransmits != 0 {
		t.Fatalf("clean path had timeouts/retransmits: %+v", st)
	}
}

func TestZeroByteFlow(t *testing.T) {
	tn := newTestNet(aqm.NewDropTail(1000), 1e9, 10*sim.Microsecond)
	cfg := DefaultConfig()
	tn.listen(cfg)
	done := false
	s := NewSender(tn.a, tn.b.ID, testPort, 0, cfg)
	s.OnComplete = func(int64) { done = true }
	s.Start()
	run(tn, sim.Second)
	if !done {
		t.Fatalf("zero-byte flow did not complete: %v", s)
	}
}

func TestSingleSegmentFlow(t *testing.T) {
	tn := newTestNet(aqm.NewDropTail(1000), 1e9, 10*sim.Microsecond)
	cfg := DefaultConfig()
	rs := tn.listen(cfg)
	done := false
	s := NewSender(tn.a, tn.b.ID, testPort, 700, cfg)
	s.OnComplete = func(int64) { done = true }
	s.Start()
	run(tn, sim.Second)
	if !done || (*rs)[0].Delivered() != 700 {
		t.Fatalf("short flow failed: done=%v delivered=%d", done, (*rs)[0].Delivered())
	}
}

func TestLongLivedFlowDeliversContinuously(t *testing.T) {
	tn := newTestNet(aqm.NewDropTail(100), 1e9, 50*sim.Microsecond)
	cfg := DefaultConfig()
	rs := tn.listen(cfg)
	s := NewSender(tn.a, tn.b.ID, testPort, Infinite, cfg)
	s.Start()
	run(tn, 100*sim.Millisecond)
	if len(*rs) != 1 {
		t.Fatal("no receiver")
	}
	got := (*rs)[0].Delivered()
	// 1 Gb/s for 100 ms ≈ 12.5 MB; expect a healthy share after slow-start
	// overshoot and sawtooth recovery (no RTO stalls): > 8 MB.
	if got < 8_000_000 {
		t.Fatalf("long flow delivered only %d bytes in 100ms at 1G", got)
	}
	if s.Done() {
		t.Fatal("infinite flow reported Done")
	}
}

// lossFilter drops the Nth outbound data segment once.
type lossFilter struct {
	n       int
	count   int
	dropped bool
}

func (f *lossFilter) Name() string { return "loss" }
func (f *lossFilter) Inbound(p *netem.Packet) netem.Verdict {
	return netem.VerdictPass
}
func (f *lossFilter) Outbound(p *netem.Packet) netem.Verdict {
	if p.IsData() {
		f.count++
		if f.count == f.n && !f.dropped {
			f.dropped = true
			return netem.VerdictDrop
		}
	}
	return netem.VerdictPass
}

func TestFastRetransmitRecoversMidFlowLoss(t *testing.T) {
	tn := newTestNet(aqm.NewDropTail(1000), 1e9, 50*sim.Microsecond)
	cfg := DefaultConfig()
	rs := tn.listen(cfg)
	tn.a.AddFilter(&lossFilter{n: 5}) // drop the 5th data segment
	var fct int64 = -1
	s := NewSender(tn.a, tn.b.ID, testPort, 300_000, cfg)
	s.OnComplete = func(d int64) { fct = d }
	s.Start()
	run(tn, 10*sim.Second)
	if fct < 0 {
		t.Fatalf("flow did not complete after mid-flow loss: %v", s)
	}
	st := s.Stats()
	if st.FastRecovery == 0 {
		t.Fatalf("expected fast recovery, got %+v", st)
	}
	if st.Timeouts != 0 {
		t.Fatalf("mid-flow single loss should not need RTO: %+v", st)
	}
	if fct > 50*sim.Millisecond {
		t.Fatalf("FCT %dms indicates RTO was hit", fct/sim.Millisecond)
	}
	if (*rs)[0].Delivered() != 300_000 {
		t.Fatalf("delivered %d", (*rs)[0].Delivered())
	}
}

func TestTailLossRequiresRTO(t *testing.T) {
	tn := newTestNet(aqm.NewDropTail(1000), 1e9, 50*sim.Microsecond)
	cfg := DefaultConfig()
	rs := tn.listen(cfg)
	// 10 KB = 7 segments with ICW 10: drop the last one; no further data
	// generates dupacks, so only the 200 ms RTO recovers it.
	tn.a.AddFilter(&lossFilter{n: 7})
	var fct int64 = -1
	s := NewSender(tn.a, tn.b.ID, testPort, 10_000, cfg)
	s.OnComplete = func(d int64) { fct = d }
	s.Start()
	run(tn, 10*sim.Second)
	if fct < 0 {
		t.Fatal("flow never completed")
	}
	st := s.Stats()
	if st.Timeouts == 0 {
		t.Fatalf("tail loss must hit RTO: %+v", st)
	}
	if fct < cfg.MinRTO {
		t.Fatalf("FCT %d below minRTO %d despite tail loss", fct, cfg.MinRTO)
	}
	if (*rs)[0].Delivered() != 10_000 {
		t.Fatalf("delivered %d", (*rs)[0].Delivered())
	}
}

func TestSynLossRecovered(t *testing.T) {
	tn := newTestNet(aqm.NewDropTail(1000), 1e9, 50*sim.Microsecond)
	cfg := DefaultConfig()
	tn.listen(cfg)
	// Drop the first outbound packet (the SYN).
	f := &synDropper{}
	tn.a.AddFilter(f)
	done := false
	s := NewSender(tn.a, tn.b.ID, testPort, 5000, cfg)
	s.OnComplete = func(int64) { done = true }
	s.Start()
	run(tn, 10*sim.Second)
	if !done {
		t.Fatalf("flow did not survive SYN loss: %v", s)
	}
	if s.Stats().Timeouts == 0 {
		t.Fatal("SYN loss must be recovered by timeout")
	}
}

type synDropper struct{ dropped bool }

func (f *synDropper) Name() string { return "syndrop" }
func (f *synDropper) Inbound(p *netem.Packet) netem.Verdict {
	return netem.VerdictPass
}
func (f *synDropper) Outbound(p *netem.Packet) netem.Verdict {
	if p.Flags.Has(netem.FlagSYN) && !f.dropped {
		f.dropped = true
		return netem.VerdictDrop
	}
	return netem.VerdictPass
}

func TestIncastOverflowAllFlowsComplete(t *testing.T) {
	// Many senders into one shallow buffer: drops are guaranteed; TCP must
	// still complete every flow (by recovery or RTO).
	n := netem.NewNetwork()
	sw := n.NewSwitch("tor")
	dst := n.NewHost("agg")
	big := func() netem.Queue { return aqm.NewDropTail(10000) }
	down := netem.NewPort(n.Eng, aqm.NewDropTail(30), 1e9, 20*sim.Microsecond)
	down.Connect(dst)
	di := sw.AddPort(down)
	sw.Route(dst.ID, di)
	dstUp := netem.NewPort(n.Eng, big(), 1e9, 20*sim.Microsecond)
	dstUp.Connect(sw)
	dst.AttachUplink(dstUp)

	cfg := DefaultConfig()
	dst.Listen(testPort, NewListener(dst, cfg, nil))

	const nSenders = 20
	completed := 0
	for i := 0; i < nSenders; i++ {
		h := n.NewHost("")
		n.LinkHostSwitch(h, sw, big(), big(), 1e9, 20*sim.Microsecond)
		s := NewSender(h, dst.ID, testPort, 20_000, cfg)
		s.OnComplete = func(int64) { completed++ }
		n.Eng.Schedule(int64(i)*sim.Microsecond, s.Start)
	}
	n.Eng.RunUntil(120 * sim.Second) // room for exponential RTO backoff
	if completed != nSenders {
		t.Fatalf("completed %d/%d flows under incast", completed, nSenders)
	}
}

func TestECNNegotiation(t *testing.T) {
	tn := newTestNet(aqm.NewDropTail(1000), 1e9, 10*sim.Microsecond)
	cfg := DefaultConfig()
	cfg.ECN = true
	rs := tn.listen(cfg)
	s := NewSender(tn.a, tn.b.ID, testPort, 50_000, cfg)
	s.Start()
	run(tn, sim.Second)
	if !s.ecnOn {
		t.Fatal("ECN not negotiated when both sides capable")
	}
	if (*rs)[0].peerEcn != true {
		t.Fatal("receiver did not record peer ECN capability")
	}

	// Sender ECN against a non-ECN receiver must not negotiate.
	tn2 := newTestNet(aqm.NewDropTail(1000), 1e9, 10*sim.Microsecond)
	cfgOff := DefaultConfig()
	tn2.listen(cfgOff)
	cfgOn := DefaultConfig()
	cfgOn.ECN = true
	s2 := NewSender(tn2.a, tn2.b.ID, testPort, 50_000, cfgOn)
	s2.Start()
	run(tn2, sim.Second)
	if s2.ecnOn {
		t.Fatal("ECN negotiated against a non-ECN receiver")
	}
}

func TestECNResponsiveReducesOnMark(t *testing.T) {
	// Mark threshold 20 on a deep buffer: no drops, only marks. The
	// responsive sender must cut its window; flow still completes.
	tn := newTestNet(aqm.NewMarkThreshold(1000, 20), 1e9, 50*sim.Microsecond)
	cfg := DefaultConfig()
	cfg.ECN = true
	cfg.ECNResponsive = true
	tn.listen(cfg)
	s := NewSender(tn.a, tn.b.ID, testPort, Infinite, cfg)
	s.Start()
	run(tn, 200*sim.Millisecond)
	st := s.Stats()
	if st.EceAcks == 0 {
		t.Fatal("no ECE feedback observed")
	}
	if st.ECNReductions == 0 {
		t.Fatal("responsive sender never reduced on ECE")
	}
	if st.Timeouts != 0 {
		t.Fatalf("marking-only path caused timeouts: %+v", st)
	}
}

func TestECNNonResponsiveIgnoresMarks(t *testing.T) {
	tn := newTestNet(aqm.NewMarkThreshold(1000, 20), 1e9, 50*sim.Microsecond)
	cfg := DefaultConfig()
	cfg.ECN = true
	cfg.ECNResponsive = false
	tn.listen(cfg)
	s := NewSender(tn.a, tn.b.ID, testPort, Infinite, cfg)
	s.Start()
	run(tn, 200*sim.Millisecond)
	st := s.Stats()
	if st.EceAcks == 0 {
		t.Fatal("expected ECE feedback on the wire")
	}
	if st.ECNReductions != 0 {
		t.Fatalf("non-responsive flavour reduced %d times", st.ECNReductions)
	}
}

func TestDCTCPKeepsQueueNearThreshold(t *testing.T) {
	q := aqm.NewMarkThreshold(250, 50)
	tn := newTestNet(q, 10e9, 25*sim.Microsecond)
	cfg := DCTCPConfig()
	tn.listen(cfg)
	s := NewSender(tn.a, tn.b.ID, testPort, Infinite, cfg)
	s.Start()

	// Sample the bottleneck queue every 100 us after convergence.
	var samples []int
	var sample func()
	sample = func() {
		if tn.net.Eng.Now() > 50*sim.Millisecond {
			samples = append(samples, q.Len())
		}
		tn.net.Eng.Schedule(100*sim.Microsecond, sample)
	}
	tn.net.Eng.Schedule(0, sample)
	run(tn, 300*sim.Millisecond)

	if s.Stats().Timeouts != 0 {
		t.Fatalf("DCTCP steady state hit RTO: %+v", s.Stats())
	}
	sum := 0
	peak := 0
	for _, v := range samples {
		sum += v
		if v > peak {
			peak = v
		}
	}
	avg := float64(sum) / float64(len(samples))
	if avg > 80 {
		t.Fatalf("DCTCP standing queue %.1f pkts, should sit near K=50", avg)
	}
	if peak >= 250 {
		t.Fatal("DCTCP filled the buffer")
	}
	if a := s.Alpha(); a <= 0 || a > 1 {
		t.Fatalf("alpha out of range: %f", a)
	}
}

func TestDCTCPAlphaDropsWhenUncongested(t *testing.T) {
	// On an unloaded path with a huge threshold, alpha must decay from its
	// initial 1 toward 0.
	tn := newTestNet(aqm.NewMarkThreshold(10000, 9000), 10e9, 10*sim.Microsecond)
	cfg := DCTCPConfig()
	tn.listen(cfg)
	s := NewSender(tn.a, tn.b.ID, testPort, Infinite, cfg)
	s.Start()
	run(tn, 100*sim.Millisecond)
	if s.Alpha() > 0.05 {
		t.Fatalf("alpha = %f, want ~0 on a clean path", s.Alpha())
	}
}

func TestRwndClampLimitsSender(t *testing.T) {
	// Receiver advertises a 4 KB buffer: the sender must respect it even
	// though cwnd allows far more; transfer still completes.
	tn := newTestNet(aqm.NewDropTail(1000), 1e9, 50*sim.Microsecond)
	cfg := DefaultConfig()
	rcfg := DefaultConfig()
	rcfg.RcvBuf = 4096
	rs := tn.listen(rcfg)
	done := false
	s := NewSender(tn.a, tn.b.ID, testPort, 200_000, cfg)
	s.OnComplete = func(int64) { done = true }
	s.Start()

	maxFlight := int64(0)
	var watch func()
	watch = func() {
		if f := s.flight(); f > maxFlight {
			maxFlight = f
		}
		tn.net.Eng.Schedule(10*sim.Microsecond, watch)
	}
	tn.net.Eng.Schedule(0, watch)
	run(tn, 10*sim.Second)

	if !done {
		t.Fatal("clamped flow did not complete")
	}
	if maxFlight > 4096+int64(cfg.MSS) {
		t.Fatalf("flight %d exceeded advertised window 4096", maxFlight)
	}
	if (*rs)[0].Delivered() != 200_000 {
		t.Fatalf("delivered %d", (*rs)[0].Delivered())
	}
}

// rwndRewriter mimics HWatch: clamps the rwnd of ACKs leaving the receiver.
type rwndRewriter struct{ clampBytes int64 }

func (f *rwndRewriter) Name() string { return "rw" }
func (f *rwndRewriter) Inbound(p *netem.Packet) netem.Verdict {
	return netem.VerdictPass
}
func (f *rwndRewriter) Outbound(p *netem.Packet) netem.Verdict {
	if p.Flags.Has(netem.FlagACK) && !p.Flags.Has(netem.FlagSYN) {
		scale := wscaleFor(1 << 20)
		cur := DecodeRwnd(p.Rwnd, scale)
		if cur > f.clampBytes {
			old := p.Rwnd
			p.Rwnd = EncodeRwnd(f.clampBytes, scale)
			p.Checksum = netem.UpdateChecksum16(p.Checksum, old, p.Rwnd)
		}
	}
	return netem.VerdictPass
}

func TestHypervisorRwndRewriteGovernsSender(t *testing.T) {
	// Proof of the HWatch mechanism at the TCP level: a receiver-side
	// egress filter rewriting ACK rwnd throttles an unmodified sender.
	tn := newTestNet(aqm.NewDropTail(1000), 1e9, 50*sim.Microsecond)
	cfg := DefaultConfig() // both guests unmodified
	tn.listen(cfg)
	clamp := int64(2 * cfg.MSS)
	tn.b.AddFilter(&rwndRewriter{clampBytes: clamp})
	s := NewSender(tn.a, tn.b.ID, testPort, Infinite, cfg)
	s.Start()

	maxFlight := int64(0)
	var watch func()
	watch = func() {
		if tn.net.Eng.Now() > 10*sim.Millisecond { // after first ACKs
			if f := s.flight(); f > maxFlight {
				maxFlight = f
			}
		}
		tn.net.Eng.Schedule(10*sim.Microsecond, watch)
	}
	tn.net.Eng.Schedule(0, watch)
	run(tn, 100*sim.Millisecond)

	if maxFlight > clamp+int64(cfg.MSS) {
		t.Fatalf("flight %d not governed by rewritten rwnd %d", maxFlight, clamp)
	}
	// The rewritten packets must still checksum-verify end to end
	// (validated implicitly by UpdateChecksum16's property test; here we
	// just confirm the flow made progress).
	if s.Stats().BytesAcked == 0 {
		t.Fatal("no progress under rwnd rewriting")
	}
}

func TestTwoFlowsShareBottleneckFairly(t *testing.T) {
	n := netem.NewNetwork()
	sw := n.NewSwitch("sw")
	dst := n.NewHost("dst")
	big := func() netem.Queue { return aqm.NewDropTail(10000) }
	down := netem.NewPort(n.Eng, aqm.NewDropTail(100), 1e9, 50*sim.Microsecond)
	down.Connect(dst)
	sw.Route(dst.ID, sw.AddPort(down))
	up := netem.NewPort(n.Eng, big(), 1e9, 50*sim.Microsecond)
	up.Connect(sw)
	dst.AttachUplink(up)

	cfg := DefaultConfig()
	var recvs []*Receiver
	dst.Listen(testPort, NewListener(dst, cfg, func(r *Receiver) { recvs = append(recvs, r) }))

	for i := 0; i < 2; i++ {
		h := n.NewHost("")
		n.LinkHostSwitch(h, sw, big(), big(), 1e9, 50*sim.Microsecond)
		NewSender(h, dst.ID, testPort, Infinite, cfg).Start()
	}
	n.Eng.RunUntil(2 * sim.Second)

	if len(recvs) != 2 {
		t.Fatalf("receivers = %d", len(recvs))
	}
	d0, d1 := float64(recvs[0].Delivered()), float64(recvs[1].Delivered())
	total := (d0 + d1) * 8 / 2 // bits/s over 2 s
	if total < 0.8e9 {
		t.Fatalf("bottleneck underutilized: %.2f Gb/s", total/1e9)
	}
	ratio := d0 / d1
	if ratio < 0.4 || ratio > 2.5 {
		t.Fatalf("unfair split: %.0f vs %.0f", d0, d1)
	}
}

func TestRTTEstimator(t *testing.T) {
	tn := newTestNet(aqm.NewDropTail(1000), 1e9, 100*sim.Microsecond)
	cfg := DefaultConfig()
	tn.listen(cfg)
	s := NewSender(tn.a, tn.b.ID, testPort, 500_000, cfg)
	s.Start()
	run(tn, sim.Second)
	// Base RTT = 4 hops * 100us = 400us plus serialization.
	if s.SRTT() < 300*sim.Microsecond || s.SRTT() > 5*sim.Millisecond {
		t.Fatalf("SRTT = %dus, want ~400-1000us", s.SRTT()/sim.Microsecond)
	}
	if s.RTO() != cfg.MinRTO {
		t.Fatalf("RTO = %d, want clamped to minRTO %d", s.RTO(), cfg.MinRTO)
	}
}

func TestInitialWindowRespected(t *testing.T) {
	for _, icw := range []int{1, 5, 10, 20} {
		tn := newTestNet(aqm.NewDropTail(10000), 1e9, 500*sim.Microsecond)
		cfg := DefaultConfig()
		cfg.InitCwnd = icw
		tn.listen(cfg)
		s := NewSender(tn.a, tn.b.ID, testPort, 1_000_000, cfg)
		s.Start()
		// Run just past the handshake so the first window is in flight but
		// no data ACK has returned (RTT = 2 ms; handshake takes 1 RTT).
		run(tn, 2*sim.Millisecond+800*sim.Microsecond)
		want := int64(icw * cfg.MSS)
		if f := s.flight(); f != want {
			t.Fatalf("ICW %d: first-window flight = %d bytes, want %d", icw, f, want)
		}
	}
}

func TestPropertyEncodeDecodeRwnd(t *testing.T) {
	f := func(bytes int64, scale uint8) bool {
		if bytes < 0 {
			bytes = -bytes
		}
		bytes %= 1 << 30
		sc := int8(scale % 15)
		field := EncodeRwnd(bytes, sc)
		got := DecodeRwnd(field, sc)
		// Round-up encoding: got >= bytes (unless saturated), and within
		// one scale unit above.
		if got < bytes {
			return field == 0xffff // saturation is the only excuse
		}
		return got-bytes < 1<<uint(sc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestWscaleFor(t *testing.T) {
	if wscaleFor(60000) != 0 {
		t.Fatal("small buffer needs no scaling")
	}
	if s := wscaleFor(1 << 20); s != 5 {
		t.Fatalf("1MB buffer scale = %d, want 5", s)
	}
	if s := wscaleFor(1 << 40); s != 14 {
		t.Fatalf("scale must cap at 14, got %d", s)
	}
}

func TestChecksumsValidEndToEnd(t *testing.T) {
	// Every packet a guest stack emits must carry a valid checksum.
	tn := newTestNet(aqm.NewDropTail(1000), 1e9, 10*sim.Microsecond)
	cfg := DefaultConfig()
	tn.listen(cfg)
	bad := 0
	ver := &verifier{onBad: func() { bad++ }}
	tn.a.AddFilter(ver)
	tn.b.AddFilter(ver)
	s := NewSender(tn.a, tn.b.ID, testPort, 50_000, cfg)
	s.Start()
	run(tn, sim.Second)
	if bad != 0 {
		t.Fatalf("%d packets with invalid checksums", bad)
	}
	if !s.Done() {
		t.Fatal("flow incomplete")
	}
}

type verifier struct{ onBad func() }

func (v *verifier) Name() string { return "verify" }
func (v *verifier) check(p *netem.Packet) {
	if !netem.VerifyChecksum(p) {
		v.onBad()
	}
}
func (v *verifier) Inbound(p *netem.Packet) netem.Verdict {
	v.check(p)
	return netem.VerdictPass
}
func (v *verifier) Outbound(p *netem.Packet) netem.Verdict {
	v.check(p)
	return netem.VerdictPass
}
