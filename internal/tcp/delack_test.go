package tcp

import (
	"testing"

	"hwatch/internal/aqm"
	"hwatch/internal/netem"
	"hwatch/internal/sim"
)

// ackCounter tallies pure ACKs leaving the receiver host.
type ackCounter struct {
	acks int
	ece  int
}

func (c *ackCounter) Name() string { return "ackcount" }
func (c *ackCounter) Inbound(p *netem.Packet) netem.Verdict {
	return netem.VerdictPass
}
func (c *ackCounter) Outbound(p *netem.Packet) netem.Verdict {
	if p.Flags.Has(netem.FlagACK) && !p.Flags.Has(netem.FlagSYN) && !p.IsData() {
		c.acks++
		if p.Flags.Has(netem.FlagECE) {
			c.ece++
		}
	}
	return netem.VerdictPass
}

func TestDelayedAckCoalesces(t *testing.T) {
	run2 := func(delayed bool) (acks int, fct int64) {
		tn := newTestNet(aqm.NewDropTail(10000), 1e9, 20*sim.Microsecond)
		cfg := DefaultConfig()
		cfg.DelayedAck = delayed
		tn.listen(cfg)
		c := &ackCounter{}
		tn.b.AddFilter(c)
		s := NewSender(tn.a, tn.b.ID, testPort, 500_000, cfg)
		var d int64 = -1
		s.OnComplete = func(v int64) { d = v }
		s.Start()
		run(tn, 5*sim.Second)
		if d < 0 {
			t.Fatalf("flow (delayed=%v) incomplete", delayed)
		}
		return c.acks, d
	}
	perPkt, fct1 := run2(false)
	coalesced, fct2 := run2(true)
	if coalesced >= perPkt {
		t.Fatalf("delayed ACKs did not coalesce: %d vs %d", coalesced, perPkt)
	}
	// Coalescing to ~every 2nd segment should roughly halve the ACK count.
	if coalesced > perPkt*3/4 {
		t.Fatalf("weak coalescing: %d of %d", coalesced, perPkt)
	}
	// Completion must not be materially delayed.
	if fct2 > 2*fct1 {
		t.Fatalf("delayed ACKs inflated FCT: %d vs %d", fct2, fct1)
	}
}

func TestDelayedAckTimerFlushesOddSegment(t *testing.T) {
	// A single segment (below AckEvery) must still be acknowledged within
	// the delayed-ACK timeout, not hang until RTO.
	tn := newTestNet(aqm.NewDropTail(100), 1e9, 10*sim.Microsecond)
	cfg := DefaultConfig()
	cfg.DelayedAck = true
	tn.listen(cfg)
	done := false
	s := NewSender(tn.a, tn.b.ID, testPort, 700, cfg) // one segment + FIN
	s.OnComplete = func(int64) { done = true }
	s.Start()
	run(tn, 50*sim.Millisecond) // well below minRTO
	if !done {
		t.Fatal("odd-segment flow not completed before RTO (timer flush missing)")
	}
	if s.Stats().Timeouts != 0 {
		t.Fatal("RTO fired under delayed ACKs on a clean path")
	}
}

func TestDelayedAckPreservesDupAcks(t *testing.T) {
	// A mid-flow loss must still trigger fast retransmit: out-of-order
	// arrivals bypass coalescing.
	tn := newTestNet(aqm.NewDropTail(10000), 1e9, 50*sim.Microsecond)
	cfg := DefaultConfig()
	cfg.DelayedAck = true
	tn.listen(cfg)
	tn.a.AddFilter(&lossFilter{n: 5})
	var fct int64 = -1
	s := NewSender(tn.a, tn.b.ID, testPort, 300_000, cfg)
	s.OnComplete = func(d int64) { fct = d }
	s.Start()
	run(tn, 5*sim.Second)
	st := s.Stats()
	if st.FastRecovery == 0 {
		t.Fatalf("no fast recovery under delayed ACKs: %+v", st)
	}
	if st.Timeouts != 0 {
		t.Fatalf("loss fell back to RTO under delayed ACKs: %+v", st)
	}
	if fct < 0 {
		t.Fatal("flow incomplete")
	}
}

func TestDCTCPDelayedAckCEFlush(t *testing.T) {
	// With delayed ACKs, a DCTCP receiver must keep the sender's mark
	// fraction accurate enough to regulate the queue near K.
	q := aqm.NewMarkThreshold(250, 50)
	tn := newTestNet(q, 10e9, 25*sim.Microsecond)
	cfg := DCTCPConfig()
	cfg.DelayedAck = true
	tn.listen(cfg)
	s := NewSender(tn.a, tn.b.ID, testPort, Infinite, cfg)
	s.Start()
	var samples []int
	var sample func()
	sample = func() {
		if tn.net.Eng.Now() > 50*sim.Millisecond {
			samples = append(samples, q.Len())
		}
		tn.net.Eng.Schedule(100*sim.Microsecond, sample)
	}
	tn.net.Eng.Schedule(0, sample)
	run(tn, 300*sim.Millisecond)
	if s.Stats().Timeouts != 0 {
		t.Fatalf("DCTCP+delack hit RTO: %+v", s.Stats())
	}
	sum := 0
	for _, v := range samples {
		sum += v
	}
	avg := float64(sum) / float64(len(samples))
	if avg > 100 {
		t.Fatalf("DCTCP+delack queue %.0f pkts: CE-change flushing broken?", avg)
	}
	if a := s.Alpha(); a <= 0 || a > 1 {
		t.Fatalf("alpha = %f", a)
	}
}
