package tcp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hwatch/internal/aqm"
	"hwatch/internal/netem"
	"hwatch/internal/sim"
)

func TestScoreboardAddMerge(t *testing.T) {
	var sb scoreboard
	sb.add(netem.SackBlock{Start: 10, End: 20})
	sb.add(netem.SackBlock{Start: 30, End: 40})
	sb.add(netem.SackBlock{Start: 18, End: 32}) // bridges both
	if len(sb.ivs) != 1 || sb.ivs[0] != (netem.SackBlock{Start: 10, End: 40}) {
		t.Fatalf("merge failed: %v", sb.ivs)
	}
	sb.add(netem.SackBlock{Start: 50, End: 50}) // empty: ignored
	if len(sb.ivs) != 1 {
		t.Fatalf("empty block accepted: %v", sb.ivs)
	}
	if sb.highest() != 40 {
		t.Fatalf("highest = %d", sb.highest())
	}
}

func TestScoreboardHoles(t *testing.T) {
	var sb scoreboard
	sb.add(netem.SackBlock{Start: 10, End: 20})
	sb.add(netem.SackBlock{Start: 30, End: 40})
	start, end, ok := sb.nextHole(0)
	if !ok || start != 0 || end != 10 {
		t.Fatalf("hole = [%d,%d) ok=%v", start, end, ok)
	}
	start, end, ok = sb.nextHole(15) // inside first block: next hole [20,30)
	if !ok || start != 20 || end != 30 {
		t.Fatalf("hole = [%d,%d) ok=%v", start, end, ok)
	}
	if _, _, ok := sb.nextHole(35); ok {
		t.Fatal("hole found beyond final block interior")
	}
	if _, _, ok := sb.nextHole(40); ok {
		t.Fatal("hole found at highest")
	}
}

func TestScoreboardClearBelow(t *testing.T) {
	var sb scoreboard
	sb.add(netem.SackBlock{Start: 10, End: 20})
	sb.add(netem.SackBlock{Start: 30, End: 40})
	sb.clearBelow(15)
	if len(sb.ivs) != 2 || sb.ivs[0].Start != 15 {
		t.Fatalf("clearBelow: %v", sb.ivs)
	}
	sb.clearBelow(25)
	if len(sb.ivs) != 1 || sb.ivs[0].Start != 30 {
		t.Fatalf("clearBelow: %v", sb.ivs)
	}
	sb.reset()
	if sb.highest() != 0 || sb.sacked(35) {
		t.Fatal("reset incomplete")
	}
}

// Property: after arbitrary adds, intervals are sorted, disjoint and
// non-empty, and membership matches a brute-force bitmap.
func TestPropertyScoreboard(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var sb scoreboard
		truth := make([]bool, 300)
		for i := 0; i < int(n); i++ {
			a := int64(rng.Intn(250))
			b := a + int64(rng.Intn(20))
			sb.add(netem.SackBlock{Start: a, End: b})
			for x := a; x < b; x++ {
				truth[x] = true
			}
		}
		for i := 1; i < len(sb.ivs); i++ {
			if sb.ivs[i].Start <= sb.ivs[i-1].End {
				return false // overlapping or adjacent-unmerged
			}
		}
		for _, iv := range sb.ivs {
			if iv.End <= iv.Start {
				return false
			}
		}
		for x := int64(0); x < 300; x++ {
			if sb.sacked(x) != truth[x] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSACKNegotiation(t *testing.T) {
	// Both sides on -> negotiated; one side off -> not.
	mk := func(sCfg, rCfg Config) (*Sender, *testNet) {
		tn := newTestNet(aqm.NewDropTail(1000), 1e9, 10*sim.Microsecond)
		tn.listen(rCfg)
		s := NewSender(tn.a, tn.b.ID, testPort, 50_000, sCfg)
		s.Start()
		run(tn, sim.Second)
		return s, tn
	}
	on := DefaultConfig()
	on.SACK = true
	off := DefaultConfig()
	if s, _ := mk(on, on); !s.sackOn {
		t.Fatal("SACK not negotiated when both enable it")
	}
	if s, _ := mk(on, off); s.sackOn {
		t.Fatal("SACK negotiated against a non-SACK receiver")
	}
	if s, _ := mk(off, on); s.sackOn {
		t.Fatal("SACK negotiated without requesting it")
	}
}

// dropBurst drops a contiguous burst of data segments once.
type dropBurst struct {
	from, to int // segment indexes [from, to)
	count    int
}

func (f *dropBurst) Name() string { return "burst" }
func (f *dropBurst) Inbound(p *netem.Packet) netem.Verdict {
	return netem.VerdictPass
}
func (f *dropBurst) Outbound(p *netem.Packet) netem.Verdict {
	if p.IsData() {
		f.count++
		if f.count > f.from && f.count <= f.to {
			return netem.VerdictDrop
		}
	}
	return netem.VerdictPass
}

func TestSACKRecoversMultiLossInOneRecovery(t *testing.T) {
	// Drop 8 segments out of one large window: NewReno needs ~8 partial-ACK
	// round trips; SACK repairs the holes within the first recovery and
	// completes several times faster.
	fct := func(sack bool) (int64, Stats) {
		tn := newTestNet(aqm.NewDropTail(10000), 1e9, 250*sim.Microsecond) // 1 ms RTT
		cfg := DefaultConfig()
		cfg.SACK = sack
		cfg.SsthreshInit = 1 << 20
		tn.listen(cfg)
		tn.a.AddFilter(&dropBurst{from: 40, to: 48})
		var d int64 = -1
		s := NewSender(tn.a, tn.b.ID, testPort, 400_000, cfg)
		s.OnComplete = func(v int64) { d = v }
		s.Start()
		run(tn, 30*sim.Second)
		if d < 0 {
			t.Fatalf("sack=%v flow incomplete: %v", sack, s)
		}
		return d, s.Stats()
	}
	reno, renoStats := fct(false)
	sack, sackStats := fct(true)
	if sackStats.Timeouts > 0 {
		t.Fatalf("SACK run hit RTO: %+v", sackStats)
	}
	if sack >= reno {
		t.Fatalf("SACK FCT %dus not faster than NewReno %dus (reno stats %+v)",
			sack/sim.Microsecond, reno/sim.Microsecond, renoStats)
	}
}

func TestSACKExactDeliveryUnderRandomLoss(t *testing.T) {
	tn := newTestNet(aqm.NewDropTail(1000), 1e9, 50*sim.Microsecond)
	cfg := DefaultConfig()
	cfg.SACK = true
	rs := tn.listen(cfg)
	netem.AttachImpairment(tn.a, &netem.Impairment{
		Rng: sim.NewRNG(31), DropP: 0.05, SkipInbound: true,
	})
	s := NewSender(tn.a, tn.b.ID, testPort, 300_000, cfg)
	s.Start()
	run(tn, 120*sim.Second)
	if !s.Done() || (*rs)[0].Delivered() != 300_000 {
		t.Fatalf("SACK under loss: done=%v delivered=%d", s.Done(), (*rs)[0].Delivered())
	}
}

func TestSACKChecksumsCoverBlocks(t *testing.T) {
	p := &netem.Packet{
		Src: 1, Dst: 2, Flags: netem.FlagACK, WScaleOpt: -1,
		Sack: []netem.SackBlock{{Start: 100, End: 200}},
	}
	netem.SetChecksum(p)
	if !netem.VerifyChecksum(p) {
		t.Fatal("fresh checksum invalid")
	}
	p.Sack[0].End = 300
	if netem.VerifyChecksum(p) {
		t.Fatal("checksum ignores SACK block mutation")
	}
}

func TestSACKWithDelayedAcks(t *testing.T) {
	tn := newTestNet(aqm.NewDropTail(1000), 1e9, 50*sim.Microsecond)
	cfg := DefaultConfig()
	cfg.SACK = true
	cfg.DelayedAck = true
	rs := tn.listen(cfg)
	tn.a.AddFilter(&dropBurst{from: 20, to: 24})
	s := NewSender(tn.a, tn.b.ID, testPort, 200_000, cfg)
	s.Start()
	run(tn, 30*sim.Second)
	if !s.Done() || (*rs)[0].Delivered() != 200_000 {
		t.Fatalf("SACK+delack: done=%v delivered=%d stats=%+v", s.Done(), (*rs)[0].Delivered(), s.Stats())
	}
}
