package tcp

import (
	"fmt"
	"math"

	"hwatch/internal/netem"
	"hwatch/internal/sim"
)

// Sender is the active endpoint of a connection: it opens with a SYN,
// transmits Size bytes under congestion and flow control, closes with a FIN
// and reports the flow completion time.
type Sender struct {
	cfg  Config
	host *netem.Host
	eng  *sim.Engine

	dst          netem.NodeID
	sport, dport uint16
	size         int64 // payload bytes; Infinite for long-lived flows

	state     connState
	startTime int64

	// Sequence space (see package doc): SYN=0, data [1,size], FIN=size+1;
	// data occupies [1, dataEnd).
	dataEnd        int64
	sndUna, sndNxt int64
	finSent        bool
	sndMax         int64 // highest sequence ever transmitted

	// Congestion control, in bytes.
	cwnd, ssthresh float64
	dupAcks        int
	inRecovery     bool
	recover        int64

	// Peer flow control.
	peerRwnd   int64
	peerWScale int8
	ecnOn      bool

	// RTO estimation (RFC 6298), ns.
	srtt, rttvar, rto int64
	hasRTT            bool
	backoff           int
	timer             *sim.Timer

	// ECN / DCTCP state.
	cwrSeq   int64 // one reduction per window: next allowed at ack > cwrSeq
	sendCWR  bool
	alpha    float64
	epochEnd int64
	ackedB   int64 // DCTCP per-epoch acked bytes
	markedB  int64 // ... of which ECE-marked

	// Cubic state (RFC 8312).
	wMax       float64 // window before the last reduction, segments
	cubicEpoch int64   // time of the last reduction; 0 = no epoch yet

	// SACK state (RFC 2018/6675-lite).
	sackOn     bool
	board      scoreboard
	rexmitNext int64 // highest hole byte already repaired this recovery

	aborted bool // connection reset (by us or the peer)

	stats Stats

	// OnComplete fires once when the FIN is acknowledged, with the flow
	// completion time (ns since Start).
	OnComplete func(fct int64)
	// OnEstablished fires once when the SYN-ACK is processed (MPTCP uses
	// it to join additional subflows only after the first connection is
	// up, as the protocol requires).
	OnEstablished func()
}

// NewSender prepares a connection from host to dst:dport carrying size
// payload bytes (tcp.Infinite for a long-lived flow). It binds an ephemeral
// local port immediately; call Start to begin the handshake.
func NewSender(host *netem.Host, dst netem.NodeID, dport uint16, size int64, cfg Config) *Sender {
	s := &Sender{
		cfg:   cfg,
		host:  host,
		eng:   host.Eng,
		dst:   dst,
		sport: host.AllocPort(),
		dport: dport,
		size:  size,
	}
	if size == Infinite {
		s.dataEnd = 1<<62 - 2
	} else {
		s.dataEnd = 1 + size
	}
	s.cwnd = float64(cfg.InitCwnd * cfg.MSS)
	s.ssthresh = float64(cfg.SsthreshInit * cfg.MSS)
	s.alpha = 1 // DCTCP starts conservative, per the original paper
	s.rto = cfg.InitRTO
	s.peerRwnd = 1 << 30 // until the SYN-ACK tells us otherwise
	s.timer = sim.NewTimer(s.eng, s.onRTO)
	host.Bind(netem.ConnID{LocalPort: s.sport, Remote: dst, RemotePort: dport}, s)
	return s
}

// FlowKey returns the forward (data-direction) 4-tuple.
func (s *Sender) FlowKey() netem.FlowKey {
	return netem.FlowKey{Src: s.host.ID, Dst: s.dst, SrcPort: s.sport, DstPort: s.dport}
}

// Stats returns a copy of the connection counters.
func (s *Sender) Stats() Stats { return s.stats }

// State returns a printable connection state (for tests and tracing).
func (s *Sender) State() string { return s.state.String() }

// Cwnd returns the congestion window in bytes.
func (s *Sender) Cwnd() float64 { return s.cwnd }

// SndUna returns the lowest unacknowledged sequence number.
func (s *Sender) SndUna() int64 { return s.sndUna }

// SndNxt returns the next sequence number to transmit.
func (s *Sender) SndNxt() int64 { return s.sndNxt }

// MSS returns the configured segment payload size in bytes.
func (s *Sender) MSS() int { return s.cfg.MSS }

// Established reports whether the handshake completed and the connection
// has not yet finished.
func (s *Sender) Established() bool { return s.state == stateEstablished }

// PeerRwnd returns the last advertised peer window in bytes.
func (s *Sender) PeerRwnd() int64 { return s.peerRwnd }

// Done reports whether the flow completed (FIN acknowledged).
func (s *Sender) Done() bool { return s.state == stateFinished }

// Finite reports whether the flow carries a bounded payload. Long-lived
// Infinite flows never Done() by design; recovery checks skip them.
func (s *Sender) Finite() bool { return s.size != Infinite }

// Start begins the handshake. Must be called inside the simulation (from an
// event or before Run at time 0).
func (s *Sender) Start() {
	if s.state != stateClosed {
		panic("tcp: Start on non-closed sender")
	}
	s.state = stateSynSent
	s.startTime = s.eng.Now()
	s.sndUna, s.sndNxt = 0, 1
	s.sendSYN()
}

func (s *Sender) sendSYN() {
	p := s.newPacket()
	p.Flags = netem.FlagSYN
	p.Seq = 0
	p.Wire = netem.HeaderSize
	p.WScaleOpt = wscaleFor(s.cfg.RcvBuf)
	p.Rwnd = EncodeRwnd(int64(s.cfg.RcvBuf), p.WScaleOpt)
	if s.cfg.ECN {
		// RFC 3168 ECN-setup SYN.
		p.Flags |= netem.FlagECE | netem.FlagCWR
	}
	p.SackOK = s.cfg.SACK
	s.transmit(p)
	s.timer.Reset(s.rto)
}

// newPacket fills the fields common to every outgoing segment. Packets are
// pool-allocated; ownership passes to the host on transmit and the far end
// releases them.
func (s *Sender) newPacket() *netem.Packet {
	p := netem.AllocPacket()
	p.ID = s.host.NextPacketID()
	p.Src = s.host.ID
	p.Dst = s.dst
	p.SrcPort = s.sport
	p.DstPort = s.dport
	p.TSVal = s.eng.Now()
	p.WScaleOpt = -1
	p.SentAt = s.eng.Now()
	return p
}

func (s *Sender) transmit(p *netem.Packet) {
	netem.SetChecksum(p)
	s.host.Send(p)
}

// window returns the current send limit in bytes.
func (s *Sender) window() int64 {
	w := int64(s.cwnd)
	if s.peerRwnd < w {
		w = s.peerRwnd
	}
	return w
}

func (s *Sender) flight() int64 { return s.sndNxt - s.sndUna }

// trySend transmits as many new segments as the window allows, then the FIN
// once all data is out.
func (s *Sender) trySend() {
	if s.state != stateEstablished {
		return
	}
	for {
		if s.sndNxt < s.dataEnd {
			remaining := s.dataEnd - s.sndNxt
			seg := int64(s.cfg.MSS)
			if remaining < seg {
				seg = remaining
			}
			if s.flight()+seg > s.window() {
				// A receiver-clamped window below one MSS must still make
				// progress when nothing is in flight.
				if s.flight() > 0 {
					return
				}
				seg = s.window()
				if seg > remaining {
					seg = remaining
				}
				if seg <= 0 {
					return
				}
			}
			s.sendData(s.sndNxt, int(seg))
			s.sndNxt += seg
			continue
		}
		// All data transmitted; emit FIN for finite flows.
		if s.size != Infinite && !s.finSent {
			s.sendFIN()
			s.sndNxt = s.dataEnd + 1
			s.finSent = true
		}
		return
	}
}

func (s *Sender) sendData(seq int64, payload int) {
	p := s.newPacket()
	p.Flags = netem.FlagACK
	p.Seq = seq
	p.Ack = 1 // we receive no peer data beyond the SYN-ACK
	p.Payload = payload
	p.Wire = netem.HeaderSize + payload
	p.Rwnd = EncodeRwnd(int64(s.cfg.RcvBuf), wscaleFor(s.cfg.RcvBuf))
	if s.ecnOn {
		p.ECN = netem.ECT0
	}
	if s.sendCWR {
		p.Flags |= netem.FlagCWR
		s.sendCWR = false
	}
	s.stats.SegsSent++
	if seq < s.sndMax {
		s.stats.Retransmits++
	} else {
		s.sndMax = seq + int64(payload)
	}
	s.transmit(p)
	if !s.timer.Armed() {
		s.timer.Reset(s.rto)
	}
}

func (s *Sender) sendFIN() {
	p := s.newPacket()
	p.Flags = netem.FlagFIN | netem.FlagACK
	p.Seq = s.dataEnd
	p.Ack = 1
	p.Wire = netem.HeaderSize
	if s.ecnOn {
		p.ECN = netem.ECT0
	}
	s.stats.SegsSent++
	if s.dataEnd < s.sndMax {
		s.stats.Retransmits++
	} else {
		s.sndMax = s.dataEnd + 1
	}
	s.transmit(p)
	if !s.timer.Armed() {
		s.timer.Reset(s.rto)
	}
}

// retransmitOne resends the segment starting at sndUna.
func (s *Sender) retransmitOne() {
	switch {
	case s.sndUna == 0:
		s.sendSYN()
	case s.sndUna < s.dataEnd:
		remaining := s.dataEnd - s.sndUna
		seg := int64(s.cfg.MSS)
		if remaining < seg {
			seg = remaining
		}
		s.sendData(s.sndUna, int(seg))
	default:
		s.sendFIN()
	}
}

// HandlePacket implements netem.Handler.
func (s *Sender) HandlePacket(p *netem.Packet) {
	if p.Flags.Has(netem.FlagRST) && s.state != stateClosed && s.state != stateFinished {
		s.abortLocal()
		return
	}
	switch s.state {
	case stateSynSent:
		s.handleSynAck(p)
	case stateEstablished:
		s.handleAck(p)
	case stateFinished, stateClosed:
		// Stray segment after completion; ignore.
	}
}

// Abort tears the connection down immediately, sending a RST to the peer
// (the behaviour of a killed application). No completion callback fires.
func (s *Sender) Abort() {
	if s.state == stateClosed || s.state == stateFinished {
		return
	}
	rst := s.newPacket()
	rst.Flags = netem.FlagRST | netem.FlagACK
	rst.Seq = s.sndNxt
	rst.Wire = netem.HeaderSize
	s.transmit(rst)
	s.abortLocal()
}

// Aborted reports whether the connection was reset before completing.
func (s *Sender) Aborted() bool { return s.aborted }

func (s *Sender) abortLocal() {
	s.aborted = true
	s.state = stateFinished
	s.timer.Stop()
	s.host.Unbind(netem.ConnID{LocalPort: s.sport, Remote: s.dst, RemotePort: s.dport})
}

func (s *Sender) handleSynAck(p *netem.Packet) {
	if !p.Flags.Has(netem.FlagSYN) || !p.Flags.Has(netem.FlagACK) || p.Ack != 1 {
		return
	}
	s.state = stateEstablished
	s.sndUna = 1
	if s.OnEstablished != nil {
		s.OnEstablished()
	}
	if p.WScaleOpt >= 0 {
		s.peerWScale = p.WScaleOpt
	}
	s.peerRwnd = DecodeRwnd(p.Rwnd, s.peerWScale)
	s.ecnOn = s.cfg.ECN && p.Flags.Has(netem.FlagECE)
	s.sackOn = s.cfg.SACK && p.SackOK
	if p.TSEcr > 0 {
		s.updateRTT(s.eng.Now() - p.TSEcr)
	}
	s.backoff = 0
	s.rto = s.clampRTO(s.rtoValue())
	s.timer.Stop()
	s.epochEnd = s.sndNxt
	// The handshake ACK rides along with the first data segment(s); a pure
	// ACK is sent only when there is nothing to transmit yet.
	if s.sndNxt >= s.dataEnd && s.size == 0 {
		s.sendFIN()
		s.sndNxt = s.dataEnd + 1
		s.finSent = true
		return
	}
	s.trySend()
}

func (s *Sender) handleAck(p *netem.Packet) {
	if !p.Flags.Has(netem.FlagACK) || p.Flags.Has(netem.FlagSYN) {
		return
	}
	s.peerRwnd = DecodeRwnd(p.Rwnd, s.peerWScale)
	ece := p.Flags.Has(netem.FlagECE)
	if ece {
		s.stats.EceAcks++
	}
	if s.sackOn {
		for _, b := range p.Sack {
			s.board.add(b)
		}
	}

	switch {
	case p.Ack > s.sndUna:
		s.newAck(p, ece)
	case p.Ack == s.sndUna && s.flight() > 0 && !p.IsData():
		s.dupAck(p, ece)
	}
	// ECE on any ACK triggers the classic once-per-RTT response for the
	// loss-based variants (NewReno halves, Cubic cuts by beta).
	if ece && s.ecnOn && s.cfg.ECNResponsive &&
		(s.cfg.Variant == NewReno || s.cfg.Variant == Cubic) {
		s.ecnReduce()
	}
	s.trySend()
}

// ecnReduce cuts the window once per RTT on ECE (RFC 3168 §6.1.2): by
// half for NewReno, by Cubic's beta for Cubic.
func (s *Sender) ecnReduce() {
	if s.inRecovery || s.sndUna <= s.cwrSeq {
		return
	}
	s.cwrSeq = s.sndNxt
	s.ssthresh = maxf(s.cwnd*s.reductionFactor(), float64(2*s.cfg.MSS))
	s.enterCubicEpoch()
	s.cwnd = s.ssthresh
	s.sendCWR = true
	s.stats.ECNReductions++
}

// reductionFactor is the multiplicative-decrease constant of the variant.
func (s *Sender) reductionFactor() float64 {
	if s.cfg.Variant == Cubic {
		return cubicBeta
	}
	return 0.5
}

// enterCubicEpoch records the pre-reduction window as W_max and restarts
// the cubic clock.
func (s *Sender) enterCubicEpoch() {
	if s.cfg.Variant != Cubic {
		return
	}
	s.wMax = s.cwnd / float64(s.cfg.MSS)
	s.cubicEpoch = s.eng.Now()
}

func (s *Sender) newAck(p *netem.Packet, ece bool) {
	acked := p.Ack - s.sndUna
	s.sndUna = p.Ack
	if s.sndNxt < s.sndUna {
		// A late ACK for data sent before a (spurious) timeout collapsed
		// sndNxt: everything up to the ACK is delivered, including a FIN
		// if the ACK covers its sequence slot.
		s.sndNxt = s.sndUna
		s.finSent = s.sndUna > s.dataEnd
	}
	s.stats.BytesAcked += acked
	s.backoff = 0
	if p.TSEcr > 0 {
		s.updateRTT(s.eng.Now() - p.TSEcr)
	}

	// DCTCP fraction accounting.
	if s.cfg.Variant == DCTCP && s.ecnOn {
		s.ackedB += acked
		if ece {
			s.markedB += acked
		}
		if s.sndUna >= s.epochEnd {
			s.dctcpEpoch()
		}
	}

	if s.sackOn {
		s.board.clearBelow(s.sndUna)
	}
	if s.inRecovery {
		if p.Ack >= s.recover {
			// Full acknowledgment: leave recovery.
			s.inRecovery = false
			s.dupAcks = 0
			s.cwnd = s.ssthresh
			s.board.clearBelow(s.sndUna)
			s.rexmitNext = 0
		} else if s.sackOn {
			// Partial ack with SACK: repair the next known hole from the
			// scoreboard, deflate.
			s.sackRetransmit()
			s.cwnd = maxf(s.cwnd-float64(acked)+float64(s.cfg.MSS), float64(s.cfg.MSS))
		} else {
			// Partial ack (RFC 6582): retransmit the next hole, deflate.
			s.retransmitOne()
			s.cwnd = maxf(s.cwnd-float64(acked)+float64(s.cfg.MSS), float64(s.cfg.MSS))
		}
	} else {
		s.dupAcks = 0
		switch {
		case s.cwnd < s.ssthresh:
			// Slow start: one MSS per full-MSS acked.
			s.cwnd += float64(minI64(acked, int64(s.cfg.MSS)))
		case s.cfg.Variant == Cubic && s.cubicEpoch > 0:
			s.cubicUpdate()
		default:
			// Congestion avoidance: ~1 MSS per RTT.
			s.cwnd += float64(s.cfg.MSS) * float64(s.cfg.MSS) / s.cwnd
		}
	}

	// Completion: the FIN's sequence slot (dataEnd) is acknowledged. An
	// ack of dataEnd+1 can only be generated by a receiver that consumed a
	// FIN, so finSent need not be consulted.
	if s.size != Infinite && s.sndUna >= s.dataEnd+1 {
		s.complete()
		return
	}
	if s.flight() == 0 {
		s.timer.Stop()
	} else {
		s.timer.Reset(s.rto)
	}
}

func (s *Sender) dupAck(p *netem.Packet, ece bool) {
	s.dupAcks++
	if s.inRecovery {
		// Window inflation during recovery; with SACK, also repair the
		// next known hole (one per ACK, preserving the clock).
		s.cwnd += float64(s.cfg.MSS)
		s.sackRetransmit()
		return
	}
	if s.dupAcks == 3 {
		s.stats.FastRecovery++
		s.inRecovery = true
		s.recover = s.sndNxt
		s.enterCubicEpoch()
		s.ssthresh = maxf(float64(s.flight())*s.reductionFactor(), float64(2*s.cfg.MSS))
		s.cwnd = s.ssthresh + float64(3*s.cfg.MSS)
		s.rexmitNext = 0
		s.retransmitOne()
		if s.sackOn {
			s.rexmitNext = s.sndUna + int64(s.cfg.MSS)
		}
		s.timer.Reset(s.rto)
	}
}

// sackRetransmit repairs the next scoreboard hole (at most one segment per
// invocation, keeping the ACK clock). Only meaningful during recovery with
// SACK negotiated.
func (s *Sender) sackRetransmit() {
	if !s.sackOn || !s.inRecovery {
		return
	}
	from := s.sndUna
	if s.rexmitNext > from {
		from = s.rexmitNext
	}
	start, end, ok := s.board.nextHole(from)
	if !ok {
		return
	}
	if start >= s.dataEnd {
		// The hole is the FIN's sequence slot.
		s.sendFIN()
		s.rexmitNext = start + 1
		return
	}
	seg := int64(s.cfg.MSS)
	if end-start < seg {
		seg = end - start
	}
	if s.dataEnd-start < seg {
		seg = s.dataEnd - start
	}
	s.sendData(start, int(seg))
	s.rexmitNext = start + seg
}

// Cubic constants (RFC 8312): beta the decrease factor, cubicC the scaling
// constant in segments/second^3.
const (
	cubicBeta = 0.7
	cubicC    = 0.4
)

// cubicUpdate advances the congestion-avoidance window along the cubic
// curve W(t) = C*(t-K)^3 + W_max, floored by the TCP-friendly window, with
// growth capped at one MSS per ACK (as real implementations pace it).
func (s *Sender) cubicUpdate() {
	t := float64(s.eng.Now()-s.cubicEpoch) / float64(sim.Second)
	k := math.Cbrt(s.wMax * (1 - cubicBeta) / cubicC)
	target := cubicC*(t-k)*(t-k)*(t-k) + s.wMax // segments

	// TCP-friendly region (RFC 8312 §4.2).
	rtt := float64(s.srtt) / float64(sim.Second)
	if rtt > 0 {
		friendly := s.wMax*cubicBeta + 3*(1-cubicBeta)/(1+cubicBeta)*(t/rtt)
		if friendly > target {
			target = friendly
		}
	}
	desired := target * float64(s.cfg.MSS)
	if desired > s.cwnd {
		step := desired - s.cwnd
		if step > float64(s.cfg.MSS) {
			step = float64(s.cfg.MSS)
		}
		s.cwnd += step
	}
}

// dctcpEpoch closes a DCTCP observation window: update alpha, apply the
// proportional cut if the window saw any marks, and open the next epoch.
func (s *Sender) dctcpEpoch() {
	if s.ackedB > 0 {
		f := float64(s.markedB) / float64(s.ackedB)
		g := s.cfg.DCTCPGain
		s.alpha = (1-g)*s.alpha + g*f
		if s.markedB > 0 && !s.inRecovery {
			s.cwnd = maxf(s.cwnd*(1-s.alpha/2), float64(s.cfg.MSS))
			s.ssthresh = s.cwnd
			s.sendCWR = true
			s.stats.ECNReductions++
		}
	}
	s.ackedB, s.markedB = 0, 0
	s.epochEnd = s.sndNxt
}

// Alpha returns the DCTCP congestion estimate (tests/instrumentation).
func (s *Sender) Alpha() float64 { return s.alpha }

func (s *Sender) onRTO() {
	if s.state == stateFinished || s.state == stateClosed {
		return
	}
	s.stats.Timeouts++
	s.backoff++
	s.rto = s.clampRTO(s.rto * 2)

	if s.state == stateSynSent {
		s.sendSYN()
		return
	}
	// Classic timeout recovery: collapse to one segment and go back to
	// una; trySend regenerates segments from there.
	s.enterCubicEpoch()
	s.ssthresh = maxf(float64(s.flight())*s.reductionFactor(), float64(2*s.cfg.MSS))
	s.cwnd = float64(s.cfg.MSS)
	s.dupAcks = 0
	s.inRecovery = false
	s.board.reset() // RFC 6675 allows keeping it; resetting is safest
	s.rexmitNext = 0
	s.sndNxt = s.sndUna
	if s.finSent && s.sndUna <= s.dataEnd {
		s.finSent = false // the FIN will be re-sent after the data refills
	}
	s.trySend()
	s.timer.Reset(s.rto)
}

func (s *Sender) complete() {
	s.state = stateFinished
	s.timer.Stop()
	s.host.Unbind(netem.ConnID{LocalPort: s.sport, Remote: s.dst, RemotePort: s.dport})
	if s.OnComplete != nil {
		s.OnComplete(s.eng.Now() - s.startTime)
	}
}

// updateRTT feeds one sample into the RFC 6298 estimator.
func (s *Sender) updateRTT(sample int64) {
	if sample <= 0 {
		return
	}
	if !s.hasRTT {
		s.srtt = sample
		s.rttvar = sample / 2
		s.hasRTT = true
	} else {
		d := sample - s.srtt
		if d < 0 {
			d = -d
		}
		s.rttvar = (3*s.rttvar + d) / 4
		s.srtt = (7*s.srtt + sample) / 8
	}
	s.rto = s.clampRTO(s.rtoValue())
}

func (s *Sender) rtoValue() int64 { return s.srtt + 4*s.rttvar }

func (s *Sender) clampRTO(v int64) int64 {
	if v < s.cfg.MinRTO {
		return s.cfg.MinRTO
	}
	if v > s.cfg.MaxRTO {
		return s.cfg.MaxRTO
	}
	return v
}

// SRTT returns the smoothed RTT estimate (0 before the first sample).
func (s *Sender) SRTT() int64 { return s.srtt }

// RTO returns the current retransmission timeout.
func (s *Sender) RTO() int64 { return s.rto }

func (s *Sender) String() string {
	return fmt.Sprintf("sender %s state=%s una=%d nxt=%d cwnd=%.0f rwnd=%d",
		s.FlowKey(), s.state, s.sndUna, s.sndNxt, s.cwnd, s.peerRwnd)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
