package tcp

import (
	"testing"

	"hwatch/internal/aqm"
	"hwatch/internal/sim"
)

// BenchmarkBulkTransfer measures simulator cost per transferred megabyte
// through the full TCP state machine.
func BenchmarkBulkTransfer(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tn := newTestNet(aqm.NewDropTail(1000), 10e9, 10*sim.Microsecond)
		cfg := DefaultConfig()
		tn.listen(cfg)
		s := NewSender(tn.a, tn.b.ID, testPort, 1_000_000, cfg)
		s.Start()
		run(tn, 10*sim.Second)
		if !s.Done() {
			b.Fatal("transfer incomplete")
		}
	}
}

// BenchmarkIncast measures a 20-flow incast epoch end to end.
func BenchmarkIncast(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tn := newTestNet(aqm.NewMarkThreshold(250, 50), 10e9, 25*sim.Microsecond)
		cfg := DCTCPConfig()
		tn.listen(cfg)
		done := 0
		for j := 0; j < 20; j++ {
			s := NewSender(tn.a, tn.b.ID, testPort, 10_000, cfg)
			s.OnComplete = func(int64) { done++ }
			s.Start()
		}
		run(tn, 10*sim.Second)
		if done != 20 {
			b.Fatalf("done=%d", done)
		}
	}
}
