package tcp

import (
	"fmt"
	"sort"

	"hwatch/internal/netem"
	"hwatch/internal/sim"
)

// Receiver is the passive endpoint: it accepts a connection, acknowledges
// data cumulatively (generating duplicate ACKs on reordering/loss), echoes
// congestion marks per its variant, advertises its receive window, and
// consumes payload instantly (the application sink).
//
// ECN echo differs by variant, as in the respective RFCs/papers:
//   - NewReno: ECE latches on any CE and clears when the sender's CWR
//     arrives (RFC 3168).
//   - DCTCP: ECE on each ACK reflects the CE bit of the segment that
//     triggered it (precise per-packet echo; this model ACKs every
//     segment, so no delayed-ACK state machine is needed).
type Receiver struct {
	cfg  Config
	host *netem.Host
	eng  *sim.Engine

	peer         netem.NodeID
	lport, rport uint16

	established bool
	rcvNxt      int64
	ooo         []seqRun // out-of-order runs, sorted by start, disjoint
	finSeq      int64    // -1 until a FIN is seen
	closed      bool

	peerEcn  bool
	eceLatch bool
	sackOn   bool
	wscale   int8

	// Delayed-ACK state.
	pending   int
	delTimer  *sim.Timer
	lastCE    bool
	lastTSVal int64

	delivered int64 // in-order payload bytes accepted
	marksSeen int64 // CE data packets observed

	// OnData fires for every chunk of newly in-order payload (goodput
	// accounting); OnClose fires once when the FIN is consumed.
	OnData  func(n int)
	OnClose func()
}

// NewReceiver constructs the passive endpoint for a connection initiated by
// peer:rport toward lport on host. Typically called from a Listen callback
// via NewListener.
func NewReceiver(host *netem.Host, peer netem.NodeID, lport, rport uint16, cfg Config) *Receiver {
	r := &Receiver{
		cfg:    cfg,
		host:   host,
		eng:    host.Eng,
		peer:   peer,
		lport:  lport,
		rport:  rport,
		finSeq: -1,
		wscale: wscaleFor(cfg.RcvBuf),
	}
	if cfg.DelayedAck {
		r.delTimer = sim.NewTimer(host.Eng, r.flushAck)
	}
	return r
}

// NewListener returns a netem.Listener that spawns a Receiver per inbound
// connection. accept (optional) observes each new receiver, e.g. to attach
// OnData/OnClose hooks.
func NewListener(host *netem.Host, cfg Config, accept func(*Receiver)) netem.Listener {
	return func(syn *netem.Packet) netem.Handler {
		r := NewReceiver(host, syn.Src, syn.DstPort, syn.SrcPort, cfg)
		if accept != nil {
			accept(r)
		}
		return r
	}
}

// Peer returns the remote (data-sending) host's address.
func (r *Receiver) Peer() netem.NodeID { return r.peer }

// Delivered returns the total in-order payload bytes consumed.
func (r *Receiver) Delivered() int64 { return r.delivered }

// Closed reports whether the FIN has been consumed.
func (r *Receiver) Closed() bool { return r.closed }

// MarksSeen returns the number of CE-marked data segments observed.
func (r *Receiver) MarksSeen() int64 { return r.marksSeen }

// HandlePacket implements netem.Handler.
func (r *Receiver) HandlePacket(p *netem.Packet) {
	if p.Flags.Has(netem.FlagRST) {
		// Peer reset: close without acknowledgment (RFC 793).
		if !r.closed {
			r.closed = true
			if r.delTimer != nil {
				r.delTimer.Stop()
			}
			if r.OnClose != nil {
				r.OnClose()
			}
		}
		return
	}
	switch {
	case p.Flags.Has(netem.FlagSYN):
		r.handleSYN(p)
	case p.IsData() || p.Flags.Has(netem.FlagFIN):
		r.handleData(p)
	}
	// Pure ACKs from the peer (e.g. the handshake ACK) need no response.
}

func (r *Receiver) handleSYN(p *netem.Packet) {
	if !r.established {
		r.established = true
		r.rcvNxt = 1
		// RFC 3168 negotiation: ECN-setup SYN has ECE|CWR.
		r.peerEcn = r.cfg.ECN && p.Flags.Has(netem.FlagECE) && p.Flags.Has(netem.FlagCWR)
		r.sackOn = r.cfg.SACK && p.SackOK
	}
	// Reply (and re-reply on retransmitted SYNs).
	sa := r.newPacket()
	sa.Flags = netem.FlagSYN | netem.FlagACK
	if r.peerEcn {
		sa.Flags |= netem.FlagECE
	}
	sa.Seq = 0
	sa.Ack = 1
	sa.SackOK = r.sackOn
	sa.WScaleOpt = r.wscale
	sa.Rwnd = EncodeRwnd(int64(r.cfg.RcvBuf), r.wscale)
	sa.TSEcr = p.TSVal
	r.send(sa)
}

func (r *Receiver) handleData(p *netem.Packet) {
	if !r.established {
		return // data before SYN: drop silently
	}
	if p.ECN == netem.CE && p.IsData() {
		r.marksSeen++
		if r.cfg.Variant != DCTCP {
			// RFC 3168 latch (NewReno, Cubic): ECE until CWR arrives.
			r.eceLatch = true
		}
	}
	if p.Flags.Has(netem.FlagCWR) {
		r.eceLatch = false
	}

	seq := p.Seq
	end := seq + int64(p.Payload)
	if p.Flags.Has(netem.FlagFIN) {
		r.finSeq = seq + int64(p.Payload) // FIN occupies one seq after payload
		end++
	}

	advanced := false
	switch {
	case end <= r.rcvNxt:
		// Entirely duplicate segment (spurious retransmission).
	case seq <= r.rcvNxt:
		// In-order (possibly overlapping) delivery.
		newBytes := end - r.rcvNxt
		r.advance(end, newBytes, p)
		advanced = true
	default:
		// Out of order: buffer the run and emit a duplicate ACK.
		r.insertOOO(seq, end)
	}
	if advanced {
		r.drainOOO()
	}
	r.ackPolicy(p, advanced)
}

// ackPolicy decides whether the segment is acknowledged immediately or
// coalesced under delayed ACKs.
func (r *Receiver) ackPolicy(p *netem.Packet, advanced bool) {
	if !r.cfg.DelayedAck {
		r.sendAck(r.eceFor(p), p.TSVal)
		return
	}
	immediate := !advanced || p.Flags.Has(netem.FlagFIN) || r.closed
	if r.peerEcn && r.cfg.Variant == DCTCP {
		// DCTCP's two-state machine: a CE transition must be signalled at
		// once so the sender's fraction estimate stays byte-accurate.
		if cur := p.ECN == netem.CE; cur != r.lastCE {
			r.lastCE = cur
			immediate = true
		}
	}
	r.pending++
	r.lastTSVal = p.TSVal
	every := r.cfg.AckEvery
	if every < 1 {
		every = 1
	}
	if immediate || r.pending >= every {
		r.flushAck()
		return
	}
	if !r.delTimer.Armed() {
		r.delTimer.Reset(r.cfg.DelAckTimeout)
	}
}

// flushAck emits the pending cumulative acknowledgment.
func (r *Receiver) flushAck() {
	if r.delTimer != nil {
		r.delTimer.Stop()
	}
	r.pending = 0
	ece := false
	if r.peerEcn {
		if r.cfg.Variant == DCTCP {
			ece = r.lastCE
		} else {
			ece = r.eceLatch
		}
	}
	r.sendAck(ece, r.lastTSVal)
}

// eceFor computes the ECE bit for an immediate ACK of packet p.
func (r *Receiver) eceFor(p *netem.Packet) bool {
	if !r.peerEcn {
		return false
	}
	if r.cfg.Variant == DCTCP {
		return p.ECN == netem.CE
	}
	return r.eceLatch
}

// advance moves rcvNxt and accounts delivered payload. FIN consumption is
// detected against finSeq.
func (r *Receiver) advance(end, newBytes int64, p *netem.Packet) {
	r.rcvNxt = end
	payloadNew := newBytes
	if r.finSeq >= 0 && end > r.finSeq {
		payloadNew-- // the FIN's sequence slot is not payload
	}
	if payloadNew > 0 {
		r.delivered += payloadNew
		if r.OnData != nil {
			r.OnData(int(payloadNew))
		}
	}
	if r.finSeq >= 0 && r.rcvNxt > r.finSeq && !r.closed {
		r.closed = true
		if r.OnClose != nil {
			r.OnClose()
		}
	}
}

// seqRun is one contiguous buffered range [s, e) of the sequence space.
// The run list replaced a map[int64]int64 (seq -> end): flat sorted runs
// keep the receiver's per-flow state pointer-free and make every walk —
// merge, drain, window, SACK selection — a short linear scan over a slice
// that stays at most a window's worth of holes long.
type seqRun struct{ s, e int64 }

func (r *Receiver) insertOOO(seq, end int64) {
	// Runs [i, j) overlap or touch the new segment; merge them into it.
	i := sort.Search(len(r.ooo), func(k int) bool { return r.ooo[k].e >= seq })
	j := i
	for j < len(r.ooo) && r.ooo[j].s <= end {
		if r.ooo[j].s < seq {
			seq = r.ooo[j].s
		}
		if r.ooo[j].e > end {
			end = r.ooo[j].e
		}
		j++
	}
	if i == j { // no merge: open a slot at i
		r.ooo = append(r.ooo, seqRun{})
		copy(r.ooo[i+1:], r.ooo[i:])
		r.ooo[i] = seqRun{seq, end}
		return
	}
	r.ooo[i] = seqRun{seq, end}
	r.ooo = append(r.ooo[:i+1], r.ooo[j:]...)
}

func (r *Receiver) drainOOO() {
	for {
		e, ok := r.findRunAt(r.rcvNxt)
		if !ok {
			return
		}
		r.advance(e, e-r.rcvNxt, nil)
	}
}

func (r *Receiver) findRunAt(seq int64) (int64, bool) {
	// Drop fully consumed runs (a sorted prefix), then check whether the
	// first survivor covers seq.
	drop := 0
	for drop < len(r.ooo) && r.ooo[drop].e <= seq {
		drop++
	}
	if drop > 0 {
		r.ooo = r.ooo[:copy(r.ooo, r.ooo[drop:])]
	}
	if len(r.ooo) > 0 && r.ooo[0].s <= seq && seq < r.ooo[0].e {
		e := r.ooo[0].e
		r.ooo = r.ooo[:copy(r.ooo, r.ooo[1:])]
		return e, true
	}
	return 0, false
}

func (r *Receiver) sendAck(ece bool, tsecr int64) {
	a := r.newPacket()
	a.Flags = netem.FlagACK
	a.Seq = 1
	a.Ack = r.rcvNxt
	a.Rwnd = EncodeRwnd(r.window(), r.wscale)
	a.TSEcr = tsecr
	if ece {
		a.Flags |= netem.FlagECE
	}
	if r.sackOn && len(r.ooo) > 0 {
		a.Sack = r.sackBlocks()
		a.Wire += netem.SackOptionBytes(len(a.Sack))
	}
	r.send(a)
}

// sackBlocks reports up to 3 out-of-order runs, highest first (the most
// informative blocks for hole repair). The run list is sorted ascending,
// so the highest blocks are a reverse walk from its tail.
func (r *Receiver) sackBlocks() []netem.SackBlock {
	n := len(r.ooo)
	if n > 3 {
		n = 3
	}
	blocks := make([]netem.SackBlock, 0, n)
	for i := len(r.ooo) - 1; i >= 0 && len(blocks) < 3; i-- {
		blocks = append(blocks, netem.SackBlock{Start: r.ooo[i].s, End: r.ooo[i].e})
	}
	return blocks
}

// window is the advertised receive window: the app consumes instantly, so
// only buffered out-of-order bytes reduce it.
func (r *Receiver) window() int64 {
	var buffered int64
	for _, run := range r.ooo {
		buffered += run.e - run.s
	}
	w := int64(r.cfg.RcvBuf) - buffered
	if w < 0 {
		w = 0
	}
	return w
}

func (r *Receiver) newPacket() *netem.Packet {
	p := netem.AllocPacket()
	p.ID = r.host.NextPacketID()
	p.Src = r.host.ID
	p.Dst = r.peer
	p.SrcPort = r.lport
	p.DstPort = r.rport
	p.TSVal = r.eng.Now()
	p.WScaleOpt = -1
	p.Wire = netem.HeaderSize
	p.SentAt = r.eng.Now()
	return p
}

func (r *Receiver) send(p *netem.Packet) {
	netem.SetChecksum(p)
	r.host.Send(p)
}

func (r *Receiver) String() string {
	return fmt.Sprintf("receiver %d:%d<%d:%d nxt=%d delivered=%d closed=%v",
		r.host.ID, r.lport, r.peer, r.rport, r.rcvNxt, r.delivered, r.closed)
}
