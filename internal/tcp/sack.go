package tcp

import (
	"sort"

	"hwatch/internal/netem"
)

// scoreboard is the sender-side SACK bookkeeping (RFC 2018/6675-lite): a
// sorted, disjoint set of byte ranges the receiver has selectively
// acknowledged. Holes below the highest sacked byte are candidates for
// retransmission during recovery.
type scoreboard struct {
	ivs []netem.SackBlock // sorted by Start, pairwise disjoint
}

// add merges one SACK block into the board: insert, sort, coalesce.
func (sb *scoreboard) add(b netem.SackBlock) {
	if b.End <= b.Start {
		return
	}
	ivs := append(sb.ivs, b)
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].Start < ivs[j].Start })
	merged := ivs[:0]
	for _, iv := range ivs {
		if n := len(merged); n > 0 && merged[n-1].End >= iv.Start {
			if iv.End > merged[n-1].End {
				merged[n-1].End = iv.End
			}
			continue
		}
		merged = append(merged, iv)
	}
	sb.ivs = merged
}

// clearBelow drops everything below seq (cumulatively acknowledged).
func (sb *scoreboard) clearBelow(seq int64) {
	out := sb.ivs[:0]
	for _, iv := range sb.ivs {
		if iv.End <= seq {
			continue
		}
		if iv.Start < seq {
			iv.Start = seq
		}
		out = append(out, iv)
	}
	sb.ivs = out
}

// reset empties the board.
func (sb *scoreboard) reset() { sb.ivs = sb.ivs[:0] }

// highest returns the highest sacked byte (exclusive), or 0 if empty.
func (sb *scoreboard) highest() int64 {
	if len(sb.ivs) == 0 {
		return 0
	}
	return sb.ivs[len(sb.ivs)-1].End
}

// sacked reports whether byte seq is covered.
func (sb *scoreboard) sacked(seq int64) bool {
	i := sort.Search(len(sb.ivs), func(i int) bool { return sb.ivs[i].End > seq })
	return i < len(sb.ivs) && sb.ivs[i].Start <= seq
}

// nextHole returns the first unsacked range at or above from, bounded by
// the next sacked block (or by highest() when from is beyond all blocks).
// ok is false when no repairable hole below highest() exists.
func (sb *scoreboard) nextHole(from int64) (start, end int64, ok bool) {
	hi := sb.highest()
	if from >= hi {
		return 0, 0, false
	}
	for _, iv := range sb.ivs {
		if iv.End <= from {
			continue
		}
		if iv.Start > from {
			return from, iv.Start, true // hole before this block
		}
		from = iv.End // inside the block; continue past it
		if from >= hi {
			return 0, 0, false
		}
	}
	return 0, 0, false
}
