package tcp

import (
	"fmt"

	"hwatch/internal/netem"
)

// MPSender is the MPTCP extension the paper sketches as future work
// (Section IV-F): one logical connection striped over several TCP
// subflows. Per the protocol, the first subflow is a regular connection
// establishment; additional subflows join only after it is up. Each
// subflow is an ordinary Sender, so every HWatch mechanism (probe train,
// start-window stamping, Rule 1 throttling, SYN-ACK pacing) applies to
// each subflow independently — exactly the property the paper points out
// makes the extension direct.
type MPSender struct {
	host *netem.Host
	dst  netem.NodeID
	port uint16
	cfg  Config

	subflows  []*Sender
	shares    []int64
	started   bool
	startTime int64
	doneCount int
	lastFCT   int64

	// OnComplete fires when every subflow finished; the logical FCT is the
	// time until the *last* byte of any subflow is acknowledged.
	OnComplete func(fct int64)
}

// NewMPSender prepares a logical connection carrying size bytes over
// nSubflows subflows (size is split as evenly as possible; Infinite flows
// give every subflow an infinite share).
func NewMPSender(host *netem.Host, dst netem.NodeID, port uint16, size int64, nSubflows int, cfg Config) *MPSender {
	if nSubflows < 1 {
		panic("tcp: MPTCP needs at least one subflow")
	}
	m := &MPSender{host: host, dst: dst, port: port, cfg: cfg}
	if size == Infinite {
		for i := 0; i < nSubflows; i++ {
			m.shares = append(m.shares, Infinite)
		}
		return m
	}
	if size < 0 {
		panic("tcp: negative MPTCP size")
	}
	base := size / int64(nSubflows)
	rem := size % int64(nSubflows)
	for i := 0; i < nSubflows; i++ {
		share := base
		if int64(i) < rem {
			share++
		}
		m.shares = append(m.shares, share)
	}
	return m
}

// Start opens the first subflow; the rest join on its establishment.
func (m *MPSender) Start() {
	if m.started {
		panic("tcp: MPTCP Start twice")
	}
	m.started = true
	m.startTime = m.host.Eng.Now()

	first := m.newSubflow(m.shares[0])
	first.OnEstablished = func() {
		for _, share := range m.shares[1:] {
			m.newSubflow(share).Start()
		}
	}
	first.Start()
}

func (m *MPSender) newSubflow(share int64) *Sender {
	s := NewSender(m.host, m.dst, m.port, share, m.cfg)
	m.subflows = append(m.subflows, s)
	s.OnComplete = func(int64) { m.subflowDone() }
	return s
}

func (m *MPSender) subflowDone() {
	m.doneCount++
	if m.doneCount == len(m.shares) {
		m.lastFCT = m.host.Eng.Now() - m.startTime
		if m.OnComplete != nil {
			m.OnComplete(m.lastFCT)
		}
	}
}

// Subflows returns the underlying senders (in creation order; index 0 is
// the initial connection).
func (m *MPSender) Subflows() []*Sender { return m.subflows }

// Done reports whether every subflow completed.
func (m *MPSender) Done() bool { return m.started && m.doneCount == len(m.shares) }

// Stats aggregates the subflow counters.
func (m *MPSender) Stats() Stats {
	var agg Stats
	for _, s := range m.subflows {
		st := s.Stats()
		agg.SegsSent += st.SegsSent
		agg.Retransmits += st.Retransmits
		agg.Timeouts += st.Timeouts
		agg.FastRecovery += st.FastRecovery
		agg.ECNReductions += st.ECNReductions
		agg.EceAcks += st.EceAcks
		agg.BytesAcked += st.BytesAcked
	}
	return agg
}

func (m *MPSender) String() string {
	return fmt.Sprintf("mptcp %d->%d:%d subflows=%d done=%d",
		m.host.ID, m.dst, m.port, len(m.shares), m.doneCount)
}
