package harness

import (
	"strings"
	"testing"

	"hwatch/internal/aqm"
	"hwatch/internal/netem"
	"hwatch/internal/sim"
	"hwatch/internal/tcp"
)

// miniNet wires a -> sw -> b with the switch port toward b as the watched
// bottleneck, mirroring the dumbbell scenarios at toy scale.
type miniNet struct {
	net    *netem.Network
	a, b   *netem.Host
	port   *netem.Port
	bq     netem.Queue
	sender *tcp.Sender
}

func newMiniNet(t *testing.T) *miniNet {
	t.Helper()
	n := netem.NewNetwork()
	a := n.NewHost("a")
	b := n.NewHost("b")
	sw := n.NewSwitch("sw")
	big := func() netem.Queue { return aqm.NewDropTail(100000) }
	rate := int64(1e9)
	delay := 50 * sim.Microsecond
	n.LinkHostSwitch(a, sw, big(), big(), 10*rate, delay)
	bq := aqm.NewDropTail(64)
	down := netem.NewPort(n.Eng, bq, rate, delay)
	down.Connect(b)
	sw.Route(b.ID, sw.AddPort(down))
	upB := netem.NewPort(n.Eng, big(), 10*rate, delay)
	upB.Connect(sw)
	b.AttachUplink(upB)

	cfg := tcp.DefaultConfig()
	b.Listen(80, tcp.NewListener(b, cfg, func(*tcp.Receiver) {}))
	s := tcp.NewSender(a, b.ID, 80, 200_000, cfg)
	return &miniNet{net: n, a: a, b: b, port: down, bq: bq, sender: s}
}

func TestCheckerCleanRun(t *testing.T) {
	mn := newMiniNet(t)
	c := NewChecker(mn.net.Eng, 100*sim.Microsecond)
	c.WatchPort("bottleneck", mn.port, mn.bq)
	c.WatchSenders(func() []*tcp.Sender { return []*tcp.Sender{mn.sender} })
	c.Start()
	mn.sender.Start()
	mn.net.Eng.RunUntil(2 * sim.Second)
	if vs := c.Finish(); len(vs) != 0 {
		t.Fatalf("clean transfer reported %d violations, first: %s", len(vs), vs[0])
	}
	if !mn.sender.Done() {
		t.Fatalf("transfer did not complete; checker scenario is mis-wired")
	}
}

func TestCheckerDetectsConservationBreach(t *testing.T) {
	mn := newMiniNet(t)
	c := NewChecker(mn.net.Eng, 100*sim.Microsecond)
	c.WatchPort("bottleneck", mn.port, mn.bq)
	c.Start()
	mn.sender.Start()
	// Steal packets straight out of the bottleneck queue behind the port's
	// back: Enqueued advances but neither TxPackets nor residency can
	// account for the loss.
	stolen := 0
	var steal func()
	steal = func() {
		if mn.bq.Len() > 0 && stolen < 3 {
			mn.bq.Dequeue()
			stolen++
		}
		if stolen < 3 {
			mn.net.Eng.Schedule(50*sim.Microsecond, steal)
		}
	}
	mn.net.Eng.Schedule(sim.Millisecond, steal)
	mn.net.Eng.RunUntil(500 * sim.Millisecond)
	vs := c.Finish()
	if len(vs) == 0 {
		t.Fatalf("checker missed a conservation breach (stole %d packets)", stolen)
	}
	if !strings.Contains(vs[0].Msg, "conservation") {
		t.Fatalf("unexpected first violation: %s", vs[0])
	}
	if vs[0].At < 0 {
		t.Fatalf("violation carries no timestamp: %+v", vs[0])
	}
}

func TestCheckerViolationCap(t *testing.T) {
	mn := newMiniNet(t)
	c := NewChecker(mn.net.Eng, 0) // default interval
	c.WatchPort("bottleneck", mn.port, mn.bq)
	c.Start()
	mn.sender.Start()
	broke := false
	mn.net.Eng.Schedule(sim.Millisecond, func() {
		if mn.bq.Len() > 0 {
			mn.bq.Dequeue()
			broke = true
		}
	})
	mn.net.Eng.RunUntil(2 * sim.Second)
	if !broke {
		t.Skip("queue never occupied at breach time; nothing to cap")
	}
	if got := len(c.Finish()); got > 32 {
		t.Fatalf("violations uncapped: %d records", got)
	}
}
