package harness

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestSeedForDeterministic(t *testing.T) {
	a := SeedFor("fig2/hwatch", 42)
	b := SeedFor("fig2/hwatch", 42)
	if a != b {
		t.Fatalf("same (spec, base) derived %d then %d", a, b)
	}
	if a <= 0 {
		t.Fatalf("derived seed must be positive, got %d", a)
	}
	if SeedFor("fig2/hwatch", 43) == a {
		t.Fatalf("base seed change did not move the derived seed")
	}
	if SeedFor("fig2/cubic", 42) == a {
		t.Fatalf("spec change did not move the derived seed")
	}
	// Structurally adjacent labels must land far apart, not off-by-one.
	if d := SeedFor("deg=8", 1) ^ SeedFor("deg=9", 1); d == 0 || d == 1 {
		t.Fatalf("adjacent specs derived correlated seeds (xor=%d)", d)
	}
}

func TestDigestOrderAndContent(t *testing.T) {
	d1 := NewDigest()
	d1.Float64(1.5)
	d1.Float64(2.5)
	d2 := NewDigest()
	d2.Float64(2.5)
	d2.Float64(1.5)
	if d1.Sum() == d2.Sum() {
		t.Fatalf("digest is order-insensitive: %016x", d1.Sum())
	}

	// Length prefixes keep boundary-shifted inputs distinct.
	a := NewDigest()
	a.String("ab")
	a.String("c")
	b := NewDigest()
	b.String("a")
	b.String("bc")
	if a.Sum() == b.Sum() {
		t.Fatalf("string folding ignores boundaries")
	}

	s := NewDigest()
	s.Series([]int64{1, 2}, []float64{3, 4})
	s2 := NewDigest()
	s2.Series([]int64{1, 2}, []float64{3, 4})
	if s.Sum() != s2.Sum() {
		t.Fatalf("identical series digests differ")
	}
	if got := s.Hex(); len(got) != 16 {
		t.Fatalf("Hex() = %q, want 16 hex chars", got)
	}
	if fmt.Sprintf("%016x", s.Sum()) != s.Hex() {
		t.Fatalf("Hex does not match Sum")
	}
}

func TestPoolBoundedParallelism(t *testing.T) {
	const parallel, tasks = 3, 24
	var running, peak atomic.Int64
	p := NewPool(context.Background(), parallel)
	for i := 0; i < tasks; i++ {
		p.Go(fmt.Sprintf("t%d", i), func(context.Context) error {
			n := running.Add(1)
			for {
				old := peak.Load()
				if n <= old || peak.CompareAndSwap(old, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			running.Add(-1)
			return nil
		})
	}
	if err := p.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if got := peak.Load(); got > parallel {
		t.Fatalf("observed %d concurrent tasks, pool bound is %d", got, parallel)
	}
	if got := len(p.Metrics()); got != tasks {
		t.Fatalf("recorded %d metrics, want %d", got, tasks)
	}
	for _, m := range p.Metrics() {
		if m.Err != nil {
			t.Fatalf("task %s failed: %v", m.Name, m.Err)
		}
	}
}

func TestPoolCancellationSkipsQueuedTasks(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := NewPool(ctx, 1)
	started := make(chan struct{})
	release := make(chan struct{})
	p.Go("holder", func(context.Context) error {
		close(started)
		<-release
		return nil
	})
	<-started
	var ran atomic.Int64
	for i := 0; i < 8; i++ {
		p.Go(fmt.Sprintf("queued%d", i), func(context.Context) error {
			ran.Add(1)
			return nil
		})
	}
	cancel()
	close(release)
	if err := p.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
	// The holder ran; queued tasks raced cancellation and some may have
	// slipped through before cancel, but every submission is accounted for.
	if got := len(p.Metrics()); got != 9 {
		t.Fatalf("recorded %d metrics, want 9", got)
	}
}

func TestMapPreservesItemOrder(t *testing.T) {
	items := make([]int, 50)
	for i := range items {
		items[i] = i
	}
	out, err := Map(context.Background(), 8, items, func(_ context.Context, v int) (int, error) {
		return v * v, nil
	})
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	out, err := Map(context.Background(), 4, []int{1, 2, 3}, func(_ context.Context, v int) (int, error) {
		if v == 2 {
			return 0, boom
		}
		return v, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Map error = %v, want boom", err)
	}
	if out[1] != 0 {
		t.Fatalf("failed slot should stay zero, got %d", out[1])
	}
}

func TestEventsPerSec(t *testing.T) {
	if got := EventsPerSec(1000, time.Second); got != 1000 {
		t.Fatalf("EventsPerSec = %v, want 1000", got)
	}
	if got := EventsPerSec(1000, 0); got != 0 {
		t.Fatalf("EventsPerSec with zero wall = %v, want 0", got)
	}
}
