package harness

// Deterministic per-run seed derivation: hash the run's spec identity
// (an arbitrary label — figure name, cell coordinates, a serialized Spec)
// with FNV-64a, mix in the operator's base seed, and finish with one
// splitmix64 step so structurally similar labels ("deg=8" vs "deg=9")
// land far apart in seed space. The same (spec, base) always derives the
// same seed, so a sweep's cells are reproducible individually without
// replaying the whole sweep.

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnv64a hashes a string with FNV-1a.
func fnv64a(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// splitmix64 is the finalizer from Vigna's SplitMix64 generator: a cheap,
// well-mixed bijection on 64-bit words.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SeedFor derives a deterministic, non-zero per-run seed from a spec
// identity and a base seed. Distinct specs under one base, or one spec
// under distinct bases, get uncorrelated seeds.
func SeedFor(spec string, base int64) int64 {
	v := splitmix64(fnv64a(spec) ^ uint64(base))
	s := int64(v &^ (1 << 63)) // math/rand sources want non-negative seeds
	if s == 0 {
		s = 1
	}
	return s
}
