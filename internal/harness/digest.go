package harness

import (
	"fmt"
	"math"
)

// Digest folds a run's observable outcome — every queue sample, flow
// completion time, retransmit count, totals — into one FNV-64a hash, so
// two runs of the same spec can be compared byte-for-byte without
// retaining either run's series. Fold order matters and is fixed by the
// caller; the experiment packages fold fields in struct order.
type Digest struct {
	h uint64
}

// NewDigest returns an empty digest (FNV-64a offset basis).
func NewDigest() *Digest { return &Digest{h: fnvOffset64} }

// Uint64 folds one 64-bit word, little-endian byte by byte.
func (d *Digest) Uint64(v uint64) {
	for i := 0; i < 8; i++ {
		d.h ^= v & 0xff
		d.h *= fnvPrime64
		v >>= 8
	}
}

// Int64 folds a signed word.
func (d *Digest) Int64(v int64) { d.Uint64(uint64(v)) }

// Int folds an int.
func (d *Digest) Int(v int) { d.Uint64(uint64(int64(v))) }

// Float64 folds the IEEE-754 bit pattern, so digests compare exact bits,
// not printed approximations.
func (d *Digest) Float64(v float64) { d.Uint64(math.Float64bits(v)) }

// Floats folds a whole series in order.
func (d *Digest) Floats(vs []float64) {
	d.Int(len(vs))
	for _, v := range vs {
		d.Float64(v)
	}
}

// Series folds a timestamped series in order.
func (d *Digest) Series(t []int64, v []float64) {
	d.Int(len(t))
	for i := range t {
		d.Int64(t[i])
		d.Float64(v[i])
	}
}

// String folds a label (length-prefixed, so "ab"+"c" != "a"+"bc").
func (d *Digest) String(s string) {
	d.Int(len(s))
	for i := 0; i < len(s); i++ {
		d.h ^= uint64(s[i])
		d.h *= fnvPrime64
	}
}

// Sum returns the folded hash.
func (d *Digest) Sum() uint64 { return d.h }

// Hex renders the hash the way golden files and CLIs print it.
func (d *Digest) Hex() string { return fmt.Sprintf("%016x", d.h) }
