package harness

import (
	"fmt"

	"hwatch/internal/aqm"
	"hwatch/internal/netem"
	"hwatch/internal/sim"
	"hwatch/internal/tcp"
)

// Checker verifies physical sanity of a running scenario: packet
// conservation at every watched switch port (packets enqueued = packets
// transmitted + packets resident), sequence-space monotonicity of every
// watched TCP sender, and window floors (cwnd and the peer-advertised
// rwnd never fall below one MSS once a connection is established). It is
// opt-in — the sweep costs a walk over watched state every interval — and
// runs in tier-1 tests and behind the CLIs' -check flag.
type Checker struct {
	eng   *sim.Engine
	every int64

	ports   []portWatch
	senders []func() []*tcp.Sender
	lastUna map[*tcp.Sender]int64

	violations []Violation
	limit      int
}

// Violation is one detected invariant breach.
type Violation struct {
	At  int64 // simulation time, ns
	Msg string
}

func (v Violation) String() string {
	return fmt.Sprintf("t=%dns: %s", v.At, v.Msg)
}

// queueStats is satisfied by every aqm discipline.
type queueStats interface{ Stats() aqm.Stats }

type portWatch struct {
	label string
	port  *netem.Port
	q     netem.Queue
}

// NewChecker returns a checker sweeping every `every` ns (<= 0 defaults to
// 100 us, the scenarios' telemetry period). Call Start once watches are
// registered, and Finish after the run for the final sweep and verdict.
func NewChecker(eng *sim.Engine, every int64) *Checker {
	if every <= 0 {
		every = 100 * sim.Microsecond
	}
	return &Checker{
		eng:     eng,
		every:   every,
		lastUna: make(map[*tcp.Sender]int64),
		limit:   32,
	}
}

// WatchPort registers a switch port and its queue for packet-conservation
// checking.
func (c *Checker) WatchPort(label string, port *netem.Port, q netem.Queue) {
	c.ports = append(c.ports, portWatch{label: label, port: port, q: q})
}

// WatchSenders registers a dynamic source of TCP senders (workloads create
// senders over time; the callback is re-evaluated every sweep).
func (c *Checker) WatchSenders(src func() []*tcp.Sender) {
	c.senders = append(c.senders, src)
}

// Every returns the sweep period.
func (c *Checker) Every() int64 { return c.every }

// Sweep runs one check pass immediately. Sharded runs call it from window
// barriers (every shard quiescent) instead of Start's engine-scheduled
// tick, which could not safely read state owned by other shards.
func (c *Checker) Sweep() { c.sweep() }

// Start schedules the periodic sweep on the engine.
func (c *Checker) Start() {
	var tick func()
	tick = func() {
		c.sweep()
		c.eng.Schedule(c.every, tick)
	}
	c.eng.Schedule(0, tick)
}

// Finish performs one final sweep and returns every violation recorded.
func (c *Checker) Finish() []Violation {
	c.sweep()
	return c.violations
}

// Violations returns what has been recorded so far.
func (c *Checker) Violations() []Violation { return c.violations }

func (c *Checker) report(format string, args ...any) {
	if len(c.violations) >= c.limit {
		return // one class of bug can fire every sweep; cap the noise
	}
	c.violations = append(c.violations, Violation{
		At:  c.eng.Now(),
		Msg: fmt.Sprintf(format, args...),
	})
}

func (c *Checker) sweep() {
	for _, w := range c.ports {
		qs, ok := w.q.(queueStats)
		if !ok {
			continue
		}
		st := qs.Stats()
		tx := w.port.Stats().TxPackets
		resident := int64(w.q.Len())
		if st.Enqueued != tx+resident {
			c.report("port %s: conservation broken: enqueued %d != transmitted %d + resident %d (dropped %d, early %d)",
				w.label, st.Enqueued, tx, resident, st.Dropped, st.EarlyDrop)
		}
		if resident < 0 || w.q.Bytes() < 0 {
			c.report("port %s: negative occupancy: len=%d bytes=%d", w.label, resident, w.q.Bytes())
		}
	}
	for _, src := range c.senders {
		for _, s := range src() {
			una, nxt := s.SndUna(), s.SndNxt()
			if prev, seen := c.lastUna[s]; seen && una < prev {
				c.report("flow %s: sndUna regressed %d -> %d", s.FlowKey(), prev, una)
			}
			c.lastUna[s] = una
			if nxt < una {
				c.report("flow %s: sndNxt %d below sndUna %d", s.FlowKey(), nxt, una)
			}
			mss := float64(s.MSS())
			if s.Cwnd() < mss {
				c.report("flow %s: cwnd %.0f below one MSS (%d)", s.FlowKey(), s.Cwnd(), s.MSS())
			}
			if s.Established() && float64(s.PeerRwnd()) < mss {
				c.report("flow %s: advertised rwnd %d below one MSS (%d)", s.FlowKey(), s.PeerRwnd(), s.MSS())
			}
		}
	}
}
