// Package harness executes experiment runs as a deterministic, bounded
// parallel workload. It is the substrate every figure, ablation and sweep
// in internal/experiments is driven through: a worker pool with context
// cancellation, per-task wall-clock metrics, deterministic per-run seed
// derivation, a run digest for cheap byte-comparison of two runs, and an
// opt-in physical-invariant checker for the packet model.
//
// Determinism contract: every task owns its simulation engine and seeded
// RNG, so the pool's parallelism and scheduling order can never perturb a
// run's dynamics — two executions of the same spec and seed produce
// identical digests at -parallel 1 and -parallel 64 alike.
package harness

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// DefaultParallel is the worker count used when none is configured:
// GOMAXPROCS, the hardware's useful limit for CPU-bound simulation runs.
func DefaultParallel() int { return runtime.GOMAXPROCS(0) }

// TaskMetric records one completed task's runtime cost.
type TaskMetric struct {
	Name string
	Wall time.Duration
	Err  error
}

// EventsPerSec converts an event count and a wall-clock duration into the
// throughput figure progress reports print.
func EventsPerSec(events uint64, wall time.Duration) float64 {
	if wall <= 0 {
		return 0
	}
	return float64(events) / wall.Seconds()
}

// Pool runs submitted tasks on at most Parallel workers. Submission never
// blocks; Wait blocks until every submitted task finished (or was skipped
// by cancellation) and returns the first error observed.
type Pool struct {
	ctx      context.Context
	sem      chan struct{}
	wg       sync.WaitGroup
	mu       sync.Mutex
	metrics  []TaskMetric
	firstErr error
}

// NewPool returns a pool bounded at parallel workers (<= 0 means
// DefaultParallel). The context cancels outstanding work: tasks not yet
// started are skipped, and running tasks observe ctx through their argument.
func NewPool(ctx context.Context, parallel int) *Pool {
	if parallel <= 0 {
		parallel = DefaultParallel()
	}
	if ctx == nil {
		ctx = context.Background() //hwatchvet:allow ctxflow nil-ctx compat default: callers without a context get the documented never-cancelled pool
	}
	return &Pool{ctx: ctx, sem: make(chan struct{}, parallel)}
}

// Go submits one named task.
func (p *Pool) Go(name string, fn func(ctx context.Context) error) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		select {
		case p.sem <- struct{}{}:
			defer func() { <-p.sem }()
		case <-p.ctx.Done():
			p.record(TaskMetric{Name: name, Err: p.ctx.Err()})
			return
		}
		if err := p.ctx.Err(); err != nil {
			p.record(TaskMetric{Name: name, Err: err})
			return
		}
		start := time.Now() //hwatchvet:allow detrand wall-clock measures real task runtime for operator metrics, never model time
		err := fn(p.ctx)
		p.record(TaskMetric{Name: name, Wall: time.Since(start), Err: err}) //hwatchvet:allow detrand wall metric is reporting-only and never feeds digests
	}()
}

func (p *Pool) record(m TaskMetric) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.metrics = append(p.metrics, m)
	if m.Err != nil && p.firstErr == nil {
		p.firstErr = m.Err
	}
}

// Wait blocks until all submitted tasks completed or were skipped and
// returns the first task (or cancellation) error.
func (p *Pool) Wait() error {
	p.wg.Wait()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.firstErr != nil {
		return p.firstErr
	}
	return p.ctx.Err()
}

// Metrics returns the per-task runtime records accumulated so far. Call
// after Wait for the complete set.
func (p *Pool) Metrics() []TaskMetric {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]TaskMetric, len(p.metrics))
	copy(out, p.metrics)
	return out
}

// Map runs fn over items with bounded parallelism and returns the outputs
// in item order. On cancellation or task error the corresponding slots are
// left at the zero value and the first error is returned alongside the
// partial results.
func Map[I, O any](ctx context.Context, parallel int, items []I, fn func(ctx context.Context, item I) (O, error)) ([]O, error) {
	out := make([]O, len(items))
	pool := NewPool(ctx, parallel)
	for i := range items {
		i := i
		pool.Go(fmt.Sprintf("task-%d", i), func(ctx context.Context) error {
			v, err := fn(ctx, items[i])
			if err != nil {
				return err
			}
			out[i] = v
			return nil
		})
	}
	err := pool.Wait()
	return out, err
}
