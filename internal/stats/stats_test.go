package stats

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	if s.N() != 0 || s.Mean() != 0 || s.Var() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty sample not all-zero")
	}
	for _, v := range []float64{4, 1, 3, 2, 5} {
		s.Add(v)
	}
	if s.N() != 5 || s.Mean() != 3 {
		t.Fatalf("n=%d mean=%f", s.N(), s.Mean())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("min=%f max=%f", s.Min(), s.Max())
	}
	if got := s.Var(); got != 2 {
		t.Fatalf("var=%f want 2", got)
	}
	if got := s.Std(); math.Abs(got-math.Sqrt2) > 1e-12 {
		t.Fatalf("std=%f", got)
	}
}

func TestSampleAddAfterQuery(t *testing.T) {
	var s Sample
	s.Add(3)
	s.Add(1)
	_ = s.Values() // forces a sort
	s.Add(2)       // must re-sort on next query
	v := s.Values()
	if !sort.Float64sAreSorted(v) {
		t.Fatalf("values not sorted after interleaved Add: %v", v)
	}
}

func TestQuantile(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if q := s.Quantile(0); q != 1 {
		t.Fatalf("q0=%f", q)
	}
	if q := s.Quantile(1); q != 100 {
		t.Fatalf("q1=%f", q)
	}
	if q := s.Quantile(0.5); math.Abs(q-50.5) > 1e-9 {
		t.Fatalf("median=%f want 50.5", q)
	}
	if q := s.Quantile(0.99); math.Abs(q-99.01) > 0.1 {
		t.Fatalf("p99=%f", q)
	}
}

func TestCDF(t *testing.T) {
	var s Sample
	for i := 1; i <= 1000; i++ {
		s.Add(float64(i))
	}
	cdf := s.CDF(0)
	if len(cdf) != 1000 {
		t.Fatalf("full CDF has %d points", len(cdf))
	}
	if cdf[len(cdf)-1].P != 1 {
		t.Fatal("CDF does not end at 1")
	}
	small := s.CDF(50)
	if len(small) > 60 {
		t.Fatalf("downsampled CDF has %d points", len(small))
	}
	if small[len(small)-1].P != 1 {
		t.Fatal("downsampled CDF does not end at 1")
	}
	for i := 1; i < len(small); i++ {
		if small[i].P < small[i-1].P || small[i].X < small[i-1].X {
			t.Fatal("CDF not monotone")
		}
	}
	if (&Sample{}).CDF(10) != nil {
		t.Fatal("empty CDF not nil")
	}
}

// Property: quantile is monotone in q and bounded by min/max.
func TestPropertyQuantileMonotone(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var s Sample
		for i := 0; i < int(n)+1; i++ {
			s.Add(rng.NormFloat64() * 100)
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := s.Quantile(q)
			if v < prev || v < s.Min()-1e-9 || v > s.Max()+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Welford matches the exact two-pass computation.
func TestPropertyWelfordMatchesExact(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var w Welford
		var s Sample
		for i := 0; i < int(n)+2; i++ {
			v := rng.NormFloat64()*50 + 10
			w.Add(v)
			s.Add(v)
		}
		return math.Abs(w.Mean()-s.Mean()) < 1e-9 &&
			math.Abs(w.Var()-s.Var()) < 1e-6 &&
			w.N() == int64(s.N())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeSeries(t *testing.T) {
	var ts TimeSeries
	ts.Add(0, 1)
	ts.Add(10, 3)
	ts.Add(20, 5)
	if ts.Len() != 3 || ts.Mean() != 3 || ts.Max() != 5 {
		t.Fatalf("len=%d mean=%f max=%f", ts.Len(), ts.Mean(), ts.Max())
	}
	after := ts.After(10)
	if after.Len() != 2 || after.V[0] != 3 {
		t.Fatalf("After: %+v", after)
	}
	csv := ts.CSV()
	if !strings.Contains(csv, "10,3\n") || strings.Count(csv, "\n") != 3 {
		t.Fatalf("CSV = %q", csv)
	}
}

func TestTimeSeriesOutOfOrderPanics(t *testing.T) {
	var ts TimeSeries
	ts.Add(10, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on out-of-order Add")
		}
	}()
	ts.Add(5, 2)
}

func TestRateMeter(t *testing.T) {
	var m RateMeter
	m.Observe(0, 0)
	m.Observe(1e9, 125_000_000) // 125 MB in 1 s = 1 Gb/s
	m.Observe(2e9, 250_000_000) // another 1 Gb/s window
	if m.Series.Len() != 2 {
		t.Fatalf("windows = %d", m.Series.Len())
	}
	if r := m.MeanRate(); math.Abs(r-1e9) > 1 {
		t.Fatalf("mean rate = %f", r)
	}
	// Same-timestamp observation must not divide by zero.
	m.Observe(2e9, 260_000_000)
	if m.Series.Len() != 2 {
		t.Fatal("zero-width window recorded")
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(7)
	if c.Value() != 12 {
		t.Fatalf("counter = %d", c.Value())
	}
}

func TestSummaryString(t *testing.T) {
	var s Sample
	s.Add(1)
	s.Add(2)
	out := s.Summary("ms")
	if !strings.Contains(out, "n=2") || !strings.Contains(out, "ms") {
		t.Fatalf("summary = %q", out)
	}
}
