package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a log-bucketed counter for positive values spanning many
// orders of magnitude (e.g. FCTs from microseconds to seconds). Bucket i
// covers [Base^i, Base^(i+1)) times Unit.
type Histogram struct {
	Base float64 // bucket growth factor (> 1); default 2 via NewHistogram
	Unit float64 // value of bucket 0's lower edge

	counts []int64 // dense by bucket index; 64 preallocated buckets cover
	// 2^64x of dynamic range at Base 2, so Add is allocation-free in the
	// steady state
	n     int64
	under int64 // values below Unit
}

// NewHistogram returns a histogram with the given smallest bucket edge and
// growth factor (use 2 for doubling buckets, 10 for decades).
func NewHistogram(unit, base float64) *Histogram {
	if unit <= 0 || base <= 1 {
		panic("stats: histogram needs unit > 0 and base > 1")
	}
	return &Histogram{Base: base, Unit: unit, counts: make([]int64, 0, 64)}
}

// Add records one value.
func (h *Histogram) Add(v float64) {
	h.n++
	if v < h.Unit {
		h.under++
		return
	}
	// v >= Unit makes the ratio >= 1 and the log >= 0 (division and log
	// are correctly rounded), so the index cannot go negative.
	i := int(math.Floor(math.Log(v/h.Unit) / math.Log(h.Base)))
	for i >= len(h.counts) {
		h.counts = append(h.counts, 0)
	}
	h.counts[i]++
}

// N returns the total observations.
func (h *Histogram) N() int64 { return h.n }

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) int64 {
	if i < 0 || i >= len(h.counts) {
		return 0
	}
	return h.counts[i]
}

// Edges returns the [lo, hi) value range of bucket i.
func (h *Histogram) Edges(i int) (float64, float64) {
	lo := h.Unit * math.Pow(h.Base, float64(i))
	return lo, lo * h.Base
}

// QuantileUpperBound returns an upper bound for the q-quantile: the upper
// edge of the bucket containing it.
func (h *Histogram) QuantileUpperBound(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	target := int64(q * float64(h.n))
	cum := h.under
	if cum > target {
		return h.Unit
	}
	maxI := len(h.counts) - 1
	if maxI < 0 {
		maxI = 0
	}
	for i, c := range h.counts {
		cum += c
		if cum > target {
			_, hi := h.Edges(i)
			return hi
		}
	}
	_, hi := h.Edges(maxI)
	return hi
}

// String renders the non-empty buckets as "lo-hi: count" lines.
func (h *Histogram) String() string {
	var b strings.Builder
	if h.under > 0 {
		fmt.Fprintf(&b, "<%g: %d\n", h.Unit, h.under)
	}
	for i, c := range h.counts {
		if c > 0 {
			lo, hi := h.Edges(i)
			fmt.Fprintf(&b, "%g-%g: %d\n", lo, hi, c)
		}
	}
	return b.String()
}

// JainIndex computes Jain's fairness index over the values: 1 = perfectly
// fair, 1/n = maximally unfair. Used to quantify the coexistence study's
// unfairness (Fig. 2).
func JainIndex(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, v := range values {
		sum += v
		sumSq += v * v
	}
	if sumSq == 0 {
		return 1 // all zeros: degenerate but not unfair
	}
	return sum * sum / (float64(len(values)) * sumSq)
}
