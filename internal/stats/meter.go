package stats

// RateMeter converts a monotone byte counter into a rate time series
// (bits/second per sampling window), e.g. goodput at a receiver or
// utilization of a port.
type RateMeter struct {
	Series TimeSeries

	lastT     int64
	lastBytes int64
	started   bool
}

// Observe records the counter value at time t and, if a previous sample
// exists, appends the window's rate to the series.
func (m *RateMeter) Observe(t, bytes int64) {
	if m.started && t > m.lastT {
		rate := float64(bytes-m.lastBytes) * 8 * 1e9 / float64(t-m.lastT)
		m.Series.Add(t, rate)
	}
	m.started = true
	m.lastT, m.lastBytes = t, bytes
}

// MeanRate returns the average of the recorded window rates (bits/s).
func (m *RateMeter) MeanRate() float64 { return m.Series.Mean() }

// Counter is a simple monotone accumulator for callbacks.
type Counter struct{ v int64 }

// Add increments by n.
func (c *Counter) Add(n int64) { c.v += n }

// Value returns the current total.
func (c *Counter) Value() int64 { return c.v }
