package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(1, 2)
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 100} {
		h.Add(v)
	}
	if h.N() != 7 {
		t.Fatalf("N = %d", h.N())
	}
	if h.Bucket(0) != 2 { // [1,2): 1, 1.5
		t.Fatalf("bucket0 = %d", h.Bucket(0))
	}
	if h.Bucket(1) != 2 { // [2,4): 2, 3
		t.Fatalf("bucket1 = %d", h.Bucket(1))
	}
	if h.Bucket(2) != 1 { // [4,8): 4
		t.Fatalf("bucket2 = %d", h.Bucket(2))
	}
	lo, hi := h.Edges(3)
	if lo != 8 || hi != 16 {
		t.Fatalf("edges(3) = %f,%f", lo, hi)
	}
	s := h.String()
	if !strings.Contains(s, "<1: 1") {
		t.Fatalf("underflow missing: %q", s)
	}
}

func TestHistogramQuantileBound(t *testing.T) {
	h := NewHistogram(1, 2)
	var s Sample
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		v := math.Exp(rng.Float64() * 8) // 1 .. ~3000
		h.Add(v)
		s.Add(v)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := s.Quantile(q)
		bound := h.QuantileUpperBound(q)
		if bound < exact {
			t.Fatalf("q=%v: bound %f below exact %f", q, bound, exact)
		}
		if bound > exact*2.1 { // one doubling bucket of slack
			t.Fatalf("q=%v: bound %f too loose vs %f", q, bound, exact)
		}
	}
	if (NewHistogram(1, 2)).QuantileUpperBound(0.5) != 0 {
		t.Fatal("empty histogram quantile")
	}
}

func TestHistogramValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 2) },
		func() { NewHistogram(1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic on bad histogram params")
				}
			}()
			f()
		}()
	}
}

// Property: bucket counts sum to N, and every value lands in the bucket
// whose edges contain it.
func TestPropertyHistogramConservation(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHistogram(0.5, 2)
		var total int64
		for i := 0; i < int(n); i++ {
			h.Add(rng.Float64() * 1000)
			total++
		}
		var sum int64 = h.under
		for i := range h.counts {
			sum += h.counts[i]
			lo, hi := h.Edges(i)
			if hi <= lo {
				return false
			}
		}
		return sum == total && h.N() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestJainIndex(t *testing.T) {
	if JainIndex(nil) != 0 {
		t.Fatal("empty")
	}
	if v := JainIndex([]float64{5, 5, 5, 5}); math.Abs(v-1) > 1e-12 {
		t.Fatalf("equal shares: %f", v)
	}
	// One flow hogs everything: index -> 1/n.
	if v := JainIndex([]float64{10, 0, 0, 0}); math.Abs(v-0.25) > 1e-12 {
		t.Fatalf("hog: %f", v)
	}
	mid := JainIndex([]float64{8, 2, 2, 2})
	if mid <= 0.25 || mid >= 1 {
		t.Fatalf("mid = %f", mid)
	}
	if JainIndex([]float64{0, 0}) != 1 {
		t.Fatal("all-zero degenerate case")
	}
}
