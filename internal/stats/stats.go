// Package stats provides the measurement machinery behind the paper's
// figures: exact empirical CDFs for FCT and goodput, online mean/variance,
// sampled time series (queue occupancy, utilization), and rate meters.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Sample is an accumulating collection of float64 observations with exact
// quantiles (values are retained).
type Sample struct {
	vals   []float64
	sorted bool
}

// Add appends one observation.
func (s *Sample) Add(v float64) {
	s.vals = append(s.vals, v)
	s.sorted = false
}

// N returns the observation count.
func (s *Sample) N() int { return len(s.vals) }

// Values returns the observations sorted ascending (callers must not
// mutate).
func (s *Sample) Values() []float64 {
	if !s.sorted {
		sort.Float64s(s.vals)
		s.sorted = true
	}
	return s.vals
}

// Mean returns the arithmetic mean (0 if empty).
func (s *Sample) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.vals {
		sum += v
	}
	return sum / float64(len(s.vals))
}

// Var returns the population variance (0 if fewer than 2 samples).
func (s *Sample) Var() float64 {
	n := len(s.vals)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	sum := 0.0
	for _, v := range s.vals {
		d := v - m
		sum += d * d
	}
	return sum / float64(n)
}

// Std returns the population standard deviation.
func (s *Sample) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation (0 if empty).
func (s *Sample) Min() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	return s.Values()[0]
}

// Max returns the largest observation (0 if empty).
func (s *Sample) Max() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	v := s.Values()
	return v[len(v)-1]
}

// Quantile returns the q-quantile (0 <= q <= 1) by linear interpolation.
func (s *Sample) Quantile(q float64) float64 {
	v := s.Values()
	if len(v) == 0 {
		return 0
	}
	if q <= 0 {
		return v[0]
	}
	if q >= 1 {
		return v[len(v)-1]
	}
	pos := q * float64(len(v)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(v) {
		return v[len(v)-1]
	}
	return v[lo]*(1-frac) + v[lo+1]*frac
}

// CDFPoint is one step of an empirical CDF.
type CDFPoint struct {
	X float64 // value
	P float64 // cumulative probability
}

// CDF returns the empirical distribution as (value, P(val <= value)) steps,
// downsampled to at most maxPoints (0 = all points).
func (s *Sample) CDF(maxPoints int) []CDFPoint {
	v := s.Values()
	n := len(v)
	if n == 0 {
		return nil
	}
	stride := 1
	if maxPoints > 0 && n > maxPoints {
		stride = n / maxPoints
	}
	var out []CDFPoint
	for i := 0; i < n; i += stride {
		out = append(out, CDFPoint{X: v[i], P: float64(i+1) / float64(n)})
	}
	if out[len(out)-1].P != 1 {
		out = append(out, CDFPoint{X: v[n-1], P: 1})
	}
	return out
}

// Summary renders a one-line digest.
func (s *Sample) Summary(unit string) string {
	return fmt.Sprintf("n=%d mean=%.3g%s p50=%.3g p99=%.3g max=%.3g",
		s.N(), s.Mean(), unit, s.Quantile(0.5), s.Quantile(0.99), s.Max())
}

// Welford is an online mean/variance accumulator for streams too large to
// retain.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add feeds one observation.
func (w *Welford) Add(v float64) {
	w.n++
	d := v - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (v - w.mean)
}

// N returns the count.
func (w *Welford) N() int64 { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the running population variance.
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// TimeSeries is a sequence of (t, v) samples, appended in time order.
type TimeSeries struct {
	T []int64
	V []float64
}

// Add appends one point; t must be nondecreasing.
func (ts *TimeSeries) Add(t int64, v float64) {
	if len(ts.T) > 0 && t < ts.T[len(ts.T)-1] {
		panic("stats: time series must be appended in order")
	}
	ts.T = append(ts.T, t)
	ts.V = append(ts.V, v)
}

// Len returns the number of points.
func (ts *TimeSeries) Len() int { return len(ts.T) }

// Mean returns the unweighted mean of the values.
func (ts *TimeSeries) Mean() float64 {
	if len(ts.V) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range ts.V {
		sum += v
	}
	return sum / float64(len(ts.V))
}

// Max returns the largest value (0 if empty).
func (ts *TimeSeries) Max() float64 {
	out := 0.0
	for i, v := range ts.V {
		if i == 0 || v > out {
			out = v
		}
	}
	return out
}

// After returns the sub-series with t >= cut (shares backing arrays).
func (ts *TimeSeries) After(cut int64) *TimeSeries {
	i := sort.Search(len(ts.T), func(i int) bool { return ts.T[i] >= cut })
	return &TimeSeries{T: ts.T[i:], V: ts.V[i:]}
}

// CSV renders the series as "t_ns,value" lines.
func (ts *TimeSeries) CSV() string {
	var b strings.Builder
	for i := range ts.T {
		fmt.Fprintf(&b, "%d,%g\n", ts.T[i], ts.V[i])
	}
	return b.String()
}
