package trace

import (
	"bytes"
	"io"
	"testing"

	"hwatch/internal/netem"
)

// FuzzBinaryRoundTrip feeds arbitrary bytes to the HWT1 decoder. The
// contract under test: truncated or corrupted streams must surface as
// errors, never as panics or runaway allocation — and any stream that does
// decode must survive an encode/decode round trip unchanged (the format has
// one canonical serialization per record).
func FuzzBinaryRoundTrip(f *testing.F) {
	// A valid two-record stream as the happy-path seed.
	var valid bytes.Buffer
	if bw, err := NewBinaryWriter(&valid); err == nil {
		bw.Write(42, Out, "h0", &netem.Packet{
			Src: 1, Dst: 2, SrcPort: 3000, DstPort: 80, Seq: 1, Ack: 0,
			Flags: netem.FlagSYN, ECN: netem.ECT0, Payload: 0, Wire: 58, Rwnd: 1000,
		})
		bw.Write(97, In, "leaf-3", &netem.Packet{
			Src: 2, Dst: 1, SrcPort: 80, DstPort: 3000, Seq: 0, Ack: 2,
			Flags: netem.FlagSYN | netem.FlagACK, ECN: netem.CE, Probe: true,
			Payload: 1442, Wire: 1500, Rwnd: 65535,
		})
		bw.Flush()
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:7])                                         // truncated mid-header
	f.Add(valid.Bytes()[:len(valid.Bytes())-5])                      // truncated mid-body
	f.Add([]byte("HWT1"))                                            // magic only
	f.Add([]byte("HWT2junk"))                                        // bad magic
	f.Add([]byte{})                                                  // empty
	f.Add(append([]byte("HWT1"), bytes.Repeat([]byte{0xff}, 60)...)) // giant host length

	f.Fuzz(func(t *testing.T, data []byte) {
		br, err := NewBinaryReader(bytes.NewReader(data))
		if err != nil {
			return // invalid magic: rejected, fine
		}
		recs, err := br.ReadAll()
		if err != nil {
			return // truncated/corrupt tail: rejected, fine
		}
		// Decoded clean: re-encode and decode again; records must match.
		var buf bytes.Buffer
		bw, err := NewBinaryWriter(&buf)
		if err != nil {
			t.Fatalf("writer: %v", err)
		}
		for _, r := range recs {
			p := &netem.Packet{
				Src: r.Src, Dst: r.Dst, SrcPort: r.SrcPort, DstPort: r.DstPort,
				Seq: r.Seq, Ack: r.Ack, Flags: r.Flags, ECN: r.ECN, Probe: r.Probe,
				Payload: r.Payload, Wire: r.Wire, Rwnd: r.Rwnd,
			}
			if err := bw.Write(r.T, r.Dir, r.Host, p); err != nil {
				t.Fatalf("re-encode: %v", err)
			}
		}
		if err := bw.Flush(); err != nil {
			t.Fatal(err)
		}
		br2, err := NewBinaryReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-read magic: %v", err)
		}
		recs2, err := br2.ReadAll()
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if len(recs2) != len(recs) {
			t.Fatalf("round trip: %d records became %d", len(recs), len(recs2))
		}
		for i := range recs {
			if recs[i] != recs2[i] {
				t.Fatalf("record %d: %+v != %+v", i, recs[i], recs2[i])
			}
		}
	})
}

// FuzzBinaryReaderNoPanic hammers Next directly with a size cap on reads,
// catching panics and unbounded host-length handling on adversarial input.
func FuzzBinaryReaderNoPanic(f *testing.F) {
	f.Add([]byte("HWT1\x00\x00\x00\x00\x00\x00\x00\x2a\x00\x05hello"))
	f.Fuzz(func(t *testing.T, data []byte) {
		br, err := NewBinaryReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 1000; i++ {
			if _, err := br.Next(); err != nil {
				if err != io.EOF {
					_ = err.Error() // errors must format cleanly
				}
				return
			}
		}
	})
}
