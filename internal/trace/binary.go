package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"hwatch/internal/netem"
)

// Binary trace format ("HWT1"): a compact, stream-friendly record format
// for offline analysis of simulator packet traces, in the spirit of pcap.
//
//	file   := magic record*
//	magic  := "HWT1"
//	record := time:i64 dir:u8 hostLen:u8 host:bytes
//	          src:i32 dst:i32 sport:u16 dport:u16
//	          seq:i64 ack:i64 flags:u8 ecn:u8 probe:u8
//	          payload:u32 wire:u32 rwnd:u16
//
// All integers are big endian.

var binMagic = [4]byte{'H', 'W', 'T', '1'}

// Record is one decoded trace record.
type Record struct {
	T    int64
	Dir  Dir
	Host string

	Src, Dst         netem.NodeID
	SrcPort, DstPort uint16
	Seq, Ack         int64
	Flags            netem.TCPFlags
	ECN              netem.ECN
	Probe            bool
	Payload, Wire    int
	Rwnd             uint16
}

// BinaryWriter streams records to w.
type BinaryWriter struct {
	w   *bufio.Writer
	n   int64
	err error
}

// NewBinaryWriter writes the magic and returns a writer.
func NewBinaryWriter(w io.Writer) (*BinaryWriter, error) {
	bw := &BinaryWriter{w: bufio.NewWriter(w)}
	if _, err := bw.w.Write(binMagic[:]); err != nil {
		return nil, err
	}
	return bw, nil
}

// Write appends one record built from a live packet observation.
func (bw *BinaryWriter) Write(t int64, d Dir, host string, p *netem.Packet) error {
	if bw.err != nil {
		return bw.err
	}
	if len(host) > 255 {
		host = host[:255]
	}
	var buf [64]byte
	binary.BigEndian.PutUint64(buf[0:], uint64(t))
	buf[8] = byte(d)
	buf[9] = byte(len(host))
	bw.put(buf[:10])
	bw.putString(host)

	binary.BigEndian.PutUint32(buf[0:], uint32(p.Src))
	binary.BigEndian.PutUint32(buf[4:], uint32(p.Dst))
	binary.BigEndian.PutUint16(buf[8:], p.SrcPort)
	binary.BigEndian.PutUint16(buf[10:], p.DstPort)
	binary.BigEndian.PutUint64(buf[12:], uint64(p.Seq))
	binary.BigEndian.PutUint64(buf[20:], uint64(p.Ack))
	buf[28] = byte(p.Flags)
	buf[29] = byte(p.ECN)
	if p.Probe {
		buf[30] = 1
	} else {
		buf[30] = 0
	}
	binary.BigEndian.PutUint32(buf[31:], uint32(p.Payload))
	binary.BigEndian.PutUint32(buf[35:], uint32(p.Wire))
	binary.BigEndian.PutUint16(buf[39:], p.Rwnd)
	bw.put(buf[:41])
	if bw.err == nil {
		bw.n++
	}
	return bw.err
}

func (bw *BinaryWriter) put(b []byte) {
	if bw.err != nil {
		return
	}
	_, bw.err = bw.w.Write(b)
}

// putString writes s without the []byte(s) copy Write would force.
func (bw *BinaryWriter) putString(s string) {
	if bw.err != nil {
		return
	}
	_, bw.err = bw.w.WriteString(s)
}

// Count returns the records written.
func (bw *BinaryWriter) Count() int64 { return bw.n }

// Flush drains buffered bytes to the underlying writer.
func (bw *BinaryWriter) Flush() error {
	if bw.err != nil {
		return bw.err
	}
	return bw.w.Flush()
}

// BinaryReader decodes a trace stream.
type BinaryReader struct {
	r *bufio.Reader
}

// NewBinaryReader validates the magic and returns a reader.
func NewBinaryReader(r io.Reader) (*BinaryReader, error) {
	br := &BinaryReader{r: bufio.NewReader(r)}
	var m [4]byte
	if _, err := io.ReadFull(br.r, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != binMagic {
		return nil, errors.New("trace: not an HWT1 stream")
	}
	return br, nil
}

// Next decodes one record; io.EOF at a clean end of stream.
func (br *BinaryReader) Next() (Record, error) {
	var rec Record
	var head [10]byte
	if _, err := io.ReadFull(br.r, head[:]); err != nil {
		if err == io.EOF {
			return rec, io.EOF
		}
		return rec, fmt.Errorf("trace: record header: %w", err)
	}
	rec.T = int64(binary.BigEndian.Uint64(head[0:]))
	rec.Dir = Dir(head[8])
	host := make([]byte, head[9])
	if _, err := io.ReadFull(br.r, host); err != nil {
		return rec, fmt.Errorf("trace: host name: %w", err)
	}
	rec.Host = string(host)

	var body [41]byte
	if _, err := io.ReadFull(br.r, body[:]); err != nil {
		return rec, fmt.Errorf("trace: record body: %w", err)
	}
	rec.Src = netem.NodeID(binary.BigEndian.Uint32(body[0:]))
	rec.Dst = netem.NodeID(binary.BigEndian.Uint32(body[4:]))
	rec.SrcPort = binary.BigEndian.Uint16(body[8:])
	rec.DstPort = binary.BigEndian.Uint16(body[10:])
	rec.Seq = int64(binary.BigEndian.Uint64(body[12:]))
	rec.Ack = int64(binary.BigEndian.Uint64(body[20:]))
	rec.Flags = netem.TCPFlags(body[28])
	rec.ECN = netem.ECN(body[29])
	rec.Probe = body[30] == 1
	rec.Payload = int(binary.BigEndian.Uint32(body[31:]))
	rec.Wire = int(binary.BigEndian.Uint32(body[35:]))
	rec.Rwnd = binary.BigEndian.Uint16(body[39:])
	return rec, nil
}

// ReadAll decodes the remaining records.
func (br *BinaryReader) ReadAll() ([]Record, error) {
	var out []Record
	for {
		rec, err := br.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

// BinaryTap installs a host filter streaming every observed packet to bw.
func BinaryTap(h *netem.Host, bw *BinaryWriter) {
	h.AddFilter(&binTap{w: bw, host: h})
}

type binTap struct {
	w    *BinaryWriter
	host *netem.Host
}

func (t *binTap) Name() string { return "bintrace" }

func (t *binTap) Outbound(p *netem.Packet) netem.Verdict {
	t.w.Write(t.host.Eng.Now(), Out, t.host.Name, p)
	return netem.VerdictPass
}

func (t *binTap) Inbound(p *netem.Packet) netem.Verdict {
	t.w.Write(t.host.Eng.Now(), In, t.host.Name, p)
	return netem.VerdictPass
}
