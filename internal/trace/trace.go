// Package trace provides tcpdump-style packet tracing for the simulator:
// pass-through host filters that log every packet crossing a host's
// ingress/egress chains, either streamed to an io.Writer or retained in a
// bounded ring for post-mortem dumps. Tracing is an observer — verdicts
// are always pass, packets are never mutated.
package trace

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"hwatch/internal/netem"
	"hwatch/internal/sim"
)

// Dir is the direction of a traced packet relative to the host.
type Dir int

const (
	// Out is guest -> network.
	Out Dir = iota
	// In is network -> guest.
	In
)

func (d Dir) String() string {
	if d == Out {
		return ">"
	}
	return "<"
}

// Event is one traced packet observation.
type Event struct {
	T    int64 // simulation time, ns
	Host string
	Dir  Dir
	// Summary is the packet's String() at observation time (packets are
	// mutable in flight, so the text is captured eagerly).
	Summary string
}

func (e Event) String() string {
	return fmt.Sprintf("%10.3fus %-8s %s %s",
		float64(e.T)/float64(sim.Microsecond), e.Host, e.Dir, e.Summary)
}

// Tracer collects events from any number of host taps. Safe for the
// single-goroutine simulator; the mutex only guards post-run readers.
type Tracer struct {
	mu     sync.Mutex
	w      io.Writer // nil = ring only
	ring   []Event
	max    int
	next   int
	filled bool
	total  int64

	// Match, when non-nil, restricts tracing to matching packets.
	Match func(*netem.Packet) bool
}

// NewTracer returns a tracer that keeps the last ringSize events (0
// disables retention) and, if w is non-nil, streams every event to it.
func NewTracer(w io.Writer, ringSize int) *Tracer {
	t := &Tracer{w: w, max: ringSize}
	if ringSize > 0 {
		t.ring = make([]Event, ringSize)
	}
	return t
}

// Total returns how many events were observed (including ones evicted
// from the ring).
func (t *Tracer) Total() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Events returns the retained events, oldest first.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.max == 0 {
		return nil
	}
	if !t.filled {
		out := make([]Event, t.next)
		copy(out, t.ring[:t.next])
		return out
	}
	out := make([]Event, 0, t.max)
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Dump renders the retained events as text.
func (t *Tracer) Dump() string {
	var b strings.Builder
	for _, e := range t.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

func (t *Tracer) record(eng *sim.Engine, host string, d Dir, p *netem.Packet) {
	if t.Match != nil && !t.Match(p) {
		return
	}
	e := Event{T: eng.Now(), Host: host, Dir: d, Summary: p.String()}
	t.mu.Lock()
	t.total++
	if t.max > 0 {
		t.ring[t.next] = e
		t.next++
		if t.next == t.max {
			t.next = 0
			t.filled = true
		}
	}
	w := t.w
	t.mu.Unlock()
	if w != nil {
		fmt.Fprintln(w, e)
	}
}

// Tap installs a pass-through tracing filter on the host. Install it
// before other filters to see guest-generated packets pre-shim, or after
// to see the shim's rewrites.
func (t *Tracer) Tap(h *netem.Host) {
	h.AddFilter(&tap{tracer: t, host: h})
}

type tap struct {
	tracer *Tracer
	host   *netem.Host
}

func (tp *tap) Name() string { return "trace" }

func (tp *tap) Outbound(p *netem.Packet) netem.Verdict {
	tp.tracer.record(tp.host.Eng, tp.host.Name, Out, p)
	return netem.VerdictPass
}

func (tp *tap) Inbound(p *netem.Packet) netem.Verdict {
	tp.tracer.record(tp.host.Eng, tp.host.Name, In, p)
	return netem.VerdictPass
}

// FlowMatch returns a Match predicate selecting one connection (either
// direction) by its data-direction 4-tuple.
func FlowMatch(k netem.FlowKey) func(*netem.Packet) bool {
	r := k.Reverse()
	return func(p *netem.Packet) bool {
		fk := p.FlowKey()
		return fk == k || fk == r
	}
}
