package trace

import (
	"strings"
	"testing"

	"hwatch/internal/aqm"
	"hwatch/internal/netem"
	"hwatch/internal/sim"
	"hwatch/internal/tcp"
)

func miniNet() (*netem.Network, *netem.Host, *netem.Host) {
	n := netem.NewNetwork()
	a, b := n.NewHost("a"), n.NewHost("b")
	sw := n.NewSwitch("sw")
	q := func() netem.Queue { return aqm.NewDropTail(1000) }
	n.LinkHostSwitch(a, sw, q(), q(), 1e9, sim.Microsecond)
	n.LinkHostSwitch(b, sw, q(), q(), 1e9, sim.Microsecond)
	return n, a, b
}

func TestTracerCapturesBothDirections(t *testing.T) {
	n, a, b := miniNet()
	var sb strings.Builder
	tr := NewTracer(&sb, 1000)
	tr.Tap(a)
	tr.Tap(b)

	cfg := tcp.DefaultConfig()
	b.Listen(80, tcp.NewListener(b, cfg, nil))
	s := tcp.NewSender(a, b.ID, 80, 5000, cfg)
	done := false
	s.OnComplete = func(int64) { done = true }
	s.Start()
	n.Eng.RunUntil(sim.Second)
	if !done {
		t.Fatal("flow incomplete")
	}

	events := tr.Events()
	if len(events) == 0 || tr.Total() == 0 {
		t.Fatal("no events traced")
	}
	var sawSyn, sawOutA, sawInB bool
	for _, e := range events {
		if strings.Contains(e.Summary, "SYN") {
			sawSyn = true
		}
		if e.Host == "a" && e.Dir == Out {
			sawOutA = true
		}
		if e.Host == "b" && e.Dir == In {
			sawInB = true
		}
	}
	if !sawSyn || !sawOutA || !sawInB {
		t.Fatalf("missing event classes: syn=%v outA=%v inB=%v", sawSyn, sawOutA, sawInB)
	}
	// Stream and dump agree in volume.
	if strings.Count(sb.String(), "\n") != len(events) {
		t.Fatalf("stream lines %d != ring %d", strings.Count(sb.String(), "\n"), len(events))
	}
	if !strings.Contains(tr.Dump(), "SYN") {
		t.Fatal("dump lost the SYN")
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(nil, 4)
	eng := sim.New()
	for i := 0; i < 10; i++ {
		tr.record(eng, "h", Out, &netem.Packet{ID: uint64(i)})
	}
	ev := tr.Events()
	if len(ev) != 4 {
		t.Fatalf("ring holds %d, want 4", len(ev))
	}
	if !strings.Contains(ev[0].Summary, "#6") || !strings.Contains(ev[3].Summary, "#9") {
		t.Fatalf("eviction order wrong: %v .. %v", ev[0].Summary, ev[3].Summary)
	}
	if tr.Total() != 10 {
		t.Fatalf("total = %d", tr.Total())
	}
}

func TestTracerMatchFilter(t *testing.T) {
	n, a, b := miniNet()
	tr := NewTracer(nil, 1000)
	key := netem.FlowKey{Src: a.ID, Dst: b.ID, SrcPort: 33000, DstPort: 80}
	tr.Match = FlowMatch(key)
	tr.Tap(a)

	cfg := tcp.DefaultConfig()
	b.Listen(80, tcp.NewListener(b, cfg, nil))
	b.Listen(81, tcp.NewListener(b, cfg, nil))
	tcp.NewSender(a, b.ID, 80, 3000, cfg).Start() // gets sport 33000
	tcp.NewSender(a, b.ID, 81, 3000, cfg).Start() // sport 33001: filtered out
	n.Eng.RunUntil(sim.Second)

	for _, e := range tr.Events() {
		if strings.Contains(e.Summary, ":81") || strings.Contains(e.Summary, "33001") {
			t.Fatalf("unmatched flow traced: %s", e.Summary)
		}
	}
	if tr.Total() == 0 {
		t.Fatal("matched flow not traced")
	}
}

func TestTracerZeroRing(t *testing.T) {
	tr := NewTracer(nil, 0)
	eng := sim.New()
	tr.record(eng, "h", In, &netem.Packet{})
	if tr.Events() != nil {
		t.Fatal("zero-ring tracer retained events")
	}
	if tr.Total() != 1 {
		t.Fatal("total not counted")
	}
	if tr.Dump() != "" {
		t.Fatal("dump not empty")
	}
}
