package trace

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"hwatch/internal/netem"
	"hwatch/internal/sim"
	"hwatch/internal/tcp"
)

func TestBinaryRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	bw, err := NewBinaryWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p := &netem.Packet{
		Src: 3, Dst: 9, SrcPort: 33000, DstPort: 80,
		Seq: 1443, Ack: 1, Flags: netem.FlagACK | netem.FlagECE,
		ECN: netem.CE, Payload: 1442, Wire: 1500, Rwnd: 451, Probe: false,
	}
	if err := bw.Write(123456, Out, "srv1.vm0", p); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if bw.Count() != 1 {
		t.Fatalf("count = %d", bw.Count())
	}

	br, err := NewBinaryReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := br.Next()
	if err != nil {
		t.Fatal(err)
	}
	if rec.T != 123456 || rec.Dir != Out || rec.Host != "srv1.vm0" {
		t.Fatalf("header mismatch: %+v", rec)
	}
	if rec.Src != 3 || rec.Dst != 9 || rec.Seq != 1443 || rec.Rwnd != 451 ||
		rec.Flags != (netem.FlagACK|netem.FlagECE) || rec.ECN != netem.CE ||
		rec.Payload != 1442 || rec.Wire != 1500 {
		t.Fatalf("body mismatch: %+v", rec)
	}
	if _, err := br.Next(); err != io.EOF {
		t.Fatalf("expected clean EOF, got %v", err)
	}
}

// Property: arbitrary records survive the round trip byte-exact.
func TestPropertyBinaryRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var buf bytes.Buffer
		bw, _ := NewBinaryWriter(&buf)
		var want []Record
		for i := 0; i < int(n); i++ {
			p := &netem.Packet{
				Src:     netem.NodeID(rng.Int31()),
				Dst:     netem.NodeID(rng.Int31()),
				SrcPort: uint16(rng.Intn(65536)),
				DstPort: uint16(rng.Intn(65536)),
				Seq:     rng.Int63(),
				Ack:     rng.Int63(),
				Flags:   netem.TCPFlags(rng.Intn(256)),
				ECN:     netem.ECN(rng.Intn(4)),
				Probe:   rng.Intn(2) == 1,
				Payload: rng.Intn(1 << 20),
				Wire:    rng.Intn(1 << 20),
				Rwnd:    uint16(rng.Intn(65536)),
			}
			tm := rng.Int63()
			d := Dir(rng.Intn(2))
			host := "h"
			bw.Write(tm, d, host, p)
			want = append(want, Record{
				T: tm, Dir: d, Host: host,
				Src: p.Src, Dst: p.Dst, SrcPort: p.SrcPort, DstPort: p.DstPort,
				Seq: p.Seq, Ack: p.Ack, Flags: p.Flags, ECN: p.ECN,
				Probe: p.Probe, Payload: p.Payload, Wire: p.Wire, Rwnd: p.Rwnd,
			})
		}
		bw.Flush()
		br, err := NewBinaryReader(&buf)
		if err != nil {
			return false
		}
		got, err := br.ReadAll()
		if err != nil || len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryBadMagic(t *testing.T) {
	if _, err := NewBinaryReader(bytes.NewReader([]byte("NOPE????"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := NewBinaryReader(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestBinaryTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	bw, _ := NewBinaryWriter(&buf)
	bw.Write(1, In, "h", &netem.Packet{})
	bw.Flush()
	raw := buf.Bytes()
	br, err := NewBinaryReader(bytes.NewReader(raw[:len(raw)-5]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := br.Next(); err == nil || err == io.EOF {
		t.Fatalf("truncation not reported: %v", err)
	}
}

func TestBinaryTapEndToEnd(t *testing.T) {
	n, a, b := miniNet()
	var buf bytes.Buffer
	bw, _ := NewBinaryWriter(&buf)
	BinaryTap(a, bw)
	BinaryTap(b, bw)
	cfg := tcp.DefaultConfig()
	b.Listen(80, tcp.NewListener(b, cfg, nil))
	s := tcp.NewSender(a, b.ID, 80, 20_000, cfg)
	s.Start()
	n.Eng.RunUntil(sim.Second)
	if !s.Done() {
		t.Fatal("flow incomplete")
	}
	bw.Flush()

	br, err := NewBinaryReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := br.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(recs)) != bw.Count() || len(recs) == 0 {
		t.Fatalf("records %d vs count %d", len(recs), bw.Count())
	}
	// Time-ordered per tap pair and flags present.
	sawSyn := false
	for _, r := range recs {
		if r.Flags.Has(netem.FlagSYN) {
			sawSyn = true
		}
	}
	if !sawSyn {
		t.Fatal("handshake missing from trace")
	}
}
