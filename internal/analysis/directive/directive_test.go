package directive_test

import (
	"testing"

	"hwatch/internal/analysis/atest"
	"hwatch/internal/analysis/directive"
)

// TestDirective exercises the suppression lifecycle end to end: a used
// allow is silent, a stale allow and malformed/unknown directives are
// reported at the directive itself.
func TestDirective(t *testing.T) {
	atest.Run(t, "testdata/src/a", "hwatch/internal/netem/a", directive.Analyzer)
}
