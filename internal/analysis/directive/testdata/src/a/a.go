// Fixture for the directive analyzer: loaded under the package path
// hwatch/internal/netem/a so the required analyzers are in scope. A used
// allow stays silent; a stale, unknown-verb or unknown-analyzer directive
// is reported at the directive itself.
package a

type Event struct{}

type Engine struct{}

func (e *Engine) Schedule(delay int64, fn func()) *Event { return &Event{} }

type Packet struct{ ID int }

func AllocPacket() *Packet    { return &Packet{} }
func ReleasePacket(p *Packet) {}
func Send(p *Packet)          {}

type Host struct{ eng *Engine }

func (h *Host) deliver(p *Packet) {}

func usedAllow(h *Host, p *Packet) {
	//hwatchvet:allow schedclosure cold path, runs once per scenario setup
	h.eng.Schedule(1, func() { h.deliver(p) })
}

func staleAllow() {
	//hwatchvet:allow pktown nothing on this line leaks // want `stale //hwatchvet:allow pktown directive`
	p := AllocPacket()
	Send(p)
}

func badVerb() {
	//hwatchvet:deny pktown not a real verb // want `malformed hwatchvet directive: unknown verb "deny"`
	p := AllocPacket()
	Send(p)
}

func unknownAnalyzer() {
	//hwatchvet:allow nosuch imaginary analyzer // want `names unknown analyzer "nosuch"`
	p := AllocPacket()
	Send(p)
}
