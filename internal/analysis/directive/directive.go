// Package directive defines the analyzer that keeps the //hwatchvet:allow
// suppression system honest. It validates directive syntax (known verb,
// known analyzer name, mandatory reason) and reports directives that did
// not suppress any finding this run — stale allows whose code has since
// been fixed or moved. A suppression that outlives its finding is deleted,
// not inherited.
package directive

import (
	"golang.org/x/tools/go/analysis"

	"hwatch/internal/analysis/allowdir"
	"hwatch/internal/analysis/ctxflow"
	"hwatch/internal/analysis/detrand"
	"hwatch/internal/analysis/hookpure"
	"hwatch/internal/analysis/lockscope"
	"hwatch/internal/analysis/pktown"
	"hwatch/internal/analysis/schedclosure"
)

// requires is named separately so run can range over it without forming
// an initialization cycle through Analyzer.
var requires = []*analysis.Analyzer{
	detrand.Analyzer,
	pktown.Analyzer,
	schedclosure.Analyzer,
	lockscope.Analyzer,
	hookpure.Analyzer,
	ctxflow.Analyzer,
}

var Analyzer = &analysis.Analyzer{
	Name: "hwatchdirective",
	Doc: "validate //hwatchvet:allow suppression directives and report stale " +
		"ones that no longer suppress any finding",
	Requires: requires,
	Run:      run,
}

// knownAnalyzers are the names an allow directive may target.
var knownAnalyzers = map[string]bool{
	"ctxflow":      true,
	"detrand":      true,
	"hookpure":     true,
	"lockscope":    true,
	"pktown":       true,
	"schedclosure": true,
}

func run(pass *analysis.Pass) (any, error) {
	// Union of directives each analyzer consumed while suppressing.
	used := allowdir.Used{}
	for _, req := range requires {
		res := pass.ResultOf[req]
		if res == nil {
			continue
		}
		if u, ok := res.(allowdir.Used); ok {
			for pos := range u {
				used[pos] = true
			}
		}
	}

	set := allowdir.Collect(pass)
	for _, d := range set.All() {
		switch {
		case d.Err != "":
			pass.Reportf(d.Pos, "malformed hwatchvet directive: %s", d.Err)
		case !knownAnalyzers[d.Analyzer]:
			pass.Reportf(d.Pos, "hwatchvet directive names unknown analyzer %q (known: ctxflow, detrand, hookpure, lockscope, pktown, schedclosure)", d.Analyzer)
		case !used[d.Pos]:
			pass.Reportf(d.Pos, "stale //hwatchvet:allow %s directive: it suppresses no finding; delete it", d.Analyzer)
		}
	}
	return nil, nil
}
