// Fixture for the vendored SSA-backed unusedwrite pass: a field write to
// a non-escaping struct local with no reachable read flags; read fields,
// escaping structs, and whole-struct reads stay silent.
package a

type point struct{ x, y int }

func deadFieldWrite() int {
	var p point
	p.x = 1 // want `unused write to field x`
	p.y = 2
	return p.y
}

func wholeStructRead() point {
	var p point
	p.x = 1
	p.y = 2
	return p
}

func escapes() *point {
	var p point
	p.x = 1
	return &p
}
