// Fixture for the vendored SSA-backed nilness pass: definite-nil
// dereferences flag, nil-checked paths stay silent.
package a

type T struct{ n int }

func definiteNil() int {
	var p *T
	return p.n // want `nil dereference in field selection`
}

func refinedNil(p *T) int {
	if p == nil {
		return p.n // want `nil dereference in field selection`
	}
	return p.n
}

func checkedFirst(p *T) int {
	if p != nil {
		return p.n
	}
	return 0
}

func assignedBeforeUse() int {
	var p *T
	p = &T{n: 3}
	return p.n
}
