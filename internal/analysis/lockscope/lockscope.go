// Package lockscope defines an analyzer that forbids holding a
// sync.Mutex or sync.RWMutex across a blocking operation: a channel
// send or receive (ctx.Done() waits included), time.Sleep,
// sync.WaitGroup/Cond waits, net / net/http calls, and harness.Pool
// submission (Pool.Go blocks on the worker semaphore).
//
// A goroutine that blocks while holding a lock stalls every other
// goroutine contending for it; in hwatchd that turns one slow tenant
// into whole-service head-of-line blocking on the active-map, cache,
// and admission locks. The analyzer runs a forward must-hold dataflow
// over the naive-form SSA of each function (lock identity is the
// receiver's root+field path, so s.mu and c.mu never alias) and follows
// same-package static calls to find blocking operations one level
// removed. A deferred Unlock keeps the lock held to function end, so
// everything after `mu.Lock(); defer mu.Unlock()` is in scope.
//
// Receives inside a select that has a default clause are non-blocking
// polls and are not flagged.
package lockscope

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"regexp"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/buildssa"
	"golang.org/x/tools/go/ssa"

	"hwatch/internal/analysis/allowdir"
)

// DefaultScope matches every first-party package; the lock contract is
// global, not simulator-specific.
const DefaultScope = `^hwatch/`

var Analyzer = &analysis.Analyzer{
	Name: "lockscope",
	Doc: "forbid holding a sync.Mutex/RWMutex across blocking operations " +
		"(channel ops, ctx.Done waits, sleeps, network calls, pool submission)",
	Requires:   []*analysis.Analyzer{buildssa.Analyzer},
	ResultType: usedType,
	Run:        run,
}

var scope = DefaultScope

func init() {
	Analyzer.Flags.StringVar(&scope, "scope", DefaultScope,
		"regexp of package paths under the lock-scope contract")
}

func run(pass *analysis.Pass) (any, error) {
	used := allowdir.Used{}
	re, err := regexp.Compile(scope)
	if err != nil {
		return nil, err
	}
	if !re.MatchString(pass.Pkg.Path()) {
		return used, nil
	}
	set := allowdir.Collect(pass)
	prog := pass.ResultOf[buildssa.Analyzer].(*buildssa.SSA)

	c := &checker{
		pass:  pass,
		set:   set,
		used:  used,
		funcs: make(map[*types.Func]*ssa.Function),
		memo:  make(map[*types.Func]string),
	}
	for _, fn := range prog.SrcFuncs {
		if fn.Object != nil {
			c.funcs[fn.Object] = fn
		}
	}
	for _, fn := range prog.SrcFuncs {
		if fn.Blocks == nil {
			continue
		}
		if strings.HasSuffix(pass.Fset.Position(fn.Syntax.Pos()).Filename, "_test.go") {
			continue
		}
		c.checkFunc(fn)
	}
	return used, nil
}

type checker struct {
	pass  *analysis.Pass
	set   *allowdir.Set
	used  allowdir.Used
	funcs map[*types.Func]*ssa.Function
	memo  map[*types.Func]string // interprocedural blocking cache; "" = does not block
}

// heldSet maps a lock's root+field path to the position it was acquired.
type heldSet map[string]token.Pos

func (h heldSet) clone() heldSet {
	out := make(heldSet, len(h))
	for k, v := range h {
		out[k] = v
	}
	return out
}

// intersect keeps only locks held on every path (must-hold join).
func intersect(a, b heldSet) heldSet {
	out := make(heldSet)
	for k, v := range a {
		if _, ok := b[k]; ok {
			out[k] = v
		}
	}
	return out
}

func equalHeld(a, b heldSet) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

func (c *checker) checkFunc(fn *ssa.Function) {
	polls := defaultSelectComms(fn.Syntax)

	in := make([]heldSet, len(fn.Blocks))
	in[0] = heldSet{}
	work := []*ssa.BasicBlock{fn.Blocks[0]}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		out := c.flow(b, in[b.Index].clone(), polls, false)
		for _, succ := range b.Succs {
			if in[succ.Index] == nil {
				in[succ.Index] = out.clone()
				work = append(work, succ)
			} else if joined := intersect(in[succ.Index], out); !equalHeld(joined, in[succ.Index]) {
				in[succ.Index] = joined
				work = append(work, succ)
			}
		}
	}
	for _, b := range fn.Blocks {
		if in[b.Index] == nil {
			continue
		}
		c.flow(b, in[b.Index].clone(), polls, true)
	}
}

// flow advances the held-lock set through one block, reporting blocking
// operations encountered while any lock is held when report is set.
func (c *checker) flow(b *ssa.BasicBlock, held heldSet, polls posRanges, report bool) heldSet {
	blockingOp := func(pos token.Pos, why string) {
		if !report || len(held) == 0 {
			return
		}
		for name := range held {
			allowdir.Report(c.pass, c.set, c.used, "lockscope", pos,
				"%s is held across %s: a blocked holder stalls every contender — release the lock first or move the blocking work out", name, why)
		}
	}
	for _, instr := range b.Instrs {
		switch instr := instr.(type) {
		case *ssa.Send:
			if !polls.contains(instr.Pos()) {
				blockingOp(instr.Pos(), "a channel send")
			}
		case *ssa.UnOp:
			if instr.Op == token.ARROW && !polls.contains(instr.Pos()) {
				blockingOp(instr.Pos(), "a channel receive")
			}
		case *ssa.Call:
			if name, op, ok := lockOp(instr.Common); ok {
				switch op {
				case "Lock", "RLock":
					held[name] = instr.Pos()
				case "Unlock", "RUnlock":
					delete(held, name)
				}
				continue
			}
			if why := c.blockingCall(instr.Common); why != "" {
				blockingOp(instr.Pos(), why)
			}
		case *ssa.Defer:
			// Deferred Unlock runs at return: the lock stays held for the
			// rest of the function, which the flow models by simply not
			// removing it here.
		}
	}
	return held
}

// lockOp classifies a call as a lock acquire/release on a sync mutex and
// returns the lock's path key. TryLock is ignored: it may fail, so
// treating it as an acquire would be unsound must-hold state.
func lockOp(common ssa.CallCommon) (name, op string, ok bool) {
	fn := common.Callee
	if fn == nil || common.Recv == nil {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	recv := recvTypeName(fn)
	if recv != "Mutex" && recv != "RWMutex" {
		return "", "", false
	}
	return describe(common.Recv), fn.Name(), true
}

// blockingCall classifies a call as a blocking operation, following
// same-package static callees interprocedurally.
func (c *checker) blockingCall(common ssa.CallCommon) string {
	fn := common.Callee
	if fn == nil {
		return "" // dynamic call: unknown, stay silent
	}
	if recv := recvTypeName(fn); recv != "" {
		pkg := pkgPath(fn)
		switch {
		case pkg == "sync" && recv == "WaitGroup" && fn.Name() == "Wait":
			return "sync.WaitGroup.Wait"
		case pkg == "sync" && recv == "Cond" && fn.Name() == "Wait":
			return "sync.Cond.Wait"
		case recv == "Pool" && pkg != "sync" &&
			(fn.Name() == "Go" || fn.Name() == "Wait"):
			// harness.Pool (or a lookalike): Go blocks on the semaphore,
			// Wait on outstanding work.
			return "Pool." + fn.Name() + " (pool submission blocks on the worker semaphore)"
		case strings.HasPrefix(pkg, "net"):
			return pkg + " " + recv + "." + fn.Name() + " (network I/O)"
		}
		if fn.Pkg() == nil {
			return ""
		}
		if samePkg(c.pass, fn) {
			return c.funcBlocks(fn)
		}
		return ""
	}
	pkg := pkgPath(fn)
	switch {
	case pkg == "time" && fn.Name() == "Sleep":
		return "time.Sleep"
	case strings.HasPrefix(pkg, "net"):
		return pkg + "." + fn.Name() + " (network I/O)"
	case strings.HasSuffix(pkg, "/harness") && fn.Name() == "Map":
		return "harness.Map (pool submission blocks on the worker semaphore)"
	}
	if samePkg(c.pass, fn) {
		return c.funcBlocks(fn)
	}
	return ""
}

func samePkg(pass *analysis.Pass, fn *types.Func) bool {
	return fn.Pkg() == pass.Pkg
}

// funcBlocks reports whether a same-package function contains a blocking
// operation, memoized; in-progress entries read as "" to break cycles.
func (c *checker) funcBlocks(fn *types.Func) string {
	if why, ok := c.memo[fn]; ok {
		return why
	}
	c.memo[fn] = ""
	sfn := c.funcs[fn]
	if sfn == nil || sfn.Blocks == nil {
		return ""
	}
	polls := defaultSelectComms(sfn.Syntax)
	var why string
	for _, b := range sfn.Blocks {
		for _, instr := range b.Instrs {
			switch instr := instr.(type) {
			case *ssa.Send:
				if !polls.contains(instr.Pos()) {
					why = "a channel send"
				}
			case *ssa.UnOp:
				if instr.Op == token.ARROW && !polls.contains(instr.Pos()) {
					why = "a channel receive"
				}
			case *ssa.Call:
				if _, _, isLock := lockOp(instr.Common); isLock {
					continue
				}
				if w := c.blockingCall(instr.Common); w != "" {
					why = w
				}
			}
			if why != "" {
				c.memo[fn] = fmt.Sprintf("%s (which blocks on %s)", fn.Name(), why)
				return c.memo[fn]
			}
		}
	}
	return ""
}

// describe renders a lock receiver as its root+field path (s.mu, c.mu,
// pkg-level mu). Unrecognized shapes get a unique key so distinct
// unknown receivers never alias each other.
func describe(v ssa.Value) string {
	switch v := v.(type) {
	case *ssa.Load:
		return describe(v.X)
	case *ssa.FieldAddr:
		name := "?"
		if v.Var != nil {
			name = v.Var.Name()
		}
		return describe(v.X) + "." + name
	case *ssa.Alloc:
		if v.Obj != nil {
			return v.Obj.Name()
		}
	case *ssa.Global:
		return v.Obj.Name()
	case *ssa.FreeVar:
		return v.Obj.Name()
	case *ssa.Parameter:
		return v.Obj.Name()
	}
	return fmt.Sprintf("lock@%p", v)
}

func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	recv := sig.Recv()
	if recv == nil {
		return ""
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

func pkgPath(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// posRanges are the source ranges of comm statements belonging to
// selects that have a default clause: receives there are polls.
type posRanges [][2]token.Pos

func (r posRanges) contains(p token.Pos) bool {
	for _, pr := range r {
		if pr[0] <= p && p <= pr[1] {
			return true
		}
	}
	return false
}

func defaultSelectComms(syntax ast.Node) posRanges {
	var out posRanges
	if syntax == nil {
		return out
	}
	ast.Inspect(syntax, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, cl := range sel.Body.List {
			if comm, ok := cl.(*ast.CommClause); ok && comm.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			return true
		}
		for _, cl := range sel.Body.List {
			if comm, ok := cl.(*ast.CommClause); ok && comm.Comm != nil {
				out = append(out, [2]token.Pos{comm.Comm.Pos(), comm.Comm.End()})
			}
		}
		return true
	})
	return out
}

var usedType = reflect.TypeOf(allowdir.Used{})
