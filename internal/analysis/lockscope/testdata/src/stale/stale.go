// Fixture for the stale-allow path: nothing here blocks under a lock, so
// the directive analyzer must flag the allow as stale. Loaded under the
// package path hwatch/internal/server/stale.
package stale

import "sync"

type S struct {
	mu sync.Mutex
	n  int
}

func (s *S) bump() {
	//hwatchvet:allow lockscope nothing blocks under this lock // want `stale //hwatchvet:allow lockscope directive`
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}
