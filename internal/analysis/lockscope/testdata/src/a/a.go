// Fixture for the lockscope analyzer: loaded by atest under the package
// path hwatch/internal/server/a, which is inside the lock-scope contract.
package a

import (
	"sync"
	"time"
)

type S struct {
	mu sync.Mutex
	n  int
	ch chan int
}

func (s *S) sendHeld() {
	s.mu.Lock()
	s.ch <- 1 // want `s\.mu is held across a channel send`
	s.mu.Unlock()
}

func (s *S) recvHeld() {
	s.mu.Lock()
	defer s.mu.Unlock()
	<-s.ch // want `s\.mu is held across a channel receive`
}

func (s *S) sleepHeld() {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(time.Millisecond) // want `s\.mu is held across time\.Sleep`
}

func (s *S) wgHeld(wg *sync.WaitGroup) {
	s.mu.Lock()
	defer s.mu.Unlock()
	wg.Wait() // want `s\.mu is held across sync\.WaitGroup\.Wait`
}

// releasedFirst is the sanctioned shape: snapshot under the lock, block
// after releasing it.
func (s *S) releasedFirst() {
	s.mu.Lock()
	v := s.n
	s.mu.Unlock()
	s.ch <- v
}

// pollUnderLock: a select with a default clause is a non-blocking poll.
func (s *S) pollUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case v := <-s.ch:
		s.n = v
	default:
	}
}

// notify blocks on a channel send; the interprocedural reacher must see
// through the same-package call.
func (s *S) notify() { s.ch <- 1 }

func (s *S) viaHelper() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.notify() // want `s\.mu is held across notify \(which blocks on a channel send\)`
}

type T struct {
	mu  sync.RWMutex
	out chan int
}

func (t *T) rlockHeld() {
	t.mu.RLock()
	t.out <- 1 // want `t\.mu is held across a channel send`
	t.mu.RUnlock()
}

// distinctLocks: s.mu and t.mu never alias — releasing t.mu means the
// blocking send runs lock-free even though s.mu was touched earlier.
func distinctLocks(s *S, t *T) {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	t.mu.Lock()
	t.mu.Unlock()
	t.out <- 1
}

func (s *S) suppressed() {
	s.mu.Lock()
	//hwatchvet:allow lockscope buffered single-writer channel: capacity is sized to the worker count, the send never blocks
	s.ch <- 1
	s.mu.Unlock()
}
