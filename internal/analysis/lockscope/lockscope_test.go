package lockscope_test

import (
	"testing"

	"hwatch/internal/analysis/atest"
	"hwatch/internal/analysis/directive"
	"hwatch/internal/analysis/lockscope"
)

// TestLockscope exercises the must-hold dataflow against the fixture:
// blocking ops under a held mutex flag (including one static call away),
// released locks, default-select polls and allow-suppressed sites stay
// silent.
func TestLockscope(t *testing.T) {
	atest.Run(t, "testdata/src/a", "hwatch/internal/server/a", lockscope.Analyzer)
}

// TestLockscopeStaleAllow runs the directive analyzer (which requires
// lockscope) over a fixture whose allow suppresses nothing: the stale
// directive must be reported.
func TestLockscopeStaleAllow(t *testing.T) {
	atest.Run(t, "testdata/src/stale", "hwatch/internal/server/stale", directive.Analyzer)
}
