package hookpure_test

import (
	"testing"

	"hwatch/internal/analysis/atest"
	"hwatch/internal/analysis/directive"
	"hwatch/internal/analysis/hookpure"
)

// TestHookpure exercises the digest-neutrality contract against the
// fixture: scheduling and model-state writes reachable from poll hooks,
// barrier callbacks, Spec.Progress, and Observer.Finish flag; read-only
// hooks, Observer.Start wiring, local aggregation, and allow-suppressed
// sites stay silent.
func TestHookpure(t *testing.T) {
	atest.Run(t, "testdata/src/a", "hwatch/internal/sim/a", hookpure.Analyzer)
}

// TestHookpureStaleAllow runs the directive analyzer (which requires
// hookpure) over a fixture whose allow suppresses nothing: the stale
// directive must be reported.
func TestHookpureStaleAllow(t *testing.T) {
	atest.Run(t, "testdata/src/stale", "hwatch/internal/sim/stale", directive.Analyzer)
}
