// Fixture for the hookpure analyzer: loaded by atest under the package
// path hwatch/internal/sim/a, which is inside both the hook scope and the
// model-package scope (so the fixture's own types count as model state).
package a

type Event struct{}

type Engine struct{ now int64 }

func (e *Engine) Schedule(d int64, fn func()) *Event              { return &Event{} }
func (e *Engine) ScheduleArg(d int64, fn func(any), a any) *Event { return &Event{} }
func (e *Engine) SetPoll(fn func())                               {}
func (e *Engine) Now() int64                                      { return e.now }

type Group struct{}

func (g *Group) SetPoll(fn func())                                   {}
func (g *Group) OnBarrier(fn func(end int64))                        {}
func (g *Group) ScheduleArg(shard int, d int64, fn func(any), a any) {}

type Queue struct{ depth int }

type Stats struct{ Sent int }

type Spec struct {
	Progress func(now int64)
}

type Run struct{ Events uint64 }

// Observer is the fixture's stand-in for the scenario observer contract.
type Observer interface {
	Start(e *Engine)
	Finish(r *Run)
}

func wirePollSchedules(e *Engine) {
	e.SetPoll(func() { // want `poll hook is not digest-neutral: it can reach Engine\.Schedule`
		e.Schedule(1, func() {})
	})
}

// wirePollReads only reads engine state into an out-of-band gauge: the
// sanctioned hook shape.
func wirePollReads(e *Engine, gauge *int64) {
	e.SetPoll(func() { *gauge = e.Now() })
}

func wireBarrier(g *Group, q *Queue) {
	g.OnBarrier(func(end int64) { // want `barrier callback is not digest-neutral: it can reach a model-state write \(Queue\.depth\)`
		q.depth = 0
	})
}

// armTick schedules one static call away; the interprocedural reacher
// must see through it.
func armTick(e *Engine) { e.Schedule(1, func() {}) }

func wirePollViaHelper(e *Engine) {
	e.SetPoll(func() { armTick(e) }) // want `poll hook is not digest-neutral: it can reach Engine\.Schedule \(via armTick\)`
}

func buildSpec(q *Queue) *Spec {
	return &Spec{
		Progress: func(now int64) { q.depth++ }, // want `Spec\.Progress hook is not digest-neutral: it can reach a model-state write \(Queue\.depth\)`
	}
}

func retarget(s *Spec, e *Engine) {
	s.Progress = func(now int64) { // want `Spec\.Progress hook is not digest-neutral: it can reach Engine\.ScheduleArg`
		e.ScheduleArg(1, func(any) {}, nil)
	}
}

type pollObs struct{ q *Queue }

// Start is pre-run wiring: observers legitimately arm recurring events
// before the run begins, so scheduling here is sanctioned.
func (o *pollObs) Start(e *Engine) {
	e.Schedule(1, func() {})
}

func (o *pollObs) Finish(r *Run) { // want `Observer\.Finish is not digest-neutral: it can reach a model-state write \(Queue\.depth\)`
	o.q.depth = 0
}

type aggObs struct{}

func (o *aggObs) Start(e *Engine) {}

// Finish aggregating into a locally declared value is the sanctioned
// read-and-summarize shape, even though Stats is a model type here.
func (o *aggObs) Finish(r *Run) {
	agg := Stats{}
	agg.Sent += int(r.Events)
	_ = agg
}

func wireSuppressed(e *Engine) {
	//hwatchvet:allow hookpure the scheduled event is a no-op marker outside the digest window
	e.SetPoll(func() { e.Schedule(1, func() {}) })
}
