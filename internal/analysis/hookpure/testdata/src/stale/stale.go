// Fixture for the stale-allow path: the hook is pure, so the directive
// analyzer must flag the allow as stale. Loaded under the package path
// hwatch/internal/sim/stale.
package stale

type Engine struct{}

func (e *Engine) SetPoll(fn func()) {}

func wire(e *Engine) {
	//hwatchvet:allow hookpure the hook only reads engine gauges // want `stale //hwatchvet:allow hookpure directive`
	e.SetPoll(func() {})
}
