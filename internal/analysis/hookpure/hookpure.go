// Package hookpure defines an analyzer that keeps the engine's
// out-of-band callbacks digest-neutral: the sim.Engine/Group poll hook
// (SetPoll), Group barrier callbacks (OnBarrier), the scenario
// Spec.Progress hook, and every scenario.Observer Finish callback run
// interleaved with (or after) the deterministic event flow, so anything
// they schedule or mutate shifts event sequence numbers and rots the
// golden digests.
//
// The contract: a hook body, and everything reachable from it through
// same-package static calls, must not call Engine/Group scheduling
// entry points (Schedule, ScheduleArg, At, AtArg, ScheduleRemoteArg)
// and must not write fields of model-package state (sim, netem, tcp,
// core, aqm types). Observer.Start is deliberately out of scope — it is
// the pre-run wiring phase where observers legitimately arm recurring
// sample events before the run begins.
//
// The reachability style is the same memoized same-package reacher as
// detrand: cross-package calls other than the recognized sinks are
// assumed pure.
package hookpure

import (
	"go/ast"
	"go/types"
	"reflect"
	"regexp"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"hwatch/internal/analysis/allowdir"
)

// DefaultScope matches the packages that wire hooks into the engine.
const DefaultScope = `^hwatch/internal/(sim|netem|tcp|core|aqm|faults|experiments|scenario|stats|harness)(/|$)`

// modelPkgs matches the packages whose state is folded into digests:
// a hook writing a field of one of their types perturbs the run.
const modelPkgs = `^hwatch/internal/(sim|netem|tcp|core|aqm)(/|$)`

var Analyzer = &analysis.Analyzer{
	Name: "hookpure",
	Doc: "poll hooks, barrier callbacks, Spec.Progress, and Observer.Finish " +
		"must be digest-neutral: no reachable Engine/Group scheduling call, " +
		"no write to model-package state",
	Requires:   []*analysis.Analyzer{inspect.Analyzer},
	ResultType: usedType,
	Run:        run,
}

var scope = DefaultScope

func init() {
	Analyzer.Flags.StringVar(&scope, "scope", DefaultScope,
		"regexp of package paths under the hook-purity contract")
}

// schedNames are the Engine/Group scheduling entry points.
var schedNames = map[string]bool{
	"Schedule": true, "ScheduleArg": true, "At": true, "AtArg": true,
	"ScheduleRemoteArg": true,
}

var modelRE = regexp.MustCompile(modelPkgs)

func run(pass *analysis.Pass) (any, error) {
	used := allowdir.Used{}
	re, err := regexp.Compile(scope)
	if err != nil {
		return nil, err
	}
	if !re.MatchString(pass.Pkg.Path()) {
		return used, nil
	}
	set := allowdir.Collect(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	r := &reacher{pass: pass, decls: indexFuncDecls(pass), memo: make(map[*types.Func]string)}

	check := func(kind string, hook ast.Node) {
		body := hookBody(pass, r, hook)
		if body == nil {
			return
		}
		if why := r.bodyReaches(body); why != "" {
			allowdir.Report(pass, set, used, "hookpure", hook.Pos(),
				"%s is not digest-neutral: it can reach %s — hooks run out of band, so side effects shift event seq order and break golden digests", kind, why)
		}
	}

	nodeFilter := []ast.Node{
		(*ast.CallExpr)(nil),
		(*ast.CompositeLit)(nil),
		(*ast.AssignStmt)(nil),
		(*ast.FuncDecl)(nil),
	}
	ins.Preorder(nodeFilter, func(n ast.Node) {
		if strings.HasSuffix(pass.Fset.Position(n.Pos()).Filename, "_test.go") {
			return
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			// eng.SetPoll(hook) / group.SetPoll(hook) / group.OnBarrier(hook)
			fn, ok := typeutil.Callee(pass.TypesInfo, n).(*types.Func)
			if !ok || len(n.Args) == 0 {
				return
			}
			recv := recvTypeName(fn)
			switch {
			case fn.Name() == "SetPoll" && (recv == "Engine" || recv == "Group"):
				check("poll hook", n.Args[0])
			case fn.Name() == "OnBarrier" && recv == "Group":
				check("barrier callback", n.Args[0])
			}
		case *ast.CompositeLit:
			// Spec{..., Progress: hook, ...}
			if typeName(pass.TypesInfo.TypeOf(n)) != "Spec" {
				return
			}
			for _, elt := range n.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Progress" {
					check("Spec.Progress hook", kv.Value)
				}
			}
		case *ast.AssignStmt:
			// spec.Progress = hook
			for i, lhs := range n.Lhs {
				sel, ok := lhs.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Progress" || i >= len(n.Rhs) {
					continue
				}
				if typeName(pass.TypesInfo.TypeOf(sel.X)) == "Spec" {
					check("Spec.Progress hook", n.Rhs[i])
				}
			}
		case *ast.FuncDecl:
			// Observer.Finish implementations (Start is pre-run wiring and
			// may schedule).
			if n.Name.Name != "Finish" || n.Recv == nil || n.Body == nil {
				return
			}
			if !implementsObserver(pass, n) {
				return
			}
			if why := r.bodyReaches(n.Body); why != "" {
				allowdir.Report(pass, set, used, "hookpure", n.Pos(),
					"Observer.Finish is not digest-neutral: it can reach %s — Finish runs after the measured window and must only read", why)
			}
		}
	})
	return used, nil
}

// hookBody resolves a hook argument to the body to analyze: a function
// literal inline, or the declaration of a same-package named function.
func hookBody(pass *analysis.Pass, r *reacher, arg ast.Node) ast.Node {
	switch arg := arg.(type) {
	case *ast.FuncLit:
		return arg.Body
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[arg].(*types.Func); ok {
			if decl := r.decls[fn]; decl != nil && decl.Body != nil {
				return decl.Body
			}
		}
	case *ast.ParenExpr:
		return hookBody(pass, r, arg.X)
	}
	return nil
}

// implementsObserver reports whether the method's receiver type
// implements a same-package interface named Observer that includes a
// Finish method — the scenario.Observer contract shape.
func implementsObserver(pass *analysis.Pass, decl *ast.FuncDecl) bool {
	obj := pass.Pkg.Scope().Lookup("Observer")
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return false
	}
	iface, ok := tn.Type().Underlying().(*types.Interface)
	if !ok {
		return false
	}
	hasFinish := false
	for i := 0; i < iface.NumMethods(); i++ {
		if iface.Method(i).Name() == "Finish" {
			hasFinish = true
		}
	}
	if !hasFinish {
		return false
	}
	if len(decl.Recv.List) == 0 {
		return false
	}
	rt := pass.TypesInfo.TypeOf(decl.Recv.List[0].Type)
	if rt == nil {
		return false
	}
	return types.Implements(rt, iface) || types.Implements(types.NewPointer(rt), iface)
}

// reacher answers "can this hook body, directly or through same-package
// calls, schedule an event or write model state?" with memoization.
type reacher struct {
	pass  *analysis.Pass
	decls map[*types.Func]*ast.FuncDecl
	memo  map[*types.Func]string // "" = does not reach / in progress
}

func indexFuncDecls(pass *analysis.Pass) map[*types.Func]*ast.FuncDecl {
	m := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					m[obj] = fd
				}
			}
		}
	}
	return m
}

// bodyReaches returns a description of the first impure sink reachable
// from body, or "".
func (r *reacher) bodyReaches(body ast.Node) (why string) {
	ast.Inspect(body, func(n ast.Node) bool {
		if why != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if w := r.callReaches(n); w != "" {
				why = w
				return false
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if w := r.writeSink(lhs, body); w != "" {
					why = w
					return false
				}
			}
		case *ast.IncDecStmt:
			if w := r.writeSink(n.X, body); w != "" {
				why = w
				return false
			}
		}
		return true
	})
	return why
}

// writeSink classifies an assignment target as a model-state write when
// it is a field of a type declared in a model package. Writes rooted at
// a variable declared inside the analyzed body are local aggregation
// (e.g. summing shim counters into a fresh Stats value) and are exempt;
// the bug shape is a hook mutating state it captured or was handed.
func (r *reacher) writeSink(lhs ast.Expr, body ast.Node) string {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if root := rootIdent(sel.X); root != nil {
		if obj := r.pass.TypesInfo.ObjectOf(root); obj != nil &&
			body.Pos() <= obj.Pos() && obj.Pos() <= body.End() {
			return ""
		}
	}
	t := r.pass.TypesInfo.TypeOf(sel.X)
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	if modelRE.MatchString(named.Obj().Pkg().Path()) {
		return "a model-state write (" + named.Obj().Name() + "." + sel.Sel.Name + ")"
	}
	return ""
}

// rootIdent unwraps a selector/index/deref chain to its base identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func (r *reacher) callReaches(call *ast.CallExpr) string {
	fn, ok := typeutil.Callee(r.pass.TypesInfo, call).(*types.Func)
	if !ok {
		return ""
	}
	if w := sinkName(fn); w != "" {
		return w
	}
	if fn.Pkg() == r.pass.Pkg {
		if w := r.funcReaches(fn); w != "" {
			return w + " (via " + fn.Name() + ")"
		}
	}
	return ""
}

func (r *reacher) funcReaches(fn *types.Func) string {
	if w, ok := r.memo[fn]; ok {
		return w // also breaks recursion: in-progress reads as ""
	}
	r.memo[fn] = ""
	decl := r.decls[fn]
	if decl == nil || decl.Body == nil {
		return ""
	}
	w := r.bodyReaches(decl.Body)
	r.memo[fn] = w
	return w
}

// sinkName classifies a callee as a scheduling sink.
func sinkName(fn *types.Func) string {
	if !schedNames[fn.Name()] {
		return ""
	}
	switch recvTypeName(fn) {
	case "Engine":
		return "Engine." + fn.Name()
	case "Group":
		return "Group." + fn.Name()
	}
	return ""
}

func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	recv := sig.Recv()
	if recv == nil {
		return ""
	}
	return typeName(recv.Type())
}

func typeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

var usedType = reflect.TypeOf(allowdir.Used{})
