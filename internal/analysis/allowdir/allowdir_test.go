package allowdir

import "testing"

// TestParse covers the directive grammar corners the fixture files cannot
// express inline (a // want expectation appended to a directive comment
// becomes part of its reason field).
func TestParse(t *testing.T) {
	cases := []struct {
		text     string
		wantErr  bool
		analyzer string
		reason   string
	}{
		{"//hwatchvet:allow detrand epoch sweep is commutative", false, "detrand", "epoch sweep is commutative"},
		{"//hwatchvet:allow pktown x", false, "pktown", "x"},
		{"//hwatchvet:", true, "", ""},                 // missing verb
		{"//hwatchvet:allow", true, "", ""},            // missing analyzer
		{"//hwatchvet:allow detrand", true, "", ""},    // missing reason
		{"//hwatchvet:deny detrand why", true, "", ""}, // unknown verb
	}
	for _, c := range cases {
		d := parse(c.text)
		if (d.Err != "") != c.wantErr {
			t.Errorf("parse(%q): err %q, wantErr=%v", c.text, d.Err, c.wantErr)
			continue
		}
		if c.wantErr {
			continue
		}
		if d.Analyzer != c.analyzer || d.Reason != c.reason {
			t.Errorf("parse(%q) = (%q, %q), want (%q, %q)", c.text, d.Analyzer, d.Reason, c.analyzer, c.reason)
		}
	}
}
