// Package allowdir implements the //hwatchvet:allow suppression directive
// shared by the hwatchvet analyzers.
//
// Grammar:
//
//	//hwatchvet:allow <analyzer> <reason...>
//
// The analyzer name must be one of the hwatchvet custom analyzers and the
// reason is mandatory prose (it is the reviewer-facing justification). A
// directive trailing a line of code suppresses findings on that line; a
// directive on its own line suppresses findings on the next line of code.
// Directives in _test.go files are inert: the hwatchvet analyzers do not
// inspect test files.
//
// The directive analyzer validates syntax and reports directives that no
// longer suppress anything (stale allows), so suppressions cannot outlive
// the code they were written for.
package allowdir

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Prefix starts every hwatchvet directive comment.
const Prefix = "//hwatchvet:"

// Directive is one parsed //hwatchvet: comment.
type Directive struct {
	Verb     string // "allow" for well-formed suppressions
	Analyzer string // analyzer the suppression names
	Reason   string // mandatory justification prose
	Err      string // non-empty when the directive is malformed

	Pos    token.Pos // position of the comment
	Line   int       // line the comment is on
	Target int       // line of code the directive suppresses
}

// Set holds every directive of one package, indexed for suppression lookup.
type Set struct {
	fset *token.FileSet
	// byFileLine: filename -> target line -> directives aimed at that line.
	byFileLine map[string]map[int][]*Directive
	all        []*Directive
}

// Used records the positions of directives that suppressed at least one
// finding. Each hwatchvet analyzer returns its Used map as its result; the
// directive analyzer unions them to detect stale suppressions.
type Used map[token.Pos]bool

// IsTestFile reports whether the file behind f is a _test.go file, which
// the hwatchvet analyzers skip.
func IsTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}

// Collect parses every //hwatchvet: directive in the package (test files
// included; callers filter).
func Collect(pass *analysis.Pass) *Set {
	s := &Set{fset: pass.Fset, byFileLine: make(map[string]map[int][]*Directive)}
	for _, f := range pass.Files {
		if IsTestFile(pass.Fset, f) {
			continue
		}
		s.collectFile(f)
	}
	return s
}

func (s *Set) collectFile(f *ast.File) {
	fset := s.fset
	// Lines holding code tokens, to distinguish trailing from standalone
	// directives. Comments are not walked by ast.Inspect, so every visited
	// node position is a code token.
	codeLines := make(map[int]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		codeLines[fset.Position(n.Pos()).Line] = true
		return true
	})

	var ds []*Directive
	directiveLines := make(map[int]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, Prefix) {
				continue
			}
			d := parse(c.Text)
			d.Pos = c.Slash
			d.Line = fset.Position(c.Slash).Line
			ds = append(ds, d)
			directiveLines[d.Line] = true
		}
	}

	filename := fset.Position(f.Pos()).Filename
	m := make(map[int][]*Directive)
	for _, d := range ds {
		if codeLines[d.Line] {
			d.Target = d.Line // trailing comment: suppresses its own line
		} else {
			// Standalone: suppress the next line of code, skipping over any
			// stacked directives in between.
			t := d.Line + 1
			for directiveLines[t] {
				t++
			}
			d.Target = t
		}
		m[d.Target] = append(m[d.Target], d)
		s.all = append(s.all, d)
	}
	s.byFileLine[filename] = m
}

func parse(text string) *Directive {
	rest := strings.TrimPrefix(text, Prefix)
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return &Directive{Err: "missing verb: want //hwatchvet:allow <analyzer> <reason>"}
	}
	verb := fields[0]
	d := &Directive{Verb: verb}
	if verb != "allow" {
		d.Err = "unknown verb " + strconv.Quote(verb) + ": only //hwatchvet:allow is supported"
		return d
	}
	if len(fields) < 2 {
		d.Err = "missing analyzer name: want //hwatchvet:allow <analyzer> <reason>"
		return d
	}
	d.Analyzer = fields[1]
	if len(fields) < 3 {
		d.Err = "missing reason: //hwatchvet:allow " + d.Analyzer + " needs a justification"
		return d
	}
	d.Reason = strings.Join(fields[2:], " ")
	return d
}

// Suppresses returns the directive covering a finding of the named analyzer
// at pos, or nil.
func (s *Set) Suppresses(name string, pos token.Pos) *Directive {
	p := s.fset.Position(pos)
	for _, d := range s.byFileLine[p.Filename][p.Line] {
		if d.Err == "" && d.Analyzer == name {
			return d
		}
	}
	return nil
}

// All returns every directive collected, malformed ones included.
func (s *Set) All() []*Directive { return s.all }

// Report files a diagnostic for the named analyzer unless an allow
// directive covers it, in which case the directive is marked used.
func Report(pass *analysis.Pass, set *Set, used Used, name string, pos token.Pos, format string, args ...any) {
	if d := set.Suppresses(name, pos); d != nil {
		used[d.Pos] = true
		return
	}
	pass.Reportf(pos, format, args...)
}
