// Package detrand defines an analyzer that enforces the simulator's
// determinism contract: inside the model packages, all time must come from
// the engine clock and all entropy from the run's seeded RNG, and neither
// map iteration order nor channel receive order may ever reach the event
// queue, a digest, or emitted output.
//
// Golden-digest reproducibility (byte-identical runs for a fixed seed at
// any parallelism and shard count) is the repo's load-bearing correctness
// evidence; this analyzer turns the ways it silently rots — wall clock,
// global math/rand, map-order-dependent scheduling, and cross-shard
// channel receives that bypass the group's deterministic outbox merge —
// into build failures.
package detrand

import (
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"regexp"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"hwatch/internal/analysis/allowdir"
)

// DefaultScope matches the packages under the determinism contract.
const DefaultScope = `^hwatch/internal/(sim|netem|tcp|core|aqm|faults|experiments|scenario|stats|harness)(/|$)`

var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc: "forbid wall-clock time, global math/rand, and map-iteration or " +
		"channel-receive order reaching scheduling/digesting/output in the " +
		"deterministic simulator packages",
	Requires:   []*analysis.Analyzer{inspect.Analyzer},
	ResultType: usedType,
	Run:        run,
}

var scope = DefaultScope

func init() {
	Analyzer.Flags.StringVar(&scope, "scope", DefaultScope,
		"regexp of package paths under the determinism contract")
}

// bannedTime are time package functions that read or wait on the wall
// clock. Model code must use sim.Engine.Now and Engine.Schedule instead.
var bannedTime = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"Tick": true, "After": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

// allowedRand are the math/rand package-level constructors that take an
// explicit source or generator; everything else at package level draws
// from the global, seed-shared source and is banned.
var allowedRand = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2 constructors
}

// schedNames are the sim.Engine scheduling entry points: anything whose
// relative order depends on map iteration makes event seq assignment, and
// therefore same-instant FIFO order, nondeterministic. ScheduleRemoteArg
// is the cross-shard variant: the sender fixes the event's (sched, rank,
// seq) identity at call time, so call order reaching it is just as
// order-sensitive as a local Schedule.
var schedNames = map[string]bool{
	"Schedule": true, "ScheduleArg": true, "At": true, "AtArg": true,
	"ScheduleRemoteArg": true,
}

func run(pass *analysis.Pass) (any, error) {
	used := allowdir.Used{}
	re, err := regexp.Compile(scope)
	if err != nil {
		return nil, err
	}
	if !re.MatchString(pass.Pkg.Path()) {
		return used, nil
	}
	set := allowdir.Collect(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	r := &reacher{pass: pass, decls: indexFuncDecls(pass), memo: make(map[*types.Func]string)}

	nodeFilter := []ast.Node{(*ast.CallExpr)(nil), (*ast.RangeStmt)(nil), (*ast.SelectStmt)(nil)}
	ins.Preorder(nodeFilter, func(n ast.Node) {
		if strings.HasSuffix(pass.Fset.Position(n.Pos()).Filename, "_test.go") {
			return
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, set, used, n)
			checkRecvArg(pass, set, used, n)
		case *ast.RangeStmt:
			checkOrderedRange(pass, set, used, r, n)
		case *ast.SelectStmt:
			checkSelect(pass, set, used, r, n)
		}
	})
	return used, nil
}

func checkCall(pass *analysis.Pass, set *allowdir.Set, used allowdir.Used, call *ast.CallExpr) {
	fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	// Only package-level functions of time and math/rand are banned;
	// methods on a seeded *rand.Rand (sim.RNG) are the sanctioned path.
	if fn.Type().(*types.Signature).Recv() != nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if bannedTime[fn.Name()] {
			allowdir.Report(pass, set, used, "detrand", call.Pos(),
				"time.%s is wall clock: model time must come from the engine clock (sim.Engine.Now / Schedule)", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !allowedRand[fn.Name()] {
			allowdir.Report(pass, set, used, "detrand", call.Pos(),
				"%s.%s draws from the global, unseeded RNG: all entropy must flow through the run's sim.RNG (harness.SeedFor derivation)", fn.Pkg().Name(), fn.Name())
		}
	}
}

// checkOrderedRange flags ranging over the two orderless sources — maps
// (iteration order is randomized) and channels (receive order is goroutine
// scheduling order, which GOMAXPROCS and the OS decide) — when the loop
// body can reach an order-sensitive sink.
func checkOrderedRange(pass *analysis.Pass, set *allowdir.Set, used allowdir.Used, r *reacher, rng *ast.RangeStmt) {
	t := pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Map:
		if why := r.bodyReaches(rng.Body); why != "" {
			allowdir.Report(pass, set, used, "detrand", rng.Pos(),
				"map iteration order can reach %s: iterate sorted keys or a slice mirror", why)
		}
	case *types.Chan:
		if why := r.bodyReaches(rng.Body); why != "" {
			allowdir.Report(pass, set, used, "detrand", rng.Pos(),
				"channel receive order can reach %s: receive order is goroutine scheduling, not simulation order — route cross-shard events through the group's outbox merge, or drain into a slice and sort", why)
		}
	}
}

// checkSelect flags select statements whose receive arms can reach an
// order-sensitive sink: which arm wins a multi-way select is scheduler
// nondeterminism, exactly like cross-shard channel receive order.
func checkSelect(pass *analysis.Pass, set *allowdir.Set, used allowdir.Used, r *reacher, sel *ast.SelectStmt) {
	if len(sel.Body.List) < 2 {
		return // single-arm select: no ordering choice to lose
	}
	for _, cl := range sel.Body.List {
		comm, ok := cl.(*ast.CommClause)
		if !ok || !isRecvComm(comm.Comm) {
			continue
		}
		for _, stmt := range comm.Body {
			if why := r.bodyReaches(stmt); why != "" {
				allowdir.Report(pass, set, used, "detrand", comm.Pos(),
					"select receive arm can reach %s: arm choice is goroutine scheduling, not simulation order — route cross-shard events through the group's outbox merge", why)
				break
			}
		}
	}
}

// isRecvComm reports whether a select comm statement is a channel receive
// (`<-ch`, `v := <-ch`, `v, ok := <-ch`).
func isRecvComm(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		u, ok := s.X.(*ast.UnaryExpr)
		return ok && u.Op == token.ARROW
	case *ast.AssignStmt:
		if len(s.Rhs) != 1 {
			return false
		}
		u, ok := s.Rhs[0].(*ast.UnaryExpr)
		return ok && u.Op == token.ARROW
	}
	return false
}

// checkRecvArg flags a channel receive expression used directly as an
// argument (or receiver) of a scheduling sink: the receive decides *when*
// relative to other senders the event is armed, so seq order leaks the
// scheduler interleaving even without a loop.
func checkRecvArg(pass *analysis.Pass, set *allowdir.Set, used allowdir.Used, call *ast.CallExpr) {
	fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
	if !ok {
		return
	}
	if sinkName(fn) == "" {
		return
	}
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if u, ok := n.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				allowdir.Report(pass, set, used, "detrand", u.Pos(),
					"channel receive feeds %s directly: receive order is goroutine scheduling, not simulation order — route cross-shard events through the group's outbox merge", sinkName(fn))
				return false
			}
			return true
		})
	}
}

// reacher answers "can this code, directly or through same-package calls,
// schedule an event, fold a digest, or emit output?" with memoization.
// The call graph is static same-package calls only; cross-package calls
// other than the recognized sinks are assumed order-insensitive.
type reacher struct {
	pass  *analysis.Pass
	decls map[*types.Func]*ast.FuncDecl
	memo  map[*types.Func]string // "" = does not reach / in progress
}

func indexFuncDecls(pass *analysis.Pass) map[*types.Func]*ast.FuncDecl {
	m := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					m[obj] = fd
				}
			}
		}
	}
	return m
}

// bodyReaches returns a description of the first order-sensitive sink
// reachable from the statements in body, or "".
func (r *reacher) bodyReaches(body ast.Node) (why string) {
	ast.Inspect(body, func(n ast.Node) bool {
		if why != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if w := r.callReaches(call); w != "" {
			why = w
			return false
		}
		return true
	})
	return why
}

func (r *reacher) callReaches(call *ast.CallExpr) string {
	fn, ok := typeutil.Callee(r.pass.TypesInfo, call).(*types.Func)
	if !ok {
		return ""
	}
	if w := sinkName(fn); w != "" {
		return w
	}
	// Same-package static call: follow it.
	if fn.Pkg() == r.pass.Pkg {
		if w := r.funcReaches(fn); w != "" {
			return w + " (via " + fn.Name() + ")"
		}
	}
	return ""
}

func (r *reacher) funcReaches(fn *types.Func) string {
	if w, ok := r.memo[fn]; ok {
		return w // also breaks recursion: in-progress reads as ""
	}
	r.memo[fn] = ""
	decl := r.decls[fn]
	if decl == nil || decl.Body == nil {
		return ""
	}
	w := r.bodyReaches(decl.Body)
	r.memo[fn] = w
	return w
}

// sinkName classifies a callee as an order-sensitive sink.
func sinkName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if recv := sig.Recv(); recv != nil {
		name := recvTypeName(recv.Type())
		if schedNames[fn.Name()] && name == "Engine" {
			return "Engine." + fn.Name()
		}
		if name == "Digest" {
			return "a digest (Digest." + fn.Name() + ")"
		}
		return ""
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
		(strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
		return "emitted output (fmt." + fn.Name() + ")"
	}
	return ""
}

func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

var usedType = reflect.TypeOf(allowdir.Used{})
