package detrand_test

import (
	"testing"

	"hwatch/internal/analysis/atest"
	"hwatch/internal/analysis/detrand"
)

// TestDetrand exercises the banned-call and map-order checks against the
// fixture; the test fails if the analyzer misses a want or reports a line
// without one (including the //hwatchvet:allow-suppressed range).
func TestDetrand(t *testing.T) {
	atest.Run(t, "testdata/src/a", "hwatch/internal/sim/a", detrand.Analyzer)
}
