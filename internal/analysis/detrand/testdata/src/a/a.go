// Fixture for the detrand analyzer: loaded by atest under the package
// path hwatch/internal/sim/a, which is inside the determinism scope.
package a

import (
	"fmt"
	"math/rand"
	"time"
)

// Minimal stand-ins for the simulator types the analyzer recognizes by
// name (receiver type Engine, receiver type Digest).
type Event struct{}

type Engine struct{ now int64 }

func (e *Engine) Schedule(delay int64, fn func()) *Event                      { return &Event{} }
func (e *Engine) ScheduleArg(d int64, fn func(any), a any) *Event             { return &Event{} }
func (e *Engine) ScheduleRemoteArg(dst *Engine, d int64, fn func(any), a any) {}
func (e *Engine) Now() int64                                                  { return e.now }
func (e *Engine) RunUntil(horizon int64)                                      {}

type Digest struct{ h uint64 }

func (d *Digest) Add(v uint64) { d.h ^= v }

func wallClock(e *Engine) {
	_ = time.Now()          // want `time.Now is wall clock`
	t := time.Unix(0, 0)    // time.Unix is pure conversion: allowed
	_ = time.Since(t)       // want `time.Since is wall clock`
	time.Sleep(time.Second) // want `time.Sleep is wall clock`
	_ = e.Now()             // engine clock: the sanctioned path
}

func globalRand() {
	_ = rand.Int() // want `rand.Int draws from the global, unseeded RNG`
	r := rand.New(rand.NewSource(42))
	_ = r.Int() // seeded instance: allowed
}

func mapOrderDirect(e *Engine, m map[int]func()) {
	for _, fn := range m { // want `map iteration order can reach Engine.Schedule`
		e.Schedule(1, fn)
	}
}

func mapOrderDigest(d *Digest, m map[int]uint64) {
	for _, v := range m { // want `map iteration order can reach a digest`
		d.Add(v)
	}
}

func mapOrderOutput(m map[string]int) {
	for k, v := range m { // want `map iteration order can reach emitted output`
		fmt.Println(k, v)
	}
}

// helper reaches Engine.Schedule one static call away; the interprocedural
// reacher must see through it.
func helper(e *Engine) { e.Schedule(1, noop) }

func noop() {}

func mapOrderViaHelper(e *Engine, m map[int]int) {
	for range m { // want `map iteration order can reach Engine.Schedule \(via helper\)`
		helper(e)
	}
}

func mapOrderBenign(m map[int]int) int {
	// Pure accumulation: commutative, order-insensitive, no sink reached.
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

func suppressed(e *Engine, m map[int]func()) {
	//hwatchvet:allow detrand exercised by the directive fixture: order is proven commutative here
	for _, fn := range m {
		e.Schedule(1, fn)
	}
}

// Cross-shard hazards: channel receive order is goroutine scheduling, so a
// receive that can reach the event queue bypasses the group's merge.

func chanOrderDirect(e *Engine, ch chan func()) {
	for fn := range ch { // want `channel receive order can reach Engine.Schedule`
		e.Schedule(1, fn)
	}
}

func mapOrderRemote(e, dst *Engine, m map[int]int) {
	for v := range m { // want `map iteration order can reach Engine.ScheduleRemoteArg`
		e.ScheduleRemoteArg(dst, 1, handleAny, v)
	}
}

func handleAny(any) {}

func chanOrderRemote(e, dst *Engine, ch chan int) {
	for v := range ch { // want `channel receive order can reach Engine.ScheduleRemoteArg`
		e.ScheduleRemoteArg(dst, 1, handleAny, v)
	}
}

func selectOrder(e *Engine, a, b chan func()) {
	select {
	case fn := <-a: // want `select receive arm can reach Engine.Schedule`
		e.Schedule(1, fn)
	case fn := <-b: // want `select receive arm can reach Engine.Schedule`
		e.Schedule(1, fn)
	}
}

func selectSingleArm(e *Engine, a chan func()) {
	// One receive arm: nothing to race, no ordering choice lost.
	select {
	case fn := <-a:
		e.Schedule(1, fn)
	}
}

func recvFeedsSink(e *Engine, ch chan int) {
	e.ScheduleArg(1, handleAny, <-ch) // want `channel receive feeds Engine.ScheduleArg directly`
}

func chanOrderBenign(ch chan int) int {
	// Pure accumulation off a channel: commutative, no sink reached.
	sum := 0
	for v := range ch {
		sum += v
	}
	return sum
}

func workerWindowLoop(e *Engine, cmd chan int64) {
	// The sharded group's sanctioned worker shape: window ends drive
	// RunUntil, and every cross-shard event flows through the outbox
	// merge — the receive order never reaches the event queue.
	for end := range cmd {
		e.RunUntil(end)
	}
}
