// Fixture for the detrand analyzer: loaded by atest under the package
// path hwatch/internal/sim/a, which is inside the determinism scope.
package a

import (
	"fmt"
	"math/rand"
	"time"
)

// Minimal stand-ins for the simulator types the analyzer recognizes by
// name (receiver type Engine, receiver type Digest).
type Event struct{}

type Engine struct{ now int64 }

func (e *Engine) Schedule(delay int64, fn func()) *Event          { return &Event{} }
func (e *Engine) ScheduleArg(d int64, fn func(any), a any) *Event { return &Event{} }
func (e *Engine) Now() int64                                      { return e.now }

type Digest struct{ h uint64 }

func (d *Digest) Add(v uint64) { d.h ^= v }

func wallClock(e *Engine) {
	_ = time.Now()          // want `time.Now is wall clock`
	t := time.Unix(0, 0)    // time.Unix is pure conversion: allowed
	_ = time.Since(t)       // want `time.Since is wall clock`
	time.Sleep(time.Second) // want `time.Sleep is wall clock`
	_ = e.Now()             // engine clock: the sanctioned path
}

func globalRand() {
	_ = rand.Int() // want `rand.Int draws from the global, unseeded RNG`
	r := rand.New(rand.NewSource(42))
	_ = r.Int() // seeded instance: allowed
}

func mapOrderDirect(e *Engine, m map[int]func()) {
	for _, fn := range m { // want `map iteration order can reach Engine.Schedule`
		e.Schedule(1, fn)
	}
}

func mapOrderDigest(d *Digest, m map[int]uint64) {
	for _, v := range m { // want `map iteration order can reach a digest`
		d.Add(v)
	}
}

func mapOrderOutput(m map[string]int) {
	for k, v := range m { // want `map iteration order can reach emitted output`
		fmt.Println(k, v)
	}
}

// helper reaches Engine.Schedule one static call away; the interprocedural
// reacher must see through it.
func helper(e *Engine) { e.Schedule(1, noop) }

func noop() {}

func mapOrderViaHelper(e *Engine, m map[int]int) {
	for range m { // want `map iteration order can reach Engine.Schedule \(via helper\)`
		helper(e)
	}
}

func mapOrderBenign(m map[int]int) int {
	// Pure accumulation: commutative, order-insensitive, no sink reached.
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

func suppressed(e *Engine, m map[int]func()) {
	//hwatchvet:allow detrand exercised by the directive fixture: order is proven commutative here
	for _, fn := range m {
		e.Schedule(1, fn)
	}
}
