// Package analysis_test holds the suite-level meta-test: the repo itself
// must be clean under its own static-analysis tool.
package analysis_test

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestHwatchvetCleanAtHead builds cmd/hwatchvet and runs it over every
// package, asserting exit 0 — the acceptance gate CI enforces. Any new
// finding (or stale suppression) anywhere in the tree fails this test.
func TestHwatchvetCleanAtHead(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and vets the whole module; skipped in -short")
	}
	root := moduleRoot(t)
	cmd := exec.Command("go", "run", "./cmd/hwatchvet", "./...")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("hwatchvet is not clean at HEAD:\n%s\n(%v)", out, err)
	}
}

// TestHwatchvetJSONClean runs -json mode over a clean package and asserts
// the contract make lint-json relies on: stdout is exactly one valid JSON
// document, empty when there are no findings, with exit code 0.
func TestHwatchvetJSONClean(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and vets a package; skipped in -short")
	}
	root := moduleRoot(t)
	cmd := exec.Command("go", "run", "./cmd/hwatchvet", "-json", "./internal/harness/")
	cmd.Dir = root
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("hwatchvet -json failed: %v\noutput:\n%s", err, out)
	}
	var doc map[string]map[string]json.RawMessage
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("hwatchvet -json stdout is not one JSON document: %v\noutput:\n%s", err, out)
	}
	if len(doc) != 0 {
		t.Fatalf("expected an empty document for a clean package, got:\n%s", out)
	}
}

// moduleRoot walks up from the test's working directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}
