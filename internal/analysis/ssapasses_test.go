package analysis_test

import (
	"testing"

	"golang.org/x/tools/go/analysis/passes/nilness"
	"golang.org/x/tools/go/analysis/passes/unusedwrite"

	"hwatch/internal/analysis/atest"
)

// The vendored SSA layer has no tests of its own (vendor trees are not
// built by go test), so the two SSA-backed standard passes get fixture
// coverage here: each proves the naive-form SSA built over the go/cfg
// graphs is faithful enough to catch the seeded violation and precise
// enough to stay silent on the sound variants.

func TestNilness(t *testing.T) {
	atest.Run(t, "testdata/src/nilness", "hwatch/internal/sim/na", nilness.Analyzer)
}

func TestUnusedwrite(t *testing.T) {
	atest.Run(t, "testdata/src/unusedwrite", "hwatch/internal/sim/uw", unusedwrite.Analyzer)
}
