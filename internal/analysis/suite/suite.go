// Package suite assembles the hwatchvet analyzer set: the four custom
// contract analyzers plus a curated slice of the vendored standard
// go/analysis passes.
//
// The standard set is limited to passes that work from syntax + types
// alone. The SSA-based passes the issue tracker wishlists (nilness,
// unusedwrite, shadow) need go/ssa, which the offline vendored x/tools
// subset does not carry; they are gated out here and documented in
// DESIGN.md §6f so they can be enabled the day the dependency is
// available.
package suite

import (
	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/assign"
	"golang.org/x/tools/go/analysis/passes/atomic"
	"golang.org/x/tools/go/analysis/passes/bools"
	"golang.org/x/tools/go/analysis/passes/copylock"
	"golang.org/x/tools/go/analysis/passes/defers"
	"golang.org/x/tools/go/analysis/passes/errorsas"
	"golang.org/x/tools/go/analysis/passes/loopclosure"
	"golang.org/x/tools/go/analysis/passes/lostcancel"
	"golang.org/x/tools/go/analysis/passes/nilfunc"
	"golang.org/x/tools/go/analysis/passes/sigchanyzer"
	"golang.org/x/tools/go/analysis/passes/stdmethods"
	"golang.org/x/tools/go/analysis/passes/stringintconv"
	"golang.org/x/tools/go/analysis/passes/structtag"
	"golang.org/x/tools/go/analysis/passes/unreachable"
	"golang.org/x/tools/go/analysis/passes/unsafeptr"
	"golang.org/x/tools/go/analysis/passes/unusedresult"

	"hwatch/internal/analysis/detrand"
	"hwatch/internal/analysis/directive"
	"hwatch/internal/analysis/pktown"
	"hwatch/internal/analysis/schedclosure"
)

// Custom returns the four hwatchvet contract analyzers.
func Custom() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		detrand.Analyzer,
		pktown.Analyzer,
		schedclosure.Analyzer,
		directive.Analyzer,
	}
}

// Standard returns the curated vendored x/tools passes hwatchvet runs
// alongside the custom set.
func Standard() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		assign.Analyzer,
		atomic.Analyzer,
		bools.Analyzer,
		copylock.Analyzer,
		defers.Analyzer,
		errorsas.Analyzer,
		loopclosure.Analyzer,
		lostcancel.Analyzer,
		nilfunc.Analyzer,
		sigchanyzer.Analyzer,
		stdmethods.Analyzer,
		stringintconv.Analyzer,
		structtag.Analyzer,
		unreachable.Analyzer,
		unsafeptr.Analyzer,
		unusedresult.Analyzer,
	}
}

// All returns the full hwatchvet suite.
func All() []*analysis.Analyzer {
	return append(Custom(), Standard()...)
}
