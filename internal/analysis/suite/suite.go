// Package suite assembles the hwatchvet analyzer set: the seven custom
// contract analyzers plus a curated slice of the vendored standard
// go/analysis passes.
//
// Since PR 10 the vendored x/tools subset carries an offline go/ssa
// layer (naive-form IR built over the go/cfg graphs, see
// vendor/golang.org/x/tools/go/ssa), so the standard set includes the
// SSA-backed passes nilness and unusedwrite alongside the syntax+types
// passes, and the custom set includes the SSA-backed concurrency and
// purity contracts lockscope, hookpure, and ctxflow. DESIGN.md §6k
// documents the SSA layer and the three contract analyzers.
//
// Standard() must stay sorted by analyzer name with no duplicates;
// suite_test.go enforces both.
package suite

import (
	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/assign"
	"golang.org/x/tools/go/analysis/passes/atomic"
	"golang.org/x/tools/go/analysis/passes/bools"
	"golang.org/x/tools/go/analysis/passes/copylock"
	"golang.org/x/tools/go/analysis/passes/defers"
	"golang.org/x/tools/go/analysis/passes/errorsas"
	"golang.org/x/tools/go/analysis/passes/loopclosure"
	"golang.org/x/tools/go/analysis/passes/lostcancel"
	"golang.org/x/tools/go/analysis/passes/nilfunc"
	"golang.org/x/tools/go/analysis/passes/nilness"
	"golang.org/x/tools/go/analysis/passes/sigchanyzer"
	"golang.org/x/tools/go/analysis/passes/stdmethods"
	"golang.org/x/tools/go/analysis/passes/stringintconv"
	"golang.org/x/tools/go/analysis/passes/structtag"
	"golang.org/x/tools/go/analysis/passes/unreachable"
	"golang.org/x/tools/go/analysis/passes/unsafeptr"
	"golang.org/x/tools/go/analysis/passes/unusedresult"
	"golang.org/x/tools/go/analysis/passes/unusedwrite"

	"hwatch/internal/analysis/ctxflow"
	"hwatch/internal/analysis/detrand"
	"hwatch/internal/analysis/directive"
	"hwatch/internal/analysis/hookpure"
	"hwatch/internal/analysis/lockscope"
	"hwatch/internal/analysis/pktown"
	"hwatch/internal/analysis/schedclosure"
)

// Custom returns the hwatchvet contract analyzers. directive must run
// last-registered so its stale-allow report sees every other analyzer's
// Used map.
func Custom() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		detrand.Analyzer,
		pktown.Analyzer,
		schedclosure.Analyzer,
		lockscope.Analyzer,
		hookpure.Analyzer,
		ctxflow.Analyzer,
		directive.Analyzer,
	}
}

// Standard returns the curated vendored x/tools passes hwatchvet runs
// alongside the custom set, sorted by name.
func Standard() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		assign.Analyzer,
		atomic.Analyzer,
		bools.Analyzer,
		copylock.Analyzer,
		defers.Analyzer,
		errorsas.Analyzer,
		loopclosure.Analyzer,
		lostcancel.Analyzer,
		nilfunc.Analyzer,
		nilness.Analyzer,
		sigchanyzer.Analyzer,
		stdmethods.Analyzer,
		stringintconv.Analyzer,
		structtag.Analyzer,
		unreachable.Analyzer,
		unsafeptr.Analyzer,
		unusedresult.Analyzer,
		unusedwrite.Analyzer,
	}
}

// All returns the full hwatchvet suite.
func All() []*analysis.Analyzer {
	return append(Custom(), Standard()...)
}
