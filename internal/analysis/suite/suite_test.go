package suite

import (
	"sort"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// TestStandardSortedNoDuplicates pins the package-comment contract: the
// curated standard-pass list stays sorted by analyzer name and never
// registers a pass twice (a duplicate would run the pass twice and
// double-report every diagnostic).
func TestStandardSortedNoDuplicates(t *testing.T) {
	std := Standard()
	names := make([]string, 0, len(std))
	for _, a := range std {
		names = append(names, a.Name)
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("Standard() is not sorted by analyzer name: %v", names)
	}
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		if seen[n] {
			t.Errorf("Standard() registers %q twice", n)
		}
		seen[n] = true
	}
}

// TestAllNoDuplicates extends the uniqueness check across the full suite:
// a custom analyzer must never shadow a standard pass's name (the allow
// directives address analyzers by name).
func TestAllNoDuplicates(t *testing.T) {
	seen := make(map[string]bool)
	for _, a := range All() {
		if a.Name == "" {
			t.Error("suite contains an analyzer with an empty name")
		}
		if seen[a.Name] {
			t.Errorf("suite registers analyzer %q twice", a.Name)
		}
		seen[a.Name] = true
	}
}

// TestDirectiveRunsLast pins the ordering contract Custom documents: the
// directive analyzer must be registered last so its stale-allow report
// sees every other analyzer's Used map.
func TestDirectiveRunsLast(t *testing.T) {
	c := Custom()
	if len(c) == 0 || c[len(c)-1].Name != "hwatchdirective" {
		t.Fatalf("directive analyzer must be last in Custom(); got order %v", analyzerNames(c))
	}
}

func analyzerNames(as []*analysis.Analyzer) []string {
	out := make([]string, 0, len(as))
	for _, a := range as {
		out = append(out, a.Name)
	}
	return out
}
