// Package pktown defines an analyzer that mechanically checks the pooled
// packet linear-ownership contract (DESIGN.md §6e): a *Packet obtained
// from the pool must, on every path, be released exactly once or have its
// ownership transferred (enqueued, delivered, scheduled, returned or
// stored). It flags
//
//   - use-after-release: reading a packet variable after ReleasePacket,
//   - double release: a second ReleasePacket on a path that already
//     released the variable, and
//   - leaks: a path that exits with the packet still owned — the bug class
//     a deleted ReleasePacket on a drop path introduces.
//
// The analysis is intra-procedural over the go/cfg control-flow graph,
// name-based and deliberately conservative. Tracked variables are locals
// initialized from an allocator (AllocPacket / ClonePacket) and *Packet
// parameters of functions that release them (a function releasing a
// parameter on one path has accepted the release obligation on all paths).
// Ownership transfers are recognized by callee name (Send, Deliver,
// Enqueue, Inject*, Schedule*, ...); all other calls borrow. Conditional
// transfers (netem.Filter's VerdictStolen protocol) are outside the
// model's reach — annotate those sites with //hwatchvet:allow pktown.
package pktown

import (
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"regexp"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/cfg"

	"hwatch/internal/analysis/allowdir"
)

// DefaultScope matches the packages that touch pooled packets.
const DefaultScope = `^hwatch/internal/(sim|netem|tcp|core|aqm)(/|$)`

// DefaultTransfer matches callee names that take packet ownership.
const DefaultTransfer = `^(Send|Deliver|Enqueue|Push|Transmit|transmit|deliverUp|Forward|Inject.*|inject.*|Schedule.*|At|AtArg)$`

var Analyzer = &analysis.Analyzer{
	Name: "pktown",
	Doc: "check the pooled packet linear-ownership contract: no use after " +
		"ReleasePacket, no double release, no drop path that leaks an owned packet",
	Requires:   []*analysis.Analyzer{ctrlflow.Analyzer},
	ResultType: reflect.TypeOf(allowdir.Used{}),
	Run:        run,
}

var (
	scope       = DefaultScope
	transferPat = DefaultTransfer
	typeName    = "Packet"
)

func init() {
	Analyzer.Flags.StringVar(&scope, "scope", DefaultScope,
		"regexp of package paths under the packet-ownership contract")
	Analyzer.Flags.StringVar(&transferPat, "transfer", DefaultTransfer,
		"regexp of callee names that take packet ownership")
}

// Ownership state bits. Join over paths is bitwise OR; reports fire only
// on definite states so merged paths stay quiet.
type state uint8

const (
	owned state = 1 << iota
	released
	escaped
	allBits = owned | released | escaped
)

func run(pass *analysis.Pass) (any, error) {
	used := allowdir.Used{}
	re, err := regexp.Compile(scope)
	if err != nil {
		return nil, err
	}
	if !re.MatchString(pass.Pkg.Path()) {
		return used, nil
	}
	transferRE, err := regexp.Compile(transferPat)
	if err != nil {
		return nil, err
	}
	set := allowdir.Collect(pass)
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)

	for _, f := range pass.Files {
		if allowdir.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			g := cfgs.FuncDecl(fd)
			if g == nil {
				continue
			}
			a := &funcAnalysis{
				pass: pass, set: set, used: used, transferRE: transferRE,
				reported: make(map[token.Pos]bool),
			}
			a.analyze(fd, g)
		}
	}
	return used, nil
}

type funcAnalysis struct {
	pass       *analysis.Pass
	set        *allowdir.Set
	used       allowdir.Used
	transferRE *regexp.Regexp
	tracked    map[*types.Var]bool
	reported   map[token.Pos]bool
}

func (a *funcAnalysis) analyze(fd *ast.FuncDecl, g *cfg.CFG) {
	a.tracked = a.findTracked(fd)
	if len(a.tracked) == 0 {
		return
	}

	entry := make(map[*types.Var]state)
	for v := range a.tracked {
		if isParam(fd, v) {
			entry[v] = owned
		}
	}

	in := make(map[*cfg.Block]map[*types.Var]state)
	if len(g.Blocks) == 0 {
		return
	}
	in[g.Blocks[0]] = entry

	// Fixpoint: states only accumulate bits, so this terminates. Reports
	// are deferred to a final stable pass so interim states cannot
	// produce spurious diagnostics.
	for changed := true; changed; {
		changed = false
		for _, b := range g.Blocks {
			if !b.Live {
				continue
			}
			st, ok := in[b]
			if !ok {
				continue
			}
			out := a.flowBlock(b, cloneState(st), false)
			for _, succ := range b.Succs {
				if merged, delta := join(in[succ], out); delta {
					in[succ] = merged
					changed = true
				}
			}
		}
	}
	// Report pass.
	for _, b := range g.Blocks {
		if !b.Live {
			continue
		}
		st, ok := in[b]
		if !ok {
			continue
		}
		a.flowBlock(b, cloneState(st), true)
	}
}

// flowBlock applies the transfer function to every node of b, returning
// the exit state. When report is set, diagnostics fire.
func (a *funcAnalysis) flowBlock(b *cfg.Block, st map[*types.Var]state, report bool) map[*types.Var]state {
	panicked := false
	for _, n := range b.Nodes {
		a.stepNode(n, st, report)
		if isPanicNode(n) {
			panicked = true
		}
	}
	// Function-exit leak check: a live block with no successors ends the
	// function (return, fall-off-end or a no-return call like panic).
	if report && len(b.Succs) == 0 && !panicked {
		pos := token.NoPos
		if len(b.Nodes) > 0 {
			pos = b.Nodes[len(b.Nodes)-1].Pos()
		}
		a.checkLeaks(st, pos)
	}
	return st
}

func (a *funcAnalysis) checkLeaks(st map[*types.Var]state, pos token.Pos) {
	for v, s := range st {
		if s == owned {
			p := pos
			if p == token.NoPos {
				p = v.Pos()
			}
			a.reportOnce(p, "pooled packet %s leaks on this path: neither released, forwarded, nor returned", v.Name())
		}
	}
}

func (a *funcAnalysis) reportOnce(pos token.Pos, format string, args ...any) {
	if a.reported[pos] {
		return
	}
	a.reported[pos] = true
	allowdir.Report(a.pass, a.set, a.used, "pktown", pos, format, args...)
}

// stepNode applies one CFG node to the state.
func (a *funcAnalysis) stepNode(n ast.Node, st map[*types.Var]state, report bool) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		a.stepAssign(n, st, report)
	case *ast.ValueSpec:
		for _, rhs := range n.Values {
			a.evalExpr(rhs, st, report, true)
		}
		for i, name := range n.Names {
			if v := a.trackedDef(name); v != nil {
				if i < len(n.Values) && a.isAllocCall(n.Values[i]) {
					st[v] = owned
				} else {
					st[v] = allBits
				}
			}
		}
	case *ast.ReturnStmt:
		for _, res := range n.Results {
			if v := a.trackedUse(res); v != nil {
				a.checkUse(v, res.Pos(), st, report)
				st[v] = st[v]&^owned | escaped
			} else {
				a.evalExpr(res, st, report, true)
			}
		}
		if report {
			a.checkLeaks(st, n.Pos())
		}
	case *ast.SendStmt:
		if v := a.trackedUse(n.Value); v != nil {
			a.checkUse(v, n.Value.Pos(), st, report)
			st[v] = st[v]&^owned | escaped
		} else {
			a.evalExpr(n.Value, st, report, true)
		}
		a.evalExpr(n.Chan, st, report, false)
	case *ast.DeferStmt:
		// defer ReleasePacket(p) and friends: the deferred call owns the
		// packet from here on; no further checking.
		for _, arg := range n.Call.Args {
			if v := a.trackedUse(arg); v != nil {
				st[v] = st[v]&^owned | escaped
			}
		}
	case *ast.GoStmt:
		for _, arg := range n.Call.Args {
			if v := a.trackedUse(arg); v != nil {
				st[v] = st[v]&^owned | escaped
			}
		}
	case ast.Expr:
		a.evalExpr(n, st, report, false)
	case *ast.ExprStmt:
		a.evalExpr(n.X, st, report, false)
	case *ast.IncDecStmt:
		a.evalExpr(n.X, st, report, false)
	}
}

func (a *funcAnalysis) stepAssign(n *ast.AssignStmt, st map[*types.Var]state, report bool) {
	// RHS first (evaluation order), noting 1:1 acquisitions and aliases.
	oneToOne := len(n.Lhs) == len(n.Rhs)
	for i, rhs := range n.Rhs {
		isValueFlow := true
		if oneToOne && isBlank(n.Lhs[i]) {
			isValueFlow = false // _ = p is a no-op, not an escape
		}
		if v := a.trackedUse(rhs); v != nil {
			a.checkUse(v, rhs.Pos(), st, report)
			if isValueFlow {
				// Aliased into another variable or stored: give up precise
				// tracking of the source (conservative: no reports later).
				st[v] = st[v]&^owned | escaped
			}
			continue
		}
		a.evalExpr(rhs, st, report, true)
	}
	for i, lhs := range n.Lhs {
		if v := a.trackedDef(lhs); v != nil {
			if oneToOne && a.isAllocCall(n.Rhs[i]) {
				st[v] = owned
			} else {
				st[v] = allBits
			}
			continue
		}
		// Stores through fields/indexes: the RHS walk above already marked
		// escaping idents; just evaluate the LHS expression for uses.
		if !isBlank(lhs) {
			if _, ok := lhs.(*ast.Ident); !ok {
				a.evalExpr(lhs, st, report, false)
			}
		}
	}
}

// evalExpr walks an expression, performing use checks and ownership
// transitions. valueFlows marks contexts where the expression's value is
// stored somewhere (composite literals, assignments, call results), so a
// bare tracked ident escapes.
func (a *funcAnalysis) evalExpr(e ast.Expr, st map[*types.Var]state, report, valueFlows bool) {
	switch e := e.(type) {
	case nil:
		return
	case *ast.CallExpr:
		a.evalCall(e, st, report)
	case *ast.Ident:
		if v := a.trackedUse(e); v != nil {
			a.checkUse(v, e.Pos(), st, report)
			if valueFlows {
				st[v] = st[v]&^owned | escaped
			}
		}
	case *ast.FuncLit:
		// Captured packets can do anything; stop tracking them.
		ast.Inspect(e.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if v := a.trackedUse(id); v != nil {
					st[v] = allBits
				}
			}
			return true
		})
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			a.evalExpr(elt, st, report, true)
		}
	case *ast.KeyValueExpr:
		a.evalExpr(e.Key, st, report, true)
		a.evalExpr(e.Value, st, report, true)
	case *ast.ParenExpr:
		a.evalExpr(e.X, st, report, valueFlows)
	case *ast.UnaryExpr:
		a.evalExpr(e.X, st, report, valueFlows)
	case *ast.StarExpr:
		a.evalExpr(e.X, st, report, false)
	case *ast.SelectorExpr:
		a.evalExpr(e.X, st, report, false)
	case *ast.IndexExpr:
		a.evalExpr(e.X, st, report, false)
		a.evalExpr(e.Index, st, report, false)
	case *ast.SliceExpr:
		a.evalExpr(e.X, st, report, false)
	case *ast.BinaryExpr:
		a.evalExpr(e.X, st, report, false)
		a.evalExpr(e.Y, st, report, false)
	case *ast.TypeAssertExpr:
		a.evalExpr(e.X, st, report, valueFlows)
	}
}

func (a *funcAnalysis) evalCall(call *ast.CallExpr, st map[*types.Var]state, report bool) {
	name := calleeName(call)

	// ReleasePacket(p): the ownership transition this analyzer exists for.
	if isReleaseName(name) && len(call.Args) == 1 {
		if v := a.trackedUse(call.Args[0]); v != nil {
			if st[v] == released {
				if report {
					a.reportOnce(call.Pos(), "double release of packet %s: already released on this path", v.Name())
				}
			}
			st[v] = st[v]&^owned | released
			return
		}
	}

	// Receiver expression is a borrow (p.FlowKey() etc.).
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if v := a.trackedUse(sel.X); v != nil {
			a.checkUse(v, sel.X.Pos(), st, report)
		} else {
			a.evalExpr(sel.X, st, report, false)
		}
	}

	transfers := name != "" && a.transferRE.MatchString(name)
	for _, arg := range call.Args {
		if v := a.trackedUse(arg); v != nil {
			a.checkUse(v, arg.Pos(), st, report)
			if transfers {
				st[v] = st[v]&^owned | escaped
			}
			continue
		}
		a.evalExpr(arg, st, report, true)
	}
}

// checkUse reports a read of a variable that is definitely released.
func (a *funcAnalysis) checkUse(v *types.Var, pos token.Pos, st map[*types.Var]state, report bool) {
	if report && st[v] == released {
		a.reportOnce(pos, "use of packet %s after ReleasePacket", v.Name())
	}
}

// trackedUse resolves e to a tracked variable used as a value.
func (a *funcAnalysis) trackedUse(e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := a.pass.TypesInfo.Uses[id].(*types.Var)
	if ok && a.tracked[v] {
		return v
	}
	return nil
}

// trackedDef resolves an assignment LHS to a tracked variable (definition
// or reassignment).
func (a *funcAnalysis) trackedDef(e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if v, ok := a.pass.TypesInfo.Defs[id].(*types.Var); ok && a.tracked[v] {
		return v
	}
	if v, ok := a.pass.TypesInfo.Uses[id].(*types.Var); ok && a.tracked[v] {
		return v
	}
	return nil
}

// findTracked collects the variables under ownership tracking in fd:
// locals initialized from an allocator, and *Packet parameters the
// function releases on some path.
func (a *funcAnalysis) findTracked(fd *ast.FuncDecl) map[*types.Var]bool {
	tracked := make(map[*types.Var]bool)
	info := a.pass.TypesInfo

	// Locals: p := AllocPacket(...) / var p = ClonePacket(...).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				if !a.isAllocCall(rhs) {
					continue
				}
				if id, ok := n.Lhs[i].(*ast.Ident); ok {
					if v := defOrUseVar(info, id); v != nil {
						tracked[v] = true
					}
				}
			}
		case *ast.ValueSpec:
			for i, val := range n.Values {
				if !a.isAllocCall(val) {
					continue
				}
				if i < len(n.Names) {
					if v := defOrUseVar(info, n.Names[i]); v != nil {
						tracked[v] = true
					}
				}
			}
		}
		return true
	})

	// Parameters of packet type that the body releases.
	params := make(map[*types.Var]bool)
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if v, ok := info.Defs[name].(*types.Var); ok && isPacketPtr(v.Type()) {
					params[v] = true
				}
			}
		}
	}
	if len(params) > 0 {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isReleaseName(calleeName(call)) || len(call.Args) != 1 {
				return true
			}
			if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
				if v, ok := info.Uses[id].(*types.Var); ok && params[v] {
					tracked[v] = true
				}
			}
			return true
		})
	}
	return tracked
}

func defOrUseVar(info *types.Info, id *ast.Ident) *types.Var {
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := info.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

func (a *funcAnalysis) isAllocCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch calleeName(call) {
	case "AllocPacket", "ClonePacket":
		return true
	}
	return false
}

func isReleaseName(name string) bool { return name == "ReleasePacket" }

// calleeName extracts the bare called name: ReleasePacket,
// netem.ReleasePacket and q.Enqueue all yield their Sel/Ident name.
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

func isPacketPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	return ok && n.Obj().Name() == typeName
}

func isParam(fd *ast.FuncDecl, v *types.Var) bool {
	if fd.Type.Params == nil {
		return false
	}
	return fd.Type.Params.Pos() <= v.Pos() && v.Pos() <= fd.Type.Params.End()
}

func isPanicNode(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

func cloneState(st map[*types.Var]state) map[*types.Var]state {
	out := make(map[*types.Var]state, len(st))
	for k, v := range st {
		out[k] = v
	}
	return out
}

// join merges out into the successor's in-state, reporting change.
func join(dst, src map[*types.Var]state) (map[*types.Var]state, bool) {
	if dst == nil {
		return cloneState(src), true
	}
	changed := false
	for v, s := range src {
		if dst[v]|s != dst[v] {
			dst[v] |= s
			changed = true
		}
	}
	return dst, changed
}
