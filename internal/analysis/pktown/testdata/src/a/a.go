// Fixture for the pktown analyzer: loaded under the package path
// hwatch/internal/netem/a, inside the ownership scope.
package a

type Packet struct {
	ID   int
	Rwnd uint16
}

func AllocPacket() *Packet          { return &Packet{} }
func ClonePacket(p *Packet) *Packet { c := *p; return &c }
func ReleasePacket(p *Packet)       {}

// Send takes ownership (transfer-by-name).
func Send(p *Packet) {}

// inspect borrows: the caller still owns the packet afterwards.
func inspect(p *Packet) int { return p.ID }

func useAfterRelease() {
	p := AllocPacket()
	ReleasePacket(p)
	_ = p.ID // want `use of packet p after ReleasePacket`
}

func doubleRelease() {
	p := AllocPacket()
	ReleasePacket(p)
	ReleasePacket(p) // want `double release of packet p`
}

func leakOnDropPath(drop bool) {
	p := AllocPacket()
	if drop {
		return // want `pooled packet p leaks on this path`
	}
	Send(p)
}

func cloneLeaks(orig *Packet) {
	c := ClonePacket(orig)
	_ = c.ID
} // want `pooled packet c leaks on this path`

func balanced(drop bool) {
	p := AllocPacket()
	if drop {
		ReleasePacket(p)
		return
	}
	Send(p)
}

func returned() *Packet {
	p := AllocPacket()
	p.ID = 7
	return p // ownership moves to the caller: clean
}

func borrowThenSend() {
	p := AllocPacket()
	_ = inspect(p) // borrow: still owned
	Send(p)
}

// consume releases a parameter, so every path through it owes a release —
// the shape Host.deliverUp has, and the one a deleted Release call breaks.
func consume(p *Packet, bad bool) {
	if bad {
		return // want `pooled packet p leaks on this path`
	}
	ReleasePacket(p)
}

func suppressedLeak(drop bool) {
	p := AllocPacket()
	if drop {
		//hwatchvet:allow pktown ownership moves through a side table the dataflow cannot see
		return
	}
	Send(p)
}

// Engine stands in for sim.Engine: ScheduleRemoteArg is the cross-shard
// handoff (matched by the Schedule.* transfer pattern).
type Engine struct{}

func (e *Engine) ScheduleRemoteArg(dst *Engine, d int64, fn func(any), a any) {}

func deliverArg(a any) {}

// crossShardHandoff: handing a packet to another shard's engine via
// ScheduleRemoteArg is a legal ownership transfer — the receiving shard's
// dispatch releases it. No leak diagnostic.
func crossShardHandoff(e, dst *Engine) {
	p := AllocPacket()
	e.ScheduleRemoteArg(dst, 1, deliverArg, p)
}

// crossShardUseAfterHandoff: once handed off, the sender no longer owns
// the packet; the transfer is conservative (escaped), so later reads are
// not flagged — but a drop path before the handoff still must release.
func crossShardDropBeforeHandoff(e, dst *Engine, drop bool) {
	p := AllocPacket()
	if drop {
		return // want `pooled packet p leaks on this path`
	}
	e.ScheduleRemoteArg(dst, 1, deliverArg, p)
}

func (e *Engine) ScheduleArg(d int64, fn func(any), a any) {}

// corruptMaybeDrop is the impairment corrupt-then-drop shape: the drop
// branch releases, the survivor transfers onward. Clean.
func corruptMaybeDrop(e *Engine, drop bool) {
	p := AllocPacket()
	p.Rwnd ^= 0x0040
	if drop {
		ReleasePacket(p)
		return
	}
	Send(p)
}

// corruptDropLeaks is the same shape with the release deleted.
func corruptDropLeaks(drop bool) {
	p := AllocPacket()
	p.Rwnd ^= 0x0040
	if drop {
		return // want `pooled packet p leaks on this path`
	}
	Send(p)
}

// duplicateCopies: every clone is transferred (re-injected behind the
// original via a scheduled event), then the original moves on. Clean.
func duplicateCopies(e *Engine, orig *Packet, copies int) {
	for i := 0; i < copies; i++ {
		c := ClonePacket(orig)
		e.ScheduleArg(0, deliverArg, c)
	}
	Send(orig)
}

// duplicateCopyLeaks drops a clone on the floor when the loop bails.
func duplicateCopyLeaks(orig *Packet, bail bool) {
	c := ClonePacket(orig)
	if bail {
		return // want `pooled packet c leaks on this path`
	}
	Send(c)
	Send(orig)
}

// holdAndRelease is the reorder/jitter hold shape: the pending release
// event owns the packet while it is parked. Clean.
func holdAndRelease(e *Engine, delay int64) {
	p := AllocPacket()
	e.ScheduleArg(delay, deliverArg, p)
}

// holdLeaksWithoutTransfer parks the packet nowhere on the early path.
func holdLeaksWithoutTransfer(e *Engine, skip bool) {
	p := AllocPacket()
	if skip {
		return // want `pooled packet p leaks on this path`
	}
	e.ScheduleArg(1, deliverArg, p)
}
