package pktown_test

import (
	"testing"

	"hwatch/internal/analysis/atest"
	"hwatch/internal/analysis/pktown"
)

// TestPktown exercises use-after-release, double release, drop-path leaks
// (locals and released parameters), the borrow/transfer distinction, and
// suppression.
func TestPktown(t *testing.T) {
	atest.Run(t, "testdata/src/a", "hwatch/internal/netem/a", pktown.Analyzer)
}
