// Package schedclosure defines an analyzer that keeps the simulator hot
// path allocation-free at the scheduling boundary: a func literal passed
// to Engine.Schedule / ScheduleArg / At / AtArg that captures variables
// allocates a fresh closure per event and aliases model state into the
// event queue. Hot-path code must pass a bound method cached at
// construction time (Port.txDoneFn style) with the payload as the explicit
// ScheduleArg argument.
//
// Capture-free literals are permitted: they compile to a static closure
// and allocate nothing.
package schedclosure

import (
	"go/ast"
	"go/types"
	"reflect"
	"regexp"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"hwatch/internal/analysis/allowdir"
)

// DefaultScope matches the per-packet / per-event hot-path packages.
const DefaultScope = `^hwatch/internal/(sim|netem|tcp|core|aqm)(/|$)`

var Analyzer = &analysis.Analyzer{
	Name: "schedclosure",
	Doc: "forbid capturing func literals at Engine.Schedule/ScheduleArg/At/AtArg " +
		"call sites in hot-path packages (per-event closure allocation + aliasing hazard)",
	Requires:   []*analysis.Analyzer{inspect.Analyzer},
	ResultType: reflect.TypeOf(allowdir.Used{}),
	Run:        run,
}

var scope = DefaultScope

func init() {
	Analyzer.Flags.StringVar(&scope, "scope", DefaultScope,
		"regexp of package paths treated as hot path")
}

var schedNames = map[string]bool{
	"Schedule": true, "ScheduleArg": true, "At": true, "AtArg": true,
}

func run(pass *analysis.Pass) (any, error) {
	used := allowdir.Used{}
	re, err := regexp.Compile(scope)
	if err != nil {
		return nil, err
	}
	if !re.MatchString(pass.Pkg.Path()) {
		return used, nil
	}
	set := allowdir.Collect(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// Local variables defined as func literals (deliver := func(){...}),
	// so passing the variable instead of the literal does not evade the
	// check.
	litVars := make(map[*types.Var]*ast.FuncLit)
	ins.Preorder([]ast.Node{(*ast.AssignStmt)(nil), (*ast.ValueSpec)(nil)}, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return
			}
			for i, rhs := range n.Rhs {
				lit, ok := rhs.(*ast.FuncLit)
				if !ok {
					continue
				}
				if id, ok := n.Lhs[i].(*ast.Ident); ok {
					if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
						litVars[v] = lit
					}
				}
			}
		case *ast.ValueSpec:
			for i, val := range n.Values {
				lit, ok := val.(*ast.FuncLit)
				if !ok || i >= len(n.Names) {
					continue
				}
				if v, ok := pass.TypesInfo.Defs[n.Names[i]].(*types.Var); ok {
					litVars[v] = lit
				}
			}
		}
	})

	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		if strings.HasSuffix(pass.Fset.Position(n.Pos()).Filename, "_test.go") {
			return
		}
		call := n.(*ast.CallExpr)
		fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
		if !ok || !schedNames[fn.Name()] {
			return
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil || recvTypeName(sig.Recv().Type()) != "Engine" {
			return
		}
		for _, arg := range call.Args {
			lit, ok := arg.(*ast.FuncLit)
			if !ok {
				// deliver := func(){...}; eng.Schedule(d, deliver) is the
				// same per-event allocation one hop removed.
				if id, isIdent := arg.(*ast.Ident); isIdent {
					if v, isVar := pass.TypesInfo.Uses[id].(*types.Var); isVar {
						lit, ok = litVars[v], litVars[v] != nil
					}
				}
				if !ok {
					continue
				}
			}
			if caps := captures(pass, lit); len(caps) > 0 {
				allowdir.Report(pass, set, used, "schedclosure", arg.Pos(),
					"func literal passed to Engine.%s captures %s: allocates a closure per event; use a cached bound method and pass the value via %s",
					fn.Name(), strings.Join(caps, ", "), argForm(fn.Name()))
			}
		}
	})
	return used, nil
}

func argForm(sched string) string {
	if strings.HasPrefix(sched, "At") {
		return "AtArg"
	}
	return "ScheduleArg"
}

// captures returns the sorted names of non-package-level variables the
// literal closes over.
func captures(pass *analysis.Pass, lit *ast.FuncLit) []string {
	seen := make(map[*types.Var]bool)
	var names []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		// Declared inside the literal: not a capture.
		if lit.Pos() <= v.Pos() && v.Pos() <= lit.End() {
			return true
		}
		// Package-level variables live in the data segment; closing over
		// them needs no closure cell.
		if v.Parent() == pass.Pkg.Scope() {
			return true
		}
		seen[v] = true
		names = append(names, v.Name())
		return true
	})
	sort.Strings(names)
	return names
}

func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}
