package schedclosure_test

import (
	"testing"

	"hwatch/internal/analysis/atest"
	"hwatch/internal/analysis/schedclosure"
)

// TestSchedclosure exercises capturing literals (direct and via a local
// variable), the sanctioned cached-bound-method shape, and suppression.
func TestSchedclosure(t *testing.T) {
	atest.Run(t, "testdata/src/a", "hwatch/internal/netem/a", schedclosure.Analyzer)
}
