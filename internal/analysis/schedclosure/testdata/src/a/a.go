// Fixture for the schedclosure analyzer: loaded under the package path
// hwatch/internal/netem/a, inside the hot-path scope.
package a

type Event struct{}

type Engine struct{}

func (e *Engine) Schedule(delay int64, fn func()) *Event            { return &Event{} }
func (e *Engine) ScheduleArg(d int64, fn func(any), arg any) *Event { return &Event{} }
func (e *Engine) At(t int64, fn func()) *Event                      { return &Event{} }

type Packet struct{ ID int }

type Host struct {
	eng *Engine

	// Cached bound callback: the sanctioned allocation-free shape.
	deliverFn func(any)
}

func (h *Host) deliver(a any) { _ = a.(*Packet) }

func (h *Host) capturing(p *Packet) {
	h.eng.Schedule(10, func() { h.deliver(p) }) // want `captures h, p`
	h.eng.At(10, func() { h.deliver(p) })       // want `captures h, p`
}

func (h *Host) viaLocalVariable(p *Packet) {
	deliver := func() { h.deliver(p) }
	h.eng.Schedule(10, deliver) // want `captures h, p`
}

func (h *Host) sanctioned(p *Packet) {
	h.eng.ScheduleArg(10, h.deliverFn, p) // cached bound method: clean
	h.eng.Schedule(10, captureFree)       // func value, no literal: clean
	h.eng.Schedule(10, func() {})         // capture-free literal: clean
}

func (h *Host) suppressed(p *Packet) {
	//hwatchvet:allow schedclosure cold path, runs once per scenario
	h.eng.Schedule(10, func() { h.deliver(p) })
}

func captureFree() {}
