// Package atest is a minimal offline stand-in for
// golang.org/x/tools/go/analysis/analysistest, which the vendored x/tools
// subset does not include. It loads a fixture package from a testdata
// directory, typechecks it against the installed standard library, runs an
// analyzer (resolving its Requires graph), and matches diagnostics against
// `// want "regexp"` comments on the offending lines — the same expectation
// syntax analysistest uses, so fixtures stay forward-compatible if the real
// harness becomes available.
package atest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run loads the fixture directory dir as a package whose import path is
// pkgPath (the analyzers' scope regexps match on it), runs a and its
// requirements, and asserts the diagnostics equal the fixture's // want
// expectations. It returns each analyzer's result keyed by analyzer, so
// callers can assert on result values too.
func Run(t *testing.T, dir, pkgPath string, a *analysis.Analyzer) map[*analysis.Analyzer]any {
	t.Helper()

	fset := token.NewFileSet()
	files, err := parseDir(fset, dir)
	if err != nil {
		t.Fatalf("atest: %v", err)
	}
	if len(files) == 0 {
		t.Fatalf("atest: no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "source", nil),
	}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("atest: typecheck %s: %v", dir, err)
	}

	var diags []analysis.Diagnostic
	results := make(map[*analysis.Analyzer]any)
	runAnalyzer(t, a, fset, files, pkg, info, results, &diags)

	checkExpectations(t, fset, files, diags)
	return results
}

// runAnalyzer executes a (after its Requires, recursively), collecting
// diagnostics into diags and results into results.
func runAnalyzer(t *testing.T, a *analysis.Analyzer, fset *token.FileSet, files []*ast.File,
	pkg *types.Package, info *types.Info, results map[*analysis.Analyzer]any, diags *[]analysis.Diagnostic) {
	t.Helper()
	if _, done := results[a]; done {
		return
	}
	for _, req := range a.Requires {
		runAnalyzer(t, req, fset, files, pkg, info, results, diags)
	}
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		TypesInfo:  info,
		TypesSizes: types.SizesFor("gc", "amd64"),
		ResultOf:   copyResults(results),
		Report: func(d analysis.Diagnostic) {
			*diags = append(*diags, d)
		},
		// Fact plumbing: single-package fixtures have no dependencies'
		// facts to import; exports are dropped.
		ImportObjectFact:  func(types.Object, analysis.Fact) bool { return false },
		ExportObjectFact:  func(types.Object, analysis.Fact) {},
		ImportPackageFact: func(*types.Package, analysis.Fact) bool { return false },
		ExportPackageFact: func(analysis.Fact) {},
		AllObjectFacts:    func() []analysis.ObjectFact { return nil },
		AllPackageFacts:   func() []analysis.PackageFact { return nil },
	}
	res, err := a.Run(pass)
	if err != nil {
		t.Fatalf("atest: analyzer %s: %v", a.Name, err)
	}
	if a.ResultType != nil && res != nil {
		results[a] = res
	} else {
		results[a] = nil
	}
}

func copyResults(m map[*analysis.Analyzer]any) map[*analysis.Analyzer]any {
	out := make(map[*analysis.Analyzer]any, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// wantRE accepts the two analysistest pattern spellings: a double-quoted
// string (group 1, backslash-escaped) or a raw backquoted string (group 2).
var wantRE = regexp.MustCompile("// want (?:\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`)")

// checkExpectations matches diagnostics to // want comments line by line.
func checkExpectations(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRE.FindAllStringSubmatch(c.Text, -1) {
					raw := m[1]
					if m[2] != "" {
						raw = m[2]
					}
					pat, err := unquotePattern(raw)
					if err != nil {
						t.Fatalf("atest: bad want pattern %q: %v", raw, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("atest: bad want regexp %q: %v", pat, err)
					}
					p := fset.Position(c.Slash)
					wants = append(wants, &expectation{file: p.Filename, line: p.Line, re: re})
				}
			}
		}
	}

	for _, d := range diags {
		p := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == p.Filename && w.line == p.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", p, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// unquotePattern undoes the \" escaping a want comment needs to hold a
// double quote inside the pattern.
func unquotePattern(s string) (string, error) {
	if !strings.Contains(s, `\`) {
		return s, nil
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			switch s[i+1] {
			case '"':
				b.WriteByte('"')
				i++
				continue
			case '\\':
				b.WriteByte('\\')
				i++
				continue
			}
		}
		b.WriteByte(s[i])
	}
	return b.String(), nil
}
