// Fixture for the ctxflow analyzer: loaded by atest under the package
// path hwatch/internal/server/a, which is inside the context-threading
// contract (and is not package main).
package a

import (
	"context"
	"time"
)

// RunContext is the threaded entry point the compat wrappers delegate to.
func RunContext(ctx context.Context) error { return ctx.Err() }

// Run is the sanctioned compat-wrapper shape: no context parameter, and
// the fresh root flows directly into a *Context-named callee.
func Run() error {
	return RunContext(context.Background())
}

// RunParen still matches through parentheses.
func RunParen() error {
	return RunContext((context.Background()))
}

func mintsRoot() {
	ctx := context.Background() // want `context\.Background mints a fresh root`
	_ = ctx
}

func mintsTODO() {
	ctx := context.TODO() // want `context\.TODO mints a fresh root`
	_ = ctx
}

// hasCtxButMints has a caller context to thread, so delegating to a
// *Context callee does not excuse the fresh root.
func hasCtxButMints(ctx context.Context) error {
	return RunContext(context.Background()) // want `context\.Background mints a fresh root`
}

// withTimeout derives from a fresh root instead of the caller's context;
// WithTimeout is not a *Context-named delegate, so the wrapper exemption
// does not apply.
func withTimeout() {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second) // want `context\.Background mints a fresh root`
	defer cancel()
	_ = ctx
}

// threaded is the contract being enforced: accept and pass through.
func threaded(ctx context.Context) error {
	return RunContext(ctx)
}

func suppressed() {
	//hwatchvet:allow ctxflow background worker outlives every request by design; lifecycle is owned by Close
	ctx := context.Background()
	_ = ctx
}
