// Fixture for the stale-allow path: no fresh root is minted, so the
// directive analyzer must flag the allow as stale. Loaded under the
// package path hwatch/internal/server/stale.
package stale

import "context"

func runThreaded(ctx context.Context) error { return ctx.Err() }

func use(ctx context.Context) error {
	//hwatchvet:allow ctxflow no fresh root minted on this path // want `stale //hwatchvet:allow ctxflow directive`
	return runThreaded(ctx)
}
