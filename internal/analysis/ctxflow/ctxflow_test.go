package ctxflow_test

import (
	"testing"

	"hwatch/internal/analysis/atest"
	"hwatch/internal/analysis/ctxflow"
	"hwatch/internal/analysis/directive"
)

// TestCtxflow exercises the context-threading contract against the
// fixture: fresh roots flag, compat wrappers delegating to a *Context
// callee, properly threaded code, and allow-suppressed sites stay silent.
func TestCtxflow(t *testing.T) {
	atest.Run(t, "testdata/src/a", "hwatch/internal/server/a", ctxflow.Analyzer)
}

// TestCtxflowStaleAllow runs the directive analyzer (which requires
// ctxflow) over a fixture whose allow suppresses nothing: the stale
// directive must be reported.
func TestCtxflowStaleAllow(t *testing.T) {
	atest.Run(t, "testdata/src/stale", "hwatch/internal/server/stale", directive.Analyzer)
}
