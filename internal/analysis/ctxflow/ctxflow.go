// Package ctxflow defines an analyzer that enforces end-to-end context
// threading: library code must not mint fresh contexts with
// context.Background() or context.TODO(). A function that wants
// cancellation must receive a context from its caller; the only way to
// drop the chain is to mint a fresh root, so the ban enforces the
// threading contract at its root cause. Without it, a Run*/pool entry
// point reached through a fresh root keeps running after the caller —
// an hwatchd job, a CLI SIGINT, a test deadline — has cancelled.
//
// Exemptions:
//   - package main (the process root legitimately creates the root
//     context) and _test.go files;
//   - compatibility wrappers: a function with no context.Context
//     parameter whose Background()/TODO() value is passed directly to a
//     callee whose name ends in "Context" (the `Run` → `RunContext`
//     pattern keeps old call sites compiling while new code threads);
//   - justified //hwatchvet:allow ctxflow sites (e.g. a documented
//     nil-context default at an API boundary).
package ctxflow

import (
	"go/ast"
	"go/types"
	"reflect"
	"regexp"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"hwatch/internal/analysis/allowdir"
)

// DefaultScope matches every first-party package; package main is
// exempted by name, not by path.
const DefaultScope = `^hwatch/`

var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "forbid context.Background()/TODO() outside package main, tests, " +
		"compat wrappers delegating to a *Context variant, and justified " +
		"//hwatchvet:allow sites — cancellation must thread end to end",
	Requires:   []*analysis.Analyzer{inspect.Analyzer},
	ResultType: usedType,
	Run:        run,
}

var scope = DefaultScope

func init() {
	Analyzer.Flags.StringVar(&scope, "scope", DefaultScope,
		"regexp of package paths under the context-threading contract")
}

func run(pass *analysis.Pass) (any, error) {
	used := allowdir.Used{}
	re, err := regexp.Compile(scope)
	if err != nil {
		return nil, err
	}
	if !re.MatchString(pass.Pkg.Path()) || pass.Pkg.Name() == "main" {
		return used, nil
	}
	set := allowdir.Collect(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	nodeFilter := []ast.Node{(*ast.CallExpr)(nil)}
	ins.WithStack(nodeFilter, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		if strings.HasSuffix(pass.Fset.Position(n.Pos()).Filename, "_test.go") {
			return false
		}
		call := n.(*ast.CallExpr)
		name := freshContextCall(pass.TypesInfo, call)
		if name == "" {
			return true
		}
		if isCompatWrapper(pass.TypesInfo, call, stack) {
			return true
		}
		allowdir.Report(pass, set, used, "ctxflow", call.Pos(),
			"context.%s mints a fresh root: cancellation stops here — thread the caller's context instead (add a ctx parameter, or delegate through a *Context variant)", name)
		return true
	})
	return used, nil
}

// freshContextCall returns "Background" or "TODO" when the call is
// context.Background() / context.TODO(), else "".
func freshContextCall(info *types.Info, call *ast.CallExpr) string {
	fn, ok := typeutil.Callee(info, call).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return ""
	}
	if fn.Name() == "Background" || fn.Name() == "TODO" {
		return fn.Name()
	}
	return ""
}

// isCompatWrapper reports whether this Background()/TODO() is the
// sanctioned compatibility-wrapper shape: the enclosing function has no
// context.Context parameter (so there is nothing to thread) and the
// fresh context flows directly into a call whose callee name ends in
// "Context".
func isCompatWrapper(info *types.Info, call *ast.CallExpr, stack []ast.Node) bool {
	enclosing := enclosingFunc(stack)
	if enclosing == nil || hasContextParam(info, enclosing) {
		return false
	}
	// Walk outward: the parent node must be (an argument of) a call to a
	// *Context-named callee, possibly through parens.
	for i := len(stack) - 2; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.CallExpr:
			for _, arg := range parent.Args {
				if ast.Unparen(arg) == ast.Node(call) {
					return calleeNameEndsInContext(info, parent)
				}
			}
			return false
		default:
			return false
		}
	}
	return false
}

func calleeNameEndsInContext(info *types.Info, call *ast.CallExpr) bool {
	if fn, ok := typeutil.Callee(info, call).(*types.Func); ok {
		return strings.HasSuffix(fn.Name(), "Context")
	}
	// Dynamic callee: fall back to the syntactic name.
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return strings.HasSuffix(fun.Name, "Context")
	case *ast.SelectorExpr:
		return strings.HasSuffix(fun.Sel.Name, "Context")
	}
	return false
}

// enclosingFunc returns the innermost FuncDecl or FuncLit on the stack.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// hasContextParam reports whether the function (or, for a literal, any
// enclosing declared function would be checked by its own visit) takes
// a context.Context parameter.
func hasContextParam(info *types.Info, fn ast.Node) bool {
	var ft *ast.FuncType
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		ft = fn.Type
	case *ast.FuncLit:
		ft = fn.Type
	}
	if ft == nil || ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if isContextType(info.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

var usedType = reflect.TypeOf(allowdir.Used{})
