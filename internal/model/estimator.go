package model

// CongestionEstimator implements Section III-D's observation: packets of
// one flow leave the sender back to back, but under congestion other
// tenants' packets interleave in the shared queue, so the receiver-side
// inter-arrival gaps stretch relative to the send gaps. The ratio of the
// two, smoothed, is a stochastic congestion signal that needs no switch
// support at all — HWatch's "Probe2" information channel.
type CongestionEstimator struct {
	// Gain is the EWMA weight for new samples (default 1/8).
	Gain float64
	// BurstGap, when positive, restricts sampling to packet pairs sent at
	// most BurstGap apart (back to back at the sender). ACK-clocked pairs
	// already carry the bottleneck spacing in their *send* gaps and would
	// dilute the signal; only bursts reveal cross-traffic interleaving.
	BurstGap int64

	lastSend    int64
	lastArrival int64
	have        bool
	ratio       float64 // smoothed arrival-gap / send-gap (spaced pairs)
	samples     int64
	spacing     float64 // smoothed arrival gap of burst pairs, ns
	burstN      int64
	owd         float64 // smoothed one-way delay, ns
	owdMin      int64   // observed floor (propagation + serialization)
}

// NewCongestionEstimator returns an estimator with the default gain.
func NewCongestionEstimator() *CongestionEstimator {
	return &CongestionEstimator{Gain: 0.125}
}

// Observe feeds one packet's send timestamp and arrival timestamp (both in
// ns, from the same flow, in order).
func (e *CongestionEstimator) Observe(sentAt, arrivedAt int64) {
	if d := arrivedAt - sentAt; d > 0 {
		if e.owdMin == 0 || d < e.owdMin {
			e.owdMin = d
		}
		if e.owd == 0 {
			e.owd = float64(d)
		} else {
			e.owd = (1-e.Gain)*e.owd + e.Gain*float64(d)
		}
	}
	if !e.have {
		e.lastSend, e.lastArrival = sentAt, arrivedAt
		e.have = true
		return
	}
	sendGap := sentAt - e.lastSend
	arrGap := arrivedAt - e.lastArrival
	e.lastSend, e.lastArrival = sentAt, arrivedAt
	if sendGap <= e.BurstGap && arrGap > 0 {
		// A burst pair: its arrival gap is one service round of the
		// bottleneck, stretched by whatever cross traffic interleaved.
		if e.burstN == 0 {
			e.spacing = float64(arrGap)
		} else {
			e.spacing = (1-e.Gain)*e.spacing + e.Gain*float64(arrGap)
		}
		e.burstN++
	}
	if sendGap <= 0 {
		return // simultaneous sends carry no gap-ratio information
	}
	r := float64(arrGap) / float64(sendGap)
	if e.samples == 0 {
		e.ratio = r
	} else {
		e.ratio = (1-e.Gain)*e.ratio + e.Gain*r
	}
	e.samples++
}

// Samples returns how many gap samples were incorporated.
func (e *CongestionEstimator) Samples() int64 { return e.samples }

// Ratio returns the smoothed dilation. The absolute value reflects the
// edge-to-bottleneck rate ratio for burst pairs; what signals congestion
// is its *increase* over the flow's uncongested baseline (cross traffic
// interleaving stretches arrival gaps further).
func (e *CongestionEstimator) Ratio() float64 {
	if e.samples == 0 {
		return 1
	}
	return e.ratio
}

// BurstSpacing returns the smoothed arrival gap (ns) of burst pairs
// (pairs sent within BurstGap of each other): the bottleneck's effective
// per-packet service time for this flow, inflated by interleaved cross
// traffic. 0 until a burst pair was observed.
func (e *CongestionEstimator) BurstSpacing() float64 { return e.spacing }

// BurstSamples returns how many burst pairs were incorporated.
func (e *CongestionEstimator) BurstSamples() int64 { return e.burstN }

// Delay returns the smoothed one-way delay (ns); 0 before any sample.
// Comparing it against an uncongested-epoch baseline is the most robust of
// the Section III-D channels.
func (e *CongestionEstimator) Delay() float64 { return e.owd }

// DelayInflation returns the smoothed one-way delay divided by the
// observed floor. Note the caveat: under *persistent* congestion the
// floor itself is inflated (the flow never sees an empty queue), so this
// ratio understates standing queues; prefer comparing Delay across
// epochs.
func (e *CongestionEstimator) DelayInflation() float64 {
	if e.owdMin == 0 {
		return 1
	}
	return e.owd / float64(e.owdMin)
}

// Congested applies a simple threshold verdict: either the gap ratio or
// the delay inflation exceeds 1+margin.
func (e *CongestionEstimator) Congested(margin float64) bool {
	return e.Ratio() > 1+margin || e.DelayInflation() > 1+margin
}
