package model

import (
	"testing"

	"hwatch/internal/aqm"
	"hwatch/internal/netem"
	"hwatch/internal/sim"
	"hwatch/internal/tcp"
	"hwatch/internal/topo"
)

func TestEstimatorIdlePath(t *testing.T) {
	e := NewCongestionEstimator()
	if e.Ratio() != 1 {
		t.Fatal("empty estimator must report 1")
	}
	// Back-to-back sends arriving with identical spacing: ratio 1.
	for i := int64(0); i < 100; i++ {
		e.Observe(i*1000, 5000+i*1000)
	}
	if r := e.Ratio(); r < 0.99 || r > 1.01 {
		t.Fatalf("idle ratio = %f", r)
	}
	if infl := e.DelayInflation(); infl != 1 {
		t.Fatalf("constant-delay inflation = %f", infl)
	}
	if e.Congested(0.1) {
		t.Fatal("idle path flagged congested")
	}
}

func TestEstimatorDilation(t *testing.T) {
	e := NewCongestionEstimator()
	// Arrival gaps 3x the send gaps (cross traffic interleaving).
	for i := int64(0); i < 100; i++ {
		e.Observe(i*1000, 5000+i*3000)
	}
	if r := e.Ratio(); r < 2.5 || r > 3.5 {
		t.Fatalf("dilated ratio = %f, want ~3", r)
	}
	if !e.Congested(0.5) {
		t.Fatal("dilation not flagged")
	}
}

func TestEstimatorIgnoresSimultaneousSendsForRatio(t *testing.T) {
	e := NewCongestionEstimator()
	e.Observe(100, 200)
	e.Observe(100, 900) // same send time: no ratio info...
	if e.Samples() != 0 {
		t.Fatalf("zero-gap ratio sample incorporated: %d", e.Samples())
	}
	// ...but it IS a burst pair: its arrival gap is a service-time sample.
	if e.BurstSamples() != 1 || e.BurstSpacing() != 700 {
		t.Fatalf("burst pair lost: n=%d spacing=%f", e.BurstSamples(), e.BurstSpacing())
	}
}

// Simulation cross-check: a probe flow's dilation ratio is near 1 on an
// idle fabric and clearly above 1 when elephants share the bottleneck.
func TestEstimatorSeesCrossTraffic(t *testing.T) {
	measure := func(withCross bool) float64 {
		d := topo.NewDumbbell(topo.DumbbellConfig{
			Senders:       3,
			EdgeRateBps:   10e9,
			BottleneckBps: 1e9,
			LinkDelay:     25 * sim.Microsecond,
			BottleneckQ:   func() netem.Queue { return aqm.NewDropTail(500) },
			EdgeQ:         func() netem.Queue { return aqm.NewDropTail(100000) },
		})
		cfg := tcp.DefaultConfig()
		d.Receiver.Listen(80, tcp.NewListener(d.Receiver, cfg, nil))
		if withCross {
			tcp.NewSender(d.Senders[1], d.Receiver.ID, 80, tcp.Infinite, cfg).Start()
			tcp.NewSender(d.Senders[2], d.Receiver.ID, 80, tcp.Infinite, cfg).Start()
		}

		// The measured flow starts after the elephants fill the queue.
		est := NewCongestionEstimator()
		est.BurstGap = 5 * sim.Microsecond // only back-to-back pairs
		d.Receiver.AddFilter(&estTap{est: est, src: d.Senders[0].ID, eng: d.Net.Eng})
		d.Net.Eng.At(50*sim.Millisecond, func() {
			tcp.NewSender(d.Senders[0], d.Receiver.ID, 80, 200_000, cfg).Start()
		})
		d.Net.Eng.RunUntil(3 * sim.Second)
		if est.BurstSamples() < 10 {
			t.Fatalf("too few burst samples: %d", est.BurstSamples())
		}
		// Burst spacing must at least see the bottleneck service time.
		if sp := est.BurstSpacing(); sp < 5_000 {
			t.Fatalf("burst spacing %.0fns below one service round", sp)
		}
		return est.Delay()
	}
	idle := measure(false)
	busy := measure(true)
	// The elephants' standing queue must dominate the measured flow's own
	// transient self-queueing.
	if idle <= 0 {
		t.Fatal("no delay samples on the idle run")
	}
	if busy < 2*idle {
		t.Fatalf("cross traffic not detected: idle=%.0fns busy=%.0fns", idle, busy)
	}
}

// estTap feeds data-packet timestamps of one source into the estimator.
type estTap struct {
	est *CongestionEstimator
	src netem.NodeID
	eng *sim.Engine
}

func (t *estTap) Name() string { return "est" }
func (t *estTap) Outbound(p *netem.Packet) netem.Verdict {
	return netem.VerdictPass
}
func (t *estTap) Inbound(p *netem.Packet) netem.Verdict {
	if p.Src == t.src && p.IsData() {
		t.est.Observe(p.SentAt, t.eng.Now())
	}
	return netem.VerdictPass
}
