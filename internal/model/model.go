// Package model implements the paper's analytical framework (Sections III
// and IV): the buffer-sizing rules of thumb, the batch arithmetic that
// maps a packet burst onto buffer drain rounds (the bin-packing view), and
// the queue bounds of Theorems IV.1-IV.2 with the delivery-time results of
// Lemma IV.3. The experiment suite cross-checks the simulator against
// these closed forms.
package model

import "hwatch/internal/sim"

// Params describes one congestion point.
type Params struct {
	RTT     int64 // round-trip time, ns
	RateBps int64 // link capacity, bits/s
	PktSize int   // bytes per packet (MTU)
}

// CapacityPktsPerRTT returns C*RTT in packets — the bandwidth-delay
// product, the paper's (and the Internet's) buffer rule of thumb B.
func (p Params) CapacityPktsPerRTT() float64 {
	return float64(p.RateBps) * float64(p.RTT) / float64(sim.Second) / 8 / float64(p.PktSize)
}

// RuleOfThumbBuffer returns B = RTT*C in packets (Appenzeller et al.; the
// paper notes production DCs deploy this, not the 3x variant).
func (p Params) RuleOfThumbBuffer() int {
	return int(p.CapacityPktsPerRTT())
}

// RecommendedK returns the DCTCP marking threshold the paper adopts,
// K = (1/7) * RTT * C, in packets.
func (p Params) RecommendedK() int {
	return int(p.CapacityPktsPerRTT() / 7)
}

// DrainTime returns the time to drain q packets at link rate.
func (p Params) DrainTime(q int) int64 {
	return int64(q) * int64(p.PktSize) * 8 * sim.Second / p.RateBps
}

// BatchesForBurst is the Section III-A decomposition: X packets arriving
// at a buffer of size B currently holding Q packets need
// ceil((X-(B-Q))/B) + 1 batches to avoid overflow (1 if the burst already
// fits the headroom).
func BatchesForBurst(x, b, q int) int {
	if b <= 0 {
		panic("model: non-positive buffer")
	}
	if q < 0 || q > b {
		panic("model: queue outside [0, buffer]")
	}
	headroom := b - q
	if x <= headroom {
		return 1
	}
	over := x - headroom
	return (over+b-1)/b + 1
}

// Theorem IV.1: if each of n flows transmits only its unmarked count
// X_UM, the aggregate queue is bounded. The bound depends on the standing
// traffic when the burst arrives:
//
//	case 1 (empty buffer):     Q <= K
//	case 2 (buffer at K):      Q <= 2K
//	case 3 (buffer beyond K):  Q <= 3K  (worst case, still <= B since
//	                           K = B/7 style thresholds keep 3K < B)
const (
	QueueBoundEmptyFactor  = 1
	QueueBoundPrimedFactor = 2
	QueueBoundWorstFactor  = 3
)

// MaxQueueUnderTheorem41 returns the worst-case queue (packets) when all
// flows obey the X_UM rule with threshold k.
func MaxQueueUnderTheorem41(k int) int { return QueueBoundWorstFactor * k }

// SafeUnderTheorem41 reports whether the worst-case bound fits the buffer.
func SafeUnderTheorem41(k, buffer int) bool {
	return MaxQueueUnderTheorem41(k) <= buffer
}

// Theorem IV.2 / Corollaries: the marked count X_M must be split in two
// batches; with the merged first batch (Cor. IV.2.2) the queue peaks at
// Q = 2K + K + (B-K)/2 = (6/7)*RTT*C when K = RTT*C/7 — still below B.

// MergedBatchPeakQueue returns that peak (packets) for threshold k and
// buffer b.
func MergedBatchPeakQueue(k, b int) int { return 3*k + (b-k)/2 }

// Lemma IV.3: three batches complete within 2 RTTs through a single
// switch; Corollary IV.3.1: within RTT + 2T for paths of >= 3 hops, where
// T is the full-buffer drain time.

// DeliveryBoundSingleSwitch returns the Lemma IV.3 bound.
func DeliveryBoundSingleSwitch(rtt int64) int64 { return 2 * rtt }

// DeliveryBoundMultiHop returns the Corollary IV.3.1 bound.
func DeliveryBoundMultiHop(rtt, drainTime int64) int64 { return rtt + 2*drainTime }
