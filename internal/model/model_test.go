package model

import (
	"testing"
	"testing/quick"

	"hwatch/internal/aqm"
	"hwatch/internal/core"
	"hwatch/internal/netem"
	"hwatch/internal/sim"
	"hwatch/internal/tcp"
	"hwatch/internal/topo"
)

func paperParams() Params {
	// The simulation setup of Section V: 10 Gb/s, RTT 100 us, 1500 B MTU.
	return Params{RTT: 100 * sim.Microsecond, RateBps: 10e9, PktSize: 1500}
}

func TestCapacityArithmetic(t *testing.T) {
	p := paperParams()
	// 10 Gb/s * 100 us = 125 KB = ~83 packets.
	if got := p.CapacityPktsPerRTT(); got < 83 || got > 84 {
		t.Fatalf("BDP = %f pkts, want ~83.3", got)
	}
	if got := p.RuleOfThumbBuffer(); got != 83 {
		t.Fatalf("rule-of-thumb buffer = %d", got)
	}
	if got := p.RecommendedK(); got != 11 {
		t.Fatalf("K = %d, want 11 (RTT*C/7)", got)
	}
	// Draining 83 packets at 10 Gb/s takes ~99.6 us ≈ one RTT, by
	// construction of the rule of thumb.
	d := p.DrainTime(83)
	if d < 99*sim.Microsecond || d > 101*sim.Microsecond {
		t.Fatalf("drain(B) = %d ns, want ~RTT", d)
	}
}

func TestBatchesForBurst(t *testing.T) {
	cases := []struct{ x, b, q, want int }{
		{10, 100, 0, 1},   // fits headroom
		{100, 100, 0, 1},  // exactly fits
		{101, 100, 0, 2},  // one packet over
		{100, 100, 50, 2}, // primed queue halves headroom
		{250, 100, 0, 3},  // 150 over = 2 extra bins
		{1, 1, 0, 1},
		{1, 1, 1, 2},
	}
	for _, c := range cases {
		if got := BatchesForBurst(c.x, c.b, c.q); got != c.want {
			t.Errorf("BatchesForBurst(%d,%d,%d) = %d, want %d", c.x, c.b, c.q, got, c.want)
		}
	}
}

// Property: the batch decomposition never overflows — each batch fits the
// buffer, and batches cover the whole burst.
func TestPropertyBatchesSufficient(t *testing.T) {
	f := func(xr, br, qr uint16) bool {
		b := 1 + int(br%500)
		q := int(qr) % (b + 1)
		x := int(xr)
		n := BatchesForBurst(x, b, q)
		// First batch may use the headroom, later batches a full buffer.
		capacity := (b - q) + (n-1)*b
		return capacity >= x && n >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// Property: the decomposition is minimal — one fewer batch cannot cover
// the burst.
func TestPropertyBatchesMinimal(t *testing.T) {
	f := func(xr, br, qr uint16) bool {
		b := 1 + int(br%500)
		q := int(qr) % (b + 1)
		x := int(xr)
		n := BatchesForBurst(x, b, q)
		if n == 1 {
			return true
		}
		capacity := (b - q) + (n-2)*b
		return capacity < x
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchesValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero buffer": func() { BatchesForBurst(1, 0, 0) },
		"neg queue":   func() { BatchesForBurst(1, 10, -1) },
		"queue > buf": func() { BatchesForBurst(1, 10, 11) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestTheoremBounds(t *testing.T) {
	// With K = B/7 (the paper's threshold), every bound fits the buffer.
	b := 250
	k := b / 7 // 35
	if !SafeUnderTheorem41(k, b) {
		t.Fatal("Theorem IV.1 bound should fit the buffer at K=B/7")
	}
	if MaxQueueUnderTheorem41(k) != 105 {
		t.Fatalf("3K = %d", MaxQueueUnderTheorem41(k))
	}
	// Merged-batch peak (Cor. IV.2.2): 3K + (B-K)/2 <= B requires small K;
	// at K = B/7 it is 6B/7 < B.
	peak := MergedBatchPeakQueue(k, b)
	if peak > b {
		t.Fatalf("merged-batch peak %d exceeds buffer %d", peak, b)
	}
	if peak != 3*k+(b-k)/2 {
		t.Fatal("peak formula broken")
	}
	if DeliveryBoundSingleSwitch(100) != 200 {
		t.Fatal("Lemma IV.3 bound")
	}
	if DeliveryBoundMultiHop(100, 30) != 160 {
		t.Fatal("Cor IV.3.1 bound")
	}
}

// Simulation cross-check of Theorem IV.1's spirit: a fleet of long-lived
// flows regulated by HWatch's Rule 1 at threshold K holds the peak queue
// within the 3K worst-case bound (plus one in-flight burst of slack for
// discretization).
func TestSimQueueStaysWithinTheorem41Bound(t *testing.T) {
	const (
		bufferPkts = 250
		k          = 50
	)
	q := aqm.NewMarkThresholdBytes(bufferPkts*netem.DefaultMTU, k*netem.DefaultMTU)
	d := topo.NewDumbbell(topo.DumbbellConfig{
		Senders:       8,
		EdgeRateBps:   100e9,
		BottleneckBps: 10e9,
		LinkDelay:     25 * sim.Microsecond,
		BottleneckQ:   func() netem.Queue { return q },
		EdgeQ:         func() netem.Queue { return aqm.NewDropTail(100000) },
	})
	shimCfg := core.DefaultConfig(100 * sim.Microsecond)
	for _, h := range d.Senders {
		core.Attach(h, shimCfg)
	}
	core.Attach(d.Receiver, shimCfg)

	tcfg := tcp.DefaultConfig()
	d.Receiver.Listen(80, tcp.NewListener(d.Receiver, tcfg, nil))
	for _, h := range d.Senders {
		tcp.NewSender(h, d.Receiver.ID, 80, tcp.Infinite, tcfg).Start()
	}

	peak := 0
	var sample func()
	sample = func() {
		if d.Net.Eng.Now() > 50*sim.Millisecond { // after convergence
			if v := q.Len(); v > peak {
				peak = v
			}
		}
		d.Net.Eng.Schedule(50*sim.Microsecond, sample)
	}
	d.Net.Eng.Schedule(0, sample)
	d.Net.Eng.RunUntil(300 * sim.Millisecond)

	bound := MaxQueueUnderTheorem41(k) + 10 // discretization slack
	if peak > bound {
		t.Fatalf("regulated peak queue %d pkts exceeds Theorem IV.1 bound %d", peak, bound)
	}
	if peak == 0 {
		t.Fatal("no queue observed; scenario broken")
	}
}
