package netem

import (
	"testing"

	"hwatch/internal/sim"
)

func impairNet(t *testing.T) (*Network, *Host, *Host) {
	t.Helper()
	n := NewNetwork()
	a := n.NewHost("a")
	b := n.NewHost("b")
	sw := n.NewSwitch("sw")
	n.LinkHostSwitch(a, sw, &unboundedQ{}, &unboundedQ{}, 1e9, sim.Microsecond)
	n.LinkHostSwitch(b, sw, &unboundedQ{}, &unboundedQ{}, 1e9, sim.Microsecond)
	return n, a, b
}

func sendN(n *Network, a, b *Host, count int) *recHandler {
	h := &recHandler{}
	b.Bind(ConnID{LocalPort: 80, Remote: a.ID, RemotePort: 1}, h)
	for i := 0; i < count; i++ {
		p := &Packet{
			Src: a.ID, Dst: b.ID, SrcPort: 1, DstPort: 80,
			Seq: int64(i), Payload: 100, Wire: 158, Flags: FlagACK, WScaleOpt: -1,
		}
		SetChecksum(p)
		a.Send(p)
	}
	n.Eng.Run()
	return h
}

func TestImpairmentDrop(t *testing.T) {
	n, a, b := impairNet(t)
	imp := AttachImpairment(a, &Impairment{Rng: sim.NewRNG(1), DropP: 0.3, SkipInbound: true})
	h := sendN(n, a, b, 1000)
	if imp.Dropped == 0 {
		t.Fatal("no drops injected")
	}
	if got := len(h.pkts) + int(imp.Dropped); got != 1000 {
		t.Fatalf("delivered+dropped = %d, want 1000", got)
	}
	frac := float64(imp.Dropped) / 1000
	if frac < 0.2 || frac > 0.4 {
		t.Fatalf("drop fraction %.2f, want ~0.3", frac)
	}
}

func TestImpairmentDuplicate(t *testing.T) {
	n, a, b := impairNet(t)
	imp := AttachImpairment(a, &Impairment{Rng: sim.NewRNG(2), DupP: 0.25, SkipInbound: true})
	h := sendN(n, a, b, 1000)
	if imp.Duplicated == 0 {
		t.Fatal("no duplicates injected")
	}
	if got := len(h.pkts); got != 1000+int(imp.Duplicated) {
		t.Fatalf("delivered %d, want %d", got, 1000+imp.Duplicated)
	}
}

func TestImpairmentReorder(t *testing.T) {
	n, a, b := impairNet(t)
	imp := AttachImpairment(a, &Impairment{
		Rng: sim.NewRNG(3), ReorderP: 0.1,
		ReorderDelay: 500 * sim.Microsecond, SkipInbound: true,
	})
	h := sendN(n, a, b, 500)
	if imp.Reordered == 0 {
		t.Fatal("no reordering injected")
	}
	if len(h.pkts) != 500 {
		t.Fatalf("delivered %d, want all 500 (reordered, not lost)", len(h.pkts))
	}
	inversions := 0
	for i := 1; i < len(h.pkts); i++ {
		if h.pkts[i].Seq < h.pkts[i-1].Seq {
			inversions++
		}
	}
	if inversions == 0 {
		t.Fatal("no sequence inversions observed")
	}
}

func TestImpairmentCorruptCaughtByVerification(t *testing.T) {
	n, a, b := impairNet(t)
	b.VerifyChecksums = true
	imp := AttachImpairment(a, &Impairment{Rng: sim.NewRNG(4), CorruptP: 0.2, SkipInbound: true})
	h := sendN(n, a, b, 1000)
	if imp.Corrupted == 0 {
		t.Fatal("no corruption injected")
	}
	st := b.Stats()
	if st.ChecksumDrops != imp.Corrupted {
		t.Fatalf("checksum drops %d != corrupted %d", st.ChecksumDrops, imp.Corrupted)
	}
	if len(h.pkts)+int(st.ChecksumDrops) != 1000 {
		t.Fatalf("delivered %d + dropped %d != 1000", len(h.pkts), st.ChecksumDrops)
	}
}

func TestImpairmentDirectionFlags(t *testing.T) {
	n, a, b := impairNet(t)
	// Impair only inbound on b: outbound traffic from a untouched.
	imp := AttachImpairment(b, &Impairment{Rng: sim.NewRNG(5), DropP: 1.0, SkipOutbound: true})
	h := sendN(n, a, b, 50)
	if len(h.pkts) != 0 {
		t.Fatal("inbound drop-all let packets through")
	}
	if imp.Dropped != 50 {
		t.Fatalf("dropped %d", imp.Dropped)
	}
}

func TestImpairmentRequiresRNG(t *testing.T) {
	_, a, _ := impairNet(t)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic without RNG")
		}
	}()
	AttachImpairment(a, &Impairment{})
}
