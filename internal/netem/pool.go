package netem

import (
	"sync"
	"sync/atomic"
)

// Packet pooling. The hot path recycles packets through a sync.Pool with a
// strict linear-ownership contract (documented in DESIGN.md §6e):
//
//   - Whoever allocates a packet owns it until ownership transfers: handing
//     it to Port.Send, Host.Send, Deliver or InjectInbound/InjectOutbound
//     gives it away; a filter returning VerdictStolen takes it.
//   - The owner at the end of a packet's life — a drop site, or the host
//     after the transport handler returns — calls ReleasePacket exactly
//     once. Touching a packet after release is a bug; build with
//     -tags poolpoison to make such bugs corrupt digests loudly instead of
//     silently reading recycled-then-zeroed memory.
//   - Packets parked in queues or in-flight engine events are owned by
//     those structures; anything still parked when a run ends is simply
//     garbage collected.
//
// Pooling is semantically invisible: AllocPacket always returns a fully
// zeroed packet, so a model built on it behaves identically with the pool
// disabled (SetPacketPooling(false), or hwatchsim -nopool).

var pktPool = sync.Pool{New: func() any { return new(Packet) }}

// poolOff gates pooling globally; the default (false) keeps pooling on.
var poolOff atomic.Bool

// SetPacketPooling enables or disables packet recycling. With pooling off,
// AllocPacket falls back to plain allocation and ReleasePacket is a no-op,
// which is the escape hatch if a use-after-release is suspected.
func SetPacketPooling(on bool) { poolOff.Store(!on) }

// PacketPooling reports whether packet recycling is enabled.
func PacketPooling() bool { return !poolOff.Load() }

// AllocPacket returns a zeroed packet, recycled when pooling is enabled.
func AllocPacket() *Packet {
	if poolOff.Load() {
		return new(Packet)
	}
	p := pktPool.Get().(*Packet)
	resetOnAlloc(p)
	return p
}

// ReleasePacket returns p to the pool. p must not be touched afterwards;
// nil is accepted so drop sites can release unconditionally.
func ReleasePacket(p *Packet) {
	if p == nil || poolOff.Load() {
		return
	}
	scrubOnRelease(p)
	pktPool.Put(p)
}

// ClonePacket returns a pool-allocated copy of p (the Sack slice backing
// array is shared; releasing either copy only drops its reference).
func ClonePacket(p *Packet) *Packet {
	q := AllocPacket()
	*q = *p
	return q
}
