package netem

import (
	"testing"

	"hwatch/internal/sim"
)

func BenchmarkChecksumFull(b *testing.B) {
	p := samplePacket()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Checksum = Checksum(p)
	}
}

func BenchmarkChecksumIncremental(b *testing.B) {
	p := samplePacket()
	SetChecksum(p)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Checksum = UpdateChecksum16(p.Checksum, p.Rwnd, p.Rwnd+1)
		p.Rwnd++
	}
}

// BenchmarkPortThroughput measures simulator events per transmitted packet
// on a saturated link.
func BenchmarkPortThroughput(b *testing.B) {
	eng := sim.New()
	s := &sink{eng: eng}
	p := NewPort(eng, &unboundedQ{}, 100e9, 0)
	p.Connect(s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Send(&Packet{Wire: 1500})
		eng.Run()
	}
}

type nopHandler struct{}

func (nopHandler) HandlePacket(*Packet) {}

// BenchmarkPortForward measures one pooled packet's full forwarding life:
// alloc, host egress, switch hop, serialization, delivery, release.
func BenchmarkPortForward(b *testing.B) {
	n := NewNetwork()
	a := n.NewHost("a")
	bhost := n.NewHost("b")
	sw := n.NewSwitch("sw")
	n.LinkHostSwitch(a, sw, &unboundedQ{}, &unboundedQ{}, 100e9, 0)
	n.LinkHostSwitch(bhost, sw, &unboundedQ{}, &unboundedQ{}, 100e9, 0)
	bhost.Bind(ConnID{LocalPort: 80, Remote: a.ID, RemotePort: 1}, nopHandler{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := AllocPacket()
		p.Src, p.Dst = a.ID, bhost.ID
		p.SrcPort, p.DstPort = 1, 80
		p.Wire, p.Payload = 1500, 1442
		a.Send(p)
		n.Eng.Run()
	}
}

func BenchmarkHostFilterChain(b *testing.B) {
	n := NewNetwork()
	a := n.NewHost("a")
	bhost := n.NewHost("b")
	sw := n.NewSwitch("sw")
	n.LinkHostSwitch(a, sw, &unboundedQ{}, &unboundedQ{}, 100e9, 0)
	n.LinkHostSwitch(bhost, sw, &unboundedQ{}, &unboundedQ{}, 100e9, 0)
	f := &testFilter{name: "nop", inV: VerdictPass, outV: VerdictPass}
	a.AddFilter(f)
	bhost.AddFilter(f)
	bhost.Bind(ConnID{LocalPort: 80, Remote: a.ID, RemotePort: 1}, &recHandler{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Send(&Packet{Src: a.ID, Dst: bhost.ID, SrcPort: 1, DstPort: 80, Wire: 1500, Payload: 1442})
		n.Eng.Run()
	}
}
