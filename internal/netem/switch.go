package netem

import "fmt"

// Switch is an output-queued store-and-forward switch. Each output port has
// its own queue discipline (where ECN marking and drops happen), matching
// the shared-nothing per-port buffers of commodity ToR switches the paper
// assumes. Destinations may be routed to a single port or to an ECMP group
// of ports, in which case the port is chosen by a hash of the flow's
// 4-tuple — per-flow stable, so no reordering within a connection.
type Switch struct {
	Name   string
	ports  []*Port
	routes map[NodeID]int
	groups map[NodeID][]int

	// MaxHops guards against routing loops in misbuilt topologies.
	MaxHops int
}

// NewSwitch returns an empty switch.
func NewSwitch(name string) *Switch {
	return &Switch{
		Name:    name,
		routes:  make(map[NodeID]int),
		groups:  make(map[NodeID][]int),
		MaxHops: 16,
	}
}

// AddPort attaches an output port and returns its index.
func (s *Switch) AddPort(p *Port) int {
	if p.Label == "" {
		p.Label = fmt.Sprintf("%s.p%d", s.Name, len(s.ports))
	}
	s.ports = append(s.ports, p)
	return len(s.ports) - 1
}

// Port returns the output port at index i.
func (s *Switch) Port(i int) *Port { return s.ports[i] }

// SetStripECN turns the whole switch into a legacy non-ECN hop (or back):
// every output port erases CE/ECT codepoints before its AQM, so marking
// degrades to dropping fabric-wide. The fault injector's ECN blackhole.
func (s *Switch) SetStripECN(on bool) {
	for _, p := range s.ports {
		p.SetStripECN(on)
	}
}

// NumPorts returns the number of attached ports.
func (s *Switch) NumPorts() int { return len(s.ports) }

// Route installs "destination host -> output port index".
func (s *Switch) Route(dst NodeID, port int) {
	if port < 0 || port >= len(s.ports) {
		panic(fmt.Sprintf("netem: %s route to %d via invalid port %d", s.Name, dst, port))
	}
	s.routes[dst] = port
	delete(s.groups, dst)
}

// RouteECMP installs an equal-cost group for the destination: each flow
// hashes onto one member port and sticks to it.
func (s *Switch) RouteECMP(dst NodeID, ports []int) {
	if len(ports) == 0 {
		panic(fmt.Sprintf("netem: %s empty ECMP group for %d", s.Name, dst))
	}
	for _, p := range ports {
		if p < 0 || p >= len(s.ports) {
			panic(fmt.Sprintf("netem: %s ECMP member %d invalid", s.Name, p))
		}
	}
	s.groups[dst] = append([]int(nil), ports...)
	delete(s.routes, dst)
}

// flowHash is a small FNV-1a over the 4-tuple, matching how switch ASICs
// spread flows across a LAG/ECMP group.
func flowHash(k FlowKey) uint32 {
	h := uint32(2166136261)
	mix := func(v uint32) {
		for i := 0; i < 4; i++ {
			h ^= v & 0xff
			h *= 16777619
			v >>= 8
		}
	}
	mix(uint32(k.Src))
	mix(uint32(k.Dst))
	mix(uint32(k.SrcPort)<<16 | uint32(k.DstPort))
	return h
}

// Deliver forwards the packet toward its destination. Unknown destinations
// and hop-limit violations are model bugs and panic.
func (s *Switch) Deliver(pkt *Packet) {
	pkt.Hops++
	if pkt.Hops > s.MaxHops {
		panic(fmt.Sprintf("netem: %s hop limit exceeded for %s (routing loop?)", s.Name, pkt))
	}
	if idx, ok := s.routes[pkt.Dst]; ok {
		s.ports[idx].Send(pkt)
		return
	}
	if group, ok := s.groups[pkt.Dst]; ok {
		idx := group[flowHash(pkt.FlowKey())%uint32(len(group))]
		s.ports[idx].Send(pkt)
		return
	}
	panic(fmt.Sprintf("netem: %s has no route to host %d", s.Name, pkt.Dst))
}
