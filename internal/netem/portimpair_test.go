package netem

import (
	"math"
	"sort"
	"testing"

	"hwatch/internal/sim"
)

// portImpairNet builds the two-host network and returns the sender's
// uplink port — the port every test impairs.
func portImpairNet(t *testing.T) (*Network, *Host, *Host, *Port) {
	t.Helper()
	n, a, b := impairNet(t)
	return n, a, b, a.Uplink()
}

func TestPortImpairCorruptVerified(t *testing.T) {
	n, a, b, up := portImpairNet(t)
	b.VerifyChecksums = true
	imp := up.Impair(false)
	imp.SetCorrupt(0.2, 0.5, sim.NewRNG(1))
	h := sendN(n, a, b, 1000)
	st := imp.Stats()
	if st.Corrupted == 0 || st.CorruptDrops == 0 {
		t.Fatalf("no corruption observed: %+v", st)
	}
	if st.CorruptDrops > st.Corrupted {
		t.Fatalf("corrupt-drops %d exceed corruptions %d", st.CorruptDrops, st.Corrupted)
	}
	hd := b.Stats().ChecksumDrops
	// Every flip either died at the port (FCS) or at the verifying host.
	if hd != st.Corrupted-st.CorruptDrops {
		t.Fatalf("checksum drops %d, want %d", hd, st.Corrupted-st.CorruptDrops)
	}
	if got := int64(len(h.pkts)) + st.CorruptDrops + hd; got != 1000 {
		t.Fatalf("delivered+dropped = %d, want 1000", got)
	}
	frac := float64(st.CorruptDrops) / float64(st.Corrupted)
	if frac < 0.35 || frac > 0.65 {
		t.Fatalf("drop fraction %.2f of corrupted, want ~0.5", frac)
	}
}

func TestPortImpairDuplicateBounded(t *testing.T) {
	n, a, b, up := portImpairNet(t)
	imp := up.Impair(false)
	imp.SetDuplicate(0.2, 3, sim.NewRNG(2))
	h := sendN(n, a, b, 1000)
	st := imp.Stats()
	if st.Duplicated == 0 {
		t.Fatal("no duplicates injected")
	}
	if st.Duplicated%3 != 0 {
		t.Fatalf("duplicated %d not a multiple of the copy bound 3", st.Duplicated)
	}
	if got := int64(len(h.pkts)); got != 1000+st.Duplicated {
		t.Fatalf("delivered %d, want %d", got, 1000+st.Duplicated)
	}
	// A duplicated frame arrives 1+copies times, never more: the copy
	// count bounds the blast radius per packet.
	seen := map[int64]int{}
	for _, p := range h.pkts {
		seen[p.Seq]++
	}
	dups := 0
	for seq, c := range seen {
		if c != 1 && c != 4 {
			t.Fatalf("seq %d delivered %d times, want 1 or 1+copies", seq, c)
		}
		dups += c - 1
	}
	if int64(dups) != st.Duplicated {
		t.Fatalf("%d duplicate frames delivered, stats say %d", dups, st.Duplicated)
	}
}

func TestPortImpairReorder(t *testing.T) {
	for _, egress := range []bool{false, true} {
		name := "ingress"
		if egress {
			name = "egress"
		}
		t.Run(name, func(t *testing.T) {
			n, a, b, up := portImpairNet(t)
			imp := up.Impair(egress)
			imp.SetReorder(0.1, 500*sim.Microsecond, sim.NewRNG(3))
			h := sendN(n, a, b, 500)
			st := imp.Stats()
			if st.Reordered == 0 {
				t.Fatal("no reordering injected")
			}
			if len(h.pkts) != 500 {
				t.Fatalf("delivered %d, want all 500 (reordered, not lost)", len(h.pkts))
			}
			inversions := 0
			for i := 1; i < len(h.pkts); i++ {
				if h.pkts[i].Seq < h.pkts[i-1].Seq {
					inversions++
				}
			}
			if inversions == 0 {
				t.Fatal("no sequence inversions observed")
			}
			if st.Held != 0 {
				t.Fatalf("hold buffer retains %d packets after drain", st.Held)
			}
		})
	}
}

// TestPortImpairReorderFIFOWithinEqualRelease pins the hold buffer's
// release order: every packet held (p=1) for an identical delay (hold=1
// draws Int63n(1)+1 = 1 always) must come out in hold order — the engine
// fires same-instant releases FIFO by scheduling time.
func TestPortImpairReorderFIFOWithinEqualRelease(t *testing.T) {
	n, a, b, up := portImpairNet(t)
	imp := up.Impair(false)
	imp.SetReorder(1.0, 1, sim.NewRNG(4))
	h := sendN(n, a, b, 300)
	st := imp.Stats()
	if st.Reordered != 300 {
		t.Fatalf("held %d packets, want all 300", st.Reordered)
	}
	if len(h.pkts) != 300 {
		t.Fatalf("delivered %d, want 300", len(h.pkts))
	}
	for i := 1; i < len(h.pkts); i++ {
		if h.pkts[i].Seq < h.pkts[i-1].Seq {
			t.Fatalf("equal-release holds delivered out of order at %d: %d after %d",
				i, h.pkts[i].Seq, h.pkts[i-1].Seq)
		}
	}
	if st.Held != 0 {
		t.Fatalf("hold buffer retains %d packets", st.Held)
	}
}

func TestPortImpairJitterDelays(t *testing.T) {
	base := func() int64 {
		n, a, b, _ := portImpairNet(t)
		sendN(n, a, b, 200)
		return n.Eng.Now()
	}()
	n, a, b, up := portImpairNet(t)
	imp := up.Impair(false)
	imp.SetJitter(UniformDelay{Lo: 100 * sim.Microsecond, Hi: 300 * sim.Microsecond}, sim.NewRNG(5))
	h := sendN(n, a, b, 200)
	st := imp.Stats()
	if st.Jittered != 200 {
		t.Fatalf("jittered %d packets, want all 200", st.Jittered)
	}
	if len(h.pkts) != 200 {
		t.Fatalf("delivered %d, want 200", len(h.pkts))
	}
	if st.Held != 0 {
		t.Fatalf("hold buffer retains %d packets", st.Held)
	}
	if n.Eng.Now() <= base {
		t.Fatalf("jittered run finished at %d ns, no later than unimpaired %d ns", n.Eng.Now(), base)
	}
}

func TestPortImpairRateLimit(t *testing.T) {
	n, a, b, up := portImpairNet(t)
	imp := up.Impair(true)
	imp.SetRate(100e6, 3000) // 100 Mb/s through a 1 Gb/s port, 2-MTU burst
	h := sendN(n, a, b, 100)
	if len(h.pkts) != 100 {
		t.Fatalf("delivered %d, want 100 (shaped, not dropped)", len(h.pkts))
	}
	st := imp.Stats()
	if st.RateLimited == 0 || st.RateDelayNs == 0 {
		t.Fatalf("no pacing observed: %+v", st)
	}
	// 100 packets x 158 B at 100 Mb/s ~ 12.6 ms wire time; the burst
	// forgives the first ~2 packets. The unshapeed drain is ~0.13 ms.
	want := int64(100) * 158 * 8 * sim.Second / 100e6
	if now := n.Eng.Now(); now < want*8/10 || now > want*12/10 {
		t.Fatalf("shaped drain took %d ns, want ~%d ns", now, want)
	}
}

func TestPortImpairRateLimitIngressPanics(t *testing.T) {
	_, _, _, up := portImpairNet(t)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic arming a rate limit at the ingress stage")
		}
	}()
	up.Impair(false).SetRate(1e6, 0)
}

func TestPortImpairDeterminism(t *testing.T) {
	run := func() []int64 {
		n, a, b, up := portImpairNet(t)
		imp := up.Impair(false)
		imp.SetCorrupt(0.05, 0.5, sim.NewRNG(7))
		imp.SetDuplicate(0.1, 2, sim.NewRNG(8))
		imp.SetReorder(0.1, 300*sim.Microsecond, sim.NewRNG(9))
		h := sendN(n, a, b, 400)
		seqs := make([]int64, len(h.pkts))
		for i, p := range h.pkts {
			seqs[i] = p.Seq
		}
		return seqs
	}
	one, two := run(), run()
	if len(one) != len(two) {
		t.Fatalf("runs delivered %d vs %d packets", len(one), len(two))
	}
	for i := range one {
		if one[i] != two[i] {
			t.Fatalf("delivery order diverges at %d: %d vs %d", i, one[i], two[i])
		}
	}
}

// --- jitter distribution conformance (10k samples, KS-style bounds) ---

// checkCDF compares the empirical CDF of samples at each (x, p) knot
// within ~4 sigma of Binomial(n, p), floored for the tails — the bound
// the storm CDF conformance tests use.
func checkCDF(t *testing.T, name string, samples []int64, xs []int64, ps []float64) {
	t.Helper()
	sorted := append([]int64(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	n := float64(len(sorted))
	for i, x := range xs {
		at := sort.Search(len(sorted), func(j int) bool { return sorted[j] > x })
		got := float64(at) / n
		p := ps[i]
		tol := 4 * math.Sqrt(p*(1-p)/n)
		if tol < 0.01 {
			tol = 0.01
		}
		if diff := got - p; diff < -tol || diff > tol {
			t.Errorf("%s knot %d (x=%d): empirical CDF %.4f, want %.4f +/- %.4f", name, i, x, got, p, tol)
		}
	}
}

func drawMany(d DelayDist, n int, seed int64) []int64 {
	rng := sim.NewRNG(seed)
	out := make([]int64, n)
	for i := range out {
		out[i] = d.Draw(rng)
	}
	return out
}

func TestUniformDelayConformance(t *testing.T) {
	lo, hi := int64(100), int64(1100)
	d := UniformDelay{Lo: lo, Hi: hi}
	samples := drawMany(d, 10000, 1)
	var xs []int64
	var ps []float64
	for _, p := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		xs = append(xs, lo+int64(p*float64(hi-lo)))
		ps = append(ps, p)
	}
	checkCDF(t, "uniform", samples, xs, ps)
	for _, s := range samples {
		if s < lo || s > hi {
			t.Fatalf("sample %d outside [%d, %d]", s, lo, hi)
		}
	}
}

func TestNormalDelayConformance(t *testing.T) {
	mean, sigma := int64(10000), int64(1000)
	d := NormalDelay{Mean: mean, Sigma: sigma}
	samples := drawMany(d, 10000, 2)
	// Standard-normal CDF values at z = -2..2; the Irwin-Hall approximation
	// is within ~2e-3 of the true CDF over this range.
	zs := []float64{-2, -1, 0, 1, 2}
	phis := []float64{0.0228, 0.1587, 0.5, 0.8413, 0.9772}
	var xs []int64
	for _, z := range zs {
		xs = append(xs, mean+int64(z*float64(sigma)))
	}
	checkCDF(t, "normal", samples, xs, phis)
	max := mean + 4*sigma
	for _, s := range samples {
		if s < 0 || s > max {
			t.Fatalf("sample %d outside [0, %d]", s, max)
		}
	}
}

func TestParetoDelayConformance(t *testing.T) {
	scale, max := int64(1000), int64(100000)
	shape := 1.5
	d := ParetoDelay{Shape: shape, Scale: scale, Max: max}
	samples := drawMany(d, 10000, 3)
	// F(x) = 1 - (scale/x)^shape for scale <= x < max (truncation piles the
	// tail mass on max itself, so knots stay well below it).
	var xs []int64
	var ps []float64
	for _, m := range []float64{1.2, 2, 4, 8, 16} {
		x := int64(m * float64(scale))
		xs = append(xs, x)
		ps = append(ps, 1-math.Pow(float64(scale)/float64(x), shape))
	}
	checkCDF(t, "pareto", samples, xs, ps)
	for _, s := range samples {
		if s < scale || s > max {
			t.Fatalf("sample %d outside [%d, %d]", s, scale, max)
		}
	}
}

// FuzzReorderBuffer drives the hold-and-release buffer with arbitrary
// probability/hold/traffic shapes and asserts its two invariants: every
// hold is released (nothing lost, nothing retained) and every packet is
// delivered exactly once.
func FuzzReorderBuffer(f *testing.F) {
	f.Add(int64(1), uint16(100), byte(128), uint16(500))
	f.Add(int64(2), uint16(1), byte(255), uint16(1))
	f.Add(int64(3), uint16(300), byte(1), uint16(10000))
	f.Add(int64(4), uint16(50), byte(255), uint16(0))
	f.Fuzz(func(t *testing.T, seed int64, count uint16, prob byte, holdUs uint16) {
		n := int(count%500) + 1
		p := (float64(prob) + 1) / 256
		hold := int64(holdUs)*sim.Microsecond + 1
		net := NewNetwork()
		a := net.NewHost("a")
		b := net.NewHost("b")
		sw := net.NewSwitch("sw")
		net.LinkHostSwitch(a, sw, &unboundedQ{}, &unboundedQ{}, 1e9, sim.Microsecond)
		net.LinkHostSwitch(b, sw, &unboundedQ{}, &unboundedQ{}, 1e9, sim.Microsecond)
		imp := a.Uplink().Impair(false)
		imp.SetReorder(p, hold, sim.NewRNG(seed))
		h := sendN(net, a, b, n)
		if len(h.pkts) != n {
			t.Fatalf("delivered %d of %d packets", len(h.pkts), n)
		}
		seen := map[int64]bool{}
		for _, pk := range h.pkts {
			if seen[pk.Seq] {
				t.Fatalf("packet %d delivered twice", pk.Seq)
			}
			seen[pk.Seq] = true
		}
		if st := imp.Stats(); st.Held != 0 {
			t.Fatalf("hold buffer retains %d packets after drain", st.Held)
		}
	})
}
