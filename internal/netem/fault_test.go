package netem

import (
	"testing"

	"hwatch/internal/sim"
)

func TestPortDownLosesOffersButKeepsQueue(t *testing.T) {
	eng := sim.New()
	s := &sink{eng: eng}
	// 1 Gb/s, zero delay: a 1250-byte packet serializes in 10 us.
	p := NewPort(eng, &unboundedQ{}, 1e9, 0)
	p.Connect(s)
	for i := 0; i < 3; i++ {
		p.Send(&Packet{ID: uint64(i), Wire: 1250})
	}
	// Fail the link mid-serialization of packet 0: it is already on the
	// wire and delivers; packets 1-2 hold in the queue.
	eng.At(5*sim.Microsecond, func() { p.SetDown(true) })
	// A packet offered while down is lost like frames into a pulled cable.
	eng.At(50*sim.Microsecond, func() { p.Send(&Packet{ID: 99, Wire: 1250}) })
	eng.At(100*sim.Microsecond, func() { p.SetDown(false) })
	eng.Run()

	if got := len(s.pkts); got != 3 {
		t.Fatalf("delivered %d packets, want 3 (queued survive, offered-while-down lost)", got)
	}
	for i, pkt := range s.pkts {
		if pkt.ID == 99 {
			t.Fatalf("packet offered while down was delivered (index %d)", i)
		}
	}
	// Packets 1-2 resume serialization only after the link returns.
	if s.at[1] < 110*sim.Microsecond || s.at[2] < 120*sim.Microsecond {
		t.Fatalf("held packets arrived at %v before link restoration drain", s.at[1:])
	}
	if st := p.Stats(); st.DownDrops != 1 {
		t.Fatalf("DownDrops = %d, want 1", st.DownDrops)
	}
}

func TestPortStripECN(t *testing.T) {
	eng := sim.New()
	s := &sink{eng: eng}
	p := NewPort(eng, &unboundedQ{}, 1e9, 0)
	p.Connect(s)
	p.SetStripECN(true)
	p.Send(&Packet{ID: 1, Wire: 100, ECN: CE})
	p.Send(&Packet{ID: 2, Wire: 100, ECN: ECT0})
	p.Send(&Packet{ID: 3, Wire: 100, ECN: NotECT})
	eng.Run()
	p.SetStripECN(false)
	p.Send(&Packet{ID: 4, Wire: 100, ECN: CE})
	eng.Run()

	want := []ECN{NotECT, NotECT, NotECT, CE}
	for i, pkt := range s.pkts {
		if pkt.ECN != want[i] {
			t.Errorf("packet %d: ECN %v, want %v", pkt.ID, pkt.ECN, want[i])
		}
	}
	if st := p.Stats(); st.EcnStripped != 2 {
		t.Fatalf("EcnStripped = %d, want 2 (NotECT packets don't count)", st.EcnStripped)
	}
}

func TestPortDropProbesOnly(t *testing.T) {
	eng := sim.New()
	s := &sink{eng: eng}
	p := NewPort(eng, &unboundedQ{}, 1e9, 0)
	p.Connect(s)
	p.SetDropProbes(true)
	p.Send(&Packet{ID: 1, Wire: 38, Probe: true})
	p.Send(&Packet{ID: 2, Wire: 1250})
	eng.Run()

	if len(s.pkts) != 1 || s.pkts[0].ID != 2 {
		t.Fatalf("probe blackout let the wrong packets through: %v", s.pkts)
	}
	if st := p.Stats(); st.ProbeDrops != 1 {
		t.Fatalf("ProbeDrops = %d, want 1", st.ProbeDrops)
	}
}

func TestPortLossHook(t *testing.T) {
	eng := sim.New()
	s := &sink{eng: eng}
	p := NewPort(eng, &unboundedQ{}, 1e9, 0)
	p.Connect(s)
	p.SetLoss(func(pkt *Packet) bool { return pkt.ID%2 == 0 })
	for i := 1; i <= 4; i++ {
		p.Send(&Packet{ID: uint64(i), Wire: 100})
	}
	eng.Run()
	if len(s.pkts) != 2 {
		t.Fatalf("loss hook delivered %d packets, want 2", len(s.pkts))
	}
	if st := p.Stats(); st.FaultDrops != 2 {
		t.Fatalf("FaultDrops = %d, want 2", st.FaultDrops)
	}
}

// TestGilbertElliottBurstStatistics checks the channel against its
// analytic burst-length and gap-length distributions: with loss certain in
// Bad and impossible in Good, bursts are geometric with mean 1/BadToGood
// and gaps geometric with mean 1/GoodToBad.
func TestGilbertElliottBurstStatistics(t *testing.T) {
	params := GEParams{GoodToBad: 0.05, BadToGood: 0.5, LossBad: 1}
	g := &GilbertElliott{P: params, Rng: sim.NewRNG(1234)}

	const trials = 400_000
	var bursts, gaps []int
	runBurst, runGap := 0, 0
	for i := 0; i < trials; i++ {
		if g.Drop() {
			if runGap > 0 {
				gaps = append(gaps, runGap)
				runGap = 0
			}
			runBurst++
		} else {
			if runBurst > 0 {
				bursts = append(bursts, runBurst)
				runBurst = 0
			}
			runGap++
		}
	}
	mean := func(xs []int) float64 {
		var sum int
		for _, x := range xs {
			sum += x
		}
		return float64(sum) / float64(len(xs))
	}
	if len(bursts) < 1000 {
		t.Fatalf("only %d bursts in %d trials — channel barely entered Bad", len(bursts), trials)
	}
	wantBurst := 1 / params.BadToGood // 2.0
	wantGap := 1 / params.GoodToBad   // 20.0
	if m := mean(bursts); m < wantBurst*0.9 || m > wantBurst*1.1 {
		t.Errorf("mean burst length %.3f, want %.1f ±10%%", m, wantBurst)
	}
	if m := mean(gaps); m < wantGap*0.9 || m > wantGap*1.1 {
		t.Errorf("mean gap length %.3f, want %.1f ±10%%", m, wantGap)
	}
	// Same seed ⇒ same loss pattern: the determinism the fault injector
	// relies on.
	h := &GilbertElliott{P: params, Rng: sim.NewRNG(1234)}
	for i := 0; i < 10_000; i++ {
		h.Drop()
	}
	g2 := &GilbertElliott{P: params, Rng: sim.NewRNG(1234)}
	for i := 0; i < 10_000; i++ {
		g2.Drop()
	}
	if h.Drops != g2.Drops || h.Seen != g2.Seen {
		t.Fatalf("same seed diverged: %d/%d vs %d/%d drops", h.Drops, h.Seen, g2.Drops, g2.Seen)
	}
}

func TestImpairmentDisabledDrawsNoRandomness(t *testing.T) {
	ref := sim.NewRNG(7)
	a1, a2 := ref.Float64(), ref.Float64()

	rng := sim.NewRNG(7)
	if rng.Float64() != a1 {
		t.Fatal("RNG not reproducible; test premise broken")
	}
	im := &Impairment{Eng: sim.New(), Rng: rng, DropP: 0.5, Disabled: true}
	for i := 0; i < 100; i++ {
		if v := im.apply(&Packet{Wire: 100}, true); v != VerdictPass {
			t.Fatalf("disabled impairment returned %v", v)
		}
	}
	// The stream must be untouched: toggling a fault window on and off
	// must not perturb random draws outside the window.
	if rng.Float64() != a2 {
		t.Fatal("disabled impairment consumed RNG draws")
	}
}
