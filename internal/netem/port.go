package netem

import (
	"fmt"

	"hwatch/internal/sim"
)

// Deliverer receives packets from a link endpoint.
type Deliverer interface {
	Deliver(pkt *Packet)
}

// Queue is the output-queue discipline attached to a port. Implementations
// live in internal/aqm; the interface is declared here, on the consumer
// side, so netem does not depend on aqm.
//
// Enqueue may drop (returning false) or ECN-mark the packet according to the
// discipline; Dequeue returns nil when empty.
type Queue interface {
	Enqueue(pkt *Packet) bool
	Dequeue() *Packet
	Len() int   // packets queued
	Bytes() int // bytes queued
}

// PortStats counts traffic through a port. Drops at the queue are accounted
// by the queue discipline's own statistics; the fault counters account
// packets lost to injected faults before they reach the queue.
type PortStats struct {
	TxPackets int64
	TxBytes   int64

	DownDrops   int64 // packets offered while the link was down
	ProbeDrops  int64 // probe packets eaten by a probe blackout
	FaultDrops  int64 // packets taken by an installed loss process
	EcnStripped int64 // codepoints erased by an ECN blackhole
}

// Port is one unidirectional link attachment: an output queue, a serializing
// transmitter of RateBps, and a propagation delay to the peer. Full-duplex
// links are modeled as one Port on each side.
type Port struct {
	Eng     *sim.Engine
	Q       Queue
	RateBps int64 // link rate, bits per second
	Delay   int64 // one-way propagation delay, ns

	Label string // for diagnostics ("sw0.p3")

	peer  Deliverer
	busy  bool
	stats PortStats

	// remote is the engine owning the peer when the link crosses a shard
	// boundary (nil for a same-shard link). Delivery then goes through the
	// group's conservative outbox/merge instead of a local schedule.
	remote *sim.Engine

	// Fault state, driven by internal/faults (all zero in a healthy run).
	down       bool
	stripECN   bool
	dropProbes bool
	lossFn     func(*Packet) bool

	// Impairment pipelines, created lazily by Impair (nil in a healthy
	// run, so the hot path pays one pointer test per stage).
	ingressImp *PortImpair
	egressImp  *PortImpair

	// Bound event callbacks, cached once so the per-packet transmit path
	// schedules without building closures.
	txDoneFn      func(any)
	deliverFn     func(any)
	injectQueueFn func(any)
}

// clockedQueue is implemented by disciplines that read simulation time
// (RED idle aging, CoDel sojourn). NewPort rebinds them to the engine that
// owns the port, so the queue never reads another shard's clock.
type clockedQueue interface{ SetClock(func() int64) }

// NewPort returns a port transmitting at rateBps with the given one-way
// propagation delay and queue discipline.
func NewPort(eng *sim.Engine, q Queue, rateBps, delay int64) *Port {
	if rateBps <= 0 {
		panic("netem: port rate must be positive")
	}
	if cq, ok := q.(clockedQueue); ok {
		cq.SetClock(eng.Now)
	}
	p := &Port{Eng: eng, Q: q, RateBps: rateBps, Delay: delay}
	p.txDoneFn = p.txDone
	p.deliverFn = p.deliver
	p.injectQueueFn = p.injectQueueArg
	return p
}

// Connect attaches the receiving end of the link.
func (p *Port) Connect(peer Deliverer) { p.peer = peer }

// BindRemote marks the peer as living on dst's shard. Packet ownership
// transfers with the delivery event: the sender stages the packet in its
// outbox at txDone and never touches it again; the merge hands it to the
// destination shard before that shard's next window. The link's
// propagation delay must be at least the group lookahead.
func (p *Port) BindRemote(dst *sim.Engine) {
	if dst == p.Eng {
		dst = nil
	}
	p.remote = dst
}

// Peer returns the connected receiver (nil if unconnected).
func (p *Port) Peer() Deliverer { return p.peer }

// Stats returns a copy of the port counters.
func (p *Port) Stats() PortStats { return p.stats }

// SerializationDelay returns the time to clock size bytes onto the wire.
func (p *Port) SerializationDelay(size int) int64 {
	return int64(size) * 8 * sim.Second / p.RateBps
}

// SetDown fails or restores the link. While down, every packet offered to
// the port is lost (a cable pull loses the frames in flight on it) and the
// transmitter pauses; packets already queued are preserved and drain when
// the link comes back, as a paused egress port's buffer would.
func (p *Port) SetDown(down bool) {
	if p.down == down {
		return
	}
	p.down = down
	if !down && !p.busy {
		p.transmitNext()
	}
}

// Down reports whether the link is administratively failed.
func (p *Port) Down() bool { return p.down }

// SetStripECN makes the port erase ECN codepoints (CE and ECT alike)
// before its queue sees the packet — a legacy non-ECN hop: the AQM treats
// traffic as ECN-incapable, so it drops where it would have marked, and
// upstream marks never reach the receiver.
func (p *Port) SetStripECN(on bool) { p.stripECN = on }

// StripsECN reports whether the port erases ECN codepoints.
func (p *Port) StripsECN() bool { return p.stripECN }

// SetDropProbes makes the port eat probe packets only (an ACL or middlebox
// that discards the shim's raw-IP probes while TCP passes untouched).
func (p *Port) SetDropProbes(on bool) { p.dropProbes = on }

// SetLoss installs a loss process consulted for every packet offered to
// the port (nil removes it). The function must be deterministic given the
// run's seeded RNG; internal/faults uses it for burst-loss windows.
func (p *Port) SetLoss(fn func(*Packet) bool) { p.lossFn = fn }

// Send enqueues the packet for transmission, starting the transmitter if it
// is idle. The queue discipline may drop or mark the packet.
func (p *Port) Send(pkt *Packet) {
	if p.peer == nil {
		panic(fmt.Sprintf("netem: port %q unconnected", p.Label))
	}
	if p.down {
		p.stats.DownDrops++
		ReleasePacket(pkt)
		return
	}
	if p.stripECN && pkt.ECN != NotECT {
		pkt.ECN = NotECT
		p.stats.EcnStripped++
	}
	if p.dropProbes && pkt.Probe {
		p.stats.ProbeDrops++
		ReleasePacket(pkt)
		return
	}
	if p.lossFn != nil && p.lossFn(pkt) {
		p.stats.FaultDrops++
		ReleasePacket(pkt)
		return
	}
	if p.ingressImp != nil {
		p.ingressImp.Forward(pkt) // owns pkt; re-offers via injectQueue
		return
	}
	p.injectQueue(pkt)
}

// injectQueue is the back half of Send — queue the packet and kick the
// transmitter — and the re-entry point for ingress impairments (held
// packets, duplicate copies). Ownership transfers with the call.
func (p *Port) injectQueue(pkt *Packet) {
	pkt.EnqueuedAt = p.Eng.Now()
	if !p.Q.Enqueue(pkt) {
		ReleasePacket(pkt) // dropped by the discipline
		return
	}
	if !p.busy {
		p.transmitNext()
	}
}

// injectQueueArg is injectQueue behind the cached func(any) signature that
// scheduled re-offers (duplicate copies, hold releases) go through.
func (p *Port) injectQueueArg(a any) { p.injectQueue(a.(*Packet)) }

func (p *Port) transmitNext() {
	if p.down {
		p.busy = false
		return
	}
	pkt := p.Q.Dequeue()
	if pkt == nil {
		p.busy = false
		return
	}
	p.busy = true
	txTime := p.SerializationDelay(pkt.Wire)
	if p.egressImp != nil {
		// A token-bucket shaper stalls the transmitter before clocking the
		// packet out, so sub-line rates build standing queue upstream.
		txTime += p.egressImp.rateWait(p.Eng.Now(), pkt.Wire)
	}
	p.stats.TxPackets++
	p.stats.TxBytes += int64(pkt.Wire)
	p.Eng.ScheduleArg(txTime, p.txDoneFn, pkt)
}

// txDone fires when the last bit is on the wire: deliver after propagation,
// then start the next packet. Cross-shard links route the delivery through
// the group's deterministic merge.
func (p *Port) txDone(arg any) {
	if p.egressImp != nil {
		p.egressImp.Forward(arg.(*Packet)) // owns it; schedules delivery
	} else {
		p.scheduleDeliver(arg.(*Packet), 0)
	}
	p.transmitNext()
}

// scheduleDeliver queues the delivery event after propagation plus any
// impairment-added extra delay (extra >= 0, so a cross-shard link's delay
// never drops below the group lookahead).
func (p *Port) scheduleDeliver(pkt *Packet, extra int64) {
	if p.remote != nil {
		p.Eng.ScheduleRemoteArg(p.remote, p.Delay+extra, p.deliverFn, pkt)
	} else {
		p.Eng.ScheduleArg(p.Delay+extra, p.deliverFn, pkt)
	}
}

func (p *Port) deliver(arg any) { p.peer.Deliver(arg.(*Packet)) }
