package netem

import (
	"fmt"

	"hwatch/internal/sim"
)

// Deliverer receives packets from a link endpoint.
type Deliverer interface {
	Deliver(pkt *Packet)
}

// Queue is the output-queue discipline attached to a port. Implementations
// live in internal/aqm; the interface is declared here, on the consumer
// side, so netem does not depend on aqm.
//
// Enqueue may drop (returning false) or ECN-mark the packet according to the
// discipline; Dequeue returns nil when empty.
type Queue interface {
	Enqueue(pkt *Packet) bool
	Dequeue() *Packet
	Len() int   // packets queued
	Bytes() int // bytes queued
}

// PortStats counts traffic through a port. Drops at the queue are accounted
// by the queue discipline's own statistics.
type PortStats struct {
	TxPackets int64
	TxBytes   int64
}

// Port is one unidirectional link attachment: an output queue, a serializing
// transmitter of RateBps, and a propagation delay to the peer. Full-duplex
// links are modeled as one Port on each side.
type Port struct {
	Eng     *sim.Engine
	Q       Queue
	RateBps int64 // link rate, bits per second
	Delay   int64 // one-way propagation delay, ns

	Label string // for diagnostics ("sw0.p3")

	peer  Deliverer
	busy  bool
	stats PortStats
}

// NewPort returns a port transmitting at rateBps with the given one-way
// propagation delay and queue discipline.
func NewPort(eng *sim.Engine, q Queue, rateBps, delay int64) *Port {
	if rateBps <= 0 {
		panic("netem: port rate must be positive")
	}
	return &Port{Eng: eng, Q: q, RateBps: rateBps, Delay: delay}
}

// Connect attaches the receiving end of the link.
func (p *Port) Connect(peer Deliverer) { p.peer = peer }

// Peer returns the connected receiver (nil if unconnected).
func (p *Port) Peer() Deliverer { return p.peer }

// Stats returns a copy of the port counters.
func (p *Port) Stats() PortStats { return p.stats }

// SerializationDelay returns the time to clock size bytes onto the wire.
func (p *Port) SerializationDelay(size int) int64 {
	return int64(size) * 8 * sim.Second / p.RateBps
}

// Send enqueues the packet for transmission, starting the transmitter if it
// is idle. The queue discipline may drop or mark the packet.
func (p *Port) Send(pkt *Packet) {
	if p.peer == nil {
		panic(fmt.Sprintf("netem: port %q unconnected", p.Label))
	}
	pkt.EnqueuedAt = p.Eng.Now()
	if !p.Q.Enqueue(pkt) {
		return // dropped by the discipline
	}
	if !p.busy {
		p.transmitNext()
	}
}

func (p *Port) transmitNext() {
	pkt := p.Q.Dequeue()
	if pkt == nil {
		p.busy = false
		return
	}
	p.busy = true
	txTime := p.SerializationDelay(pkt.Wire)
	p.stats.TxPackets++
	p.stats.TxBytes += int64(pkt.Wire)
	p.Eng.Schedule(txTime, func() {
		// Last bit on the wire: deliver after propagation, then start the
		// next packet.
		dst := p.peer
		p.Eng.Schedule(p.Delay, func() { dst.Deliver(pkt) })
		p.transmitNext()
	})
}
