package netem

import (
	"fmt"

	"hwatch/internal/sim"
)

// Port-level impairments: the production-chaos surface a tool like Pumba
// drives through tc-netem, modeled deterministically on a single port.
// A PortImpair attaches at one of two pipeline stages —
//
//   - ingress: between the port's fault hooks and its output queue, so
//     the AQM sees (and accounts) the impaired stream, and
//   - egress: between the transmitter and the propagation delay, so the
//     queue drains untouched and the wire carries the impairment —
//
// and applies any combination of five independent impairment kinds:
// corruption (checksum-visible bit flips, optionally dropped at the port
// like an FCS-failing frame), bounded duplication, hold-and-release
// reordering, per-packet jitter from a pluggable delay distribution, and
// token-bucket rate limiting (egress only). Every probabilistic kind
// draws from its own seeded RNG and draws nothing while disabled, so a
// fault window can open and close without perturbing the run's random
// sequences outside the window. internal/faults arms and clears the
// kinds over its scheduled windows.

// ImpairStats counts per-kind impairment actions on one port stage.
type ImpairStats struct {
	Corrupted    int64 // packets bit-flipped (checksum left stale)
	CorruptDrops int64 // corrupted packets dropped at the port (FCS fail)
	Duplicated   int64 // extra copies injected
	Reordered    int64 // packets held for out-of-order release
	Jittered     int64 // packets given extra distribution-drawn delay
	RateLimited  int64 // packets delayed by the token bucket
	RateDelayNs  int64 // cumulative token-bucket delay, ns

	// Held counts packets currently parked in the ingress hold buffer.
	// It must be zero once a run drains: residue here means a hold was
	// never released — the invariant FuzzReorderBuffer and the recovery
	// observer assert.
	Held int64
}

// Add folds other into s (for aggregation across armed ports).
func (s *ImpairStats) Add(other ImpairStats) {
	s.Corrupted += other.Corrupted
	s.CorruptDrops += other.CorruptDrops
	s.Duplicated += other.Duplicated
	s.Reordered += other.Reordered
	s.Jittered += other.Jittered
	s.RateLimited += other.RateLimited
	s.RateDelayNs += other.RateDelayNs
	s.Held += other.Held
}

// DelayDist is a pluggable per-packet delay distribution for jitter
// impairments. Draw returns a non-negative delay in nanoseconds; all
// randomness must come from the supplied RNG so the jitter stream is a
// pure function of the run seed.
type DelayDist interface {
	Name() string
	Draw(rng *sim.RNG) int64
}

// UniformDelay draws uniformly from [Lo, Hi] ns.
type UniformDelay struct{ Lo, Hi int64 }

// Name implements DelayDist.
func (d UniformDelay) Name() string { return "uniform" }

// Draw implements DelayDist.
func (d UniformDelay) Draw(rng *sim.RNG) int64 {
	lo := d.Lo
	if lo < 0 {
		lo = 0
	}
	return rng.UniformRange(lo, d.Hi)
}

// NormalDelay approximates a normal delay with the given mean and sigma
// (Irwin–Hall: the sum of 12 uniforms), truncated to [0, Max]; Max <= 0
// defaults to mean + 4 sigma.
type NormalDelay struct{ Mean, Sigma, Max int64 }

// Name implements DelayDist.
func (d NormalDelay) Name() string { return "normal" }

// Draw implements DelayDist.
func (d NormalDelay) Draw(rng *sim.RNG) int64 {
	var s float64
	for i := 0; i < 12; i++ {
		s += rng.Float64()
	}
	x := float64(d.Mean) + (s-6)*float64(d.Sigma)
	max := d.Max
	if max <= 0 {
		max = d.Mean + 4*d.Sigma
	}
	switch {
	case x < 0:
		return 0
	case x > float64(max):
		return max
	}
	return int64(x)
}

// ParetoDelay draws a heavy-tailed bounded-Pareto delay with minimum
// Scale, shape Shape and truncation Max (the long-RTT tail of a jittery
// WAN hop).
type ParetoDelay struct {
	Shape      float64
	Scale, Max int64
}

// Name implements DelayDist.
func (d ParetoDelay) Name() string { return "pareto" }

// Draw implements DelayDist.
func (d ParetoDelay) Draw(rng *sim.RNG) int64 { return rng.Pareto(d.Shape, d.Scale, d.Max) }

// PortImpair is one port stage's impairment pipeline. Construct via
// Port.Impair; arm kinds with the Set* methods (zeroed parameters clear a
// kind). All per-packet processing runs on the port's engine, so draws
// happen in deterministic event order at any shard count.
type PortImpair struct {
	port   *Port
	egress bool

	corruptP    float64
	corruptDrop float64 // fraction of corrupted packets dropped outright
	corruptRng  *sim.RNG

	dupP      float64
	dupCopies int
	dupRng    *sim.RNG

	reorderP    float64
	reorderHold int64
	reorderRng  *sim.RNG

	jitterDist DelayDist
	jitterRng  *sim.RNG

	rateBps  int64 // token-bucket rate (0 = unlimited)
	burstTok int64 // bucket capacity, bit-ns
	tokens   int64 // current fill, bit-ns
	lastFill int64 // clock of the last refill

	// releaseFn is the cached bound callback ingress holds re-enter
	// through, so holding a packet costs one event and no closure.
	releaseFn func(any)

	stats ImpairStats
}

// Impair returns the port's impairment pipeline for the given stage,
// creating an inert one on first use. egress=false attaches ahead of the
// output queue; egress=true attaches on the wire side of the transmitter.
func (p *Port) Impair(egress bool) *PortImpair {
	slot := &p.ingressImp
	if egress {
		slot = &p.egressImp
	}
	if *slot == nil {
		im := &PortImpair{port: p, egress: egress}
		im.releaseFn = im.injectRelease
		*slot = im
	}
	return *slot
}

// Stats returns a copy of the per-kind counters.
func (im *PortImpair) Stats() ImpairStats { return im.stats }

// Egress reports which stage the pipeline is attached at.
func (im *PortImpair) Egress() bool { return im.egress }

// SetCorrupt arms per-packet bit-flip corruption: with probability p the
// packet's Rwnd field is flipped and the checksum left stale (so
// checksum-verifying receivers must discard it); a dropFrac fraction of
// corrupted packets is instead dropped at the port, as an FCS-failing
// frame would be. p <= 0 clears the kind; no draws happen while clear.
func (im *PortImpair) SetCorrupt(p, dropFrac float64, rng *sim.RNG) {
	if p > 0 && rng == nil {
		panic("netem: corrupt impairment needs an RNG")
	}
	im.corruptP, im.corruptDrop, im.corruptRng = p, dropFrac, rng
}

// SetDuplicate arms per-packet duplication: with probability p the packet
// is cloned copies times (bounded; <= 0 means 1) and the copies re-enter
// right behind the original. Clones keep the original's packet ID — a
// duplicated frame is the same bytes on the wire twice. p <= 0 clears.
func (im *PortImpair) SetDuplicate(p float64, copies int, rng *sim.RNG) {
	if p > 0 && rng == nil {
		panic("netem: duplicate impairment needs an RNG")
	}
	if copies <= 0 {
		copies = 1
	}
	im.dupP, im.dupCopies, im.dupRng = p, copies, rng
}

// SetReorder arms hold-and-release reordering: with probability p the
// packet is parked and re-offered after a uniformly drawn delay in
// (0, hold], letting packets behind it overtake. p <= 0 clears; packets
// already held still release.
func (im *PortImpair) SetReorder(p float64, hold int64, rng *sim.RNG) {
	if p > 0 && rng == nil {
		panic("netem: reorder impairment needs an RNG")
	}
	if p > 0 && hold <= 0 {
		hold = 100 * sim.Microsecond
	}
	im.reorderP, im.reorderHold, im.reorderRng = p, hold, rng
}

// SetJitter arms per-packet delay jitter from the given distribution
// (every packet draws; a zero draw passes untouched). dist == nil clears.
func (im *PortImpair) SetJitter(dist DelayDist, rng *sim.RNG) {
	if dist != nil && rng == nil {
		panic("netem: jitter impairment needs an RNG")
	}
	im.jitterDist, im.jitterRng = dist, rng
}

// SetRate arms a token-bucket rate limit of rateBps with the given burst
// (bytes; <= 0 defaults to two MTUs). Egress stage only: the bucket paces
// the transmitter, so limiting below the link rate builds standing queue
// exactly as a shaped port would. rateBps <= 0 clears.
func (im *PortImpair) SetRate(rateBps int64, burstBytes int) {
	if !im.egress && rateBps > 0 {
		panic("netem: rate limiting attaches at the egress stage")
	}
	if burstBytes <= 0 {
		burstBytes = 2 * DefaultMTU
	}
	im.rateBps = rateBps
	im.burstTok = int64(burstBytes) * 8 * sim.Second
	im.tokens = im.burstTok // bucket starts full
	im.lastFill = im.port.Eng.Now()
}

// Forward runs pkt through the armed kinds and passes it on: to the
// output queue (ingress stage) or to delivery scheduling (egress stage).
// Ownership transfers with the call; held packets are owned by their
// pending release events.
func (im *PortImpair) Forward(pkt *Packet) {
	if im.corruptP > 0 && im.corruptRng.Float64() < im.corruptP {
		im.stats.Corrupted++
		pkt.Rwnd ^= 0x0040 // bit flip; checksum left stale on purpose
		if im.corruptDrop > 0 && im.corruptRng.Float64() < im.corruptDrop {
			im.stats.CorruptDrops++
			ReleasePacket(pkt)
			return
		}
	}
	if im.dupP > 0 && im.dupRng.Float64() < im.dupP {
		for i := 0; i < im.dupCopies; i++ {
			im.stats.Duplicated++
			clone := ClonePacket(pkt)
			if im.egress {
				im.port.scheduleDeliver(clone, 0)
			} else {
				// From a fresh event at +0, so the original keeps its place.
				im.port.Eng.ScheduleArg(0, im.port.injectQueueFn, clone)
			}
		}
	}
	if im.reorderP > 0 && im.reorderRng.Float64() < im.reorderP {
		im.stats.Reordered++
		hold := 1 + im.reorderRng.Int63n(im.reorderHold)
		if im.egress {
			im.port.scheduleDeliver(pkt, hold)
		} else {
			im.injectHold(pkt, hold)
		}
		return
	}
	if im.jitterDist != nil {
		if d := im.jitterDist.Draw(im.jitterRng); d > 0 {
			im.stats.Jittered++
			if im.egress {
				im.port.scheduleDeliver(pkt, d)
			} else {
				im.injectHold(pkt, d)
			}
			return
		}
	}
	if im.egress {
		im.port.scheduleDeliver(pkt, 0)
	} else {
		im.port.injectQueue(pkt)
	}
}

// injectHold parks pkt for delay ns, then re-offers it to the output queue.
// The pending release event owns the packet meanwhile.
func (im *PortImpair) injectHold(pkt *Packet, delay int64) {
	im.stats.Held++
	im.port.Eng.ScheduleArg(delay, im.releaseFn, pkt)
}

// injectRelease is the hold buffer's release path: same-instant releases
// fire in hold order (engine FIFO by scheduling time), so the buffer is
// FIFO within equal release times.
func (im *PortImpair) injectRelease(a any) {
	im.stats.Held--
	im.port.injectQueue(a.(*Packet))
}

// rateWait refills the token bucket to now, takes wire bytes from it and
// returns how long the transmitter must stall before clocking the packet
// out (0 when the bucket covers it).
func (im *PortImpair) rateWait(now int64, wire int) int64 {
	if im.rateBps <= 0 {
		return 0
	}
	// Tokens are bit-nanoseconds: rateBps of fill per ns, a packet costs
	// bits * 1e9. Clamp the refill interval to what fills the bucket so
	// the multiply cannot overflow after a long idle gap.
	elapsed := now - im.lastFill
	if full := im.burstTok / im.rateBps; elapsed > full {
		elapsed = full + 1
	}
	im.tokens += elapsed * im.rateBps
	if im.tokens > im.burstTok {
		im.tokens = im.burstTok
	}
	im.lastFill = now
	cost := int64(wire) * 8 * sim.Second
	if im.tokens >= cost {
		im.tokens -= cost
		return 0
	}
	wait := (cost - im.tokens + im.rateBps - 1) / im.rateBps
	im.tokens = 0
	im.lastFill = now + wait // the stall itself earns no extra tokens
	im.stats.RateLimited++
	im.stats.RateDelayNs += wait
	return wait
}

func (im *PortImpair) String() string {
	stage := "ingress"
	if im.egress {
		stage = "egress"
	}
	return fmt.Sprintf("impair[%s %s]", im.port.Label, stage)
}
