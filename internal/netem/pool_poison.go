//go:build poolpoison

package netem

// Poison build (-tags poolpoison): released packets are filled with
// sentinel garbage and only zeroed again when reallocated. Any code that
// keeps reading a packet after releasing it now sees nonsense values, so a
// use-after-release shows up as a digest mismatch, an invariant violation
// or a panic instead of a silent read of zeroed memory. CI runs the
// pool-parity digest test under this tag.

func scrubOnRelease(p *Packet) {
	p.ID = 0x5a5a5a5a5a5a5a5a
	p.Src, p.Dst = -0x5a5a5a5a, -0x5a5a5a5a
	p.SrcPort, p.DstPort = 0x5a5a, 0x5a5a
	p.Seq, p.Ack = -0x5a5a5a5a, -0x5a5a5a5a
	p.Flags = 0x5a
	p.ECN = 0x5a
	p.Payload, p.Wire = -0x5a5a, -0x5a5a
	p.Rwnd = 0x5a5a
	p.WScaleOpt = 0x5a
	p.TSVal, p.TSEcr = -0x5a5a5a5a, -0x5a5a5a5a
	p.SackOK = true
	p.Sack = nil
	p.Checksum = 0x5a5a
	p.Probe = true
	p.SentAt, p.EnqueuedAt = -0x5a5a5a5a, -0x5a5a5a5a
	p.Hops = -0x5a5a
}

func resetOnAlloc(p *Packet) { *p = Packet{} }
