package netem

import (
	"testing"

	"hwatch/internal/sim"
)

// sink collects delivered packets with arrival times.
type sink struct {
	eng  *sim.Engine
	pkts []*Packet
	at   []int64
}

func (s *sink) Deliver(p *Packet) {
	s.pkts = append(s.pkts, p)
	s.at = append(s.at, s.eng.Now())
}

// unboundedQ is a minimal Queue for port tests.
type unboundedQ struct {
	q     []*Packet
	bytes int
}

func (u *unboundedQ) Enqueue(p *Packet) bool { u.q = append(u.q, p); u.bytes += p.Wire; return true }
func (u *unboundedQ) Dequeue() *Packet {
	if len(u.q) == 0 {
		return nil
	}
	p := u.q[0]
	u.q = u.q[1:]
	u.bytes -= p.Wire
	return p
}
func (u *unboundedQ) Len() int   { return len(u.q) }
func (u *unboundedQ) Bytes() int { return u.bytes }

func TestPortSerializationAndPropagation(t *testing.T) {
	eng := sim.New()
	s := &sink{eng: eng}
	// 1 Gb/s, 10 us propagation: a 1250-byte packet serializes in 10 us.
	p := NewPort(eng, &unboundedQ{}, 1e9, 10*sim.Microsecond)
	p.Connect(s)
	p.Send(&Packet{Wire: 1250})
	eng.Run()
	if len(s.pkts) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(s.pkts))
	}
	if s.at[0] != 20*sim.Microsecond {
		t.Fatalf("arrival at %d ns, want 20000", s.at[0])
	}
}

func TestPortBackToBackPacing(t *testing.T) {
	eng := sim.New()
	s := &sink{eng: eng}
	p := NewPort(eng, &unboundedQ{}, 1e9, 0)
	p.Connect(s)
	for i := 0; i < 5; i++ {
		p.Send(&Packet{ID: uint64(i), Wire: 1250})
	}
	eng.Run()
	if len(s.pkts) != 5 {
		t.Fatalf("delivered %d, want 5", len(s.pkts))
	}
	for i, at := range s.at {
		want := int64(i+1) * 10 * sim.Microsecond
		if at != want {
			t.Fatalf("pkt %d at %d, want %d (must be paced at line rate)", i, at, want)
		}
		if s.pkts[i].ID != uint64(i) {
			t.Fatal("reordering on a FIFO port")
		}
	}
	if st := p.Stats(); st.TxPackets != 5 || st.TxBytes != 5*1250 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPortIdleRestart(t *testing.T) {
	eng := sim.New()
	s := &sink{eng: eng}
	p := NewPort(eng, &unboundedQ{}, 1e9, 0)
	p.Connect(s)
	p.Send(&Packet{Wire: 1250})
	eng.Run()
	// Port went idle; a later send must restart the transmitter. The clock
	// is at 10us after the first delivery, so send at 110us, arrive 120us.
	eng.At(110*sim.Microsecond, func() { p.Send(&Packet{Wire: 1250}) })
	eng.Run()
	if len(s.pkts) != 2 {
		t.Fatalf("delivered %d, want 2", len(s.pkts))
	}
	if s.at[1] != 120*sim.Microsecond {
		t.Fatalf("second arrival %d, want 120us", s.at[1])
	}
}

func TestSerializationDelayExact(t *testing.T) {
	eng := sim.New()
	p := NewPort(eng, &unboundedQ{}, 10e9, 0) // 10 Gb/s
	if d := p.SerializationDelay(1500); d != 1200 {
		t.Fatalf("1500B at 10G = %d ns, want 1200", d)
	}
	if d := p.SerializationDelay(MinProbeSize); d != 30 {
		t.Fatalf("38B probe at 10G = %d ns, want 30", d)
	}
}

func TestUnconnectedPortPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic sending on unconnected port")
		}
	}()
	NewPort(sim.New(), &unboundedQ{}, 1e9, 0).Send(&Packet{Wire: 100})
}

func TestSwitchForwarding(t *testing.T) {
	eng := sim.New()
	sw := NewSwitch("sw")
	a, b := &sink{eng: eng}, &sink{eng: eng}
	pa := NewPort(eng, &unboundedQ{}, 1e9, 0)
	pa.Connect(a)
	pb := NewPort(eng, &unboundedQ{}, 1e9, 0)
	pb.Connect(b)
	ia := sw.AddPort(pa)
	ib := sw.AddPort(pb)
	sw.Route(1, ia)
	sw.Route(2, ib)
	sw.Deliver(&Packet{Dst: 2, Wire: 100})
	sw.Deliver(&Packet{Dst: 1, Wire: 100})
	eng.Run()
	if len(a.pkts) != 1 || len(b.pkts) != 1 {
		t.Fatalf("a=%d b=%d, want 1 each", len(a.pkts), len(b.pkts))
	}
	if sw.NumPorts() != 2 {
		t.Fatalf("NumPorts = %d", sw.NumPorts())
	}
}

func TestSwitchNoRoutePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unknown destination")
		}
	}()
	NewSwitch("sw").Deliver(&Packet{Dst: 42})
}

func TestSwitchHopLimit(t *testing.T) {
	// Two switches routing a destination at each other: must panic, not spin.
	eng := sim.New()
	s1, s2 := NewSwitch("s1"), NewSwitch("s2")
	p12 := NewPort(eng, &unboundedQ{}, 1e9, 0)
	p12.Connect(s2)
	p21 := NewPort(eng, &unboundedQ{}, 1e9, 0)
	p21.Connect(s1)
	s1.Route(7, s1.AddPort(p12))
	s2.Route(7, s2.AddPort(p21))
	s1.Deliver(&Packet{Dst: 7, Wire: 100})
	defer func() {
		if recover() == nil {
			t.Fatal("routing loop not detected")
		}
	}()
	eng.Run()
}

func TestSwitchECMPStablePerFlow(t *testing.T) {
	eng := sim.New()
	sw := NewSwitch("sw")
	sinks := make([]*sink, 3)
	var ports []int
	for i := range sinks {
		sinks[i] = &sink{eng: eng}
		p := NewPort(eng, &unboundedQ{}, 1e9, 0)
		p.Connect(sinks[i])
		ports = append(ports, sw.AddPort(p))
	}
	sw.RouteECMP(9, ports)

	// 50 packets of one flow must all take the same member port.
	for i := 0; i < 50; i++ {
		sw.Deliver(&Packet{Src: 1, Dst: 9, SrcPort: 1000, DstPort: 80, Wire: 100})
	}
	eng.Run()
	nonEmpty := 0
	for _, s := range sinks {
		if len(s.pkts) == 50 {
			nonEmpty++
		} else if len(s.pkts) != 0 {
			t.Fatalf("flow split across ports: %d packets on one member", len(s.pkts))
		}
	}
	if nonEmpty != 1 {
		t.Fatalf("flow used %d member ports", nonEmpty)
	}

	// Many distinct flows must spread across the group.
	for f := 0; f < 300; f++ {
		sw.Deliver(&Packet{Src: NodeID(f), Dst: 9, SrcPort: uint16(2000 + f), DstPort: 80, Wire: 100})
	}
	eng.Run()
	for i, s := range sinks {
		if len(s.pkts) < 60 { // ~100 expected per member
			t.Fatalf("member %d underused: %d packets", i, len(s.pkts))
		}
	}
}

func TestSwitchECMPValidation(t *testing.T) {
	sw := NewSwitch("sw")
	defer func() {
		if recover() == nil {
			t.Fatal("empty group accepted")
		}
	}()
	sw.RouteECMP(1, nil)
}

func TestSwitchRouteReplacesGroup(t *testing.T) {
	eng := sim.New()
	sw := NewSwitch("sw")
	a, b := &sink{eng: eng}, &sink{eng: eng}
	pa := NewPort(eng, &unboundedQ{}, 1e9, 0)
	pa.Connect(a)
	pb := NewPort(eng, &unboundedQ{}, 1e9, 0)
	pb.Connect(b)
	ia, ib := sw.AddPort(pa), sw.AddPort(pb)
	sw.RouteECMP(5, []int{ia, ib})
	sw.Route(5, ia) // unicast overrides the group
	for i := 0; i < 20; i++ {
		sw.Deliver(&Packet{Src: NodeID(i), Dst: 5, SrcPort: uint16(i), Wire: 10})
	}
	eng.Run()
	if len(a.pkts) != 20 || len(b.pkts) != 0 {
		t.Fatalf("Route did not replace ECMP group: a=%d b=%d", len(a.pkts), len(b.pkts))
	}
}
