package netem

import (
	"testing"

	"hwatch/internal/sim"
)

// recHandler records packets handed to a guest endpoint. It copies them:
// the host releases a packet to the pool after HandlePacket returns, so
// retaining the pointer would violate the ownership contract.
type recHandler struct{ pkts []*Packet }

func (r *recHandler) HandlePacket(p *Packet) { r.pkts = append(r.pkts, p.Clone()) }

// testFilter applies scripted verdicts.
type testFilter struct {
	name     string
	inV      Verdict
	outV     Verdict
	sawIn    []*Packet
	sawOut   []*Packet
	onInMut  func(*Packet)
	onOutMut func(*Packet)
}

func (f *testFilter) Name() string { return f.name }
func (f *testFilter) Inbound(p *Packet) Verdict {
	f.sawIn = append(f.sawIn, p)
	if f.onInMut != nil {
		f.onInMut(p)
	}
	return f.inV
}
func (f *testFilter) Outbound(p *Packet) Verdict {
	f.sawOut = append(f.sawOut, p)
	if f.onOutMut != nil {
		f.onOutMut(p)
	}
	return f.outV
}

func newTestNet(t *testing.T) (*Network, *Host, *Host) {
	t.Helper()
	n := NewNetwork()
	a := n.NewHost("a")
	b := n.NewHost("b")
	sw := n.NewSwitch("sw")
	n.LinkHostSwitch(a, sw, &unboundedQ{}, &unboundedQ{}, 1e9, sim.Microsecond)
	n.LinkHostSwitch(b, sw, &unboundedQ{}, &unboundedQ{}, 1e9, sim.Microsecond)
	return n, a, b
}

func TestHostEndToEndDelivery(t *testing.T) {
	n, a, b := newTestNet(t)
	h := &recHandler{}
	b.Bind(ConnID{LocalPort: 80, Remote: a.ID, RemotePort: 4000}, h)
	a.Send(&Packet{Src: a.ID, Dst: b.ID, SrcPort: 4000, DstPort: 80, Wire: 100, Payload: 60})
	n.Eng.Run()
	if len(h.pkts) != 1 {
		t.Fatalf("handler got %d packets, want 1", len(h.pkts))
	}
	if st := b.Stats(); st.RxPackets != 1 || st.Orphans != 0 {
		t.Fatalf("b stats = %+v", st)
	}
}

func TestHostListenerAcceptsSYN(t *testing.T) {
	n, a, b := newTestNet(t)
	var accepted *recHandler
	b.Listen(80, func(syn *Packet) Handler {
		accepted = &recHandler{}
		return accepted
	})
	syn := &Packet{Src: a.ID, Dst: b.ID, SrcPort: 5000, DstPort: 80, Flags: FlagSYN, Wire: HeaderSize}
	a.Send(syn)
	n.Eng.Run()
	if accepted == nil || len(accepted.pkts) != 1 {
		t.Fatal("listener did not accept the SYN")
	}
	// Follow-up segment reaches the same handler via the demux table.
	a.Send(&Packet{Src: a.ID, Dst: b.ID, SrcPort: 5000, DstPort: 80, Flags: FlagACK, Wire: HeaderSize})
	n.Eng.Run()
	if len(accepted.pkts) != 2 {
		t.Fatalf("handler got %d packets, want 2", len(accepted.pkts))
	}
}

func TestHostOrphans(t *testing.T) {
	n, a, b := newTestNet(t)
	// No listener, no binding: data segment is an orphan.
	a.Send(&Packet{Src: a.ID, Dst: b.ID, SrcPort: 1, DstPort: 2, Flags: FlagACK, Wire: 64})
	// SYN to a non-listening port is also an orphan.
	a.Send(&Packet{Src: a.ID, Dst: b.ID, SrcPort: 1, DstPort: 3, Flags: FlagSYN, Wire: 64})
	n.Eng.Run()
	if st := b.Stats(); st.Orphans != 2 {
		t.Fatalf("orphans = %d, want 2", st.Orphans)
	}
}

func TestHostProbeNeverReachesGuest(t *testing.T) {
	n, a, b := newTestNet(t)
	h := &recHandler{}
	b.Bind(ConnID{LocalPort: 80, Remote: a.ID, RemotePort: 4000}, h)
	a.Send(&Packet{Src: a.ID, Dst: b.ID, SrcPort: 4000, DstPort: 80, Probe: true, Wire: MinProbeSize})
	n.Eng.Run()
	if len(h.pkts) != 0 {
		t.Fatal("probe delivered to guest handler")
	}
	if b.Stats().Orphans != 1 {
		t.Fatal("unclaimed probe not accounted")
	}
}

func TestFilterChainOrderAndVerdicts(t *testing.T) {
	n, a, b := newTestNet(t)
	fDrop := &testFilter{name: "drop", inV: VerdictPass, outV: VerdictDrop}
	a.AddFilter(fDrop)
	a.Send(&Packet{Src: a.ID, Dst: b.ID, SrcPort: 1, DstPort: 2, Wire: 64})
	n.Eng.Run()
	if len(fDrop.sawOut) != 1 {
		t.Fatal("egress filter not invoked")
	}
	if st := a.Stats(); st.FilterDrops != 1 || st.TxPackets != 0 {
		t.Fatalf("a stats = %+v (packet must not hit the wire)", st)
	}
}

func TestFilterStealAndReinject(t *testing.T) {
	n, a, b := newTestNet(t)
	h := &recHandler{}
	b.Bind(ConnID{LocalPort: 80, Remote: a.ID, RemotePort: 4000}, h)

	var stolen *Packet
	fSteal := &testFilter{name: "steal", inV: VerdictPass, outV: VerdictStolen}
	fSteal.onOutMut = func(p *Packet) { stolen = p }
	a.AddFilter(fSteal)

	a.Send(&Packet{Src: a.ID, Dst: b.ID, SrcPort: 4000, DstPort: 80, Wire: 100, Payload: 60})
	n.Eng.Run()
	if len(h.pkts) != 0 {
		t.Fatal("stolen packet was delivered")
	}
	// The shim releases it later; InjectOutbound must bypass egress filters.
	n.Eng.Schedule(sim.Millisecond, func() { a.InjectOutbound(stolen) })
	n.Eng.Run()
	if len(h.pkts) != 1 {
		t.Fatal("re-injected packet not delivered")
	}
	if len(fSteal.sawOut) != 1 {
		t.Fatal("InjectOutbound must bypass the egress chain")
	}
}

func TestFilterMutationVisibleDownstream(t *testing.T) {
	n, a, b := newTestNet(t)
	h := &recHandler{}
	b.Bind(ConnID{LocalPort: 80, Remote: a.ID, RemotePort: 4000}, h)
	// Receiver-side ingress filter rewrites rwnd like HWatch does.
	fRW := &testFilter{name: "rw", inV: VerdictPass, outV: VerdictPass}
	fRW.onInMut = func(p *Packet) { p.Rwnd = 7 }
	b.AddFilter(fRW)
	a.Send(&Packet{Src: a.ID, Dst: b.ID, SrcPort: 4000, DstPort: 80, Wire: 100, Payload: 1, Rwnd: 1000})
	n.Eng.Run()
	if len(h.pkts) != 1 || h.pkts[0].Rwnd != 7 {
		t.Fatal("filter mutation not visible to guest")
	}
}

func TestHostDoubleBindPanics(t *testing.T) {
	_, _, b := newTestNet(t)
	id := ConnID{LocalPort: 80, Remote: 1, RemotePort: 2}
	b.Bind(id, &recHandler{})
	defer func() {
		if recover() == nil {
			t.Fatal("double bind did not panic")
		}
	}()
	b.Bind(id, &recHandler{})
}

func TestHostUnbind(t *testing.T) {
	n, a, b := newTestNet(t)
	id := ConnID{LocalPort: 80, Remote: a.ID, RemotePort: 4000}
	h := &recHandler{}
	b.Bind(id, h)
	b.Unbind(id)
	a.Send(&Packet{Src: a.ID, Dst: b.ID, SrcPort: 4000, DstPort: 80, Wire: 64})
	n.Eng.Run()
	if len(h.pkts) != 0 || b.Stats().Orphans != 1 {
		t.Fatal("packet delivered to unbound handler")
	}
}

func TestAllocPortUnique(t *testing.T) {
	_, a, _ := newTestNet(t)
	seen := map[uint16]bool{}
	for i := 0; i < 1000; i++ {
		p := a.AllocPort()
		if seen[p] {
			t.Fatalf("duplicate ephemeral port %d", p)
		}
		seen[p] = true
	}
}

func TestNetworkPacketIDsUnique(t *testing.T) {
	n := NewNetwork()
	a, b := n.NewHost(""), n.NewHost("")
	if a.NextPacketID() == 0 {
		t.Fatal("packet IDs must start above 0")
	}
	if a.NextPacketID() == b.NextPacketID() {
		t.Fatal("hosts share the counter; ids must be unique across hosts")
	}
	if a.ID == b.ID {
		t.Fatal("duplicate host IDs")
	}
	if n.Host(a.ID) != a {
		t.Fatal("Host lookup failed")
	}
}
