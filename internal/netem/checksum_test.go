package netem

import (
	"testing"
	"testing/quick"
)

func samplePacket() *Packet {
	return &Packet{
		ID: 1, Src: 3, Dst: 9, SrcPort: 33000, DstPort: 80,
		Seq: 14600, Ack: 2920, Flags: FlagACK, ECN: ECT0,
		Payload: 0, Wire: HeaderSize, Rwnd: 1024, WScaleOpt: -1,
		TSVal: 123456, TSEcr: 120000,
	}
}

func TestChecksumExcludesECN(t *testing.T) {
	// The ECN codepoint is IP-level: a switch CE-marking a packet in
	// flight must not invalidate the transport checksum.
	p := samplePacket()
	SetChecksum(p)
	p.ECN = CE
	if !VerifyChecksum(p) {
		t.Fatal("CE marking invalidated the TCP checksum")
	}
}

func TestChecksumRoundTrip(t *testing.T) {
	p := samplePacket()
	SetChecksum(p)
	if !VerifyChecksum(p) {
		t.Fatal("fresh checksum does not verify")
	}
	p.Rwnd++
	if VerifyChecksum(p) {
		t.Fatal("checksum verified after header mutation")
	}
}

func TestChecksumSensitivity(t *testing.T) {
	base := samplePacket()
	want := Checksum(base)
	mutations := []func(*Packet){
		func(p *Packet) { p.Src++ },
		func(p *Packet) { p.Dst++ },
		func(p *Packet) { p.SrcPort++ },
		func(p *Packet) { p.DstPort++ },
		func(p *Packet) { p.Seq++ },
		func(p *Packet) { p.Ack++ },
		func(p *Packet) { p.Flags |= FlagECE },
		func(p *Packet) { p.Rwnd ^= 0x8000 },
		func(p *Packet) { p.TSVal++ },
		func(p *Packet) { p.Payload++ },
	}
	for i, mut := range mutations {
		p := samplePacket()
		mut(p)
		if Checksum(p) == want {
			t.Errorf("mutation %d did not change checksum", i)
		}
	}
}

// Property: RFC 1624 incremental update after rewriting Rwnd equals a full
// recompute — the exact operation the HWatch shim performs on ACKs.
func TestPropertyIncrementalUpdateMatchesFull(t *testing.T) {
	f := func(src, dst int32, sp, dp, oldW, newW uint16, seq, ack int64) bool {
		p := &Packet{
			Src: NodeID(src), Dst: NodeID(dst), SrcPort: sp, DstPort: dp,
			Seq: seq, Ack: ack, Flags: FlagACK, Rwnd: oldW, WScaleOpt: -1,
		}
		SetChecksum(p)
		patched := UpdateChecksum16(p.Checksum, p.Rwnd, newW)
		p.Rwnd = newW
		return patched == Checksum(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateChecksum16Chained(t *testing.T) {
	p := samplePacket()
	SetChecksum(p)
	// Two successive rewrites must compose.
	sum := UpdateChecksum16(p.Checksum, p.Rwnd, 500)
	sum = UpdateChecksum16(sum, 500, 7)
	p.Rwnd = 7
	if sum != Checksum(p) {
		t.Fatalf("chained incremental update = %#x, full = %#x", sum, Checksum(p))
	}
}

func TestFlowKeyReverse(t *testing.T) {
	k := FlowKey{Src: 1, Dst: 2, SrcPort: 40000, DstPort: 80}
	r := k.Reverse()
	if r.Src != 2 || r.Dst != 1 || r.SrcPort != 80 || r.DstPort != 40000 {
		t.Fatalf("Reverse = %+v", r)
	}
	if r.Reverse() != k {
		t.Fatal("double reverse is not identity")
	}
}

func TestECNCapable(t *testing.T) {
	if NotECT.Capable() {
		t.Fatal("NotECT reported capable")
	}
	for _, e := range []ECN{ECT0, ECT1, CE} {
		if !e.Capable() {
			t.Fatalf("%v reported not capable", e)
		}
	}
}

func TestFlagsString(t *testing.T) {
	if s := (FlagSYN | FlagACK).String(); s != "SYN|ACK" {
		t.Fatalf("String = %q", s)
	}
	if s := TCPFlags(0).String(); s != "-" {
		t.Fatalf("zero flags String = %q", s)
	}
}

func TestPacketClone(t *testing.T) {
	p := samplePacket()
	q := p.Clone()
	q.Seq = 999
	if p.Seq == 999 {
		t.Fatal("Clone aliases original")
	}
}
