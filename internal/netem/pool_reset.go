//go:build !poolpoison

package netem

// In the normal build, packets are zeroed at release so AllocPacket can
// hand them straight out.

func scrubOnRelease(p *Packet) { *p = Packet{} }

func resetOnAlloc(p *Packet) {}
