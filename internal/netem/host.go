package netem

import (
	"fmt"

	"hwatch/internal/sim"
)

// Handler consumes packets delivered to a local TCP endpoint ("guest VM"
// stack in the paper's terms).
type Handler interface {
	HandlePacket(pkt *Packet)
}

// Listener creates a Handler for an inbound connection request (SYN) on a
// listening port, or returns nil to refuse it.
type Listener func(syn *Packet) Handler

// Verdict is a filter's decision about a packet, mirroring NetFilter.
type Verdict int

const (
	// VerdictPass lets the (possibly modified) packet continue.
	VerdictPass Verdict = iota
	// VerdictDrop discards the packet.
	VerdictDrop
	// VerdictStolen transfers ownership to the filter, which may re-inject
	// it later via Host.InjectOutbound / Host.InjectInbound.
	VerdictStolen
)

// Filter is a hypervisor-level packet hook on a host: it sees every packet
// entering or leaving the guest stacks, exactly like the paper's NetFilter /
// OvS-datapath shim. Filters may mutate packets (e.g. rewrite rwnd and
// patch the checksum) before passing them on.
type Filter interface {
	Name() string
	Outbound(pkt *Packet) Verdict // guest -> network
	Inbound(pkt *Packet) Verdict  // network -> guest
}

// ConnID identifies a connection endpoint on a host for demultiplexing.
type ConnID struct {
	LocalPort  uint16
	Remote     NodeID
	RemotePort uint16
}

// HostStats counts host-level anomalies and traffic.
type HostStats struct {
	RxPackets     int64
	TxPackets     int64
	Orphans       int64 // packets with no matching connection or listener
	FilterDrops   int64
	FilterSteal   int64
	ChecksumDrops int64 // inbound packets failing verification
}

// Host is an end system: a NIC (uplink port), a demux table of transport
// endpoints, and ingress/egress filter chains where the HWatch shim attaches.
type Host struct {
	ID   NodeID
	Name string
	Eng  *sim.Engine

	uplink     *Port
	conns      map[ConnID]Handler
	listeners  map[uint16]Listener
	inFilters  []Filter
	outFilters []Filter
	stats      HostStats

	// VerifyChecksums makes the host discard inbound transport packets
	// whose checksum does not verify (as a real NIC/stack would), counting
	// them in Stats().ChecksumDrops. Probes are exempt (they are consumed
	// by the shim before the stack).
	VerifyChecksums bool

	nextEphemeral uint16
	pktID         *uint64 // shared packet-ID counter (per network)
}

// NewHost returns a host with the given address. pktID is the network-wide
// packet ID counter (see Network).
func NewHost(eng *sim.Engine, id NodeID, name string, pktID *uint64) *Host {
	return &Host{
		ID: id, Name: name, Eng: eng,
		conns:         make(map[ConnID]Handler),
		listeners:     make(map[uint16]Listener),
		nextEphemeral: 33000,
		pktID:         pktID,
	}
}

// AttachUplink sets the host's NIC egress port.
func (h *Host) AttachUplink(p *Port) { h.uplink = p }

// Uplink returns the NIC egress port.
func (h *Host) Uplink() *Port { return h.uplink }

// Stats returns a copy of the host counters.
func (h *Host) Stats() HostStats { return h.stats }

// AddFilter appends f to both the ingress and egress chains.
func (h *Host) AddFilter(f Filter) {
	h.inFilters = append(h.inFilters, f)
	h.outFilters = append(h.outFilters, f)
}

// NextPacketID allocates a unique packet ID.
func (h *Host) NextPacketID() uint64 {
	*h.pktID++
	return *h.pktID
}

// AllocPort returns a fresh ephemeral source port.
func (h *Host) AllocPort() uint16 {
	p := h.nextEphemeral
	h.nextEphemeral++
	if h.nextEphemeral == 0 { // wrapped
		h.nextEphemeral = 33000
	}
	return p
}

// Bind registers a connection endpoint handler.
func (h *Host) Bind(id ConnID, hd Handler) {
	if _, dup := h.conns[id]; dup {
		panic(fmt.Sprintf("netem: %s double bind %+v", h.Name, id))
	}
	h.conns[id] = hd
}

// Unbind removes a connection endpoint (e.g. after FIN teardown).
func (h *Host) Unbind(id ConnID) { delete(h.conns, id) }

// Listen installs a connection factory on a local port.
func (h *Host) Listen(port uint16, l Listener) { h.listeners[port] = l }

// Send carries a guest-generated packet through the egress filter chain and
// onto the wire. The hypervisor filters may mutate, drop or steal it.
func (h *Host) Send(pkt *Packet) {
	for _, f := range h.outFilters {
		switch f.Outbound(pkt) {
		case VerdictDrop:
			h.stats.FilterDrops++
			ReleasePacket(pkt)
			return
		case VerdictStolen:
			h.stats.FilterSteal++
			return //hwatchvet:allow pktown VerdictStolen transfers ownership to the filter, a conditional transfer the dataflow cannot see
		}
	}
	h.transmit(pkt)
}

// InjectOutbound puts a hypervisor-generated or previously stolen packet on
// the wire, bypassing the egress filters (the shim already saw it).
func (h *Host) InjectOutbound(pkt *Packet) { h.transmit(pkt) }

// InjectInbound delivers a previously stolen packet up to the guest,
// bypassing the ingress filters.
func (h *Host) InjectInbound(pkt *Packet) { h.deliverUp(pkt) }

func (h *Host) transmit(pkt *Packet) {
	if h.uplink == nil {
		panic(fmt.Sprintf("netem: host %s has no uplink", h.Name))
	}
	h.stats.TxPackets++
	h.uplink.Send(pkt)
}

// Deliver implements Deliverer: packets arriving from the network traverse
// the ingress filter chain, then are demultiplexed to a connection handler
// or a listener.
func (h *Host) Deliver(pkt *Packet) {
	h.stats.RxPackets++
	for _, f := range h.inFilters {
		switch f.Inbound(pkt) {
		case VerdictDrop:
			h.stats.FilterDrops++
			ReleasePacket(pkt)
			return
		case VerdictStolen:
			h.stats.FilterSteal++
			return //hwatchvet:allow pktown VerdictStolen transfers ownership to the filter, a conditional transfer the dataflow cannot see
		}
	}
	h.deliverUp(pkt)
}

// deliverUp is the end of a packet's life: whether it reaches a transport
// handler or falls off as an orphan, the host releases it afterwards.
// Handlers must not retain the packet past HandlePacket's return.
func (h *Host) deliverUp(pkt *Packet) {
	if h.VerifyChecksums && !pkt.Probe && !VerifyChecksum(pkt) {
		h.stats.ChecksumDrops++
		ReleasePacket(pkt)
		return
	}
	if pkt.Probe {
		// Probes are hypervisor-to-hypervisor; a host without a shim (or a
		// shim that declined it) must not surface them to guests.
		h.stats.Orphans++
		ReleasePacket(pkt)
		return
	}
	id := ConnID{LocalPort: pkt.DstPort, Remote: pkt.Src, RemotePort: pkt.SrcPort}
	if hd, ok := h.conns[id]; ok {
		hd.HandlePacket(pkt)
		ReleasePacket(pkt)
		return
	}
	if pkt.Flags.Has(FlagSYN) && !pkt.Flags.Has(FlagACK) {
		if l, ok := h.listeners[pkt.DstPort]; ok {
			if hd := l(pkt); hd != nil {
				h.Bind(id, hd)
				hd.HandlePacket(pkt)
				ReleasePacket(pkt)
				return
			}
		}
	}
	h.stats.Orphans++ // stray segment (e.g. retransmit after close)
	ReleasePacket(pkt)
}
